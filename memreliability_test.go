package memreliability

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"memreliability/internal/rng"
)

func TestFacadeModels(t *testing.T) {
	if len(AllModels()) != 4 {
		t.Fatal("AllModels wrong")
	}
	names := []string{"SC", "TSO", "PSO", "WO"}
	for i, m := range AllModels() {
		if m.Name() != names[i] {
			t.Errorf("model %d = %s, want %s", i, m.Name(), names[i])
		}
	}
	m, err := ModelByName("tso")
	if err != nil || m.Name() != "TSO" {
		t.Errorf("ModelByName = %v, %v", m.Name(), err)
	}
}

func TestFacadeWindowDistribution(t *testing.T) {
	dist, err := WindowDistribution(WO(), 12, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(dist) != 7 {
		t.Fatalf("len = %d", len(dist))
	}
	if math.Abs(dist[0]-2.0/3.0) > 1e-3 {
		t.Errorf("WO Pr[B_0] = %v", dist[0])
	}
}

func TestFacadeWindowDistributionClampsOversizedPrefix(t *testing.T) {
	// m=64 is far beyond the 2^m exact-DP state space; the facade must
	// clamp it to the engine's cap instead of passing it through.
	big, err := WindowDistribution(TSO(), 64, 5)
	if err != nil {
		t.Fatal(err)
	}
	capped, err := WindowDistribution(TSO(), SweepExactPrefixCap, 5)
	if err != nil {
		t.Fatal(err)
	}
	for gamma := range capped {
		if big[gamma] != capped[gamma] {
			t.Errorf("Pr[B_%d] = %v, want clamped value %v", gamma, big[gamma], capped[gamma])
		}
	}
}

func TestFacadeServer(t *testing.T) {
	srv, err := NewServer(ServeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	body, err := json.Marshal(EstimateRequest{
		Model: "SC", Threads: 2, PrefixLen: 12, Estimator: SweepExact,
		Trials: 1, Seed: 1, StoreProb: 0.5, SwapProb: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/estimate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out EstimateResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if math.Abs(out.Result.Estimate-1.0/6.0) > 1e-3 {
		t.Errorf("SC exact estimate = %v", out.Result.Estimate)
	}
}

func TestFacadeTwoThreadProbabilities(t *testing.T) {
	sc, err := TwoThreadNoBugProbability(SC())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sc.Midpoint()-1.0/6.0) > 1e-6 {
		t.Errorf("SC = %+v", sc)
	}
	wo, err := TwoThreadNoBugProbability(WO())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(wo.Midpoint()-7.0/54.0) > 1e-4 {
		t.Errorf("WO = %+v", wo)
	}
}

func TestFacadeNoBugProbability(t *testing.T) {
	ctx := context.Background()
	est, lo, hi, err := NoBugProbability(ctx, TSO(), 2, 60000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lo > est || est > hi {
		t.Errorf("estimate %v outside its own CI [%v, %v]", est, lo, hi)
	}
	// Paper: TSO n=2 in (0.1315, 0.1369); allow MC slack.
	if est < 0.12 || est > 0.15 {
		t.Errorf("TSO estimate %v implausible", est)
	}
}

func TestFacadeHybridAndScaling(t *testing.T) {
	ctx := context.Background()
	res, err := HybridNoBugProbability(ctx, WO(), 4, 20000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.LogPrA >= 0 {
		t.Errorf("LogPrA = %v", res.LogPrA)
	}
	rows, err := ThreadScaling(ctx, []Model{SC(), WO()}, []int{2, 4}, 20000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestFacadeRunSweep(t *testing.T) {
	ctx := context.Background()
	spec := DefaultSweepSpec()
	spec.Models = []string{"SC", "WO"}
	spec.Threads = []int{2}
	spec.PrefixLens = []int{12}
	spec.Estimators = []SweepKind{SweepExact, SweepHybrid}
	spec.Trials = 2000
	spec.Seed = 11
	art, err := RunSweep(ctx, spec, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(art.Cells) != 4 {
		t.Fatalf("cells = %d", len(art.Cells))
	}
	if math.Abs(art.Cells[0].Estimate-1.0/6.0) > 1e-3 {
		t.Errorf("SC exact = %v", art.Cells[0].Estimate)
	}
	if _, err := RunSweep(ctx, SweepSpec{}, SweepOptions{}); err == nil {
		t.Error("empty spec accepted")
	}
}

// TestFacadeShimsMatchDirectEstimate pins the satellite contract of the
// Query redesign: every legacy facade helper is a pure shim — its output
// is field-for-field identical to a direct Estimate of the equivalent
// Query.
func TestFacadeShimsMatchDirectEstimate(t *testing.T) {
	ctx := context.Background()

	t.Run("NoBugProbability", func(t *testing.T) {
		est, lo, hi, err := NoBugProbability(ctx, TSO(), 2, 5000, 17)
		if err != nil {
			t.Fatal(err)
		}
		q := DefaultQuery()
		q.Kind = SweepFullMC
		q.Model = "TSO"
		q.Trials = 5000
		q.Seed = 17
		direct, err := Estimate(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if est != direct.Estimate || lo != direct.Lo || hi != direct.Hi {
			t.Errorf("shim (%v, %v, %v) != direct (%v, %v, %v)",
				est, lo, hi, direct.Estimate, direct.Lo, direct.Hi)
		}
	})

	t.Run("HybridNoBugProbability", func(t *testing.T) {
		res, err := HybridNoBugProbability(ctx, WO(), 4, 4000, 5)
		if err != nil {
			t.Fatal(err)
		}
		q := DefaultQuery()
		q.Kind = SweepHybrid
		q.Model = "WO"
		q.Threads = 4
		q.Trials = 4000
		q.Seed = 5
		direct, err := Estimate(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if res.PrA != direct.Estimate || res.LogPrA != direct.LogEstimate ||
			res.StdErr != direct.StdErr || res.ProductExpectation != direct.ProductExpectation {
			t.Errorf("shim %+v != direct %+v", res, direct)
		}
	})

	t.Run("TwoThreadNoBugProbability", func(t *testing.T) {
		iv, err := TwoThreadNoBugProbability(PSO())
		if err != nil {
			t.Fatal(err)
		}
		q := DefaultQuery()
		q.Kind = SweepExact
		q.Model = "PSO"
		q.PrefixLen = 16
		direct, err := Estimate(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if iv.Lo != direct.Lo || iv.Hi != direct.Hi {
			t.Errorf("shim [%v, %v] != direct [%v, %v]", iv.Lo, iv.Hi, direct.Lo, direct.Hi)
		}
	})

	t.Run("WindowDistribution", func(t *testing.T) {
		dist, err := WindowDistribution(WO(), 12, 6)
		if err != nil {
			t.Fatal(err)
		}
		q := DefaultQuery()
		q.Kind = SweepWindowDist
		q.Model = "WO"
		q.PrefixLen = 12
		q.MaxGamma = 6
		direct, err := Estimate(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if len(dist) != len(direct.Dist) {
			t.Fatalf("shim has %d entries, direct %d", len(dist), len(direct.Dist))
		}
		for i := range dist {
			if dist[i] != direct.Dist[i] {
				t.Errorf("dist[%d] = %v, want %v", i, dist[i], direct.Dist[i])
			}
		}
	})
}

// TestFacadeQueryConfidence covers the exposed confidence level: a
// narrower level shrinks the Wilson interval around the same point
// estimate.
func TestFacadeQueryConfidence(t *testing.T) {
	ctx := context.Background()
	q := DefaultQuery()
	q.Kind = SweepFullMC
	q.Model = "TSO"
	q.Trials = 5000
	q.Seed = 17
	wide, err := Estimate(ctx, q) // Confidence = DefaultConfidence (0.99)
	if err != nil {
		t.Fatal(err)
	}
	q.Confidence = 0.5
	narrow, err := Estimate(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if wide.Estimate != narrow.Estimate {
		t.Errorf("point estimate depends on confidence: %v vs %v", wide.Estimate, narrow.Estimate)
	}
	if narrow.Hi-narrow.Lo >= wide.Hi-wide.Lo {
		t.Errorf("50%% interval [%v, %v] not narrower than 99%% [%v, %v]",
			narrow.Lo, narrow.Hi, wide.Lo, wide.Hi)
	}
	if wide.Confidence != DefaultConfidence || narrow.Confidence != 0.5 {
		t.Errorf("confidence echoes %v, %v", wide.Confidence, narrow.Confidence)
	}
}

// TestFacadeEstimateBatch exercises the batch API through the facade.
func TestFacadeEstimateBatch(t *testing.T) {
	var queries []Query
	for _, model := range []string{"SC", "TSO"} {
		q := DefaultQuery()
		q.Kind = SweepExact
		q.Model = model
		q.PrefixLen = 12
		queries = append(queries, q)
	}
	done := 0
	results, err := EstimateBatch(context.Background(), queries, BatchOptions{
		Progress: func(int, QueryResult) { done++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || done != 2 {
		t.Fatalf("results %d, progress %d", len(results), done)
	}
	if math.Abs(results[0].Estimate-1.0/6.0) > 1e-3 {
		t.Errorf("SC exact = %v", results[0].Estimate)
	}
	if len(EstimatorKinds()) < 4 {
		t.Errorf("EstimatorKinds = %v", EstimatorKinds())
	}
}

func TestFacadeLitmus(t *testing.T) {
	if len(LitmusTests()) < 7 {
		t.Error("registry too small")
	}
	results, err := LitmusCheckAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if !r.Conforms() {
			t.Errorf("%s under %s does not conform", r.Test, r.Model)
		}
	}
}

// TestFacadeBitsHarness exercises the direct bit-parallel harness entry
// points: a custom BatchTrialBits built with MCPackBools must produce
// the same estimate as the equivalent []bool BatchTrial, word-count
// helpers included, independent of the worker budget.
func TestFacadeBitsHarness(t *testing.T) {
	if MCWordBits != 64 || MCBitWords(65) != 2 || MCBitWords(64) != 1 {
		t.Fatalf("word helpers wrong: MCWordBits=%d MCBitWords(65)=%d", MCWordBits, MCBitWords(65))
	}
	bools := func(src *rng.Source, out []bool) error {
		for i := range out {
			out[i] = src.Uint64()%3 == 0
		}
		return nil
	}
	bits := func(src *rng.Source, out []uint64, n int) error {
		buf := make([]bool, n)
		if err := bools(src, buf); err != nil {
			return err
		}
		MCPackBools(out, buf)
		return nil
	}
	cfg := MCConfig{Trials: 10_000, Seed: 3}
	viaBits, err := EstimateProbabilityBits(context.Background(), cfg, bits)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	viaBools, err := EstimateProbabilityBatch(context.Background(), cfg, bools)
	if err != nil {
		t.Fatal(err)
	}
	if viaBits.Proportion.Successes() != viaBools.Proportion.Successes() {
		t.Errorf("bits=%d bools=%d successes", viaBits.Proportion.Successes(), viaBools.Proportion.Successes())
	}
	if math.Abs(viaBits.Proportion.Estimate()-1.0/3.0) > 0.02 {
		t.Errorf("estimate %v far from 1/3", viaBits.Proportion.Estimate())
	}
}
