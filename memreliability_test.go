package memreliability

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestFacadeModels(t *testing.T) {
	if len(AllModels()) != 4 {
		t.Fatal("AllModels wrong")
	}
	names := []string{"SC", "TSO", "PSO", "WO"}
	for i, m := range AllModels() {
		if m.Name() != names[i] {
			t.Errorf("model %d = %s, want %s", i, m.Name(), names[i])
		}
	}
	m, err := ModelByName("tso")
	if err != nil || m.Name() != "TSO" {
		t.Errorf("ModelByName = %v, %v", m.Name(), err)
	}
}

func TestFacadeWindowDistribution(t *testing.T) {
	dist, err := WindowDistribution(WO(), 12, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(dist) != 7 {
		t.Fatalf("len = %d", len(dist))
	}
	if math.Abs(dist[0]-2.0/3.0) > 1e-3 {
		t.Errorf("WO Pr[B_0] = %v", dist[0])
	}
}

func TestFacadeWindowDistributionClampsOversizedPrefix(t *testing.T) {
	// m=64 is far beyond the 2^m exact-DP state space; the facade must
	// clamp it to the engine's cap instead of passing it through.
	big, err := WindowDistribution(TSO(), 64, 5)
	if err != nil {
		t.Fatal(err)
	}
	capped, err := WindowDistribution(TSO(), SweepExactPrefixCap, 5)
	if err != nil {
		t.Fatal(err)
	}
	for gamma := range capped {
		if big[gamma] != capped[gamma] {
			t.Errorf("Pr[B_%d] = %v, want clamped value %v", gamma, big[gamma], capped[gamma])
		}
	}
}

func TestFacadeServer(t *testing.T) {
	srv, err := NewServer(ServeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	body, err := json.Marshal(EstimateRequest{
		Model: "SC", Threads: 2, PrefixLen: 12, Estimator: SweepExact,
		Trials: 1, Seed: 1, StoreProb: 0.5, SwapProb: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/estimate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out EstimateResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if math.Abs(out.Result.Estimate-1.0/6.0) > 1e-3 {
		t.Errorf("SC exact estimate = %v", out.Result.Estimate)
	}
}

func TestFacadeTwoThreadProbabilities(t *testing.T) {
	sc, err := TwoThreadNoBugProbability(SC())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sc.Midpoint()-1.0/6.0) > 1e-6 {
		t.Errorf("SC = %+v", sc)
	}
	wo, err := TwoThreadNoBugProbability(WO())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(wo.Midpoint()-7.0/54.0) > 1e-4 {
		t.Errorf("WO = %+v", wo)
	}
}

func TestFacadeNoBugProbability(t *testing.T) {
	ctx := context.Background()
	est, lo, hi, err := NoBugProbability(ctx, TSO(), 2, 60000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lo > est || est > hi {
		t.Errorf("estimate %v outside its own CI [%v, %v]", est, lo, hi)
	}
	// Paper: TSO n=2 in (0.1315, 0.1369); allow MC slack.
	if est < 0.12 || est > 0.15 {
		t.Errorf("TSO estimate %v implausible", est)
	}
}

func TestFacadeHybridAndScaling(t *testing.T) {
	ctx := context.Background()
	res, err := HybridNoBugProbability(ctx, WO(), 4, 20000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.LogPrA >= 0 {
		t.Errorf("LogPrA = %v", res.LogPrA)
	}
	rows, err := ThreadScaling(ctx, []Model{SC(), WO()}, []int{2, 4}, 20000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestFacadeRunSweep(t *testing.T) {
	ctx := context.Background()
	spec := DefaultSweepSpec()
	spec.Models = []string{"SC", "WO"}
	spec.Threads = []int{2}
	spec.PrefixLens = []int{12}
	spec.Estimators = []SweepKind{SweepExact, SweepHybrid}
	spec.Trials = 2000
	spec.Seed = 11
	art, err := RunSweep(ctx, spec, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(art.Cells) != 4 {
		t.Fatalf("cells = %d", len(art.Cells))
	}
	if math.Abs(art.Cells[0].Estimate-1.0/6.0) > 1e-3 {
		t.Errorf("SC exact = %v", art.Cells[0].Estimate)
	}
	if _, err := RunSweep(ctx, SweepSpec{}, SweepOptions{}); err == nil {
		t.Error("empty spec accepted")
	}
}

func TestFacadeLitmus(t *testing.T) {
	if len(LitmusTests()) < 7 {
		t.Error("registry too small")
	}
	results, err := LitmusCheckAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if !r.Conforms() {
			t.Errorf("%s under %s does not conform", r.Test, r.Model)
		}
	}
}
