// bench_test.go is the benchmark harness: one benchmark per paper artifact
// (see DESIGN.md §4 for the experiment index E1–E13). Each benchmark
// prints the regenerated table/series once, then times the core
// computation it rests on. Run everything with:
//
//	go test -bench=. -benchmem
package memreliability

import (
	"context"
	"fmt"
	"math"
	"os"
	"sync"

	"memreliability/internal/analytic"
	"memreliability/internal/core"
	"memreliability/internal/estimator"
	"memreliability/internal/litmus"
	"memreliability/internal/machine"
	"memreliability/internal/mc"
	"memreliability/internal/memmodel"
	"memreliability/internal/prog"
	"memreliability/internal/report"
	"memreliability/internal/rng"
	"memreliability/internal/settle"
	"memreliability/internal/shift"
	"memreliability/internal/sweep"
	"memreliability/internal/trace"

	"testing"
)

// printOnce guards each experiment's table so repeated benchmark
// iterations print it a single time.
var printOnce sync.Map

func emit(id string, build func() (*report.Table, error)) {
	once, _ := printOnce.LoadOrStore(id, &sync.Once{})
	once.(*sync.Once).Do(func() {
		tbl, err := build()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s: %v\n", id, err)
			return
		}
		fmt.Println()
		if err := tbl.WriteText(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s: %v\n", id, err)
		}
	})
}

// --- E1: Table 1 — the memory model matrix ---

func BenchmarkTable1ModelMatrix(b *testing.B) {
	emit("E1", func() (*report.Table, error) {
		cols := memmodel.Table1Columns()
		tbl, err := report.NewTable("E1 / Table 1: relaxable ordered pairs per model",
			"model", cols[0], cols[1], cols[2], cols[3])
		if err != nil {
			return nil, err
		}
		for _, m := range memmodel.All() {
			row := m.Table1Row()
			cells := make([]string, 5)
			cells[0] = m.Name()
			for i, relaxed := range row {
				if relaxed {
					cells[i+1] = "X"
				} else {
					cells[i+1] = "-"
				}
			}
			if err := tbl.AddRow(cells...); err != nil {
				return nil, err
			}
		}
		return tbl, nil
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range memmodel.All() {
			_ = m.Table1Row()
		}
	}
}

// --- E2: Figure 1 — a settling instantiation under TSO ---

func BenchmarkFigure1Settling(b *testing.B) {
	p, err := prog.FromTypes([]memmodel.OpType{
		memmodel.Store, memmodel.Load, memmodel.Store,
		memmodel.Store, memmodel.Store, memmodel.Load,
	})
	if err != nil {
		b.Fatal(err)
	}
	emit("E2", func() (*report.Table, error) {
		tbl, err := report.NewTable("E2 / Figure 1: settling under TSO (seeded instantiation)",
			"round", "moved", "from", "to", "order (top..bottom)")
		if err != nil {
			return nil, err
		}
		src := rng.New(2011)
		res, snaps, err := settle.SettleTraced(p, memmodel.TSO(), settle.DefaultOptions(), src)
		if err != nil {
			return nil, err
		}
		for _, snap := range snaps {
			orderStr := ""
			for pos, idx := range snap.Order {
				if pos > 0 {
					orderStr += " "
				}
				orderStr += p.At(idx).String()
			}
			if err := tbl.AddRowValues(snap.Round, p.At(snap.Round-1).String(),
				snap.StartPos, snap.EndPos, orderStr); err != nil {
				return nil, err
			}
		}
		if err := tbl.AddRowValues("-", "window γ", "-", "-",
			fmt.Sprintf("%d", res.WindowGamma())); err != nil {
			return nil, err
		}
		return tbl, nil
	})
	src := rng.New(1)
	opts := settle.DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := settle.SettleTraced(p, memmodel.TSO(), opts, src); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E3: Figure 2 — a shift-process instantiation ---

func BenchmarkFigure2Shift(b *testing.B) {
	lengths := []int{3, 2, 5} // the figure's γ̄
	emit("E3", func() (*report.Table, error) {
		tbl, err := report.NewTable("E3 / Figure 2: shift process on γ̄=(3,2,5) (seeded instantiation)",
			"segment", "length", "shift", "interval", "disjoint?")
		if err != nil {
			return nil, err
		}
		src := rng.New(2011)
		placement, err := shift.Sample(lengths, src)
		if err != nil {
			return nil, err
		}
		disjoint := placement.Disjoint()
		for i := range lengths {
			if err := tbl.AddRowValues(i+1, placement.Lengths[i], placement.Shifts[i],
				fmt.Sprintf("[%d,%d]", placement.Shifts[i], placement.Shifts[i]+placement.Lengths[i]),
				fmt.Sprintf("%v", disjoint)); err != nil {
				return nil, err
			}
		}
		exact, err := shift.ExactTheorem51(lengths)
		if err != nil {
			return nil, err
		}
		if err := tbl.AddRowValues("-", "-", "-", "Pr[A(γ̄)] exact", exact); err != nil {
			return nil, err
		}
		return tbl, nil
	})
	src := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := shift.Sample(lengths, src); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E4: Theorem 4.1 — critical window growth per model ---

func BenchmarkTheorem41CriticalWindow(b *testing.B) {
	emit("E4", func() (*report.Table, error) {
		tbl, err := report.NewTable("E4 / Theorem 4.1: Pr[B_γ] — closed form vs exact DP (m=16) vs Monte Carlo (m=64)",
			"γ", "SC closed", "WO closed", "WO DP", "TSO bounds", "TSO DP", "TSO MC")
		if err != nil {
			return nil, err
		}
		woDP, err := settle.ExactWindowDist(memmodel.WO(), 16, 0.5, 0.5, 8)
		if err != nil {
			return nil, err
		}
		tsoDP, err := settle.ExactWindowDist(memmodel.TSO(), 16, 0.5, 0.5, 8)
		if err != nil {
			return nil, err
		}
		hist, err := mc.EstimateDistribution(context.Background(),
			mc.Config{Trials: 200000, Seed: 41}, 9,
			func(src *rng.Source) (int, error) {
				p, err := prog.Generate(prog.DefaultParams(64), src)
				if err != nil {
					return 0, err
				}
				res, err := settle.Settle(p, memmodel.TSO(), settle.DefaultOptions(), src)
				if err != nil {
					return 0, err
				}
				return res.WindowGamma(), nil
			})
		if err != nil {
			return nil, err
		}
		for gamma := 0; gamma <= 6; gamma++ {
			sc, err := analytic.SCWindow(gamma)
			if err != nil {
				return nil, err
			}
			wo, err := analytic.WOWindow(gamma)
			if err != nil {
				return nil, err
			}
			tso, err := analytic.TSOWindow(gamma)
			if err != nil {
				return nil, err
			}
			if err := tbl.AddRowValues(gamma, sc, wo, woDP.At(gamma),
				report.FormatInterval(tso.Lo, tso.Hi), tsoDP.At(gamma),
				hist.Freq(gamma)); err != nil {
				return nil, err
			}
		}
		return tbl, nil
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := settle.ExactWindowDist(memmodel.TSO(), 14, 0.5, 0.5, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E5: Lemma 4.2 / Claim 4.3 ---

func BenchmarkLemma42ContiguousStores(b *testing.B) {
	emit("E5", func() (*report.Table, error) {
		tbl, err := report.NewTable("E5 / Lemma 4.2 & Claim 4.3: TSO contiguous-store distribution",
			"µ", "Pr[L_µ] exact DP (m=16)", "paper lower bound")
		if err != nil {
			return nil, err
		}
		pmf, err := settle.ExactContiguousStoreDist(memmodel.TSO(), 16, 0.5, 0.5, 8)
		if err != nil {
			return nil, err
		}
		if err := tbl.AddRowValues(0, pmf.At(0),
			fmt.Sprintf("= %s (exact)", report.FormatProb(analytic.Lemma42L0))); err != nil {
			return nil, err
		}
		for mu := 1; mu <= 8; mu++ {
			lower, err := analytic.Lemma42Lower(mu)
			if err != nil {
				return nil, err
			}
			if err := tbl.AddRowValues(mu, pmf.At(mu), "≥ "+report.FormatProb(lower)); err != nil {
				return nil, err
			}
		}
		dens, err := settle.BottomStoreDensity(memmodel.TSO(), 12, 0.5, 0.5)
		if err != nil {
			return nil, err
		}
		if err := tbl.AddRowValues("-", dens[len(dens)-1],
			"Claim 4.3 limit 2/3 = "+report.FormatProb(analytic.Claim43Limit)); err != nil {
			return nil, err
		}
		return tbl, nil
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := settle.ExactContiguousStoreDist(memmodel.TSO(), 14, 0.5, 0.5, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E6: Theorem 5.1 / Corollary 5.2 ---

func BenchmarkTheorem51ShiftDisjointness(b *testing.B) {
	cases := [][]int{{2, 2}, {3, 2, 5}, {2, 2, 2, 2}, {1, 2, 3, 4, 5}}
	emit("E6", func() (*report.Table, error) {
		tbl, err := report.NewTable("E6 / Theorem 5.1 & Corollary 5.2: Pr[A(γ̄)] three ways",
			"γ̄", "exact (Thm 5.1)", "brute force", "Monte Carlo", "c(n)")
		if err != nil {
			return nil, err
		}
		for _, lengths := range cases {
			lengths := lengths
			exact, err := shift.ExactTheorem51(lengths)
			if err != nil {
				return nil, err
			}
			brute, _, err := shift.ExactBruteForce(lengths, 24)
			if err != nil {
				return nil, err
			}
			res, err := mc.EstimateProbability(context.Background(),
				mc.Config{Trials: 200000, Seed: 51},
				func(src *rng.Source) (bool, error) {
					return shift.DisjointTrial(lengths, src)
				})
			if err != nil {
				return nil, err
			}
			c, err := shift.CorollaryC(len(lengths))
			if err != nil {
				return nil, err
			}
			if err := tbl.AddRowValues(fmt.Sprintf("%v", lengths), exact, brute,
				res.Estimate(), c); err != nil {
				return nil, err
			}
		}
		return tbl, nil
	})
	lengths := []int{2, 3, 2, 4, 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := shift.ExactTheorem51(lengths); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E7: Theorem 6.2 — two threads ---

func BenchmarkTheorem62TwoThreads(b *testing.B) {
	emit("E7", func() (*report.Table, error) {
		tbl, err := report.NewTable("E7 / Theorem 6.2: Pr[A] for n=2 — paper vs exact DP vs full simulation",
			"model", "paper", "exact DP", "full MC (99% CI)")
		if err != nil {
			return nil, err
		}
		paper := map[string]string{
			"SC":  "1/6 ≈ " + report.FormatProb(analytic.Theorem62SC),
			"TSO": report.FormatInterval(analytic.Theorem62TSO().Lo, analytic.Theorem62TSO().Hi),
			"PSO": "(no closed form; footnote 4)",
			"WO":  "7/54 ≈ " + report.FormatProb(analytic.Theorem62WO),
		}
		// The models × {exact DP, full MC} grid runs through the sweep
		// engine; exact cells clamp m to the DP cap automatically.
		names := make([]string, 0, 4)
		for _, model := range memmodel.All() {
			names = append(names, model.Name())
		}
		spec := sweep.DefaultSpec()
		spec.Models = names
		spec.Threads = []int{2}
		spec.PrefixLens = []int{64}
		spec.Estimators = []sweep.Kind{sweep.Exact, sweep.FullMC}
		spec.Trials = 200000
		spec.Seed = 62
		art, err := sweep.Run(context.Background(), spec, sweep.Options{})
		if err != nil {
			return nil, err
		}
		// Cells per model: exact first, then full MC.
		for i := 0; i+1 < len(art.Cells); i += 2 {
			exact, fullMC := art.Cells[i], art.Cells[i+1]
			if err := tbl.AddRowValues(exact.Model, paper[exact.Model],
				exact.Estimate,
				report.FormatProb(fullMC.Estimate)+" "+report.FormatInterval(fullMC.Lo, fullMC.Hi)); err != nil {
				return nil, err
			}
		}
		return tbl, nil
	})
	cfg := core.Config{Model: memmodel.TSO(), Threads: 2, PrefixLen: 14, StoreProb: 0.5, SwapProb: 0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.ExactTwoThreadPrA(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E8: Theorem 6.3 — thread scaling ---

func BenchmarkTheorem63ThreadScaling(b *testing.B) {
	emit("E8", func() (*report.Table, error) {
		tbl, err := report.NewTable("E8 / Theorem 6.3: −ln Pr[A]/n² per model (hybrid estimator); gap to SC vanishes",
			"n", "model", "ln Pr[A]", "rate", "ratio to SC")
		if err != nil {
			return nil, err
		}
		models := []memmodel.Model{memmodel.SC(), memmodel.TSO(), memmodel.WO()}
		rows, err := sweep.ThreadScaling(context.Background(), models,
			[]int{2, 3, 4, 6, 8, 12}, 48, mc.Config{Trials: 60000, Seed: 63})
		if err != nil {
			return nil, err
		}
		for _, r := range rows {
			if err := tbl.AddRowValues(r.Threads, r.Model,
				report.FormatRatio(r.LogPrA), report.FormatRatio(r.Rate),
				report.FormatRatio(r.RatioToSC)); err != nil {
				return nil, err
			}
		}
		if err := tbl.AddRowValues("∞", "SC (analytic)", "-",
			report.FormatRatio(analytic.Theorem63AsymptoticRate), "1.0000"); err != nil {
			return nil, err
		}
		return tbl, nil
	})
	cfg := core.DefaultConfig(memmodel.WO(), 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.HybridPrA(context.Background(), cfg,
			mc.Config{Trials: 2000, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E9: PSO extension (footnote 4) ---

func BenchmarkPSOExtension(b *testing.B) {
	emit("E9", func() (*report.Table, error) {
		tbl, err := report.NewTable("E9 / PSO (footnote 4): window distribution and n=2 Pr[A] vs TSO",
			"γ", "TSO Pr[B_γ]", "PSO Pr[B_γ]")
		if err != nil {
			return nil, err
		}
		tso, err := settle.ExactWindowDist(memmodel.TSO(), 16, 0.5, 0.5, 6)
		if err != nil {
			return nil, err
		}
		pso, err := settle.ExactWindowDist(memmodel.PSO(), 16, 0.5, 0.5, 6)
		if err != nil {
			return nil, err
		}
		for gamma := 0; gamma <= 6; gamma++ {
			if err := tbl.AddRowValues(gamma, tso.At(gamma), pso.At(gamma)); err != nil {
				return nil, err
			}
		}
		for _, model := range []memmodel.Model{memmodel.TSO(), memmodel.PSO()} {
			cfg := core.Config{Model: model, Threads: 2, PrefixLen: 16, StoreProb: 0.5, SwapProb: 0.5}
			iv, err := core.ExactTwoThreadPrA(cfg)
			if err != nil {
				return nil, err
			}
			if err := tbl.AddRowValues("Pr[A] n=2", model.Name(), iv.Midpoint()); err != nil {
				return nil, err
			}
		}
		return tbl, nil
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := settle.ExactWindowDist(memmodel.PSO(), 14, 0.5, 0.5, 6); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E10: fences (§7 extension) ---

// fencedWindowTrial samples one critical window from a WO-settled random
// program with an acquire fence inserted `distance` instructions above the
// critical load.
func fencedWindowTrial(distance, prefixLen int, src *rng.Source) (int, error) {
	types := make([]memmodel.OpType, prefixLen)
	for i := range types {
		if src.Bool(0.5) {
			types[i] = memmodel.Store
		} else {
			types[i] = memmodel.Load
		}
	}
	if distance >= 0 && distance < prefixLen {
		types[prefixLen-1-distance] = memmodel.FenceAcquire
	}
	p, err := prog.FromTypes(types)
	if err != nil {
		return 0, err
	}
	res, err := settle.Settle(p, memmodel.WO(), settle.DefaultOptions(), src)
	if err != nil {
		return 0, err
	}
	return res.WindowGamma(), nil
}

func BenchmarkFenceExtension(b *testing.B) {
	emit("E10", func() (*report.Table, error) {
		tbl, err := report.NewTable("E10 / §7 fences: acquire fence above the critical LD shrinks the WO window",
			"fence distance", "E[γ]", "Pr[γ=0]", "n=2 Pr[A] (MC)")
		if err != nil {
			return nil, err
		}
		ctx := context.Background()
		for _, distance := range []int{0, 1, 2, 4, 8, -1} {
			distance := distance
			hist, err := mc.EstimateDistribution(ctx, mc.Config{Trials: 120000, Seed: 70}, 24,
				func(src *rng.Source) (int, error) {
					return fencedWindowTrial(distance, 24, src)
				})
			if err != nil {
				return nil, err
			}
			meanGamma := 0.0
			mgf := 0.0
			for g := 0; g < 24; g++ {
				meanGamma += float64(g) * hist.Freq(g)
				mgf += math.Pow(2, -float64(g+2)) * hist.Freq(g)
			}
			label := fmt.Sprintf("%d", distance)
			if distance < 0 {
				label = "none"
			}
			if err := tbl.AddRowValues(label, report.FormatRatio(meanGamma),
				hist.Freq(0), 2.0/3.0*mgf); err != nil {
				return nil, err
			}
		}
		return tbl, nil
	})
	src := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fencedWindowTrial(2, 24, src); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E11: parameter sensitivity (footnote 3) ---

func BenchmarkParameterSensitivity(b *testing.B) {
	emit("E11", func() (*report.Table, error) {
		tbl, err := report.NewTable("E11 / footnote 3 sensitivity: n=2 Pr[A] under TSO across (p, s)",
			"p (store prob)", "s (swap prob)", "Pr[A] exact DP")
		if err != nil {
			return nil, err
		}
		for _, p := range []float64{0.25, 0.5, 0.75} {
			for _, s := range []float64{0.25, 0.5, 0.75} {
				cfg := core.Config{Model: memmodel.TSO(), Threads: 2, PrefixLen: 16,
					StoreProb: p, SwapProb: s}
				iv, err := core.ExactTwoThreadPrA(cfg)
				if err != nil {
					return nil, err
				}
				if err := tbl.AddRowValues(p, s, iv.Midpoint()); err != nil {
					return nil, err
				}
			}
		}
		return tbl, nil
	})
	cfg := core.Config{Model: memmodel.TSO(), Threads: 2, PrefixLen: 14, StoreProb: 0.25, SwapProb: 0.75}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.ExactTwoThreadPrA(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E12: the canonical race, operationally ---

func BenchmarkOperationalRace(b *testing.B) {
	incTest, err := litmus.ByName("INC")
	if err != nil {
		b.Fatal(err)
	}
	emit("E12", func() (*report.Table, error) {
		tbl, err := report.NewTable("E12 / §2.2 operational: lost-increment frequency and race detection per model",
			"model", "bug freq (x=1)", "buffered freq", "runs with detected race")
		if err != nil {
			return nil, err
		}
		src := rng.New(12)
		for _, model := range memmodel.All() {
			freq, err := litmus.TargetFrequency(incTest, model, 20000, src)
			if err != nil {
				return nil, err
			}
			// The store-buffer machine separates store execution from
			// visibility (the drain step), which is exactly the widened
			// vulnerability window the paper's settling model captures;
			// the action-level window machine cannot show it for INC
			// because the dependency chain fixes each thread's order.
			bufferedFreq := "n/a (SC/WO)"
			if model.Name() == "TSO" || model.Name() == "PSO" {
				bsim, err := machine.NewBufferedSim(incTest.Prog, model)
				if err != nil {
					return nil, err
				}
				hits := 0
				const bufRuns = 20000
				for i := 0; i < bufRuns; i++ {
					o, err := bsim.RunRandom(src)
					if err != nil {
						return nil, err
					}
					ok, err := incTest.Target.Holds(o)
					if err != nil {
						return nil, err
					}
					if ok {
						hits++
					}
				}
				bufferedFreq = report.FormatProb(float64(hits) / bufRuns)
			}
			sim, err := machine.NewSim(incTest.Prog, model)
			if err != nil {
				return nil, err
			}
			raceRuns := 0
			const runs = 200
			for i := 0; i < runs; i++ {
				_, seq, err := sim.RunRandom(src)
				if err != nil {
					return nil, err
				}
				events, err := trace.EventsFromRun(incTest.Prog, seq)
				if err != nil {
					return nil, err
				}
				races, err := trace.Analyze(events)
				if err != nil {
					return nil, err
				}
				if len(races) > 0 {
					raceRuns++
				}
			}
			if err := tbl.AddRowValues(model.Name(), freq, bufferedFreq,
				fmt.Sprintf("%d/%d", raceRuns, runs)); err != nil {
				return nil, err
			}
		}
		return tbl, nil
	})
	src := rng.New(1)
	sim, err := machine.NewSim(incTest.Prog, memmodel.TSO())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sim.RunRandom(src); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E13: litmus conformance ---

func BenchmarkLitmusConformance(b *testing.B) {
	emit("E13", func() (*report.Table, error) {
		tbl, err := report.NewTable("E13 / litmus conformance: relaxed-outcome reachability per model (X=reachable)",
			"test", "SC", "TSO", "PSO", "WO", "conforms")
		if err != nil {
			return nil, err
		}
		results, err := litmus.CheckAll()
		if err != nil {
			return nil, err
		}
		byTest := make(map[string]map[string]litmus.Result)
		for _, r := range results {
			if byTest[r.Test] == nil {
				byTest[r.Test] = make(map[string]litmus.Result)
			}
			byTest[r.Test][r.Model] = r
		}
		for _, t := range litmus.Registry() {
			cells := []string{t.Name}
			conforms := true
			for _, model := range memmodel.All() {
				r := byTest[t.Name][model.Name()]
				mark := "-"
				if r.Reachable {
					mark = "X"
				}
				cells = append(cells, mark)
				conforms = conforms && r.Conforms()
			}
			cells = append(cells, fmt.Sprintf("%v", conforms))
			if err := tbl.AddRow(cells...); err != nil {
				return nil, err
			}
		}
		return tbl, nil
	})
	sb, err := litmus.ByName("SB")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := litmus.Check(sb, memmodel.TSO()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation: sweep-engine orchestration overhead ---

func BenchmarkSweepEngine(b *testing.B) {
	spec := sweep.Spec{
		Models:     []string{"SC", "TSO", "WO"},
		Threads:    []int{2, 4},
		PrefixLens: []int{16},
		Estimators: []sweep.Kind{sweep.Exact, sweep.Hybrid},
		Trials:     500,
		Seed:       1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sweep.Run(context.Background(), spec, sweep.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation: fixed vs adaptive precision on the same cell ---

// BenchmarkAdaptivePrecision compares the fixed-trials route against the
// adaptive estimate-to-target-CI route on one easy cell: both meet a
// ±0.01 Wilson half-width, but the adaptive run stops as soon as the
// interval is tight enough instead of burning the whole budget. The
// per-op times ARE the comparison (run via `make bench-adaptive`).
func BenchmarkAdaptivePrecision(b *testing.B) {
	base := estimator.DefaultQuery()
	base.Kind = estimator.FullMC
	base.Model = "TSO"
	base.PrefixLen = 24
	base.Trials = 100000
	base.Seed = 99

	b.Run("fixed-100k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := estimator.Estimate(context.Background(), base); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("adaptive-halfwidth-0.01", func(b *testing.B) {
		q := base
		q.Precision = &estimator.Precision{TargetHalfWidth: 0.01}
		var res estimator.Result
		var err error
		for i := 0; i < b.N; i++ {
			if res, err = estimator.Estimate(context.Background(), q); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(res.TrialsUsed), "trials")
	})
}

// --- ablation: settling cost across models (DESIGN.md validation aid) ---

func BenchmarkAblationSettleByModel(b *testing.B) {
	for _, model := range memmodel.All() {
		model := model
		b.Run(model.Name(), func(b *testing.B) {
			src := rng.New(1)
			p, err := prog.Generate(prog.DefaultParams(64), src)
			if err != nil {
				b.Fatal(err)
			}
			opts := settle.DefaultOptions()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := settle.Settle(p, model, opts, src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- ablation: end-to-end trial cost by thread count ---

func BenchmarkAblationJoinedTrialByThreads(b *testing.B) {
	for _, n := range []int{2, 4, 8} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			cfg := core.DefaultConfig(memmodel.TSO(), n)
			src := rng.New(1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cfg.ManifestTrial(src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
