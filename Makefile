# Targets mirror .github/workflows/ci.yml step for step, so local runs and
# CI stay in lockstep.

GO ?= go

.PHONY: all build test bench bench-adaptive lint smoke-serve vuln ci

all: ci

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# bench skips the AdaptivePrecision comparison — that one (the most
# expensive benchmark) runs exactly once, in its own bench-adaptive step.
bench:
	$(GO) test -bench=. -skip=AdaptivePrecision -benchtime=1x -run='^$$'

# bench-adaptive runs the fixed-vs-adaptive comparison on the same cell:
# both meet the same interval target, the adaptive side reports the
# trials it actually consumed.
bench-adaptive:
	$(GO) test -bench=AdaptivePrecision -benchtime=1x -run='^$$'

smoke-serve:
	./scripts/smoke_serve.sh

lint:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; \
	fi
	$(GO) vet ./...
	$(GO) vet ./examples/...

# vuln scans the module with govulncheck when the tool is available
# (CI installs it; offline dev machines skip with a notice).
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

ci: lint build test bench bench-adaptive smoke-serve vuln
