# Targets mirror .github/workflows/ci.yml step for step, so local runs and
# CI stay in lockstep.

GO ?= go

.PHONY: all build test bench lint smoke-serve vuln ci

all: ci

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$'

smoke-serve:
	./scripts/smoke_serve.sh

lint:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; \
	fi
	$(GO) vet ./...
	$(GO) vet ./examples/...

# vuln scans the module with govulncheck when the tool is available
# (CI installs it; offline dev machines skip with a notice).
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

ci: lint build test bench smoke-serve vuln
