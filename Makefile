# Targets mirror .github/workflows/ci.yml step for step: every workflow
# step that exercises the module runs `make <target>`, and
# scripts/check_ci_sync.sh (run by `lint`) fails the build when the
# workflow's target set and the `ci` aggregate below drift apart.

GO ?= go

# Pinned staticcheck (2025.1.1); CI installs exactly this version.
STATICCHECK_VERSION ?= v0.6.1

.PHONY: all build test bench bench-adaptive bench-bits bench-compare staticcheck staticcheck-install lint smoke-serve smoke-cluster smoke-differential fuzz-smoke vuln ci

all: ci

# staticcheck-install fetches the pinned linter; CI runs it before the
# staticcheck step so the version is pinned in exactly one place (above).
# Needs network, so it is deliberately NOT part of the `ci` aggregate.
staticcheck-install:
	$(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)

lint:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; \
	fi
	$(GO) vet ./...
	$(GO) vet ./examples/...
	./scripts/check_ci_sync.sh

# staticcheck runs the pinned linter when the tool is available
# (CI installs it; offline dev machines skip with a notice).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION))"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# bench skips the AdaptivePrecision comparison — that one (the most
# expensive benchmark) runs exactly once, in its own bench-adaptive step.
bench:
	$(GO) test -bench=. -skip=AdaptivePrecision -benchtime=1x -run='^$$'

# bench-adaptive runs the fixed-vs-adaptive comparison on the same cell:
# both meet the same interval target, the adaptive side reports the
# trials it actually consumed.
bench-adaptive:
	$(GO) test -bench=AdaptivePrecision -benchtime=1x -run='^$$'

# bench-bits is the bit-parallel zero-alloc gate: run just the steady-state
# chunk scenarios with membench's unconditional zero-alloc check (no
# baseline needed) — fast enough to run on every hot-path change.
bench-bits:
	$(GO) run ./cmd/membench -rev bits -o BENCH_bits.json -only '^(bits-kernel|core-nobug-bits|compiled-kernel|rng-bulkfill|mc-batch|mc-mean-batch|mc-instrumented|obs-metrics)/'

# bench-compare is the perf-regression gate: run the canonical
# cmd/membench suite, emit BENCH_new.json, and compare it against the
# committed BENCH_baseline.json with the CI tolerances — fail on >2x
# ns/op growth, or on ANY allocs/op growth on zero-alloc scenarios.
bench-compare:
	$(GO) run ./cmd/membench -rev new -o BENCH_new.json -baseline BENCH_baseline.json

smoke-serve:
	./scripts/smoke_serve.sh

# smoke-cluster boots a 2-worker + coordinator fleet with a shared
# persistent store and checks the distributed artifact is byte-identical
# to single-process memsweep -o.
smoke-cluster:
	./scripts/smoke_cluster.sh

# smoke-differential is the bounded-time seeded differential gate:
# randomized queries cross-checked across the compiled engine, the
# table-driven reference kernel, and the []bool closure adapter — any
# divergence fails with a deterministic repro (see cmd/memdiff).
smoke-differential:
	$(GO) run ./cmd/memdiff -duration 10s -seed 1

# fuzz-smoke replays the committed fuzz corpora under plain `go test`,
# then runs each native fuzz target (FuzzParseLitmus,
# FuzzDifferentialEstimate) for a bounded FUZZTIME (default 30s each).
# Crashers land in the packages' testdata/fuzz/ directories; CI uploads
# them as artifacts on failure.
fuzz-smoke:
	./scripts/fuzz_smoke.sh

# vuln scans the module with govulncheck when the tool is available
# (CI installs it; offline dev machines skip with a notice).
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

ci: lint staticcheck build test bench bench-adaptive bench-bits bench-compare smoke-serve smoke-cluster smoke-differential fuzz-smoke vuln
