// membench runs the canonical performance suite (internal/perf) and
// emits the schema-versioned BENCH_<rev>.json artifact; with -baseline
// it doubles as the perf-regression gate, comparing the fresh record
// against a committed baseline and exiting non-zero on regression. CI's
// bench-regression job and `make bench-compare` are exactly:
//
//	membench -rev new -o BENCH_new.json -baseline BENCH_baseline.json
//
// Refreshing the committed baseline is a deliberate act:
//
//	membench -rev baseline -o BENCH_baseline.json
//
// Usage:
//
//	membench -o BENCH_dev.json                       # run suite, write record
//	membench -list                                   # print scenario ids
//	membench -compare-only -baseline OLD -o NEW      # diff two records, no run
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"testing"

	"memreliability/internal/perf"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if !errors.Is(err, errRegression) {
			fmt.Fprintf(os.Stderr, "membench: %v\n", err)
		}
		os.Exit(1)
	}
}

// errRegression marks a gate failure that has already been reported via
// the comparison table.
var errRegression = errors.New("membench: performance regression")

func run(args []string, out, progress io.Writer) error {
	fs := flag.NewFlagSet("membench", flag.ContinueOnError)
	fs.SetOutput(progress)
	rev := fs.String("rev", "dev", "revision label stamped into the record (names the default output file)")
	outPath := fs.String("o", "", "output record path (default BENCH_<rev>.json)")
	baseline := fs.String("baseline", "", "baseline record to compare against; regressions exit non-zero")
	compareOnly := fs.Bool("compare-only", false, "do not run the suite; compare -baseline against the existing -o file")
	list := fs.Bool("list", false, "print the suite's scenario ids and exit")
	benchtime := fs.String("benchtime", "", "per-scenario measurement budget (Go benchtime syntax, e.g. 0.5s or 10x; default 1s)")
	maxNsRatio := fs.Float64("max-ns-ratio", perf.DefaultMaxNsRatio, "fail when a scenario's ns/op grows beyond this ratio of the baseline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	if *list {
		for _, s := range perf.Suite() {
			fmt.Fprintf(out, "%-34s %s\n", s.ID, s.Description)
		}
		return nil
	}

	if *outPath == "" {
		*outPath = "BENCH_" + *rev + ".json"
	}

	var fresh *perf.Record
	if *compareOnly {
		if *baseline == "" {
			return errors.New("-compare-only needs -baseline")
		}
		var err error
		if fresh, err = perf.ReadFile(*outPath); err != nil {
			return err
		}
	} else {
		if *benchtime != "" {
			// Route the budget to testing.Benchmark through the standard
			// benchtime flag, which testing.Init registers.
			testing.Init()
			if err := flag.CommandLine.Set("test.benchtime", *benchtime); err != nil {
				return fmt.Errorf("bad -benchtime: %w", err)
			}
		}
		fmt.Fprintf(progress, "running %d scenarios (go %s)\n", len(perf.Suite()), perf.NewRecord("").GoVersion)
		fresh = perf.RunSuite(*rev, func(res perf.ScenarioResult) {
			fmt.Fprintf(progress, "  %-34s %14.0f ns/op %8.0f allocs/op", res.ID, res.NsPerOp, res.AllocsPerOp)
			if res.TrialsPerSec > 0 {
				fmt.Fprintf(progress, " %14.0f trials/s", res.TrialsPerSec)
			}
			fmt.Fprintln(progress)
		})
		if err := perf.WriteFile(*outPath, fresh); err != nil {
			return err
		}
		fmt.Fprintf(progress, "wrote %s\n", *outPath)
	}

	if *baseline == "" {
		return nil
	}
	base, err := perf.ReadFile(*baseline)
	if err != nil {
		return err
	}
	report, err := perf.Compare(base, fresh, perf.Tolerances{MaxNsRatio: *maxNsRatio})
	if err != nil {
		return err
	}
	if err := report.WriteText(out); err != nil {
		return err
	}
	if report.Regressed() {
		return errRegression
	}
	return nil
}
