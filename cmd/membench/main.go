// membench runs the canonical performance suite (internal/perf) and
// emits the schema-versioned BENCH_<rev>.json artifact; with -baseline
// it doubles as the perf-regression gate, comparing the fresh record
// against a committed baseline and exiting non-zero on regression. CI's
// bench-regression job and `make bench-compare` are exactly:
//
//	membench -rev new -o BENCH_new.json -baseline BENCH_baseline.json
//
// Refreshing the committed baseline is a deliberate act:
//
//	membench -rev baseline -o BENCH_baseline.json
//
// Usage:
//
//	membench -o BENCH_dev.json                       # run suite, write record
//	membench -list                                   # print scenario ids
//	membench -compare-only -baseline OLD -o NEW      # diff two records, no run
//	membench -only 'bits|chunk' -o BENCH_bits.json   # run a focused subset
//
// Zero-alloc scenarios are gated unconditionally: any measured
// allocation on one fails the run (disable with -require-zero-alloc=false
// when investigating), so a new zero-alloc scenario is enforced from the
// commit that introduces it, not from the next baseline refresh.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"runtime/pprof"
	"testing"

	"memreliability/internal/perf"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if !errors.Is(err, errRegression) {
			fmt.Fprintf(os.Stderr, "membench: %v\n", err)
		}
		os.Exit(1)
	}
}

// errRegression marks a gate failure that has already been reported via
// the comparison table.
var errRegression = errors.New("membench: performance regression")

func run(args []string, out, progress io.Writer) error {
	fs := flag.NewFlagSet("membench", flag.ContinueOnError)
	fs.SetOutput(progress)
	rev := fs.String("rev", "dev", "revision label stamped into the record (names the default output file)")
	outPath := fs.String("o", "", "output record path (default BENCH_<rev>.json)")
	baseline := fs.String("baseline", "", "baseline record to compare against; regressions exit non-zero")
	compareOnly := fs.Bool("compare-only", false, "do not run the suite; compare -baseline against the existing -o file")
	list := fs.Bool("list", false, "print the suite's scenario ids and exit")
	benchtime := fs.String("benchtime", "", "per-scenario measurement budget (Go benchtime syntax, e.g. 0.5s or 10x; default 1s)")
	maxNsRatio := fs.Float64("max-ns-ratio", perf.DefaultMaxNsRatio, "fail when a scenario's ns/op grows beyond this ratio of the baseline")
	only := fs.String("only", "", "run only scenarios whose id matches this regexp (focused runs; incompatible with -baseline)")
	requireZeroAlloc := fs.Bool("require-zero-alloc", true, "fail when any zero-alloc scenario allocates at all, baseline or not")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the suite run to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile (after the run) to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *only != "" && *baseline != "" {
		// A filtered record is missing scenarios by construction; comparing
		// it against a full baseline would report them all as regressions.
		return errors.New("-only cannot be combined with -baseline")
	}

	if *list {
		for _, s := range perf.Suite() {
			fmt.Fprintf(out, "%-34s %s\n", s.ID, s.Description)
		}
		return nil
	}

	if *outPath == "" {
		*outPath = "BENCH_" + *rev + ".json"
	}

	var fresh *perf.Record
	if *compareOnly {
		if *baseline == "" {
			return errors.New("-compare-only needs -baseline")
		}
		var err error
		if fresh, err = perf.ReadFile(*outPath); err != nil {
			return err
		}
	} else {
		if *benchtime != "" {
			// Route the budget to testing.Benchmark through the standard
			// benchtime flag, which testing.Init registers.
			testing.Init()
			if err := flag.CommandLine.Set("test.benchtime", *benchtime); err != nil {
				return fmt.Errorf("bad -benchtime: %w", err)
			}
		}
		scenarios := perf.Suite()
		if *only != "" {
			re, err := regexp.Compile(*only)
			if err != nil {
				return fmt.Errorf("bad -only: %w", err)
			}
			kept := scenarios[:0:0]
			for _, s := range scenarios {
				if re.MatchString(s.ID) {
					kept = append(kept, s)
				}
			}
			if len(kept) == 0 {
				return fmt.Errorf("-only %q matches no scenarios", *only)
			}
			scenarios = kept
		}
		fmt.Fprintf(progress, "running %d scenarios (go %s)\n", len(scenarios), perf.NewRecord("").GoVersion)
		if *cpuProfile != "" {
			f, err := os.Create(*cpuProfile)
			if err != nil {
				return fmt.Errorf("create cpuprofile: %w", err)
			}
			if err := pprof.StartCPUProfile(f); err != nil {
				f.Close()
				return fmt.Errorf("start cpuprofile: %w", err)
			}
			defer func() {
				pprof.StopCPUProfile()
				f.Close()
			}()
		}
		fresh = perf.RunScenarios(*rev, scenarios, func(res perf.ScenarioResult) {
			fmt.Fprintf(progress, "  %-34s %14.0f ns/op %8.0f allocs/op", res.ID, res.NsPerOp, res.AllocsPerOp)
			if res.TrialsPerSec > 0 {
				fmt.Fprintf(progress, " %14.0f trials/s", res.TrialsPerSec)
			}
			fmt.Fprintln(progress)
		})
		if *memProfile != "" {
			f, err := os.Create(*memProfile)
			if err != nil {
				return fmt.Errorf("create memprofile: %w", err)
			}
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return fmt.Errorf("write memprofile: %w", err)
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
		if err := perf.WriteFile(*outPath, fresh); err != nil {
			return err
		}
		fmt.Fprintf(progress, "wrote %s\n", *outPath)
	}

	if *requireZeroAlloc {
		if bad := perf.ZeroAllocViolations(fresh); len(bad) > 0 {
			for _, s := range bad {
				fmt.Fprintf(out, "zero-alloc violation: %-34s %.0f allocs/op\n", s.ID, s.AllocsPerOp)
			}
			return errRegression
		}
	}

	if *baseline == "" {
		return nil
	}
	base, err := perf.ReadFile(*baseline)
	if err != nil {
		return err
	}
	report, err := perf.Compare(base, fresh,
		perf.Tolerances{MaxNsRatio: *maxNsRatio, RequireZeroAlloc: *requireZeroAlloc})
	if err != nil {
		return err
	}
	if err := report.WriteText(out); err != nil {
		return err
	}
	if report.Regressed() {
		return errRegression
	}
	return nil
}
