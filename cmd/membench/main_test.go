package main

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"memreliability/internal/perf"
)

func TestListScenarios(t *testing.T) {
	var out, progress bytes.Buffer
	if err := run([]string{"-list"}, &out, &progress); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"exact-dp/", "fixed-mc/", "adaptive-mc/", "hybrid/", "windowdist/", "mc-batch/chunk-8k"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("listing lacks %q:\n%s", want, out.String())
		}
	}
}

// TestRunWritesRecordAndSelfCompares runs the whole suite once (one op
// per scenario), checks the emitted artifact's shape, and verifies the
// gate passes against itself.
func TestRunWritesRecordAndSelfCompares(t *testing.T) {
	if testing.Short() {
		t.Skip("suite run in -short mode")
	}
	out := filepath.Join(t.TempDir(), "BENCH_test.json")
	var stdout, progress bytes.Buffer
	if err := run([]string{"-benchtime", "1x", "-rev", "test", "-o", out}, &stdout, &progress); err != nil {
		t.Fatalf("%v\nprogress:\n%s", err, progress.String())
	}
	rec, err := perf.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if rec.SchemaVersion != perf.SchemaVersion || rec.Revision != "test" || rec.GoVersion == "" {
		t.Errorf("bad stamp: %+v", rec)
	}
	if len(rec.Scenarios) != len(perf.Suite()) {
		t.Errorf("recorded %d scenarios, suite has %d", len(rec.Scenarios), len(perf.Suite()))
	}
	for _, s := range rec.Scenarios {
		if s.NsPerOp <= 0 || s.Ops <= 0 {
			t.Errorf("implausible measurement %+v", s)
		}
	}

	var table bytes.Buffer
	if err := run([]string{"-compare-only", "-baseline", out, "-o", out}, &table, &progress); err != nil {
		t.Fatalf("self-comparison failed: %v\n%s", err, table.String())
	}
	if !strings.Contains(table.String(), "PASS") {
		t.Errorf("self-comparison table:\n%s", table.String())
	}
}

// TestCompareOnlyGateFails crafts a regressed record pair on disk and
// checks the CLI exits with the regression error.
func TestCompareOnlyGateFails(t *testing.T) {
	dir := t.TempDir()
	base := perf.NewRecord("base")
	base.Scenarios = []perf.ScenarioResult{{ID: "s", NsPerOp: 100, Ops: 1}}
	fresh := perf.NewRecord("fresh")
	fresh.Scenarios = []perf.ScenarioResult{{ID: "s", NsPerOp: 500, Ops: 1}}
	basePath, freshPath := filepath.Join(dir, "old.json"), filepath.Join(dir, "new.json")
	if err := perf.WriteFile(basePath, base); err != nil {
		t.Fatal(err)
	}
	if err := perf.WriteFile(freshPath, fresh); err != nil {
		t.Fatal(err)
	}
	var table bytes.Buffer
	err := run([]string{"-compare-only", "-baseline", basePath, "-o", freshPath}, &table, os.Stderr)
	if !errors.Is(err, errRegression) {
		t.Errorf("err = %v, want errRegression\n%s", err, table.String())
	}
	if !strings.Contains(table.String(), "FAIL") {
		t.Errorf("table:\n%s", table.String())
	}
	// The same pair passes under an explicitly loose ratio.
	table.Reset()
	if err := run([]string{"-compare-only", "-baseline", basePath, "-o", freshPath,
		"-max-ns-ratio", "10"}, &table, os.Stderr); err != nil {
		t.Errorf("loose gate failed: %v\n%s", err, table.String())
	}
}
