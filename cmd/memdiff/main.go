// memdiff is the randomized differential sweep: it draws seeded
// scenarios from internal/scenariogen and cross-checks every
// independent estimation route through internal/diffcheck — the same
// harness behind the FuzzDifferentialEstimate fuzz target, so any
// divergence replays in either direction.
//
// Per scenario, every applicable check runs:
//
//   - mc vs mc-compiled vs the []bool closure adapter, bit-identical
//     (fixed-trials and adaptive-precision paths);
//   - the independent exact enumerations against each other and, for
//     n=2, against the settling-DP interval;
//   - exact Pr[A] inside the Monte Carlo route's extreme-confidence
//     Wilson interval;
//   - the exact window distribution against the paper's closed-form
//     bounds at the normal form.
//
// Interleaved with the query sweep, random relax-matrix models cover
// the whole 16-point model lattice at the core layer — the registry's
// named models are only 6 of its points.
//
// Usage:
//
//	memdiff                      # 5s budget, seed 1
//	memdiff -duration 30s -seed 7 -queries 200
//
// The run is deterministic in -seed: CI failures replay locally with
// the same flags.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"memreliability/internal/core"
	"memreliability/internal/diffcheck"
	"memreliability/internal/estimator"
	"memreliability/internal/scenariogen"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "memdiff: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("memdiff", flag.ContinueOnError)
	seed := fs.Uint64("seed", 1, "generator seed; the whole run is deterministic in it")
	duration := fs.Duration("duration", 5*time.Second, "time budget; the harness stops drawing scenarios when it is spent")
	queries := fs.Int("queries", 0, "scenario cap (0 = unlimited within the time budget)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	ctx := context.Background()
	gen := scenariogen.New(*seed)
	params := scenariogen.QueryParams{
		Kinds:      []estimator.Kind{estimator.FullMC, estimator.CompiledMC},
		MaxThreads: 4,
		MaxPrefix:  24,
		MaxTrials:  4096,
	}
	deadline := time.Now().Add(*duration)
	checked, adaptives, exacts := 0, 0, 0
	for time.Now().Before(deadline) && (*queries == 0 || checked < *queries) {
		q := gen.Query(params)
		if checked%4 == 3 {
			q.Precision = &estimator.Precision{TargetHalfWidth: 0.02, MaxTrials: 1 << 14}
			adaptives++
		}
		if diffcheck.ExactFeasible(q.Threads, q.PrefixLen) {
			exacts++
		}
		if err := diffcheck.Check(ctx, q); err != nil {
			return fmt.Errorf("scenario #%d (replay: -seed %d -queries %d): %w\nrepro query: %+v",
				checked, *seed, checked+1, err, q)
		}
		// Every 8th scenario, a random point of the 16-model relax
		// lattice at the core layer (custom, unregistered model).
		if checked%8 == 7 {
			cfg := core.Config{
				Model:     gen.Model(),
				Threads:   2 + checked%3,
				PrefixLen: 3 + checked%6,
				StoreProb: gen.Prob(),
				SwapProb:  gen.Prob(),
			}
			if _, err := diffcheck.CheckExactRoutes(cfg); err != nil {
				return fmt.Errorf("scenario #%d (model lattice, replay: -seed %d -queries %d): %w",
					checked, *seed, checked+1, err)
			}
		}
		checked++
	}
	fmt.Printf("memdiff: %d scenarios cross-checked (%d adaptive, %d exact-route), all routes agree (seed %d)\n",
		checked, adaptives, exacts, *seed)
	return nil
}
