// memdiff is the bounded-time seeded differential smoke harness: the
// first step toward the ROADMAP's differential fuzz harness. It draws
// randomized queries from a seeded generator and cross-checks three
// independent routes to the same answer:
//
//   - mc          — the table-driven reference kernel (bitset engine)
//   - mc-compiled — the query-compiled kernel engine (plan cache)
//   - the closure adapter — core's []bool NoBugBatch route, the
//     deliberately simple oracle the bitset engines are property-tested
//     against
//
// Estimator seed derivation is kind-independent, so all three must be
// bit-identical on every query — any divergence is a bug, reported with
// the full query as a repro and a non-zero exit. A subset of queries
// also runs the adaptive-precision path, pinning round boundaries,
// trials consumed, and stop reasons across engines.
//
// Usage:
//
//	memdiff                      # 5s budget, seed 1
//	memdiff -duration 30s -seed 7 -queries 200
//
// The run is deterministic in -seed: CI failures replay locally with
// the same flags.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"reflect"
	"time"

	"memreliability/internal/core"
	"memreliability/internal/estimator"
	"memreliability/internal/mc"
	"memreliability/internal/memmodel"
	"memreliability/internal/rng"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "memdiff: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("memdiff", flag.ContinueOnError)
	seed := fs.Uint64("seed", 1, "generator seed; the whole run is deterministic in it")
	duration := fs.Duration("duration", 5*time.Second, "time budget; the harness stops drawing queries when it is spent")
	queries := fs.Int("queries", 0, "query cap (0 = unlimited within the time budget)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	ctx := context.Background()
	gen := rng.New(*seed)
	deadline := time.Now().Add(*duration)
	checked, adaptives := 0, 0
	for time.Now().Before(deadline) && (*queries == 0 || checked < *queries) {
		q := randomQuery(gen)
		adaptive := checked%4 == 3
		if adaptive {
			q.Precision = &estimator.Precision{TargetHalfWidth: 0.02, MaxTrials: 1 << 14}
			adaptives++
		}
		if err := checkQuery(ctx, q, adaptive); err != nil {
			return fmt.Errorf("query #%d (replay: -seed %d -queries %d): %w\nrepro query: %+v",
				checked, *seed, checked+1, err, q)
		}
		checked++
	}
	fmt.Printf("memdiff: %d queries cross-checked (%d adaptive), engines bit-identical (seed %d)\n",
		checked, adaptives, *seed)
	return nil
}

// randomQuery draws one mc-shaped query covering the specialization
// lattice: every model, small thread counts, short-to-full prefixes,
// and probabilities that hit the draw-free p, s ∈ {0, 1} edges often.
func randomQuery(gen *rng.Source) estimator.Query {
	q := estimator.DefaultQuery()
	q.Kind = estimator.FullMC
	models := memmodel.All()
	q.Model = models[gen.Intn(len(models))].Name()
	q.Threads = 2 + gen.Intn(3)
	q.PrefixLen = 1 + gen.Intn(24)
	q.StoreProb = randomProb(gen)
	q.SwapProb = randomProb(gen)
	q.Trials = 1 + gen.Intn(4096)
	q.Seed = gen.Uint64()
	return q
}

// randomProb mixes interior draws with the compile-time edges.
func randomProb(gen *rng.Source) float64 {
	switch gen.Intn(4) {
	case 0:
		return 0
	case 1:
		return 1
	default:
		return gen.Float64()
	}
}

// checkQuery runs the query through the two estimator kinds (and, on
// fixed-trials queries, the closure adapter) and requires bit-identical
// results.
func checkQuery(ctx context.Context, q estimator.Query, adaptive bool) error {
	q.Kind = estimator.FullMC
	ref, err := estimator.Estimate(ctx, q)
	if err != nil {
		return fmt.Errorf("mc: %w", err)
	}
	q.Kind = estimator.CompiledMC
	compiled, err := estimator.Estimate(ctx, q)
	if err != nil {
		return fmt.Errorf("mc-compiled: %w", err)
	}
	ref.Kind = estimator.CompiledMC // the only field allowed to differ
	if !reflect.DeepEqual(ref, compiled) {
		return fmt.Errorf("mc-compiled diverged from mc:\n  mc:          %+v\n  mc-compiled: %+v", ref, compiled)
	}
	if adaptive {
		return nil // the closure adapter has no adaptive entry point
	}

	// Closure adapter: the []bool oracle on the same derived substream.
	model, err := memmodel.ByName(q.Model)
	if err != nil {
		return err
	}
	cfg := core.Config{Model: model, Threads: q.Threads, PrefixLen: q.PrefixLen,
		StoreProb: q.StoreProb, SwapProb: q.SwapProb}
	batch, err := cfg.NoBugBatch()
	if err != nil {
		return err
	}
	norm := q.Normalized()
	sub := estimator.DeriveSeeds(norm.Seed, 1)[0]
	out, err := mc.EstimateProbabilityBatch(ctx, mc.Config{Trials: q.Trials, Seed: sub}, batch)
	if err != nil {
		return fmt.Errorf("closure adapter: %w", err)
	}
	if out.Estimate() != ref.Estimate {
		return fmt.Errorf("closure adapter diverged: adapter %v, engines %v", out.Estimate(), ref.Estimate)
	}
	return nil
}
