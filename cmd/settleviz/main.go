// settleviz renders seeded instantiations of the paper's two random
// processes as text: the settling process (Figure 1) and the shift process
// (Figure 2). It can also tabulate the exact Theorem 4.1 window
// distribution Pr[B_γ] across models, delegating the model grid to the
// internal/sweep orchestration engine.
//
// Usage:
//
//	settleviz -model TSO -m 6 -seed 2011
//	settleviz -shift 3,2,5 -seed 2011
//	settleviz -dist -models SC,TSO,PSO,WO -m 16 -maxgamma 8
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"memreliability/internal/memmodel"
	"memreliability/internal/prog"
	"memreliability/internal/report"
	"memreliability/internal/rng"
	"memreliability/internal/settle"
	"memreliability/internal/shift"
	"memreliability/internal/sweep"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "settleviz: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("settleviz", flag.ContinueOnError)
	modelName := fs.String("model", "TSO", "memory model for the settling trace")
	m := fs.Int("m", 6, "prefix length for the settling trace")
	seed := fs.Uint64("seed", 2011, "random seed")
	shiftSpec := fs.String("shift", "", "render a shift-process instantiation for comma-separated lengths instead")
	dist := fs.Bool("dist", false, "tabulate the exact window distribution Pr[B_γ] per model instead")
	distModels := fs.String("models", "SC,TSO,PSO,WO", "comma-separated models for -dist")
	maxGamma := fs.Int("maxgamma", 8, "largest tabulated γ for -dist")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *dist {
		return renderDist(out, *distModels, *m, *maxGamma)
	}
	src := rng.New(*seed)
	if *shiftSpec != "" {
		return renderShift(out, *shiftSpec, src)
	}
	return renderSettle(out, *modelName, *m, src)
}

// renderDist tabulates Pr[B_γ] for γ ∈ [0, maxGamma] across the requested
// models, one sweep cell per model, with the loop sharded by the engine.
func renderDist(out io.Writer, modelList string, m, maxGamma int) error {
	var models []string
	for _, name := range strings.Split(modelList, ",") {
		if name = strings.TrimSpace(name); name != "" {
			models = append(models, name)
		}
	}
	spec := sweep.DefaultSpec()
	spec.Models = models
	spec.PrefixLens = []int{m}
	spec.Estimators = []sweep.Kind{sweep.WindowDist}
	spec.MaxGamma = maxGamma
	art, err := sweep.Run(context.Background(), spec, sweep.Options{})
	if err != nil {
		return err
	}
	headers := []string{"γ"}
	for _, c := range art.Cells {
		headers = append(headers, c.Model)
	}
	tbl, err := report.NewTable(
		fmt.Sprintf("Theorem 4.1: exact window distribution Pr[B_γ] (m=%d)", art.Cells[0].EffectiveM),
		headers...)
	if err != nil {
		return err
	}
	for gamma := 0; gamma < len(art.Cells[0].Dist); gamma++ {
		row := []string{strconv.Itoa(gamma)}
		for _, c := range art.Cells {
			row = append(row, report.FormatProb(c.Dist[gamma]))
		}
		if err := tbl.AddRow(row...); err != nil {
			return err
		}
	}
	return tbl.WriteText(out)
}

func renderSettle(out io.Writer, modelName string, m int, src *rng.Source) error {
	model, err := memmodel.ByName(modelName)
	if err != nil {
		return err
	}
	p, err := prog.Generate(prog.DefaultParams(m), src)
	if err != nil {
		return err
	}
	res, snaps, err := settle.SettleTraced(p, model, settle.DefaultOptions(), src)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Settling process under %s (Figure 1 style; * marks critical instructions)\n\n", model.Name())
	fmt.Fprintf(out, "initial: %s\n\n", p.String())
	for _, snap := range snaps {
		marker := " "
		if snap.EndPos != snap.StartPos {
			marker = fmt.Sprintf("moved %d->%d", snap.StartPos, snap.EndPos)
		}
		cells := make([]string, len(snap.Order))
		for pos, idx := range snap.Order {
			cells[pos] = p.At(idx).String()
		}
		fmt.Fprintf(out, "round %2d: %-60s %s\n", snap.Round, strings.Join(cells, " "), marker)
	}
	loadPos, storePos := res.WindowBounds()
	fmt.Fprintf(out, "\ncritical window: positions %d..%d, γ = %d, segment length Γ = %d\n",
		loadPos, storePos, res.WindowGamma(), res.SegmentLength())
	return nil
}

func renderShift(out io.Writer, spec string, src *rng.Source) error {
	parts := strings.Split(spec, ",")
	lengths := make([]int, 0, len(parts))
	for _, part := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return fmt.Errorf("bad length %q: %w", part, err)
		}
		lengths = append(lengths, v)
	}
	placement, err := shift.Sample(lengths, src)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Shift process on γ̄ = %v (Figure 2 style)\n\n", lengths)
	maxEnd := 0
	for i := range lengths {
		if end := placement.Shifts[i] + placement.Lengths[i]; end > maxEnd {
			maxEnd = end
		}
	}
	for i := range lengths {
		line := make([]byte, maxEnd+1)
		for j := range line {
			line[j] = '.'
		}
		for j := placement.Shifts[i]; j <= placement.Shifts[i]+placement.Lengths[i]; j++ {
			line[j] = '#'
		}
		fmt.Fprintf(out, "segment %d (shift %2d): %s\n", i+1, placement.Shifts[i], line)
	}
	exact, err := shift.ExactTheorem51(lengths)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "\ndisjoint this draw: %v;  Pr[A(γ̄)] exact = %.6f\n", placement.Disjoint(), exact)
	return nil
}
