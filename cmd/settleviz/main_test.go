package main

import (
	"strings"
	"testing"
)

func TestRunSettleTrace(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-model", "TSO", "-m", "6", "-seed", "2011"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Settling process under TSO", "round", "critical window", "γ ="} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunShiftTrace(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-shift", "3,2,5", "-seed", "2011"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Shift process", "segment 1", "segment 3", "Pr[A("} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunShiftRejectsBadSpec(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-shift", "3,two,5"}, &sb); err == nil {
		t.Error("bad shift spec accepted")
	}
	if err := run([]string{"-shift", "4"}, &sb); err == nil {
		t.Error("single-segment spec accepted")
	}
}

func TestRunRejectsBadModel(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-model", "XYZ"}, &sb); err == nil {
		t.Error("bad model accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	var a, b strings.Builder
	if err := run([]string{"-m", "8", "-seed", "5"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-m", "8", "-seed", "5"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("same seed gave different traces")
	}
}

func TestRunDistTable(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-dist", "-models", "SC,WO", "-m", "12", "-maxgamma", "4"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Pr[B_γ]", "SC", "WO", "m=12"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// SC settles nothing: all mass at γ=0.
	if !strings.Contains(out, "1.000000") {
		t.Errorf("SC column should have unit mass at γ=0:\n%s", out)
	}
}

func TestRunDistRejectsBadModels(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-dist", "-models", "XYZ"}, &sb); err == nil {
		t.Error("bad -dist model accepted")
	}
	if err := run([]string{"-dist", "-models", ""}, &sb); err == nil {
		t.Error("empty -dist model list accepted")
	}
}
