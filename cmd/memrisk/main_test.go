package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunTwoThreadTSO(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-model", "TSO", "-threads", "2", "-trials", "20000", "-seed", "1"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"exact DP (n=2)", "paper (Thm 6.2)", "full Monte Carlo", "hybrid (Thm 6.1)"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunLargeNSkipsFullMC(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-model", "WO", "-threads", "8", "-trials", "5000"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, "full Monte Carlo") {
		t.Errorf("n=8 ran full MC:\n%s", out)
	}
	if !strings.Contains(out, "hybrid") {
		t.Errorf("n=8 missing hybrid:\n%s", out)
	}
}

// TestRunAdaptiveFlags: -ci-halfwidth switches the Monte Carlo routes to
// adaptive sampling (the notes column reports trials and stop reason)
// while the exact DP row is untouched.
func TestRunAdaptiveFlags(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-model", "TSO", "-threads", "2", "-trials", "200000",
		"-ci-halfwidth", "0.02", "-seed", "1"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "adaptive:") || !strings.Contains(out, "converged") {
		t.Errorf("adaptive run does not report its cost:\n%s", out)
	}
	if !strings.Contains(out, "exact DP (n=2)") {
		t.Errorf("exact row missing from adaptive run:\n%s", out)
	}
}

func TestRunRejectsOrphanMaxTrials(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-model", "TSO", "-max-trials", "1000"}, &sb); err == nil {
		t.Error("-max-trials without a target accepted")
	}
}

// TestRunRejectsNegativeTarget: a sign typo must error out, not silently
// run the full fixed budget.
func TestRunRejectsNegativeTarget(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-model", "TSO", "-ci-halfwidth", "-0.005"}, &sb); err == nil {
		t.Error("negative -ci-halfwidth accepted")
	}
}

func TestRunRejectsBadModel(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-model", "RC"}, &sb); err == nil {
		t.Error("bad model accepted")
	}
}

func TestRunRejectsBadThreads(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-threads", "1"}, &sb); err == nil {
		t.Error("threads=1 accepted")
	}
}

func TestRunSweep(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-sweep", "-trials", "3000"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "ratio to SC") || !strings.Contains(out, "WO") {
		t.Errorf("sweep output malformed:\n%s", out)
	}
}

// TestTraceJSON pins the -trace-json flag: the run succeeds and the file
// holds a span tree rooted at memrisk with per-route estimate children.
func TestTraceJSON(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "trace.json")
	var sb strings.Builder
	err := run([]string{"-model", "TSO", "-threads", "2", "-trials", "2000",
		"-seed", "5", "-trace-json", trace}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var span struct {
		Name     string `json:"name"`
		Children []any  `json:"children"`
	}
	if err := json.Unmarshal(raw, &span); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, raw)
	}
	if span.Name != "memrisk" {
		t.Errorf("trace root = %q, want memrisk", span.Name)
	}
	if len(span.Children) == 0 {
		t.Error("trace has no estimate spans")
	}
}
