// memrisk computes the paper's bug-manifestation probabilities for a given
// memory model and thread count, using all three estimation routes
// (analytic/exact DP, full Monte Carlo, Theorem 6.1 hybrid).
//
// Usage:
//
//	memrisk -model TSO -threads 2 -trials 200000 -seed 1
//	memrisk -model WO -threads 8 -trials 50000      # hybrid only at n>4
//	memrisk -sweep -trials 50000                    # Theorem 6.3 sweep
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"memreliability/internal/analytic"
	"memreliability/internal/core"
	"memreliability/internal/mc"
	"memreliability/internal/memmodel"
	"memreliability/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "memrisk: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("memrisk", flag.ContinueOnError)
	modelName := fs.String("model", "TSO", "memory model: SC, TSO, PSO, or WO")
	threads := fs.Int("threads", 2, "number of concurrent buggy threads (n ≥ 2)")
	trials := fs.Int("trials", 200000, "Monte Carlo trials")
	seed := fs.Uint64("seed", 1, "experiment seed (runs are reproducible)")
	prefixLen := fs.Int("m", 64, "program prefix length m")
	storeProb := fs.Float64("p", 0.5, "store probability p")
	swapProb := fs.Float64("s", 0.5, "swap probability s")
	sweep := fs.Bool("sweep", false, "run the Theorem 6.3 thread-scaling sweep instead")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx := context.Background()

	if *sweep {
		return runSweep(ctx, out, *trials, *seed)
	}

	model, err := memmodel.ByName(*modelName)
	if err != nil {
		return err
	}
	cfg := core.Config{
		Model:     model,
		Threads:   *threads,
		PrefixLen: *prefixLen,
		StoreProb: *storeProb,
		SwapProb:  *swapProb,
	}
	if err := cfg.Validate(); err != nil {
		return err
	}

	tbl, err := report.NewTable(
		fmt.Sprintf("Pr[A] (bug does NOT manifest): model=%s n=%d m=%d p=%g s=%g",
			model.Name(), *threads, *prefixLen, *storeProb, *swapProb),
		"method", "estimate", "notes")
	if err != nil {
		return err
	}

	if *threads == 2 {
		exactCfg := cfg
		if exactCfg.PrefixLen > 16 {
			exactCfg.PrefixLen = 16
		}
		iv, err := core.ExactTwoThreadPrA(exactCfg)
		if err != nil {
			return err
		}
		if err := tbl.AddRowValues("exact DP (n=2)", iv.Midpoint(),
			report.FormatInterval(iv.Lo, iv.Hi)); err != nil {
			return err
		}
		switch model.Name() {
		case "SC":
			if err := tbl.AddRowValues("paper (Thm 6.2)", analytic.Theorem62SC, "1/6"); err != nil {
				return err
			}
		case "WO":
			if err := tbl.AddRowValues("paper (Thm 6.2)", analytic.Theorem62WO, "7/54"); err != nil {
				return err
			}
		case "TSO":
			paper := analytic.Theorem62TSO()
			if err := tbl.AddRowValues("paper (Thm 6.2)", paper.Midpoint(),
				report.FormatInterval(paper.Lo, paper.Hi)); err != nil {
				return err
			}
		}
	}

	mcCfg := mc.Config{Trials: *trials, Seed: *seed}
	if *threads <= 4 {
		res, err := core.EstimateNoBugProb(ctx, cfg, mcCfg)
		if err != nil {
			return err
		}
		lo, hi, err := res.WilsonCI(0.99)
		if err != nil {
			return err
		}
		if err := tbl.AddRowValues("full Monte Carlo", res.Estimate(),
			"99% CI "+report.FormatInterval(lo, hi)); err != nil {
			return err
		}
	}

	hyb, err := core.HybridPrA(ctx, cfg, mcCfg)
	if err != nil {
		return err
	}
	if err := tbl.AddRowValues("hybrid (Thm 6.1)", hyb.PrA,
		fmt.Sprintf("ln Pr[A] = %s", report.FormatRatio(hyb.LogPrA))); err != nil {
		return err
	}

	return tbl.WriteText(out)
}

func runSweep(ctx context.Context, out io.Writer, trials int, seed uint64) error {
	models := []memmodel.Model{memmodel.SC(), memmodel.TSO(), memmodel.PSO(), memmodel.WO()}
	rows, err := core.ThreadScalingSweep(ctx, models, []int{2, 3, 4, 6, 8, 12, 16}, 48,
		mc.Config{Trials: trials, Seed: seed})
	if err != nil {
		return err
	}
	tbl, err := report.NewTable("Theorem 6.3 sweep: −ln Pr[A]/n² and ratio to SC",
		"n", "model", "ln Pr[A]", "rate", "ratio to SC")
	if err != nil {
		return err
	}
	for _, r := range rows {
		if err := tbl.AddRowValues(r.Threads, r.Model, report.FormatRatio(r.LogPrA),
			report.FormatRatio(r.Rate), report.FormatRatio(r.RatioToSC)); err != nil {
			return err
		}
	}
	return tbl.WriteText(out)
}
