// memrisk computes the paper's bug-manifestation probabilities for a given
// memory model and thread count, using all three estimation routes
// (analytic/exact DP, full Monte Carlo, Theorem 6.1 hybrid). The single-
// point mode builds one estimator.Query per applicable route from its
// flags and dispatches the batch through the estimator registry; -sweep
// runs the Theorem 6.3 scaling sweep through the orchestration engine.
//
// Usage:
//
//	memrisk -model TSO -threads 2 -trials 200000 -seed 1
//	memrisk -model WO -threads 8 -trials 50000      # hybrid only at n>4
//	memrisk -sweep -trials 50000                    # Theorem 6.3 sweep
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"memreliability/internal/analytic"
	"memreliability/internal/estimator"
	"memreliability/internal/mc"
	"memreliability/internal/memmodel"
	"memreliability/internal/obs"
	"memreliability/internal/report"
	"memreliability/internal/sweep"
)

// withTrace attaches a root span to ctx when path is nonempty and
// returns a flush function that ends the span and writes the trace JSON
// to path. Tracing never perturbs results: spans observe the run's
// barriers, they do not steer it.
func withTrace(ctx context.Context, path, rootName string) (context.Context, func() error) {
	if path == "" {
		return ctx, func() error { return nil }
	}
	root := obs.NewTrace(rootName)
	return obs.WithSpan(ctx, root), func() error {
		root.End()
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("create trace: %w", err)
		}
		if err := root.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
}

// fullMCMaxThreads bounds the thread count for which full Monte Carlo is
// worth running: beyond it Pr[A] is too small to sample directly
// (Theorem 6.3's e^{-Θ(n²)} regime) and only the hybrid route is used.
const fullMCMaxThreads = 4

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "memrisk: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("memrisk", flag.ContinueOnError)
	modelName := fs.String("model", "TSO", "memory model: SC, TSO, PSO, or WO")
	threads := fs.Int("threads", 2, "number of concurrent buggy threads (n ≥ 2)")
	trials := fs.Int("trials", 200000, "Monte Carlo trials")
	seed := fs.Uint64("seed", 1, "experiment seed (runs are reproducible)")
	prefixLen := fs.Int("m", 64, "program prefix length m")
	storeProb := fs.Float64("p", 0.5, "store probability p")
	swapProb := fs.Float64("s", 0.5, "swap probability s")
	doSweep := fs.Bool("sweep", false, "run the Theorem 6.3 thread-scaling sweep instead")
	ciHalf := fs.Float64("ci-halfwidth", 0, "adaptive: stop when the CI half-width is ≤ this (0 = fixed trials)")
	ciRelErr := fs.Float64("ci-relerr", 0, "adaptive: stop when half-width ≤ relerr × estimate (0 = fixed trials)")
	maxTrials := fs.Int("max-trials", 0, "adaptive trial budget cap (0 = -trials); only with -ci-halfwidth/-ci-relerr")
	traceJSON := fs.String("trace-json", "", "write the run's span tree as JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, flushTrace := withTrace(context.Background(), *traceJSON, "memrisk")

	if *doSweep {
		if err := runSweep(ctx, out, *trials, *seed); err != nil {
			return err
		}
		return flushTrace()
	}

	model, err := memmodel.ByName(*modelName)
	if err != nil {
		return err
	}

	// One query per applicable estimation route, dispatched as a batch
	// through the estimator registry; memrisk only annotates the paper's
	// Theorem 6.2 constants alongside.
	var kinds []estimator.Kind
	if *threads == 2 {
		kinds = append(kinds, estimator.Exact)
	}
	if *threads <= fullMCMaxThreads {
		kinds = append(kinds, estimator.FullMC)
	}
	kinds = append(kinds, estimator.Hybrid)

	base := estimator.DefaultQuery()
	base.Model = model.Name()
	base.Threads = *threads
	base.PrefixLen = *prefixLen
	base.Trials = *trials
	base.StoreProb = *storeProb
	base.SwapProb = *swapProb

	// An adaptive-precision request applies to the trial-consuming routes
	// only; the exact DP has no sampling to stop. Any nonzero value —
	// negative or NaN included — builds the block, so bad targets are
	// rejected by the estimator's canonical validation instead of
	// silently running the full fixed budget.
	var precision *estimator.Precision
	if *ciHalf != 0 || *ciRelErr != 0 {
		precision = &estimator.Precision{
			TargetHalfWidth: *ciHalf,
			TargetRelErr:    *ciRelErr,
			MaxTrials:       *maxTrials,
		}
	} else if *maxTrials != 0 {
		return fmt.Errorf("-max-trials needs -ci-halfwidth or -ci-relerr")
	}

	// Each route gets its own experiment seed derived from -seed, so the
	// Monte Carlo routes draw independent substreams and their rows
	// cross-check each other rather than sharing sampling error.
	seeds := estimator.DeriveSeeds(*seed, len(kinds))
	queries := make([]estimator.Query, len(kinds))
	for i, kind := range kinds {
		q := base
		q.Kind = kind
		q.Seed = seeds[i]
		if precision != nil && kind.NeedsTrials() {
			p := *precision
			q.Precision = &p
		}
		queries[i] = q
	}

	results, err := estimator.EstimateBatch(ctx, queries, estimator.BatchOptions{})
	if err != nil {
		return err
	}

	tbl, err := report.NewTable(
		fmt.Sprintf("Pr[A] (bug does NOT manifest): model=%s n=%d m=%d p=%g s=%g",
			model.Name(), *threads, *prefixLen, *storeProb, *swapProb),
		"method", "estimate", "notes")
	if err != nil {
		return err
	}
	for _, res := range results {
		if res.Skipped {
			continue
		}
		if err := tbl.AddRowValues(res.Kind.DisplayName(), res.Estimate, res.Notes()); err != nil {
			return err
		}
		if res.Kind == estimator.Exact {
			if err := addPaperRow(tbl, model.Name()); err != nil {
				return err
			}
		}
	}
	if err := tbl.WriteText(out); err != nil {
		return err
	}
	return flushTrace()
}

// addPaperRow appends the paper's Theorem 6.2 closed-form constant, where
// one exists, directly under the exact-DP row.
func addPaperRow(tbl *report.Table, model string) error {
	switch model {
	case "SC":
		return tbl.AddRowValues("paper (Thm 6.2)", analytic.Theorem62SC, "1/6")
	case "WO":
		return tbl.AddRowValues("paper (Thm 6.2)", analytic.Theorem62WO, "7/54")
	case "TSO":
		paper := analytic.Theorem62TSO()
		return tbl.AddRowValues("paper (Thm 6.2)", paper.Midpoint(),
			report.FormatInterval(paper.Lo, paper.Hi))
	}
	return nil
}

func runSweep(ctx context.Context, out io.Writer, trials int, seed uint64) error {
	models := []memmodel.Model{memmodel.SC(), memmodel.TSO(), memmodel.PSO(), memmodel.WO()}
	rows, err := sweep.ThreadScaling(ctx, models, []int{2, 3, 4, 6, 8, 12, 16}, 48,
		mc.Config{Trials: trials, Seed: seed})
	if err != nil {
		return err
	}
	tbl, err := report.NewTable("Theorem 6.3 sweep: −ln Pr[A]/n² and ratio to SC",
		"n", "model", "ln Pr[A]", "rate", "ratio to SC")
	if err != nil {
		return err
	}
	for _, r := range rows {
		if err := tbl.AddRowValues(r.Threads, r.Model, report.FormatRatio(r.LogPrA),
			report.FormatRatio(r.Rate), report.FormatRatio(r.RatioToSC)); err != nil {
			return err
		}
	}
	return tbl.WriteText(out)
}
