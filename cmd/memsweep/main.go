// memsweep runs a declarative experiment sweep: a grid of memory models ×
// thread counts × prefix lengths × estimator kinds, sharded across a
// worker pool, with a reproducible JSON artifact. Each grid cell becomes
// one estimator.Query dispatched through the estimator registry, so
// -estimators accepts exactly the registered kinds. The artifact depends
// only on the spec — identical (spec, seed) give identical bytes at any
// -workers value.
//
// Usage:
//
//	memsweep -models SC,TSO -threads 2,4,8 -estimators hybrid -trials 50000
//	memsweep -spec sweep.json -o artifact.json
//	memsweep -models WO -estimators windowdist -m 16 -maxgamma 8 -format csv
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"memreliability/internal/estimator"
	"memreliability/internal/obs"
	"memreliability/internal/sweep"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "memsweep: %v\n", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out, progress io.Writer) error {
	fs := flag.NewFlagSet("memsweep", flag.ContinueOnError)
	fs.SetOutput(progress)
	specPath := fs.String("spec", "", "load the sweep spec from a JSON file (grid flags are ignored)")
	models := fs.String("models", "SC,TSO,PSO,WO", "comma-separated memory models")
	threads := fs.String("threads", "2,4", "comma-separated thread counts n")
	prefixLens := fs.String("m", "64", "comma-separated prefix lengths m")
	estimators := fs.String("estimators", "hybrid", "comma-separated estimators: exact, mc, hybrid, windowdist")
	trials := fs.Int("trials", 50000, "Monte Carlo trials per cell")
	seed := fs.Uint64("seed", 1, "experiment seed (fully determines the artifact)")
	storeProb := fs.Float64("p", 0.5, "store probability p")
	swapProb := fs.Float64("s", 0.5, "swap probability s")
	maxGamma := fs.Int("maxgamma", 8, "tabulated support bound for windowdist cells")
	ciHalf := fs.Float64("ci-halfwidth", 0, "adaptive: stop each mc/hybrid cell when its CI half-width is ≤ this (0 = fixed trials)")
	ciRelErr := fs.Float64("ci-relerr", 0, "adaptive: stop each mc/hybrid cell when half-width ≤ relerr × estimate (0 = fixed trials)")
	maxTrials := fs.Int("max-trials", 0, "adaptive per-cell trial budget cap (0 = -trials)")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS); never affects results")
	outPath := fs.String("o", "", "write the JSON artifact to this file")
	format := fs.String("format", "text", "stdout rendering: text, csv, markdown, or json")
	quiet := fs.Bool("quiet", false, "suppress per-cell progress on stderr")
	timing := fs.Bool("timing", false, "record per-cell wall-clock time (breaks byte-level artifact reproducibility)")
	traceJSON := fs.String("trace-json", "", "write the sweep's span tree as JSON to this file; never affects the artifact")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Reject a bad -format before the sweep runs, not after minutes of
	// compute.
	switch *format {
	case "text", "csv", "markdown", "md", "json":
	default:
		return fmt.Errorf("unknown -format %q (want text, csv, markdown, or json)", *format)
	}

	var spec sweep.Spec
	if *specPath != "" {
		data, err := os.ReadFile(*specPath)
		if err != nil {
			return fmt.Errorf("load spec: %w", err)
		}
		// Decode over the paper-defaults base: omitted scalar fields
		// keep the normal form, explicit zeros stick.
		spec = sweep.DefaultSpec()
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			return fmt.Errorf("parse spec %s: %w", *specPath, err)
		}
	} else {
		var err error
		spec, err = specFromFlags(*models, *threads, *prefixLens, *estimators)
		if err != nil {
			return err
		}
		spec.Trials = *trials
		spec.Seed = *seed
		spec.StoreProb = *storeProb
		spec.SwapProb = *swapProb
		spec.MaxGamma = *maxGamma
	}
	if *workers != 0 {
		// Only override the spec file's worker budget when the flag was
		// actually given a value; either way results are unaffected.
		spec.Workers = *workers
	}
	// The precision flags apply to flag-built and spec-file runs alike
	// (a target flag replaces the spec's precision block wholesale), so
	// the CLI can never silently fall back to fixed-trials mode. Any
	// nonzero target — negative or NaN included — builds the block, so
	// bad values fail spec validation instead of being dropped.
	if *ciHalf != 0 || *ciRelErr != 0 {
		spec.Precision = &estimator.Precision{
			TargetHalfWidth: *ciHalf,
			TargetRelErr:    *ciRelErr,
			MaxTrials:       *maxTrials,
		}
	} else if *maxTrials != 0 {
		if spec.Precision == nil {
			return fmt.Errorf("-max-trials needs -ci-halfwidth or -ci-relerr (or a spec with a precision block)")
		}
		p := *spec.Precision
		p.MaxTrials = *maxTrials
		spec.Precision = &p
	}

	total := len(spec.Normalized().Expand())
	opts := sweep.Options{Timing: *timing}
	if !*quiet {
		done := 0
		opts.Sink = func(c sweep.CellResult) {
			done++
			status := ""
			if c.Skipped {
				status = " (skipped)"
			}
			fmt.Fprintf(progress, "cell %d/%d done: model=%s n=%d m=%d %s%s\n",
				done, total, c.Model, c.Threads, c.PrefixLen, c.Estimator, status)
		}
	}

	var root *obs.Span
	if *traceJSON != "" {
		root = obs.NewTrace("memsweep")
		ctx = obs.WithSpan(ctx, root)
	}
	art, err := sweep.Run(ctx, spec, opts)
	if err != nil {
		return err
	}
	if root != nil {
		root.End()
		f, err := os.Create(*traceJSON)
		if err != nil {
			return fmt.Errorf("create trace: %w", err)
		}
		if err := root.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("close trace: %w", err)
		}
	}

	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return fmt.Errorf("create artifact: %w", err)
		}
		if err := art.EncodeJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("close artifact: %w", err)
		}
	}

	if *format == "json" {
		return art.EncodeJSON(out)
	}
	tbl, err := art.Table()
	if err != nil {
		return err
	}
	return tbl.Write(out, *format)
}

// specFromFlags assembles a Spec from the comma-separated grid flags.
func specFromFlags(models, threads, prefixLens, estimators string) (sweep.Spec, error) {
	var spec sweep.Spec
	spec.Models = splitList(models)
	ns, err := splitInts(threads)
	if err != nil {
		return spec, fmt.Errorf("bad -threads: %w", err)
	}
	spec.Threads = ns
	ms, err := splitInts(prefixLens)
	if err != nil {
		return spec, fmt.Errorf("bad -m: %w", err)
	}
	spec.PrefixLens = ms
	for _, name := range splitList(estimators) {
		spec.Estimators = append(spec.Estimators, sweep.Kind(strings.ToLower(name)))
	}
	return spec, nil
}

// splitList splits a comma-separated list, trimming blanks.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// splitInts splits a comma-separated list of integers.
func splitInts(s string) ([]int, error) {
	var out []int
	for _, part := range splitList(s) {
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("%q is not an integer", part)
		}
		out = append(out, v)
	}
	return out, nil
}
