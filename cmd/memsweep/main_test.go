package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runArtifact runs memsweep against testdata/spec.json with the given
// worker budget and returns the artifact bytes.
func runArtifact(t *testing.T, workers string) []byte {
	t.Helper()
	out := filepath.Join(t.TempDir(), "artifact.json")
	var table strings.Builder
	err := run(context.Background(),
		[]string{"-spec", filepath.Join("testdata", "spec.json"), "-workers", workers, "-o", out, "-quiet"},
		&table, os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestGoldenArtifact is the reproducibility acceptance test: a fixed-seed
// spec must produce byte-identical JSON artifacts across runs and across
// worker counts, and must match the committed golden file.
func TestGoldenArtifact(t *testing.T) {
	one := runArtifact(t, "1")
	again := runArtifact(t, "1")
	four := runArtifact(t, "4")
	if !bytes.Equal(one, again) {
		t.Error("artifact differs across runs with identical spec")
	}
	if !bytes.Equal(one, four) {
		t.Error("artifact differs between -workers 1 and -workers 4")
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(one, golden) {
		t.Errorf("artifact does not match testdata/golden.json\ngot:\n%s\nwant:\n%s", one, golden)
	}
}

func TestRunGridFlags(t *testing.T) {
	var sb strings.Builder
	err := run(context.Background(),
		[]string{"-models", "SC,WO", "-threads", "2", "-m", "12", "-estimators", "exact,hybrid",
			"-trials", "200", "-seed", "3", "-quiet"},
		&sb, os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"exact DP (n=2)", "hybrid (Thm 6.1)", "SC", "WO"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRunAdaptiveFlags: the adaptive flags attach a precision block to
// the spec, and the JSON artifact records per-cell trial counts and stop
// reasons for the Monte Carlo cells.
func TestRunAdaptiveFlags(t *testing.T) {
	var sb strings.Builder
	err := run(context.Background(),
		[]string{"-models", "SC", "-threads", "2", "-m", "12", "-estimators", "mc",
			"-trials", "100000", "-ci-halfwidth", "0.02", "-seed", "3",
			"-quiet", "-format", "json"},
		&sb, os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"precision"`, `"target_half_width": 0.02`,
		`"trials_used"`, `"stop_reason": "converged"`} {
		if !strings.Contains(out, want) {
			t.Errorf("adaptive artifact missing %q:\n%s", want, out)
		}
	}
}

// TestRunAdaptiveFlagsOverrideSpec: the precision flags must apply to
// spec-file runs too — silently ignoring them would report fixed-trials
// results as if they had met a CI target.
func TestRunAdaptiveFlagsOverrideSpec(t *testing.T) {
	var sb strings.Builder
	err := run(context.Background(),
		[]string{"-spec", filepath.Join("testdata", "spec.json"),
			"-ci-halfwidth", "0.05", "-quiet", "-format", "json"},
		&sb, os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"precision"`, `"target_half_width": 0.05`, `"stop_reason"`} {
		if !strings.Contains(out, want) {
			t.Errorf("spec+flags artifact missing %q:\n%s", want, out)
		}
	}
}

func TestRunRejectsOrphanMaxTrials(t *testing.T) {
	var sb strings.Builder
	err := run(context.Background(),
		[]string{"-models", "SC", "-max-trials", "500"}, &sb, os.Stderr)
	if err == nil {
		t.Error("-max-trials without a target accepted")
	}
}

// TestRunRejectsNegativeTarget: a sign typo must fail spec validation,
// not silently select fixed-trials mode.
func TestRunRejectsNegativeTarget(t *testing.T) {
	var sb strings.Builder
	err := run(context.Background(),
		[]string{"-models", "SC", "-ci-relerr", "-0.1"}, &sb, os.Stderr)
	if err == nil {
		t.Error("negative -ci-relerr accepted")
	}
}

func TestRunJSONFormat(t *testing.T) {
	var sb strings.Builder
	err := run(context.Background(),
		[]string{"-models", "SC", "-threads", "2", "-m", "12", "-estimators", "exact",
			"-seed", "3", "-format", "json", "-quiet"},
		&sb, os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"schema_version": 1`) {
		t.Errorf("json output malformed:\n%s", sb.String())
	}
}

func TestRunProgressStreams(t *testing.T) {
	var table, progress strings.Builder
	err := run(context.Background(),
		[]string{"-models", "SC", "-threads", "2,4", "-m", "12", "-estimators", "exact",
			"-seed", "3"},
		&table, &progress)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(progress.String(), "cell 1/2 done") ||
		!strings.Contains(progress.String(), "cell 2/2 done") {
		t.Errorf("progress output malformed:\n%s", progress.String())
	}
	if !strings.Contains(progress.String(), "(skipped)") {
		t.Errorf("skipped exact n=4 cell not reported:\n%s", progress.String())
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	var sb strings.Builder
	cases := [][]string{
		{"-models", "RC"},
		{"-threads", "two"},
		{"-m", "x"},
		{"-estimators", "bogus"},
		{"-threads", "1"},
		{"-spec", filepath.Join("testdata", "does-not-exist.json")},
	}
	for _, args := range cases {
		if err := run(context.Background(), append(args, "-quiet"), &sb, os.Stderr); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunRejectsUnknownSpecFields(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(`{"models": ["SC"], "typo_field": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run(context.Background(), []string{"-spec", path, "-quiet"}, &sb, os.Stderr); err == nil {
		t.Error("unknown spec field accepted")
	}
}

func TestRunHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var sb strings.Builder
	err := run(ctx, []string{"-models", "SC,TSO,PSO,WO", "-threads", "2,4,8",
		"-trials", "200000", "-quiet"}, &sb, os.Stderr)
	if err == nil {
		t.Error("canceled run succeeded")
	}
}

func TestRunRejectsBadFormatUpfront(t *testing.T) {
	var sb strings.Builder
	err := run(context.Background(),
		[]string{"-models", "SC", "-format", "yaml", "-quiet"}, &sb, os.Stderr)
	if err == nil || !strings.Contains(err.Error(), "-format") {
		t.Errorf("bad format not rejected upfront: %v", err)
	}
}

// TestTraceJSONDoesNotPerturbArtifact runs the same spec with and
// without -trace-json: the artifacts must be byte-identical (tracing
// observes, never steers) and the trace file must be a valid span tree.
func TestTraceJSONDoesNotPerturbArtifact(t *testing.T) {
	plain := runArtifact(t, "2")

	dir := t.TempDir()
	art := filepath.Join(dir, "artifact.json")
	trace := filepath.Join(dir, "trace.json")
	var table strings.Builder
	err := run(context.Background(),
		[]string{"-spec", filepath.Join("testdata", "spec.json"), "-workers", "2",
			"-o", art, "-trace-json", trace, "-quiet"},
		&table, os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	traced, err := os.ReadFile(art)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, traced) {
		t.Error("artifact differs when -trace-json is on")
	}
	raw, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var span struct {
		Name     string `json:"name"`
		Children []any  `json:"children"`
	}
	if err := json.Unmarshal(raw, &span); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, raw)
	}
	if span.Name != "memsweep" {
		t.Errorf("trace root = %q, want memsweep", span.Name)
	}
	if len(span.Children) == 0 {
		t.Error("trace has no cell spans")
	}
}
