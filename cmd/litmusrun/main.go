// litmusrun exhaustively checks litmus tests against each registered
// memory model on the operational simulator, and optionally measures
// relaxed-outcome frequencies under a random scheduler. Tests come from
// the built-in registry or, with -f, from .litmus files in the text DSL
// (internal/litmus/text).
//
// Usage:
//
//	litmusrun                      # conformance matrix for all built-in tests
//	litmusrun -json                # machine-readable conformance results
//	litmusrun -test SB -freq 20000 # frequency measurement for one test
//	litmusrun -f sb.litmus -json   # check tests from a DSL file
//	litmusrun -f dir/ -models SC,RMO
//
// -json emits the same encoding the serve API's GET /v1/litmus endpoint
// returns (litmus.EncodeResultsJSON): running -f over the committed
// internal/litmus/text/testdata/registry files reproduces the built-in
// matrix byte-for-byte.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"memreliability/internal/litmus"
	"memreliability/internal/litmus/text"
	"memreliability/internal/memmodel"
	"memreliability/internal/report"
	"memreliability/internal/rng"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "litmusrun: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("litmusrun", flag.ContinueOnError)
	testName := fs.String("test", "", "run a single named test (default: all)")
	freq := fs.Int("freq", 0, "also measure target frequency over this many random runs")
	seed := fs.Uint64("seed", 1, "seed for frequency runs")
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON (the GET /v1/litmus encoding) instead of tables")
	modelsFlag := fs.String("models", "", "comma-separated model names to check (default: every registered model)")
	var files []string
	fs.Func("f", "load tests from a .litmus `file` or directory of them instead of the built-in registry (repeatable)", func(v string) error {
		files = append(files, v)
		return nil
	})
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *jsonOut && *freq > 0 {
		return fmt.Errorf("-json covers conformance only and cannot be combined with -freq")
	}

	models, err := selectModels(*modelsFlag)
	if err != nil {
		return err
	}
	tests, err := selectTests(files, *testName)
	if err != nil {
		return err
	}

	var results []litmus.Result
	for _, t := range tests {
		for _, model := range models {
			r, err := litmus.Check(t, model)
			if err != nil {
				return err
			}
			results = append(results, r)
		}
	}
	if *jsonOut {
		return litmus.EncodeResultsJSON(out, results)
	}

	tbl, err := report.NewTable("Litmus conformance (exhaustive exploration; X = target reachable)",
		"test", "target", "model", "reachable", "expected", "conforms", "outcomes")
	if err != nil {
		return err
	}
	for _, r := range results {
		if err := tbl.AddRowValues(r.Test, r.Target, r.Model,
			mark(r.Reachable), mark(r.Expected), fmt.Sprintf("%v", r.Conforms()),
			r.Outcomes); err != nil {
			return err
		}
	}
	if err := tbl.WriteText(out); err != nil {
		return err
	}

	if *freq > 0 {
		src := rng.New(*seed)
		ftbl, err := report.NewTable(
			fmt.Sprintf("\nTarget frequency under a uniform random scheduler (%d runs)", *freq),
			"test", "model", "frequency")
		if err != nil {
			return err
		}
		for _, t := range tests {
			for _, model := range models {
				f, err := litmus.TargetFrequency(t, model, *freq, src)
				if err != nil {
					return err
				}
				if err := ftbl.AddRowValues(t.Name, model.Name(), f); err != nil {
					return err
				}
			}
		}
		if err := ftbl.WriteText(out); err != nil {
			return err
		}
	}
	return nil
}

// selectModels resolves the -models filter (default: every registered
// model, variants included).
func selectModels(spec string) ([]memmodel.Model, error) {
	if spec == "" {
		return memmodel.Registered(), nil
	}
	var models []memmodel.Model
	for _, name := range strings.Split(spec, ",") {
		m, err := memmodel.ByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		models = append(models, m)
	}
	return models, nil
}

// selectTests loads the test set: the built-in registry, or — with -f
// paths — the union of the named DSL files (directories contribute
// every *.litmus inside, sorted). Test names must be unique across the
// loaded set.
func selectTests(files []string, testName string) ([]litmus.Test, error) {
	var tests []litmus.Test
	if len(files) == 0 {
		tests = litmus.Registry()
	} else {
		seen := map[string]string{} // test name → source file
		for _, path := range files {
			resolved, err := expandPath(path)
			if err != nil {
				return nil, err
			}
			for _, file := range resolved {
				data, err := os.ReadFile(file)
				if err != nil {
					return nil, err
				}
				parsed, err := text.Parse(file, data)
				if err != nil {
					return nil, err
				}
				for _, t := range parsed {
					if prev, dup := seen[t.Name]; dup {
						return nil, fmt.Errorf("test %q defined in both %s and %s", t.Name, prev, file)
					}
					seen[t.Name] = file
					tests = append(tests, t)
				}
			}
		}
	}
	if testName == "" {
		return tests, nil
	}
	for _, t := range tests {
		if t.Name == testName {
			return []litmus.Test{t}, nil
		}
	}
	return nil, fmt.Errorf("no litmus test named %q in the selected set", testName)
}

// expandPath resolves one -f operand: a directory yields its *.litmus
// files in sorted order, a file yields itself.
func expandPath(path string) ([]string, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if !info.IsDir() {
		return []string{path}, nil
	}
	entries, err := os.ReadDir(path)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".litmus") {
			out = append(out, filepath.Join(path, e.Name()))
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s contains no .litmus files", path)
	}
	sort.Strings(out)
	return out, nil
}

func mark(b bool) string {
	if b {
		return "X"
	}
	return "-"
}
