// litmusrun exhaustively checks the built-in litmus tests against each
// memory model on the operational simulator, and optionally measures
// relaxed-outcome frequencies under a random scheduler.
//
// Usage:
//
//	litmusrun                      # conformance matrix for all tests
//	litmusrun -json                # machine-readable conformance results
//	litmusrun -test SB -freq 20000 # frequency measurement for one test
//
// -json emits the same encoding the serve API's GET /v1/litmus endpoint
// returns (litmus.EncodeResultsJSON).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"memreliability/internal/litmus"
	"memreliability/internal/memmodel"
	"memreliability/internal/report"
	"memreliability/internal/rng"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "litmusrun: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("litmusrun", flag.ContinueOnError)
	testName := fs.String("test", "", "run a single named test (default: all)")
	freq := fs.Int("freq", 0, "also measure target frequency over this many random runs")
	seed := fs.Uint64("seed", 1, "seed for frequency runs")
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON (the GET /v1/litmus encoding) instead of tables")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *jsonOut && *freq > 0 {
		return fmt.Errorf("-json covers conformance only and cannot be combined with -freq")
	}

	tests := litmus.Registry()
	if *testName != "" {
		t, err := litmus.ByName(*testName)
		if err != nil {
			return err
		}
		tests = []litmus.Test{t}
	}

	var results []litmus.Result
	for _, t := range tests {
		for _, model := range memmodel.All() {
			r, err := litmus.Check(t, model)
			if err != nil {
				return err
			}
			results = append(results, r)
		}
	}
	if *jsonOut {
		return litmus.EncodeResultsJSON(out, results)
	}

	tbl, err := report.NewTable("Litmus conformance (exhaustive exploration; X = target reachable)",
		"test", "target", "model", "reachable", "expected", "conforms", "outcomes")
	if err != nil {
		return err
	}
	for _, r := range results {
		if err := tbl.AddRowValues(r.Test, r.Target, r.Model,
			mark(r.Reachable), mark(r.Expected), fmt.Sprintf("%v", r.Conforms()),
			r.Outcomes); err != nil {
			return err
		}
	}
	if err := tbl.WriteText(out); err != nil {
		return err
	}

	if *freq > 0 {
		src := rng.New(*seed)
		ftbl, err := report.NewTable(
			fmt.Sprintf("\nTarget frequency under a uniform random scheduler (%d runs)", *freq),
			"test", "model", "frequency")
		if err != nil {
			return err
		}
		for _, t := range tests {
			for _, model := range memmodel.All() {
				f, err := litmus.TargetFrequency(t, model, *freq, src)
				if err != nil {
					return err
				}
				if err := ftbl.AddRowValues(t.Name, model.Name(), f); err != nil {
					return err
				}
			}
		}
		if err := ftbl.WriteText(out); err != nil {
			return err
		}
	}
	return nil
}

func mark(b bool) string {
	if b {
		return "X"
	}
	return "-"
}
