// litmusrun exhaustively checks the built-in litmus tests against each
// memory model on the operational simulator, and optionally measures
// relaxed-outcome frequencies under a random scheduler.
//
// Usage:
//
//	litmusrun                      # conformance matrix for all tests
//	litmusrun -test SB -freq 20000 # frequency measurement for one test
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"memreliability/internal/litmus"
	"memreliability/internal/memmodel"
	"memreliability/internal/report"
	"memreliability/internal/rng"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "litmusrun: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("litmusrun", flag.ContinueOnError)
	testName := fs.String("test", "", "run a single named test (default: all)")
	freq := fs.Int("freq", 0, "also measure target frequency over this many random runs")
	seed := fs.Uint64("seed", 1, "seed for frequency runs")
	if err := fs.Parse(args); err != nil {
		return err
	}

	tests := litmus.Registry()
	if *testName != "" {
		t, err := litmus.ByName(*testName)
		if err != nil {
			return err
		}
		tests = []litmus.Test{t}
	}

	tbl, err := report.NewTable("Litmus conformance (exhaustive exploration; X = target reachable)",
		"test", "target", "model", "reachable", "expected", "conforms", "outcomes")
	if err != nil {
		return err
	}
	for _, t := range tests {
		for _, model := range memmodel.All() {
			r, err := litmus.Check(t, model)
			if err != nil {
				return err
			}
			if err := tbl.AddRowValues(t.Name, t.Target.String(), model.Name(),
				mark(r.Reachable), mark(r.Expected), fmt.Sprintf("%v", r.Conforms()),
				r.Outcomes); err != nil {
				return err
			}
		}
	}
	if err := tbl.WriteText(out); err != nil {
		return err
	}

	if *freq > 0 {
		src := rng.New(*seed)
		ftbl, err := report.NewTable(
			fmt.Sprintf("\nTarget frequency under a uniform random scheduler (%d runs)", *freq),
			"test", "model", "frequency")
		if err != nil {
			return err
		}
		for _, t := range tests {
			for _, model := range memmodel.All() {
				f, err := litmus.TargetFrequency(t, model, *freq, src)
				if err != nil {
					return err
				}
				if err := ftbl.AddRowValues(t.Name, model.Name(), f); err != nil {
					return err
				}
			}
		}
		if err := ftbl.WriteText(out); err != nil {
			return err
		}
	}
	return nil
}

func mark(b bool) string {
	if b {
		return "X"
	}
	return "-"
}
