package main

import (
	"encoding/json"
	"strings"
	"testing"

	"memreliability/internal/litmus"
)

func TestRunAllTests(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"SB", "MP", "LB", "IRIW", "INC", "conforms"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(out, "false") {
		t.Errorf("some test did not conform:\n%s", out)
	}
}

func TestRunSingleTestWithFrequency(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-test", "SB", "-freq", "2000"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Target frequency") {
		t.Errorf("frequency table missing:\n%s", out)
	}
	if strings.Contains(out, "MP") {
		t.Error("single-test run printed other tests")
	}
}

func TestRunUnknownTest(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-test", "NOPE"}, &sb); err == nil {
		t.Error("unknown test accepted")
	}
}

func TestRunJSON(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-json"}, &sb); err != nil {
		t.Fatal(err)
	}
	var results []struct {
		Test     string `json:"test"`
		Model    string `json:"model"`
		Target   string `json:"target"`
		Conforms bool   `json:"conforms"`
		Outcomes int    `json:"outcomes"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &results); err != nil {
		t.Fatalf("output is not the JSON encoding: %v\n%s", err, sb.String())
	}
	if len(results) != len(litmus.Registry())*4 {
		t.Fatalf("%d results, want %d", len(results), len(litmus.Registry())*4)
	}
	for _, r := range results {
		if !r.Conforms {
			t.Errorf("%s under %s does not conform", r.Test, r.Model)
		}
		if r.Target == "" || r.Outcomes == 0 {
			t.Errorf("incomplete record: %+v", r)
		}
	}

	// -json must emit exactly the shared wire encoding the serve API
	// uses, so machine consumers can switch between the two freely.
	all, err := litmus.CheckAll()
	if err != nil {
		t.Fatal(err)
	}
	var want strings.Builder
	if err := litmus.EncodeResultsJSON(&want, all); err != nil {
		t.Fatal(err)
	}
	if sb.String() != want.String() {
		t.Error("-json output differs from litmus.EncodeResultsJSON")
	}
}

func TestRunJSONSingleTest(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-json", "-test", "MP"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"MP"`) || strings.Contains(sb.String(), `"SB"`) {
		t.Errorf("single-test JSON wrong:\n%s", sb.String())
	}
}

func TestRunJSONRejectsFreq(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-json", "-freq", "100"}, &sb); err == nil {
		t.Error("-json with -freq accepted")
	}
}

func TestMark(t *testing.T) {
	if mark(true) != "X" || mark(false) != "-" {
		t.Error("mark wrong")
	}
}
