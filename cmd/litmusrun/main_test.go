package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"memreliability/internal/litmus"
	"memreliability/internal/memmodel"
)

func TestRunAllTests(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"SB", "MP", "LB", "IRIW", "INC", "RMO", "LRO", "conforms"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(out, "false") {
		t.Errorf("some test did not conform:\n%s", out)
	}
}

func TestRunSingleTestWithFrequency(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-test", "SB", "-freq", "2000"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Target frequency") {
		t.Errorf("frequency table missing:\n%s", out)
	}
	if strings.Contains(out, "MP") {
		t.Error("single-test run printed other tests")
	}
}

func TestRunUnknownTest(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-test", "NOPE"}, &sb); err == nil {
		t.Error("unknown test accepted")
	}
}

func TestRunJSON(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-json"}, &sb); err != nil {
		t.Fatal(err)
	}
	var results []struct {
		Test     string `json:"test"`
		Model    string `json:"model"`
		Target   string `json:"target"`
		Conforms bool   `json:"conforms"`
		Outcomes int    `json:"outcomes"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &results); err != nil {
		t.Fatalf("output is not the JSON encoding: %v\n%s", err, sb.String())
	}
	if len(results) != len(litmus.Registry())*len(memmodel.Registered()) {
		t.Fatalf("%d results, want %d", len(results), len(litmus.Registry())*len(memmodel.Registered()))
	}
	for _, r := range results {
		if !r.Conforms {
			t.Errorf("%s under %s does not conform", r.Test, r.Model)
		}
		if r.Target == "" || r.Outcomes == 0 {
			t.Errorf("incomplete record: %+v", r)
		}
	}

	// -json must emit exactly the shared wire encoding the serve API
	// uses, so machine consumers can switch between the two freely.
	all, err := litmus.CheckAll()
	if err != nil {
		t.Fatal(err)
	}
	var want strings.Builder
	if err := litmus.EncodeResultsJSON(&want, all); err != nil {
		t.Fatal(err)
	}
	if sb.String() != want.String() {
		t.Error("-json output differs from litmus.EncodeResultsJSON")
	}
}

func TestRunJSONSingleTest(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-json", "-test", "MP"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"MP"`) || strings.Contains(sb.String(), `"SB"`) {
		t.Errorf("single-test JSON wrong:\n%s", sb.String())
	}
}

func TestRunJSONRejectsFreq(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-json", "-freq", "100"}, &sb); err == nil {
		t.Error("-json with -freq accepted")
	}
}

// registryFiles returns the committed DSL files in registry order, so
// file-mode output can be compared byte-for-byte with registry-mode
// output.
func registryFiles(t *testing.T) []string {
	t.Helper()
	dir := filepath.Join("..", "..", "internal", "litmus", "text", "testdata", "registry")
	var files []string
	for _, tc := range litmus.Registry() {
		f := filepath.Join(dir, tc.Name+".litmus")
		if _, err := os.Stat(f); err != nil {
			t.Fatalf("committed DSL file missing: %v", err)
		}
		files = append(files, f)
	}
	return files
}

// TestFileModeMatchesRegistryJSON is the acceptance gate: running the
// committed .litmus files through -f must reproduce the built-in
// registry's JSON byte-for-byte.
func TestFileModeMatchesRegistryJSON(t *testing.T) {
	var registry bytes.Buffer
	if err := run([]string{"-json"}, &registry); err != nil {
		t.Fatal(err)
	}
	args := []string{"-json"}
	for _, f := range registryFiles(t) {
		args = append(args, "-f", f)
	}
	var fromFiles bytes.Buffer
	if err := run(args, &fromFiles); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(registry.Bytes(), fromFiles.Bytes()) {
		t.Errorf("file-mode JSON differs from registry JSON:\nregistry: %s\nfiles:    %s",
			registry.Bytes(), fromFiles.Bytes())
	}
}

// TestDirectoryMode loads the whole committed directory at once (sorted
// file order) and checks the full matrix comes back.
func TestDirectoryMode(t *testing.T) {
	dir := filepath.Join("..", "..", "internal", "litmus", "text", "testdata", "registry")
	var out bytes.Buffer
	if err := run([]string{"-f", dir, "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	var results []json.RawMessage
	if err := json.Unmarshal(out.Bytes(), &results); err != nil {
		t.Fatalf("output is not the litmus JSON encoding: %v", err)
	}
	if want := len(litmus.Registry()) * len(memmodel.Registered()); len(results) != want {
		t.Errorf("directory mode returned %d results, want %d", len(results), want)
	}
}

// TestModelsFilter restricts the matrix to the named models (variants
// included, any casing).
func TestModelsFilter(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-test", "SB", "-models", "SC,lro", "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	var results []struct {
		Model string `json:"model"`
	}
	if err := json.Unmarshal(out.Bytes(), &results); err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2: %s", len(results), out.Bytes())
	}
	if results[0].Model != "SC" || results[1].Model != "LRO" {
		t.Errorf("models = %s, %s; want SC, LRO (canonical casing)",
			results[0].Model, results[1].Model)
	}
}

func TestUnknownModelRejected(t *testing.T) {
	err := run([]string{"-models", "XYZ"}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "unknown model") {
		t.Errorf("unknown -models value not rejected: %v", err)
	}
}

// TestMissingExpectationErrorsLoudly: a DSL test that omits a verdict
// for a registered model must fail the full-matrix run — never silently
// report a made-up expectation.
func TestMissingExpectationErrorsLoudly(t *testing.T) {
	f := filepath.Join(t.TempDir(), "partial.litmus")
	src := "test \"partial\" { thread { ST x = 1 } exists { x = 1 } model SC allowed }\n"
	if err := os.WriteFile(f, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-f", f, "-json"}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "no expectation") {
		t.Errorf("missing expectation not flagged: %v", err)
	}
	// Restricting -models to the expectation it does carry succeeds.
	if err := run([]string{"-f", f, "-models", "SC", "-json"}, &bytes.Buffer{}); err != nil {
		t.Errorf("filtered run failed: %v", err)
	}
}

func TestDuplicateTestAcrossFiles(t *testing.T) {
	dir := t.TempDir()
	src := "test \"dup\" { thread { FENCE } exists { x = 0 } model SC allowed }\n"
	for _, name := range []string{"a.litmus", "b.litmus"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	err := run([]string{"-f", dir, "-json"}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "defined in both") {
		t.Errorf("duplicate test across files not rejected: %v", err)
	}
}

func TestParseErrorsCarryPosition(t *testing.T) {
	f := filepath.Join(t.TempDir(), "bad.litmus")
	if err := os.WriteFile(f, []byte("test \"x\" {\n  bogus\n}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-f", f}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "bad.litmus:2:3") {
		t.Errorf("parse error lacks file:line:col position: %v", err)
	}
}

func TestMark(t *testing.T) {
	if mark(true) != "X" || mark(false) != "-" {
		t.Error("mark wrong")
	}
}
