package main

import (
	"strings"
	"testing"
)

func TestRunAllTests(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"SB", "MP", "LB", "IRIW", "INC", "conforms"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(out, "false") {
		t.Errorf("some test did not conform:\n%s", out)
	}
}

func TestRunSingleTestWithFrequency(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-test", "SB", "-freq", "2000"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Target frequency") {
		t.Errorf("frequency table missing:\n%s", out)
	}
	if strings.Contains(out, "MP") {
		t.Error("single-test run printed other tests")
	}
}

func TestRunUnknownTest(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-test", "NOPE"}, &sb); err == nil {
		t.Error("unknown test accepted")
	}
}

func TestMark(t *testing.T) {
	if mark(true) != "X" || mark(false) != "-" {
		t.Error("mark wrong")
	}
}
