package main

import (
	"bytes"
	"context"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"memreliability/internal/serve"
)

// startDaemon boots serveListener on an ephemeral port and returns its
// base URL, a shutdown func, and the exit channel.
func startDaemon(t *testing.T) (string, context.CancelFunc, chan error) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	var logs bytes.Buffer
	go func() {
		errc <- serveListener(ctx, l, serve.Config{}, 5*time.Second, &logs)
	}()
	return "http://" + l.Addr().String(), cancel, errc
}

func TestDaemonServesAndShutsDown(t *testing.T) {
	url, cancel, errc := startDaemon(t)

	// The daemon accepts the connection as soon as Serve starts; poll
	// briefly in case the goroutine has not scheduled yet.
	var resp *http.Response
	var err error
	for i := 0; i < 100; i++ {
		resp, err = http.Get(url + "/healthz")
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz %d: %s", resp.StatusCode, body)
	}

	resp, err = http.Post(url+"/v1/estimate", "application/json",
		strings.NewReader(`{"model":"SC","threads":2,"estimator":"exact"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate status %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-bogus"}, io.Discard); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run(context.Background(), []string{"-addr", "256.0.0.1:bad"}, io.Discard); err == nil {
		t.Error("bad address accepted")
	}
}

func TestServeListenerBadConfig(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	err = serveListener(context.Background(), l, serve.Config{CacheSize: -1}, time.Second, io.Discard)
	if err == nil {
		t.Fatal("bad config accepted")
	}
	// The listener must have been released.
	if _, dErr := net.Listen("tcp", l.Addr().String()); dErr != nil {
		t.Errorf("listener leaked: %v", dErr)
	}
}
