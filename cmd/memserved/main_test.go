package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"memreliability/internal/cluster"
	"memreliability/internal/serve"
	"memreliability/internal/store"
	"memreliability/internal/sweep"
)

// startDaemon boots serveListener on an ephemeral port and returns its
// base URL, a shutdown func, and the exit channel.
func startDaemon(t *testing.T) (string, context.CancelFunc, chan error) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	var logs bytes.Buffer
	go func() {
		errc <- serveListener(ctx, l, serve.Config{}, 5*time.Second, &logs)
	}()
	return "http://" + l.Addr().String(), cancel, errc
}

func TestDaemonServesAndShutsDown(t *testing.T) {
	url, cancel, errc := startDaemon(t)

	// The daemon accepts the connection as soon as Serve starts; poll
	// briefly in case the goroutine has not scheduled yet.
	var resp *http.Response
	var err error
	for i := 0; i < 100; i++ {
		resp, err = http.Get(url + "/healthz")
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz %d: %s", resp.StatusCode, body)
	}

	resp, err = http.Post(url+"/v1/estimate", "application/json",
		strings.NewReader(`{"model":"SC","threads":2,"estimator":"exact"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate status %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-bogus"}, io.Discard); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run(context.Background(), []string{"-addr", "256.0.0.1:bad"}, io.Discard); err == nil {
		t.Error("bad address accepted")
	}
}

func TestServeListenerBadConfig(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	err = serveListener(context.Background(), l, serve.Config{CacheSize: -1}, time.Second, io.Discard)
	if err == nil {
		t.Fatal("bad config accepted")
	}
	// The listener must have been released.
	if _, dErr := net.Listen("tcp", l.Addr().String()); dErr != nil {
		t.Errorf("listener leaked: %v", dErr)
	}
}

// startHandlerDaemon boots serveHandler with an arbitrary handler on an
// ephemeral port.
func startHandlerDaemon(t *testing.T, h http.Handler) (string, context.CancelFunc, chan error) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		errc <- serveHandler(ctx, l, h, func() {}, 5*time.Second, io.Discard)
	}()
	return "http://" + l.Addr().String(), cancel, errc
}

// waitHealthy polls /healthz until the daemon answers.
func waitHealthy(t *testing.T, url string) {
	t.Helper()
	for i := 0; i < 100; i++ {
		resp, err := http.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("daemon at %s never became healthy", url)
}

// TestWorkerModeServesCells: the worker-mode handler computes cells and
// shuts down cleanly under the shared serve loop.
func TestWorkerModeServesCells(t *testing.T) {
	url, cancel, errc := startHandlerDaemon(t, cluster.NewWorker(cluster.WorkerConfig{}))
	waitHealthy(t, url)

	body := `{"cells":[{"index":0,"query":{"kind":"exact","model":"SC","threads":2,"prefix_len":12},"seed":42}]}`
	resp, err := http.Post(url+"/v1/cells", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cells status %d: %s", resp.StatusCode, data)
	}
	if !strings.Contains(string(data), `"index": 0`) && !strings.Contains(string(data), `"index":0`) {
		t.Fatalf("cells body %s", data)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("worker exit: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("worker did not shut down")
	}
}

// TestCoordinatorModeEndToEnd wires the coordinator glue exactly as
// -mode=coordinator does (cluster engine as the serve runner, shared
// store) and checks the job pipeline yields the standalone artifact
// bytes.
func TestCoordinatorModeEndToEnd(t *testing.T) {
	w1, cancelW1, _ := startHandlerDaemon(t, cluster.NewWorker(cluster.WorkerConfig{}))
	defer cancelW1()
	w2, cancelW2, _ := startHandlerDaemon(t, cluster.NewWorker(cluster.WorkerConfig{}))
	defer cancelW2()
	waitHealthy(t, w1)
	waitHealthy(t, w2)

	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	coord, err := cluster.New(cluster.Config{Workers: []string{w1, w2}, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		errc <- serveListener(ctx, l, serve.Config{Store: st, RunSweep: coord.RunSweep}, 5*time.Second, io.Discard)
	}()
	url := "http://" + l.Addr().String()
	waitHealthy(t, url)

	spec := `{"models":["SC","TSO"],"estimators":["exact","mc"],"threads":[2],"prefix_lens":[12],"trials":2048,"seed":11}`
	resp, err := http.Post(url+"/v1/sweeps", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var status struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}

	deadline := time.Now().Add(30 * time.Second)
	for status.State != "done" {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", status.State)
		}
		time.Sleep(20 * time.Millisecond)
		resp, err := http.Get(url + "/v1/sweeps/" + status.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if status.State == "failed" || status.State == "canceled" {
			t.Fatalf("job ended %q", status.State)
		}
	}

	resp, err = http.Get(url + "/v1/sweeps/" + status.ID + "/artifact")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()

	var specVal sweep.Spec = sweep.DefaultSpec()
	if err := json.Unmarshal([]byte(spec), &specVal); err != nil {
		t.Fatal(err)
	}
	art, err := sweep.Run(context.Background(), specVal, sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := art.EncodeJSON(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("distributed artifact differs from standalone:\n%d vs %d bytes", len(got), want.Len())
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("coordinator exit: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("coordinator did not shut down")
	}
}

// TestRunModeFlags covers the mode flag's rejection paths.
func TestRunModeFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-mode", "bogus"}, io.Discard); err == nil {
		t.Error("bogus mode accepted")
	}
	if err := run(context.Background(), []string{"-mode", "coordinator"}, io.Discard); err == nil {
		t.Error("coordinator without -cluster-workers accepted")
	}
	if err := run(context.Background(), []string{"-store-dir", "\x00bad"}, io.Discard); err == nil {
		t.Error("unusable store dir accepted")
	}
}
