// memserved is the long-running estimation service: an HTTP JSON API over
// the paper's estimators and the sweep engine, with a canonical-key LRU
// result cache, singleflight deduplication of concurrent identical
// requests, and async sweep jobs on a bounded worker pool. Responses for
// identical (request, seed) are byte-identical, inheriting the engine's
// reproducibility guarantee.
//
// Usage:
//
//	memserved                          # listen on :8080
//	memserved -addr 127.0.0.1:9090 -cache-size 4096 -sweep-workers 2
//	memserved -pprof-addr 127.0.0.1:6060   # profiling on a separate port
//
// Endpoints: POST /v1/estimate, POST /v1/windowdist, GET /v1/litmus,
// POST /v1/sweeps (+ GET /v1/sweeps, /v1/sweeps/{id},
// /v1/sweeps/{id}/artifact), GET /healthz, GET /metrics (legacy expvar
// JSON), GET /metrics/prom (Prometheus text exposition). Every response
// carries an X-Request-ID; "X-Trace: 1" wraps the response in a span-tree
// envelope. See the README for the endpoint reference and curl examples.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"memreliability/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "memserved: %v\n", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, logw io.Writer) error {
	fs := flag.NewFlagSet("memserved", flag.ContinueOnError)
	fs.SetOutput(logw)
	addr := fs.String("addr", ":8080", "listen address")
	cacheSize := fs.Int("cache-size", 0, "LRU result-cache entries (0 = 1024)")
	estimateWorkers := fs.Int("estimate-workers", 0, "concurrent estimate computations (0 = GOMAXPROCS)")
	sweepWorkers := fs.Int("sweep-workers", 0, "concurrent async sweep jobs (0 = 1)")
	sweepCellWorkers := fs.Int("sweep-cell-workers", 0, "per-job sweep worker budget (0 = GOMAXPROCS); never affects artifacts")
	queueDepth := fs.Int("queue-depth", 0, "queued sweep jobs before 503 (0 = 16)")
	maxJobs := fs.Int("max-jobs", 0, "retained sweep jobs incl. finished artifacts; oldest terminal evicted beyond this (0 = 64)")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "graceful-shutdown drain budget for open connections")
	logRequests := fs.Bool("log-requests", true, "emit one structured JSON log line per request (request_id, route, status, latency)")
	pprofAddr := fs.String("pprof-addr", "", "serve net/http/pprof on this separate address (empty = disabled)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}

	cfg := serve.Config{
		CacheSize:        *cacheSize,
		EstimateWorkers:  *estimateWorkers,
		SweepWorkers:     *sweepWorkers,
		SweepCellWorkers: *sweepCellWorkers,
		QueueDepth:       *queueDepth,
		MaxJobs:          *maxJobs,
	}
	if *logRequests {
		cfg.Logger = slog.New(slog.NewJSONHandler(logw, nil))
	}

	if *pprofAddr != "" {
		stopProf, err := startPprof(*pprofAddr, logw)
		if err != nil {
			l.Close()
			return err
		}
		defer stopProf()
	}

	return serveListener(ctx, l, cfg, *drainTimeout, logw)
}

// startPprof serves the standard pprof handlers on their own listener —
// a separate address so profiling is never exposed through the API
// port. The returned stop function closes the profiling server.
func startPprof(addr string, logw io.Writer) (func(), error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("pprof listener: %w", err)
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(l)
	fmt.Fprintf(logw, "memserved: pprof on %s/debug/pprof/\n", l.Addr())
	return func() { srv.Close() }, nil
}

// serveListener runs the service on l until ctx is canceled, then drains:
// open connections get drainTimeout to finish, and the server's workers
// are stopped. Split from run so tests can inject a listener on an
// ephemeral port.
func serveListener(ctx context.Context, l net.Listener, cfg serve.Config, drainTimeout time.Duration, logw io.Writer) error {
	srv, err := serve.New(cfg)
	if err != nil {
		l.Close()
		return err
	}
	httpSrv := &http.Server{Handler: srv}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(l) }()
	fmt.Fprintf(logw, "memserved: listening on %s\n", l.Addr())

	select {
	case err := <-errc:
		srv.Close()
		return err
	case <-ctx.Done():
	}

	fmt.Fprintln(logw, "memserved: shutting down")
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	// Stop computations first so drained handlers answer quickly with
	// 503 instead of holding connections for the full compute.
	srv.Close()
	shutdownErr := httpSrv.Shutdown(drainCtx)
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return shutdownErr
}
