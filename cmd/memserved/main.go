// memserved is the long-running estimation service: an HTTP JSON API over
// the paper's estimators and the sweep engine, with a canonical-key LRU
// result cache, singleflight deduplication of concurrent identical
// requests, and async sweep jobs on a bounded worker pool. Responses for
// identical (request, seed) are byte-identical, inheriting the engine's
// reproducibility guarantee.
//
// Usage:
//
//	memserved                          # listen on :8080
//	memserved -addr 127.0.0.1:9090 -cache-size 4096 -sweep-workers 2
//	memserved -pprof-addr 127.0.0.1:6060   # profiling on a separate port
//	memserved -store-dir /var/lib/memserved  # persistent result store
//
// Distributed mode (see the README's "Distributed mode" section):
//
//	memserved -mode=worker -addr :8081
//	memserved -mode=coordinator -cluster-workers http://h1:8081,http://h2:8081 \
//	    -store-dir /shared/results
//
// The default -mode=standalone keeps the historical single-process
// behavior. A worker serves the stateless cell-execution API
// (POST /v1/cells, /healthz, /metrics/prom); a coordinator serves the
// full API but runs async sweep jobs on the worker fleet, sharding
// cells by canonical key, deduplicating against the store, and
// retrying a failed worker's cells on survivors — artifacts stay
// byte-identical to standalone output at any fleet size.
//
// Endpoints: POST /v1/estimate, POST /v1/windowdist, GET /v1/litmus,
// POST /v1/sweeps (+ GET /v1/sweeps, /v1/sweeps/{id},
// /v1/sweeps/{id}/artifact), GET /healthz, GET /metrics (legacy expvar
// JSON), GET /metrics/prom (Prometheus text exposition). Every response
// carries an X-Request-ID; "X-Trace: 1" wraps the response in a span-tree
// envelope. See the README for the endpoint reference and curl examples.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"memreliability/internal/cluster"
	"memreliability/internal/core"
	"memreliability/internal/serve"
	"memreliability/internal/store"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "memserved: %v\n", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, logw io.Writer) error {
	fs := flag.NewFlagSet("memserved", flag.ContinueOnError)
	fs.SetOutput(logw)
	addr := fs.String("addr", ":8080", "listen address")
	cacheSize := fs.Int("cache-size", 0, "LRU result-cache entries (0 = 1024)")
	estimateWorkers := fs.Int("estimate-workers", 0, "concurrent estimate computations (0 = GOMAXPROCS)")
	sweepWorkers := fs.Int("sweep-workers", 0, "concurrent async sweep jobs (0 = 1)")
	sweepCellWorkers := fs.Int("sweep-cell-workers", 0, "per-job sweep worker budget (0 = GOMAXPROCS); never affects artifacts")
	queueDepth := fs.Int("queue-depth", 0, "queued sweep jobs before 503 (0 = 16)")
	maxJobs := fs.Int("max-jobs", 0, "retained sweep jobs incl. finished artifacts; oldest terminal evicted beyond this (0 = 64)")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "graceful-shutdown drain budget for open connections")
	logRequests := fs.Bool("log-requests", true, "emit one structured JSON log line per request (request_id, route, status, latency)")
	pprofAddr := fs.String("pprof-addr", "", "serve net/http/pprof on this separate address (empty = disabled)")
	mode := fs.String("mode", "standalone", "process role: standalone | worker | coordinator")
	clusterWorkers := fs.String("cluster-workers", "", "comma-separated worker base URLs (coordinator mode, e.g. http://h1:8081,http://h2:8081)")
	storeDir := fs.String("store-dir", "", "persistent content-addressed result store directory (standalone and coordinator; empty = disabled)")
	cellTimeout := fs.Duration("cell-timeout", 0, "coordinator per-dispatch timeout (0 = 60s)")
	cellRetries := fs.Int("cell-retries", 0, "coordinator per-cell failed-dispatch budget before the sweep fails (0 = 3)")
	cellBatch := fs.Int("cell-batch", 0, "coordinator cells per worker dispatch; never affects artifacts (0 = 8)")
	planCacheCap := fs.Int("plan-cache-cap", 0, "compiled trial-kernel plan cache entries (0 = 128)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *planCacheCap > 0 {
		core.DefaultPlanCache().SetCap(*planCacheCap)
	}

	cfg := serve.Config{
		CacheSize:        *cacheSize,
		EstimateWorkers:  *estimateWorkers,
		SweepWorkers:     *sweepWorkers,
		SweepCellWorkers: *sweepCellWorkers,
		QueueDepth:       *queueDepth,
		MaxJobs:          *maxJobs,
	}
	if *logRequests {
		cfg.Logger = slog.New(slog.NewJSONHandler(logw, nil))
	}

	worker := false
	switch *mode {
	case "standalone":
		if *storeDir != "" {
			st, err := store.Open(*storeDir)
			if err != nil {
				return err
			}
			cfg.Store = st
		}
	case "coordinator":
		urls := splitURLs(*clusterWorkers)
		if len(urls) == 0 {
			return fmt.Errorf("coordinator mode requires -cluster-workers")
		}
		ccfg := cluster.Config{
			Workers:     urls,
			CellTimeout: *cellTimeout,
			MaxRetries:  *cellRetries,
			MaxBatch:    *cellBatch,
		}
		if *storeDir != "" {
			st, err := store.Open(*storeDir)
			if err != nil {
				return err
			}
			// One store serves both tiers: the coordinator's cell-level
			// dedup and the API's response cache.
			ccfg.Store = st
			cfg.Store = st
		}
		coord, err := cluster.New(ccfg)
		if err != nil {
			return err
		}
		cfg.RunSweep = coord.RunSweep
	case "worker":
		worker = true
	default:
		return fmt.Errorf("unknown -mode %q (standalone | worker | coordinator)", *mode)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}

	if *pprofAddr != "" {
		stopProf, err := startPprof(*pprofAddr, logw)
		if err != nil {
			l.Close()
			return err
		}
		defer stopProf()
	}

	if worker {
		h := cluster.NewWorker(cluster.WorkerConfig{Workers: *sweepCellWorkers})
		return serveHandler(ctx, l, h, func() {}, *drainTimeout, logw)
	}
	return serveListener(ctx, l, cfg, *drainTimeout, logw)
}

// splitURLs parses a comma-separated URL list, dropping empty entries.
func splitURLs(s string) []string {
	var out []string
	for _, u := range strings.Split(s, ",") {
		if u = strings.TrimSpace(u); u != "" {
			out = append(out, u)
		}
	}
	return out
}

// startPprof serves the standard pprof handlers on their own listener —
// a separate address so profiling is never exposed through the API
// port. The returned stop function closes the profiling server.
func startPprof(addr string, logw io.Writer) (func(), error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("pprof listener: %w", err)
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(l)
	fmt.Fprintf(logw, "memserved: pprof on %s/debug/pprof/\n", l.Addr())
	return func() { srv.Close() }, nil
}

// serveListener runs the API service on l until ctx is canceled. Split
// from run so tests can inject a listener on an ephemeral port.
func serveListener(ctx context.Context, l net.Listener, cfg serve.Config, drainTimeout time.Duration, logw io.Writer) error {
	srv, err := serve.New(cfg)
	if err != nil {
		l.Close()
		return err
	}
	return serveHandler(ctx, l, srv, srv.Close, drainTimeout, logw)
}

// serveHandler runs any handler on l until ctx is canceled, then drains:
// closeWork stops the handler's background work first (so drained
// handlers answer quickly with 503 instead of holding connections for a
// full compute), and open connections get drainTimeout to finish.
func serveHandler(ctx context.Context, l net.Listener, h http.Handler, closeWork func(), drainTimeout time.Duration, logw io.Writer) error {
	httpSrv := &http.Server{Handler: h}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(l) }()
	fmt.Fprintf(logw, "memserved: listening on %s\n", l.Addr())

	select {
	case err := <-errc:
		closeWork()
		return err
	case <-ctx.Done():
	}

	fmt.Fprintln(logw, "memserved: shutting down")
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	closeWork()
	shutdownErr := httpSrv.Shutdown(drainCtx)
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return shutdownErr
}
