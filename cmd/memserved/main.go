// memserved is the long-running estimation service: an HTTP JSON API over
// the paper's estimators and the sweep engine, with a canonical-key LRU
// result cache, singleflight deduplication of concurrent identical
// requests, and async sweep jobs on a bounded worker pool. Responses for
// identical (request, seed) are byte-identical, inheriting the engine's
// reproducibility guarantee.
//
// Usage:
//
//	memserved                          # listen on :8080
//	memserved -addr 127.0.0.1:9090 -cache-size 4096 -sweep-workers 2
//
// Endpoints: POST /v1/estimate, POST /v1/windowdist, GET /v1/litmus,
// POST /v1/sweeps (+ GET /v1/sweeps, /v1/sweeps/{id},
// /v1/sweeps/{id}/artifact), GET /healthz, GET /metrics. See the README
// for the endpoint reference and curl examples.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"memreliability/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "memserved: %v\n", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, logw io.Writer) error {
	fs := flag.NewFlagSet("memserved", flag.ContinueOnError)
	fs.SetOutput(logw)
	addr := fs.String("addr", ":8080", "listen address")
	cacheSize := fs.Int("cache-size", 0, "LRU result-cache entries (0 = 1024)")
	estimateWorkers := fs.Int("estimate-workers", 0, "concurrent estimate computations (0 = GOMAXPROCS)")
	sweepWorkers := fs.Int("sweep-workers", 0, "concurrent async sweep jobs (0 = 1)")
	sweepCellWorkers := fs.Int("sweep-cell-workers", 0, "per-job sweep worker budget (0 = GOMAXPROCS); never affects artifacts")
	queueDepth := fs.Int("queue-depth", 0, "queued sweep jobs before 503 (0 = 16)")
	maxJobs := fs.Int("max-jobs", 0, "retained sweep jobs incl. finished artifacts; oldest terminal evicted beyond this (0 = 64)")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "graceful-shutdown drain budget for open connections")
	if err := fs.Parse(args); err != nil {
		return err
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	return serveListener(ctx, l, serve.Config{
		CacheSize:        *cacheSize,
		EstimateWorkers:  *estimateWorkers,
		SweepWorkers:     *sweepWorkers,
		SweepCellWorkers: *sweepCellWorkers,
		QueueDepth:       *queueDepth,
		MaxJobs:          *maxJobs,
	}, *drainTimeout, logw)
}

// serveListener runs the service on l until ctx is canceled, then drains:
// open connections get drainTimeout to finish, and the server's workers
// are stopped. Split from run so tests can inject a listener on an
// ephemeral port.
func serveListener(ctx context.Context, l net.Listener, cfg serve.Config, drainTimeout time.Duration, logw io.Writer) error {
	srv, err := serve.New(cfg)
	if err != nil {
		l.Close()
		return err
	}
	httpSrv := &http.Server{Handler: srv}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(l) }()
	fmt.Fprintf(logw, "memserved: listening on %s\n", l.Addr())

	select {
	case err := <-errc:
		srv.Close()
		return err
	case <-ctx.Done():
	}

	fmt.Fprintln(logw, "memserved: shutting down")
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	// Stop computations first so drained handlers answer quickly with
	// 503 instead of holding connections for the full compute.
	srv.Close()
	shutdownErr := httpSrv.Shutdown(drainCtx)
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return shutdownErr
}
