#!/bin/sh
# check_ci_sync.sh — fail when the Makefile and the CI workflow drift.
#
# Contract: every workflow step that exercises the module runs
# `make <target>`, and the Makefile's `ci` aggregate target depends on
# exactly the union of those targets, so `make ci` is a faithful local
# mirror of CI. This script greps both files and fails on any
# one-sided target. It is wired into `make lint`.
set -eu
cd "$(dirname "$0")/.."

workflow=.github/workflows/ci.yml
makefile=Makefile

# *-install targets are network-only setup steps (tool installs) that
# the offline `ci` aggregate deliberately omits; everything else must
# mirror exactly.
wf_targets=$(grep -oE 'make [a-z][a-z-]*' "$workflow" | awk '{print $2}' | grep -v -- '-install$' | sort -u)
ci_deps=$(awk -F': *' '$1 == "ci" {print $2}' "$makefile" | tr ' ' '\n' | sed '/^$/d' | sort -u)

drift=0
for t in $wf_targets; do
	if ! printf '%s\n' "$ci_deps" | grep -qx "$t"; then
		echo "ci-sync: workflow runs 'make $t' but the Makefile 'ci' target does not depend on it" >&2
		drift=1
	fi
done
for t in $ci_deps; do
	if ! printf '%s\n' "$wf_targets" | grep -qx "$t"; then
		echo "ci-sync: Makefile 'ci' depends on '$t' but no workflow step runs 'make $t'" >&2
		drift=1
	fi
done
if [ "$drift" -ne 0 ]; then
	echo "ci-sync: $makefile and $workflow have drifted; update both together" >&2
	exit 1
fi
echo "ci-sync: ok ($(printf '%s\n' "$wf_targets" | wc -l | tr -d ' ') targets mirrored)"
