#!/bin/sh
# Smoke-test distributed mode end to end: a coordinator sharding a sweep
# across two worker processes with a shared persistent store must produce
# an artifact byte-identical to single-process memsweep -o, expose the
# cluster and store metric series, and shut every process down cleanly.
# Run by both `make smoke-cluster` and the CI smoke-cluster job.
set -eu

W1_ADDR="127.0.0.1:18381"
W2_ADDR="127.0.0.1:18382"
CO_ADDR="127.0.0.1:18383"
BASE="http://$CO_ADDR"
WORKDIR="$(mktemp -d)"
PIDS=""

cleanup() {
    for pid in $PIDS; do
        kill "$pid" 2>/dev/null || true
    done
    for pid in $PIDS; do
        wait "$pid" 2>/dev/null || true
    done
    rm -rf "$WORKDIR"
}
trap cleanup EXIT INT TERM

go build -o "$WORKDIR/memserved" ./cmd/memserved
go build -o "$WORKDIR/memsweep" ./cmd/memsweep

SPEC='{"models":["SC","TSO"],"threads":[2],"prefix_lens":[16],"estimators":["exact","mc","hybrid"],"trials":20000,"seed":13}'
printf '%s\n' "$SPEC" >"$WORKDIR/spec.json"

# The ground truth: the single-process engine's artifact bytes.
"$WORKDIR/memsweep" -spec "$WORKDIR/spec.json" -o "$WORKDIR/expected.json" >/dev/null

"$WORKDIR/memserved" -mode=worker -addr "$W1_ADDR" -log-requests=false &
PIDS="$PIDS $!"
"$WORKDIR/memserved" -mode=worker -addr "$W2_ADDR" -log-requests=false &
PIDS="$PIDS $!"
"$WORKDIR/memserved" -mode=coordinator -addr "$CO_ADDR" \
    -cluster-workers "http://$W1_ADDR,http://$W2_ADDR" \
    -store-dir "$WORKDIR/store" -log-requests=false &
PIDS="$PIDS $!"

wait_healthy() {
    i=0
    until curl -sf "http://$1/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -ge 50 ]; then
            echo "smoke-cluster: $2 at $1 never became healthy" >&2
            exit 1
        fi
        sleep 0.2
    done
}
wait_healthy "$W1_ADDR" worker-1
wait_healthy "$W2_ADDR" worker-2
wait_healthy "$CO_ADDR" coordinator
echo "smoke-cluster: fleet healthy (2 workers + coordinator)"

# Submit the sweep to the coordinator and poll it to done.
JOB=$(curl -sf -H 'Content-Type: application/json' -d "$SPEC" "$BASE/v1/sweeps" |
    sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
if [ -z "$JOB" ]; then
    echo "smoke-cluster: sweep submission returned no job id" >&2
    exit 1
fi
i=0
while :; do
    STATE=$(curl -sf "$BASE/v1/sweeps/$JOB" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p')
    [ "$STATE" = "done" ] && break
    case "$STATE" in
    failed | canceled)
        echo "smoke-cluster: job ended in state $STATE" >&2
        curl -sf "$BASE/v1/sweeps/$JOB" >&2 || true
        exit 1
        ;;
    esac
    i=$((i + 1))
    if [ "$i" -ge 150 ]; then
        echo "smoke-cluster: job stuck in state '$STATE'" >&2
        exit 1
    fi
    sleep 0.2
done
echo "smoke-cluster: distributed sweep done"

# The distributed artifact must match the single-process bytes exactly.
curl -sf "$BASE/v1/sweeps/$JOB/artifact" -o "$WORKDIR/got.json"
if ! cmp -s "$WORKDIR/expected.json" "$WORKDIR/got.json"; then
    echo "smoke-cluster: distributed artifact differs from memsweep -o" >&2
    diff "$WORKDIR/expected.json" "$WORKDIR/got.json" >&2 || true
    exit 1
fi
echo "smoke-cluster: artifact byte-identical to memsweep -o"

# Cluster and store series must be on the coordinator's exposition, with
# the dispatch counters showing both workers actually computed cells.
curl -sf "$BASE/metrics/prom" >"$WORKDIR/prom"
for want in 'cluster_sweeps_total 1' 'cluster_dispatch_total{worker="0"}' \
    'cluster_dispatch_total{worker="1"}' 'store_puts_total'; do
    if ! grep -qF "$want" "$WORKDIR/prom"; then
        echo "smoke-cluster: coordinator /metrics/prom missing \"$want\"" >&2
        grep -E 'cluster_|store_' "$WORKDIR/prom" >&2 || true
        exit 1
    fi
done
# The spec expands to 6 cells; across the fleet exactly 6 must have
# been computed (the store was cold, so nothing deduplicated).
curl -sf "http://$W1_ADDR/metrics/prom" >"$WORKDIR/prom.w1"
curl -sf "http://$W2_ADDR/metrics/prom" >"$WORKDIR/prom.w2"
W1_CELLS=$(sed -n 's/^cluster_worker_cells_total \([0-9][0-9]*\)$/\1/p' "$WORKDIR/prom.w1")
W2_CELLS=$(sed -n 's/^cluster_worker_cells_total \([0-9][0-9]*\)$/\1/p' "$WORKDIR/prom.w2")
TOTAL=$((${W1_CELLS:-0} + ${W2_CELLS:-0}))
if [ "$TOTAL" -ne 6 ]; then
    echo "smoke-cluster: workers computed $TOTAL cells, want 6 (w1=${W1_CELLS:-0} w2=${W2_CELLS:-0})" >&2
    exit 1
fi
echo "smoke-cluster: cluster and store metrics exposed ($TOTAL cells across the fleet)"

# The store must hold the computed cells on disk.
if ! find "$WORKDIR/store" -name '*.json' | grep -q .; then
    echo "smoke-cluster: store directory holds no records" >&2
    exit 1
fi
echo "smoke-cluster: persistent store populated"

# SIGTERM must shut every process down cleanly.
STATUS=0
for pid in $PIDS; do
    kill "$pid" 2>/dev/null || true
done
for pid in $PIDS; do
    wait "$pid" || STATUS=$?
done
PIDS=""
if [ "$STATUS" -ne 0 ]; then
    echo "smoke-cluster: a process exited with status $STATUS" >&2
    exit 1
fi
echo "smoke-cluster: clean fleet shutdown"
