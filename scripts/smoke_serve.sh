#!/bin/sh
# Smoke-test the memserved daemon over real HTTP: liveness, one estimate,
# byte-identical repeat with a cache hit, and a clean shutdown. Run by
# both `make smoke-serve` and the CI smoke-serve job.
set -eu

ADDR="127.0.0.1:18377"
BASE="http://$ADDR"
WORKDIR="$(mktemp -d)"
PID=""

cleanup() {
    [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
    [ -n "$PID" ] && wait "$PID" 2>/dev/null || true
    rm -rf "$WORKDIR"
}
trap cleanup EXIT INT TERM

go build -o "$WORKDIR/memserved" ./cmd/memserved
"$WORKDIR/memserved" -addr "$ADDR" &
PID=$!

# Wait for liveness.
i=0
until curl -sf "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "smoke-serve: memserved never became healthy" >&2
        exit 1
    fi
    sleep 0.2
done
echo "smoke-serve: healthz ok"

REQ='{"model":"TSO","threads":2,"estimator":"exact","seed":7}'
curl -sf -D "$WORKDIR/h1" -o "$WORKDIR/b1" -H 'Content-Type: application/json' -d "$REQ" "$BASE/v1/estimate"
curl -sf -D "$WORKDIR/h2" -o "$WORKDIR/b2" -H 'Content-Type: application/json' -d "$REQ" "$BASE/v1/estimate"

# Identical requests must return byte-identical bodies...
if ! cmp -s "$WORKDIR/b1" "$WORKDIR/b2"; then
    echo "smoke-serve: estimate bodies differ" >&2
    diff "$WORKDIR/b1" "$WORKDIR/b2" >&2 || true
    exit 1
fi
echo "smoke-serve: repeated estimate is byte-identical"

# ...with the second served from the cache.
if ! grep -qi '^x-cache: hit' "$WORKDIR/h2"; then
    echo "smoke-serve: second request was not a cache hit" >&2
    cat "$WORKDIR/h2" >&2
    exit 1
fi
if ! curl -sf "$BASE/metrics" | grep -q '"cache_hits": *[1-9]'; then
    echo "smoke-serve: metrics report no cache hits" >&2
    curl -sf "$BASE/metrics" >&2 || true
    exit 1
fi
echo "smoke-serve: second request hit the cache"

# SIGTERM must shut the daemon down cleanly.
kill "$PID"
STATUS=0
wait "$PID" || STATUS=$?
PID=""
if [ "$STATUS" -ne 0 ]; then
    echo "smoke-serve: memserved exited with status $STATUS" >&2
    exit 1
fi
echo "smoke-serve: clean shutdown"
