#!/bin/sh
# Smoke-test the memserved daemon over real HTTP: liveness, one estimate,
# byte-identical repeat with a cache hit, and a clean shutdown. Run by
# both `make smoke-serve` and the CI smoke-serve job.
set -eu

ADDR="127.0.0.1:18377"
BASE="http://$ADDR"
WORKDIR="$(mktemp -d)"
PID=""

cleanup() {
    [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
    [ -n "$PID" ] && wait "$PID" 2>/dev/null || true
    rm -rf "$WORKDIR"
}
trap cleanup EXIT INT TERM

go build -o "$WORKDIR/memserved" ./cmd/memserved
"$WORKDIR/memserved" -addr "$ADDR" &
PID=$!

# Wait for liveness.
i=0
until curl -sf "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "smoke-serve: memserved never became healthy" >&2
        exit 1
    fi
    sleep 0.2
done
echo "smoke-serve: healthz ok"

REQ='{"model":"TSO","threads":2,"estimator":"exact","seed":7}'
curl -sf -D "$WORKDIR/h1" -o "$WORKDIR/b1" -H 'Content-Type: application/json' -d "$REQ" "$BASE/v1/estimate"
curl -sf -D "$WORKDIR/h2" -o "$WORKDIR/b2" -H 'Content-Type: application/json' -d "$REQ" "$BASE/v1/estimate"

# Identical requests must return byte-identical bodies...
if ! cmp -s "$WORKDIR/b1" "$WORKDIR/b2"; then
    echo "smoke-serve: estimate bodies differ" >&2
    diff "$WORKDIR/b1" "$WORKDIR/b2" >&2 || true
    exit 1
fi
echo "smoke-serve: repeated estimate is byte-identical"

# ...with the second served from the cache.
if ! grep -qi '^x-cache: hit' "$WORKDIR/h2"; then
    echo "smoke-serve: second request was not a cache hit" >&2
    cat "$WORKDIR/h2" >&2
    exit 1
fi
if ! curl -sf "$BASE/metrics" | grep -q '"cache_hits": *[1-9]'; then
    echo "smoke-serve: metrics report no cache hits" >&2
    curl -sf "$BASE/metrics" >&2 || true
    exit 1
fi
echo "smoke-serve: second request hit the cache"

# The Prometheus exposition must be well-formed: HELP/TYPE headers, the
# per-kind estimator counter raised by the estimates above, and
# monotone (cumulative) histogram buckets.
curl -sf "$BASE/metrics/prom" >"$WORKDIR/prom"
for want in '# HELP serve_requests_total' '# TYPE serve_requests_total counter' \
            '# TYPE serve_request_seconds histogram' '# TYPE estimator_queries_total counter'; do
    if ! grep -qF "$want" "$WORKDIR/prom"; then
        echo "smoke-serve: /metrics/prom missing \"$want\"" >&2
        cat "$WORKDIR/prom" >&2
        exit 1
    fi
done
if ! grep -qE '^estimator_queries_total\{kind="exact"\} [1-9]' "$WORKDIR/prom"; then
    echo "smoke-serve: estimate did not raise estimator_queries_total{kind=\"exact\"}" >&2
    grep '^estimator_queries_total' "$WORKDIR/prom" >&2 || true
    exit 1
fi
# Cumulative bucket counts must never decrease within one series.
if ! awk -F'[ }]' '
    /_bucket\{/ {
        split($0, kv, "le=\"")
        series = substr($0, 1, index($0, "le=\"") - 1)
        count = $NF + 0
        if (series in last && count < last[series]) {
            print "non-monotone bucket: " $0
            exit 1
        }
        last[series] = count
        buckets++
    }
    END { if (buckets == 0) { print "no histogram buckets"; exit 1 } }
' "$WORKDIR/prom"; then
    echo "smoke-serve: /metrics/prom histogram buckets are broken" >&2
    exit 1
fi
echo "smoke-serve: /metrics/prom exposition ok"

# Every response must carry an X-Request-ID.
if ! grep -qi '^x-request-id: ' "$WORKDIR/h1"; then
    echo "smoke-serve: estimate response missing X-Request-ID" >&2
    cat "$WORKDIR/h1" >&2
    exit 1
fi
echo "smoke-serve: X-Request-ID present"

# SIGTERM must shut the daemon down cleanly.
kill "$PID"
STATUS=0
wait "$PID" || STATUS=$?
PID=""
if [ "$STATUS" -ne 0 ]; then
    echo "smoke-serve: memserved exited with status $STATUS" >&2
    exit 1
fi
echo "smoke-serve: clean shutdown"
