#!/bin/sh
# fuzz_smoke.sh — the bounded-time fuzz gate.
#
# Two phases, both deterministic-friendly:
#
#   1. Corpus replay: plain `go test` natively executes every committed
#      seed under internal/**/testdata/fuzz/ (plus the corpus guard
#      tests), so a regression against a previously found input fails
#      fast, without the fuzzing engine.
#   2. Bounded native fuzzing: each fuzz target runs for FUZZTIME
#      (default 30s). A discovered crasher is written by `go test` into
#      the package's testdata/fuzz/ directory in the source tree — CI
#      uploads exactly those files as artifacts on failure.
#
# Total budget: corpus replay (seconds) + 2 × FUZZTIME ≈ well under the
# 3-minute ceiling at the default setting.
set -eu
cd "$(dirname "$0")/.."

FUZZTIME="${FUZZTIME:-30s}"

fail() {
	echo "fuzz-smoke: FAILED in $1" >&2
	echo "fuzz-smoke: new crashers (untracked corpus files), if any:" >&2
	git ls-files --others --exclude-standard -- 'internal/*/testdata/fuzz/*' 'internal/*/*/testdata/fuzz/*' >&2 || true
	echo "fuzz-smoke: replay a crasher with:" >&2
	echo "  go test ./internal/litmus/text/ -run 'FuzzParseLitmus/<crasher-file>'" >&2
	echo "  go test ./internal/diffcheck/    -run 'FuzzDifferentialEstimate/<crasher-file>'" >&2
	exit 1
}

echo "fuzz-smoke: corpus replay"
go test ./internal/litmus/text/ ./internal/diffcheck/ -run 'Fuzz|Corpus' -count=1 \
	|| fail "corpus replay"

echo "fuzz-smoke: FuzzParseLitmus ($FUZZTIME)"
go test ./internal/litmus/text/ -fuzz='^FuzzParseLitmus$' -fuzztime="$FUZZTIME" -run '^$' \
	|| fail "FuzzParseLitmus"

echo "fuzz-smoke: FuzzDifferentialEstimate ($FUZZTIME)"
go test ./internal/diffcheck/ -fuzz='^FuzzDifferentialEstimate$' -fuzztime="$FUZZTIME" -run '^$' \
	|| fail "FuzzDifferentialEstimate"

echo "fuzz-smoke: corpus replay + ${FUZZTIME}/target bounded fuzzing green"
