module memreliability

go 1.24.0
