// atomicityviolation executes the paper's §2.2 canonical bug — two threads
// each performing a non-atomic x++ — on the operational multiprocessor
// simulator under each memory model, measuring how often the increment is
// lost (x == 1), verifying with exhaustive exploration that the bug is
// reachable even under Sequential Consistency, detecting the data race
// with vector clocks, and showing that an atomic read-modify-write fixes
// it.
package main

import (
	"fmt"
	"os"

	"memreliability/internal/litmus"
	"memreliability/internal/machine"
	"memreliability/internal/memmodel"
	"memreliability/internal/prog"
	"memreliability/internal/rng"
	"memreliability/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "atomicityviolation: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("The canonical atomicity violation (§2.2):")
	fmt.Println()
	fmt.Println(prog.CanonicalBug())
	fmt.Println()

	inc, err := litmus.ByName("INC")
	if err != nil {
		return err
	}
	src := rng.New(7)

	fmt.Println("Lost-increment frequency (x == 1) over 20000 random-scheduler runs:")
	for _, model := range memmodel.All() {
		freq, err := litmus.TargetFrequency(inc, model, 20000, src)
		if err != nil {
			return err
		}
		reach, err := litmus.Check(inc, model)
		if err != nil {
			return err
		}
		fmt.Printf("  %-4s freq=%.4f  reachable by exhaustive exploration: %v\n",
			model.Name(), freq, reach.Reachable)
	}

	fmt.Println()
	fmt.Println("Race detection on one TSO run (vector clocks / happens-before):")
	sim, err := machine.NewSim(inc.Prog, memmodel.TSO())
	if err != nil {
		return err
	}
	_, seq, err := sim.RunRandom(src)
	if err != nil {
		return err
	}
	events, err := trace.EventsFromRun(inc.Prog, seq)
	if err != nil {
		return err
	}
	races, err := trace.Analyze(events)
	if err != nil {
		return err
	}
	for _, r := range races {
		fmt.Printf("  %s\n", r)
	}

	fmt.Println()
	fmt.Println("The fix — one atomic RMW per thread — eliminates x == 1 everywhere:")
	fixed := machine.Program{
		Threads: []machine.Thread{
			{Ops: []machine.Op{machine.RMWAddOp{Addr: "x", Dst: "r", Delta: 1}}},
			{Ops: []machine.Op{machine.RMWAddOp{Addr: "x", Dst: "r", Delta: 1}}},
		},
		Init: map[string]int{"x": 0},
	}
	for _, model := range memmodel.All() {
		outcomes, err := machine.Explore(fixed, model, machine.ExploreConfig{})
		if err != nil {
			return err
		}
		allTwo := true
		for _, o := range outcomes {
			x, err := o.Lookup("x")
			if err != nil {
				return err
			}
			if x != 2 {
				allTwo = false
			}
		}
		fmt.Printf("  %-4s all outcomes x == 2: %v\n", model.Name(), allTwo)
	}
	return nil
}
