// Query API tour: one canonical request/result surface for every
// estimation route. A Query names the full experiment tuple (model,
// threads, prefix, p, s, trials, seed, confidence, kind); Estimate
// dispatches it through the estimator registry, and EstimateBatch runs
// many queries on a bounded worker pool with per-query deterministic
// seeds — the same path the sweep engine, the HTTP service, and the CLI
// tools use underneath.
package main

import (
	"context"
	"fmt"
	"os"

	"memreliability"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "query: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	ctx := context.Background()

	// One query, the paper's normal form with an explicit 95% interval.
	q := memreliability.DefaultQuery()
	q.Kind = memreliability.SweepFullMC
	q.Model = "TSO"
	q.Trials = 50000
	q.Confidence = 0.95
	res, err := memreliability.Estimate(ctx, q)
	if err != nil {
		return err
	}
	fmt.Printf("single query: %s %s → Pr[A] = %.6f (%.0f%% CI [%.6f, %.6f], %d trials)\n\n",
		q.Model, q.Kind.DisplayName(), res.Estimate, res.Confidence*100, res.Lo, res.Hi, res.TrialsUsed)

	// A batch: every registered estimation route for every model, each
	// result identical to a lone Estimate of the same query.
	var queries []memreliability.Query
	for _, model := range memreliability.AllModels() {
		for _, kind := range []memreliability.Kind{
			memreliability.SweepExact, memreliability.SweepHybrid,
		} {
			bq := memreliability.DefaultQuery()
			bq.Kind = kind
			bq.Model = model.Name()
			bq.PrefixLen = 16
			bq.Trials = 20000
			queries = append(queries, bq)
		}
	}
	fmt.Printf("batch of %d queries across %v:\n", len(queries), memreliability.EstimatorKinds())
	results, err := memreliability.EstimateBatch(ctx, queries, memreliability.BatchOptions{
		Progress: func(i int, r memreliability.QueryResult) {
			fmt.Printf("  done %-4s %-18s Pr[A] = %.6f\n",
				queries[i].Model, queries[i].Kind.DisplayName(), r.Estimate)
		},
	})
	if err != nil {
		return err
	}

	fmt.Println("\nexact vs hybrid per model (notes from the shared renderer):")
	for i, r := range results {
		fmt.Printf("  %-4s %-18s %s\n", queries[i].Model, r.Kind.DisplayName(), r.Notes())
	}
	return nil
}
