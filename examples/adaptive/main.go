// Command adaptive demonstrates adaptive-precision estimation: the same
// absolute half-width target on an easy cell (Pr[A] ≈ 0.13, converges
// after one sampling round) and a deep-tail relative-error cell (hybrid
// at n = 10, where only the budget cap bounds the work), compared
// against the fixed-trials default.
//
// The trials-consumed numbers are deterministic: rerunning this program
// — at any worker count — prints the same counts.
package main

import (
	"context"
	"fmt"
	"log"

	"memreliability"
)

func main() {
	ctx := context.Background()
	const fixedTrials = 200000

	// Easy cell: full Monte Carlo of Pr[A] under TSO at n=2. A fixed run
	// spends 200k trials; the adaptive run stops as soon as the 99%
	// Wilson interval is ±0.005 wide.
	easy := memreliability.DefaultQuery()
	easy.Kind = memreliability.SweepFullMC
	easy.Model = "TSO"
	easy.Trials = fixedTrials
	easy.Precision = &memreliability.Precision{TargetHalfWidth: 0.005}
	res, err := memreliability.Estimate(ctx, easy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("easy cell   (mc, TSO n=2, target ±0.005):\n")
	fmt.Printf("  Pr[A] = %.4f in [%.4f, %.4f]\n", res.Estimate, res.Lo, res.Hi)
	fmt.Printf("  %d trials in %d rounds (%s) — %.0f× fewer than the fixed %d\n\n",
		res.TrialsUsed, res.Rounds, res.StopReason,
		float64(fixedTrials)/float64(res.TrialsUsed), fixedTrials)

	// Deep-tail cell: the hybrid estimator at n=10 (Pr[A] ~ e^{-Θ(n²)},
	// far below direct simulation). A 5% relative-error target on Pr[A]
	// transfers to the product expectation unchanged; the budget cap
	// bounds the spend and the stop reason says whether it sufficed.
	deep := memreliability.DefaultQuery()
	deep.Kind = memreliability.SweepHybrid
	deep.Model = "WO"
	deep.Threads = 10
	deep.Trials = fixedTrials
	deep.Precision = &memreliability.Precision{TargetRelErr: 0.05, MaxTrials: 500000}
	res, err = memreliability.Estimate(ctx, deep)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deep tail   (hybrid, WO n=10, target 5%% rel err, cap 500k):\n")
	fmt.Printf("  ln Pr[A] = %.2f (Pr[A] = %.3g)\n", res.LogEstimate, res.Estimate)
	fmt.Printf("  %d trials in %d rounds (%s)\n\n", res.TrialsUsed, res.Rounds, res.StopReason)

	// An unreachable target: the run must report budget exhaustion, not
	// pretend to have converged.
	capped := easy
	capped.Precision = &memreliability.Precision{TargetRelErr: 0.0001, MaxTrials: 50000}
	res, err = memreliability.Estimate(ctx, capped)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("capped cell (mc, TSO n=2, target 0.01%% rel err, cap 50k):\n")
	fmt.Printf("  %d trials in %d rounds — stop reason: %s\n",
		res.TrialsUsed, res.Rounds, res.StopReason)
	if res.StopReason == memreliability.StopBudget {
		fmt.Println("  (the estimate did NOT reach the requested precision)")
	}
}
