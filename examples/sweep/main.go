// sweep demonstrates the declarative experiment-orchestration subsystem:
// one spec describes a models × threads grid with two estimation routes,
// the engine shards the cells across a worker pool, and the result is a
// versioned, byte-reproducible JSON artifact — the same artifact for any
// worker budget, because every cell derives its randomness from the spec
// seed and its grid position alone.
package main

import (
	"context"
	"fmt"
	"os"

	"memreliability"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	ctx := context.Background()
	spec := memreliability.DefaultSweepSpec() // paper normal form: p = s = 1/2
	spec.Models = []string{"SC", "TSO", "WO"}
	spec.Threads = []int{2, 4, 8}
	spec.PrefixLens = []int{48}
	spec.Estimators = []memreliability.SweepKind{memreliability.SweepExact, memreliability.SweepHybrid}
	spec.Trials = 20000
	spec.Seed = 2011
	spec.Workers = 4 // scheduling only: the artifact is identical at any value

	fmt.Println("Sweep: Pr[A] across models × thread counts (exact DP + Thm 6.1 hybrid)")
	fmt.Println()
	art, err := memreliability.RunSweep(ctx, spec, memreliability.SweepOptions{
		Sink: func(c memreliability.SweepCellResult) {
			fmt.Printf("  finished cell %2d: model=%-3s n=%d %s\n",
				c.Index, c.Model, c.Threads, c.Estimator)
		},
	})
	if err != nil {
		return err
	}

	fmt.Println()
	fmt.Printf("%-5s %3s  %-18s %12s %14s\n", "model", "n", "estimator", "estimate", "ln Pr[A]")
	for _, c := range art.Cells {
		if c.Skipped {
			fmt.Printf("%-5s %3d  %-18s %12s %14s\n", c.Model, c.Threads, c.Estimator, "-", "(skipped)")
			continue
		}
		fmt.Printf("%-5s %3d  %-18s %12.6f %14.4f\n",
			c.Model, c.Threads, c.Estimator, c.Estimate, c.LogEstimate)
	}

	fmt.Println()
	fmt.Println("The artifact serializes to versioned JSON (spec echo + per-cell")
	fmt.Println("results); rerunning the same spec — at any worker count — yields")
	fmt.Println("byte-identical output. Try: go run ./cmd/memsweep -spec spec.json")
	return nil
}
