// bitstrial: implement a custom bit-parallel batched trial
// (BatchTrialBits) and run it on the Monte Carlo harness directly.
//
// The harness's native batch contract packs 64 trial outcomes into each
// uint64 word, LSB-first. A custom implementation controls how it spends
// the chunk's RNG substream, so a trial whose outcome is one random bit
// can evaluate 64 trials per RNG draw — the packing itself costs
// nothing. The one obligation is the partial-word contract: when n is
// not a multiple of 64, the unused high bits of the final word must be
// written as zero, because the harness counts successes by popcounting
// whole words.
//
// The example estimates Pr[popcount(w) ≥ 40] for a uniform random
// 64-bit word w, two ways:
//
//   - a native BatchTrialBits that draws one word per trial and writes
//     one outcome bit (MCPackBools-free, mask applied by construction);
//   - the same trial as a []bool BatchTrial through the adapter route.
//
// Both consume the RNG identically (one draw per trial), so the two
// estimates are bit-identical — and each is independently
// worker-count-invariant, which the example also demonstrates.
package main

import (
	"context"
	"fmt"
	"math/bits"
	"os"

	"memreliability"
	"memreliability/internal/rng"
)

// heavyWord reports whether one uniform random word has ≥ 40 set bits.
func heavyWord(src *rng.Source) bool {
	return bits.OnesCount64(src.Uint64()) >= 40
}

// heavyBits is the native bitset batch: n trials, one outcome bit each.
// Zeroing the words first and OR-ing in successes satisfies the
// partial-word contract without a final mask.
func heavyBits(src *rng.Source, out []uint64, n int) error {
	words := out[:memreliability.MCBitWords(n)]
	for w := range words {
		words[w] = 0
	}
	for i := 0; i < n; i++ {
		if heavyWord(src) {
			words[i>>6] |= 1 << uint(i&63)
		}
	}
	return nil
}

// heavyBools is the same trial on the []bool adapter interface.
func heavyBools(src *rng.Source, out []bool) error {
	for i := range out {
		out[i] = heavyWord(src)
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "bitstrial: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	ctx := context.Background()
	const trials = 200_000
	fmt.Printf("Pr[popcount(w) >= 40], %d trials, seed 7:\n\n", trials)

	var first float64
	for _, workers := range []int{1, 4} {
		cfg := memreliability.MCConfig{Trials: trials, Workers: workers, Seed: 7}
		viaBits, err := memreliability.EstimateProbabilityBits(ctx, cfg, heavyBits)
		if err != nil {
			return err
		}
		viaBools, err := memreliability.EstimateProbabilityBatch(ctx, cfg, heavyBools)
		if err != nil {
			return err
		}
		p := viaBits.Proportion.Estimate()
		fmt.Printf("  workers=%d  bitset=%.6f  []bool=%.6f  (match: %v)\n",
			workers, p, viaBools.Proportion.Estimate(),
			viaBits.Proportion.Successes() == viaBools.Proportion.Successes())
		if workers == 1 {
			first = p
		} else if p != first {
			return fmt.Errorf("worker-count changed the estimate: %v vs %v", p, first)
		}
	}

	fmt.Println("\nBoth routes consume the RNG identically, so their estimates are")
	fmt.Println("bit-identical — and neither depends on the worker count. The exact")
	fmt.Println("binomial value is sum_{k>=40} C(64,k)/2^64 ≈ 0.02997.")
	return nil
}
