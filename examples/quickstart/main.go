// Quickstart: compare the probability that the canonical atomicity
// violation does NOT manifest (the paper's Pr[A]) across memory models for
// two threads, reproducing Theorem 6.2.
package main

import (
	"context"
	"fmt"
	"os"

	"memreliability"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "quickstart: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	ctx := context.Background()
	fmt.Println("Pr[A] for n=2 threads (Theorem 6.2): exact vs simulated")
	fmt.Println()
	for _, model := range memreliability.AllModels() {
		exact, err := memreliability.TwoThreadNoBugProbability(model)
		if err != nil {
			return err
		}
		est, lo, hi, err := memreliability.NoBugProbability(ctx, model, 2, 100000, 42)
		if err != nil {
			return err
		}
		fmt.Printf("  %-4s exact=%.6f  simulated=%.6f (99%% CI [%.6f, %.6f])\n",
			model.Name(), exact.Midpoint(), est, lo, hi)
	}
	fmt.Println()
	fmt.Println("Weaker models are more vulnerable at n=2 (SC > PSO > TSO > WO),")
	fmt.Println("with SC/WO = 9/7 ≈ 1.286 — run examples/threadscaling to see the")
	fmt.Println("gap vanish as n grows (Theorem 6.3).")
	return nil
}
