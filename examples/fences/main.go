// fences explores the paper's §7 extension: acquire/release fences as
// one-way barriers in the settling process. An acquire fence placed above
// the critical load prevents it from settling upward, shrinking the
// critical window and pushing Weak Ordering's reliability back toward
// Sequential Consistency — quantifying the paper's conjecture that fences
// make the bug less likely without changing the main conclusions.
package main

import (
	"context"
	"fmt"
	"math"
	"os"

	"memreliability/internal/mc"
	"memreliability/internal/memmodel"
	"memreliability/internal/prog"
	"memreliability/internal/rng"
	"memreliability/internal/settle"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "fences: %v\n", err)
		os.Exit(1)
	}
}

// windowWithFence samples the WO critical-window size with an acquire
// fence `distance` instructions above the critical load (distance < 0
// means no fence).
func windowWithFence(distance, prefixLen int, src *rng.Source) (int, error) {
	types := make([]memmodel.OpType, prefixLen)
	for i := range types {
		if src.Bool(0.5) {
			types[i] = memmodel.Store
		} else {
			types[i] = memmodel.Load
		}
	}
	if distance >= 0 && distance < prefixLen {
		types[prefixLen-1-distance] = memmodel.FenceAcquire
	}
	p, err := prog.FromTypes(types)
	if err != nil {
		return 0, err
	}
	res, err := settle.Settle(p, memmodel.WO(), settle.DefaultOptions(), src)
	if err != nil {
		return 0, err
	}
	return res.WindowGamma(), nil
}

func run() error {
	ctx := context.Background()
	fmt.Println("§7 extension: acquire fences above the critical LD under Weak Ordering")
	fmt.Println()
	fmt.Printf("%-9s  %8s  %10s  %14s\n", "distance", "E[γ]", "Pr[γ=0]", "n=2 Pr[A]")
	for _, distance := range []int{0, 1, 2, 4, 8, -1} {
		distance := distance
		hist, err := mc.EstimateDistribution(ctx, mc.Config{Trials: 150000, Seed: 99}, 24,
			func(src *rng.Source) (int, error) {
				return windowWithFence(distance, 24, src)
			})
		if err != nil {
			return err
		}
		meanGamma, mgf := 0.0, 0.0
		for g := 0; g < 24; g++ {
			meanGamma += float64(g) * hist.Freq(g)
			mgf += math.Pow(2, -float64(g+2)) * hist.Freq(g)
		}
		label := fmt.Sprintf("%d", distance)
		if distance < 0 {
			label = "none"
		}
		fmt.Printf("%-9s  %8.4f  %10.4f  %14.6f\n", label, meanGamma, hist.Freq(0), 2.0/3.0*mgf)
	}
	fmt.Println()
	fmt.Println("A fence directly above the critical LD (distance 0) caps γ at 0 and")
	fmt.Println("recovers the Sequential Consistency value Pr[A] = 1/6; pushing the")
	fmt.Println("fence farther away smoothly interpolates back to unfenced WO (7/54),")
	fmt.Println("supporting the paper's conjecture that fences only strengthen, never")
	fmt.Println("reverse, the qualitative conclusions.")
	return nil
}
