// Command client demonstrates the memserved HTTP API end to end: point
// it at a running daemon with -url, or run it with no flags and it spins
// up an in-process server on an ephemeral port.
//
// It issues the same estimate twice (showing the X-Cache miss → hit
// transition and the byte-identical bodies), fetches a window
// distribution, and drives an async sweep job from submission through
// polling to the finished versioned artifact.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"memreliability"
)

func main() {
	url := flag.String("url", "", "base URL of a running memserved (default: start one in-process)")
	flag.Parse()
	log.SetFlags(0)

	base := *url
	if base == "" {
		srv, err := memreliability.NewServer(memreliability.ServeConfig{})
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		httpSrv := &http.Server{Handler: srv}
		go httpSrv.Serve(l)
		defer httpSrv.Close()
		base = "http://" + l.Addr().String()
		fmt.Printf("started in-process memserved at %s\n\n", base)
	}

	// The same request twice: the second response comes from the LRU
	// cache, byte-identical to the first.
	est := `{"model":"TSO","threads":4,"estimator":"hybrid","trials":20000,"seed":1}`
	first, cache1 := postJSON(base+"/v1/estimate", est)
	second, cache2 := postJSON(base+"/v1/estimate", est)
	var resp memreliability.EstimateResponse
	must(json.Unmarshal(first, &resp))
	fmt.Printf("Pr[A] for TSO, n=4 (hybrid): %.6f  (ln = %.4f)\n",
		resp.Result.Estimate, resp.Result.LogEstimate)
	fmt.Printf("first request:  X-Cache=%s\n", cache1)
	fmt.Printf("second request: X-Cache=%s, byte-identical=%v\n\n", cache2, bytes.Equal(first, second))

	// Theorem 4.1 window distribution.
	wd, _ := postJSON(base+"/v1/windowdist", `{"model":"WO","prefix_len":16,"max_gamma":4}`)
	var wdResp struct {
		Result struct {
			Dist []float64 `json:"dist"`
		} `json:"result"`
	}
	must(json.Unmarshal(wd, &wdResp))
	fmt.Print("WO window distribution Pr[B_γ]:")
	for gamma, p := range wdResp.Result.Dist {
		fmt.Printf("  P(%d)=%.4f", gamma, p)
	}
	fmt.Println()
	fmt.Println()

	// An async sweep job: submit, poll, fetch the versioned artifact.
	job, _ := postJSON(base+"/v1/sweeps",
		`{"models":["SC","TSO","WO"],"threads":[2],"estimators":["exact"],"seed":7}`)
	var status struct {
		ID           string `json:"id"`
		State        string `json:"state"`
		CellsDone    int    `json:"cells_done"`
		CellsTotal   int    `json:"cells_total"`
		ArtifactPath string `json:"artifact_path"`
	}
	must(json.Unmarshal(job, &status))
	fmt.Printf("sweep job %s submitted (%d cells)\n", status.ID, status.CellsTotal)
	for status.State != "done" {
		if status.State == "failed" || status.State == "canceled" {
			log.Fatalf("job ended in state %q", status.State)
		}
		time.Sleep(50 * time.Millisecond)
		body := getBody(base + "/v1/sweeps/" + status.ID)
		must(json.Unmarshal(body, &status))
	}
	fmt.Printf("job %s done (%d/%d cells)\n", status.ID, status.CellsDone, status.CellsTotal)

	artBody := getBody(base + status.ArtifactPath)
	decoded, err := memreliability.DecodeSweepArtifact(bytes.NewReader(artBody))
	if err != nil {
		log.Fatal(err)
	}
	for _, cell := range decoded.Cells {
		fmt.Printf("  %-4s n=%d  Pr[A] = %.6f\n", cell.Model, cell.Threads, cell.Estimate)
	}
}

// postJSON POSTs a JSON body and returns the response body and X-Cache.
func postJSON(url, body string) ([]byte, string) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	must(err)
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	must(err)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		log.Fatalf("POST %s: %d: %s", url, resp.StatusCode, data)
	}
	return data, resp.Header.Get("X-Cache")
}

// getBody GETs a URL and returns its body, aborting on any non-200.
func getBody(url string) []byte {
	resp, err := http.Get(url)
	must(err)
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	must(err)
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("GET %s: %d: %s", url, resp.StatusCode, data)
	}
	return data
}

// must aborts on error.
func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
