// threadscaling reproduces the paper's second headline result (Theorem
// 6.3): as the number of concurrent buggy threads grows, the reliability
// gap between strict and relaxed memory models becomes proportionally
// insignificant — the normalized decay rate −ln Pr[A]/n² converges to the
// same value for every model.
package main

import (
	"context"
	"fmt"
	"os"

	"memreliability"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "threadscaling: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	ctx := context.Background()
	models := []memreliability.Model{
		memreliability.SC(), memreliability.TSO(), memreliability.WO(),
	}
	ns := []int{2, 3, 4, 6, 8, 12}
	rows, err := memreliability.ThreadScaling(ctx, models, ns, 60000, 63)
	if err != nil {
		return err
	}

	fmt.Println("Theorem 6.3: −ln Pr[A] / n² per model (hybrid Theorem 6.1 estimator)")
	fmt.Println()
	fmt.Printf("%4s  %-5s  %12s  %8s  %12s\n", "n", "model", "ln Pr[A]", "rate", "ratio to SC")
	for _, r := range rows {
		fmt.Printf("%4d  %-5s  %12.4f  %8.4f  %12.4f\n",
			r.Threads, r.Model, r.LogPrA, r.Rate, r.RatioToSC)
	}
	fmt.Println()
	fmt.Println("The ratio-to-SC column tends to 1 for TSO and WO as n grows: with")
	fmt.Println("many threads, even Sequential Consistency cannot contain the bug,")
	fmt.Println("so the choice of memory model stops mattering for this reliability")
	fmt.Println("metric — the paper's counterintuitive conclusion.")
	return nil
}
