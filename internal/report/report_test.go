package report

import (
	"errors"
	"strings"
	"testing"
)

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable("t"); !errors.Is(err, ErrBadTable) {
		t.Error("headerless table accepted")
	}
}

func TestAddRowValidation(t *testing.T) {
	tbl, err := NewTable("t", "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.AddRow("only-one"); !errors.Is(err, ErrBadTable) {
		t.Error("short row accepted")
	}
	if err := tbl.AddRow("1", "2"); err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 1 {
		t.Errorf("NumRows = %d", tbl.NumRows())
	}
}

func TestAddRowDefensiveCopy(t *testing.T) {
	tbl, err := NewTable("t", "a")
	if err != nil {
		t.Fatal(err)
	}
	cells := []string{"x"}
	if err := tbl.AddRow(cells...); err != nil {
		t.Fatal(err)
	}
	cells[0] = "mutated"
	var sb strings.Builder
	if err := tbl.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "mutated") {
		t.Error("table aliases caller slice")
	}
}

func TestAddRowValues(t *testing.T) {
	tbl, err := NewTable("t", "model", "p", "n")
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.AddRowValues("SC", 0.166667, 42); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tbl.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"SC", "0.166667", "42"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteTextAlignment(t *testing.T) {
	tbl, err := NewTable("Title", "col", "x")
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.AddRow("longvalue", "1"); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tbl.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), sb.String())
	}
	if lines[0] != "Title" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[3], "longvalue") {
		t.Errorf("data line = %q", lines[3])
	}
}

func TestWriteCSVEscaping(t *testing.T) {
	tbl, err := NewTable("", "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.AddRow(`has,comma`, `has"quote`); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tbl.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `"has,comma"`) {
		t.Errorf("comma not quoted: %q", out)
	}
	if !strings.Contains(out, `"has""quote"`) {
		t.Errorf("quote not doubled: %q", out)
	}
	if !strings.HasPrefix(out, "a,b\r\n") {
		t.Errorf("header = %q", out)
	}
}

func TestWriteMarkdown(t *testing.T) {
	tbl, err := NewTable("My Table", "m", "v")
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.AddRow("SC", "1/6"); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tbl.WriteMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"### My Table", "| m | v |", "|---|---|", "| SC | 1/6 |"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestFormatters(t *testing.T) {
	if got := FormatProb(1.0 / 6.0); got != "0.166667" {
		t.Errorf("FormatProb = %q", got)
	}
	if got := FormatInterval(0.1315, 0.1369); got != "[0.131500, 0.136900]" {
		t.Errorf("FormatInterval = %q", got)
	}
	if got := FormatRatio(9.0 / 7.0); got != "1.2857" {
		t.Errorf("FormatRatio = %q", got)
	}
}

func TestWriteDispatch(t *testing.T) {
	tbl, err := NewTable("T", "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.AddRow("x", "y"); err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		"":         "a  b",
		"text":     "a  b",
		"csv":      "a,b",
		"markdown": "| a | b |",
		"md":       "| a | b |",
	}
	for format, want := range cases {
		var sb strings.Builder
		if err := tbl.Write(&sb, format); err != nil {
			t.Fatalf("format %q: %v", format, err)
		}
		if !strings.Contains(sb.String(), want) {
			t.Errorf("format %q missing %q:\n%s", format, want, sb.String())
		}
	}
	var sb strings.Builder
	if err := tbl.Write(&sb, "yaml"); !errors.Is(err, ErrBadTable) {
		t.Errorf("unknown format accepted: %v", err)
	}
}
