package report

import (
	"encoding/csv"
	"errors"
	"strings"
	"testing"
)

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable("t"); !errors.Is(err, ErrBadTable) {
		t.Error("headerless table accepted")
	}
}

func TestAddRowValidation(t *testing.T) {
	tbl, err := NewTable("t", "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.AddRow("only-one"); !errors.Is(err, ErrBadTable) {
		t.Error("short row accepted")
	}
	if err := tbl.AddRow("1", "2"); err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 1 {
		t.Errorf("NumRows = %d", tbl.NumRows())
	}
}

func TestAddRowDefensiveCopy(t *testing.T) {
	tbl, err := NewTable("t", "a")
	if err != nil {
		t.Fatal(err)
	}
	cells := []string{"x"}
	if err := tbl.AddRow(cells...); err != nil {
		t.Fatal(err)
	}
	cells[0] = "mutated"
	var sb strings.Builder
	if err := tbl.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "mutated") {
		t.Error("table aliases caller slice")
	}
}

func TestAddRowValues(t *testing.T) {
	tbl, err := NewTable("t", "model", "p", "n")
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.AddRowValues("SC", 0.166667, 42); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tbl.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"SC", "0.166667", "42"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteTextAlignment(t *testing.T) {
	tbl, err := NewTable("Title", "col", "x")
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.AddRow("longvalue", "1"); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tbl.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), sb.String())
	}
	if lines[0] != "Title" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[3], "longvalue") {
		t.Errorf("data line = %q", lines[3])
	}
}

func TestWriteCSVEscaping(t *testing.T) {
	tbl, err := NewTable("", "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.AddRow(`has,comma`, `has"quote`); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tbl.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `"has,comma"`) {
		t.Errorf("comma not quoted: %q", out)
	}
	if !strings.Contains(out, `"has""quote"`) {
		t.Errorf("quote not doubled: %q", out)
	}
	if !strings.HasPrefix(out, "a,b\r\n") {
		t.Errorf("header = %q", out)
	}
}

// TestWriteCSVEscapingRoundTrip drives the tricky cell contents through
// a real RFC-4180 parser: whatever the writer emits must decode back to
// the original cells exactly.
func TestWriteCSVEscapingRoundTrip(t *testing.T) {
	rows := [][]string{
		{`plain`, `has,comma`, `has"quote`},
		{`"leading quote`, `trailing quote"`, `both",and,comma`},
		{"embedded\nnewline", "crlf\r\npair", `|pipe| is plain in CSV`},
		{`comma, "quote", and`, "\n", ``},
	}
	tbl, err := NewTable("", "a", "b", "c")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if err := tbl.AddRow(row...); err != nil {
			t.Fatal(err)
		}
	}
	var sb strings.Builder
	if err := tbl.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}

	rd := csv.NewReader(strings.NewReader(sb.String()))
	decoded, err := rd.ReadAll()
	if err != nil {
		t.Fatalf("emitted CSV does not parse: %v\n%s", err, sb.String())
	}
	if len(decoded) != len(rows)+1 {
		t.Fatalf("decoded %d records, want %d", len(decoded), len(rows)+1)
	}
	for i, row := range rows {
		for j, want := range row {
			// encoding/csv folds \r\n inside quoted fields to \n
			// (RFC 4180 reads CRLF as a line ending); normalize the
			// expectation the same way.
			want = strings.ReplaceAll(want, "\r\n", "\n")
			if got := decoded[i+1][j]; got != want {
				t.Errorf("row %d col %d = %q, want %q", i, j, got, want)
			}
		}
	}
}

// TestWriteMarkdownEscaping checks that pipes and newlines in cells
// cannot break the GFM table structure: every emitted line must still be
// one table row.
func TestWriteMarkdownEscaping(t *testing.T) {
	tbl, err := NewTable("", "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.AddRow(`P(0)=0.66|P(1)=0.17`, `has,comma`); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AddRow("line\nbreak", `quote"and|pipe`); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AddRow(`backslash-pipe\|combo`, `trailing\`); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tbl.WriteMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want 5 (header, rule, 3 rows):\n%s", len(lines), out)
	}
	for i, line := range lines {
		if i == 1 {
			continue // delimiter row
		}
		// Unescaped pipes delimit cells; after removing escaped
		// backslashes and then escaped pipes, each row must have exactly
		// the 3 structural pipes of a two-column table.
		stripped := strings.ReplaceAll(line, `\\`, "")
		stripped = strings.ReplaceAll(stripped, `\|`, "")
		structural := strings.Count(stripped, "|")
		if structural != 3 {
			t.Errorf("line %d has %d structural pipes, want 3: %q", i, structural, line)
		}
	}
	if !strings.Contains(out, `P(0)=0.66\|P(1)=0.17`) {
		t.Errorf("pipe not escaped:\n%s", out)
	}
	// `\|` in the source cell must emit as escaped-backslash +
	// escaped-pipe, and a trailing backslash must not eat the closing
	// structural pipe.
	if !strings.Contains(out, `backslash-pipe\\\|combo`) {
		t.Errorf("backslash before pipe not escaped:\n%s", out)
	}
	if !strings.Contains(out, `trailing\\ |`) {
		t.Errorf("trailing backslash not escaped:\n%s", out)
	}
	if !strings.Contains(out, "line<br>break") {
		t.Errorf("newline not neutralized:\n%s", out)
	}
	if !strings.Contains(out, "has,comma") {
		t.Errorf("comma mangled (it needs no escape in Markdown):\n%s", out)
	}
}

func TestWriteMarkdown(t *testing.T) {
	tbl, err := NewTable("My Table", "m", "v")
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.AddRow("SC", "1/6"); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tbl.WriteMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"### My Table", "| m | v |", "|---|---|", "| SC | 1/6 |"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestFormatters(t *testing.T) {
	if got := FormatProb(1.0 / 6.0); got != "0.166667" {
		t.Errorf("FormatProb = %q", got)
	}
	if got := FormatInterval(0.1315, 0.1369); got != "[0.131500, 0.136900]" {
		t.Errorf("FormatInterval = %q", got)
	}
	if got := FormatRatio(9.0 / 7.0); got != "1.2857" {
		t.Errorf("FormatRatio = %q", got)
	}
}

func TestWriteDispatch(t *testing.T) {
	tbl, err := NewTable("T", "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.AddRow("x", "y"); err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		"":         "a  b",
		"text":     "a  b",
		"csv":      "a,b",
		"markdown": "| a | b |",
		"md":       "| a | b |",
	}
	for format, want := range cases {
		var sb strings.Builder
		if err := tbl.Write(&sb, format); err != nil {
			t.Fatalf("format %q: %v", format, err)
		}
		if !strings.Contains(sb.String(), want) {
			t.Errorf("format %q missing %q:\n%s", format, want, sb.String())
		}
	}
	var sb strings.Builder
	if err := tbl.Write(&sb, "yaml"); !errors.Is(err, ErrBadTable) {
		t.Errorf("unknown format accepted: %v", err)
	}
}
