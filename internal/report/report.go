// Package report renders experiment results as fixed-width text tables,
// CSV, and Markdown. Every benchmark that reproduces a paper table or
// figure emits its rows through this package so the output format is
// uniform across experiments.
package report

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ErrBadTable reports structurally invalid table construction.
var ErrBadTable = errors.New("report: bad table")

// Table is a simple column-aligned table builder.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) (*Table, error) {
	if len(headers) == 0 {
		return nil, fmt.Errorf("%w: no headers", ErrBadTable)
	}
	h := make([]string, len(headers))
	copy(h, headers)
	return &Table{title: title, headers: h}, nil
}

// AddRow appends a row; the cell count must match the header count.
func (t *Table) AddRow(cells ...string) error {
	if len(cells) != len(t.headers) {
		return fmt.Errorf("%w: row has %d cells, want %d", ErrBadTable, len(cells), len(t.headers))
	}
	row := make([]string, len(cells))
	copy(row, cells)
	t.rows = append(t.rows, row)
	return nil
}

// AddRowValues appends a row of arbitrary values formatted with %v, except
// float64 which uses FormatProb.
func (t *Table) AddRowValues(values ...any) error {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			cells[i] = FormatProb(x)
		case string:
			cells[i] = x
		default:
			cells[i] = fmt.Sprintf("%v", x)
		}
	}
	return t.AddRow(cells...)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.title != "" {
		sb.WriteString(t.title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		sb.WriteByte('\n')
	}
	writeRow(t.headers)
	total := 0
	for _, w := range widths {
		total += w
	}
	sb.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	sb.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, sb.String())
	if err != nil {
		return fmt.Errorf("report: write text: %w", err)
	}
	return nil
}

// WriteCSV renders the table as RFC-4180 CSV (header row first).
func (t *Table) WriteCSV(w io.Writer) error {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				sb.WriteByte('"')
				sb.WriteString(strings.ReplaceAll(cell, `"`, `""`))
				sb.WriteByte('"')
			} else {
				sb.WriteString(cell)
			}
		}
		sb.WriteString("\r\n")
	}
	writeRow(t.headers)
	for _, row := range t.rows {
		writeRow(row)
	}
	if _, err := io.WriteString(w, sb.String()); err != nil {
		return fmt.Errorf("report: write csv: %w", err)
	}
	return nil
}

// WriteMarkdown renders the table as a GitHub-flavored Markdown table.
// Cell content is escaped so pipes and newlines cannot break the table
// structure.
func (t *Table) WriteMarkdown(w io.Writer) error {
	var sb strings.Builder
	if t.title != "" {
		sb.WriteString("### ")
		sb.WriteString(t.title)
		sb.WriteString("\n\n")
	}
	writeRow := func(cells []string) {
		sb.WriteString("| ")
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString(" | ")
			}
			sb.WriteString(escapeMarkdownCell(cell))
		}
		sb.WriteString(" |\n")
	}
	writeRow(t.headers)
	sb.WriteByte('|')
	for range t.headers {
		sb.WriteString("---|")
	}
	sb.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	if _, err := io.WriteString(w, sb.String()); err != nil {
		return fmt.Errorf("report: write markdown: %w", err)
	}
	return nil
}

// markdownCellEscaper rewrites the characters that would break a GFM
// table cell: "|" ends the cell and a newline ends the row. Backslash is
// escaped too, so a literal trailing backslash cannot turn the emitted
// `\|` back into a structural pipe.
var markdownCellEscaper = strings.NewReplacer(
	`\`, `\\`,
	"|", `\|`,
	"\r\n", "<br>",
	"\n", "<br>",
	"\r", "<br>",
)

// escapeMarkdownCell makes an arbitrary string safe inside one GFM table
// cell.
func escapeMarkdownCell(cell string) string {
	return markdownCellEscaper.Replace(cell)
}

// Write renders the table in the named format: "text" (or ""), "csv", or
// "markdown"/"md". Unknown formats return ErrBadTable.
func (t *Table) Write(w io.Writer, format string) error {
	switch format {
	case "", "text":
		return t.WriteText(w)
	case "csv":
		return t.WriteCSV(w)
	case "markdown", "md":
		return t.WriteMarkdown(w)
	default:
		return fmt.Errorf("%w: unknown format %q", ErrBadTable, format)
	}
}

// FormatProb formats a probability with six significant decimals, the
// precision at which the paper states its Theorem 6.2 constants.
func FormatProb(p float64) string {
	return strconv.FormatFloat(p, 'f', 6, 64)
}

// FormatInterval formats a [lo, hi] interval.
func FormatInterval(lo, hi float64) string {
	return "[" + FormatProb(lo) + ", " + FormatProb(hi) + "]"
}

// FormatRatio formats a ratio with four decimals.
func FormatRatio(r float64) string {
	return strconv.FormatFloat(r, 'f', 4, 64)
}
