// conditional.go computes settling distributions conditioned on a fixed
// program, rather than averaged over random programs. The exact
// small-instance enumeration of the joined model (core.ExactSmallPrA)
// needs this: with n threads reordering the *same* program independently,
// the per-thread windows are conditionally independent given the program
// but dependent unconditionally.
package settle

import (
	"fmt"

	"memreliability/internal/dist"
	"memreliability/internal/memmodel"
)

// ConditionalWindowDist returns the exact critical-window distribution
// Pr[B_γ | program] for the fixed prefix type sequence, settled under the
// model with uniform swap probability s. The PMF tabulates γ ∈ [0, len
// (prefix)], covering the full support, so its mass is exactly 1.
//
// Fences in the prefix are not supported by the exact recursion (the DP
// state tracks only LD/ST strings); use the sampler for fenced programs.
func ConditionalWindowDist(model memmodel.Model, prefix []memmodel.OpType, s float64) (*dist.PMF, error) {
	if model.Name() == "" {
		return nil, fmt.Errorf("%w: zero-value model", ErrBadInput)
	}
	if s < 0 || s > 1 {
		return nil, fmt.Errorf("%w: swap probability %v", ErrBadInput, s)
	}
	m := len(prefix)
	if m > maxExactPrefix {
		return nil, fmt.Errorf("%w: prefix length %d exceeds %d", ErrBadInput, m, maxExactPrefix)
	}
	for i, t := range prefix {
		if !t.IsMemOp() {
			return nil, fmt.Errorf("%w: prefix[%d] type %v (conditional DP supports LD/ST only)",
				ErrBadInput, i, t)
		}
	}
	cur := []float64{1}
	for i, t := range prefix {
		// stepStringDist draws the round's type Bernoulli(pStore); pinning
		// pStore to 0 or 1 conditions on the fixed type.
		pStore := 0.0
		if t == memmodel.Store {
			pStore = 1.0
		}
		cur = stepStringDist(model, cur, i, pStore, s)
	}
	mass := make([]float64, m+1)
	for mask, w := range cur {
		if w == 0 {
			continue
		}
		accumWindow(model, uint64(mask), m, s, w, mass)
	}
	return dist.NewPMF(mass)
}
