package settle

import (
	"errors"
	"math"
	"testing"

	"memreliability/internal/memmodel"
	"memreliability/internal/prog"
	"memreliability/internal/rng"
)

func TestConditionalWindowDistValidation(t *testing.T) {
	if _, err := ConditionalWindowDist(memmodel.Model{}, nil, 0.5); !errors.Is(err, ErrBadInput) {
		t.Error("zero model accepted")
	}
	if _, err := ConditionalWindowDist(memmodel.SC(), nil, 1.5); !errors.Is(err, ErrBadInput) {
		t.Error("bad s accepted")
	}
	fence := []memmodel.OpType{memmodel.FenceAcquire}
	if _, err := ConditionalWindowDist(memmodel.WO(), fence, 0.5); !errors.Is(err, ErrBadInput) {
		t.Error("fence prefix accepted")
	}
	long := make([]memmodel.OpType, 30)
	for i := range long {
		long[i] = memmodel.Load
	}
	if _, err := ConditionalWindowDist(memmodel.SC(), long, 0.5); !errors.Is(err, ErrBadInput) {
		t.Error("huge prefix accepted")
	}
}

func TestConditionalWindowDistMassIsOne(t *testing.T) {
	prefixes := [][]memmodel.OpType{
		{},
		{memmodel.Store},
		{memmodel.Store, memmodel.Store, memmodel.Load},
		{memmodel.Load, memmodel.Store, memmodel.Store, memmodel.Store, memmodel.Load},
	}
	for _, model := range memmodel.All() {
		for _, prefix := range prefixes {
			pmf, err := ConditionalWindowDist(model, prefix, 0.5)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(pmf.Total()-1) > 1e-12 {
				t.Errorf("%s prefix %v: mass %v", model.Name(), prefix, pmf.Total())
			}
		}
	}
}

func TestConditionalWindowDistTSOAllStores(t *testing.T) {
	// With an all-ST prefix under TSO nothing in the prefix moves, the
	// critical LD passes k STs with probability 2^-(k+1) (2^-m at the
	// top), and the critical ST never moves: Pr[B_γ] = 2^-(γ+1) for γ < m,
	// 2^-m at γ = m.
	const m = 6
	prefix := make([]memmodel.OpType, m)
	for i := range prefix {
		prefix[i] = memmodel.Store
	}
	pmf, err := ConditionalWindowDist(memmodel.TSO(), prefix, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for gamma := 0; gamma < m; gamma++ {
		want := math.Pow(2, -float64(gamma+1))
		if got := pmf.At(gamma); math.Abs(got-want) > 1e-12 {
			t.Errorf("Pr[B_%d] = %v, want %v", gamma, got, want)
		}
	}
	if got := pmf.At(m); math.Abs(got-math.Pow(2, -m)) > 1e-12 {
		t.Errorf("Pr[B_%d] = %v, want 2^-%d", m, got, m)
	}
}

func TestConditionalWindowDistTSOAllLoads(t *testing.T) {
	// With an all-LD prefix under TSO the critical LD is blocked
	// immediately: the window never grows.
	prefix := []memmodel.OpType{memmodel.Load, memmodel.Load, memmodel.Load}
	pmf, err := ConditionalWindowDist(memmodel.TSO(), prefix, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := pmf.At(0); math.Abs(got-1) > 1e-12 {
		t.Errorf("Pr[B_0] = %v, want 1", got)
	}
}

func TestConditionalAveragesToUnconditional(t *testing.T) {
	// Mixing the conditional DP over all 2^m programs weighted by
	// Bernoulli(p) must reproduce the unconditional DP.
	const m = 8
	for _, model := range memmodel.All() {
		want, err := ExactWindowDist(model, m, 0.5, 0.5, m)
		if err != nil {
			t.Fatal(err)
		}
		mixed := make([]float64, m+1)
		prefix := make([]memmodel.OpType, m)
		for mask := 0; mask < 1<<m; mask++ {
			for i := 0; i < m; i++ {
				if mask&(1<<i) != 0 {
					prefix[i] = memmodel.Store
				} else {
					prefix[i] = memmodel.Load
				}
			}
			pmf, err := ConditionalWindowDist(model, prefix, 0.5)
			if err != nil {
				t.Fatal(err)
			}
			w := math.Pow(0.5, m)
			for g := 0; g <= m; g++ {
				mixed[g] += w * pmf.At(g)
			}
		}
		for g := 0; g <= m; g++ {
			if math.Abs(mixed[g]-want.At(g)) > 1e-10 {
				t.Errorf("%s: mixed Pr[B_%d] = %v, unconditional %v",
					model.Name(), g, mixed[g], want.At(g))
			}
		}
	}
}

func TestConditionalMatchesSamplerOnFixedProgram(t *testing.T) {
	// Empirical windows from settling one fixed program must match the
	// conditional DP.
	prefix := []memmodel.OpType{
		memmodel.Store, memmodel.Load, memmodel.Store, memmodel.Store,
		memmodel.Store, memmodel.Load, memmodel.Store,
	}
	p, err := prog.FromTypes(prefix)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(21)
	for _, model := range memmodel.All() {
		pmf, err := ConditionalWindowDist(model, prefix, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		const trials = 100000
		counts := make([]int, len(prefix)+1)
		for i := 0; i < trials; i++ {
			res, err := Settle(p, model, DefaultOptions(), src)
			if err != nil {
				t.Fatal(err)
			}
			counts[res.WindowGamma()]++
		}
		for g := 0; g <= 4; g++ {
			want := pmf.At(g)
			got := float64(counts[g]) / trials
			tol := 4*math.Sqrt(want*(1-want)/trials) + 1e-3
			if math.Abs(got-want) > tol {
				t.Errorf("%s: empirical Pr[B_%d|prog] = %v, DP %v", model.Name(), g, got, want)
			}
		}
	}
}
