package settle

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"memreliability/internal/memmodel"
	"memreliability/internal/prog"
	"memreliability/internal/rng"
)

func mustProgram(t *testing.T, prefix []memmodel.OpType) *prog.Program {
	t.Helper()
	p, err := prog.FromTypes(prefix)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSettleSCIsIdentity(t *testing.T) {
	src := rng.New(1)
	p, err := prog.Generate(prog.DefaultParams(20), src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Settle(p, memmodel.SC(), DefaultOptions(), src)
	if err != nil {
		t.Fatal(err)
	}
	for i, pos := range res.Perm() {
		if pos != i {
			t.Fatalf("SC moved instruction %d to %d", i, pos)
		}
	}
	if res.WindowGamma() != 0 {
		t.Errorf("SC window γ = %d", res.WindowGamma())
	}
	if res.SegmentLength() != 2 {
		t.Errorf("SC segment length = %d, want 2", res.SegmentLength())
	}
}

func TestSettleOutputIsPermutation(t *testing.T) {
	src := rng.New(2)
	models := memmodel.All()
	check := func(seed uint32, prefixLen uint8, modelIdx uint8) bool {
		model := models[int(modelIdx)%len(models)]
		p, err := prog.Generate(prog.DefaultParams(int(prefixLen%24)), rng.New(uint64(seed)))
		if err != nil {
			return false
		}
		res, err := Settle(p, model, DefaultOptions(), src)
		if err != nil {
			return false
		}
		perm := res.Perm()
		seen := make([]bool, len(perm))
		for _, pos := range perm {
			if pos < 0 || pos >= len(perm) || seen[pos] {
				return false
			}
			seen[pos] = true
		}
		// Order and Perm must be inverse.
		order := res.Order()
		for pos, idx := range order {
			if perm[idx] != pos {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSettleRespectsModelConstraints(t *testing.T) {
	// Under TSO, the relative order of STs must be preserved, the relative
	// order of LDs must be preserved, and no ST may move before a LD that
	// preceded it in program order.
	src := rng.New(3)
	for trial := 0; trial < 500; trial++ {
		p, err := prog.Generate(prog.DefaultParams(16), src)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Settle(p, memmodel.TSO(), DefaultOptions(), src)
		if err != nil {
			t.Fatal(err)
		}
		perm := res.Perm()
		for i := 0; i < p.Len(); i++ {
			for j := i + 1; j < p.Len(); j++ {
				ti, tj := p.At(i).Type, p.At(j).Type
				inverted := perm[j] < perm[i]
				if inverted && !(ti == memmodel.Store && tj == memmodel.Load) {
					t.Fatalf("TSO inverted %v(at %d) and %v(at %d)", ti, i, tj, j)
				}
			}
		}
	}
}

func TestSettleCriticalPairNeverInverts(t *testing.T) {
	src := rng.New(4)
	for _, model := range memmodel.All() {
		for trial := 0; trial < 300; trial++ {
			p, err := prog.Generate(prog.DefaultParams(10), src)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Settle(p, model, DefaultOptions(), src)
			if err != nil {
				t.Fatal(err)
			}
			lp, sp := res.WindowBounds()
			if lp >= sp {
				t.Fatalf("%s: critical store (pos %d) not after critical load (pos %d)",
					model.Name(), sp, lp)
			}
		}
	}
}

func TestSettleValidation(t *testing.T) {
	src := rng.New(5)
	p := mustProgram(t, nil)
	if _, err := Settle(nil, memmodel.SC(), DefaultOptions(), src); !errors.Is(err, ErrBadInput) {
		t.Error("nil program accepted")
	}
	if _, err := Settle(p, memmodel.SC(), DefaultOptions(), nil); !errors.Is(err, ErrBadInput) {
		t.Error("nil source accepted")
	}
	if _, err := Settle(p, memmodel.Model{}, DefaultOptions(), src); !errors.Is(err, ErrBadInput) {
		t.Error("zero model accepted")
	}
}

func TestSettleTracedSnapshots(t *testing.T) {
	src := rng.New(6)
	p := mustProgram(t, []memmodel.OpType{memmodel.Store, memmodel.Store, memmodel.Load})
	res, snaps, err := SettleTraced(p, memmodel.WO(), DefaultOptions(), src)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != p.Len() {
		t.Fatalf("got %d snapshots, want %d", len(snaps), p.Len())
	}
	for i, snap := range snaps {
		if snap.Round != i+1 {
			t.Errorf("snapshot %d round = %d", i, snap.Round)
		}
		if snap.EndPos > snap.StartPos {
			t.Errorf("round %d moved down: %d -> %d", snap.Round, snap.StartPos, snap.EndPos)
		}
		if len(snap.Order) != p.Len() {
			t.Errorf("round %d order length %d", snap.Round, len(snap.Order))
		}
	}
	// Final snapshot must agree with the result.
	last := snaps[len(snaps)-1]
	for pos, idx := range res.Order() {
		if last.Order[pos] != idx {
			t.Fatalf("final snapshot disagrees with result at position %d", pos)
		}
	}
}

func TestWindowGammaDefinition(t *testing.T) {
	// Deterministic WO program where swaps always succeed (s=1): with a
	// one-LD prefix, every instruction settles to the top in turn.
	sp, err := memmodel.NewSwapProbabilities(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := mustProgram(t, []memmodel.OpType{memmodel.Load})
	src := rng.New(7)
	res, err := Settle(p, memmodel.WO(), Options{SwapProbs: sp}, src)
	if err != nil {
		t.Fatal(err)
	}
	// Round 2: critical LD swaps past the prefix LD to position 0.
	// Round 3: critical ST swaps past the prefix LD, then blocks at the
	// critical LD: final order = [critLD, critST, LD]. γ = 0.
	if got := res.WindowGamma(); got != 0 {
		t.Errorf("γ = %d, want 0", got)
	}
	perm := res.Perm()
	if perm[1] != 0 || perm[2] != 1 || perm[0] != 2 {
		t.Errorf("perm = %v", perm)
	}
}

// theorem41WO is the closed form for Weak Ordering: Pr[B_0] = 2/3,
// Pr[B_γ] = 2^-γ/3 for γ > 0.
func theorem41WO(gamma int) float64 {
	if gamma == 0 {
		return 2.0 / 3.0
	}
	return math.Pow(2, -float64(gamma)) / 3
}

func TestExactWindowDistWOMatchesTheorem41(t *testing.T) {
	pmf, err := ExactWindowDist(memmodel.WO(), 14, 0.5, 0.5, 10)
	if err != nil {
		t.Fatal(err)
	}
	for gamma := 0; gamma <= 8; gamma++ {
		want := theorem41WO(gamma)
		got := pmf.At(gamma)
		// Finite-m truncation error is O(2^-m).
		if math.Abs(got-want) > 1e-3 {
			t.Errorf("WO Pr[B_%d] = %v, want %v", gamma, got, want)
		}
	}
}

func TestExactWindowDistSC(t *testing.T) {
	pmf, err := ExactWindowDist(memmodel.SC(), 10, 0.5, 0.5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := pmf.At(0); math.Abs(got-1) > 1e-12 {
		t.Errorf("SC Pr[B_0] = %v, want 1", got)
	}
	for gamma := 1; gamma <= 5; gamma++ {
		if got := pmf.At(gamma); got != 0 {
			t.Errorf("SC Pr[B_%d] = %v, want 0", gamma, got)
		}
	}
}

func TestExactWindowDistTSOMatchesTheorem41(t *testing.T) {
	// TSO: Pr[B_0] = 2/3; for γ > 0,
	// (6/7)·4^-γ ≤ Pr[B_γ] ≤ (6/7)·4^-γ + (2/21)·2^-γ.
	pmf, err := ExactWindowDist(memmodel.TSO(), 16, 0.5, 0.5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := pmf.At(0); math.Abs(got-2.0/3.0) > 1e-3 {
		t.Errorf("TSO Pr[B_0] = %v, want 2/3", got)
	}
	for gamma := 1; gamma <= 8; gamma++ {
		got := pmf.At(gamma)
		lower := (6.0 / 7.0) * math.Pow(4, -float64(gamma))
		upper := lower + (2.0/21.0)*math.Pow(2, -float64(gamma))
		if got < lower-1e-4 || got > upper+1e-4 {
			t.Errorf("TSO Pr[B_%d] = %v outside [%v, %v]", gamma, got, lower, upper)
		}
	}
}

func TestExactWindowDistPSOStoreChasesLoad(t *testing.T) {
	// In the settling model, the instructions the critical LD passes under
	// TSO/PSO are all STs, and PSO's ST→ST relaxation lets the critical ST
	// chase the critical LD upward through them. PSO windows are therefore
	// *smaller* than TSO's: Pr[B_0] is larger and every positive-γ mass is
	// no larger. (The paper's footnote 4 reports no PSO numbers; this is a
	// derived property of the model, recorded in EXPERIMENTS.md.)
	tso, err := ExactWindowDist(memmodel.TSO(), 14, 0.5, 0.5, 8)
	if err != nil {
		t.Fatal(err)
	}
	pso, err := ExactWindowDist(memmodel.PSO(), 14, 0.5, 0.5, 8)
	if err != nil {
		t.Fatal(err)
	}
	if pso.At(0) <= tso.At(0) {
		t.Errorf("Pr[B_0]: PSO %v should exceed TSO %v", pso.At(0), tso.At(0))
	}
	for gamma := 1; gamma <= 6; gamma++ {
		if pso.At(gamma) > tso.At(gamma)+1e-9 {
			t.Errorf("γ=%d: PSO %v > TSO %v", gamma, pso.At(gamma), tso.At(gamma))
		}
	}
	// WO's 2^-γ tail must overtake TSO's 4^-γ tail for moderate γ.
	wo, err := ExactWindowDist(memmodel.WO(), 14, 0.5, 0.5, 8)
	if err != nil {
		t.Fatal(err)
	}
	for gamma := 3; gamma <= 6; gamma++ {
		if wo.At(gamma) <= tso.At(gamma) {
			t.Errorf("γ=%d: WO tail %v should exceed TSO tail %v", gamma, wo.At(gamma), tso.At(gamma))
		}
	}
}

func TestExactWindowDistMass(t *testing.T) {
	for _, model := range memmodel.All() {
		pmf, err := ExactWindowDist(model, 12, 0.5, 0.5, 12)
		if err != nil {
			t.Fatal(err)
		}
		if total := pmf.Total(); math.Abs(total-1) > 1e-9 {
			t.Errorf("%s: tabulated mass %v, want ~1 (maxGamma=m)", model.Name(), total)
		}
	}
}

func TestExactWindowDistValidation(t *testing.T) {
	if _, err := ExactWindowDist(memmodel.Model{}, 5, 0.5, 0.5, 5); !errors.Is(err, ErrBadInput) {
		t.Error("zero model accepted")
	}
	if _, err := ExactWindowDist(memmodel.SC(), 50, 0.5, 0.5, 5); !errors.Is(err, ErrBadInput) {
		t.Error("huge m accepted")
	}
	if _, err := ExactWindowDist(memmodel.SC(), 5, 1.5, 0.5, 5); !errors.Is(err, ErrBadInput) {
		t.Error("bad pStore accepted")
	}
	if _, err := ExactWindowDist(memmodel.SC(), 5, 0.5, -1, 5); !errors.Is(err, ErrBadInput) {
		t.Error("bad s accepted")
	}
	if _, err := ExactWindowDist(memmodel.SC(), 5, 0.5, 0.5, -1); !errors.Is(err, ErrBadInput) {
		t.Error("negative maxGamma accepted")
	}
}

func TestSamplerMatchesExactDP(t *testing.T) {
	// Distributional cross-check: empirical window frequencies from the
	// sampler vs the exact DP, for every model, m=10.
	const m, trials = 10, 120000
	src := rng.New(8)
	for _, model := range memmodel.All() {
		pmf, err := ExactWindowDist(model, m, 0.5, 0.5, m)
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int, m+1)
		for trial := 0; trial < trials; trial++ {
			p, err := prog.Generate(prog.DefaultParams(m), src)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Settle(p, model, DefaultOptions(), src)
			if err != nil {
				t.Fatal(err)
			}
			counts[res.WindowGamma()]++
		}
		for gamma := 0; gamma <= 4; gamma++ {
			want := pmf.At(gamma)
			got := float64(counts[gamma]) / trials
			tol := 4*math.Sqrt(want*(1-want)/trials) + 1e-4
			if math.Abs(got-want) > tol {
				t.Errorf("%s: empirical Pr[B_%d] = %v, exact %v (tol %v)",
					model.Name(), gamma, got, want, tol)
			}
		}
	}
}

func TestExactContiguousStoreDistTSO(t *testing.T) {
	// Lemma 4.2: Pr[L_0] = 1/3 exactly, and Pr[L_µ] ≥ (4/7)·2^-µ for µ ≥ 1.
	pmf, err := ExactContiguousStoreDist(memmodel.TSO(), 16, 0.5, 0.5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := pmf.At(0); math.Abs(got-1.0/3.0) > 1e-3 {
		t.Errorf("Pr[L_0] = %v, want 1/3", got)
	}
	for mu := 1; mu <= 8; mu++ {
		lower := (4.0 / 7.0) * math.Pow(2, -float64(mu))
		if got := pmf.At(mu); got < lower-1e-4 {
			t.Errorf("Pr[L_%d] = %v below Lemma 4.2 bound %v", mu, got, lower)
		}
	}
}

func TestBottomStoreDensityClaim43(t *testing.T) {
	// Claim 4.3: under TSO with p = s = 1/2 the density converges to 2/3,
	// and the finite-i value is 2/3 + (1/4)^{i-1}·(1/2 − 2/3).
	densities, err := BottomStoreDensity(memmodel.TSO(), 12, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range densities {
		round := i + 1
		want := 2.0/3.0 + math.Pow(0.25, float64(round-1))*(0.5-2.0/3.0)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("round %d: density %v, want %v", round, got, want)
		}
	}
	final := densities[len(densities)-1]
	if math.Abs(final-2.0/3.0) > 1e-6 {
		t.Errorf("limit density %v, want 2/3", final)
	}
}

func TestBottomStoreDensitySC(t *testing.T) {
	// Under SC nothing moves, so the bottom instruction is ST with
	// probability exactly p in every round.
	densities, err := BottomStoreDensity(memmodel.SC(), 8, 0.3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range densities {
		if math.Abs(got-0.3) > 1e-12 {
			t.Errorf("round %d: density %v, want 0.3", i+1, got)
		}
	}
}

func TestSettleWithFences(t *testing.T) {
	// A full fence directly above the critical pair prevents any window
	// growth even under WO: the critical LD cannot settle past it.
	src := rng.New(9)
	p, err := prog.FromTypes([]memmodel.OpType{
		memmodel.Store, memmodel.Store, memmodel.FenceFull,
	})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 200; trial++ {
		res, err := Settle(p, memmodel.WO(), DefaultOptions(), src)
		if err != nil {
			t.Fatal(err)
		}
		if got := res.WindowGamma(); got != 0 {
			t.Fatalf("fenced WO window γ = %d, want 0", got)
		}
	}
}

func TestSettleAcquireBlocksReleaseAllows(t *testing.T) {
	// With s=1 under WO: a release fence lets the critical LD pass, an
	// acquire fence does not.
	sp, err := memmodel.NewSwapProbabilities(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(10)

	rel, err := prog.FromTypes([]memmodel.OpType{memmodel.FenceRelease})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Settle(rel, memmodel.WO(), Options{SwapProbs: sp}, src)
	if err != nil {
		t.Fatal(err)
	}
	if pos := res.Perm()[rel.CriticalLoadIndex()]; pos != 0 {
		t.Errorf("critical LD did not pass release fence: pos %d", pos)
	}

	acq, err := prog.FromTypes([]memmodel.OpType{memmodel.FenceAcquire})
	if err != nil {
		t.Fatal(err)
	}
	res, err = Settle(acq, memmodel.WO(), Options{SwapProbs: sp}, src)
	if err != nil {
		t.Fatal(err)
	}
	if pos := res.Perm()[acq.CriticalLoadIndex()]; pos != 1 {
		t.Errorf("critical LD passed acquire fence: pos %d", pos)
	}
}

func BenchmarkSettleTSO64(b *testing.B) {
	src := rng.New(1)
	p, err := prog.Generate(prog.DefaultParams(64), src)
	if err != nil {
		b.Fatal(err)
	}
	opts := DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Settle(p, memmodel.TSO(), opts, src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactWindowDistTSO14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ExactWindowDist(memmodel.TSO(), 14, 0.5, 0.5, 10); err != nil {
			b.Fatal(err)
		}
	}
}
