// Package settle implements the paper's settling process (§3.1.2, Appendix
// A.2): the probabilistic instruction-reordering model that distinguishes
// the memory consistency models.
//
// Given an initial program order S0 of m+2 instructions, the process runs
// m+2 rounds. In round r, instruction x_r repeatedly swaps with the
// instruction directly before it: the swap automatically fails if the two
// instructions access the same location (footnote 2 — in particular the
// critical store never passes the critical load) or if the memory model
// forbids reordering that ordered pair of types; otherwise it succeeds with
// probability ρ(τ_prev, τ_moving) (the paper's s, by default 1/2 for every
// permitted pair). When a swap fails the round ends.
//
// The package provides two independent realizations of the process:
//
//   - Settle: a sampler producing one random final permutation, and
//   - ExactWindowDist / ExactContiguousStoreDist / BottomStoreDensity:
//     exact finite-m distributions computed by dynamic programming over
//     type strings, used to validate both the sampler and the paper's
//     closed forms (Theorem 4.1, Lemma 4.2, Claim 4.3).
package settle

import (
	"errors"
	"fmt"

	"memreliability/internal/dist"
	"memreliability/internal/memmodel"
	"memreliability/internal/prog"
	"memreliability/internal/rng"
)

// ErrBadInput reports invalid settling inputs.
var ErrBadInput = errors.New("settle: bad input")

// Options configures the settling sampler.
type Options struct {
	// SwapProbs gives ρ(τ_prev, τ_moving) for permitted pairs. The zero
	// value is invalid; use memmodel.Uniform(0.5) for the paper's normal
	// form.
	SwapProbs memmodel.SwapProbabilities
}

// DefaultOptions returns the paper's normal form: every permitted swap
// succeeds with probability 1/2.
func DefaultOptions() Options {
	sp, err := memmodel.Uniform(0.5)
	if err != nil {
		panic(err) // unreachable: 0.5 is always valid
	}
	return Options{SwapProbs: sp}
}

// Result is the outcome of settling one program.
type Result struct {
	program *prog.Program
	// order[pos] = original index of the instruction at final position pos.
	order []int
	// perm[origIndex] = final position (the paper's π).
	perm []int
}

// Program returns the settled program.
func (r *Result) Program() *prog.Program { return r.program }

// Perm returns the permutation π mapping original (0-based) positions to
// final positions. The returned slice is a copy.
func (r *Result) Perm() []int {
	out := make([]int, len(r.perm))
	copy(out, r.perm)
	return out
}

// Order returns, for each final position, the original index of the
// instruction there. The returned slice is a copy.
func (r *Result) Order() []int {
	out := make([]int, len(r.order))
	copy(out, r.order)
	return out
}

// WindowGamma returns γ: the number of instructions strictly between the
// critical load and critical store in the final order (the event B_γ).
func (r *Result) WindowGamma() int {
	cl := r.perm[r.program.CriticalLoadIndex()]
	cs := r.perm[r.program.CriticalStoreIndex()]
	return cs - cl - 1
}

// SegmentLength returns Γ = γ+2, the critical-window segment length fed to
// the shift process (§6: E[2^-Γ] = Σ_k≥2 2^-k · Pr[B_{k-2}]).
func (r *Result) SegmentLength() int { return r.WindowGamma() + 2 }

// WindowBounds returns the final positions of the critical load and store.
func (r *Result) WindowBounds() (loadPos, storePos int) {
	return r.perm[r.program.CriticalLoadIndex()], r.perm[r.program.CriticalStoreIndex()]
}

// Snapshot records the state after one settling round, for visualization
// (Figure 1) and debugging.
type Snapshot struct {
	// Round is the 1-based round number (the instruction settled).
	Round int
	// StartPos and EndPos are the 0-based positions the round's
	// instruction occupied before and after settling.
	StartPos, EndPos int
	// Order is the full order after the round: Order[pos] = original index.
	Order []int
}

// Settle runs the settling process on the program and returns the final
// permutation.
func Settle(p *prog.Program, model memmodel.Model, opts Options, src *rng.Source) (*Result, error) {
	return settle(p, model, opts, src, nil)
}

// SettleTraced is Settle plus a per-round trace of the evolving order.
func SettleTraced(p *prog.Program, model memmodel.Model, opts Options, src *rng.Source) (*Result, []Snapshot, error) {
	snaps := make([]Snapshot, 0, p.Len())
	res, err := settle(p, model, opts, src, &snaps)
	if err != nil {
		return nil, nil, err
	}
	return res, snaps, nil
}

func settle(p *prog.Program, model memmodel.Model, opts Options, src *rng.Source, snaps *[]Snapshot) (*Result, error) {
	if p == nil {
		return nil, fmt.Errorf("%w: nil program", ErrBadInput)
	}
	if src == nil {
		return nil, fmt.Errorf("%w: nil rng source", ErrBadInput)
	}
	if model.Name() == "" {
		return nil, fmt.Errorf("%w: zero-value model", ErrBadInput)
	}
	n := p.Len()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Round r settles instruction x_r (original index r-1). Earlier rounds
	// permute only x_1..x_{r-1}, so x_r still sits at position r-1.
	for r := 1; r <= n; r++ {
		pos := r - 1
		moving := p.At(order[pos])
		for pos > 0 {
			prev := p.At(order[pos-1])
			if !swapAllowed(prev, moving, model) {
				break
			}
			if !src.Bool(opts.SwapProbs.For(prev.Type, moving.Type)) {
				break
			}
			order[pos], order[pos-1] = order[pos-1], order[pos]
			pos--
		}
		if snaps != nil {
			snapOrder := make([]int, n)
			copy(snapOrder, order)
			*snaps = append(*snaps, Snapshot{
				Round:    r,
				StartPos: r - 1,
				EndPos:   pos,
				Order:    snapOrder,
			})
		}
	}
	perm := make([]int, n)
	for pos, idx := range order {
		perm[idx] = pos
	}
	return &Result{program: p, order: order, perm: perm}, nil
}

// swapAllowed reports whether the moving instruction may attempt to swap
// past prev: same-location memory operations never reorder (footnote 2),
// and otherwise the memory model's matrix (with fence semantics) decides.
func swapAllowed(prev, moving prog.Instruction, model memmodel.Model) bool {
	if prev.Type.IsMemOp() && moving.Type.IsMemOp() && prev.Loc == moving.Loc {
		return false
	}
	return model.Relaxed(prev.Type, moving.Type)
}

// maxExactPrefix bounds the exact-DP prefix length; the state space is
// 2^m type strings.
const maxExactPrefix = 18

// ExactWindowDist returns the exact distribution of the critical-window
// growth γ for a random program with prefix length m and store probability
// pStore, settled under the given model with uniform swap probability s.
// The returned PMF tabulates Pr[B_γ] for γ ∈ [0, maxGamma]; any remaining
// probability is tail mass.
//
// This is a finite-m ground truth for Theorem 4.1 (whose closed forms take
// m → ∞); the finite-size discrepancy decays geometrically in m.
func ExactWindowDist(model memmodel.Model, m int, pStore, s float64, maxGamma int) (*dist.PMF, error) {
	if err := validateExactArgs(model, m, pStore, s); err != nil {
		return nil, err
	}
	if maxGamma < 0 {
		return nil, fmt.Errorf("%w: maxGamma=%d", ErrBadInput, maxGamma)
	}
	strings, err := prefixStringDist(model, m, pStore, s)
	if err != nil {
		return nil, err
	}
	mass := make([]float64, maxGamma+1)
	for mask, w := range strings {
		if w == 0 {
			continue
		}
		accumWindow(model, uint64(mask), m, s, w, mass)
	}
	return dist.NewPMF(mass)
}

// typeAt reports the type at position j of a mask-encoded string
// (bit set = ST).
func typeAt(mask uint64, j int) memmodel.OpType {
	if mask&(1<<uint(j)) != 0 {
		return memmodel.Store
	}
	return memmodel.Load
}

// prefixStringDist computes the exact distribution over type strings of the
// settled prefix after rounds 1..m (the order S_m restricted to the prefix,
// which rounds m+1 and m+2 take as input). The distribution is dense:
// entry mask holds the weight of the length-m type string mask. A dense
// slice (rather than a map) keeps the floating-point accumulation order
// deterministic, so exact-DP results are bit-identical across runs.
func prefixStringDist(model memmodel.Model, m int, pStore, s float64) ([]float64, error) {
	cur := []float64{1} // the single empty string
	for i := 0; i < m; i++ {
		cur = stepStringDist(model, cur, i, pStore, s)
	}
	return cur, nil
}

// stepStringDist performs settling round i+1 on a distribution over
// length-i type strings: the new instruction (ST with probability pStore)
// enters at position i (the bottom of the current string) and settles
// upward; stopping after passing a instructions leaves it at position i-a.
func stepStringDist(model memmodel.Model, cur []float64, i int, pStore, s float64) []float64 {
	next := make([]float64, 2*len(cur))
	for maskInt, w := range cur {
		if w == 0 {
			continue
		}
		mask := uint64(maskInt)
		for _, tc := range []struct {
			typ  memmodel.OpType
			prob float64
		}{
			{memmodel.Store, pStore},
			{memmodel.Load, 1 - pStore},
		} {
			if tc.prob == 0 {
				continue
			}
			remaining := w * tc.prob
			for a := 0; a <= i; a++ {
				var stop float64
				if a == i {
					stop = remaining // reached the top
				} else {
					prevType := typeAt(mask, i-1-a)
					if !model.Relaxed(prevType, tc.typ) {
						stop = remaining
					} else {
						stop = remaining * (1 - s)
					}
				}
				if stop > 0 {
					next[insertAt(mask, i, i-a, tc.typ)] += stop
				}
				remaining -= stop
				if remaining <= 0 {
					break
				}
			}
		}
	}
	return next
}

// insertAt returns the mask of length length+1 formed by inserting typ at
// position k of the length-length string mask (positions ≥ k shift up).
func insertAt(mask uint64, length, k int, typ memmodel.OpType) uint64 {
	low := mask & ((1 << uint(k)) - 1)
	high := mask >> uint(k) << uint(k+1)
	out := low | high
	if typ == memmodel.Store {
		out |= 1 << uint(k)
	}
	return out
}

// accumWindow adds, for the settled prefix string mask (length m, weight
// w), the joint outcome of rounds m+1 (critical LD) and m+2 (critical ST)
// to the window-size mass table.
//
// The critical LD starts directly below the string and passes a
// instructions; the instructions it passed keep their relative order below
// it, so the critical ST then passes b ≤ a of them from the bottom and
// stops automatically when it reaches the critical LD (same address).
// γ = a − b.
func accumWindow(model memmodel.Model, mask uint64, m int, s float64, w float64, mass []float64) {
	remainingLD := w
	for a := 0; a <= m; a++ {
		var stopLD float64
		if a == m {
			stopLD = remainingLD
		} else {
			prevType := typeAt(mask, m-1-a)
			if !model.Relaxed(prevType, memmodel.Load) {
				stopLD = remainingLD
			} else {
				stopLD = remainingLD * (1 - s)
			}
		}
		if stopLD > 0 {
			// Critical ST passes b of the a instructions below the LD;
			// from the bottom those are t[m-1], t[m-2], ..., t[m-a].
			remainingST := stopLD
			for b := 0; b <= a; b++ {
				var stopST float64
				if b == a {
					stopST = remainingST // blocked by the critical LD
				} else {
					prevType := typeAt(mask, m-1-b)
					if !model.Relaxed(prevType, memmodel.Store) {
						stopST = remainingST
					} else {
						stopST = remainingST * (1 - s)
					}
				}
				if stopST > 0 {
					gamma := a - b
					if gamma < len(mass) {
						mass[gamma] += stopST
					}
				}
				remainingST -= stopST
				if remainingST <= 0 {
					break
				}
			}
		}
		remainingLD -= stopLD
		if remainingLD <= 0 {
			break
		}
	}
}

// ExactContiguousStoreDist returns the exact distribution of L_µ — the
// number of contiguous STs immediately above the critical LD in S_m (the
// order just before the critical load settles) — tabulated for
// µ ∈ [0, maxMu]. This is the quantity Lemma 4.2 bounds:
// Pr[L_0] = 1/3 and Pr[L_µ] ≥ (4/7)·2^-µ under TSO.
func ExactContiguousStoreDist(model memmodel.Model, m int, pStore, s float64, maxMu int) (*dist.PMF, error) {
	if err := validateExactArgs(model, m, pStore, s); err != nil {
		return nil, err
	}
	if maxMu < 0 {
		return nil, fmt.Errorf("%w: maxMu=%d", ErrBadInput, maxMu)
	}
	strings, err := prefixStringDist(model, m, pStore, s)
	if err != nil {
		return nil, err
	}
	mass := make([]float64, maxMu+1)
	for mask, w := range strings {
		if w == 0 {
			continue
		}
		mu := 0
		for j := m - 1; j >= 0 && typeAt(uint64(mask), j) == memmodel.Store; j-- {
			mu++
		}
		if mu < len(mass) {
			mass[mu] += w
		}
	}
	return dist.NewPMF(mass)
}

// BottomStoreDensity returns, for each round i ∈ [1, m], the exact
// probability that position i (1-based; the bottom of the settled prefix)
// holds a ST after round i — the quantity of Claim 4.3, which converges to
// 2/3 under TSO with p = s = 1/2.
func BottomStoreDensity(model memmodel.Model, m int, pStore, s float64) ([]float64, error) {
	if err := validateExactArgs(model, m, pStore, s); err != nil {
		return nil, err
	}
	out := make([]float64, 0, m)
	cur := []float64{1}
	for i := 0; i < m; i++ {
		cur = stepStringDist(model, cur, i, pStore, s)
		density := 0.0
		for mask, w := range cur {
			if typeAt(uint64(mask), i) == memmodel.Store {
				density += w
			}
		}
		out = append(out, density)
	}
	return out, nil
}

func validateExactArgs(model memmodel.Model, m int, pStore, s float64) error {
	if model.Name() == "" {
		return fmt.Errorf("%w: zero-value model", ErrBadInput)
	}
	if m < 0 || m > maxExactPrefix {
		return fmt.Errorf("%w: prefix length %d (need 0 ≤ m ≤ %d)", ErrBadInput, m, maxExactPrefix)
	}
	if pStore < 0 || pStore > 1 {
		return fmt.Errorf("%w: store probability %v", ErrBadInput, pStore)
	}
	if s < 0 || s > 1 {
		return fmt.Errorf("%w: swap probability %v", ErrBadInput, s)
	}
	return nil
}
