package trace

import (
	"errors"
	"testing"
	"testing/quick"

	"memreliability/internal/machine"
	"memreliability/internal/memmodel"
	"memreliability/internal/rng"
)

func TestVectorClockBasics(t *testing.T) {
	var a VectorClock = VectorClock{}
	a.Tick(0)
	a.Tick(0)
	a.Tick(1)
	if a.Get(0) != 2 || a.Get(1) != 1 || a.Get(7) != 0 {
		t.Errorf("clock = %v", a)
	}
	b := a.Copy()
	b.Tick(0)
	if a.Get(0) != 2 {
		t.Error("Copy aliases")
	}
	if !a.LessOrEqual(b) || b.LessOrEqual(a) {
		t.Error("LessOrEqual wrong")
	}
	c := VectorClock{2: 5}
	if !Concurrent(a, c) {
		t.Error("disjoint clocks should be concurrent")
	}
	a.Join(c)
	if a.Get(2) != 5 || a.Get(0) != 2 {
		t.Errorf("Join wrong: %v", a)
	}
}

func TestVectorClockPartialOrderLaws(t *testing.T) {
	src := rng.New(1)
	randVC := func() VectorClock {
		vc := VectorClock{}
		for i := 0; i < 3; i++ {
			vc[i] = uint64(src.Intn(4))
		}
		return vc
	}
	f := func(seed uint32) bool {
		a, b, c := randVC(), randVC(), randVC()
		// Reflexivity.
		if !a.LessOrEqual(a) {
			return false
		}
		// Transitivity.
		if a.LessOrEqual(b) && b.LessOrEqual(c) && !a.LessOrEqual(c) {
			return false
		}
		// Join is an upper bound.
		j := a.Copy()
		j.Join(b)
		return a.LessOrEqual(j) && b.LessOrEqual(j)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDetectorFindsWriteWriteRace(t *testing.T) {
	races, err := Analyze([]Event{
		{Thread: 0, Kind: Write, Addr: "x"},
		{Thread: 1, Kind: Write, Addr: "x"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(races) != 1 {
		t.Fatalf("races = %v", races)
	}
	r := races[0]
	if r.Addr != "x" || r.First != 0 || r.Second != 1 {
		t.Errorf("race = %+v", r)
	}
}

func TestDetectorFindsReadWriteRaces(t *testing.T) {
	races, err := Analyze([]Event{
		{Thread: 0, Kind: Read, Addr: "x"},
		{Thread: 1, Kind: Write, Addr: "x"},
		{Thread: 0, Kind: Read, Addr: "x"}, // racing read after unsynced write
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(races) != 2 {
		t.Fatalf("expected read-write and write-read races, got %v", races)
	}
}

func TestDetectorNoRaceSameThread(t *testing.T) {
	races, err := Analyze([]Event{
		{Thread: 0, Kind: Write, Addr: "x"},
		{Thread: 0, Kind: Read, Addr: "x"},
		{Thread: 0, Kind: Write, Addr: "x"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(races) != 0 {
		t.Errorf("same-thread accesses raced: %v", races)
	}
}

func TestDetectorNoRaceDistinctAddrs(t *testing.T) {
	races, err := Analyze([]Event{
		{Thread: 0, Kind: Write, Addr: "x"},
		{Thread: 1, Kind: Write, Addr: "y"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(races) != 0 {
		t.Errorf("distinct addresses raced: %v", races)
	}
}

func TestAtomicsDoNotRaceWithEachOther(t *testing.T) {
	races, err := Analyze([]Event{
		{Thread: 0, Kind: AtomicRMW, Addr: "x"},
		{Thread: 1, Kind: AtomicRMW, Addr: "x"},
		{Thread: 0, Kind: AtomicRMW, Addr: "x"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(races) != 0 {
		t.Errorf("atomics raced: %v", races)
	}
}

func TestAtomicSynchronizesPlainAccesses(t *testing.T) {
	// T0 writes x, then RMWs on lock; T1 RMWs on lock (acquiring T0's
	// clock), then writes x: no race, the atomic chain orders the writes.
	races, err := Analyze([]Event{
		{Thread: 0, Kind: Write, Addr: "x"},
		{Thread: 0, Kind: AtomicRMW, Addr: "lock"},
		{Thread: 1, Kind: AtomicRMW, Addr: "lock"},
		{Thread: 1, Kind: Write, Addr: "x"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(races) != 0 {
		t.Errorf("synchronized writes raced: %v", races)
	}
}

func TestWithoutSynchronizationSameShapeRaces(t *testing.T) {
	// Identical shape but without the atomic chain: must race.
	races, err := Analyze([]Event{
		{Thread: 0, Kind: Write, Addr: "x"},
		{Thread: 1, Kind: Write, Addr: "x"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(races) == 0 {
		t.Error("unsynchronized writes did not race")
	}
}

func TestMixedAtomicPlainRaces(t *testing.T) {
	races, err := Analyze([]Event{
		{Thread: 0, Kind: Write, Addr: "x"},
		{Thread: 1, Kind: AtomicRMW, Addr: "x"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(races) != 1 {
		t.Errorf("mixed access did not race: %v", races)
	}
}

func TestObserveValidation(t *testing.T) {
	d := NewDetector()
	if err := d.Observe(Event{Thread: -1, Kind: Read, Addr: "x"}); !errors.Is(err, ErrBadTrace) {
		t.Error("negative thread accepted")
	}
	if err := d.Observe(Event{Thread: 0, Kind: Read, Addr: ""}); !errors.Is(err, ErrBadTrace) {
		t.Error("empty addr accepted")
	}
	if err := d.Observe(Event{Thread: 0, Kind: EventKind(9), Addr: "x"}); !errors.Is(err, ErrBadTrace) {
		t.Error("unknown kind accepted")
	}
}

func TestEventKindString(t *testing.T) {
	if Read.String() != "R" || Write.String() != "W" || AtomicRMW.String() != "RMW" {
		t.Error("kind strings wrong")
	}
	if EventKind(9).String() != "EventKind(9)" {
		t.Error("unknown kind string wrong")
	}
}

func TestRaceString(t *testing.T) {
	r := Race{Addr: "x", First: 1, Second: 3, FirstKind: Write, SecondKind: Read}
	if got := r.String(); got != "race on x: event 1 (W) vs event 3 (R)" {
		t.Errorf("String = %q", got)
	}
}

// incrementRaceProgram is the §2.2 bug as a machine program.
func incrementRaceProgram() machine.Program {
	thread := func() machine.Thread {
		return machine.Thread{Ops: []machine.Op{
			machine.LoadOp{Addr: "x", Dst: "r"},
			machine.AddOp{Dst: "r", A: machine.Reg("r"), B: machine.Imm(1)},
			machine.StoreOp{Addr: "x", Src: machine.Reg("r")},
		}}
	}
	return machine.Program{Threads: []machine.Thread{thread(), thread()}, Init: map[string]int{"x": 0}}
}

func TestIncrementRaceIsDetected(t *testing.T) {
	// Every execution of the canonical bug contains a data race, in every
	// model — races are a property of the program, not of the particular
	// interleaving observed (§2.2: they can manifest even under SC).
	src := rng.New(7)
	p := incrementRaceProgram()
	for _, model := range memmodel.All() {
		sim, err := machine.NewSim(p, model)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 50; trial++ {
			_, seq, err := sim.RunRandom(src)
			if err != nil {
				t.Fatal(err)
			}
			events, err := EventsFromRun(p, seq)
			if err != nil {
				t.Fatal(err)
			}
			races, err := Analyze(events)
			if err != nil {
				t.Fatal(err)
			}
			if len(races) == 0 {
				t.Fatalf("%s: no race detected in increment-race run", model.Name())
			}
			for _, r := range races {
				if r.Addr != "x" {
					t.Errorf("%s: race on unexpected address %s", model.Name(), r.Addr)
				}
			}
		}
	}
}

func TestFixedProgramIsRaceFree(t *testing.T) {
	fixed := machine.Program{
		Threads: []machine.Thread{
			{Ops: []machine.Op{machine.RMWAddOp{Addr: "x", Dst: "r", Delta: 1}}},
			{Ops: []machine.Op{machine.RMWAddOp{Addr: "x", Dst: "r", Delta: 1}}},
		},
		Init: map[string]int{"x": 0},
	}
	src := rng.New(8)
	sim, err := machine.NewSim(fixed, memmodel.WO())
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 100; trial++ {
		_, seq, err := sim.RunRandom(src)
		if err != nil {
			t.Fatal(err)
		}
		events, err := EventsFromRun(fixed, seq)
		if err != nil {
			t.Fatal(err)
		}
		races, err := Analyze(events)
		if err != nil {
			t.Fatal(err)
		}
		if len(races) != 0 {
			t.Fatalf("atomic-only program raced: %v", races)
		}
	}
}

func TestEventsFromRunValidation(t *testing.T) {
	p := incrementRaceProgram()
	if _, err := EventsFromRun(p, []machine.Action{{Thread: 9, Op: 0}}); !errors.Is(err, ErrBadTrace) {
		t.Error("bad thread accepted")
	}
	if _, err := EventsFromRun(p, []machine.Action{{Thread: 0, Op: 9}}); !errors.Is(err, ErrBadTrace) {
		t.Error("bad op accepted")
	}
	events, err := EventsFromRun(p, []machine.Action{{Thread: 0, Op: 0}, {Thread: 0, Op: 1}})
	if err != nil {
		t.Fatal(err)
	}
	// ALU op emits no event.
	if len(events) != 1 || events[0].Kind != Read {
		t.Errorf("events = %v", events)
	}
}
