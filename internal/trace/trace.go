// Package trace provides vector clocks, happens-before tracking, and a
// dynamic data-race detector over execution traces (a FastTrack-style
// analysis restricted to the machine package's operations: plain loads and
// stores race, atomic read-modify-writes synchronize).
//
// The detector gives the operational counterpart of the paper's notion of
// bug manifestation: the §2.2 increment race is a data race exactly
// because its plain critical load and store are unordered by
// happens-before across threads.
package trace

import (
	"errors"
	"fmt"
)

// ErrBadTrace reports a malformed event or trace.
var ErrBadTrace = errors.New("trace: bad trace")

// VectorClock maps thread indices to logical clocks. The zero value (nil)
// is a valid all-zeros clock.
type VectorClock map[int]uint64

// Copy returns an independent copy.
func (vc VectorClock) Copy() VectorClock {
	out := make(VectorClock, len(vc))
	for t, c := range vc {
		out[t] = c
	}
	return out
}

// Get returns the clock component for thread t (0 if absent).
func (vc VectorClock) Get(t int) uint64 { return vc[t] }

// Tick increments thread t's component.
func (vc VectorClock) Tick(t int) { vc[t]++ }

// Join sets vc to the pointwise maximum of vc and other.
func (vc VectorClock) Join(other VectorClock) {
	for t, c := range other {
		if c > vc[t] {
			vc[t] = c
		}
	}
}

// LessOrEqual reports whether vc ≤ other pointwise (vc happens-before or
// equals other).
func (vc VectorClock) LessOrEqual(other VectorClock) bool {
	for t, c := range vc {
		if c > other[t] {
			return false
		}
	}
	return true
}

// Concurrent reports whether neither clock precedes the other.
func Concurrent(a, b VectorClock) bool {
	return !a.LessOrEqual(b) && !b.LessOrEqual(a)
}

// EventKind classifies trace events.
type EventKind int

// Event kinds.
const (
	// Read is a plain (non-atomic) load.
	Read EventKind = iota + 1
	// Write is a plain (non-atomic) store.
	Write
	// AtomicRMW is an atomic read-modify-write; it synchronizes
	// (acquire+release) on its address and never races with other atomics.
	AtomicRMW
)

// String returns the kind mnemonic.
func (k EventKind) String() string {
	switch k {
	case Read:
		return "R"
	case Write:
		return "W"
	case AtomicRMW:
		return "RMW"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one memory access in an execution trace, in global commit
// order.
type Event struct {
	// Thread is the acting thread index (≥ 0).
	Thread int
	// Kind is the access kind.
	Kind EventKind
	// Addr is the memory address accessed.
	Addr string
}

// Race describes one detected data race: two concurrent conflicting plain
// accesses (or a plain access concurrent with an atomic to the same
// address).
type Race struct {
	Addr string
	// First and Second are the trace indices of the racing events.
	First, Second int
	// Kinds of the two events.
	FirstKind, SecondKind EventKind
}

// String renders the race.
func (r Race) String() string {
	return fmt.Sprintf("race on %s: event %d (%s) vs event %d (%s)",
		r.Addr, r.First, r.FirstKind, r.Second, r.SecondKind)
}

// varState tracks per-address access history for the detector.
type varState struct {
	// lastWrite is the VC of the writing thread at its last plain write,
	// plus the event index and thread.
	lastWriteVC  VectorClock
	lastWriteIdx int
	hasWrite     bool
	// reads holds, per thread, the VC at that thread's last plain read.
	readVCs  map[int]VectorClock
	readIdxs map[int]int
	// syncVC is the release clock transferred through atomics on this
	// address.
	syncVC VectorClock
	// lastAtomicIdx tracks the most recent atomic event (for mixed-access
	// race reporting).
	lastAtomicVC  VectorClock
	lastAtomicIdx int
	hasAtomic     bool
}

// Detector is an online happens-before race detector.
type Detector struct {
	clocks map[int]VectorClock
	vars   map[string]*varState
	races  []Race
	next   int
}

// NewDetector returns an empty detector.
func NewDetector() *Detector {
	return &Detector{
		clocks: make(map[int]VectorClock),
		vars:   make(map[string]*varState),
	}
}

// threadClock returns (creating if needed) thread t's clock.
func (d *Detector) threadClock(t int) VectorClock {
	vc, ok := d.clocks[t]
	if !ok {
		vc = VectorClock{t: 1}
		d.clocks[t] = vc
	}
	return vc
}

func (d *Detector) varState(addr string) *varState {
	vs, ok := d.vars[addr]
	if !ok {
		vs = &varState{
			readVCs:  make(map[int]VectorClock),
			readIdxs: make(map[int]int),
		}
		d.vars[addr] = vs
	}
	return vs
}

// Observe feeds the next event (in global commit order) to the detector.
// Any races it completes are appended to Races.
func (d *Detector) Observe(e Event) error {
	if e.Thread < 0 {
		return fmt.Errorf("%w: negative thread %d", ErrBadTrace, e.Thread)
	}
	if e.Addr == "" {
		return fmt.Errorf("%w: empty address", ErrBadTrace)
	}
	idx := d.next
	d.next++
	vc := d.threadClock(e.Thread)
	vs := d.varState(e.Addr)

	switch e.Kind {
	case Read:
		// Race iff some plain write (or atomic) is concurrent.
		if vs.hasWrite && !vs.lastWriteVC.LessOrEqual(vc) {
			d.races = append(d.races, Race{
				Addr: e.Addr, First: vs.lastWriteIdx, Second: idx,
				FirstKind: Write, SecondKind: Read,
			})
		}
		if vs.hasAtomic && !vs.lastAtomicVC.LessOrEqual(vc) {
			d.races = append(d.races, Race{
				Addr: e.Addr, First: vs.lastAtomicIdx, Second: idx,
				FirstKind: AtomicRMW, SecondKind: Read,
			})
		}
		vs.readVCs[e.Thread] = vc.Copy()
		vs.readIdxs[e.Thread] = idx
	case Write:
		if vs.hasWrite && !vs.lastWriteVC.LessOrEqual(vc) {
			d.races = append(d.races, Race{
				Addr: e.Addr, First: vs.lastWriteIdx, Second: idx,
				FirstKind: Write, SecondKind: Write,
			})
		}
		for t, rvc := range vs.readVCs {
			if t == e.Thread {
				continue
			}
			if !rvc.LessOrEqual(vc) {
				d.races = append(d.races, Race{
					Addr: e.Addr, First: vs.readIdxs[t], Second: idx,
					FirstKind: Read, SecondKind: Write,
				})
			}
		}
		if vs.hasAtomic && !vs.lastAtomicVC.LessOrEqual(vc) {
			d.races = append(d.races, Race{
				Addr: e.Addr, First: vs.lastAtomicIdx, Second: idx,
				FirstKind: AtomicRMW, SecondKind: Write,
			})
		}
		vs.lastWriteVC = vc.Copy()
		vs.lastWriteIdx = idx
		vs.hasWrite = true
	case AtomicRMW:
		// Atomics race with concurrent plain accesses...
		if vs.hasWrite && !vs.lastWriteVC.LessOrEqual(vc) {
			d.races = append(d.races, Race{
				Addr: e.Addr, First: vs.lastWriteIdx, Second: idx,
				FirstKind: Write, SecondKind: AtomicRMW,
			})
		}
		for t, rvc := range vs.readVCs {
			if t == e.Thread {
				continue
			}
			if !rvc.LessOrEqual(vc) {
				d.races = append(d.races, Race{
					Addr: e.Addr, First: vs.readIdxs[t], Second: idx,
					FirstKind: Read, SecondKind: AtomicRMW,
				})
			}
		}
		// ...but synchronize with other atomics: acquire the address's
		// release clock, then publish.
		vc.Join(vs.syncVC)
		if vs.syncVC == nil {
			vs.syncVC = VectorClock{}
		}
		vs.syncVC.Join(vc)
		vs.lastAtomicVC = vc.Copy()
		vs.lastAtomicIdx = idx
		vs.hasAtomic = true
	default:
		return fmt.Errorf("%w: unknown event kind %v", ErrBadTrace, e.Kind)
	}
	vc.Tick(e.Thread)
	return nil
}

// Races returns the races detected so far.
func (d *Detector) Races() []Race {
	out := make([]Race, len(d.races))
	copy(out, d.races)
	return out
}

// Analyze runs a fresh detector over a complete trace.
func Analyze(events []Event) ([]Race, error) {
	d := NewDetector()
	for i, e := range events {
		if err := d.Observe(e); err != nil {
			return nil, fmt.Errorf("trace: event %d: %w", i, err)
		}
	}
	return d.Races(), nil
}
