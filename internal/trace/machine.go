// machine.go converts a machine-simulator run into a trace the race
// detector can analyze.
package trace

import (
	"fmt"

	"memreliability/internal/machine"
)

// EventsFromRun converts the committed action sequence of a machine run
// (machine.Sim.RunRandom's second return value) into memory-access events
// in global commit order. Non-memory operations (ALU ops, fences) emit no
// event.
func EventsFromRun(p machine.Program, seq []machine.Action) ([]Event, error) {
	events := make([]Event, 0, len(seq))
	for i, a := range seq {
		if a.Thread < 0 || a.Thread >= len(p.Threads) {
			return nil, fmt.Errorf("%w: action %d thread %d out of range", ErrBadTrace, i, a.Thread)
		}
		ops := p.Threads[a.Thread].Ops
		if a.Op < 0 || a.Op >= len(ops) {
			return nil, fmt.Errorf("%w: action %d op %d out of range", ErrBadTrace, i, a.Op)
		}
		switch op := ops[a.Op].(type) {
		case machine.LoadOp:
			events = append(events, Event{Thread: a.Thread, Kind: Read, Addr: op.Addr})
		case machine.StoreOp:
			events = append(events, Event{Thread: a.Thread, Kind: Write, Addr: op.Addr})
		case machine.RMWAddOp:
			events = append(events, Event{Thread: a.Thread, Kind: AtomicRMW, Addr: op.Addr})
		}
	}
	return events, nil
}
