package store

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("absent"); ok {
		t.Fatal("Get on empty store reported a hit")
	}
	payload := []byte(`{"estimate":0.25}` + "\n")
	if err := s.Put("estimate:{...}", payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("estimate:{...}")
	if !ok {
		t.Fatal("Get missed a stored key")
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch: got %q want %q", got, payload)
	}
	if _, ok := s.Get("estimate:{other}"); ok {
		t.Fatal("different key hit the same record")
	}
	if n, err := s.Len(); err != nil || n != 1 {
		t.Fatalf("Len = %d, %v; want 1, nil", n, err)
	}
}

func TestPutReplaces(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("k")
	if !ok || string(got) != "v2" {
		t.Fatalf("Get = %q, %v; want v2, true", got, ok)
	}
}

// TestCorruptRecordIsSkippedAndReplaced is the robustness satellite: a
// truncated or corrupted record file must read as a miss (recompute,
// never crash), and the next Put must atomically replace the bad file.
func TestCorruptRecordIsSkippedAndReplaced(t *testing.T) {
	corruptions := map[string]func(path string) error{
		"truncated": func(path string) error {
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			return os.WriteFile(path, data[:len(data)/2], 0o644)
		},
		"garbage": func(path string) error {
			return os.WriteFile(path, []byte("\x00\xffnot json"), 0o644)
		},
		"empty": func(path string) error {
			return os.WriteFile(path, nil, 0o644)
		},
		"bit-flipped payload": func(path string) error {
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			// Flip a byte inside the base64 payload so the JSON still
			// parses but the checksum no longer matches.
			i := bytes.Index(data, []byte(`"payload":"`)) + len(`"payload":"`)
			if data[i] == 'A' {
				data[i] = 'B'
			} else {
				data[i] = 'A'
			}
			return os.WriteFile(path, data, 0o644)
		},
		"version skew": func(path string) error {
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			return os.WriteFile(path,
				bytes.Replace(data, []byte(`"schema_version":1`), []byte(`"schema_version":999`), 1), 0o644)
		},
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			s, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Put("cell:q", []byte("good payload")); err != nil {
				t.Fatal(err)
			}
			if err := corrupt(s.path("cell:q")); err != nil {
				t.Fatal(err)
			}
			before := getCorrupt.Value()
			if _, ok := s.Get("cell:q"); ok {
				t.Fatal("corrupted record served as a hit")
			}
			if getCorrupt.Value() <= before && name != "empty" {
				// An emptied file may read as plain unmarshal corruption
				// too; all listed corruptions should count as corrupt.
				t.Fatal("corruption was not counted")
			}
			// The next write replaces the bad file atomically and the
			// record becomes readable again.
			if err := s.Put("cell:q", []byte("recomputed payload")); err != nil {
				t.Fatal(err)
			}
			got, ok := s.Get("cell:q")
			if !ok || string(got) != "recomputed payload" {
				t.Fatalf("post-replace Get = %q, %v; want recomputed payload, true", got, ok)
			}
			assertNoTempFiles(t, s.dir)
		})
	}
}

// TestKeyMismatchReadsAsMiss: a record renamed onto another key's
// address (or a truncated-hash collision) must not be served.
func TestKeyMismatchReadsAsMiss(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("key-a", []byte("payload-a")); err != nil {
		t.Fatal(err)
	}
	dst := s.path("key-b")
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(s.path("key-a"), dst); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("key-b"); ok {
		t.Fatal("record stored under key-a served for key-b")
	}
}

func TestOpenRejectsEmptyAndUnusableDirs(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("Open(\"\") succeeded")
	}
	file := filepath.Join(t.TempDir(), "plain-file")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(filepath.Join(file, "sub")); err == nil {
		t.Fatal("Open under a plain file succeeded")
	}
}

func assertNoTempFiles(t *testing.T, dir string) {
	t.Helper()
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasPrefix(d.Name(), ".tmp-") {
			t.Errorf("leftover temp file %s", path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
