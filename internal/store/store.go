// Package store is the persistent content-addressed result store: a
// second cache tier, behind the in-memory LRUs, shared by every fleet
// member and surviving restarts. Keys are the engine's existing
// canonical identities — the serve layer's endpoint-qualified canonical
// query key, or the cluster layer's (query, substream seed) cell key —
// hashed to an on-disk address, so any process that derives the same
// canonical key reads the same record.
//
// Durability contract:
//
//   - Writes are atomic: each record is written to a temp file in the
//     destination directory and renamed into place, so a reader never
//     observes a half-written record and a crashed writer leaves at
//     worst an orphaned temp file (cleaned opportunistically).
//   - Records are schema-versioned and checksummed. A read that finds
//     a truncated, corrupted, version-skewed, or key-mismatched file
//     reports a miss — the caller recomputes, never crashes — and the
//     next Put for that key atomically replaces the bad file.
//   - The store is shared-safe across processes: cross-process
//     atomicity rides entirely on rename(2); no locks are taken, and
//     concurrent writers of the same key race benignly (both write the
//     same deterministic payload).
//
// There is no background GC: records are immutable and content-
// addressed, so age-based pruning (delete files older than N days) is
// safe at any time and left to the operator — see the README's store
// layout note.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"memreliability/internal/obs"
)

// RecordVersion is the schema version stamped on every record file.
// Bump it when the record layout changes; version-skewed files read as
// misses and are replaced on the next write.
const RecordVersion = 1

// ErrBadDir reports a store directory that cannot be created or used.
var ErrBadDir = errors.New("store: bad directory")

// Store metrics, on the process-global engine registry so they appear
// on /metrics/prom next to the estimator and cluster series.
var (
	getHits = obs.Default().Counter("store_gets_total",
		"Content-addressed store reads, by outcome.", obs.L("outcome", "hit"))
	getMisses = obs.Default().Counter("store_gets_total",
		"Content-addressed store reads, by outcome.", obs.L("outcome", "miss"))
	getCorrupt = obs.Default().Counter("store_gets_total",
		"Content-addressed store reads, by outcome.", obs.L("outcome", "corrupt"))
	puts = obs.Default().Counter("store_puts_total",
		"Records written (temp file + atomic rename).")
	putErrors = obs.Default().Counter("store_put_errors_total",
		"Record writes that failed before the rename.")
)

// record is the on-disk form: the full canonical key (so hash
// collisions and cross-key renames are detected, not served), the
// payload, and a payload checksum catching torn or bit-rotted files
// that still parse as JSON.
type record struct {
	SchemaVersion int    `json:"schema_version"`
	Key           string `json:"key"`
	SHA256        string `json:"sha256"`
	Payload       []byte `json:"payload"`
}

// Store is a content-addressed record store rooted at one directory.
// The zero value is not usable; call Open.
type Store struct {
	dir string
}

// Open creates (if needed) and returns the store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("%w: empty path", ErrBadDir)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadDir, err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// path maps a canonical key to its record file: sha256 of the key,
// fanned out over a two-hex-digit subdirectory so one flat directory
// never holds the whole keyspace.
func (s *Store) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	name := hex.EncodeToString(sum[:])
	return filepath.Join(s.dir, name[:2], name+".json")
}

// Get returns the payload stored under key. Every failure mode — no
// file, truncated file, invalid JSON, schema-version skew, key
// mismatch, checksum mismatch — reports a miss: the store trades
// availability of bad records for recompute, never for a crash.
func (s *Store) Get(key string) ([]byte, bool) {
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		getMisses.Inc()
		return nil, false
	}
	var rec record
	if err := json.Unmarshal(data, &rec); err != nil {
		getCorrupt.Inc()
		return nil, false
	}
	if rec.SchemaVersion != RecordVersion || rec.Key != key {
		getCorrupt.Inc()
		return nil, false
	}
	sum := sha256.Sum256(rec.Payload)
	if hex.EncodeToString(sum[:]) != rec.SHA256 {
		getCorrupt.Inc()
		return nil, false
	}
	getHits.Inc()
	return rec.Payload, true
}

// Put stores payload under key: encode the record, write it to a temp
// file in the destination directory, and rename it into place. The
// rename is the commit point — a concurrent reader sees either the old
// record (or none) or the complete new one, and a bad record left by
// corruption is replaced wholesale.
func (s *Store) Put(key string, payload []byte) error {
	dst := s.path(key)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		putErrors.Inc()
		return fmt.Errorf("store: put %q: %w", key, err)
	}
	sum := sha256.Sum256(payload)
	data, err := json.Marshal(record{
		SchemaVersion: RecordVersion,
		Key:           key,
		SHA256:        hex.EncodeToString(sum[:]),
		Payload:       payload,
	})
	if err != nil {
		putErrors.Inc()
		return fmt.Errorf("store: encode %q: %w", key, err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(dst), ".tmp-*")
	if err != nil {
		putErrors.Inc()
		return fmt.Errorf("store: put %q: %w", key, err)
	}
	// Any failure past this point must not leave the temp file behind.
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		putErrors.Inc()
		return fmt.Errorf("store: put %q: %w", key, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		putErrors.Inc()
		return fmt.Errorf("store: put %q: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		putErrors.Inc()
		return fmt.Errorf("store: put %q: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		putErrors.Inc()
		return fmt.Errorf("store: put %q: %w", key, err)
	}
	puts.Inc()
	return nil
}

// Len walks the store and counts committed records (temp files and
// foreign files are excluded). It is an operator/testing helper, not a
// hot path.
func (s *Store) Len() (int, error) {
	n := 0
	err := filepath.WalkDir(s.dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(d.Name(), ".json") && !strings.HasPrefix(d.Name(), ".tmp-") {
			n++
		}
		return nil
	})
	return n, err
}
