package cluster

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"memreliability/internal/estimator"
	"memreliability/internal/store"
	"memreliability/internal/sweep"
)

// ErrBadConfig reports an invalid coordinator configuration.
var ErrBadConfig = errors.New("cluster: bad config")

// ErrNoWorkers reports a sweep stranded with no surviving workers.
var ErrNoWorkers = errors.New("cluster: no surviving workers")

// errPermanent marks a worker rejection that must not be retried on a
// survivor: the worker judged the cell itself invalid (HTTP 400), so
// every worker would reject it identically.
var errPermanent = errors.New("cluster: permanent rejection")

// Config configures a Coordinator.
type Config struct {
	// Workers are the fleet's worker base URLs (e.g.
	// "http://10.0.0.7:8081"); at least one is required. Cells are
	// sharded across them by canonical cell key.
	Workers []string
	// Store, when non-nil, is the shared content-addressed result
	// store: cells present in it are merged without dispatch, and every
	// computed cell is written through — so coordinator restarts and
	// fleet siblings reuse warm results instead of re-running
	// estimators.
	Store *store.Store
	// CellTimeout bounds each dispatch round trip (the whole batch); a
	// dispatch that exceeds it counts as a worker failure and its cells
	// are retried on a survivor. 0 means 60s.
	CellTimeout time.Duration
	// MaxRetries bounds how many failed dispatch attempts one cell may
	// accumulate (across workers) before the sweep fails. 0 means 3.
	MaxRetries int
	// MaxBatch bounds how many queued cells ride one worker dispatch.
	// The wire format has carried batches since PR 7; batching amortizes
	// the HTTP round trip and JSON framing over up to MaxBatch cells
	// without affecting artifacts (results are deterministic per cell).
	// 0 means 8.
	MaxBatch int
	// Client is the HTTP client used for dispatch; nil builds a
	// dedicated client (per-request timeouts come from CellTimeout).
	Client *http.Client
}

// withDefaults returns the config with zero fields replaced by defaults.
func (c Config) withDefaults() Config {
	if c.CellTimeout == 0 {
		c.CellTimeout = 60 * time.Second
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 8
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	return c
}

// Coordinator shards sweep cells across a worker fleet and merges the
// results deterministically. It is safe for concurrent RunSweep calls.
type Coordinator struct {
	cfg Config
	wm  []*workerMetrics
}

// New validates the config and returns a coordinator.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("%w: no workers", ErrBadConfig)
	}
	for _, u := range cfg.Workers {
		if u == "" {
			return nil, fmt.Errorf("%w: empty worker URL", ErrBadConfig)
		}
	}
	if cfg.CellTimeout < 0 || cfg.MaxRetries < 0 {
		return nil, fmt.Errorf("%w: negative timeout or retry bound", ErrBadConfig)
	}
	if cfg.MaxBatch < 0 {
		return nil, fmt.Errorf("%w: negative batch bound", ErrBadConfig)
	}
	cfg = cfg.withDefaults()
	wm := make([]*workerMetrics, len(cfg.Workers))
	for i := range wm {
		wm[i] = metricsForWorker(i)
	}
	return &Coordinator{cfg: cfg, wm: wm}, nil
}

// task is one cell awaiting distributed execution.
type task struct {
	idx      int
	query    estimator.Query
	seed     uint64
	key      string
	attempts int // failed dispatch attempts so far
}

// dispatchState is the shared scheduling state of one RunSweep: per-
// worker shard queues, liveness, and completion bookkeeping, all under
// one mutex with a cond for queue handoff. Scheduling state only —
// results are deterministic in the spec regardless of what happens
// here.
type dispatchState struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues [][]*task
	alive  []bool
	aliveN int
	queued int // cells sitting in shard queues
	pend   int // cells not yet completed
	err    error
}

// failLocked records the sweep's first fatal error; the mutex must be
// held.
func (st *dispatchState) failLocked(err error) {
	if st.err == nil {
		st.err = err
	}
	st.cond.Broadcast()
}

// shardIndex maps a canonical cell key to its home worker: the first 8
// bytes of the key's SHA-256 modulo the fleet size — the same hash
// family that content-addresses the key on disk, so placement is a
// pure function of the cell's identity.
func shardIndex(key string, n int) int {
	sum := sha256.Sum256([]byte(key))
	return int(binary.BigEndian.Uint64(sum[:8]) % uint64(n))
}

// RunSweep runs the spec's grid on the worker fleet and returns the
// merged artifact — byte-identical to single-node sweep.Run (and hence
// to memsweep -o) for the same spec, at any fleet size, under worker
// loss, and across store-warm restarts:
//
//  1. Normalize, validate, and expand the spec, deriving per-cell
//     substream seeds — the exact single-node pipeline.
//  2. Serve every cell already in the content-addressed store without
//     dispatch (cross-node, cross-restart dedup).
//  3. Shard the remaining cells across workers by canonical cell key
//     and dispatch them concurrently, up to MaxBatch cells per
//     bounded-timeout request. A failed worker is retired and its
//     cells move to survivors, each failed attempt counting against
//     every attempted cell's bounded retry budget.
//  4. Write computed results through the store and merge all cells in
//     canonical cell-index order.
//
// opts follows sweep.Options: Sink receives each completed cell
// (completion order, serialized); Timing is rejected because remote
// timing would break the artifact byte-identity contract.
func (c *Coordinator) RunSweep(ctx context.Context, spec sweep.Spec, opts sweep.Options) (*sweep.Artifact, error) {
	if opts.Timing {
		return nil, fmt.Errorf("%w: per-cell timing is not supported in distributed mode", ErrBadConfig)
	}
	norm := spec.Normalized()
	if err := norm.Validate(); err != nil {
		return nil, err
	}
	sweepsTotal.Inc()
	cells := norm.Expand()
	seeds := estimator.DeriveSeeds(norm.Seed, len(cells))
	results := make([]sweep.CellResult, len(cells))

	var sinkMu sync.Mutex
	emit := func(res sweep.CellResult) {
		if opts.Sink == nil {
			return
		}
		sinkMu.Lock()
		opts.Sink(res)
		sinkMu.Unlock()
	}

	// Store pass: cells with a warm content-addressed result merge
	// immediately; only the rest are dispatched.
	var pending []*task
	for i, cell := range cells {
		q := norm.Query(cell)
		key, err := CellKey(q, seeds[i])
		if err != nil {
			return nil, err
		}
		if c.cfg.Store != nil {
			if payload, ok := c.cfg.Store.Get(key); ok {
				var res estimator.Result
				if json.Unmarshal(payload, &res) == nil {
					storeDedup.Inc()
					results[i] = sweep.CellResultOf(cell, res)
					emit(results[i])
					continue
				}
			}
		}
		pending = append(pending, &task{idx: i, query: q, seed: seeds[i], key: key})
	}

	if len(pending) > 0 {
		if err := c.dispatchAll(ctx, pending, cells, results, emit); err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}

	// Merge in canonical cell-index order; the echo omits the worker
	// budget exactly as the single-node engine does, so the artifact
	// bytes match memsweep -o.
	echo := norm
	echo.Workers = 0
	return &sweep.Artifact{
		SchemaVersion: sweep.ArtifactVersion,
		Spec:          echo,
		Cells:         results,
	}, nil
}

// dispatchAll runs the pending cells on the fleet: one goroutine per
// configured worker consuming its shard queue, with failure handling
// that retires the failed worker and moves its cells to survivors.
func (c *Coordinator) dispatchAll(ctx context.Context, pending []*task, cells []sweep.Cell, results []sweep.CellResult, emit func(sweep.CellResult)) error {
	n := len(c.cfg.Workers)
	st := &dispatchState{
		queues: make([][]*task, n),
		alive:  make([]bool, n),
		aliveN: n,
		queued: len(pending),
		pend:   len(pending),
	}
	st.cond = sync.NewCond(&st.mu)
	for i := range st.alive {
		st.alive[i] = true
	}
	for _, t := range pending {
		w := shardIndex(t.key, n)
		st.queues[w] = append(st.queues[w], t)
	}
	queueDepthGauge.Set(float64(st.queued))

	// Wake all waiters when the parent context dies, so cancellation
	// cannot strand a worker loop in cond.Wait.
	loopCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	go func() {
		<-loopCtx.Done()
		st.mu.Lock()
		st.failLocked(loopCtx.Err())
		st.mu.Unlock()
	}()

	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c.workerLoop(loopCtx, st, w, cells, results, emit)
		}(w)
	}
	wg.Wait()
	queueDepthGauge.Set(0)

	st.mu.Lock()
	defer st.mu.Unlock()
	if st.pend > 0 && st.err == nil {
		// Unreachable by construction (loops only exit on done or
		// error), but a stranded cell must fail loudly, not merge as a
		// zero result.
		st.err = fmt.Errorf("cluster: %d cells never completed", st.pend)
	}
	if st.err != nil && ctx.Err() != nil {
		// Prefer the caller's cancellation over the failures it induced.
		return fmt.Errorf("cluster: %w", ctx.Err())
	}
	return st.err
}

// workerLoop drains worker w's shard queue until the sweep completes,
// fails, or the worker is retired. Each iteration takes up to MaxBatch
// queued cells and dispatches them as one request.
func (c *Coordinator) workerLoop(ctx context.Context, st *dispatchState, w int, cells []sweep.Cell, results []sweep.CellResult, emit func(sweep.CellResult)) {
	for {
		st.mu.Lock()
		for st.err == nil && st.pend > 0 && st.alive[w] && len(st.queues[w]) == 0 {
			st.cond.Wait()
		}
		if st.err != nil || st.pend == 0 || !st.alive[w] {
			st.mu.Unlock()
			return
		}
		k := c.cfg.MaxBatch
		if k > len(st.queues[w]) {
			k = len(st.queues[w])
		}
		batch := st.queues[w][:k:k]
		st.queues[w] = st.queues[w][k:]
		st.queued -= k
		queueDepthGauge.Set(float64(st.queued))
		st.mu.Unlock()

		res, err := c.dispatchBatch(ctx, w, batch)
		if err != nil {
			st.mu.Lock()
			c.failBatchLocked(ctx, st, w, batch, err)
			st.mu.Unlock()
			continue // the loop re-checks alive[w] and exits if retired
		}

		st.mu.Lock()
		for bi, t := range batch {
			results[t.idx] = sweep.CellResultOf(cells[t.idx], res[bi])
		}
		st.pend -= len(batch)
		st.cond.Broadcast()
		st.mu.Unlock()

		// Write-through outside the lock; persistence is best-effort
		// (the store counts its own put errors) and never gates the
		// sweep.
		for bi, t := range batch {
			if c.cfg.Store != nil {
				if payload, err := json.Marshal(res[bi]); err == nil {
					c.cfg.Store.Put(t.key, payload) //nolint:errcheck // best-effort tier
				}
			}
			emit(results[t.idx])
		}
	}
}

// failBatchLocked handles one dispatch failure; the state mutex must be
// held. Cancellation and permanent rejections fail the sweep; any
// other failure retires worker w and moves its cells — the attempted
// batch and everything still queued on it — to surviving workers. Each
// attempted cell's attempt count is bounded by MaxRetries; queued
// cells move without charge (they were never attempted).
func (c *Coordinator) failBatchLocked(ctx context.Context, st *dispatchState, w int, batch []*task, err error) {
	if ctx.Err() != nil {
		st.failLocked(ctx.Err())
		return
	}
	if errors.Is(err, errPermanent) {
		st.failLocked(err)
		return
	}
	c.wm[w].retries.Add(int64(len(batch)))
	for _, t := range batch {
		t.attempts++
		if t.attempts > c.cfg.MaxRetries {
			st.failLocked(fmt.Errorf("cluster: cell %d failed %d times, retry budget exhausted: %w",
				t.idx, t.attempts, err))
			return
		}
	}
	if st.alive[w] {
		st.alive[w] = false
		st.aliveN--
	}
	if st.aliveN == 0 {
		st.failLocked(fmt.Errorf("%w: cell %d: %v", ErrNoWorkers, batch[0].idx, err))
		return
	}
	orphans := append(append([]*task(nil), batch...), st.queues[w]...)
	st.queues[w] = nil
	for _, o := range orphans {
		tgt := c.nextAliveLocked(st, o.key)
		st.queues[tgt] = append(st.queues[tgt], o)
	}
	st.queued += len(batch) // the batch re-enters queues; the others never left
	queueDepthGauge.Set(float64(st.queued))
	st.cond.Broadcast()
}

// nextAliveLocked picks the surviving worker for a reassigned cell:
// the first alive worker at or after the cell's home shard, scanning
// the ring — deterministic in the key and the liveness set.
func (c *Coordinator) nextAliveLocked(st *dispatchState, key string) int {
	n := len(c.cfg.Workers)
	home := shardIndex(key, n)
	for i := 0; i < n; i++ {
		w := (home + i) % n
		if st.alive[w] {
			return w
		}
	}
	return home // unreachable: callers guarantee aliveN > 0
}

// dispatchBatch sends one batch of cells to worker w and decodes the
// per-cell results in batch order, bounded by the dispatch timeout.
func (c *Coordinator) dispatchBatch(ctx context.Context, w int, batch []*task) ([]estimator.Result, error) {
	m := c.wm[w]
	m.dispatch.Add(int64(len(batch)))
	start := time.Now()
	res, err := c.postCells(ctx, c.cfg.Workers[w], batch)
	m.latency.Observe(time.Since(start).Seconds())
	return res, err
}

// postCells performs the HTTP round trip for one batch of cells. The
// returned slice is aligned with batch: workers echo grid indices, so
// responses are matched by index, not ordering.
func (c *Coordinator) postCells(ctx context.Context, workerURL string, batch []*task) ([]estimator.Result, error) {
	wire := cellsRequest{Cells: make([]cellTask, len(batch))}
	for i, t := range batch {
		wire.Cells[i] = cellTask{Index: t.idx, Query: t.query, Seed: t.seed}
	}
	body, err := json.Marshal(wire)
	if err != nil {
		return nil, fmt.Errorf("%w: encode cell %d: %v", errPermanent, batch[0].idx, err)
	}
	reqCtx, cancel := context.WithTimeout(ctx, c.cfg.CellTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(reqCtx, http.MethodPost, workerURL+"/v1/cells", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("%w: cell %d: %v", errPermanent, batch[0].idx, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: cell %d: %w", batch[0].idx, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, fmt.Errorf("cluster: cell %d: %w", batch[0].idx, err)
	}
	switch {
	case resp.StatusCode == http.StatusOK:
	case resp.StatusCode == http.StatusBadRequest:
		// The worker validated with the canonical rules; every other
		// worker would reject identically, so retrying is pointless.
		return nil, fmt.Errorf("%w: cell %d: worker says %s", errPermanent, batch[0].idx, strings.TrimSpace(string(data)))
	default:
		return nil, fmt.Errorf("cluster: cell %d: worker status %d: %s", batch[0].idx, resp.StatusCode, strings.TrimSpace(string(data)))
	}
	var out cellsResponse
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("cluster: cell %d: decode response: %w", batch[0].idx, err)
	}
	if len(out.Results) != len(batch) {
		return nil, fmt.Errorf("cluster: batch of %d cells: malformed response (%d results)", len(batch), len(out.Results))
	}
	byIdx := make(map[int]int, len(out.Results))
	for i, r := range out.Results {
		byIdx[r.Index] = i
	}
	results := make([]estimator.Result, len(batch))
	for i, t := range batch {
		j, ok := byIdx[t.idx]
		if !ok {
			return nil, fmt.Errorf("cluster: cell %d: missing from batch response", t.idx)
		}
		results[i] = out.Results[j].Result
	}
	return results, nil
}
