package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"memreliability/internal/estimator"
	"memreliability/internal/obs"
)

// ErrBadRequest reports a malformed or invalid worker request.
var ErrBadRequest = errors.New("cluster: bad request")

// WorkerConfig tunes a worker. The zero value gets sensible defaults.
type WorkerConfig struct {
	// Workers bounds each cell's internal Monte Carlo parallelism
	// (estimator.Exec.Workers); 0 means GOMAXPROCS. Pure scheduling —
	// results never depend on it.
	Workers int
}

// worker metrics, on the engine registry so a worker process exposes
// them at its own /metrics/prom.
var (
	workerCells = obs.Default().Counter("cluster_worker_cells_total",
		"Cells computed by this worker process.")
	workerBatches = obs.Default().Counter("cluster_worker_batches_total",
		"Cell batch requests served by this worker process.")
)

// NewWorker returns the worker-mode HTTP handler: the /v1/cells
// estimation endpoint plus liveness and metrics. Workers are stateless
// — every request carries the full canonical query and substream seed,
// and results are deterministic in them, so any worker can compute any
// cell and a killed worker's cells can be replayed anywhere.
func NewWorker(cfg WorkerConfig) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"status":"ok","role":"worker"}`)
	})
	mux.HandleFunc("GET /metrics/prom", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		obs.Default().WritePrometheus(w)
	})
	mux.HandleFunc("POST /v1/cells", func(w http.ResponseWriter, r *http.Request) {
		handleCells(w, r, cfg)
	})
	return mux
}

// handleCells validates and executes one batch of cells. Validation
// failures are the client's fault (400, permanent — the coordinator
// must not retry them elsewhere); execution failures are this worker's
// (500, retryable on a surviving worker).
func handleCells(w http.ResponseWriter, r *http.Request, cfg WorkerConfig) {
	var req cellsRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeWorkerError(w, http.StatusBadRequest, fmt.Errorf("%w: %v", ErrBadRequest, err))
		return
	}
	if len(req.Cells) == 0 {
		writeWorkerError(w, http.StatusBadRequest, fmt.Errorf("%w: empty cell batch", ErrBadRequest))
		return
	}
	resp := cellsResponse{Results: make([]cellResultWire, 0, len(req.Cells))}
	for _, c := range req.Cells {
		norm := c.Query.Normalized()
		if err := norm.Validate(); err != nil {
			writeWorkerError(w, http.StatusBadRequest, fmt.Errorf("cell %d: %w", c.Index, err))
			return
		}
		// Exec is pure scheduling; Timing stays off because elapsed_ms
		// would break the artifact's byte-identity contract.
		res, err := estimator.Run(r.Context(), norm, c.Seed,
			estimator.Exec{Workers: cfg.Workers})
		if err != nil {
			writeWorkerError(w, http.StatusInternalServerError, fmt.Errorf("cell %d: %w", c.Index, err))
			return
		}
		workerCells.Inc()
		resp.Results = append(resp.Results, cellResultWire{Index: c.Index, Result: res})
	}
	workerBatches.Inc()
	data, err := json.Marshal(resp)
	if err != nil {
		writeWorkerError(w, http.StatusInternalServerError, fmt.Errorf("cluster: encode response: %w", err))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(data, '\n'))
}

// writeWorkerError writes the uniform JSON error envelope.
func writeWorkerError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	data, _ := json.Marshal(struct {
		Error string `json:"error"`
	}{err.Error()})
	w.Write(append(data, '\n'))
}
