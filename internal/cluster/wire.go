// Package cluster is the scale-out estimation layer: a thin coordinator
// that shards sweep cells across N worker processes and merges their
// results into the same byte-identical versioned artifact the
// single-node engine produces.
//
// The design follows the PoCL-R pattern (server-side-scalable
// offloading of compute to remote workers): the coordinator owns the
// canonical decomposition — spec normalization, grid expansion, and
// per-cell substream seed derivation, exactly the single-node
// sweep.Run pipeline — and workers are stateless estimator executors.
// Because every cell is deterministic in its (query, substream seed),
// placement is pure scheduling: an artifact depends only on the spec,
// never on the worker count, worker failures, or retry interleaving.
// Worker-count invariance, proven in-process since PR 1, extends
// across process boundaries by construction.
//
// Wire protocol (all JSON over HTTP, reusing the estimator package's
// canonical Query/Result forms — no parallel encoding to drift):
//
//	POST {worker}/v1/cells   {"cells":[{"index":i,"query":Query,"seed":n}]}
//	  → 200 {"results":[{"index":i,"result":Result}]}
//	  → 400 on a query that fails canonical validation (permanent)
//	  → 5xx on an execution failure (retryable)
//	GET  {worker}/healthz
//	GET  {worker}/metrics/prom
//
// Cross-node cache reuse comes from the content-addressed store: the
// coordinator keys each cell by its canonical query encoding plus its
// derived substream seed, consults the store before dispatching, and
// writes every computed result through — so fleet siblings and
// restarts serve warm cells without re-running estimators.
package cluster

import (
	"encoding/json"
	"fmt"
	"strconv"

	"memreliability/internal/estimator"
)

// cellTask is one unit of distributed work: a canonical estimator
// query plus the substream seed the coordinator derived for its grid
// index (the engine's DeriveSeeds contract — the seed is NOT derivable
// from the query alone, so it travels on the wire).
type cellTask struct {
	// Index is the cell's position in the expanded grid; workers echo
	// it so batch responses need no ordering guarantee.
	Index int `json:"index"`
	// Query is the canonical estimator query (the estimator package's
	// wire form, shared with /v1/estimate and the sweep spec).
	Query estimator.Query `json:"query"`
	// Seed is the derived RNG substream seed for this cell.
	Seed uint64 `json:"seed"`
}

// cellsRequest is the worker request body.
type cellsRequest struct {
	Cells []cellTask `json:"cells"`
}

// cellResultWire pairs a computed estimator result with its grid index.
type cellResultWire struct {
	Index  int              `json:"index"`
	Result estimator.Result `json:"result"`
}

// cellsResponse is the worker response body.
type cellsResponse struct {
	Results []cellResultWire `json:"results"`
}

// CellKey is the content address of one distributed cell result: the
// canonical JSON encoding of the normalized query plus the derived
// substream seed. Two sweeps whose grids share a (query, seed) cell —
// any spec prefix reordering that preserves the derivation — share the
// stored result, across processes and restarts.
func CellKey(q estimator.Query, seed uint64) (string, error) {
	data, err := json.Marshal(q)
	if err != nil {
		return "", fmt.Errorf("cluster: encode cell key: %w", err)
	}
	return "cell:" + string(data) + ":sub=" + strconv.FormatUint(seed, 10), nil
}
