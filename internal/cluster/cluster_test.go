package cluster

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"memreliability/internal/store"
	"memreliability/internal/sweep"
)

// testSpec is a small mixed-kind grid: per model, exact + mc + hybrid +
// windowdist at n=2 and exact (skipped) + mc + hybrid at n=3 — 14
// cells, every estimator kind, including a skipped cell.
func testSpec() sweep.Spec {
	spec := sweep.DefaultSpec()
	spec.Models = []string{"SC", "TSO"}
	spec.Threads = []int{2, 3}
	spec.PrefixLens = []int{12}
	spec.Estimators = []sweep.Kind{sweep.Exact, sweep.FullMC, sweep.Hybrid, sweep.WindowDist}
	spec.Trials = 2048
	spec.Seed = 7
	return spec
}

// countingWorker wraps the worker handler with a served-request counter.
type countingWorker struct {
	h http.Handler
	n atomic.Int64
}

func (cw *countingWorker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	cw.n.Add(1)
	cw.h.ServeHTTP(w, r)
}

// startWorkers boots n in-process workers over real HTTP.
func startWorkers(t *testing.T, n int) ([]string, []*countingWorker) {
	t.Helper()
	urls := make([]string, n)
	counters := make([]*countingWorker, n)
	for i := 0; i < n; i++ {
		cw := &countingWorker{h: NewWorker(WorkerConfig{Workers: 1})}
		ts := httptest.NewServer(cw)
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
		counters[i] = cw
	}
	return urls, counters
}

// artifactBytes encodes an artifact exactly as memsweep -o would.
func artifactBytes(t *testing.T, art *sweep.Artifact) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := art.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// standaloneBytes runs the spec through the single-node engine.
func standaloneBytes(t *testing.T, spec sweep.Spec) []byte {
	t.Helper()
	art, err := sweep.Run(context.Background(), spec, sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return artifactBytes(t, art)
}

// TestDistributedMatchesStandalone is the cross-process worker-count-
// invariance property, crossed with dispatch batching: the same spec
// run standalone and distributed at 1, 2, and 4 workers, at batch
// sizes 1, 3, and the default, produces byte-identical artifacts.
func TestDistributedMatchesStandalone(t *testing.T) {
	spec := testSpec()
	want := standaloneBytes(t, spec)

	for _, workers := range []int{1, 2, 4} {
		for _, maxBatch := range []int{1, 3, 0} { // 0 = default batching
			urls, _ := startWorkers(t, workers)
			coord, err := New(Config{Workers: urls, MaxBatch: maxBatch})
			if err != nil {
				t.Fatal(err)
			}
			var sunk atomic.Int64
			art, err := coord.RunSweep(context.Background(), spec,
				sweep.Options{Sink: func(sweep.CellResult) { sunk.Add(1) }})
			if err != nil {
				t.Fatalf("workers=%d batch=%d: %v", workers, maxBatch, err)
			}
			got := artifactBytes(t, art)
			if !bytes.Equal(got, want) {
				t.Errorf("workers=%d batch=%d: distributed artifact differs from standalone (%d vs %d bytes)",
					workers, maxBatch, len(got), len(want))
			}
			if int(sunk.Load()) != len(art.Cells) {
				t.Errorf("workers=%d batch=%d: sink saw %d cells, want %d",
					workers, maxBatch, sunk.Load(), len(art.Cells))
			}
		}
	}
}

// TestBatchDispatchCoalesces pins the batching win itself: a fleet of
// one worker with a batch bound above the grid size must execute the
// whole sweep in exactly one worker request, still byte-identical.
func TestBatchDispatchCoalesces(t *testing.T) {
	spec := testSpec()
	want := standaloneBytes(t, spec)

	urls, counters := startWorkers(t, 1)
	coord, err := New(Config{Workers: urls, MaxBatch: 64})
	if err != nil {
		t.Fatal(err)
	}
	art, err := coord.RunSweep(context.Background(), spec, sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := artifactBytes(t, art); !bytes.Equal(got, want) {
		t.Error("batched artifact differs from standalone")
	}
	if n := counters[0].n.Load(); n != 1 {
		t.Errorf("sweep of %d cells took %d worker requests, want 1", len(art.Cells), n)
	}
}

// killableWorker serves its first request normally, then drops every
// connection — indistinguishable from a killed worker process.
type killableWorker struct {
	h      http.Handler
	served atomic.Int64
}

func (kw *killableWorker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if kw.served.Add(1) > 1 {
		hj, ok := w.(http.Hijacker)
		if !ok {
			panic("test server must support hijacking")
		}
		conn, _, err := hj.Hijack()
		if err == nil {
			conn.Close()
		}
		return
	}
	kw.h.ServeHTTP(w, r)
}

// TestWorkerKilledMidSweepRetries kills one worker after its first
// request and requires the surviving worker to absorb the orphaned
// cells with a byte-identical artifact — the failure-path determinism,
// at unbatched and batched dispatch. With a batch the kill orphans a
// whole in-flight batch at once, exercising the batch retry path.
func TestWorkerKilledMidSweepRetries(t *testing.T) {
	spec := testSpec()
	want := standaloneBytes(t, spec)

	for _, maxBatch := range []int{1, 2} {
		kw := &killableWorker{h: NewWorker(WorkerConfig{Workers: 1})}
		dying := httptest.NewServer(kw)
		t.Cleanup(dying.Close)
		survivorURLs, survivors := startWorkers(t, 1)

		coord, err := New(Config{
			Workers:     []string{dying.URL, survivorURLs[0]},
			CellTimeout: 30 * time.Second,
			MaxBatch:    maxBatch,
		})
		if err != nil {
			t.Fatal(err)
		}
		retriesBefore := coord.wm[0].retries.Value()
		art, err := coord.RunSweep(context.Background(), spec, sweep.Options{})
		if err != nil {
			t.Fatalf("batch=%d: %v", maxBatch, err)
		}
		if got := artifactBytes(t, art); !bytes.Equal(got, want) {
			t.Errorf("batch=%d: artifact after worker kill differs from standalone", maxBatch)
		}
		if kw.served.Load() < 2 {
			t.Fatalf("batch=%d: dying worker saw %d requests; the kill never fired mid-sweep",
				maxBatch, kw.served.Load())
		}
		if survivors[0].n.Load() == 0 {
			t.Errorf("batch=%d: survivor computed nothing; orphaned cells were not retried", maxBatch)
		}
		if coord.wm[0].retries.Value() <= retriesBefore {
			t.Errorf("batch=%d: retry counter did not move for the killed worker", maxBatch)
		}
	}
}

// TestWarmStoreRestartZeroRuns is the acceptance criterion: a fresh
// coordinator against a warm content-addressed store completes the
// same sweep with zero dispatches (and hence zero estimator runs),
// asserted via the obs counters, with byte-identical artifacts.
func TestWarmStoreRestartZeroRuns(t *testing.T) {
	spec := testSpec()
	want := standaloneBytes(t, spec)
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	urls, counters := startWorkers(t, 2)
	cold, err := New(Config{Workers: urls, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	art1, err := cold.RunSweep(context.Background(), spec, sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := artifactBytes(t, art1); !bytes.Equal(got, want) {
		t.Fatal("cold distributed artifact differs from standalone")
	}
	coldRequests := counters[0].n.Load() + counters[1].n.Load()
	if coldRequests == 0 {
		t.Fatal("cold run dispatched nothing")
	}

	// "Restart": a brand-new coordinator over the same store. Every
	// cell must come from disk — no worker traffic, no estimator runs.
	warm, err := New(Config{Workers: urls, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	dedupBefore := storeDedup.Value()
	dispatchBefore := warm.wm[0].dispatch.Value() + warm.wm[1].dispatch.Value()
	art2, err := warm.RunSweep(context.Background(), spec, sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := artifactBytes(t, art2); !bytes.Equal(got, want) {
		t.Fatal("warm distributed artifact differs from standalone")
	}
	if extra := counters[0].n.Load() + counters[1].n.Load() - coldRequests; extra != 0 {
		t.Errorf("warm run sent %d worker requests, want 0", extra)
	}
	if d := warm.wm[0].dispatch.Value() + warm.wm[1].dispatch.Value() - dispatchBefore; d != 0 {
		t.Errorf("warm run dispatch counter moved by %d, want 0", d)
	}
	if d := storeDedup.Value() - dedupBefore; d != int64(len(art2.Cells)) {
		t.Errorf("store dedup counter moved by %d, want %d", d, len(art2.Cells))
	}
}

// TestAllWorkersDeadFails: when every worker has been retired, the
// sweep fails with ErrNoWorkers instead of hanging.
func TestAllWorkersDeadFails(t *testing.T) {
	failing := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
	}))
	t.Cleanup(failing.Close)

	coord, err := New(Config{Workers: []string{failing.URL, failing.URL}})
	if err != nil {
		t.Fatal(err)
	}
	_, err = coord.RunSweep(context.Background(), testSpec(), sweep.Options{})
	if !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("err = %v, want ErrNoWorkers", err)
	}
}

// TestRetryBudgetExhausted: with a fleet wider than the retry bound,
// one poisoned cell exhausts its bounded retries and fails the sweep
// before the whole fleet is retired.
func TestRetryBudgetExhausted(t *testing.T) {
	failing := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
	}))
	t.Cleanup(failing.Close)

	urls := []string{failing.URL, failing.URL, failing.URL, failing.URL, failing.URL}
	coord, err := New(Config{Workers: urls, MaxRetries: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, err = coord.RunSweep(context.Background(), testSpec(), sweep.Options{})
	if err == nil {
		t.Fatal("sweep succeeded against an all-failing fleet")
	}
	if !strings.Contains(err.Error(), "retry budget exhausted") && !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("err = %v, want retry-budget or no-workers failure", err)
	}
}

// TestPermanentRejectionFailsFast: a worker 400 (canonical validation)
// must fail the sweep without being retried on survivors.
func TestPermanentRejectionFailsFast(t *testing.T) {
	var served atomic.Int64
	rejecting := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		http.Error(w, `{"error":"bad cell"}`, http.StatusBadRequest)
	}))
	t.Cleanup(rejecting.Close)

	coord, err := New(Config{Workers: []string{rejecting.URL}})
	if err != nil {
		t.Fatal(err)
	}
	_, err = coord.RunSweep(context.Background(), testSpec(), sweep.Options{})
	if !errors.Is(err, errPermanent) {
		t.Fatalf("err = %v, want permanent rejection", err)
	}
}

// TestCancellation: canceling the caller's context surfaces as a
// context error, not a worker failure.
func TestCancellation(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Drain the body first: net/http only watches for client
		// disconnects (and cancels r.Context) once the body is consumed.
		io.Copy(io.Discard, r.Body) //nolint:errcheck
		<-r.Context().Done()
	}))
	t.Cleanup(slow.Close)

	coord, err := New(Config{Workers: []string{slow.URL}, CellTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	_, err = coord.RunSweep(ctx, testSpec(), sweep.Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestConfigValidation covers the constructor's rejections, including
// the timing knob that would break artifact byte-identity.
func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("empty fleet: err = %v, want ErrBadConfig", err)
	}
	if _, err := New(Config{Workers: []string{""}}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("empty URL: err = %v, want ErrBadConfig", err)
	}
	if _, err := New(Config{Workers: []string{"http://x"}, MaxRetries: -1}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("negative retries: err = %v, want ErrBadConfig", err)
	}
	if _, err := New(Config{Workers: []string{"http://x"}, MaxBatch: -1}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("negative batch: err = %v, want ErrBadConfig", err)
	}
	coord, err := New(Config{Workers: []string{"http://x"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord.RunSweep(context.Background(), testSpec(), sweep.Options{Timing: true}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("timing: err = %v, want ErrBadConfig", err)
	}
	bad := testSpec()
	bad.Models = nil
	if _, err := coord.RunSweep(context.Background(), bad, sweep.Options{}); !errors.Is(err, sweep.ErrBadSpec) {
		t.Errorf("bad spec: err = %v, want sweep.ErrBadSpec", err)
	}
}
