package cluster

import (
	"strconv"

	"memreliability/internal/obs"
)

// Cluster metrics live on the process-global engine registry (PR 7's
// obs.Default), so a coordinator-mode memserved exposes them at
// /metrics/prom next to the estimator and store series. Per-worker
// series are labeled by the worker's index in the configured fleet —
// registration is idempotent, so coordinators of any fleet size share
// the family.
var (
	queueDepthGauge = obs.Default().Gauge("cluster_shard_queue_depth",
		"Cells assigned to worker shard queues and not yet dispatched.")
	storeDedup = obs.Default().Counter("cluster_store_dedup_total",
		"Cells served from the content-addressed store without dispatch.")
	sweepsTotal = obs.Default().Counter("cluster_sweeps_total",
		"Distributed sweeps run by this coordinator.")
)

// workerMetrics is one configured worker's instrumentation bundle.
type workerMetrics struct {
	dispatch *obs.Counter
	latency  *obs.Histogram
	retries  *obs.Counter
}

// metricsForWorker resolves the per-worker series for fleet index i.
func metricsForWorker(i int) *workerMetrics {
	label := obs.L("worker", strconv.Itoa(i))
	return &workerMetrics{
		dispatch: obs.Default().Counter("cluster_dispatch_total",
			"Cells dispatched to each worker, retries included.", label),
		latency: obs.Default().Histogram("cluster_dispatch_seconds",
			"Wall-clock dispatch latency per cell, by worker.", obs.LatencyBuckets(), label),
		retries: obs.Default().Counter("cluster_retries_total",
			"Dispatch failures per worker that moved the cell to a survivor.", label),
	}
}
