// buffered.go implements TSO and PSO as Sequential Consistency plus
// explicit write buffers — the textbook microarchitectural realization —
// as an independent cross-check of the reorder-window semantics in
// machine.go. For store-atomic machines the two are equivalent; the litmus
// suite asserts that equivalence on every test.
package machine

import (
	"fmt"
	"sort"
	"strings"

	"memreliability/internal/memmodel"
	"memreliability/internal/rng"
)

// sbEntry is one pending write in a store buffer.
type sbEntry struct {
	addr string
	val  int
}

// bufKind selects the buffer organization.
type bufKind int

const (
	// bufFIFO is a single FIFO per thread: writes drain in program order
	// (TSO).
	bufFIFO bufKind = iota + 1
	// bufPerAddr is a FIFO per address: writes to distinct addresses may
	// drain out of order (PSO).
	bufPerAddr
)

// BufferedSim executes a program under SC-plus-store-buffer semantics.
// Supported models: TSO (FIFO buffer) and PSO (per-address buffers).
// Programs must not contain FenceOp other than FenceFull (hardware TSO/PSO
// fences are full drains); RMWAddOp drains the buffer first, the standard
// atomic semantics.
type BufferedSim struct {
	prog Program
	kind bufKind
	st   *bufState
}

type bufState struct {
	mem  map[string]int
	regs []map[string]int
	pc   []int
	bufs [][]sbEntry // program-order pending writes per thread
}

// NewBufferedSim returns a store-buffer simulator for the model, which must
// be TSO or PSO.
func NewBufferedSim(p Program, model memmodel.Model) (*BufferedSim, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	var kind bufKind
	switch model.Name() {
	case "TSO":
		kind = bufFIFO
	case "PSO":
		kind = bufPerAddr
	default:
		return nil, fmt.Errorf("%w: buffered semantics defined for TSO/PSO only, got %q",
			ErrBadProgram, model.Name())
	}
	for ti, th := range p.Threads {
		for oi, op := range th.Ops {
			if f, ok := op.(FenceOp); ok && f.Kind != memmodel.FenceFull {
				return nil, fmt.Errorf("%w: thread %d op %d: buffered semantics supports FULL fences only",
					ErrBadProgram, ti, oi)
			}
		}
	}
	return &BufferedSim{prog: p, kind: kind, st: newBufState(p)}, nil
}

func newBufState(p Program) *bufState {
	st := &bufState{
		mem:  make(map[string]int, len(p.Init)),
		regs: make([]map[string]int, len(p.Threads)),
		pc:   make([]int, len(p.Threads)),
		bufs: make([][]sbEntry, len(p.Threads)),
	}
	for k, v := range p.Init {
		st.mem[k] = v
	}
	for ti := range p.Threads {
		st.regs[ti] = make(map[string]int)
	}
	return st
}

func (st *bufState) clone() *bufState {
	c := &bufState{
		mem:  make(map[string]int, len(st.mem)),
		regs: make([]map[string]int, len(st.regs)),
		pc:   make([]int, len(st.pc)),
		bufs: make([][]sbEntry, len(st.bufs)),
	}
	for k, v := range st.mem {
		c.mem[k] = v
	}
	copy(c.pc, st.pc)
	for ti := range st.regs {
		c.regs[ti] = make(map[string]int, len(st.regs[ti]))
		for k, v := range st.regs[ti] {
			c.regs[ti][k] = v
		}
		c.bufs[ti] = make([]sbEntry, len(st.bufs[ti]))
		copy(c.bufs[ti], st.bufs[ti])
	}
	return c
}

func (st *bufState) key() string {
	var sb strings.Builder
	keys := make([]string, 0, len(st.mem))
	for k := range st.mem {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&sb, "%s=%d;", k, st.mem[k])
	}
	for ti := range st.regs {
		fmt.Fprintf(&sb, "|t%d@%d:", ti, st.pc[ti])
		rkeys := make([]string, 0, len(st.regs[ti]))
		for k := range st.regs[ti] {
			rkeys = append(rkeys, k)
		}
		sort.Strings(rkeys)
		for _, k := range rkeys {
			fmt.Fprintf(&sb, "%s=%d;", k, st.regs[ti][k])
		}
		sb.WriteByte('[')
		for _, e := range st.bufs[ti] {
			fmt.Fprintf(&sb, "%s=%d,", e.addr, e.val)
		}
		sb.WriteByte(']')
	}
	return sb.String()
}

func (st *bufState) done(p Program) bool {
	for ti := range p.Threads {
		if st.pc[ti] < len(p.Threads[ti].Ops) || len(st.bufs[ti]) > 0 {
			return false
		}
	}
	return true
}

func (st *bufState) outcome() Outcome {
	o := Outcome{
		Mem:  make(map[string]int, len(st.mem)),
		Regs: make([]map[string]int, len(st.regs)),
	}
	for k, v := range st.mem {
		o.Mem[k] = v
	}
	for ti := range st.regs {
		o.Regs[ti] = make(map[string]int, len(st.regs[ti]))
		for k, v := range st.regs[ti] {
			o.Regs[ti][k] = v
		}
	}
	return o
}

// bufAction is a scheduler choice in the buffered machine: either execute
// thread's next instruction, or drain one pending write.
type bufAction struct {
	thread int
	// drainIdx is -1 to execute the next instruction, otherwise the index
	// within the thread's buffer to drain (always the oldest entry overall
	// for FIFO; the oldest entry for some address under per-address).
	drainIdx int
}

// forward returns the newest buffered value for addr, if any.
func forward(buf []sbEntry, addr string) (int, bool) {
	for i := len(buf) - 1; i >= 0; i-- {
		if buf[i].addr == addr {
			return buf[i].val, true
		}
	}
	return 0, false
}

// drainable returns the buffer indices eligible to drain next.
func drainable(buf []sbEntry, kind bufKind) []int {
	if len(buf) == 0 {
		return nil
	}
	if kind == bufFIFO {
		return []int{0}
	}
	// Per-address: the oldest entry of each distinct address.
	var idxs []int
	seen := make(map[string]bool)
	for i, e := range buf {
		if !seen[e.addr] {
			seen[e.addr] = true
			idxs = append(idxs, i)
		}
	}
	return idxs
}

func (b *BufferedSim) enabled(st *bufState) []bufAction {
	var actions []bufAction
	for ti, th := range b.prog.Threads {
		for _, di := range drainable(st.bufs[ti], b.kind) {
			actions = append(actions, bufAction{thread: ti, drainIdx: di})
		}
		pc := st.pc[ti]
		if pc >= len(th.Ops) {
			continue
		}
		switch th.Ops[pc].(type) {
		case FenceOp, RMWAddOp:
			// Full fence / atomic: only executable with an empty buffer.
			if len(st.bufs[ti]) == 0 {
				actions = append(actions, bufAction{thread: ti, drainIdx: -1})
			}
		default:
			actions = append(actions, bufAction{thread: ti, drainIdx: -1})
		}
	}
	return actions
}

func (b *BufferedSim) exec(st *bufState, a bufAction) {
	ti := a.thread
	if a.drainIdx >= 0 {
		e := st.bufs[ti][a.drainIdx]
		st.mem[e.addr] = e.val
		st.bufs[ti] = append(st.bufs[ti][:a.drainIdx], st.bufs[ti][a.drainIdx+1:]...)
		return
	}
	op := b.prog.Threads[ti].Ops[st.pc[ti]]
	regs := st.regs[ti]
	switch o := op.(type) {
	case LoadOp:
		if v, ok := forward(st.bufs[ti], o.Addr); ok {
			regs[o.Dst] = v // store-to-load forwarding from own buffer
		} else {
			regs[o.Dst] = st.mem[o.Addr]
		}
	case StoreOp:
		st.bufs[ti] = append(st.bufs[ti], sbEntry{addr: o.Addr, val: evalOperand(regs, o.Src)})
	case AddOp:
		regs[o.Dst] = evalOperand(regs, o.A) + evalOperand(regs, o.B)
	case FenceOp:
		// Buffer already empty (enabledness condition).
	case RMWAddOp:
		old := st.mem[o.Addr]
		regs[o.Dst] = old
		st.mem[o.Addr] = old + o.Delta
	}
	st.pc[ti]++
}

// RunRandom executes to completion with uniform random scheduling.
func (b *BufferedSim) RunRandom(src *rng.Source) (Outcome, error) {
	if src == nil {
		return Outcome{}, fmt.Errorf("%w: nil rng source", ErrBadProgram)
	}
	st := newBufState(b.prog)
	steps := 0
	for !st.done(b.prog) {
		actions := b.enabled(st)
		if len(actions) == 0 {
			return Outcome{}, fmt.Errorf("%w: after %d steps", ErrStuck, steps)
		}
		b.exec(st, actions[src.Intn(len(actions))])
		steps++
	}
	return st.outcome(), nil
}

// ExploreBuffered enumerates every reachable final outcome under the
// store-buffer semantics.
func ExploreBuffered(p Program, model memmodel.Model, cfg ExploreConfig) (map[string]Outcome, error) {
	b, err := NewBufferedSim(p, model)
	if err != nil {
		return nil, err
	}
	maxStates := cfg.MaxStates
	if maxStates == 0 {
		maxStates = 1 << 20
	}
	outcomes := make(map[string]Outcome)
	visited := make(map[string]bool)
	var dfs func(st *bufState) error
	dfs = func(st *bufState) error {
		key := st.key()
		if visited[key] {
			return nil
		}
		if len(visited) >= maxStates {
			return fmt.Errorf("%w: visited %d states", ErrTooLarge, len(visited))
		}
		visited[key] = true
		if st.done(p) {
			o := st.outcome()
			outcomes[o.Key()] = o
			return nil
		}
		actions := b.enabled(st)
		if len(actions) == 0 {
			return fmt.Errorf("%w: state %s", ErrStuck, key)
		}
		for _, a := range actions {
			next := st.clone()
			b.exec(next, a)
			if err := dfs(next); err != nil {
				return err
			}
		}
		return nil
	}
	if err := dfs(newBufState(p)); err != nil {
		return nil, err
	}
	return outcomes, nil
}
