package machine

import (
	"errors"
	"testing"

	"memreliability/internal/memmodel"
	"memreliability/internal/rng"
)

// sbProgram is the store-buffering litmus shape: the canonical TSO witness.
func sbProgram() Program {
	return Program{
		Threads: []Thread{
			{Name: "T0", Ops: []Op{StoreOp{Addr: "x", Src: Imm(1)}, LoadOp{Addr: "y", Dst: "r1"}}},
			{Name: "T1", Ops: []Op{StoreOp{Addr: "y", Src: Imm(1)}, LoadOp{Addr: "x", Dst: "r2"}}},
		},
		Init: map[string]int{"x": 0, "y": 0},
	}
}

// incProgram is the §2.2 canonical atomicity violation.
func incProgram() Program {
	thread := func() Thread {
		return Thread{Ops: []Op{
			LoadOp{Addr: "x", Dst: "r"},
			AddOp{Dst: "r", A: Reg("r"), B: Imm(1)},
			StoreOp{Addr: "x", Src: Reg("r")},
		}}
	}
	return Program{Threads: []Thread{thread(), thread()}, Init: map[string]int{"x": 0}}
}

func TestValidate(t *testing.T) {
	if err := (Program{}).Validate(); !errors.Is(err, ErrBadProgram) {
		t.Error("empty program accepted")
	}
	if err := (Program{Threads: []Thread{{}}}).Validate(); !errors.Is(err, ErrBadProgram) {
		t.Error("empty thread accepted")
	}
	bad := Program{Threads: []Thread{{Ops: []Op{LoadOp{}}}}}
	if err := bad.Validate(); !errors.Is(err, ErrBadProgram) {
		t.Error("incomplete load accepted")
	}
	badFence := Program{Threads: []Thread{{Ops: []Op{FenceOp{Kind: memmodel.Load}}}}}
	if err := badFence.Validate(); !errors.Is(err, ErrBadProgram) {
		t.Error("non-fence fence kind accepted")
	}
	if err := sbProgram().Validate(); err != nil {
		t.Errorf("SB program rejected: %v", err)
	}
}

func TestSCInterleavingOnly(t *testing.T) {
	// Under SC only the next instruction of each thread is enabled.
	sim, err := NewSim(sbProgram(), memmodel.SC())
	if err != nil {
		t.Fatal(err)
	}
	enabled := sim.Enabled()
	if len(enabled) != 2 {
		t.Fatalf("SC initial enabled = %v", enabled)
	}
	for _, a := range enabled {
		if a.Op != 0 {
			t.Errorf("SC enabled non-first op: %+v", a)
		}
	}
}

func TestTSOEnablesLoadBypass(t *testing.T) {
	// Under TSO the load may execute before the unexecuted store.
	sim, err := NewSim(sbProgram(), memmodel.TSO())
	if err != nil {
		t.Fatal(err)
	}
	enabled := sim.Enabled()
	want := map[Action]bool{
		{0, 0}: true, {0, 1}: true, {1, 0}: true, {1, 1}: true,
	}
	if len(enabled) != 4 {
		t.Fatalf("TSO enabled = %v", enabled)
	}
	for _, a := range enabled {
		if !want[a] {
			t.Errorf("unexpected enabled action %+v", a)
		}
	}
}

func TestExploreSBOutcomes(t *testing.T) {
	// SB relaxed outcome (r1=0 ∧ r2=0) is forbidden under SC, allowed
	// under TSO, PSO, WO.
	for _, tc := range []struct {
		model   memmodel.Model
		relaxed bool
	}{
		{memmodel.SC(), false},
		{memmodel.TSO(), true},
		{memmodel.PSO(), true},
		{memmodel.WO(), true},
	} {
		outcomes, err := Explore(sbProgram(), tc.model, ExploreConfig{})
		if err != nil {
			t.Fatalf("%s: %v", tc.model.Name(), err)
		}
		found := false
		for _, o := range outcomes {
			r1, err := o.Lookup("t0:r1")
			if err != nil {
				t.Fatal(err)
			}
			r2, err := o.Lookup("t1:r2")
			if err != nil {
				t.Fatal(err)
			}
			if r1 == 0 && r2 == 0 {
				found = true
			}
		}
		if found != tc.relaxed {
			t.Errorf("%s: SB relaxed outcome reachable = %v, want %v",
				tc.model.Name(), found, tc.relaxed)
		}
	}
}

func TestExploreSCOutcomesAreSubset(t *testing.T) {
	// Every SC outcome must be reachable under every weaker model.
	scOutcomes, err := Explore(sbProgram(), memmodel.SC(), ExploreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range []memmodel.Model{memmodel.TSO(), memmodel.PSO(), memmodel.WO()} {
		weak, err := Explore(sbProgram(), model, ExploreConfig{})
		if err != nil {
			t.Fatal(err)
		}
		for key := range scOutcomes {
			if _, ok := weak[key]; !ok {
				t.Errorf("%s missing SC outcome %s", model.Name(), key)
			}
		}
		if len(weak) < len(scOutcomes) {
			t.Errorf("%s has fewer outcomes than SC", model.Name())
		}
	}
}

func TestIncrementRaceManifestsEverywhere(t *testing.T) {
	// x=1 (the §2.2 bug) is reachable under every model, including SC;
	// x=2 (the intended result) likewise. x must be one of {1, 2}.
	for _, model := range memmodel.All() {
		outcomes, err := Explore(incProgram(), model, ExploreConfig{})
		if err != nil {
			t.Fatalf("%s: %v", model.Name(), err)
		}
		seen := map[int]bool{}
		for _, o := range outcomes {
			x, err := o.Lookup("x")
			if err != nil {
				t.Fatal(err)
			}
			seen[x] = true
			if x != 1 && x != 2 {
				t.Errorf("%s: impossible final x=%d", model.Name(), x)
			}
		}
		if !seen[1] || !seen[2] {
			t.Errorf("%s: outcome coverage %v, want both 1 and 2", model.Name(), seen)
		}
	}
}

func TestRMWFixesIncrementRace(t *testing.T) {
	// Replacing the load-add-store with an atomic RMW removes x=1 in every
	// model.
	fixed := Program{
		Threads: []Thread{
			{Ops: []Op{RMWAddOp{Addr: "x", Dst: "r", Delta: 1}}},
			{Ops: []Op{RMWAddOp{Addr: "x", Dst: "r", Delta: 1}}},
		},
		Init: map[string]int{"x": 0},
	}
	for _, model := range memmodel.All() {
		outcomes, err := Explore(fixed, model, ExploreConfig{})
		if err != nil {
			t.Fatalf("%s: %v", model.Name(), err)
		}
		for _, o := range outcomes {
			x, err := o.Lookup("x")
			if err != nil {
				t.Fatal(err)
			}
			if x != 2 {
				t.Errorf("%s: atomic increments gave x=%d", model.Name(), x)
			}
		}
	}
}

func TestFencesRestoreSCForSB(t *testing.T) {
	// ST x=1; FENCE; LD y — full fences between the store and load forbid
	// the relaxed SB outcome even under WO.
	fenced := Program{
		Threads: []Thread{
			{Ops: []Op{StoreOp{Addr: "x", Src: Imm(1)}, FenceOp{Kind: memmodel.FenceFull}, LoadOp{Addr: "y", Dst: "r1"}}},
			{Ops: []Op{StoreOp{Addr: "y", Src: Imm(1)}, FenceOp{Kind: memmodel.FenceFull}, LoadOp{Addr: "x", Dst: "r2"}}},
		},
		Init: map[string]int{"x": 0, "y": 0},
	}
	outcomes, err := Explore(fenced, memmodel.WO(), ExploreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range outcomes {
		r1, err := o.Lookup("t0:r1")
		if err != nil {
			t.Fatal(err)
		}
		r2, err := o.Lookup("t1:r2")
		if err != nil {
			t.Fatal(err)
		}
		if r1 == 0 && r2 == 0 {
			t.Error("full fences failed to forbid SB relaxed outcome under WO")
		}
	}
}

func TestAcquireReleaseOneWay(t *testing.T) {
	// Under WO: LD y may bypass an earlier REL fence ("into the critical
	// section") but not an earlier ACQ fence.
	mk := func(kind memmodel.OpType) Program {
		return Program{
			Threads: []Thread{
				{Ops: []Op{FenceOp{Kind: kind}, LoadOp{Addr: "y", Dst: "r1"}}},
			},
			Init: map[string]int{"y": 0},
		}
	}
	simRel, err := NewSim(mk(memmodel.FenceRelease), memmodel.WO())
	if err != nil {
		t.Fatal(err)
	}
	relEnabled := simRel.Enabled()
	if len(relEnabled) != 2 {
		t.Errorf("release: enabled = %v, want fence and load", relEnabled)
	}
	simAcq, err := NewSim(mk(memmodel.FenceAcquire), memmodel.WO())
	if err != nil {
		t.Fatal(err)
	}
	acqEnabled := simAcq.Enabled()
	if len(acqEnabled) != 1 || acqEnabled[0].Op != 0 {
		t.Errorf("acquire: enabled = %v, want fence only", acqEnabled)
	}
}

func TestRegisterDependenciesBlock(t *testing.T) {
	// Under WO, a store of r may not bypass the load producing r.
	p := Program{
		Threads: []Thread{
			{Ops: []Op{LoadOp{Addr: "x", Dst: "r"}, StoreOp{Addr: "y", Src: Reg("r")}}},
		},
		Init: map[string]int{"x": 7, "y": 0},
	}
	sim, err := NewSim(p, memmodel.WO())
	if err != nil {
		t.Fatal(err)
	}
	enabled := sim.Enabled()
	if len(enabled) != 1 || enabled[0].Op != 0 {
		t.Errorf("dependent store enabled early: %v", enabled)
	}
	outcomes, err := Explore(p, memmodel.WO(), ExploreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 1 {
		t.Fatalf("got %d outcomes", len(outcomes))
	}
	for _, o := range outcomes {
		y, err := o.Lookup("y")
		if err != nil {
			t.Fatal(err)
		}
		if y != 7 {
			t.Errorf("y = %d, want 7", y)
		}
	}
}

func TestStepRejectsDisabled(t *testing.T) {
	sim, err := NewSim(sbProgram(), memmodel.SC())
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Step(Action{Thread: 0, Op: 1}); !errors.Is(err, ErrBadProgram) {
		t.Error("disabled action accepted under SC")
	}
	if err := sim.Step(Action{Thread: 0, Op: 0}); err != nil {
		t.Fatal(err)
	}
	if sim.Outcome().Mem["x"] != 1 {
		t.Error("store did not commit")
	}
}

func TestRunRandomCompletes(t *testing.T) {
	src := rng.New(1)
	for _, model := range memmodel.All() {
		sim, err := NewSim(incProgram(), model)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 100; trial++ {
			o, seq, err := sim.RunRandom(src)
			if err != nil {
				t.Fatalf("%s: %v", model.Name(), err)
			}
			if len(seq) != 6 {
				t.Fatalf("%s: %d actions", model.Name(), len(seq))
			}
			x, err := o.Lookup("x")
			if err != nil {
				t.Fatal(err)
			}
			if x != 1 && x != 2 {
				t.Fatalf("%s: x = %d", model.Name(), x)
			}
		}
	}
}

func TestRunRandomBugFrequencyOrdering(t *testing.T) {
	// Operational shape check (E12): with a uniform random scheduler, the
	// §2.2 bug manifests at least as often under WO as under SC, because
	// reordering can only widen the LD→ST window.
	src := rng.New(2)
	freq := func(model memmodel.Model) float64 {
		sim, err := NewSim(incProgram(), model)
		if err != nil {
			t.Fatal(err)
		}
		const trials = 30000
		bugs := 0
		for i := 0; i < trials; i++ {
			o, _, err := sim.RunRandom(src)
			if err != nil {
				t.Fatal(err)
			}
			x, err := o.Lookup("x")
			if err != nil {
				t.Fatal(err)
			}
			if x == 1 {
				bugs++
			}
		}
		return float64(bugs) / trials
	}
	sc := freq(memmodel.SC())
	wo := freq(memmodel.WO())
	if sc <= 0 {
		t.Error("SC never manifested the bug (it must: the race is an interleaving bug)")
	}
	if wo < sc-0.02 {
		t.Errorf("WO bug frequency %v well below SC %v", wo, sc)
	}
}

func TestExploreStateLimit(t *testing.T) {
	_, err := Explore(incProgram(), memmodel.WO(), ExploreConfig{MaxStates: 3})
	if !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
}

func TestOutcomeKeyAndLookup(t *testing.T) {
	o := Outcome{
		Mem:  map[string]int{"x": 1, "y": 2},
		Regs: []map[string]int{{"r1": 3}},
	}
	if o.Key() != (Outcome{
		Mem:  map[string]int{"y": 2, "x": 1},
		Regs: []map[string]int{{"r1": 3}},
	}).Key() {
		t.Error("Key not canonical")
	}
	if v, err := o.Lookup("x"); err != nil || v != 1 {
		t.Errorf("Lookup(x) = %d, %v", v, err)
	}
	if v, err := o.Lookup("t0:r1"); err != nil || v != 3 {
		t.Errorf("Lookup(t0:r1) = %d, %v", v, err)
	}
	if _, err := o.Lookup("t9:r1"); !errors.Is(err, ErrBadProgram) {
		t.Error("out-of-range thread accepted")
	}
	if _, err := o.Lookup("tX"); !errors.Is(err, ErrBadProgram) {
		t.Error("malformed ref accepted")
	}
}

func TestOperandString(t *testing.T) {
	if Reg("r1").String() != "r1" || Imm(5).String() != "5" {
		t.Error("Operand.String wrong")
	}
	if (LoadOp{Addr: "x", Dst: "r"}).String() != "r = LD x" {
		t.Error("LoadOp.String wrong")
	}
}
