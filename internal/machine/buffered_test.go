package machine

import (
	"errors"
	"testing"

	"memreliability/internal/memmodel"
	"memreliability/internal/rng"
)

func TestNewBufferedSimValidation(t *testing.T) {
	if _, err := NewBufferedSim(sbProgram(), memmodel.SC()); !errors.Is(err, ErrBadProgram) {
		t.Error("SC buffered accepted")
	}
	if _, err := NewBufferedSim(sbProgram(), memmodel.WO()); !errors.Is(err, ErrBadProgram) {
		t.Error("WO buffered accepted")
	}
	if _, err := NewBufferedSim(sbProgram(), memmodel.TSO()); err != nil {
		t.Errorf("TSO buffered rejected: %v", err)
	}
	acqProg := Program{
		Threads: []Thread{{Ops: []Op{FenceOp{Kind: memmodel.FenceAcquire}}}},
	}
	if _, err := NewBufferedSim(acqProg, memmodel.TSO()); !errors.Is(err, ErrBadProgram) {
		t.Error("acquire fence accepted by buffered sim")
	}
}

func TestBufferedTSOAllowsSB(t *testing.T) {
	outcomes, err := ExploreBuffered(sbProgram(), memmodel.TSO(), ExploreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, o := range outcomes {
		r1, err := o.Lookup("t0:r1")
		if err != nil {
			t.Fatal(err)
		}
		r2, err := o.Lookup("t1:r2")
		if err != nil {
			t.Fatal(err)
		}
		if r1 == 0 && r2 == 0 {
			found = true
		}
	}
	if !found {
		t.Error("buffered TSO cannot reach the SB relaxed outcome")
	}
}

func TestStoreForwarding(t *testing.T) {
	// A thread must see its own buffered store: ST x=1; LD x → r must read
	// 1 even while the store is still buffered.
	p := Program{
		Threads: []Thread{
			{Ops: []Op{StoreOp{Addr: "x", Src: Imm(1)}, LoadOp{Addr: "x", Dst: "r"}}},
		},
		Init: map[string]int{"x": 0},
	}
	outcomes, err := ExploreBuffered(p, memmodel.TSO(), ExploreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range outcomes {
		r, err := o.Lookup("t0:r")
		if err != nil {
			t.Fatal(err)
		}
		if r != 1 {
			t.Errorf("forwarding failed: r = %d", r)
		}
	}
}

// litmusPrograms returns the fence-free litmus shapes used for the
// window-vs-buffer equivalence check.
func litmusPrograms() map[string]Program {
	return map[string]Program{
		"SB": sbProgram(),
		"MP": {
			Threads: []Thread{
				{Ops: []Op{StoreOp{Addr: "x", Src: Imm(1)}, StoreOp{Addr: "y", Src: Imm(1)}}},
				{Ops: []Op{LoadOp{Addr: "y", Dst: "r1"}, LoadOp{Addr: "x", Dst: "r2"}}},
			},
			Init: map[string]int{"x": 0, "y": 0},
		},
		"LB": {
			Threads: []Thread{
				{Ops: []Op{LoadOp{Addr: "x", Dst: "r1"}, StoreOp{Addr: "y", Src: Imm(1)}}},
				{Ops: []Op{LoadOp{Addr: "y", Dst: "r2"}, StoreOp{Addr: "x", Src: Imm(1)}}},
			},
			Init: map[string]int{"x": 0, "y": 0},
		},
		"2+2W": {
			Threads: []Thread{
				{Ops: []Op{StoreOp{Addr: "x", Src: Imm(1)}, StoreOp{Addr: "y", Src: Imm(2)}}},
				{Ops: []Op{StoreOp{Addr: "y", Src: Imm(1)}, StoreOp{Addr: "x", Src: Imm(2)}}},
			},
			Init: map[string]int{"x": 0, "y": 0},
		},
		"INC": incProgram(),
	}
}

func TestWindowAndBufferSemanticsAgree(t *testing.T) {
	// The central machine-level validation: for store-atomic programs the
	// reorder-window semantics and the store-buffer semantics must reach
	// exactly the same outcome sets under TSO and PSO.
	for name, p := range litmusPrograms() {
		for _, model := range []memmodel.Model{memmodel.TSO(), memmodel.PSO()} {
			window, err := Explore(p, model, ExploreConfig{})
			if err != nil {
				t.Fatalf("%s/%s window: %v", name, model.Name(), err)
			}
			buffered, err := ExploreBuffered(p, model, ExploreConfig{})
			if err != nil {
				t.Fatalf("%s/%s buffered: %v", name, model.Name(), err)
			}
			for key := range window {
				if _, ok := buffered[key]; !ok {
					t.Errorf("%s/%s: window outcome %s unreachable in buffered sim",
						name, model.Name(), key)
				}
			}
			for key := range buffered {
				if _, ok := window[key]; !ok {
					t.Errorf("%s/%s: buffered outcome %s unreachable in window sim",
						name, model.Name(), key)
				}
			}
		}
	}
}

func TestBufferedPSOReordersStores(t *testing.T) {
	// MP relaxed outcome (r1=1 ∧ r2=0) requires ST/ST reordering: buffered
	// PSO must reach it, buffered TSO must not.
	mp := litmusPrograms()["MP"]
	check := func(model memmodel.Model) bool {
		outcomes, err := ExploreBuffered(mp, model, ExploreConfig{})
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range outcomes {
			r1, err := o.Lookup("t1:r1")
			if err != nil {
				t.Fatal(err)
			}
			r2, err := o.Lookup("t1:r2")
			if err != nil {
				t.Fatal(err)
			}
			if r1 == 1 && r2 == 0 {
				return true
			}
		}
		return false
	}
	if check(memmodel.TSO()) {
		t.Error("buffered TSO reached MP relaxed outcome")
	}
	if !check(memmodel.PSO()) {
		t.Error("buffered PSO cannot reach MP relaxed outcome")
	}
}

func TestBufferedRunRandom(t *testing.T) {
	src := rng.New(5)
	b, err := NewBufferedSim(incProgram(), memmodel.TSO())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for trial := 0; trial < 2000; trial++ {
		o, err := b.RunRandom(src)
		if err != nil {
			t.Fatal(err)
		}
		x, err := o.Lookup("x")
		if err != nil {
			t.Fatal(err)
		}
		if x != 1 && x != 2 {
			t.Fatalf("x = %d", x)
		}
		seen[x] = true
	}
	if !seen[1] || !seen[2] {
		t.Errorf("outcome coverage %v", seen)
	}
}

func TestBufferedFullFenceDrains(t *testing.T) {
	fenced := Program{
		Threads: []Thread{
			{Ops: []Op{StoreOp{Addr: "x", Src: Imm(1)}, FenceOp{Kind: memmodel.FenceFull}, LoadOp{Addr: "y", Dst: "r1"}}},
			{Ops: []Op{StoreOp{Addr: "y", Src: Imm(1)}, FenceOp{Kind: memmodel.FenceFull}, LoadOp{Addr: "x", Dst: "r2"}}},
		},
		Init: map[string]int{"x": 0, "y": 0},
	}
	outcomes, err := ExploreBuffered(fenced, memmodel.TSO(), ExploreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range outcomes {
		r1, err := o.Lookup("t0:r1")
		if err != nil {
			t.Fatal(err)
		}
		r2, err := o.Lookup("t1:r2")
		if err != nil {
			t.Fatal(err)
		}
		if r1 == 0 && r2 == 0 {
			t.Error("fenced SB still reached relaxed outcome under buffered TSO")
		}
	}
}

func TestBufferedRMWDrainsAndIsAtomic(t *testing.T) {
	fixed := Program{
		Threads: []Thread{
			{Ops: []Op{StoreOp{Addr: "y", Src: Imm(1)}, RMWAddOp{Addr: "x", Dst: "r", Delta: 1}}},
			{Ops: []Op{RMWAddOp{Addr: "x", Dst: "r", Delta: 1}}},
		},
		Init: map[string]int{"x": 0, "y": 0},
	}
	outcomes, err := ExploreBuffered(fixed, memmodel.TSO(), ExploreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range outcomes {
		x, err := o.Lookup("x")
		if err != nil {
			t.Fatal(err)
		}
		if x != 2 {
			t.Errorf("atomic increments gave x = %d", x)
		}
	}
}
