// Package machine is an operational shared-memory multiprocessor
// simulator. It is the substrate the paper's abstract model corresponds
// to: real hardware exhibiting SC/TSO/PSO/WO reorderings is not
// controllable from portable Go (no fine-grained fence or reorder control),
// so we simulate the microarchitecture instead.
//
// The primary semantics is a per-thread *reorder window*: an instruction
// may execute when every earlier unexecuted instruction of its thread may
// be bypassed under the memory model's Table 1 matrix (exactly the
// memmodel.Relaxed relation the settling process uses), subject to
// same-address coherence and register data dependencies. Memory is
// store-atomic (a single shared copy), matching the paper's explicit
// decision to ignore store-atomicity effects (§2.1).
//
// An independent store-buffer semantics for TSO and PSO (SC execution plus
// FIFO or per-address write buffers) is provided in buffered.go; the litmus
// suite checks that the two semantics yield identical reachable-outcome
// sets, which is the classical equivalence for store-atomic machines.
package machine

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"memreliability/internal/memmodel"
	"memreliability/internal/rng"
)

// ErrBadProgram reports an invalid machine program.
var ErrBadProgram = errors.New("machine: bad program")

// ErrStuck reports an execution state with unexecuted instructions but no
// enabled action (impossible for well-formed programs; indicates a bug).
var ErrStuck = errors.New("machine: execution stuck")

// ErrTooLarge reports a state space beyond the explorer's configured limit.
var ErrTooLarge = errors.New("machine: state space too large")

// Operand is a register name or an immediate integer.
type Operand struct {
	reg   string
	imm   int
	isReg bool
}

// Reg returns a register operand.
func Reg(name string) Operand { return Operand{reg: name, isReg: true} }

// Imm returns an immediate operand.
func Imm(v int) Operand { return Operand{imm: v} }

// String renders the operand.
func (o Operand) String() string {
	if o.isReg {
		return o.reg
	}
	return fmt.Sprintf("%d", o.imm)
}

// Op is one machine instruction.
type Op interface {
	fmt.Stringer
	// opType classifies the op for the memory model's bypass matrix.
	// ALU ops return 0 (ordered by program order; see package doc).
	opType() memmodel.OpType
	// addr returns the memory address accessed, or "" for non-memory ops.
	addr() string
	// readRegs and writeReg expose register dependencies.
	readRegs() []string
	writeReg() string
}

// LoadOp reads Addr into register Dst.
type LoadOp struct {
	Addr string
	Dst  string
}

func (o LoadOp) String() string          { return fmt.Sprintf("%s = LD %s", o.Dst, o.Addr) }
func (o LoadOp) opType() memmodel.OpType { return memmodel.Load }
func (o LoadOp) addr() string            { return o.Addr }
func (o LoadOp) readRegs() []string      { return nil }
func (o LoadOp) writeReg() string        { return o.Dst }

// StoreOp writes Src (register or immediate) to Addr.
type StoreOp struct {
	Addr string
	Src  Operand
}

func (o StoreOp) String() string          { return fmt.Sprintf("ST %s = %s", o.Addr, o.Src) }
func (o StoreOp) opType() memmodel.OpType { return memmodel.Store }
func (o StoreOp) addr() string            { return o.Addr }
func (o StoreOp) readRegs() []string {
	if o.Src.isReg {
		return []string{o.Src.reg}
	}
	return nil
}
func (o StoreOp) writeReg() string { return "" }

// AddOp computes Dst = A + B over registers/immediates. ALU ops execute in
// program order in every model (their relative order is unobservable
// through memory, so this costs no generality and keeps state spaces
// small).
type AddOp struct {
	Dst  string
	A, B Operand
}

func (o AddOp) String() string          { return fmt.Sprintf("%s = %s + %s", o.Dst, o.A, o.B) }
func (o AddOp) opType() memmodel.OpType { return 0 }
func (o AddOp) addr() string            { return "" }
func (o AddOp) readRegs() []string {
	var regs []string
	if o.A.isReg {
		regs = append(regs, o.A.reg)
	}
	if o.B.isReg {
		regs = append(regs, o.B.reg)
	}
	return regs
}
func (o AddOp) writeReg() string { return o.Dst }

// FenceOp is a memory fence of the given kind (memmodel.FenceAcquire,
// FenceRelease, or FenceFull), with the same one-way-barrier semantics the
// settling process uses.
type FenceOp struct {
	Kind memmodel.OpType
}

func (o FenceOp) String() string          { return o.Kind.String() }
func (o FenceOp) opType() memmodel.OpType { return o.Kind }
func (o FenceOp) addr() string            { return "" }
func (o FenceOp) readRegs() []string      { return nil }
func (o FenceOp) writeReg() string        { return "" }

// RMWAddOp atomically reads Addr into Dst and writes Addr+Delta back. It
// executes only when all earlier instructions of its thread have executed
// and no later instruction bypasses it (full-fence ordering), the standard
// conservative semantics for atomic read-modify-write.
type RMWAddOp struct {
	Addr  string
	Dst   string
	Delta int
}

func (o RMWAddOp) String() string          { return fmt.Sprintf("%s = RMW %s += %d", o.Dst, o.Addr, o.Delta) }
func (o RMWAddOp) opType() memmodel.OpType { return memmodel.FenceFull }
func (o RMWAddOp) addr() string            { return o.Addr }
func (o RMWAddOp) readRegs() []string      { return nil }
func (o RMWAddOp) writeReg() string        { return o.Dst }

// Thread is one thread's instruction sequence.
type Thread struct {
	Name string
	Ops  []Op
}

// Program is a multiprocessor program: threads plus initial memory.
type Program struct {
	Threads []Thread
	Init    map[string]int
}

// Validate checks program well-formedness.
func (p Program) Validate() error {
	if len(p.Threads) == 0 {
		return fmt.Errorf("%w: no threads", ErrBadProgram)
	}
	for ti, th := range p.Threads {
		if len(th.Ops) == 0 {
			return fmt.Errorf("%w: thread %d empty", ErrBadProgram, ti)
		}
		for oi, op := range th.Ops {
			if op == nil {
				return fmt.Errorf("%w: thread %d op %d nil", ErrBadProgram, ti, oi)
			}
			if f, ok := op.(FenceOp); ok && !f.Kind.IsFence() {
				return fmt.Errorf("%w: thread %d op %d: fence kind %v", ErrBadProgram, ti, oi, f.Kind)
			}
			if l, ok := op.(LoadOp); ok && (l.Addr == "" || l.Dst == "") {
				return fmt.Errorf("%w: thread %d op %d: incomplete load", ErrBadProgram, ti, oi)
			}
			if s, ok := op.(StoreOp); ok && s.Addr == "" {
				return fmt.Errorf("%w: thread %d op %d: incomplete store", ErrBadProgram, ti, oi)
			}
		}
	}
	return nil
}

// Outcome is a final machine state: memory plus per-thread registers.
type Outcome struct {
	Mem  map[string]int
	Regs []map[string]int
}

// Key returns a canonical string for the outcome, usable as a map key.
func (o Outcome) Key() string {
	var sb strings.Builder
	writeSorted := func(m map[string]int) {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&sb, "%s=%d;", k, m[k])
		}
	}
	sb.WriteString("mem:")
	writeSorted(o.Mem)
	for ti, regs := range o.Regs {
		fmt.Fprintf(&sb, "|t%d:", ti)
		writeSorted(regs)
	}
	return sb.String()
}

// Lookup reads a value from the outcome by reference: "addr" reads memory,
// "t<i>:<reg>" reads thread i's register.
func (o Outcome) Lookup(ref string) (int, error) {
	if strings.HasPrefix(ref, "t") {
		var ti int
		var reg string
		if _, err := fmt.Sscanf(ref, "t%d:%s", &ti, &reg); err != nil {
			return 0, fmt.Errorf("%w: bad reference %q", ErrBadProgram, ref)
		}
		if ti < 0 || ti >= len(o.Regs) {
			return 0, fmt.Errorf("%w: thread %d out of range", ErrBadProgram, ti)
		}
		return o.Regs[ti][reg], nil
	}
	return o.Mem[ref], nil
}

// state is a full execution state.
type state struct {
	mem      map[string]int
	regs     []map[string]int
	executed [][]bool
}

func newState(p Program) *state {
	s := &state{
		mem:      make(map[string]int, len(p.Init)),
		regs:     make([]map[string]int, len(p.Threads)),
		executed: make([][]bool, len(p.Threads)),
	}
	for k, v := range p.Init {
		s.mem[k] = v
	}
	for ti, th := range p.Threads {
		s.regs[ti] = make(map[string]int)
		s.executed[ti] = make([]bool, len(th.Ops))
	}
	return s
}

func (s *state) clone() *state {
	c := &state{
		mem:      make(map[string]int, len(s.mem)),
		regs:     make([]map[string]int, len(s.regs)),
		executed: make([][]bool, len(s.executed)),
	}
	for k, v := range s.mem {
		c.mem[k] = v
	}
	for ti := range s.regs {
		c.regs[ti] = make(map[string]int, len(s.regs[ti]))
		for k, v := range s.regs[ti] {
			c.regs[ti][k] = v
		}
		c.executed[ti] = make([]bool, len(s.executed[ti]))
		copy(c.executed[ti], s.executed[ti])
	}
	return c
}

func (s *state) key() string {
	var sb strings.Builder
	keys := make([]string, 0, len(s.mem))
	for k := range s.mem {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&sb, "%s=%d;", k, s.mem[k])
	}
	for ti := range s.regs {
		fmt.Fprintf(&sb, "|t%d:", ti)
		rkeys := make([]string, 0, len(s.regs[ti]))
		for k := range s.regs[ti] {
			rkeys = append(rkeys, k)
		}
		sort.Strings(rkeys)
		for _, k := range rkeys {
			fmt.Fprintf(&sb, "%s=%d;", k, s.regs[ti][k])
		}
		sb.WriteByte(':')
		for _, e := range s.executed[ti] {
			if e {
				sb.WriteByte('1')
			} else {
				sb.WriteByte('0')
			}
		}
	}
	return sb.String()
}

func (s *state) done() bool {
	for ti := range s.executed {
		for _, e := range s.executed[ti] {
			if !e {
				return false
			}
		}
	}
	return true
}

func (s *state) outcome() Outcome {
	o := Outcome{
		Mem:  make(map[string]int, len(s.mem)),
		Regs: make([]map[string]int, len(s.regs)),
	}
	for k, v := range s.mem {
		o.Mem[k] = v
	}
	for ti := range s.regs {
		o.Regs[ti] = make(map[string]int, len(s.regs[ti]))
		for k, v := range s.regs[ti] {
			o.Regs[ti][k] = v
		}
	}
	return o
}

// Action identifies an executable instruction: thread index and op index.
type Action struct {
	Thread int
	Op     int
}

// Sim executes a program under a memory model with reorder-window
// semantics.
type Sim struct {
	prog  Program
	model memmodel.Model
	st    *state
}

// NewSim returns a fresh simulator for the program under the model.
func NewSim(p Program, model memmodel.Model) (*Sim, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if model.Name() == "" {
		return nil, fmt.Errorf("%w: zero-value model", ErrBadProgram)
	}
	return &Sim{prog: p, model: model, st: newState(p)}, nil
}

// Reset returns the simulator to the initial state.
func (s *Sim) Reset() { s.st = newState(s.prog) }

// Done reports whether every instruction has executed.
func (s *Sim) Done() bool { return s.st.done() }

// Outcome returns the current machine state as an Outcome.
func (s *Sim) Outcome() Outcome { return s.st.outcome() }

// Enabled returns the actions executable from the current state.
func (s *Sim) Enabled() []Action {
	return enabledActions(s.prog, s.model, s.st)
}

// enabledActions computes the enabled set: op i of thread t is enabled if
// unexecuted and every earlier unexecuted op j of the same thread may be
// bypassed:
//
//   - ALU ops (and bypassing ALU ops) follow program order;
//   - same-address memory operations never bypass (coherence, footnote 2);
//   - register dependencies (RAW, WAR, WAW) block;
//   - otherwise the memory model's Relaxed matrix decides, with fence
//     one-way-barrier semantics.
func enabledActions(p Program, model memmodel.Model, st *state) []Action {
	var actions []Action
	for ti, th := range p.Threads {
		for oi, op := range th.Ops {
			if st.executed[ti][oi] {
				continue
			}
			if canExecute(th, st.executed[ti], oi, op, model) {
				actions = append(actions, Action{Thread: ti, Op: oi})
			}
		}
	}
	return actions
}

func canExecute(th Thread, executed []bool, oi int, op Op, model memmodel.Model) bool {
	for j := 0; j < oi; j++ {
		if executed[j] {
			continue
		}
		if !mayBypass(th.Ops[j], op, model) {
			return false
		}
	}
	return true
}

// mayBypass reports whether a later instruction (moving) may execute before
// an earlier unexecuted instruction (prev) of the same thread.
func mayBypass(prev, moving Op, model memmodel.Model) bool {
	// ALU ops keep program order (unobservable through memory).
	if prev.opType() == 0 || moving.opType() == 0 {
		return false
	}
	// Coherence: same-address memory accesses stay ordered.
	if prev.addr() != "" && prev.addr() == moving.addr() {
		return false
	}
	// Register dependencies.
	if regsConflict(prev, moving) {
		return false
	}
	return model.Relaxed(prev.opType(), moving.opType())
}

func regsConflict(prev, moving Op) bool {
	if w := prev.writeReg(); w != "" {
		if moving.writeReg() == w {
			return true
		}
		for _, r := range moving.readRegs() {
			if r == w {
				return true
			}
		}
	}
	if w := moving.writeReg(); w != "" {
		for _, r := range prev.readRegs() {
			if r == w {
				return true
			}
		}
	}
	return false
}

// Step executes the given action. It returns an error if the action is not
// currently enabled.
func (s *Sim) Step(a Action) error {
	for _, e := range s.Enabled() {
		if e == a {
			execOp(s.prog, s.st, a)
			return nil
		}
	}
	return fmt.Errorf("%w: action %+v not enabled", ErrBadProgram, a)
}

func evalOperand(regs map[string]int, o Operand) int {
	if o.isReg {
		return regs[o.reg]
	}
	return o.imm
}

func execOp(p Program, st *state, a Action) {
	op := p.Threads[a.Thread].Ops[a.Op]
	regs := st.regs[a.Thread]
	switch o := op.(type) {
	case LoadOp:
		regs[o.Dst] = st.mem[o.Addr]
	case StoreOp:
		st.mem[o.Addr] = evalOperand(regs, o.Src)
	case AddOp:
		regs[o.Dst] = evalOperand(regs, o.A) + evalOperand(regs, o.B)
	case FenceOp:
		// No state change; ordering only.
	case RMWAddOp:
		old := st.mem[o.Addr]
		regs[o.Dst] = old
		st.mem[o.Addr] = old + o.Delta
	}
	st.executed[a.Thread][a.Op] = true
}

// RunRandom executes the program to completion choosing uniformly among
// enabled actions, and returns the final outcome. It also returns the
// committed action sequence (the global memory order) for trace analysis.
func (s *Sim) RunRandom(src *rng.Source) (Outcome, []Action, error) {
	if src == nil {
		return Outcome{}, nil, fmt.Errorf("%w: nil rng source", ErrBadProgram)
	}
	s.Reset()
	var seq []Action
	for !s.Done() {
		enabled := s.Enabled()
		if len(enabled) == 0 {
			return Outcome{}, nil, fmt.Errorf("%w: %d actions executed", ErrStuck, len(seq))
		}
		a := enabled[src.Intn(len(enabled))]
		execOp(s.prog, s.st, a)
		seq = append(seq, a)
	}
	return s.Outcome(), seq, nil
}

// ExploreConfig bounds exhaustive exploration.
type ExploreConfig struct {
	// MaxStates caps visited states; 0 means 1<<20.
	MaxStates int
}

// Explore enumerates every reachable final outcome of the program under
// the model by depth-first search over scheduler choices with state
// deduplication. Outcomes are keyed canonically.
func Explore(p Program, model memmodel.Model, cfg ExploreConfig) (map[string]Outcome, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if model.Name() == "" {
		return nil, fmt.Errorf("%w: zero-value model", ErrBadProgram)
	}
	maxStates := cfg.MaxStates
	if maxStates == 0 {
		maxStates = 1 << 20
	}
	outcomes := make(map[string]Outcome)
	visited := make(map[string]bool)
	var dfs func(st *state) error
	dfs = func(st *state) error {
		key := st.key()
		if visited[key] {
			return nil
		}
		if len(visited) >= maxStates {
			return fmt.Errorf("%w: visited %d states", ErrTooLarge, len(visited))
		}
		visited[key] = true
		if st.done() {
			o := st.outcome()
			outcomes[o.Key()] = o
			return nil
		}
		actions := enabledActions(p, model, st)
		if len(actions) == 0 {
			return fmt.Errorf("%w: state %s", ErrStuck, key)
		}
		for _, a := range actions {
			next := st.clone()
			execOp(p, next, a)
			if err := dfs(next); err != nil {
				return err
			}
		}
		return nil
	}
	if err := dfs(newState(p)); err != nil {
		return nil, err
	}
	return outcomes, nil
}
