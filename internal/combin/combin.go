// Package combin provides the exact combinatorics the paper's proofs rest
// on: binomial coefficients (the Ψ_µ distribution in Step 2 of Lemma 4.2),
// bounded partition counts φ(x, y, z) (Step 4, Claim 4.4), factorials and
// Stirling's approximation (Theorem 6.3), and permutation enumeration (the
// symmetric-group sum in Theorem 5.1).
package combin

import (
	"errors"
	"fmt"
	"math"
	"math/big"
	"sync"
)

// ErrOutOfDomain reports arguments outside a function's domain.
var ErrOutOfDomain = errors.New("combin: argument out of domain")

// Binomial returns C(n, k) as a float64. It returns 0 for k < 0 or k > n,
// matching the conventions used in the paper's sums. n must be ≥ 0.
func Binomial(n, k int) float64 {
	if n < 0 {
		return 0
	}
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	// Multiplicative formula keeps intermediate values small and exact for
	// the ranges the experiments use (n well below overflow territory).
	result := 1.0
	for i := 1; i <= k; i++ {
		result = result * float64(n-k+i) / float64(i)
	}
	return result
}

// BinomialBig returns C(n, k) exactly as a big.Int. It returns 0 for k < 0
// or k > n, and an error for n < 0.
func BinomialBig(n, k int) (*big.Int, error) {
	if n < 0 {
		return nil, fmt.Errorf("%w: BinomialBig(n=%d)", ErrOutOfDomain, n)
	}
	if k < 0 || k > n {
		return big.NewInt(0), nil
	}
	return new(big.Int).Binomial(int64(n), int64(k)), nil
}

// Factorial returns n! as a float64 (exact up to n = 22, then IEEE-rounded;
// +Inf past n = 170). n must be ≥ 0; negative n returns NaN.
func Factorial(n int) float64 {
	if n < 0 {
		return math.NaN()
	}
	result := 1.0
	for i := 2; i <= n; i++ {
		result *= float64(i)
	}
	return result
}

// LogFactorial returns ln(n!) without overflow, via direct summation for
// small n and the Stirling series for large n.
func LogFactorial(n int) float64 {
	if n < 0 {
		return math.NaN()
	}
	if n < 2 {
		return 0
	}
	if n < 256 {
		sum := 0.0
		for i := 2; i <= n; i++ {
			sum += math.Log(float64(i))
		}
		return sum
	}
	// Stirling series: ln n! = n ln n − n + ½ln(2πn) + 1/(12n) − 1/(360n³).
	x := float64(n)
	return x*math.Log(x) - x + 0.5*math.Log(2*math.Pi*x) +
		1/(12*x) - 1/(360*x*x*x)
}

// StirlingApprox returns the leading Stirling approximation √(2πn)(n/e)^n.
// The paper invokes it in the Theorem 6.3 proof to show n! = e^{n²·o(1)}.
func StirlingApprox(n int) float64 {
	if n <= 0 {
		return math.NaN()
	}
	x := float64(n)
	return math.Sqrt(2*math.Pi*x) * math.Pow(x/math.E, x)
}

// partitionKey indexes the memoized bounded-partition table.
type partitionKey struct{ x, y, z int }

var (
	partitionMu    sync.Mutex
	partitionCache = make(map[partitionKey]*big.Int)
)

// BoundedPartitions returns φ(x, y, z): the number of distinct multisets of
// exactly y positive integers summing to x, each integer at most z. This is
// the quantity Step 4 of the TSO proof (Claim 4.4) expresses Pr[Δ = δ] in
// terms of: φ(δ, q, µ) counts arrangements of q LDs below µ STs with total
// displacement δ.
//
// Results are memoized; the function is safe for concurrent use.
func BoundedPartitions(x, y, z int) (*big.Int, error) {
	if x < 0 || y < 0 || z < 0 {
		return nil, fmt.Errorf("%w: BoundedPartitions(%d, %d, %d)", ErrOutOfDomain, x, y, z)
	}
	return boundedPartitions(x, y, z), nil
}

// boundedPartitions implements the recurrence
//
//	φ(x, y, z) = φ(x−y, y, z−1) + φ(x−1, y−1, z)   [parts all ≥ 2 shifted down | one part = 1]
//
// split on whether the smallest part equals 1: removing a part equal to 1
// leaves φ(x−1, y−1, z); if all parts are ≥ 2, subtracting 1 from every part
// leaves y parts summing to x−y, each at most z−1.
func boundedPartitions(x, y, z int) *big.Int {
	switch {
	case y == 0:
		if x == 0 {
			return big.NewInt(1)
		}
		return big.NewInt(0)
	case x < y || x > y*z:
		// Too small for y positive parts, or too large for y parts ≤ z.
		return big.NewInt(0)
	}
	key := partitionKey{x, y, z}
	partitionMu.Lock()
	if v, ok := partitionCache[key]; ok {
		partitionMu.Unlock()
		return v
	}
	partitionMu.Unlock()

	result := new(big.Int).Add(
		boundedPartitions(x-y, y, z-1),
		boundedPartitions(x-1, y-1, z),
	)

	partitionMu.Lock()
	partitionCache[key] = result
	partitionMu.Unlock()
	return result
}

// BoundedPartitionsFloat returns φ(x, y, z) as a float64 for use inside
// probability sums.
func BoundedPartitionsFloat(x, y, z int) (float64, error) {
	v, err := BoundedPartitions(x, y, z)
	if err != nil {
		return 0, err
	}
	f, _ := new(big.Float).SetInt(v).Float64()
	return f, nil
}

// Permutations calls fn with every permutation of [0, n) using Heap's
// algorithm. The slice passed to fn is reused between calls; fn must not
// retain it. If fn returns false, enumeration stops early. n must be ≥ 0
// and small enough to enumerate (n ≤ 12 is enforced to prevent accidental
// factorial blowups; Theorem 5.1 sums need n ≤ 9).
func Permutations(n int, fn func(perm []int) bool) error {
	if n < 0 || n > 12 {
		return fmt.Errorf("%w: Permutations(n=%d), need 0 ≤ n ≤ 12", ErrOutOfDomain, n)
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	if n == 0 {
		fn(perm)
		return nil
	}
	// Heap's algorithm, iterative form.
	c := make([]int, n)
	if !fn(perm) {
		return nil
	}
	i := 0
	for i < n {
		if c[i] < i {
			if i%2 == 0 {
				perm[0], perm[i] = perm[i], perm[0]
			} else {
				perm[c[i]], perm[i] = perm[i], perm[c[i]]
			}
			if !fn(perm) {
				return nil
			}
			c[i]++
			i = 0
		} else {
			c[i] = 0
			i++
		}
	}
	return nil
}

// CompositionsWithLeadingStore counts the arrangements of y LDs and µ STs
// whose top instruction is a ST: C(µ+y−1, y). This is the normalizing count
// in the Ψ_µ distribution, Pr[Ψ_µ = q] = 2^-µ · 2^-q · C(µ+q−1, q).
func CompositionsWithLeadingStore(mu, y int) float64 {
	return Binomial(mu+y-1, y)
}
