package combin

import (
	"errors"
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

func TestBinomialTable(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{0, 0, 1}, {1, 0, 1}, {1, 1, 1}, {5, 2, 10}, {10, 5, 252},
		{20, 10, 184756}, {4, 5, 0}, {4, -1, 0}, {-1, 0, 0},
		{52, 5, 2598960},
	}
	for _, tc := range cases {
		if got := Binomial(tc.n, tc.k); got != tc.want {
			t.Errorf("Binomial(%d,%d) = %v, want %v", tc.n, tc.k, got, tc.want)
		}
	}
}

func TestBinomialSymmetry(t *testing.T) {
	f := func(n, k uint8) bool {
		nn := int(n % 40)
		kk := int(k % 40)
		return Binomial(nn, kk) == Binomial(nn, nn-kk) || kk > nn
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBinomialPascal(t *testing.T) {
	for n := 1; n < 30; n++ {
		for k := 1; k < n; k++ {
			lhs := Binomial(n, k)
			rhs := Binomial(n-1, k-1) + Binomial(n-1, k)
			if math.Abs(lhs-rhs) > 1e-6*math.Max(1, lhs) {
				t.Fatalf("Pascal fails at (%d,%d): %v vs %v", n, k, lhs, rhs)
			}
		}
	}
}

func TestBinomialBig(t *testing.T) {
	v, err := BinomialBig(100, 50)
	if err != nil {
		t.Fatal(err)
	}
	want, ok := new(big.Int).SetString("100891344545564193334812497256", 10)
	if !ok {
		t.Fatal("bad literal")
	}
	if v.Cmp(want) != 0 {
		t.Errorf("BinomialBig(100,50) = %v, want %v", v, want)
	}
	if z, err := BinomialBig(5, 9); err != nil || z.Sign() != 0 {
		t.Errorf("BinomialBig(5,9) = %v, %v", z, err)
	}
	if _, err := BinomialBig(-1, 0); !errors.Is(err, ErrOutOfDomain) {
		t.Errorf("BinomialBig(-1,0) err = %v", err)
	}
}

func TestFactorial(t *testing.T) {
	want := []float64{1, 1, 2, 6, 24, 120, 720, 5040}
	for n, w := range want {
		if got := Factorial(n); got != w {
			t.Errorf("Factorial(%d) = %v, want %v", n, got, w)
		}
	}
	if !math.IsNaN(Factorial(-1)) {
		t.Error("Factorial(-1) not NaN")
	}
}

func TestLogFactorialConsistency(t *testing.T) {
	for _, n := range []int{0, 1, 5, 20, 100, 255, 256, 1000, 10000} {
		got := LogFactorial(n)
		// Independent check: lgamma(n+1).
		want, _ := math.Lgamma(float64(n) + 1)
		if math.Abs(got-want) > 1e-8*math.Max(1, math.Abs(want)) {
			t.Errorf("LogFactorial(%d) = %v, want %v", n, got, want)
		}
	}
	if !math.IsNaN(LogFactorial(-3)) {
		t.Error("LogFactorial(-3) not NaN")
	}
}

func TestStirlingApprox(t *testing.T) {
	for _, n := range []int{1, 5, 10, 20} {
		ratio := StirlingApprox(n) / Factorial(n)
		// Stirling underestimates; ratio in (0.9, 1).
		if ratio <= 0.9 || ratio >= 1 {
			t.Errorf("Stirling(%d)/n! = %v out of (0.9, 1)", n, ratio)
		}
	}
	if !math.IsNaN(StirlingApprox(0)) {
		t.Error("StirlingApprox(0) not NaN")
	}
}

func TestBoundedPartitionsSmall(t *testing.T) {
	cases := []struct {
		x, y, z int
		want    int64
	}{
		// φ(x, y, z): multisets of y positive integers ≤ z summing to x.
		{0, 0, 0, 1},
		{1, 1, 1, 1},
		{2, 1, 1, 0},  // one part ≤ 1 cannot sum to 2
		{2, 2, 1, 1},  // 1+1
		{3, 2, 2, 1},  // 1+2
		{4, 2, 2, 1},  // 2+2
		{4, 2, 3, 2},  // 1+3, 2+2
		{5, 2, 4, 2},  // 1+4, 2+3
		{10, 3, 4, 2}, // 2+4+4, 3+3+4
	}
	for _, tc := range cases {
		got, err := BoundedPartitions(tc.x, tc.y, tc.z)
		if err != nil {
			t.Fatal(err)
		}
		if got.Int64() != tc.want {
			t.Errorf("φ(%d,%d,%d) = %v, want %d", tc.x, tc.y, tc.z, got, tc.want)
		}
		if bf := bruteForcePartitions(tc.x, tc.y, tc.z); got.Int64() != bf {
			t.Errorf("φ(%d,%d,%d) = %v, brute force %d", tc.x, tc.y, tc.z, got, bf)
		}
	}
}

// bruteForcePartitions counts multisets of y integers in [1,z] summing to x
// by enumerating non-decreasing sequences.
func bruteForcePartitions(x, y, z int) int64 {
	var count int64
	var recur func(remaining, parts, minPart int)
	recur = func(remaining, parts, minPart int) {
		if parts == 0 {
			if remaining == 0 {
				count++
			}
			return
		}
		for v := minPart; v <= z && v <= remaining; v++ {
			recur(remaining-v, parts-1, v)
		}
	}
	recur(x, y, 1)
	return count
}

func TestBoundedPartitionsAgainstBruteForce(t *testing.T) {
	for x := 0; x <= 18; x++ {
		for y := 0; y <= 6; y++ {
			for z := 0; z <= 6; z++ {
				got, err := BoundedPartitions(x, y, z)
				if err != nil {
					t.Fatal(err)
				}
				want := bruteForcePartitions(x, y, z)
				if got.Int64() != want {
					t.Fatalf("φ(%d,%d,%d) = %v, want %d", x, y, z, got, want)
				}
			}
		}
	}
}

func TestBoundedPartitionsPaperLowerBound(t *testing.T) {
	// Claim 4.4's key fact: φ(δ, q, µ) ≥ 1 whenever q ≤ δ ≤ µq.
	for q := 1; q <= 8; q++ {
		for mu := 1; mu <= 8; mu++ {
			for delta := q; delta <= mu*q; delta++ {
				v, err := BoundedPartitions(delta, q, mu)
				if err != nil {
					t.Fatal(err)
				}
				if v.Sign() < 1 {
					t.Fatalf("φ(%d,%d,%d) = %v < 1, contradicting Claim 4.4", delta, q, mu, v)
				}
			}
		}
	}
}

func TestBoundedPartitionsDomain(t *testing.T) {
	if _, err := BoundedPartitions(-1, 0, 0); !errors.Is(err, ErrOutOfDomain) {
		t.Error("negative x accepted")
	}
	if _, err := BoundedPartitions(0, -1, 0); !errors.Is(err, ErrOutOfDomain) {
		t.Error("negative y accepted")
	}
	if _, err := BoundedPartitions(0, 0, -1); !errors.Is(err, ErrOutOfDomain) {
		t.Error("negative z accepted")
	}
}

func TestBoundedPartitionsFloat(t *testing.T) {
	f, err := BoundedPartitionsFloat(10, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if f != float64(bruteForcePartitions(10, 3, 4)) {
		t.Errorf("float mismatch: %v", f)
	}
}

func TestPermutationsCountsFactorial(t *testing.T) {
	for n := 0; n <= 7; n++ {
		count := 0
		err := Permutations(n, func(p []int) bool {
			count++
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		want := int(Factorial(n))
		if n == 0 {
			want = 1
		}
		if count != want {
			t.Errorf("Permutations(%d) visited %d, want %d", n, count, want)
		}
	}
}

func TestPermutationsDistinct(t *testing.T) {
	seen := make(map[string]bool)
	err := Permutations(5, func(p []int) bool {
		key := ""
		for _, v := range p {
			key += string(rune('0' + v))
		}
		if seen[key] {
			t.Fatalf("duplicate permutation %s", key)
		}
		seen[key] = true
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 120 {
		t.Fatalf("saw %d distinct permutations, want 120", len(seen))
	}
}

func TestPermutationsEarlyStop(t *testing.T) {
	count := 0
	err := Permutations(6, func(p []int) bool {
		count++
		return count < 10
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Errorf("early stop visited %d, want 10", count)
	}
}

func TestPermutationsDomain(t *testing.T) {
	if err := Permutations(13, func([]int) bool { return true }); !errors.Is(err, ErrOutOfDomain) {
		t.Error("n=13 accepted")
	}
	if err := Permutations(-1, func([]int) bool { return true }); !errors.Is(err, ErrOutOfDomain) {
		t.Error("n=-1 accepted")
	}
}

func TestCompositionsWithLeadingStore(t *testing.T) {
	// Strings of µ STs and q LDs whose first symbol is ST: choose positions
	// of the q LDs among the remaining µ+q−1 slots.
	for mu := 1; mu <= 6; mu++ {
		for q := 0; q <= 6; q++ {
			got := CompositionsWithLeadingStore(mu, q)
			want := Binomial(mu+q-1, q)
			if got != want {
				t.Errorf("CompositionsWithLeadingStore(%d,%d) = %v, want %v", mu, q, got, want)
			}
			// Cross-check by brute force enumeration of binary strings.
			count := 0
			total := mu + q
			for mask := 0; mask < 1<<uint(total); mask++ {
				ones := 0
				for b := 0; b < total; b++ {
					if mask&(1<<uint(b)) != 0 {
						ones++
					}
				}
				// bit set = LD; first symbol (bit 0) must be ST.
				if ones == q && mask&1 == 0 {
					count++
				}
			}
			if float64(count) != got {
				t.Errorf("brute force (%d,%d) = %d, formula %v", mu, q, count, got)
			}
		}
	}
}

func BenchmarkBoundedPartitions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := BoundedPartitions(60, 10, 12); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPermutations8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		count := 0
		if err := Permutations(8, func(p []int) bool { count++; return true }); err != nil {
			b.Fatal(err)
		}
	}
}
