package mc

import (
	"context"
	"fmt"
	"math"
	"strconv"

	"memreliability/internal/obs"
	"memreliability/internal/stats"
)

// StopReason records why an adaptive run stopped sampling.
type StopReason string

const (
	// StopConverged means every requested precision target was met.
	StopConverged StopReason = "converged"
	// StopBudget means MaxTrials ran out before the targets were met.
	// Callers must surface this: a budget-capped estimate has NOT reached
	// the requested precision.
	StopBudget StopReason = "budget"
)

// AdaptiveConfig controls an adaptive-precision Monte Carlo run: sampling
// proceeds in deterministic chunk-aligned rounds until the confidence
// interval meets every requested target (absolute half-width and/or
// relative error), or the trial budget cap is exhausted.
//
// Reproducibility matches the fixed-trials harness exactly: the chunk
// plan is the fixed plan for MaxTrials, rounds consume whole chunks in
// order, and the stopping rule is evaluated only at round barriers over
// counts merged in chunk order. Trials-consumed — and therefore the
// result — is a pure function of (Seed, targets, MaxTrials) and never
// depends on Workers. An adaptive run that exhausts its budget is
// bit-identical to a fixed run with Trials = MaxTrials on the same Seed.
type AdaptiveConfig struct {
	// MaxTrials is the hard trial budget cap. Must be positive.
	MaxTrials int
	// Workers is the number of parallel workers; 0 means GOMAXPROCS.
	// Workers is pure scheduling and never affects results.
	Workers int
	// Seed is the experiment seed, interpreted exactly as Config.Seed.
	Seed uint64
	// TargetHalfWidth, when positive, requires the interval half-width to
	// shrink to at most this absolute value. +Inf is permitted (the
	// target is then trivially met) so callers can rescale targets across
	// domains without special-casing underflow.
	TargetHalfWidth float64
	// TargetRelErr, when positive, requires half-width ≤ TargetRelErr ×
	// |estimate|. A zero estimate never satisfies a relative target, so
	// deep-tail runs that sample no successes report StopBudget instead
	// of silently "converging" on an empty interval.
	TargetRelErr float64
	// Confidence is the level of the stopping interval (and of the Wilson
	// interval reported by the result). Must be in (0, 1).
	Confidence float64
}

// validate checks the adaptive configuration. NaN targets fail the
// positive-form range checks; +Inf is allowed (see AdaptiveConfig).
func (c AdaptiveConfig) validate() error {
	if c.MaxTrials <= 0 {
		return fmt.Errorf("%w: max trials=%d", ErrBadConfig, c.MaxTrials)
	}
	if c.Workers < 0 {
		return fmt.Errorf("%w: workers=%d", ErrBadConfig, c.Workers)
	}
	if !(c.Confidence > 0 && c.Confidence < 1) {
		return fmt.Errorf("%w: confidence %v not in (0,1)", ErrBadConfig, c.Confidence)
	}
	if !(c.TargetHalfWidth >= 0) {
		return fmt.Errorf("%w: target half-width %v", ErrBadConfig, c.TargetHalfWidth)
	}
	if !(c.TargetRelErr >= 0) || math.IsInf(c.TargetRelErr, 1) {
		return fmt.Errorf("%w: target relative error %v", ErrBadConfig, c.TargetRelErr)
	}
	if c.TargetHalfWidth == 0 && c.TargetRelErr == 0 {
		return fmt.Errorf("%w: adaptive run needs a half-width or relative-error target", ErrBadConfig)
	}
	return nil
}

// converged reports whether every requested target holds for the given
// half-width and point estimate.
func (c AdaptiveConfig) converged(half, estimate float64) bool {
	if c.TargetHalfWidth > 0 && !(half <= c.TargetHalfWidth) {
		return false
	}
	if c.TargetRelErr > 0 && !(half <= c.TargetRelErr*math.Abs(estimate)) {
		return false
	}
	return true
}

// nextRound returns the chunk range [start, end) of the round following
// cumulative consumption of the first `start` chunks: rounds double the
// cumulative chunk count (1, 2, 4, 8, … chunks in total), capped at
// nChunks. The schedule is a pure function of nChunks, so every worker
// count replays the identical rounds.
func nextRound(start, nChunks int) (end int) {
	width := start
	if width == 0 {
		width = 1
	}
	end = start + width
	if end > nChunks {
		end = nChunks
	}
	return end
}

// AdaptiveResult is the outcome of an adaptive probability estimation.
type AdaptiveResult struct {
	Result
	// Rounds is the number of sampling rounds executed.
	Rounds int
	// StopReason records whether the targets were met (StopConverged) or
	// the budget ran out first (StopBudget).
	StopReason StopReason
}

// TrialsUsed returns the number of trials actually consumed.
func (r *AdaptiveResult) TrialsUsed() int { return r.Proportion.Trials() }

// EstimateAdaptive estimates an event probability to a requested
// precision: it runs the Trial function in deterministic chunk-aligned
// rounds, checking the Wilson interval at cfg.Confidence after each
// round, and stops as soon as every configured target is met or
// cfg.MaxTrials is exhausted. See AdaptiveConfig for the reproducibility
// contract. A canceled run returns ctx.Err() alongside partial results.
// It adapts the closure onto the bitset engine; see
// EstimateAdaptiveBits for the hot path.
func EstimateAdaptive(ctx context.Context, cfg AdaptiveConfig, trial Trial) (*AdaptiveResult, error) {
	if trial == nil {
		return nil, fmt.Errorf("%w: nil trial", ErrBadConfig)
	}
	return EstimateAdaptiveBits(ctx, cfg, BitsFromTrial(trial))
}

// EstimateAdaptiveBatch is EstimateAdaptive on the []bool batch
// interface, adapted onto the bitset engine exactly as
// EstimateProbabilityBatch is. Rounds, stopping, and the
// reproducibility contract are exactly EstimateAdaptive's, and results
// are bit-identical to it for the equivalent closure.
func EstimateAdaptiveBatch(ctx context.Context, cfg AdaptiveConfig, batch BatchTrial) (*AdaptiveResult, error) {
	if batch == nil {
		return nil, fmt.Errorf("%w: nil trial", ErrBadConfig)
	}
	return estimateAdaptive(ctx, cfg, boolScratch(batch))
}

// estimateAdaptive is the shared adaptive engine: deterministic
// chunk-aligned doubling rounds over the bitset chunk loop,
// parameterized only by the per-worker scratch factory.
func estimateAdaptive(ctx context.Context, cfg AdaptiveConfig, newScratch func() probScratch) (*AdaptiveResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	sources, quotas := chunkPlan(Config{Trials: cfg.MaxTrials, Seed: cfg.Seed})
	successes := make([]int, len(sources))
	trialsRun := make([]int, len(sources))

	mcRuns.Inc()
	mcRunWorkers.Observe(float64(effectiveWorkers(cfg.Workers, len(sources))))
	parent := obs.SpanFrom(ctx)

	result := &AdaptiveResult{}
	for start := 0; start < len(sources); {
		end := nextRound(start, len(sources))
		// One span per round: rounds are sequential barriers, so span
		// creation order — and the exported tree — is deterministic.
		round := parent.Child("mc.round",
			obs.L("round", strconv.Itoa(result.Rounds)),
			obs.L("chunks", strconv.Itoa(end-start)))
		runErr := runChunksWith(ctx, cfg.Workers, end-start, newScratch,
			func(ctx context.Context, j int, s probScratch) error {
				chunk := start + j
				n, err := runProbChunk(ctx, s.bits, sources[chunk], s.words, quotas[chunk])
				if err != nil {
					if err == ctx.Err() {
						return err
					}
					return fmt.Errorf("mc: trial failed in chunk %d: %w", chunk, err)
				}
				successes[chunk] = n
				trialsRun[chunk] = quotas[chunk]
				mcChunks.Inc()
				mcTrials.Add(int64(quotas[chunk]))
				return nil
			})
		round.End()
		for chunk := start; chunk < end; chunk++ {
			if err := result.Proportion.AddCounts(successes[chunk], trialsRun[chunk]); err != nil {
				return nil, err
			}
		}
		result.Rounds++
		mcAdaptiveRounds.Inc()
		if runErr != nil {
			return result, runErr
		}
		start = end

		lo, hi, err := result.Proportion.WilsonCI(cfg.Confidence)
		if err != nil {
			return result, err
		}
		if cfg.converged((hi-lo)/2, result.Proportion.Estimate()) {
			result.StopReason = StopConverged
			observeStop(StopConverged)
			return result, nil
		}
	}
	result.StopReason = StopBudget
	observeStop(StopBudget)
	return result, nil
}

// AdaptiveMeanResult is the outcome of an adaptive mean estimation.
type AdaptiveMeanResult struct {
	// Summary holds the merged observations, folded in chunk order (so
	// the bits never depend on the worker count).
	Summary stats.Summary
	// Rounds is the number of sampling rounds executed.
	Rounds int
	// StopReason records whether the targets were met or the budget ran
	// out first.
	StopReason StopReason
}

// TrialsUsed returns the number of trials actually consumed.
func (r *AdaptiveMeanResult) TrialsUsed() int { return r.Summary.N() }

// EstimateMeanAdaptive estimates the mean of a real-valued sampler to a
// requested precision, using the normal-approximation interval at
// cfg.Confidence (half-width z·StdErr) as the stopping rule. Rounds,
// merging, and the reproducibility contract are exactly those of
// EstimateAdaptive. It adapts the closure onto the batched engine; see
// EstimateMeanAdaptiveBatch for the hot path.
func EstimateMeanAdaptive(ctx context.Context, cfg AdaptiveConfig, sample MeanEstimator) (*AdaptiveMeanResult, error) {
	if sample == nil {
		return nil, fmt.Errorf("%w: nil sampler", ErrBadConfig)
	}
	return EstimateMeanAdaptiveBatch(ctx, cfg, BatchFromMean(sample))
}

// EstimateMeanAdaptiveBatch is EstimateMeanAdaptive on the batch
// interface, with EstimateAdaptiveBatch's zero-allocation steady-state
// chunk loop and bit-identical results to the closure route.
func EstimateMeanAdaptiveBatch(ctx context.Context, cfg AdaptiveConfig, batch BatchMean) (*AdaptiveMeanResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if batch == nil {
		return nil, fmt.Errorf("%w: nil sampler", ErrBadConfig)
	}
	sources, quotas := chunkPlan(Config{Trials: cfg.MaxTrials, Seed: cfg.Seed})
	sums := make([]stats.Summary, len(sources))

	mcRuns.Inc()
	mcRunWorkers.Observe(float64(effectiveWorkers(cfg.Workers, len(sources))))
	parent := obs.SpanFrom(ctx)

	result := &AdaptiveMeanResult{}
	for start := 0; start < len(sources); {
		end := nextRound(start, len(sources))
		round := parent.Child("mc.round",
			obs.L("round", strconv.Itoa(result.Rounds)),
			obs.L("chunks", strconv.Itoa(end-start)))
		runErr := runChunksWith(ctx, cfg.Workers, end-start, floatScratch,
			func(ctx context.Context, j int, out []float64) error {
				chunk := start + j
				if err := runMeanChunk(ctx, batch, sources[chunk], out[:quotas[chunk]], &sums[chunk]); err != nil {
					if err == ctx.Err() {
						return err
					}
					return fmt.Errorf("mc: sampler failed in chunk %d: %w", chunk, err)
				}
				mcChunks.Inc()
				mcTrials.Add(int64(quotas[chunk]))
				return nil
			})
		round.End()
		// Extending a left-to-right fold keeps the merge in chunk order,
		// so partial (error-path) and complete results alike are
		// bit-identical at any worker count.
		for chunk := start; chunk < end; chunk++ {
			result.Summary = stats.MergeSummaries(result.Summary, sums[chunk])
		}
		result.Rounds++
		mcAdaptiveRounds.Inc()
		if runErr != nil {
			return result, runErr
		}
		start = end

		lo, hi, err := result.Summary.MeanCI(cfg.Confidence)
		if err != nil {
			return result, err
		}
		if cfg.converged((hi-lo)/2, result.Summary.Mean()) {
			result.StopReason = StopConverged
			observeStop(StopConverged)
			return result, nil
		}
	}
	result.StopReason = StopBudget
	observeStop(StopBudget)
	return result, nil
}
