package mc

import (
	"runtime"

	"memreliability/internal/obs"
)

// Package-level metric handles, resolved once against the process-global
// registry. The chunk closures touch only these pre-resolved handles —
// one atomic add per chunk for the counter pair — so the bit-parallel
// hot path stays zero-steady-state-allocation (asserted by the
// mc-instrumented/chunk-8k perf scenario). Everything observed here is
// derived from the chunk plan and wall clock, never from experiment
// RNG, so instrumentation cannot perturb results.
var (
	mcRuns = obs.Default().Counter("mc_runs_total",
		"Monte Carlo runs started (fixed and adaptive).")
	mcChunks = obs.Default().Counter("mc_chunks_total",
		"Deterministic RNG-substream chunks executed.")
	mcTrials = obs.Default().Counter("mc_trials_total",
		"Trials executed across all runs.")
	mcTrialsPerSec = obs.Default().Gauge("mc_trials_per_sec",
		"Throughput of the most recent completed run, in trials per second.")
	mcRunWorkers = obs.Default().Histogram("mc_run_workers",
		"Effective worker count per run (after GOMAXPROCS default and chunk cap).",
		obs.LogBuckets(1, 2, 9))
	mcAdaptiveRounds = obs.Default().Counter("mc_adaptive_rounds_total",
		"Sampling rounds executed by adaptive runs.")
	mcAdaptiveStopConverged = obs.Default().Counter("mc_adaptive_stops_total",
		"Adaptive runs stopped by reason.", obs.L("reason", "converged"))
	mcAdaptiveStopBudget = obs.Default().Counter("mc_adaptive_stops_total",
		"Adaptive runs stopped by reason.", obs.L("reason", "budget"))
)

// effectiveWorkers mirrors runChunksWith's worker resolution for the
// worker-split histogram: 0 means GOMAXPROCS, then capped at the chunk
// count so idle workers are not reported.
func effectiveWorkers(workers, nChunks int) int {
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nChunks {
		workers = nChunks
	}
	return workers
}

// observeStop bumps the stop-reason counter for an adaptive run.
func observeStop(reason StopReason) {
	switch reason {
	case StopConverged:
		mcAdaptiveStopConverged.Inc()
	case StopBudget:
		mcAdaptiveStopBudget.Inc()
	}
}
