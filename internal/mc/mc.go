// Package mc is a parallel Monte Carlo harness. Every probability estimate
// in the benchmark suite — Pr[B_γ], Pr[A(γ̄)], Pr[A] — runs through it.
//
// The harness guarantees reproducibility under concurrency: trials are
// partitioned into fixed-size chunks, each chunk derives its own RNG
// substream from the experiment seed and its chunk index, and chunk
// results are merged in chunk order. An estimate therefore depends only
// on (seed, trials) — never on the worker count or goroutine scheduling.
package mc

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"memreliability/internal/rng"
	"memreliability/internal/stats"
)

// ErrBadConfig reports an invalid harness configuration.
var ErrBadConfig = errors.New("mc: bad config")

// chunkSize is the number of trials in one deterministic substream chunk.
// The chunk partition is part of the reproducibility contract: changing
// this constant changes the samples a given (seed, trials) run draws.
const chunkSize = 8192

// Trial is a single randomized experiment returning whether the event of
// interest occurred. Implementations must use only the provided Source for
// randomness and must be safe to call from one goroutine at a time.
type Trial func(src *rng.Source) (success bool, err error)

// Config controls a Monte Carlo run.
type Config struct {
	// Trials is the total number of trials to run. Must be positive.
	Trials int
	// Workers is the number of parallel workers; 0 means GOMAXPROCS.
	// Workers is pure scheduling and never affects results.
	Workers int
	// Seed is the experiment seed; every run with the same Seed, Trials,
	// and trial function produces identical counts at any worker count.
	Seed uint64
}

func (c Config) validate() error {
	if c.Trials <= 0 {
		return fmt.Errorf("%w: trials=%d", ErrBadConfig, c.Trials)
	}
	if c.Workers < 0 {
		return fmt.Errorf("%w: workers=%d", ErrBadConfig, c.Workers)
	}
	return nil
}

// chunkPlan derives the deterministic per-chunk RNG sources and trial
// quotas for a run: ⌈trials/chunkSize⌉ chunks, the last one short.
func chunkPlan(cfg Config) (sources []*rng.Source, quotas []int) {
	n := (cfg.Trials + chunkSize - 1) / chunkSize
	root := rng.New(cfg.Seed)
	sources = make([]*rng.Source, n)
	quotas = make([]int, n)
	for i := range sources {
		sources[i] = root.Split()
		quotas[i] = chunkSize
	}
	quotas[n-1] = cfg.Trials - chunkSize*(n-1)
	return sources, quotas
}

// runChunks executes fn(chunk) for every chunk index across a worker
// pool. The first failure cancels the remaining chunks; the returned
// error prefers a root-cause failure over the cancellations it induced.
func runChunks(ctx context.Context, workers, nChunks int, fn func(ctx context.Context, chunk int) error) error {
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nChunks {
		workers = nChunks
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	jobs := make(chan int)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for chunk := range jobs {
				if err := fn(runCtx, chunk); err != nil {
					errs[w] = err
					cancel()
					return
				}
			}
		}(w)
	}

feed:
	for chunk := 0; chunk < nChunks; chunk++ {
		select {
		case jobs <- chunk:
		case <-runCtx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if firstErr == nil || errors.Is(firstErr, context.Canceled) {
			firstErr = err
		}
	}
	if firstErr == nil && ctx.Err() != nil {
		// The parent context died before any chunk could report it.
		firstErr = ctx.Err()
	}
	return firstErr
}

// Result is the outcome of a Monte Carlo run.
type Result struct {
	Proportion stats.Proportion
}

// Estimate returns the point estimate of the event probability.
func (r *Result) Estimate() float64 { return r.Proportion.Estimate() }

// WilsonCI returns the Wilson interval at the given level.
func (r *Result) WilsonCI(level float64) (lo, hi float64, err error) {
	return r.Proportion.WilsonCI(level)
}

// EstimateProbability runs trials of the given Trial function in parallel
// and returns the aggregated proportion. The context cancels the run early;
// a canceled run returns ctx.Err() alongside partial results.
func EstimateProbability(ctx context.Context, cfg Config, trial Trial) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if trial == nil {
		return nil, fmt.Errorf("%w: nil trial", ErrBadConfig)
	}
	sources, quotas := chunkPlan(cfg)
	successes := make([]int, len(sources))
	trialsRun := make([]int, len(sources))

	runErr := runChunks(ctx, cfg.Workers, len(sources), func(ctx context.Context, chunk int) error {
		src := sources[chunk]
		for i := 0; i < quotas[chunk]; i++ {
			if i%1024 == 0 && ctx.Err() != nil {
				return ctx.Err()
			}
			ok, err := trial(src)
			if err != nil {
				return fmt.Errorf("mc: trial failed in chunk %d: %w", chunk, err)
			}
			trialsRun[chunk]++
			if ok {
				successes[chunk]++
			}
		}
		return nil
	})

	result := &Result{}
	for chunk := range sources {
		if err := result.Proportion.AddCounts(successes[chunk], trialsRun[chunk]); err != nil {
			return nil, err
		}
	}
	if runErr != nil {
		return result, runErr
	}
	return result, nil
}

// IntSampler is a randomized experiment producing a non-negative integer
// observation (e.g. a critical-window size).
type IntSampler func(src *rng.Source) (value int, err error)

// EstimateDistribution runs the sampler cfg.Trials times and histograms the
// observations into the given number of buckets (plus overflow).
func EstimateDistribution(ctx context.Context, cfg Config, buckets int, sample IntSampler) (*stats.Histogram, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if sample == nil {
		return nil, fmt.Errorf("%w: nil sampler", ErrBadConfig)
	}
	sources, quotas := chunkPlan(cfg)
	hists := make([]*stats.Histogram, len(sources))
	for chunk := range hists {
		h, err := stats.NewHistogram(buckets)
		if err != nil {
			return nil, fmt.Errorf("mc: %w", err)
		}
		hists[chunk] = h
	}

	err := runChunks(ctx, cfg.Workers, len(sources), func(ctx context.Context, chunk int) error {
		src := sources[chunk]
		for i := 0; i < quotas[chunk]; i++ {
			if i%1024 == 0 && ctx.Err() != nil {
				return ctx.Err()
			}
			v, err := sample(src)
			if err != nil {
				return fmt.Errorf("mc: sampler failed in chunk %d: %w", chunk, err)
			}
			if err := hists[chunk].Observe(v); err != nil {
				return fmt.Errorf("mc: chunk %d: %w", chunk, err)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	merged, err := stats.NewHistogram(buckets)
	if err != nil {
		return nil, fmt.Errorf("mc: %w", err)
	}
	for _, h := range hists {
		for b := 0; b < buckets; b++ {
			for i := 0; i < h.Count(b); i++ {
				if err := merged.Observe(b); err != nil {
					return nil, fmt.Errorf("mc: merge: %w", err)
				}
			}
		}
		for i := 0; i < h.Overflow(); i++ {
			if err := merged.Observe(buckets); err != nil {
				return nil, fmt.Errorf("mc: merge: %w", err)
			}
		}
	}
	return merged, nil
}

// MeanEstimator runs a real-valued sampler and returns an online Summary.
type MeanEstimator func(src *rng.Source) (value float64, err error)

// EstimateMean runs the sampler cfg.Trials times and returns summary
// statistics of the observations. Chunk summaries are merged in chunk
// order, so the result is bit-identical at any worker count even though
// summary merging is not floating-point associative.
func EstimateMean(ctx context.Context, cfg Config, sample MeanEstimator) (*stats.Summary, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if sample == nil {
		return nil, fmt.Errorf("%w: nil sampler", ErrBadConfig)
	}
	sources, quotas := chunkPlan(cfg)
	sums := make([]stats.Summary, len(sources))

	err := runChunks(ctx, cfg.Workers, len(sources), func(ctx context.Context, chunk int) error {
		src := sources[chunk]
		for i := 0; i < quotas[chunk]; i++ {
			if i%1024 == 0 && ctx.Err() != nil {
				return ctx.Err()
			}
			v, err := sample(src)
			if err != nil {
				return fmt.Errorf("mc: sampler failed in chunk %d: %w", chunk, err)
			}
			sums[chunk].Add(v)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	var merged stats.Summary
	for _, s := range sums {
		merged = stats.MergeSummaries(merged, s)
	}
	return &merged, nil
}
