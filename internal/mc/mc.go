// Package mc is a parallel Monte Carlo harness. Every probability estimate
// in the benchmark suite — Pr[B_γ], Pr[A(γ̄)], Pr[A] — runs through it.
//
// The harness guarantees reproducibility under concurrency: trials are
// partitioned into fixed-size chunks, each chunk derives its own RNG
// substream from the experiment seed and its chunk index, and chunk
// results are merged in chunk order. An estimate therefore depends only
// on (seed, trials) — never on the worker count or goroutine scheduling.
//
// # The bit-parallel hot path
//
// Boolean trials can be driven three ways, all bit-identical. The
// canonical contract is the bitset interface (BatchTrialBits,
// EstimateProbabilityBits): the harness hands an implementation a whole
// chunk's reusable []uint64 buffer and the chunk's RNG substream, the
// implementation packs 64 trial outcomes into each word (LSB-first; see
// BatchTrialBits for the partial-word contract), and the engine counts
// successes with bits.OnesCount64 — so the per-trial call, scheduling,
// and counting overhead all collapse to a fraction of a word operation,
// and the steady-state chunk loop performs zero allocations (per-worker
// scratch is reused across chunks; per-chunk result slots are
// preallocated). The []bool batch interface (BatchTrial,
// EstimateProbabilityBatch) is a documented adapter over the bitset
// engine — each worker fills a private bool buffer and packs it — kept
// as the reference implementation for property tests and for trials
// that are more natural to express boolean-at-a-time. The per-trial
// closures (Trial, EstimateProbability) adapt likewise. All three
// routes consume the RNG substreams identically, so their runs are
// bit-identical: same chunk plan, same substream derivation, same
// counts. Real-valued sampling (BatchMean, EstimateMeanBatch) keeps the
// PR 5 []float64 chunk engine — there is no bitset analog for floats.
package mc

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"time"

	"memreliability/internal/obs"
	"memreliability/internal/rng"
	"memreliability/internal/stats"
)

// ErrBadConfig reports an invalid harness configuration.
var ErrBadConfig = errors.New("mc: bad config")

// chunkSize is the number of trials in one deterministic substream chunk.
// The chunk partition is part of the reproducibility contract: changing
// this constant changes the samples a given (seed, trials) run draws.
const chunkSize = 8192

// Trial is a single randomized experiment returning whether the event of
// interest occurred. Implementations must use only the provided Source for
// randomness and must be safe to call from one goroutine at a time.
type Trial func(src *rng.Source) (success bool, err error)

// BatchTrial evaluates len(out) consecutive trials on src, recording the
// i-th trial's success in out[i]. It is the []bool form of the batch
// contract: the harness calls it once per chunk with a reusable buffer,
// so implementations amortize per-trial setup (validation, option
// construction, scratch buffers) over the whole chunk. An implementation
// must consume src exactly as len(out) sequential Trial calls would, so
// batch and closure runs stay bit-identical; distinct calls receive
// distinct sources and may run concurrently, so any state shared between
// calls must be immutable.
//
// BatchTrialBits is the canonical contract; the engine runs []bool
// batches through a per-worker pack-to-bitset adapter with identical
// results (a packed buffer has exactly as many set bits as the bool
// buffer has trues). Prefer BatchTrialBits for new hot paths; implement
// BatchTrial when boolean-at-a-time output is more natural — it is a
// supported adapter, not a deprecated one, and doubles as the reference
// implementation the bitset property tests are gated on.
type BatchTrial func(src *rng.Source, out []bool) error

// BatchFromTrial adapts a per-trial closure to the batch interface. The
// adapter preserves the closure's semantics exactly (same calls, same
// RNG stream); it exists so every closure call site keeps working on the
// batched engine.
func BatchFromTrial(trial Trial) BatchTrial {
	return func(src *rng.Source, out []bool) error {
		for i := range out {
			ok, err := trial(src)
			if err != nil {
				return err
			}
			out[i] = ok
		}
		return nil
	}
}

// Config controls a Monte Carlo run.
type Config struct {
	// Trials is the total number of trials to run. Must be positive.
	Trials int
	// Workers is the number of parallel workers; 0 means GOMAXPROCS.
	// Workers is pure scheduling and never affects results.
	Workers int
	// Seed is the experiment seed; every run with the same Seed, Trials,
	// and trial function produces identical counts at any worker count.
	Seed uint64
}

func (c Config) validate() error {
	if c.Trials <= 0 {
		return fmt.Errorf("%w: trials=%d", ErrBadConfig, c.Trials)
	}
	if c.Workers < 0 {
		return fmt.Errorf("%w: workers=%d", ErrBadConfig, c.Workers)
	}
	return nil
}

// chunkPlan derives the deterministic per-chunk RNG sources and trial
// quotas for a run: ⌈trials/chunkSize⌉ chunks, the last one short.
func chunkPlan(cfg Config) (sources []*rng.Source, quotas []int) {
	n := (cfg.Trials + chunkSize - 1) / chunkSize
	root := rng.New(cfg.Seed)
	sources = make([]*rng.Source, n)
	quotas = make([]int, n)
	for i := range sources {
		sources[i] = root.Split()
		quotas[i] = chunkSize
	}
	quotas[n-1] = cfg.Trials - chunkSize*(n-1)
	return sources, quotas
}

// runChunksWith executes fn(chunk, scratch) for every chunk index across
// a worker pool, handing each worker one reusable scratch value from
// newScratch — the allocation point for the batch engine's per-worker
// buffers, paid once per worker, never per chunk. The first failure
// cancels the remaining chunks; the returned error prefers a root-cause
// failure over the cancellations it induced.
func runChunksWith[S any](ctx context.Context, workers, nChunks int, newScratch func() S, fn func(ctx context.Context, chunk int, scratch S) error) error {
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nChunks {
		workers = nChunks
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	jobs := make(chan int)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			scratch := newScratch()
			for chunk := range jobs {
				if err := fn(runCtx, chunk, scratch); err != nil {
					errs[w] = err
					cancel()
					return
				}
			}
		}(w)
	}

feed:
	for chunk := 0; chunk < nChunks; chunk++ {
		select {
		case jobs <- chunk:
		case <-runCtx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if firstErr == nil || errors.Is(firstErr, context.Canceled) {
			firstErr = err
		}
	}
	if firstErr == nil && ctx.Err() != nil {
		// The parent context died before any chunk could report it.
		firstErr = ctx.Err()
	}
	return firstErr
}

// runChunks is runChunksWith without per-worker scratch.
func runChunks(ctx context.Context, workers, nChunks int, fn func(ctx context.Context, chunk int) error) error {
	return runChunksWith(ctx, workers, nChunks,
		func() struct{} { return struct{}{} },
		func(ctx context.Context, chunk int, _ struct{}) error { return fn(ctx, chunk) })
}

// floatScratch allocates one worker's reusable chunk buffer.
func floatScratch() []float64 { return make([]float64, chunkSize) }

// cancelCheckInterval is the cancellation granularity inside a chunk:
// the engine slices each chunk into sub-batches of this many trials and
// checks the context between them, preserving the per-trial era's
// cancellation latency. Sub-slicing is invisible to results — the batch
// contracts (sequential consumption of src) make consecutive sub-slices
// compose into exactly one whole-chunk call. The interval is a multiple
// of WordBits, so bitset sub-batches always start on a word boundary.
const cancelCheckInterval = 1024

// runMeanChunk evaluates one whole chunk through the batch sampler into
// the worker's reusable buffer and folds the observations into the
// chunk's summary, in trial order. Zero allocations per call;
// cancellation granularity as runProbChunk.
func runMeanChunk(ctx context.Context, batch BatchMean, src *rng.Source, out []float64, sum *stats.Summary) error {
	for off := 0; off < len(out); off += cancelCheckInterval {
		if err := ctx.Err(); err != nil {
			return err
		}
		end := off + cancelCheckInterval
		if end > len(out) {
			end = len(out)
		}
		sub := out[off:end]
		if err := batch(src, sub); err != nil {
			return err
		}
		for _, v := range sub {
			sum.Add(v)
		}
	}
	return nil
}

// Result is the outcome of a Monte Carlo run.
type Result struct {
	Proportion stats.Proportion
}

// Estimate returns the point estimate of the event probability.
func (r *Result) Estimate() float64 { return r.Proportion.Estimate() }

// WilsonCI returns the Wilson interval at the given level.
func (r *Result) WilsonCI(level float64) (lo, hi float64, err error) {
	return r.Proportion.WilsonCI(level)
}

// EstimateProbability runs trials of the given Trial function in parallel
// and returns the aggregated proportion. The context cancels the run early;
// a canceled run returns ctx.Err() alongside the results of the chunks
// that completed. It adapts the closure onto the bitset engine; see
// EstimateProbabilityBits for the hot path.
func EstimateProbability(ctx context.Context, cfg Config, trial Trial) (*Result, error) {
	if trial == nil {
		return nil, fmt.Errorf("%w: nil trial", ErrBadConfig)
	}
	return EstimateProbabilityBits(ctx, cfg, BitsFromTrial(trial))
}

// EstimateProbabilityBatch runs cfg.Trials trials of the batched []bool
// trial in parallel and returns the aggregated proportion. It adapts the
// batch onto the bitset engine (each worker fills a private bool buffer
// and packs it); results are bit-identical to EstimateProbabilityBits
// and EstimateProbability with the equivalent trial: same chunk plan,
// same substreams, same counts.
func EstimateProbabilityBatch(ctx context.Context, cfg Config, batch BatchTrial) (*Result, error) {
	if batch == nil {
		return nil, fmt.Errorf("%w: nil trial", ErrBadConfig)
	}
	return estimateProbability(ctx, cfg, boolScratch(batch))
}

// estimateProbability is the shared fixed-trial-count engine: one bitset
// chunk loop, parameterized only by the per-worker scratch factory the
// entry points (bitset, []bool adapter, closure adapter) supply.
func estimateProbability(ctx context.Context, cfg Config, newScratch func() probScratch) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	sources, quotas := chunkPlan(cfg)
	successes := make([]int, len(sources))
	trialsRun := make([]int, len(sources))

	mcRuns.Inc()
	mcRunWorkers.Observe(float64(effectiveWorkers(cfg.Workers, len(sources))))
	start := time.Now()
	// Spans mark the run's sequential barriers only — one for the whole
	// chunk sweep, one for the in-order merge — never per chunk, so the
	// chunk loop itself stays allocation-free.
	span := obs.SpanFrom(ctx).Child("mc.chunks",
		obs.L("chunks", strconv.Itoa(len(sources))),
		obs.L("trials", strconv.Itoa(cfg.Trials)))

	runErr := runChunksWith(ctx, cfg.Workers, len(sources), newScratch,
		func(ctx context.Context, chunk int, s probScratch) error {
			n, err := runProbChunk(ctx, s.bits, sources[chunk], s.words, quotas[chunk])
			if err != nil {
				if err == ctx.Err() {
					return err
				}
				return fmt.Errorf("mc: trial failed in chunk %d: %w", chunk, err)
			}
			successes[chunk] = n
			trialsRun[chunk] = quotas[chunk]
			mcChunks.Inc()
			mcTrials.Add(int64(quotas[chunk]))
			return nil
		})
	span.End()
	if elapsed := time.Since(start).Seconds(); runErr == nil && elapsed > 0 {
		mcTrialsPerSec.Set(float64(cfg.Trials) / elapsed)
	}

	merge := obs.SpanFrom(ctx).Child("mc.merge")
	result := &Result{}
	for chunk := range sources {
		if err := result.Proportion.AddCounts(successes[chunk], trialsRun[chunk]); err != nil {
			merge.End()
			return nil, err
		}
	}
	merge.End()
	if runErr != nil {
		return result, runErr
	}
	return result, nil
}

// IntSampler is a randomized experiment producing a non-negative integer
// observation (e.g. a critical-window size).
type IntSampler func(src *rng.Source) (value int, err error)

// EstimateDistribution runs the sampler cfg.Trials times and histograms the
// observations into the given number of buckets (plus overflow).
func EstimateDistribution(ctx context.Context, cfg Config, buckets int, sample IntSampler) (*stats.Histogram, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if sample == nil {
		return nil, fmt.Errorf("%w: nil sampler", ErrBadConfig)
	}
	sources, quotas := chunkPlan(cfg)
	hists := make([]*stats.Histogram, len(sources))
	for chunk := range hists {
		h, err := stats.NewHistogram(buckets)
		if err != nil {
			return nil, fmt.Errorf("mc: %w", err)
		}
		hists[chunk] = h
	}

	err := runChunks(ctx, cfg.Workers, len(sources), func(ctx context.Context, chunk int) error {
		src := sources[chunk]
		for i := 0; i < quotas[chunk]; i++ {
			if i%1024 == 0 && ctx.Err() != nil {
				return ctx.Err()
			}
			v, err := sample(src)
			if err != nil {
				return fmt.Errorf("mc: sampler failed in chunk %d: %w", chunk, err)
			}
			if err := hists[chunk].Observe(v); err != nil {
				return fmt.Errorf("mc: chunk %d: %w", chunk, err)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	merged, err := stats.NewHistogram(buckets)
	if err != nil {
		return nil, fmt.Errorf("mc: %w", err)
	}
	for _, h := range hists {
		for b := 0; b < buckets; b++ {
			for i := 0; i < h.Count(b); i++ {
				if err := merged.Observe(b); err != nil {
					return nil, fmt.Errorf("mc: merge: %w", err)
				}
			}
		}
		for i := 0; i < h.Overflow(); i++ {
			if err := merged.Observe(buckets); err != nil {
				return nil, fmt.Errorf("mc: merge: %w", err)
			}
		}
	}
	return merged, nil
}

// MeanEstimator runs a real-valued sampler and returns an online Summary.
type MeanEstimator func(src *rng.Source) (value float64, err error)

// BatchMean evaluates len(out) consecutive real-valued samples on src,
// recording the i-th observation in out[i]. It is the batched form of
// MeanEstimator, with exactly BatchTrial's contract: bit-identical RNG
// consumption to sequential closure calls, concurrent invocation on
// distinct sources.
type BatchMean func(src *rng.Source, out []float64) error

// BatchFromMean adapts a per-trial sampler to the batch interface,
// preserving its semantics exactly.
func BatchFromMean(sample MeanEstimator) BatchMean {
	return func(src *rng.Source, out []float64) error {
		for i := range out {
			v, err := sample(src)
			if err != nil {
				return err
			}
			out[i] = v
		}
		return nil
	}
}

// EstimateMean runs the sampler cfg.Trials times and returns summary
// statistics of the observations. Chunk summaries are merged in chunk
// order, so the result is bit-identical at any worker count even though
// summary merging is not floating-point associative. It adapts the
// closure onto the batched engine; see EstimateMeanBatch for the hot
// path.
func EstimateMean(ctx context.Context, cfg Config, sample MeanEstimator) (*stats.Summary, error) {
	if sample == nil {
		return nil, fmt.Errorf("%w: nil sampler", ErrBadConfig)
	}
	return EstimateMeanBatch(ctx, cfg, BatchFromMean(sample))
}

// EstimateMeanBatch runs cfg.Trials samples of the batched sampler in
// parallel and returns summary statistics of the observations, folding
// each chunk's buffer into its summary in trial order and merging chunk
// summaries in chunk order — bit-identical to EstimateMean with the
// equivalent closure, at any worker count.
func EstimateMeanBatch(ctx context.Context, cfg Config, batch BatchMean) (*stats.Summary, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if batch == nil {
		return nil, fmt.Errorf("%w: nil sampler", ErrBadConfig)
	}
	sources, quotas := chunkPlan(cfg)
	sums := make([]stats.Summary, len(sources))

	mcRuns.Inc()
	mcRunWorkers.Observe(float64(effectiveWorkers(cfg.Workers, len(sources))))
	err := runChunksWith(ctx, cfg.Workers, len(sources), floatScratch,
		func(ctx context.Context, chunk int, out []float64) error {
			if err := runMeanChunk(ctx, batch, sources[chunk], out[:quotas[chunk]], &sums[chunk]); err != nil {
				if err == ctx.Err() {
					return err
				}
				return fmt.Errorf("mc: sampler failed in chunk %d: %w", chunk, err)
			}
			mcChunks.Inc()
			mcTrials.Add(int64(quotas[chunk]))
			return nil
		})
	if err != nil {
		return nil, err
	}

	var merged stats.Summary
	for _, s := range sums {
		merged = stats.MergeSummaries(merged, s)
	}
	return &merged, nil
}
