// Package mc is a parallel Monte Carlo harness. Every probability estimate
// in the benchmark suite — Pr[B_γ], Pr[A(γ̄)], Pr[A] — runs through it.
//
// The harness guarantees reproducibility under concurrency: each worker
// derives its own RNG substream from the experiment seed, and results are
// merged deterministically, so an estimate depends only on (seed, trials,
// workers), never on goroutine scheduling.
package mc

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"memreliability/internal/rng"
	"memreliability/internal/stats"
)

// ErrBadConfig reports an invalid harness configuration.
var ErrBadConfig = errors.New("mc: bad config")

// Trial is a single randomized experiment returning whether the event of
// interest occurred. Implementations must use only the provided Source for
// randomness and must be safe to call from one goroutine at a time.
type Trial func(src *rng.Source) (success bool, err error)

// Config controls a Monte Carlo run.
type Config struct {
	// Trials is the total number of trials to run. Must be positive.
	Trials int
	// Workers is the number of parallel workers; 0 means GOMAXPROCS.
	Workers int
	// Seed is the experiment seed; every run with the same Config and
	// trial function produces identical counts.
	Seed uint64
}

func (c Config) validate() error {
	if c.Trials <= 0 {
		return fmt.Errorf("%w: trials=%d", ErrBadConfig, c.Trials)
	}
	if c.Workers < 0 {
		return fmt.Errorf("%w: workers=%d", ErrBadConfig, c.Workers)
	}
	return nil
}

// Result is the outcome of a Monte Carlo run.
type Result struct {
	Proportion stats.Proportion
}

// Estimate returns the point estimate of the event probability.
func (r *Result) Estimate() float64 { return r.Proportion.Estimate() }

// WilsonCI returns the Wilson interval at the given level.
func (r *Result) WilsonCI(level float64) (lo, hi float64, err error) {
	return r.Proportion.WilsonCI(level)
}

// EstimateProbability runs trials of the given Trial function in parallel
// and returns the aggregated proportion. The context cancels the run early;
// a canceled run returns ctx.Err() alongside partial results.
func EstimateProbability(ctx context.Context, cfg Config, trial Trial) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if trial == nil {
		return nil, fmt.Errorf("%w: nil trial", ErrBadConfig)
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Trials {
		workers = cfg.Trials
	}

	// Deterministic substreams: worker w gets the w-th Split of the root.
	root := rng.New(cfg.Seed)
	sources := make([]*rng.Source, workers)
	for w := range sources {
		sources[w] = root.Split()
	}

	type partial struct {
		successes int
		trials    int
		err       error
	}
	partials := make([]partial, workers)

	base := cfg.Trials / workers
	extra := cfg.Trials % workers

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		quota := base
		if w < extra {
			quota++
		}
		wg.Add(1)
		go func(w, quota int, src *rng.Source) {
			defer wg.Done()
			p := &partials[w]
			for i := 0; i < quota; i++ {
				if i%1024 == 0 && ctx.Err() != nil {
					p.err = ctx.Err()
					return
				}
				ok, err := trial(src)
				if err != nil {
					p.err = fmt.Errorf("mc: trial failed in worker %d: %w", w, err)
					return
				}
				p.trials++
				if ok {
					p.successes++
				}
			}
		}(w, quota, sources[w])
	}
	wg.Wait()

	result := &Result{}
	var firstErr error
	for w := range partials {
		if partials[w].err != nil && firstErr == nil {
			firstErr = partials[w].err
		}
		if err := result.Proportion.AddCounts(partials[w].successes, partials[w].trials); err != nil {
			return nil, err
		}
	}
	if firstErr != nil {
		return result, firstErr
	}
	return result, nil
}

// IntSampler is a randomized experiment producing a non-negative integer
// observation (e.g. a critical-window size).
type IntSampler func(src *rng.Source) (value int, err error)

// EstimateDistribution runs the sampler cfg.Trials times and histograms the
// observations into the given number of buckets (plus overflow).
func EstimateDistribution(ctx context.Context, cfg Config, buckets int, sample IntSampler) (*stats.Histogram, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if sample == nil {
		return nil, fmt.Errorf("%w: nil sampler", ErrBadConfig)
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Trials {
		workers = cfg.Trials
	}

	root := rng.New(cfg.Seed)
	sources := make([]*rng.Source, workers)
	for w := range sources {
		sources[w] = root.Split()
	}

	hists := make([]*stats.Histogram, workers)
	errs := make([]error, workers)
	base := cfg.Trials / workers
	extra := cfg.Trials % workers

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		quota := base
		if w < extra {
			quota++
		}
		h, err := stats.NewHistogram(buckets)
		if err != nil {
			return nil, fmt.Errorf("mc: %w", err)
		}
		hists[w] = h
		wg.Add(1)
		go func(w, quota int, src *rng.Source) {
			defer wg.Done()
			for i := 0; i < quota; i++ {
				if i%1024 == 0 && ctx.Err() != nil {
					errs[w] = ctx.Err()
					return
				}
				v, err := sample(src)
				if err != nil {
					errs[w] = fmt.Errorf("mc: sampler failed in worker %d: %w", w, err)
					return
				}
				if err := hists[w].Observe(v); err != nil {
					errs[w] = fmt.Errorf("mc: worker %d: %w", w, err)
					return
				}
			}
		}(w, quota, sources[w])
	}
	wg.Wait()

	merged, err := stats.NewHistogram(buckets)
	if err != nil {
		return nil, fmt.Errorf("mc: %w", err)
	}
	for w := range hists {
		if errs[w] != nil {
			return nil, errs[w]
		}
		for b := 0; b < buckets; b++ {
			for i := 0; i < hists[w].Count(b); i++ {
				if err := merged.Observe(b); err != nil {
					return nil, fmt.Errorf("mc: merge: %w", err)
				}
			}
		}
		for i := 0; i < hists[w].Overflow(); i++ {
			if err := merged.Observe(buckets); err != nil {
				return nil, fmt.Errorf("mc: merge: %w", err)
			}
		}
	}
	return merged, nil
}

// MeanEstimator runs a real-valued sampler and returns an online Summary.
type MeanEstimator func(src *rng.Source) (value float64, err error)

// EstimateMean runs the sampler cfg.Trials times and returns summary
// statistics of the observations.
func EstimateMean(ctx context.Context, cfg Config, sample MeanEstimator) (*stats.Summary, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if sample == nil {
		return nil, fmt.Errorf("%w: nil sampler", ErrBadConfig)
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Trials {
		workers = cfg.Trials
	}

	root := rng.New(cfg.Seed)
	sources := make([]*rng.Source, workers)
	for w := range sources {
		sources[w] = root.Split()
	}

	sums := make([]stats.Summary, workers)
	errs := make([]error, workers)
	base := cfg.Trials / workers
	extra := cfg.Trials % workers

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		quota := base
		if w < extra {
			quota++
		}
		wg.Add(1)
		go func(w, quota int, src *rng.Source) {
			defer wg.Done()
			for i := 0; i < quota; i++ {
				if i%1024 == 0 && ctx.Err() != nil {
					errs[w] = ctx.Err()
					return
				}
				v, err := sample(src)
				if err != nil {
					errs[w] = fmt.Errorf("mc: sampler failed in worker %d: %w", w, err)
					return
				}
				sums[w].Add(v)
			}
		}(w, quota, sources[w])
	}
	wg.Wait()

	var merged stats.Summary
	for w := range sums {
		if errs[w] != nil {
			return nil, errs[w]
		}
		merged = stats.MergeSummaries(merged, sums[w])
	}
	return &merged, nil
}
