package mc

import (
	"context"
	"errors"
	"math"
	"testing"

	"memreliability/internal/rng"
)

func TestEstimateProbabilityBasic(t *testing.T) {
	ctx := context.Background()
	res, err := EstimateProbability(ctx, Config{Trials: 200000, Seed: 1}, func(src *rng.Source) (bool, error) {
		return src.Bool(0.37), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Estimate(); math.Abs(got-0.37) > 0.01 {
		t.Errorf("estimate = %v, want ~0.37", got)
	}
	lo, hi, err := res.WilsonCI(0.95)
	if err != nil {
		t.Fatal(err)
	}
	if lo > 0.37 || hi < 0.37 {
		t.Errorf("CI [%v,%v] misses 0.37", lo, hi)
	}
}

func TestEstimateProbabilityDeterministic(t *testing.T) {
	ctx := context.Background()
	trial := func(src *rng.Source) (bool, error) { return src.Bool(0.5), nil }
	cfg := Config{Trials: 50000, Workers: 4, Seed: 99}
	a, err := EstimateProbability(ctx, cfg, trial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EstimateProbability(ctx, cfg, trial)
	if err != nil {
		t.Fatal(err)
	}
	if a.Proportion.Successes() != b.Proportion.Successes() {
		t.Errorf("same seed gave %d vs %d successes",
			a.Proportion.Successes(), b.Proportion.Successes())
	}
}

func TestEstimateProbabilityWorkerCountInvariance(t *testing.T) {
	// The chunked harness is deterministic in (seed, trials) alone:
	// every worker count must produce the identical estimate.
	ctx := context.Background()
	trial := func(src *rng.Source) (bool, error) { return src.Bool(0.2), nil }
	var want float64
	for i, workers := range []int{1, 2, 7} {
		res, err := EstimateProbability(ctx, Config{Trials: 100000, Workers: workers, Seed: 5}, trial)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Estimate()-0.2) > 0.01 {
			t.Errorf("workers=%d: estimate %v", workers, res.Estimate())
		}
		if i == 0 {
			want = res.Estimate()
		} else if res.Estimate() != want {
			t.Errorf("workers=%d: estimate %v differs from workers=1's %v",
				workers, res.Estimate(), want)
		}
	}
}

func TestEstimateMeanWorkerCountInvariance(t *testing.T) {
	// Summary merging is not float-associative, so this exercises the
	// in-order chunk merge: means must be bit-identical across workers.
	ctx := context.Background()
	sample := func(src *rng.Source) (float64, error) { return src.Float64(), nil }
	var want float64
	for i, workers := range []int{1, 3, 8} {
		sum, err := EstimateMean(ctx, Config{Trials: 50000, Workers: workers, Seed: 9}, sample)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = sum.Mean()
		} else if sum.Mean() != want {
			t.Errorf("workers=%d: mean %v differs from workers=1's %v", workers, sum.Mean(), want)
		}
	}
}

func TestEstimateProbabilityValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := EstimateProbability(ctx, Config{Trials: 0}, nil); !errors.Is(err, ErrBadConfig) {
		t.Error("zero trials accepted")
	}
	if _, err := EstimateProbability(ctx, Config{Trials: 10, Workers: -1}, nil); !errors.Is(err, ErrBadConfig) {
		t.Error("negative workers accepted")
	}
	if _, err := EstimateProbability(ctx, Config{Trials: 10}, nil); !errors.Is(err, ErrBadConfig) {
		t.Error("nil trial accepted")
	}
}

func TestEstimateProbabilityPropagatesTrialError(t *testing.T) {
	ctx := context.Background()
	sentinel := errors.New("boom")
	_, err := EstimateProbability(ctx, Config{Trials: 1000, Workers: 2, Seed: 1},
		func(src *rng.Source) (bool, error) { return false, sentinel })
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v, want wrapped sentinel", err)
	}
}

func TestEstimateProbabilityCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := EstimateProbability(ctx, Config{Trials: 1 << 22, Workers: 2, Seed: 1},
		func(src *rng.Source) (bool, error) { return src.Bool(0.5), nil })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestEstimateProbabilityMoreWorkersThanTrials(t *testing.T) {
	ctx := context.Background()
	res, err := EstimateProbability(ctx, Config{Trials: 3, Workers: 16, Seed: 1},
		func(src *rng.Source) (bool, error) { return true, nil })
	if err != nil {
		t.Fatal(err)
	}
	if res.Proportion.Trials() != 3 || res.Proportion.Successes() != 3 {
		t.Errorf("got %d/%d", res.Proportion.Successes(), res.Proportion.Trials())
	}
}

func TestEstimateDistribution(t *testing.T) {
	ctx := context.Background()
	// Geometric(1/2) via bit counting; check the histogram matches 2^-(k+1).
	h, err := EstimateDistribution(ctx, Config{Trials: 400000, Seed: 3}, 10,
		func(src *rng.Source) (int, error) {
			k := 0
			for src.Bool(0.5) {
				k++
			}
			return k, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if h.Total() != 400000 {
		t.Fatalf("total %d", h.Total())
	}
	for k := 0; k < 6; k++ {
		want := math.Pow(2, -float64(k+1))
		if got := h.Freq(k); math.Abs(got-want) > 0.005 {
			t.Errorf("freq(%d) = %v, want %v", k, got, want)
		}
	}
}

func TestEstimateDistributionDeterministic(t *testing.T) {
	ctx := context.Background()
	sample := func(src *rng.Source) (int, error) { return src.Intn(5), nil }
	cfg := Config{Trials: 20000, Workers: 3, Seed: 11}
	a, err := EstimateDistribution(ctx, cfg, 5, sample)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EstimateDistribution(ctx, cfg, 5, sample)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 5; k++ {
		if a.Count(k) != b.Count(k) {
			t.Errorf("bucket %d: %d vs %d", k, a.Count(k), b.Count(k))
		}
	}
}

func TestEstimateDistributionError(t *testing.T) {
	ctx := context.Background()
	sentinel := errors.New("bad sample")
	_, err := EstimateDistribution(ctx, Config{Trials: 100, Seed: 1}, 4,
		func(src *rng.Source) (int, error) { return 0, sentinel })
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v", err)
	}
	_, err = EstimateDistribution(ctx, Config{Trials: 100, Seed: 1}, 4,
		func(src *rng.Source) (int, error) { return -1, nil })
	if err == nil {
		t.Error("negative observation accepted")
	}
}

func TestEstimateMean(t *testing.T) {
	ctx := context.Background()
	sum, err := EstimateMean(ctx, Config{Trials: 300000, Workers: 4, Seed: 7},
		func(src *rng.Source) (float64, error) { return src.Float64() * 6, nil })
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum.Mean()-3) > 0.02 {
		t.Errorf("mean = %v, want ~3", sum.Mean())
	}
	if math.Abs(sum.Variance()-3) > 0.05 {
		t.Errorf("variance = %v, want ~3 (uniform on [0,6])", sum.Variance())
	}
	if sum.N() != 300000 {
		t.Errorf("N = %d", sum.N())
	}
}

func TestEstimateMeanError(t *testing.T) {
	ctx := context.Background()
	sentinel := errors.New("bad")
	_, err := EstimateMean(ctx, Config{Trials: 100, Seed: 1},
		func(src *rng.Source) (float64, error) { return 0, sentinel })
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v", err)
	}
}
