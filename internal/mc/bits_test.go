package mc

import (
	"context"
	"errors"
	"testing"

	"memreliability/internal/rng"
)

// wobblyBits is wobblyTrial implemented natively on the bitset contract:
// the exact same RNG draws per trial (0–3 data-dependent extras, then one
// Bool), packed LSB-first with the partial-word contract honored. Any
// divergence between this and the []bool / closure routes is a bug in
// one of the three.
func wobblyBits(src *rng.Source, out []uint64, n int) error {
	words := out[:BitWords(n)]
	for w := range words {
		words[w] = 0
	}
	for i := 0; i < n; i++ {
		extra := src.Intn(4)
		for j := 0; j < extra; j++ {
			src.Uint64()
		}
		if src.Bool(0.3) {
			words[i>>6] |= 1 << uint(i&63)
		}
	}
	return nil
}

// coinBits is the trivial allocation-free native bitset trial: one RNG
// word per 64 trials, final partial word masked per the contract. The
// harness's own overhead is everything the zero-alloc assertions
// measure. (It intentionally consumes the RNG differently from coinBatch
// — it exists for alloc and throughput checks, not equivalence ones.)
func coinBits(src *rng.Source, out []uint64, n int) error {
	words := out[:BitWords(n)]
	for w := range words {
		words[w] = src.Uint64()
	}
	if rem := n % WordBits; rem != 0 {
		words[len(words)-1] &= 1<<uint(rem) - 1
	}
	return nil
}

func TestBitWords(t *testing.T) {
	for _, tc := range []struct{ n, want int }{
		{0, 0}, {1, 1}, {63, 1}, {64, 1}, {65, 2}, {128, 2}, {129, 3},
	} {
		if got := BitWords(tc.n); got != tc.want {
			t.Errorf("BitWords(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

// TestPackBools checks LSB-first packing and that packing into a dirty
// buffer still satisfies the partial-word contract (stale high bits of
// the final word are cleared, counts match exactly).
func TestPackBools(t *testing.T) {
	src := rng.New(3)
	for _, n := range []int{1, 63, 64, 65, 200} {
		bools := make([]bool, n)
		trues := 0
		for i := range bools {
			bools[i] = src.Bool(0.5)
			if bools[i] {
				trues++
			}
		}
		words := make([]uint64, BitWords(n))
		for w := range words {
			words[w] = ^uint64(0) // dirty
		}
		PackBools(words, bools)
		for i, ok := range bools {
			if got := words[i>>6]&(1<<uint(i&63)) != 0; got != ok {
				t.Fatalf("n=%d bit %d = %v, want %v", n, i, got, ok)
			}
		}
		if got := OnesCount(words); got != trues {
			t.Fatalf("n=%d OnesCount = %d, want %d (partial-word contract violated)", n, got, trues)
		}
	}
}

// TestBitsFromTrialPartialWord checks the closure adapter zeroes the
// unused high bits of the final word even on a dirty buffer.
func TestBitsFromTrialPartialWord(t *testing.T) {
	always := BitsFromTrial(func(src *rng.Source) (bool, error) { return true, nil })
	words := []uint64{^uint64(0)}
	if err := always(rng.New(1), words, 5); err != nil {
		t.Fatal(err)
	}
	if words[0] != 0x1f {
		t.Fatalf("words[0] = %#x, want 0x1f", words[0])
	}
}

// TestBitsBoolClosureIdenticalEstimates is the tentpole property test:
// the native bitset route, the []bool adapter route, and the per-trial
// closure route must aggregate identical counts for the same
// (seed, trials) — across chunk boundaries, partial final words, and
// worker counts. wobblyTrial's data-dependent RNG consumption makes any
// substream misalignment show up immediately.
func TestBitsBoolClosureIdenticalEstimates(t *testing.T) {
	ctx := context.Background()
	for _, workers := range []int{1, 3} {
		for _, trials := range []int{1, 37, WordBits, WordBits + 1, chunkSize - 1, chunkSize, chunkSize + 1, 2*chunkSize + 99} {
			cfg := Config{Trials: trials, Workers: workers, Seed: 7}
			viaBits, err := EstimateProbabilityBits(ctx, cfg, wobblyBits)
			if err != nil {
				t.Fatal(err)
			}
			viaBool, err := EstimateProbabilityBatch(ctx, cfg, BatchFromTrial(wobblyTrial))
			if err != nil {
				t.Fatal(err)
			}
			viaClosure, err := EstimateProbability(ctx, cfg, wobblyTrial)
			if err != nil {
				t.Fatal(err)
			}
			if viaBits.Proportion.Successes() != viaBool.Proportion.Successes() ||
				viaBits.Proportion.Successes() != viaClosure.Proportion.Successes() ||
				viaBits.Proportion.Trials() != trials ||
				viaBool.Proportion.Trials() != trials ||
				viaClosure.Proportion.Trials() != trials {
				t.Errorf("workers=%d trials=%d: bits %d/%d bool %d/%d closure %d/%d",
					workers, trials,
					viaBits.Proportion.Successes(), viaBits.Proportion.Trials(),
					viaBool.Proportion.Successes(), viaBool.Proportion.Trials(),
					viaClosure.Proportion.Successes(), viaClosure.Proportion.Trials())
			}
		}
	}
}

// TestBitsChunkIdenticalWords checks equivalence at the raw bit level,
// not just the counts: for one chunk on identical substreams, the native
// bitset implementation and PackBools over the []bool output must
// produce identical words, including a partial final word.
func TestBitsChunkIdenticalWords(t *testing.T) {
	batch := BatchFromTrial(wobblyTrial)
	for _, n := range []int{1, WordBits - 1, WordBits, WordBits + 1, 1000, chunkSize} {
		bools := make([]bool, n)
		if err := batch(rng.New(99), bools); err != nil {
			t.Fatal(err)
		}
		packed := make([]uint64, BitWords(n))
		PackBools(packed, bools)

		native := make([]uint64, BitWords(n))
		for w := range native {
			native[w] = ^uint64(0)
		}
		if err := wobblyBits(rng.New(99), native, n); err != nil {
			t.Fatal(err)
		}
		for w := range native {
			if native[w] != packed[w] {
				t.Fatalf("n=%d word %d: native %#x packed %#x", n, w, native[w], packed[w])
			}
		}
	}
}

// TestAdaptiveBitsIdentical checks the adaptive engine across all three
// routes: identical rounds, stop reasons, and counts at the round
// barriers.
func TestAdaptiveBitsIdentical(t *testing.T) {
	ctx := context.Background()
	cfg := AdaptiveConfig{
		MaxTrials:       8*chunkSize + 11, // partial final word in the last round
		Seed:            13,
		TargetHalfWidth: 0.004,
		Confidence:      0.95,
	}
	viaBits, err := EstimateAdaptiveBits(ctx, cfg, wobblyBits)
	if err != nil {
		t.Fatal(err)
	}
	viaBool, err := EstimateAdaptiveBatch(ctx, cfg, BatchFromTrial(wobblyTrial))
	if err != nil {
		t.Fatal(err)
	}
	viaClosure, err := EstimateAdaptive(ctx, cfg, wobblyTrial)
	if err != nil {
		t.Fatal(err)
	}
	for _, other := range []*AdaptiveResult{viaBool, viaClosure} {
		if viaBits.Rounds != other.Rounds || viaBits.StopReason != other.StopReason ||
			viaBits.Proportion.Successes() != other.Proportion.Successes() ||
			viaBits.Proportion.Trials() != other.Proportion.Trials() {
			t.Errorf("bits %d/%d rounds=%d %s vs %d/%d rounds=%d %s",
				viaBits.Proportion.Successes(), viaBits.Proportion.Trials(),
				viaBits.Rounds, viaBits.StopReason,
				other.Proportion.Successes(), other.Proportion.Trials(),
				other.Rounds, other.StopReason)
		}
	}
}

// TestBitsChunkZeroAllocs asserts the native bitset hot path — one whole
// chunk through runProbChunk into the worker's reusable word buffer —
// performs zero allocations per chunk.
func TestBitsChunkZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under the race detector")
	}
	ctx := context.Background()
	src := rng.New(7)
	scratch := bitsScratch(coinBits)()
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := runProbChunk(ctx, scratch.bits, src, scratch.words, chunkSize); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("bitset chunk hot path allocates %v per chunk, want 0", allocs)
	}
}

// TestBitsSubWordCancellation checks cancellation latency carries over
// to the bit path at sub-word granularity: with a trial count whose
// final sub-batch is a partial word, cancelling during the first
// sub-batch must prevent every later one — the engine must not "round
// up" to word or chunk boundaries before noticing.
func TestBitsSubWordCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	calls := 0
	batch := BatchTrialBits(func(src *rng.Source, out []uint64, n int) error {
		calls++
		cancel()
		for w := range out[:BitWords(n)] {
			out[w] = 0
		}
		return nil
	})
	_, err := EstimateProbabilityBits(ctx, Config{Trials: cancelCheckInterval + 7, Workers: 1, Seed: 1}, batch)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Errorf("bitset batch called %d times after mid-chunk cancellation, want 1", calls)
	}
}

// TestBitsCancellationZeroAllocs asserts the cancellation checks
// themselves add no allocations: a chunk short enough to hit the
// partial-word sub-batch path still runs alloc-free.
func TestBitsCancellationZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under the race detector")
	}
	ctx := context.Background()
	src := rng.New(7)
	scratch := bitsScratch(coinBits)()
	n := cancelCheckInterval + 7 // two sub-batches, second a partial word
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := runProbChunk(ctx, scratch.bits, src, scratch.words, n); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("sub-word cancellation path allocates %v per chunk, want 0", allocs)
	}
}

// TestBitsContractViolationBackstop: an implementation that leaves
// garbage in the unused high bits of the final word can push the
// whole-word success count past the trial count; the aggregation layer
// must reject that instead of returning a biased estimate.
func TestBitsContractViolationBackstop(t *testing.T) {
	ctx := context.Background()
	garbage := BatchTrialBits(func(src *rng.Source, out []uint64, n int) error {
		for w := range out[:BitWords(n)] {
			out[w] = ^uint64(0) // all 64 bits set, ignoring n
		}
		return nil
	})
	if _, err := EstimateProbabilityBits(ctx, Config{Trials: 40, Workers: 1, Seed: 1}, garbage); err == nil {
		t.Fatal("successes > trials accepted; partial-word contract violation went unnoticed")
	}
}

// TestBitsErrorPropagation mirrors the batch error tests on the bitset
// entry points.
func TestBitsErrorPropagation(t *testing.T) {
	ctx := context.Background()
	sentinel := errors.New("boom")
	_, err := EstimateProbabilityBits(ctx, Config{Trials: 1000, Workers: 2, Seed: 1},
		func(src *rng.Source, out []uint64, n int) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v, want wrapped sentinel", err)
	}
	if _, err := EstimateProbabilityBits(ctx, Config{Trials: 10}, nil); !errors.Is(err, ErrBadConfig) {
		t.Error("nil bitset trial accepted")
	}
	if _, err := EstimateAdaptiveBits(ctx, AdaptiveConfig{MaxTrials: 10, TargetHalfWidth: 0.1, Confidence: 0.9}, nil); !errors.Is(err, ErrBadConfig) {
		t.Error("nil adaptive bitset trial accepted")
	}
}
