package mc

import (
	"context"
	"math"
	"testing"

	"memreliability/internal/rng"
)

// coinTrial is an "easy cell": a p ≈ 0.5 event.
func coinTrial(src *rng.Source) (bool, error) { return src.Bool(0.5), nil }

// rareTrial is a deep-tail cell: a p = 1/1024 event.
func rareTrial(src *rng.Source) (bool, error) { return src.Intn(1024) == 0, nil }

func TestAdaptiveConfigValidation(t *testing.T) {
	base := AdaptiveConfig{MaxTrials: 1000, Seed: 1, Confidence: 0.99, TargetHalfWidth: 0.01}
	cases := []struct {
		name   string
		mutate func(*AdaptiveConfig)
	}{
		{"zero max trials", func(c *AdaptiveConfig) { c.MaxTrials = 0 }},
		{"negative workers", func(c *AdaptiveConfig) { c.Workers = -1 }},
		{"confidence 0", func(c *AdaptiveConfig) { c.Confidence = 0 }},
		{"confidence 1", func(c *AdaptiveConfig) { c.Confidence = 1 }},
		{"no targets", func(c *AdaptiveConfig) { c.TargetHalfWidth = 0 }},
		{"NaN half-width", func(c *AdaptiveConfig) { c.TargetHalfWidth = math.NaN() }},
		{"NaN rel err", func(c *AdaptiveConfig) { c.TargetRelErr = math.NaN() }},
		{"Inf rel err", func(c *AdaptiveConfig) { c.TargetRelErr = math.Inf(1) }},
	}
	for _, tc := range cases {
		cfg := base
		tc.mutate(&cfg)
		if _, err := EstimateAdaptive(context.Background(), cfg, coinTrial); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
	if _, err := EstimateAdaptive(context.Background(), base, nil); err == nil {
		t.Error("nil trial accepted")
	}
}

// TestAdaptiveWorkerInvariance pins the reproducibility contract at the
// acceptance criterion's worker counts: trials-consumed, counts, round
// count, and stop reason are identical at 1, 2, and 7 workers — for a
// converging run and for a budget-capped one.
func TestAdaptiveWorkerInvariance(t *testing.T) {
	configs := []AdaptiveConfig{
		{MaxTrials: 200000, Seed: 7, Confidence: 0.99, TargetHalfWidth: 0.02},
		// Relative target on a rare event: exhausts the budget.
		{MaxTrials: 30000, Seed: 7, Confidence: 0.99, TargetRelErr: 0.01},
	}
	trials := []struct {
		name  string
		trial Trial
	}{{"coin", coinTrial}, {"rare", rareTrial}}
	for _, tr := range trials {
		for ci, base := range configs {
			var ref *AdaptiveResult
			for _, workers := range []int{1, 2, 7} {
				cfg := base
				cfg.Workers = workers
				res, err := EstimateAdaptive(context.Background(), cfg, tr.trial)
				if err != nil {
					t.Fatalf("%s/config %d workers=%d: %v", tr.name, ci, workers, err)
				}
				if ref == nil {
					ref = res
					continue
				}
				if res.TrialsUsed() != ref.TrialsUsed() ||
					res.Proportion.Successes() != ref.Proportion.Successes() ||
					res.Rounds != ref.Rounds || res.StopReason != ref.StopReason {
					t.Errorf("%s/config %d workers=%d diverged: trials %d vs %d, successes %d vs %d, rounds %d vs %d, reason %q vs %q",
						tr.name, ci, workers,
						res.TrialsUsed(), ref.TrialsUsed(),
						res.Proportion.Successes(), ref.Proportion.Successes(),
						res.Rounds, ref.Rounds, res.StopReason, ref.StopReason)
				}
			}
		}
	}
}

// TestAdaptiveTwoCellDemo is the acceptance criterion's 2-cell demo: the
// easy p≈0.5 cell stops with ≥ 10× fewer trials than the fixed default,
// the deep-tail cell converges too, and both meet the requested absolute
// half-width.
func TestAdaptiveTwoCellDemo(t *testing.T) {
	const fixedDefault = 200000 // memrisk's fixed -trials default
	const target = 0.02
	for _, tc := range []struct {
		name  string
		trial Trial
	}{{"easy p=0.5", coinTrial}, {"deep tail p=2^-10", rareTrial}} {
		cfg := AdaptiveConfig{
			MaxTrials: fixedDefault, Seed: 11, Confidence: 0.99, TargetHalfWidth: target,
		}
		res, err := EstimateAdaptive(context.Background(), cfg, tc.trial)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.StopReason != StopConverged {
			t.Fatalf("%s: stop reason %q, want converged", tc.name, res.StopReason)
		}
		if used := res.TrialsUsed(); used*10 > fixedDefault {
			t.Errorf("%s: %d trials used, want ≥10× fewer than the fixed default %d",
				tc.name, used, fixedDefault)
		}
		lo, hi, err := res.WilsonCI(cfg.Confidence)
		if err != nil {
			t.Fatal(err)
		}
		if half := (hi - lo) / 2; half > target {
			t.Errorf("%s: half-width %v exceeds the requested %v", tc.name, half, target)
		}
	}
}

// TestAdaptiveBudgetExhaustion: a relative-error target on a rare event
// cannot converge inside the cap, and the result must say so — not come
// back labeled converged.
func TestAdaptiveBudgetExhaustion(t *testing.T) {
	cfg := AdaptiveConfig{MaxTrials: 20000, Seed: 3, Confidence: 0.99, TargetRelErr: 0.001}
	res, err := EstimateAdaptive(context.Background(), cfg, rareTrial)
	if err != nil {
		t.Fatal(err)
	}
	if res.StopReason != StopBudget {
		t.Fatalf("stop reason %q, want budget", res.StopReason)
	}
	if res.TrialsUsed() != cfg.MaxTrials {
		t.Errorf("trials used %d, want the full budget %d", res.TrialsUsed(), cfg.MaxTrials)
	}
}

// TestAdaptiveFixedEquivalence: an adaptive run that exhausts its budget
// is bit-identical to the fixed harness at Trials = MaxTrials — for a
// chunk-aligned cap and for one with a short final chunk.
func TestAdaptiveFixedEquivalence(t *testing.T) {
	for _, maxTrials := range []int{3 * 8192, 20000} {
		cfg := AdaptiveConfig{MaxTrials: maxTrials, Seed: 5, Confidence: 0.99, TargetRelErr: 0.0001}
		adaptive, err := EstimateAdaptive(context.Background(), cfg, rareTrial)
		if err != nil {
			t.Fatal(err)
		}
		if adaptive.StopReason != StopBudget {
			t.Fatalf("max=%d: expected budget exhaustion, got %q", maxTrials, adaptive.StopReason)
		}
		fixed, err := EstimateProbability(context.Background(),
			Config{Trials: maxTrials, Seed: 5}, rareTrial)
		if err != nil {
			t.Fatal(err)
		}
		if adaptive.Proportion.Trials() != fixed.Proportion.Trials() ||
			adaptive.Proportion.Successes() != fixed.Proportion.Successes() {
			t.Errorf("max=%d: adaptive %d/%d != fixed %d/%d", maxTrials,
				adaptive.Proportion.Successes(), adaptive.Proportion.Trials(),
				fixed.Proportion.Successes(), fixed.Proportion.Trials())
		}
	}
}

// TestAdaptiveMean covers the mean estimator: worker invariance of the
// consumed trial count and convergence on a relative target.
func TestAdaptiveMean(t *testing.T) {
	sample := func(src *rng.Source) (float64, error) { return src.Float64(), nil }
	var ref *AdaptiveMeanResult
	for _, workers := range []int{1, 2, 7} {
		cfg := AdaptiveConfig{
			MaxTrials: 500000, Workers: workers, Seed: 9,
			Confidence: 0.99, TargetRelErr: 0.01,
		}
		res, err := EstimateMeanAdaptive(context.Background(), cfg, sample)
		if err != nil {
			t.Fatal(err)
		}
		if res.StopReason != StopConverged {
			t.Fatalf("workers=%d: stop reason %q", workers, res.StopReason)
		}
		if ref == nil {
			ref = res
			continue
		}
		if res.TrialsUsed() != ref.TrialsUsed() || res.Rounds != ref.Rounds ||
			math.Float64bits(res.Summary.Mean()) != math.Float64bits(ref.Summary.Mean()) {
			t.Errorf("workers=%d diverged: trials %d vs %d, mean %v vs %v",
				workers, res.TrialsUsed(), ref.TrialsUsed(), res.Summary.Mean(), ref.Summary.Mean())
		}
	}
	// The mean around 0.5 with stderr ≈ 0.29/√n: rel err 0.01 at 99%
	// needs ≈ 22k samples, so the run must stop well short of the cap.
	if ref.TrialsUsed() >= 500000 {
		t.Errorf("adaptive mean consumed the whole cap (%d trials)", ref.TrialsUsed())
	}
}

// TestAdaptiveCancellation: a canceled context surfaces as an error with
// partial results, exactly like the fixed harness.
func TestAdaptiveCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := AdaptiveConfig{MaxTrials: 1 << 20, Seed: 1, Confidence: 0.99, TargetRelErr: 1e-9}
	if _, err := EstimateAdaptive(ctx, cfg, coinTrial); err == nil {
		t.Error("canceled run returned no error")
	}
}
