package mc

import (
	"context"
	"errors"
	"testing"

	"memreliability/internal/rng"
	"memreliability/internal/stats"
)

// wobblyTrial is a per-trial closure with data-dependent RNG consumption
// (0–3 extra draws per trial), so any batch/closure misalignment of the
// substream shows up immediately in the booleans that follow.
func wobblyTrial(src *rng.Source) (bool, error) {
	n := src.Intn(4)
	for i := 0; i < n; i++ {
		src.Uint64()
	}
	return src.Bool(0.3), nil
}

// TestBatchClosureIdenticalBooleans is the batch-adapter property test:
// for identical substreams, BatchFromTrial must produce exactly the
// booleans the per-trial closure produces, trial for trial, across chunk
// boundaries (trial counts below, at, and above multiples of chunkSize).
func TestBatchClosureIdenticalBooleans(t *testing.T) {
	batch := BatchFromTrial(wobblyTrial)
	for _, trials := range []int{1, chunkSize - 1, chunkSize, chunkSize + 1, 3*chunkSize + 17} {
		sources, quotas := chunkPlan(Config{Trials: trials, Seed: 42})
		closureSources, _ := chunkPlan(Config{Trials: trials, Seed: 42})
		out := make([]bool, chunkSize)
		for chunk := range sources {
			got := out[:quotas[chunk]]
			if err := batch(sources[chunk], got); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < quotas[chunk]; i++ {
				want, err := wobblyTrial(closureSources[chunk])
				if err != nil {
					t.Fatal(err)
				}
				if got[i] != want {
					t.Fatalf("trials=%d chunk=%d trial=%d: batch=%v closure=%v",
						trials, chunk, i, got[i], want)
				}
			}
		}
	}
}

// TestBatchClosureIdenticalEstimates checks the full engines end to end:
// the batch and closure entry points must aggregate identical counts and
// identical summaries for the same (seed, trials), at several worker
// counts.
func TestBatchClosureIdenticalEstimates(t *testing.T) {
	ctx := context.Background()
	for _, workers := range []int{1, 3} {
		for _, trials := range []int{100, chunkSize + 1, 2*chunkSize + 99} {
			cfg := Config{Trials: trials, Workers: workers, Seed: 7}
			viaClosure, err := EstimateProbability(ctx, cfg, wobblyTrial)
			if err != nil {
				t.Fatal(err)
			}
			viaBatch, err := EstimateProbabilityBatch(ctx, cfg, BatchFromTrial(wobblyTrial))
			if err != nil {
				t.Fatal(err)
			}
			if viaClosure.Proportion.Successes() != viaBatch.Proportion.Successes() ||
				viaClosure.Proportion.Trials() != viaBatch.Proportion.Trials() {
				t.Errorf("workers=%d trials=%d: closure %d/%d vs batch %d/%d",
					workers, trials,
					viaClosure.Proportion.Successes(), viaClosure.Proportion.Trials(),
					viaBatch.Proportion.Successes(), viaBatch.Proportion.Trials())
			}

			sample := func(src *rng.Source) (float64, error) { return src.Float64(), nil }
			meanClosure, err := EstimateMean(ctx, cfg, sample)
			if err != nil {
				t.Fatal(err)
			}
			meanBatch, err := EstimateMeanBatch(ctx, cfg, BatchFromMean(sample))
			if err != nil {
				t.Fatal(err)
			}
			if meanClosure.Mean() != meanBatch.Mean() || meanClosure.N() != meanBatch.N() {
				t.Errorf("workers=%d trials=%d: mean %v (n=%d) vs %v (n=%d)",
					workers, trials, meanClosure.Mean(), meanClosure.N(),
					meanBatch.Mean(), meanBatch.N())
			}
		}
	}
}

// TestAdaptiveBatchClosureIdentical checks the adaptive engines: batch
// and closure routes must stop at the same round with identical counts.
func TestAdaptiveBatchClosureIdentical(t *testing.T) {
	ctx := context.Background()
	cfg := AdaptiveConfig{
		MaxTrials:       8 * chunkSize,
		Seed:            13,
		TargetHalfWidth: 0.01,
		Confidence:      0.95,
	}
	viaClosure, err := EstimateAdaptive(ctx, cfg, wobblyTrial)
	if err != nil {
		t.Fatal(err)
	}
	viaBatch, err := EstimateAdaptiveBatch(ctx, cfg, BatchFromTrial(wobblyTrial))
	if err != nil {
		t.Fatal(err)
	}
	if viaClosure.Rounds != viaBatch.Rounds || viaClosure.StopReason != viaBatch.StopReason ||
		viaClosure.Proportion.Successes() != viaBatch.Proportion.Successes() ||
		viaClosure.Proportion.Trials() != viaBatch.Proportion.Trials() {
		t.Errorf("closure %d/%d rounds=%d %s vs batch %d/%d rounds=%d %s",
			viaClosure.Proportion.Successes(), viaClosure.Proportion.Trials(),
			viaClosure.Rounds, viaClosure.StopReason,
			viaBatch.Proportion.Successes(), viaBatch.Proportion.Trials(),
			viaBatch.Rounds, viaBatch.StopReason)
	}

	sample := func(src *rng.Source) (float64, error) { return src.Float64(), nil }
	meanClosure, err := EstimateMeanAdaptive(ctx, cfg, sample)
	if err != nil {
		t.Fatal(err)
	}
	meanBatch, err := EstimateMeanAdaptiveBatch(ctx, cfg, BatchFromMean(sample))
	if err != nil {
		t.Fatal(err)
	}
	if meanClosure.Summary.Mean() != meanBatch.Summary.Mean() ||
		meanClosure.Rounds != meanBatch.Rounds || meanClosure.StopReason != meanBatch.StopReason {
		t.Errorf("closure mean %v rounds=%d %s vs batch mean %v rounds=%d %s",
			meanClosure.Summary.Mean(), meanClosure.Rounds, meanClosure.StopReason,
			meanBatch.Summary.Mean(), meanBatch.Rounds, meanBatch.StopReason)
	}
}

// coinBatch is a trivial allocation-free batch trial: the harness's own
// overhead is everything the zero-alloc assertions below measure.
func coinBatch(src *rng.Source, out []bool) error {
	for i := range out {
		out[i] = src.Uint64()&1 == 0
	}
	return nil
}

// TestProbChunkZeroAllocs asserts the steady-state fixed-MC inner loop —
// one whole chunk evaluated through the []bool batch adapter into the
// worker's reusable bitset scratch — performs zero allocations per chunk.
// (The native bitset path has its own assertion in bits_test.go.)
func TestProbChunkZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under the race detector")
	}
	ctx := context.Background()
	src := rng.New(7)
	scratch := boolScratch(coinBatch)()
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := runProbChunk(ctx, scratch.bits, src, scratch.words, chunkSize); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("probability chunk hot path allocates %v per chunk, want 0", allocs)
	}
}

// TestMeanChunkZeroAllocs is TestProbChunkZeroAllocs for the mean engine.
func TestMeanChunkZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under the race detector")
	}
	batch := BatchMean(func(src *rng.Source, out []float64) error {
		for i := range out {
			out[i] = src.Float64()
		}
		return nil
	})
	ctx := context.Background()
	src := rng.New(7)
	out := make([]float64, chunkSize)
	var summary stats.Summary
	allocs := testing.AllocsPerRun(50, func() {
		if err := runMeanChunk(ctx, batch, src, out, &summary); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("mean chunk hot path allocates %v per chunk, want 0", allocs)
	}
}

// TestBatchIntraChunkCancellation checks the engine notices a canceled
// context between sub-batches of one chunk, not merely between chunks:
// after the first cancelCheckInterval-sized call, no further batch calls
// happen.
func TestBatchIntraChunkCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	calls := 0
	batch := BatchTrial(func(src *rng.Source, out []bool) error {
		calls++
		cancel()
		return nil
	})
	_, err := EstimateProbabilityBatch(ctx, Config{Trials: chunkSize, Workers: 1, Seed: 1}, batch)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Errorf("batch called %d times after mid-chunk cancellation, want 1", calls)
	}
}

// TestBatchErrorPropagation mirrors the closure error tests on the batch
// entry points.
func TestBatchErrorPropagation(t *testing.T) {
	ctx := context.Background()
	sentinel := errors.New("boom")
	_, err := EstimateProbabilityBatch(ctx, Config{Trials: 1000, Workers: 2, Seed: 1},
		func(src *rng.Source, out []bool) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v, want wrapped sentinel", err)
	}
	if _, err := EstimateProbabilityBatch(ctx, Config{Trials: 10}, nil); !errors.Is(err, ErrBadConfig) {
		t.Error("nil batch trial accepted")
	}
	if _, err := EstimateMeanBatch(ctx, Config{Trials: 10}, nil); !errors.Is(err, ErrBadConfig) {
		t.Error("nil batch sampler accepted")
	}
}
