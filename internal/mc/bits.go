package mc

import (
	"context"
	"fmt"
	"math/bits"

	"memreliability/internal/rng"
)

// This file is the bit-parallel trial engine — the canonical batch
// contract of the Monte Carlo harness. Trial outcomes are packed 64 per
// machine word and counted with bits.OnesCount64, so the per-trial cost
// of the harness reduces to one bit write and 1/64th of a popcount. The
// []bool batch interface (BatchTrial) and the per-trial closures (Trial)
// are thin adapters over this path; all three routes consume the RNG
// substreams identically and therefore produce bit-identical estimates.

// WordBits is the number of trials packed into one bitset word.
const WordBits = 64

// BitWords returns the number of uint64 words needed to hold n trial
// outcomes: ⌈n/64⌉.
func BitWords(n int) int { return (n + WordBits - 1) / WordBits }

// BatchTrialBits is the canonical batched trial contract: evaluate n
// consecutive trials on src and pack the outcomes into out, 64 trials
// per word, LSB-first — trial i lands in bit i%64 of out[i/64], so
// out[0]&1 is trial 0. len(out) is always at least BitWords(n).
//
// Partial-word contract: when n is not a multiple of 64, the bits at
// positions ≥ n%64 of the final word out[BitWords(n)-1] MUST be written
// as zero. The harness counts successes over whole words with
// bits.OnesCount64 and relies on this; a violation grossly enough to
// push successes past trials is caught by the aggregation layer, but
// smaller violations would silently bias the estimate. PackBools and
// BitsFromTrial satisfy the contract for you.
//
// An implementation must consume src exactly as n sequential Trial
// calls would, so bitset, []bool, and closure runs stay bit-identical;
// distinct calls receive distinct sources and may run concurrently, so
// any state shared between calls must be immutable.
type BatchTrialBits func(src *rng.Source, out []uint64, n int) error

// PackBools packs src into dst LSB-first, zeroing the unused high bits
// of the final word per the BatchTrialBits partial-word contract.
// len(dst) must be at least BitWords(len(src)).
func PackBools(dst []uint64, src []bool) {
	words := dst[:BitWords(len(src))]
	for w := range words {
		words[w] = 0
	}
	for i, ok := range src {
		if ok {
			words[i>>6] |= 1 << uint(i&63)
		}
	}
}

// OnesCount returns the total number of set bits across the words.
func OnesCount(words []uint64) int {
	n := 0
	for _, w := range words {
		n += bits.OnesCount64(w)
	}
	return n
}

// BitsFromTrial adapts a per-trial closure to the bitset interface,
// preserving the closure's semantics exactly (same calls, same RNG
// stream) and satisfying the partial-word contract.
func BitsFromTrial(trial Trial) BatchTrialBits {
	return func(src *rng.Source, out []uint64, n int) error {
		words := out[:BitWords(n)]
		for w := range words {
			words[w] = 0
		}
		for i := 0; i < n; i++ {
			ok, err := trial(src)
			if err != nil {
				return err
			}
			if ok {
				words[i>>6] |= 1 << uint(i&63)
			}
		}
		return nil
	}
}

// probScratch is one worker's reusable state for the probability engine:
// the chunk's bitset buffer plus the worker-private BatchTrialBits that
// fills it. The bits function is part of the scratch so the []bool
// adapter can own a worker-private bool buffer without allocating per
// chunk — the harness's zero-steady-state-allocation guarantee.
type probScratch struct {
	words []uint64
	bits  BatchTrialBits
}

// bitsScratch returns the per-worker scratch factory for the native
// bitset path: every worker shares the (immutable) bits implementation
// and owns a chunk-sized word buffer.
func bitsScratch(batch BatchTrialBits) func() probScratch {
	return func() probScratch {
		return probScratch{words: make([]uint64, BitWords(chunkSize)), bits: batch}
	}
}

// boolScratch returns the per-worker scratch factory adapting a []bool
// batch onto the bitset engine: each worker owns one bool buffer; the
// wrapper fills it through the batch and packs it into the chunk's
// words. Packed counts equal bool counts, so the adapter is exact.
func boolScratch(batch BatchTrial) func() probScratch {
	return func() probScratch {
		bools := make([]bool, chunkSize)
		return probScratch{
			words: make([]uint64, BitWords(chunkSize)),
			bits: func(src *rng.Source, out []uint64, n int) error {
				sub := bools[:n]
				if err := batch(src, sub); err != nil {
					return err
				}
				PackBools(out, sub)
				return nil
			},
		}
	}
}

// runProbChunk evaluates one whole chunk through the bitset trial into
// the worker's reusable word buffer and returns the success count via
// bits.OnesCount64. This is the steady-state hot path of every
// probability estimate: it performs zero allocations per call (asserted
// by tests). The chunk is sliced into cancelCheckInterval-trial
// sub-batches with a context check between them, preserving the
// per-trial era's cancellation latency down to the final partial word;
// sub-batch boundaries are word-aligned (the interval is a multiple of
// 64), so consecutive sub-slices compose into exactly one whole-chunk
// call under the BatchTrialBits contract.
func runProbChunk(ctx context.Context, batch BatchTrialBits, src *rng.Source, words []uint64, n int) (successes int, err error) {
	count := 0
	for off := 0; off < n; off += cancelCheckInterval {
		if err := ctx.Err(); err != nil {
			return count, err
		}
		end := off + cancelCheckInterval
		if end > n {
			end = n
		}
		sub := words[off>>6 : BitWords(end)]
		if err := batch(src, sub, end-off); err != nil {
			return count, err
		}
		count += OnesCount(sub)
	}
	return count, nil
}

// EstimateProbabilityBits runs cfg.Trials trials of the bitset trial in
// parallel and returns the aggregated proportion. This is the canonical
// engine: chunks are evaluated whole — one bitset call per chunk on a
// per-worker reusable []uint64 buffer — and successes are counted with
// bits.OnesCount64, so the steady-state loop is free of per-trial call
// overhead and of allocations. The []bool and closure entry points
// (EstimateProbabilityBatch, EstimateProbability) adapt onto it with
// bit-identical results.
func EstimateProbabilityBits(ctx context.Context, cfg Config, batch BatchTrialBits) (*Result, error) {
	if batch == nil {
		return nil, fmt.Errorf("%w: nil trial", ErrBadConfig)
	}
	return estimateProbability(ctx, cfg, bitsScratch(batch))
}

// EstimateAdaptiveBits is EstimateAdaptive on the bitset interface: the
// canonical adaptive engine, with EstimateProbabilityBits's chunk loop
// inside deterministic chunk-aligned rounds. Rounds, stopping, and the
// reproducibility contract are exactly EstimateAdaptive's.
func EstimateAdaptiveBits(ctx context.Context, cfg AdaptiveConfig, batch BatchTrialBits) (*AdaptiveResult, error) {
	if batch == nil {
		return nil, fmt.Errorf("%w: nil trial", ErrBadConfig)
	}
	return estimateAdaptive(ctx, cfg, bitsScratch(batch))
}
