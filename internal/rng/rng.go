// Package rng provides a deterministic, seedable pseudo-random number
// generator with cheap substream derivation.
//
// Every experiment in this repository must be exactly reproducible from a
// single integer seed, including experiments that fan out across goroutines.
// The standard library's math/rand/v2 generators are suitable for sampling
// but do not offer a stable cross-version stream-splitting scheme, so we
// implement the well-known xoshiro256** generator seeded via splitmix64,
// following the reference construction by Blackman and Vigna.
//
// The zero value of Source is not usable; construct one with New.
package rng

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
)

// Source is a xoshiro256** pseudo-random number generator.
//
// Source is not safe for concurrent use; derive one Source per goroutine
// with Split.
type Source struct {
	s [4]uint64
}

// ErrDegenerateState reports an all-zero internal state, which would make
// the generator emit zeros forever.
var ErrDegenerateState = errors.New("rng: degenerate all-zero state")

// splitmix64 advances the given state and returns the next output of the
// splitmix64 generator. It is used only for seeding.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from the given seed. Distinct seeds give
// statistically independent streams.
func New(seed uint64) *Source {
	var src Source
	state := seed
	for i := range src.s {
		src.s[i] = splitmix64(&state)
	}
	// splitmix64 cannot emit four zeros from any state, so src is valid.
	return &src
}

// rotl rotates x left by k bits.
func rotl(x uint64, k uint) uint64 {
	return bits.RotateLeft64(x, int(k))
}

// Uint64 returns the next 64 uniformly distributed bits.
//
// The body is written to fit the compiler's inlining budget — the
// generator steps inline into the Bool-draw hot loops of the settling
// and shift kernels, where call overhead would otherwise dominate.
func (r *Source) Uint64() uint64 {
	s1 := r.s[1]
	r.s[2] ^= r.s[0]
	r.s[3] ^= s1
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= s1 << 17
	r.s[3] = bits.RotateLeft64(r.s[3], 45)
	return bits.RotateLeft64(s1*5, 7) * 9
}

// FillUint64s fills buf with the next len(buf) outputs of the stream,
// advancing the state exactly as len(buf) sequential Uint64 calls would
// (property-tested stream-identical). The win over the loop it replaces
// is not the variates — they are identical — but the state residency:
// the four state words live in registers for the whole fill instead of
// round-tripping through memory on every draw, which is what makes the
// kernels' bulk draw buffers cheaper than per-draw generator steps.
func (r *Source) FillUint64s(buf []uint64) {
	s0, s1, s2, s3 := r.s[0], r.s[1], r.s[2], r.s[3]
	for i := range buf {
		buf[i] = bits.RotateLeft64(s1*5, 7) * 9
		t := s1 << 17
		s2 ^= s0
		s3 ^= s1
		s1 ^= s2
		s0 ^= s3
		s2 ^= t
		s3 = bits.RotateLeft64(s3, 45)
	}
	r.s[0], r.s[1], r.s[2], r.s[3] = s0, s1, s2, s3
}

// FillFloat64s fills buf with the next len(buf) uniform [0, 1) variates,
// advancing the state exactly as len(buf) sequential Float64 calls
// would — the matching float path of FillUint64s, with the identical
// 53-high-bit dyadic construction.
func (r *Source) FillFloat64s(buf []float64) {
	s0, s1, s2, s3 := r.s[0], r.s[1], r.s[2], r.s[3]
	for i := range buf {
		w := bits.RotateLeft64(s1*5, 7) * 9
		buf[i] = float64(w>>11) * (1.0 / (1 << 53))
		t := s1 << 17
		s2 ^= s0
		s3 ^= s1
		s1 ^= s2
		s0 ^= s3
		s2 ^= t
		s3 = bits.RotateLeft64(s3, 45)
	}
	r.s[0], r.s[1], r.s[2], r.s[3] = s0, s1, s2, s3
}

// Split derives a new Source whose stream is independent of the parent's
// continued stream. The i-th call to Split on a given Source state yields a
// deterministic child; Split advances the parent.
func (r *Source) Split() *Source {
	// Jump-free splitting: hash the parent's next outputs through
	// splitmix64 so the child state shares no linear structure with the
	// parent's xoshiro orbit.
	state := r.Uint64()
	var child Source
	for i := range child.s {
		child.s[i] = splitmix64(&state)
	}
	return &child
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	// 53 high bits give the standard dyadic uniform variate. Scaling by
	// the reciprocal is exact (a power-of-two exponent shift), so this is
	// bit-identical to dividing by 2^53 — and cheaper.
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Bool returns true with probability p.
func (r *Source) Bool(p float64) bool {
	switch {
	case p <= 0:
		return false
	case p >= 1:
		return true
	default:
		return r.Float64() < p
	}
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0, mirroring
// math/rand; callers validate n at API boundaries.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("rng: Intn called with n=%d", n))
	}
	// Lemire's multiply-shift rejection method, unbiased.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul128(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul128 returns the 128-bit product of a and b as (hi, lo).
func mul128(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo*bHi + (aLo*bLo)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += aHi * bLo
	hi = aHi*bHi + w2 + (w1 >> 32)
	lo = a * b
	return hi, lo
}

// Perm returns a uniformly random permutation of [0, n) using Fisher-Yates.
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// NormFloat64 returns a standard normal variate via the polar Box-Muller
// method. It is used only for synthetic-noise experiments, not for any of
// the paper's processes.
func (r *Source) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// State returns a copy of the internal state, for checkpointing experiments.
func (r *Source) State() [4]uint64 {
	return r.s
}

// Restore sets the internal state to a previously captured checkpoint.
// It returns ErrDegenerateState if the state is all zeros.
func (r *Source) Restore(state [4]uint64) error {
	if state[0] == 0 && state[1] == 0 && state[2] == 0 && state[3] == 0 {
		return ErrDegenerateState
	}
	r.s = state
	return nil
}
