package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: %d != %d", i, got, want)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided on %d of 100 draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// The child stream must differ from the parent's continued stream.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("parent and child streams collided on %d of 100 draws", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := New(9).Split()
	b := New(9).Split()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("split is not deterministic at draw %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("mean of uniform draws = %v, want ~0.5", mean)
	}
}

func TestBoolEdgeCases(t *testing.T) {
	r := New(5)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
		if r.Bool(-0.5) {
			t.Fatal("Bool(-0.5) returned true")
		}
		if !r.Bool(1.5) {
			t.Fatal("Bool(1.5) returned false")
		}
	}
}

func TestBoolFrequency(t *testing.T) {
	r := New(6)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	freq := float64(hits) / n
	if math.Abs(freq-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) frequency = %v", freq)
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(8)
	const n, buckets = 120000, 6
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	want := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Fatalf("bucket %d: count %d deviates from %v", b, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(11)
	check := func(n uint8) bool {
		size := int(n%32) + 1
		p := r.Perm(size)
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	r := New(12)
	const n, size = 60000, 4
	counts := make([]int, size)
	for i := 0; i < n; i++ {
		counts[r.Perm(size)[0]]++
	}
	want := float64(n) / size
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Fatalf("first element %d: count %d deviates from %v", b, c, want)
		}
	}
}

func TestStateRestore(t *testing.T) {
	r := New(13)
	r.Uint64()
	st := r.State()
	a := r.Uint64()
	if err := r.Restore(st); err != nil {
		t.Fatal(err)
	}
	if b := r.Uint64(); a != b {
		t.Fatalf("restored stream diverged: %d != %d", a, b)
	}
}

func TestRestoreRejectsZeroState(t *testing.T) {
	r := New(14)
	if err := r.Restore([4]uint64{}); err != ErrDegenerateState {
		t.Fatalf("Restore(zero) = %v, want ErrDegenerateState", err)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(15)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Intn(1000)
	}
}

// TestFillUint64sStreamIdentical is the bulk-fill contract: any sequence
// of FillUint64s calls (including empty and odd-length buffers) yields
// exactly the words — and exactly the final state — that the same number
// of sequential Uint64 calls would. Both kernel engines draw through
// this property, so it is what keeps the compiled-vs-reference oracle
// comparison fair by construction.
func TestFillUint64sStreamIdentical(t *testing.T) {
	if err := quick.Check(func(seed uint64, sizes []uint8) bool {
		bulk, seq := New(seed), New(seed)
		for _, sz := range sizes {
			buf := make([]uint64, int(sz)%97)
			bulk.FillUint64s(buf)
			for i, w := range buf {
				if want := seq.Uint64(); w != want {
					t.Logf("word %d: bulk %d != sequential %d", i, w, want)
					return false
				}
			}
		}
		return bulk.State() == seq.State()
	}, nil); err != nil {
		t.Error(err)
	}
}

// TestFillFloat64sStreamIdentical pins the float path to sequential
// Float64 calls the same way.
func TestFillFloat64sStreamIdentical(t *testing.T) {
	bulk, seq := New(99), New(99)
	for _, size := range []int{0, 1, 7, 64, 1000} {
		buf := make([]float64, size)
		bulk.FillFloat64s(buf)
		for i, v := range buf {
			if want := seq.Float64(); v != want {
				t.Fatalf("size %d, variate %d: bulk %v != sequential %v", size, i, v, want)
			}
		}
	}
	if bulk.State() != seq.State() {
		t.Error("bulk and sequential float streams diverged in state")
	}
}

// TestFillUint64sZeroAlloc pins the bulk fill as allocation-free — the
// guarantee the rng-bulkfill perf scenario gates.
func TestFillUint64sZeroAlloc(t *testing.T) {
	src := New(3)
	buf := make([]uint64, 4096)
	if avg := testing.AllocsPerRun(10, func() { src.FillUint64s(buf) }); avg != 0 {
		t.Errorf("FillUint64s allocates %.1f per call, want 0", avg)
	}
	fbuf := make([]float64, 4096)
	if avg := testing.AllocsPerRun(10, func() { src.FillFloat64s(fbuf) }); avg != 0 {
		t.Errorf("FillFloat64s allocates %.1f per call, want 0", avg)
	}
}
