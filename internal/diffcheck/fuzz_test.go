package diffcheck

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"memreliability/internal/estimator"
	"memreliability/internal/memmodel"
)

// fuzzProbLattice matches scenariogen's edge-heavy lattice; the fuzzer
// picks indices into it rather than raw floats, so every input is a
// valid probability and the 0/1 corners stay reachable.
var fuzzProbLattice = []float64{0, 0.05, 0.25, 0.5, 0.75, 0.95, 1}

// queryFromWords decodes two fuzz words into a valid bounded estimator
// query: seed verbatim, and the choice word's bit fields clamped into
// the harness's cheap ranges (n ≤ 3, m ≤ 8, ≤ 512 trials) so every
// input stays well under the fuzz-smoke time budget.
func queryFromWords(seed, choices uint64) estimator.Query {
	models := memmodel.Registered()
	take := func(bits uint) uint64 {
		v := choices & (1<<bits - 1)
		choices >>= bits
		return v
	}
	kinds := []estimator.Kind{estimator.FullMC, estimator.CompiledMC}
	q := estimator.Query{
		Kind:      kinds[take(1)],
		Model:     models[take(3)%uint64(len(models))].Name(),
		Threads:   2 + int(take(1)),
		PrefixLen: 1 + int(take(3)),
		StoreProb: fuzzProbLattice[take(3)%uint64(len(fuzzProbLattice))],
		SwapProb:  fuzzProbLattice[take(3)%uint64(len(fuzzProbLattice))],
		Trials:    1 + int(take(9)),
		Seed:      seed,
	}
	q.MaxGamma = int(take(3))
	if q.MaxGamma > q.PrefixLen {
		q.MaxGamma = q.PrefixLen
	}
	if take(2) == 3 {
		q.Precision = &estimator.Precision{TargetHalfWidth: 0.05, MaxTrials: 1 << 11}
	}
	return q
}

// FuzzDifferentialEstimate feeds fuzzer-chosen queries through the full
// differential harness: every route to the same answer must agree. The
// committed corpus under testdata/fuzz/FuzzDifferentialEstimate pins
// the kind/model/probability corners (including the RMO/LRO variants
// and the p, s ∈ {0, 1} edges); plain `go test` replays all of it.
func FuzzDifferentialEstimate(f *testing.F) {
	f.Add(uint64(1), uint64(0))
	f.Fuzz(func(t *testing.T, seed, choices uint64) {
		q := queryFromWords(seed, choices)
		if err := Check(context.Background(), q); err != nil {
			t.Fatalf("differential divergence: %v\nrepro query: %+v", err, q)
		}
	})
}

// TestDifferentialCorpusCommitted guards the committed seed corpus, so
// `go test` (which replays testdata/fuzz natively) actually covers the
// pinned corners.
func TestDifferentialCorpusCommitted(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzDifferentialEstimate")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("committed fuzz corpus missing: %v", err)
	}
	if len(entries) < 8 {
		t.Errorf("corpus has %d entries, want ≥ 8", len(entries))
	}
}

// TestQueryFromWordsAlwaysValid sweeps the decoder over a spread of
// words: every decoded query must pass estimator validation and stay
// within the harness's cheap bounds.
func TestQueryFromWordsAlwaysValid(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		for ch := uint64(0); ch < 1<<12; ch += 7 {
			q := queryFromWords(seed, ch*0x9e3779b97f4a7c15)
			if err := q.Normalized().Validate(); err != nil {
				t.Fatalf("words (%d, %#x) decode to invalid query %+v: %v", seed, ch, q, err)
			}
			if q.Threads > 3 || q.PrefixLen > 8 || q.Trials > 512 {
				t.Fatalf("words (%d, %#x) escape the cheap bounds: %+v", seed, ch, q)
			}
		}
	}
}
