package diffcheck

import (
	"context"
	"strings"
	"testing"

	"memreliability/internal/core"
	"memreliability/internal/estimator"
	"memreliability/internal/memmodel"
	"memreliability/internal/scenariogen"
)

// TestCheckGeneratedQueries is the harness's own smoke: a few hundred
// generated scenarios across every kind and registered model must agree
// on every route.
func TestCheckGeneratedQueries(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep")
	}
	ctx := context.Background()
	g := scenariogen.New(1)
	p := scenariogen.QueryParams{MaxThreads: 3, MaxPrefix: 8, MaxTrials: 512}
	for i := 0; i < 200; i++ {
		q := g.Query(p)
		if err := Check(ctx, q); err != nil {
			t.Fatalf("scenario %d diverged: %v\nrepro query: %+v", i, err, q)
		}
	}
}

// TestCheckExactRoutesCustomModels covers the full 16-point relax-
// matrix lattice with unregistered generated models — the named models
// are only 6 of its points.
func TestCheckExactRoutesCustomModels(t *testing.T) {
	g := scenariogen.New(2)
	for i := 0; i < 40; i++ {
		cfg := core.Config{
			Model:     g.Model(),
			Threads:   2 + i%2,
			PrefixLen: 3 + i%4,
			StoreProb: g.Prob(),
			SwapProb:  g.Prob(),
		}
		if _, err := CheckExactRoutes(cfg); err != nil {
			t.Fatalf("model %s (n=%d, m=%d, p=%v, s=%v): %v",
				cfg.Model.Name(), cfg.Threads, cfg.PrefixLen, cfg.StoreProb, cfg.SwapProb, err)
		}
	}
}

func TestCheckEnginesAdaptive(t *testing.T) {
	q := estimator.DefaultQuery()
	q.Kind = estimator.FullMC
	q.Model = "RMO"
	q.PrefixLen = 8
	q.Trials = 512
	q.Precision = &estimator.Precision{TargetHalfWidth: 0.05, MaxTrials: 1 << 12}
	if err := CheckEngines(context.Background(), q); err != nil {
		t.Fatal(err)
	}
}

// TestCheckWindowDistAllModels runs the window-distribution sanity (and
// the SC/TSO/WO analytic bounds) for every registered model, variants
// included.
func TestCheckWindowDistAllModels(t *testing.T) {
	for _, m := range memmodel.Registered() {
		if err := CheckWindowDist(m, 12, 6); err != nil {
			t.Errorf("%s: %v", m.Name(), err)
		}
	}
}

// TestCheckExactVsMCDetectsBias is the negative control: feeding a
// wrong "exact" value must trip the containment check — otherwise the
// harness could never catch a biased estimator.
func TestCheckExactVsMCDetectsBias(t *testing.T) {
	q := estimator.DefaultQuery()
	q.Kind = estimator.FullMC
	q.Model = "TSO"
	q.Threads = 2
	q.PrefixLen = 8
	q.Trials = 4096
	exact, err := CheckExactRoutes(core.Config{Model: memmodel.TSO(), Threads: 2, PrefixLen: 8,
		StoreProb: 0.5, SwapProb: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	q.StoreProb, q.SwapProb = 0.5, 0.5
	if err := CheckExactVsMC(context.Background(), q, exact); err != nil {
		t.Fatalf("true exact value flagged: %v", err)
	}
	err = CheckExactVsMC(context.Background(), q, exact+0.2)
	if err == nil || !strings.Contains(err.Error(), "containment") {
		t.Fatalf("biased exact value not flagged: %v", err)
	}
}

func TestExactFeasible(t *testing.T) {
	cases := []struct {
		n, m int
		want bool
	}{
		{2, 10, true}, {2, 12, false}, {3, 8, true}, {3, 10, false},
		{4, 6, true}, {4, 8, false}, {5, 4, false}, {2, 13, false}, {1, 4, false},
	}
	for _, tc := range cases {
		if got := ExactFeasible(tc.n, tc.m); got != tc.want {
			t.Errorf("ExactFeasible(%d, %d) = %v, want %v", tc.n, tc.m, got, tc.want)
		}
	}
}
