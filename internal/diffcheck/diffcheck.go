// Package diffcheck is the differential validation harness: one query,
// every independent route to the same answer, cross-checked. It is the
// shared core of cmd/memdiff (the randomized sweep) and the
// FuzzDifferentialEstimate fuzz target, so a divergence found by either
// replays through the other.
//
// The routes and their agreement contracts:
//
//   - mc vs mc-compiled vs the []bool closure adapter: estimator seed
//     derivation is kind-independent, so these must be BIT-identical —
//     no tolerance at all.
//   - ExactSmallPrA vs ExactSmallPrAViaTheorem61: two independent exact
//     enumerations (joint DP vs Theorem 6.1 factorization) that must
//     agree to float rounding.
//   - ExactTwoThreadPrA: the n=2 settling-DP interval must contain the
//     enumerated value.
//   - exact vs Monte Carlo: the MC success count must be statistically
//     consistent with the exact value under an exact binomial tail test
//     at ContainmentAlpha. (A Wilson interval is the wrong tool here:
//     its coverage collapses in the deep-rare-event regime — one lucky
//     success among thousands of trials excludes a true Pr[A] of 1e-5
//     at any z. The binomial tails are exact in every regime.) The
//     threshold is set so extreme that a flagged query is a bug, not a
//     sampling fluke.
//   - settle.ExactWindowDist vs the paper's closed-form window bounds
//     (SC, TSO, WO at the normal form p = s = 1/2), plus PMF sanity for
//     every model.
package diffcheck

import (
	"context"
	"fmt"
	"math"
	"reflect"

	"memreliability/internal/analytic"
	"memreliability/internal/core"
	"memreliability/internal/estimator"
	"memreliability/internal/mc"
	"memreliability/internal/memmodel"
	"memreliability/internal/settle"
)

// ContainmentAlpha is the per-side significance threshold of the
// exact-vs-MC binomial containment test. At 10⁴ fuzz scenarios the
// expected false-positive count is ~10⁻⁵, so the harness stays
// deterministic-flake-free while still catching any systematic
// estimator bias.
const ContainmentAlpha = 1e-9

// Enumeration limits of the exact oracles (core's full enumeration).
const (
	maxExactThreads = 4
	maxExactPrefix  = 12
)

// maxWindowDistPrefix mirrors settle's exact-DP prefix bound.
const maxWindowDistPrefix = 18

// exactCostLimit bounds the enumeration work Check will spend per
// query: 2^m programs × (m+1)^n window tuples. 2^18 keeps the exact
// routes under ~50ms on commodity hardware (n=4 m=10 alone costs ~1s),
// so fuzz inputs and sweep queries stay cheap while n=2 still covers
// m ≤ 10, n=3 m ≤ 8, and n=4 m ≤ 6.
const exactCostLimit = 1 << 18

// ExactFeasible reports whether Check will run the exact-enumeration
// cross-checks for a (threads, prefix) shape: within the oracles'
// domain and under the per-query enumeration budget.
func ExactFeasible(threads, prefix int) bool {
	if threads < 2 || threads > maxExactThreads || prefix < 1 || prefix > maxExactPrefix {
		return false
	}
	cost := math.Pow(2, float64(prefix)) * math.Pow(float64(prefix+1), float64(threads))
	return cost <= exactCostLimit
}

// Check runs every cross-check applicable to the query: engine
// bit-identity for trial-consuming kinds, the exact-route agreements
// and exact-vs-MC containment when the query is within enumeration
// range, and the window-distribution bounds at the analytic normal
// form. A nil return means every applicable route agreed.
func Check(ctx context.Context, q estimator.Query) error {
	q = q.Normalized()
	if err := q.Validate(); err != nil {
		return fmt.Errorf("diffcheck: %w", err)
	}
	model, err := memmodel.ByName(q.Model)
	if err != nil {
		return err
	}
	if q.Kind == estimator.FullMC || q.Kind == estimator.CompiledMC {
		if err := CheckEngines(ctx, q); err != nil {
			return err
		}
	}
	cfg := core.Config{Model: model, Threads: q.Threads, PrefixLen: q.PrefixLen,
		StoreProb: q.StoreProb, SwapProb: q.SwapProb}
	if ExactFeasible(q.Threads, q.PrefixLen) {
		exact, err := CheckExactRoutes(cfg)
		if err != nil {
			return err
		}
		if q.Kind == estimator.FullMC || q.Kind == estimator.CompiledMC {
			if err := CheckExactVsMC(ctx, q, exact); err != nil {
				return err
			}
		}
	}
	if q.StoreProb == 0.5 && q.SwapProb == 0.5 {
		// The settling DP's exact range is m ≤ 18; longer queries still
		// validate the distribution, at the clamped prefix.
		m := q.PrefixLen
		if m > maxWindowDistPrefix {
			m = maxWindowDistPrefix
		}
		maxGamma := q.MaxGamma
		if maxGamma > m {
			maxGamma = m
		}
		if err := CheckWindowDist(model, m, maxGamma); err != nil {
			return err
		}
	}
	return nil
}

// CheckEngines requires the table-driven mc kernel, the query-compiled
// kernel, and (on fixed-trials queries) the []bool closure adapter to
// produce bit-identical results on the query. Estimator seed derivation
// is kind-independent, so there is no tolerance: any difference is a
// bug.
func CheckEngines(ctx context.Context, q estimator.Query) error {
	q.Kind = estimator.FullMC
	ref, err := estimator.Estimate(ctx, q)
	if err != nil {
		return fmt.Errorf("mc: %w", err)
	}
	q.Kind = estimator.CompiledMC
	compiled, err := estimator.Estimate(ctx, q)
	if err != nil {
		return fmt.Errorf("mc-compiled: %w", err)
	}
	ref.Kind = estimator.CompiledMC // the only field allowed to differ
	if !reflect.DeepEqual(ref, compiled) {
		return fmt.Errorf("mc-compiled diverged from mc:\n  mc:          %+v\n  mc-compiled: %+v", ref, compiled)
	}
	if q.Precision != nil {
		return nil // the closure adapter has no adaptive entry point
	}

	// Closure adapter: the deliberately simple []bool oracle on the same
	// derived substream.
	model, err := memmodel.ByName(q.Model)
	if err != nil {
		return err
	}
	cfg := core.Config{Model: model, Threads: q.Threads, PrefixLen: q.PrefixLen,
		StoreProb: q.StoreProb, SwapProb: q.SwapProb}
	batch, err := cfg.NoBugBatch()
	if err != nil {
		return err
	}
	sub := estimator.DeriveSeeds(q.Normalized().Seed, 1)[0]
	out, err := mc.EstimateProbabilityBatch(ctx, mc.Config{Trials: q.Trials, Seed: sub}, batch)
	if err != nil {
		return fmt.Errorf("closure adapter: %w", err)
	}
	if out.Estimate() != ref.Estimate {
		return fmt.Errorf("closure adapter diverged: adapter %v, engines %v", out.Estimate(), ref.Estimate)
	}
	return nil
}

// CheckExactRoutes cross-checks the independent exact oracles on a
// config within enumeration range (n ≤ 4, m ≤ 12) and returns the
// agreed exact Pr[A]. The config's model may be any relax matrix —
// registered or not — which is how the generator's 16-point model
// lattice is covered.
func CheckExactRoutes(cfg core.Config) (float64, error) {
	direct, err := core.ExactSmallPrA(cfg)
	if err != nil {
		return 0, fmt.Errorf("exact enumeration: %w", err)
	}
	via61, err := core.ExactSmallPrAViaTheorem61(cfg)
	if err != nil {
		return 0, fmt.Errorf("exact via Theorem 6.1: %w", err)
	}
	if math.Abs(direct-via61) > 1e-9*math.Max(1, math.Abs(direct)) {
		return 0, fmt.Errorf("exact routes diverged: enumeration %v vs Theorem 6.1 %v (Δ=%v)",
			direct, via61, direct-via61)
	}
	if cfg.Threads == 2 {
		iv, err := core.ExactTwoThreadPrA(cfg)
		if err != nil {
			return 0, fmt.Errorf("exact two-thread DP: %w", err)
		}
		if direct < iv.Lo-1e-9 || direct > iv.Hi+1e-9 {
			return 0, fmt.Errorf("enumerated Pr[A] = %v outside the n=2 DP interval [%v, %v]",
				direct, iv.Lo, iv.Hi)
		}
	}
	return direct, nil
}

// CheckExactVsMC runs the query's Monte Carlo route (fixed trials) and
// requires the observed success count to be consistent with the exact
// Pr[A]: both binomial tail probabilities P(X ≤ k) and P(X ≥ k) under
// Binomial(trials, exact) must exceed ContainmentAlpha. Unlike a
// normal-approximation interval, the test is exact for every (k,
// trials, p) — including the rare-event corner where k is 0 or 1.
func CheckExactVsMC(ctx context.Context, q estimator.Query, exact float64) error {
	q.Kind = estimator.FullMC
	q.Precision = nil
	res, err := estimator.Estimate(ctx, q)
	if err != nil {
		return fmt.Errorf("mc: %w", err)
	}
	// Recover the success count from the estimate: trials·p̂ is integral
	// up to float rounding.
	successes := int(math.Round(res.Estimate * float64(q.Trials)))
	below := binomTail(successes, q.Trials, exact, false)
	above := binomTail(successes, q.Trials, exact, true)
	if below < ContainmentAlpha || above < ContainmentAlpha {
		return fmt.Errorf("MC containment violated: %d/%d successes vs exact Pr[A] = %v "+
			"(binomial tails P[X≤k] = %.3g, P[X≥k] = %.3g, alpha %g)",
			successes, q.Trials, exact, below, above, ContainmentAlpha)
	}
	return nil
}

// binomTail returns P(X ≤ k) (upper = false) or P(X ≥ k) (upper =
// true) for X ~ Binomial(n, p), by direct pmf summation in log space.
// n is at most the fuzz trial cap, so the sum is cheap and exact to
// float rounding — no normal approximation anywhere.
func binomTail(k, n int, p float64, upper bool) float64 {
	switch {
	case upper && k <= 0, !upper && k >= n:
		return 1
	case upper && k > n, !upper && k < 0:
		return 0
	case p <= 0:
		if upper { // k ≥ 1 here: P(X ≥ k) with X ≡ 0
			return 0
		}
		return 1 // k < n here, but X ≡ 0 ≤ k always for k ≥ 0
	case p >= 1:
		if upper {
			return 1 // X ≡ n ≥ k always for k ≤ n
		}
		return 0 // k < n here: P(X ≤ k) with X ≡ n
	}
	lo, hi := 0, k
	if upper {
		lo, hi = k, n
	}
	lgN, _ := math.Lgamma(float64(n + 1))
	logP, log1mP := math.Log(p), math.Log1p(-p)
	sum := 0.0
	for i := lo; i <= hi; i++ {
		lgK, _ := math.Lgamma(float64(i + 1))
		lgNK, _ := math.Lgamma(float64(n - i + 1))
		sum += math.Exp(lgN - lgK - lgNK + float64(i)*logP + float64(n-i)*log1mP)
	}
	return math.Min(sum, 1)
}

// CheckWindowDist validates the exact window distribution: every mass
// is a probability, the tabulated support sums to ≤ 1, and — for the
// models with closed forms in the paper (SC, TSO, WO) — each Pr[B_γ]
// respects the Theorem 4.1 bounds up to finite-m truncation. The
// distribution is evaluated at the paper's normal form p = s = 1/2.
func CheckWindowDist(model memmodel.Model, m, maxGamma int) error {
	pmf, err := settle.ExactWindowDist(model, m, 0.5, 0.5, maxGamma)
	if err != nil {
		return fmt.Errorf("window dist: %w", err)
	}
	total := 0.0
	for gamma := 0; gamma <= maxGamma; gamma++ {
		p := pmf.At(gamma)
		if p < -1e-12 || p > 1+1e-12 {
			return fmt.Errorf("%s: Pr[B_%d] = %v is not a probability", model.Name(), gamma, p)
		}
		total += p
	}
	if total > 1+1e-9 {
		return fmt.Errorf("%s: window masses sum to %v > 1", model.Name(), total)
	}
	switch model.Name() {
	case "SC", "TSO", "WO":
	default:
		return nil // no closed form (paper footnote 4 for PSO; variants likewise)
	}
	for gamma := 0; gamma <= maxGamma; gamma++ {
		iv, err := analytic.WindowInterval(model.Name(), gamma)
		if err != nil {
			return err
		}
		// The DP truncates the settling walk at m instructions; the
		// closed forms are the m → ∞ limits. O(2^-(m-γ)) slack covers
		// the truncated tail.
		slack := math.Pow(2, -float64(m-gamma))
		got := pmf.At(gamma)
		if got < iv.Lo-slack || got > iv.Hi+slack {
			return fmt.Errorf("%s: Pr[B_%d] = %v outside analytic bounds [%v, %v] (m=%d, slack %v)",
				model.Name(), gamma, got, iv.Lo, iv.Hi, m, slack)
		}
	}
	return nil
}
