package text

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// FuzzParseLitmus is the parser's robustness-and-round-trip property:
// for any input, Parse either fails with a position-carrying error or
// yields tests the printer can render canonically — and the canonical
// form reparses to the identical structures, byte-stably.
//
// The committed corpus under testdata/fuzz/FuzzParseLitmus seeds every
// registry litmus test plus hand-written grammar edge cases; plain
// `go test` replays all of it.
func FuzzParseLitmus(f *testing.F) {
	// The committed registry files double as in-code seeds, so the
	// property runs against the real tests even with an empty corpus.
	entries, err := os.ReadDir(filepath.Join("testdata", "registry"))
	if err != nil {
		f.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join("testdata", "registry", e.Name()))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, src []byte) {
		tests, err := Parse("fuzz.litmus", src)
		if err != nil {
			// Rejections must carry a usable position.
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("non-ParseError rejection %T: %v", err, err)
			}
			if pe.Pos.Line < 1 || pe.Pos.Col < 1 {
				t.Fatalf("error position %s out of range: %v", pe.Pos, err)
			}
			return
		}
		// Anything the parser accepts, the printer must render...
		printed, err := Print(tests...)
		if err != nil {
			t.Fatalf("parsed input is unprintable: %v\ninput:\n%s", err, src)
		}
		// ...and the canonical form must reparse to the same structures.
		again, err := Parse("fuzz2.litmus", printed)
		if err != nil {
			t.Fatalf("canonical form does not reparse: %v\ncanonical:\n%s", err, printed)
		}
		if !reflect.DeepEqual(again, tests) {
			t.Fatalf("round-trip mismatch:\ninput:\n%s\ncanonical:\n%s", src, printed)
		}
		// Printing is a fixed point after one canonicalization.
		stable, err := Print(again...)
		if err != nil {
			t.Fatalf("reprint: %v", err)
		}
		if string(stable) != string(printed) {
			t.Fatalf("print not byte-stable:\n%s\nvs\n%s", printed, stable)
		}
	})
}

// TestFuzzCorpusCommitted guards the committed seed corpus: it must
// exist and cover at least the registry tests plus the hand-written
// edge cases, so `go test` (which replays testdata/fuzz natively)
// actually exercises them.
func TestFuzzCorpusCommitted(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzParseLitmus")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("committed fuzz corpus missing: %v", err)
	}
	if len(entries) < 18 {
		t.Errorf("corpus has %d entries, want ≥ 18 (registry seeds + edge cases)", len(entries))
	}
}
