// print.go is the deterministic printer: the inverse of Parse. Printing
// the same test always yields identical bytes (maps are emitted in
// sorted or registry order), and Parse(Print(t)) reconstructs t exactly
// — the committed testdata/registry/*.litmus files are proven equal to
// litmus.Registry() through exactly this pair.
package text

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"memreliability/internal/litmus"
	"memreliability/internal/machine"
	"memreliability/internal/memmodel"
)

// Print renders tests in the canonical text form, separated by blank
// lines. It errors on tests the grammar cannot express (unknown op
// types, names that are not identifiers, expectations for unregistered
// models) — loudly, rather than printing something that will not parse
// back.
func Print(tests ...litmus.Test) ([]byte, error) {
	var sb strings.Builder
	for i, t := range tests {
		if i > 0 {
			sb.WriteString("\n")
		}
		if err := printTest(&sb, t); err != nil {
			return nil, fmt.Errorf("text: print test %q: %w", t.Name, err)
		}
	}
	return []byte(sb.String()), nil
}

func printTest(sb *strings.Builder, t litmus.Test) error {
	if t.Name == "" {
		return fmt.Errorf("empty test name")
	}
	fmt.Fprintf(sb, "test %s {\n", strconv.Quote(t.Name))
	if t.Description != "" {
		fmt.Fprintf(sb, "\tdescription %s\n", strconv.Quote(t.Description))
	}
	if len(t.Prog.Init) > 0 {
		locs := make([]string, 0, len(t.Prog.Init))
		for loc := range t.Prog.Init {
			if err := checkIdent(loc, "init location"); err != nil {
				return err
			}
			locs = append(locs, loc)
		}
		sort.Strings(locs)
		sb.WriteString("\tinit {")
		for _, loc := range locs {
			fmt.Fprintf(sb, " %s = %d", loc, t.Prog.Init[loc])
		}
		sb.WriteString(" }\n")
	}
	for _, th := range t.Prog.Threads {
		if th.Name != "" {
			fmt.Fprintf(sb, "\tthread %s {\n", strconv.Quote(th.Name))
		} else {
			sb.WriteString("\tthread {\n")
		}
		for _, op := range th.Ops {
			line, err := printOp(op)
			if err != nil {
				return err
			}
			fmt.Fprintf(sb, "\t\t%s\n", line)
		}
		sb.WriteString("\t}\n")
	}
	if len(t.Target) > 0 {
		refs := make([]string, 0, len(t.Target))
		for ref := range t.Target {
			if err := checkRef(ref); err != nil {
				return err
			}
			refs = append(refs, ref)
		}
		sort.Strings(refs)
		clauses := make([]string, len(refs))
		for i, ref := range refs {
			clauses[i] = fmt.Sprintf("%s = %d", ref, t.Target[ref])
		}
		fmt.Fprintf(sb, "\texists { %s }\n", strings.Join(clauses, " && "))
	}
	if err := printExpectations(sb, t); err != nil {
		return err
	}
	sb.WriteString("}\n")
	return nil
}

// printExpectations emits one `model NAME allowed|forbidden` line per
// expectation, in memmodel registration order. An expectation for a
// model that is not registered is an error: it could never parse back,
// and silently dropping it would turn a typo into a missing verdict.
func printExpectations(sb *strings.Builder, t litmus.Test) error {
	printed := 0
	for _, m := range memmodel.Registered() {
		allowed, ok := t.AllowedUnder[m.Name()]
		if !ok {
			continue
		}
		verdict := "forbidden"
		if allowed {
			verdict = "allowed"
		}
		fmt.Fprintf(sb, "\tmodel %s %s\n", m.Name(), verdict)
		printed++
	}
	if printed != len(t.AllowedUnder) {
		for name := range t.AllowedUnder {
			if _, err := memmodel.ByName(name); err != nil {
				return fmt.Errorf("expectation for unknown model %q: %w", name, err)
			}
		}
		return fmt.Errorf("expectation for a model with a non-canonical name")
	}
	return nil
}

// printOp renders one instruction in the grammar's canonical spelling.
func printOp(op machine.Op) (string, error) {
	switch o := op.(type) {
	case machine.LoadOp:
		if err := checkIdent(o.Dst, "load destination"); err != nil {
			return "", err
		}
		if err := checkIdent(o.Addr, "load location"); err != nil {
			return "", err
		}
		return fmt.Sprintf("%s = LD %s", o.Dst, o.Addr), nil
	case machine.StoreOp:
		if err := checkIdent(o.Addr, "store location"); err != nil {
			return "", err
		}
		src, err := printOperand(o.Src)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("ST %s = %s", o.Addr, src), nil
	case machine.AddOp:
		if err := checkIdent(o.Dst, "add destination"); err != nil {
			return "", err
		}
		a, err := printOperand(o.A)
		if err != nil {
			return "", err
		}
		b, err := printOperand(o.B)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%s = %s + %s", o.Dst, a, b), nil
	case machine.FenceOp:
		switch o.Kind {
		case memmodel.FenceFull:
			return "FENCE", nil
		case memmodel.FenceAcquire:
			return "ACQ", nil
		case memmodel.FenceRelease:
			return "REL", nil
		default:
			return "", fmt.Errorf("fence kind %v has no text form", o.Kind)
		}
	case machine.RMWAddOp:
		if err := checkIdent(o.Dst, "RMW destination"); err != nil {
			return "", err
		}
		if err := checkIdent(o.Addr, "RMW location"); err != nil {
			return "", err
		}
		return fmt.Sprintf("%s = RMW %s += %d", o.Dst, o.Addr, o.Delta), nil
	default:
		return "", fmt.Errorf("op %T has no text form", op)
	}
}

// printOperand renders a register or immediate operand. The zero-value
// operand is Imm(0), matching machine.Operand's semantics.
func printOperand(o machine.Operand) (string, error) {
	s := o.String()
	if n, err := strconv.Atoi(s); err == nil {
		return strconv.Itoa(n), nil
	}
	if err := checkIdent(s, "operand register"); err != nil {
		return "", err
	}
	return s, nil
}

// checkIdent validates that a name is expressible as a grammar
// identifier (and is not a reserved instruction keyword).
func checkIdent(s, what string) error {
	if s == "" {
		return fmt.Errorf("empty %s", what)
	}
	if reserved[s] {
		return fmt.Errorf("%s %q is a reserved word", what, s)
	}
	for i, r := range s {
		if i == 0 && !isIdentStart(r) {
			return fmt.Errorf("%s %q is not an identifier", what, s)
		}
		if i > 0 && !isIdentPart(r) {
			return fmt.Errorf("%s %q is not an identifier", what, s)
		}
	}
	return nil
}

// checkRef validates a condition reference: an identifier, optionally
// with one ":"-separated register part.
func checkRef(ref string) error {
	parts := strings.SplitN(ref, ":", 2)
	if err := checkIdent(parts[0], "condition reference"); err != nil {
		return err
	}
	if len(parts) == 2 {
		if err := checkIdent(parts[1], "condition register"); err != nil {
			return err
		}
	}
	return nil
}
