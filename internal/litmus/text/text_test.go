package text

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"memreliability/internal/litmus"
	"memreliability/internal/machine"
	"memreliability/internal/memmodel"
)

// TestRegistryRoundTrip is the struct → print → parse → struct gate:
// every built-in litmus test survives the DSL byte-identically.
func TestRegistryRoundTrip(t *testing.T) {
	for _, tc := range litmus.Registry() {
		data, err := Print(tc)
		if err != nil {
			t.Fatalf("%s: print: %v", tc.Name, err)
		}
		parsed, err := Parse(tc.Name+".litmus", data)
		if err != nil {
			t.Fatalf("%s: parse: %v\n%s", tc.Name, err, data)
		}
		if len(parsed) != 1 {
			t.Fatalf("%s: parsed %d tests", tc.Name, len(parsed))
		}
		if !reflect.DeepEqual(parsed[0], tc) {
			t.Errorf("%s: round-trip mismatch:\ngot  %#v\nwant %#v", tc.Name, parsed[0], tc)
		}
		// Printing the reparsed test reproduces the bytes exactly.
		again, err := Print(parsed[0])
		if err != nil {
			t.Fatalf("%s: reprint: %v", tc.Name, err)
		}
		if string(again) != string(data) {
			t.Errorf("%s: print not deterministic under reparse:\n%s\nvs\n%s", tc.Name, data, again)
		}
	}
}

// TestCommittedRegistryFiles pins the committed testdata/registry files
// to the Go structs: parsing each file yields exactly the registry test,
// and printing the registry test yields exactly the file's bytes. A
// drifted file (or a registry change without `go run ./internal/litmus/
// text/gen`) fails here.
func TestCommittedRegistryFiles(t *testing.T) {
	dir := filepath.Join("testdata", "registry")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	onDisk := map[string]bool{}
	for _, e := range entries {
		onDisk[e.Name()] = true
	}
	for _, tc := range litmus.Registry() {
		name := tc.Name + ".litmus"
		if !onDisk[name] {
			t.Errorf("registry test %q has no committed %s", tc.Name, name)
			continue
		}
		delete(onDisk, name)
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		parsed, err := Parse(name, data)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if len(parsed) != 1 || !reflect.DeepEqual(parsed[0], tc) {
			t.Errorf("%s: committed file does not parse to the registry struct", name)
		}
		printed, err := Print(tc)
		if err != nil {
			t.Fatal(err)
		}
		if string(printed) != string(data) {
			t.Errorf("%s: committed bytes differ from the canonical printed form", name)
		}
	}
	for name := range onDisk {
		t.Errorf("testdata/registry/%s matches no registry test", name)
	}
}

func TestParseMultipleTests(t *testing.T) {
	var all []litmus.Test
	var combined []byte
	for _, tc := range litmus.Registry() {
		all = append(all, tc)
	}
	combined, err := Print(all...)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := Parse("registry.litmus", combined)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(parsed, all) {
		t.Error("multi-test file round-trip mismatch")
	}
}

// TestParseErrorPositions asserts malformed inputs fail with
// position-carrying errors pointing at the offending token.
func TestParseErrorPositions(t *testing.T) {
	cases := []struct {
		name      string
		src       string
		line, col int
		contains  string
	}{
		{"not a test", "bogus \"X\" {}", 1, 1, `expected "test"`},
		{"missing name", "test {", 1, 6, "expected string"},
		{"empty name", `test "" {`, 1, 6, "empty test name"},
		{"unknown clause", "test \"X\" {\n  frobnicate\n}", 2, 3, "unknown clause"},
		{"unterminated string", "test \"X", 1, 6, "unterminated string"},
		{"bad escape", `test "\z" {}`, 1, 6, "bad string literal"},
		{"unexpected char", "test \"X\" {\n  exists { x = 0 }\n  thread { ST x = 1 }\n} $", 4, 3, "unexpected character"},
		{"lone dash", "test \"X\" { init { x = - } }", 1, 23, "expected digits"},
		{"lone amp", "test \"X\" { exists { x = 0 & } }", 1, 27, "expected '&&'"},
		{"dup description", "test \"X\" {\n  description \"a\"\n  description \"b\"\n}", 3, 3, "duplicate description"},
		{"dup init", "test \"X\" {\n  init { x = 0 }\n  init { y = 0 }\n}", 3, 3, "duplicate init"},
		{"dup init loc", "test \"X\" { init { x = 0 x = 1 } }", 1, 25, "duplicate init location"},
		{"dup exists", "test \"X\" {\n  exists { x = 0 }\n  exists { x = 1 }\n}", 3, 3, "duplicate exists"},
		{"dup cond ref", "test \"X\" { exists { x = 0 && x = 1 } }", 1, 30, "duplicate condition reference"},
		{"numeric cond register", "test \"X\" { exists { A00:0 = 0 } }", 1, 21, "condition register \"0\" is not an identifier"},
		{"reserved cond ref", "test \"X\" { exists { ST:r1 = 0 } }", 1, 21, "reserved word"},
		{"reserved reg", "test \"X\" { thread { ST x = 1 LD = 2 + 3 } }", 1, 30, "needs a destination register"},
		{"reserved loc", "test \"X\" { thread { ST FENCE = 1 } }", 1, 24, "reserved word"},
		{"missing rmw delta", "test \"X\" { thread { r = RMW x += } }", 1, 34, "expected integer"},
		{"unknown model", "test \"X\" {\n  exists { x = 0 }\n  thread { ST x = 1 }\n  model XYZ allowed\n}", 4, 9, "unknown model"},
		{"bad verdict", "test \"X\" {\n  exists { x = 0 }\n  thread { ST x = 1 }\n  model SC maybe\n}", 4, 12, `"allowed" or "forbidden"`},
		{"dup model", "test \"X\" {\n  exists { x = 0 }\n  thread { ST x = 1 }\n  model SC allowed\n  model sc forbidden\n}", 5, 9, "duplicate expectation"},
		{"no exists", "test \"X\" { thread { ST x = 1 } }", 1, 1, "no exists clause"},
		{"no threads", "test \"X\" { exists { x = 0 } }", 1, 1, "no threads"},
		{"dup test", "test \"X\" { exists { x = 0 } thread { ST x = 1 } }\ntest \"X\" { exists { x = 0 } thread { ST x = 1 } }", 2, 1, "duplicate test"},
		{"ref in thread", "test \"X\" { thread { t0:r1 = LD x } }", 1, 21, "reference"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse("in.litmus", []byte(tc.src))
			if err == nil {
				t.Fatalf("input accepted:\n%s", tc.src)
			}
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("error is %T, not *ParseError: %v", err, err)
			}
			if pe.Name != "in.litmus" {
				t.Errorf("error name = %q", pe.Name)
			}
			if pe.Pos.Line != tc.line || pe.Pos.Col != tc.col {
				t.Errorf("error at %s, want %d:%d (%v)", pe.Pos, tc.line, tc.col, err)
			}
			if !strings.Contains(pe.Msg, tc.contains) {
				t.Errorf("error %q does not mention %q", pe.Msg, tc.contains)
			}
		})
	}
}

func TestParseAllInstructionForms(t *testing.T) {
	src := `
// every instruction form in one thread
test "ALL" {
  description "kitchen sink"
  init { x = -3 }
  thread "worker" {
    ST x = 1
    ST x = r9
    r1 = LD x
    r2 = r1 + 1
    r3 = 2 + r2
    r4 = RMW x += -2
    ACQ
    REL
    FENCE
  }
  exists { t0:r4 = -5 && x = 7 }
  model SC allowed
}
`
	parsed, err := Parse("", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != 1 {
		t.Fatalf("parsed %d tests", len(parsed))
	}
	want := litmus.Test{
		Name:        "ALL",
		Description: "kitchen sink",
		Prog: machine.Program{
			Threads: []machine.Thread{{
				Name: "worker",
				Ops: []machine.Op{
					machine.StoreOp{Addr: "x", Src: machine.Imm(1)},
					machine.StoreOp{Addr: "x", Src: machine.Reg("r9")},
					machine.LoadOp{Addr: "x", Dst: "r1"},
					machine.AddOp{Dst: "r2", A: machine.Reg("r1"), B: machine.Imm(1)},
					machine.AddOp{Dst: "r3", A: machine.Imm(2), B: machine.Reg("r2")},
					machine.RMWAddOp{Addr: "x", Dst: "r4", Delta: -2},
					machine.FenceOp{Kind: memmodel.FenceAcquire},
					machine.FenceOp{Kind: memmodel.FenceRelease},
					machine.FenceOp{Kind: memmodel.FenceFull},
				},
			}},
			Init: map[string]int{"x": -3},
		},
		Target:       litmus.Condition{"t0:r4": -5, "x": 7},
		AllowedUnder: map[string]bool{"SC": true},
	}
	if !reflect.DeepEqual(parsed[0], want) {
		t.Errorf("parse mismatch:\ngot  %#v\nwant %#v", parsed[0], want)
	}
	// And the canonical form survives its own round trip.
	printed, err := Print(parsed[0])
	if err != nil {
		t.Fatal(err)
	}
	re, err := Parse("", printed)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, printed)
	}
	if !reflect.DeepEqual(re[0], parsed[0]) {
		t.Error("canonical form round-trip mismatch")
	}
}

func TestParseModelCanonicalCasing(t *testing.T) {
	src := `test "X" { thread { ST x = 1 } exists { x = 1 } model tso allowed model rmo forbidden }`
	parsed, err := Parse("", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"TSO": true, "RMO": false}
	if !reflect.DeepEqual(parsed[0].AllowedUnder, want) {
		t.Errorf("AllowedUnder = %v, want %v", parsed[0].AllowedUnder, want)
	}
}

func TestPrintRejectsUnprintable(t *testing.T) {
	base := litmus.Test{
		Name: "X",
		Prog: machine.Program{Threads: []machine.Thread{
			{Ops: []machine.Op{machine.StoreOp{Addr: "x", Src: machine.Imm(1)}}},
		}},
		Target:       litmus.Condition{"x": 1},
		AllowedUnder: map[string]bool{"SC": false},
	}
	cases := []struct {
		name   string
		mutate func(*litmus.Test)
	}{
		{"empty name", func(t *litmus.Test) { t.Name = "" }},
		{"unknown model expectation", func(t *litmus.Test) { t.AllowedUnder = map[string]bool{"NOPE": false} }},
		{"non-identifier location", func(t *litmus.Test) {
			t.Prog.Threads[0].Ops = []machine.Op{machine.StoreOp{Addr: "bad addr", Src: machine.Imm(1)}}
		}},
		{"reserved location", func(t *litmus.Test) {
			t.Prog.Threads[0].Ops = []machine.Op{machine.StoreOp{Addr: "FENCE", Src: machine.Imm(1)}}
		}},
		{"bad condition ref", func(t *litmus.Test) { t.Target = litmus.Condition{"1x": 0} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := base
			tc.mutate(&bad)
			if _, err := Print(bad); err == nil {
				t.Error("unprintable test printed without error")
			}
		})
	}
}
