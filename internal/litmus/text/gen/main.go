// gen regenerates internal/litmus/text/testdata/registry/: one .litmus
// file per built-in litmus test, in the canonical printed form.
//
//	go run ./internal/litmus/text/gen
//
// The committed files are proven equivalent to litmus.Registry() (and
// byte-identical to the printer's output) by TestCommittedRegistryFiles;
// rerun this after changing the registry or the printer.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"memreliability/internal/litmus"
	"memreliability/internal/litmus/text"
)

func main() {
	dir := filepath.Join("internal", "litmus", "text", "testdata", "registry")
	if err := run(dir); err != nil {
		fmt.Fprintf(os.Stderr, "gen: %v\n", err)
		os.Exit(1)
	}
}

func run(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, t := range litmus.Registry() {
		data, err := text.Print(t)
		if err != nil {
			return fmt.Errorf("print %s: %w", t.Name, err)
		}
		path := filepath.Join(dir, t.Name+".litmus")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}
	return nil
}
