// Package text is the litmus-test text format: a small DSL for the
// threads, instructions, locations, and fences of a machine program, an
// init/exists condition clause matching litmus.Condition, and per-model
// expectation annotations. It is the input surface of the scenario
// subsystem — the front-end over the same structures the Go registry
// builds directly, in the way wazero's text format (wat) fronts its
// binary IR.
//
// The grammar (one or more test blocks per file; `//` comments; clauses
// in any order, at most one description/init/exists per test):
//
//	test "NAME" {
//	  description "free text"
//	  init { x = 0 y = 0 }
//	  thread ["name"] {
//	    ST x = 1          // store immediate or register
//	    r1 = LD y         // load into register
//	    r2 = r1 + 1       // register/immediate add
//	    r3 = RMW x += 1   // atomic read-modify-write
//	    FENCE             // full fence; ACQ and REL are the one-way fences
//	  }
//	  exists { t0:r1 = 0 && x = 1 }
//	  model SC forbidden
//	  model TSO allowed
//	}
//
// Condition references use machine.Outcome.Lookup syntax: a bare
// location name reads memory, "t<i>:<reg>" reads thread i's register.
// Model names in expectation clauses must resolve in the memmodel
// registry — an expectation for an unknown model is a parse error with
// its position, never a silent allowed=false.
//
// Parse errors carry 1-based line:column positions. Print is the
// deterministic inverse: for every parseable input, parse→print→parse
// yields identical tests and identical printed bytes (the fuzz target
// FuzzParseLitmus holds the property over arbitrary inputs).
package text

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"

	"memreliability/internal/litmus"
	"memreliability/internal/machine"
	"memreliability/internal/memmodel"
)

// Position is a 1-based line/column (in runes) source position.
type Position struct {
	Line, Col int
}

func (p Position) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// ParseError is a syntax or semantic error with its source position.
type ParseError struct {
	// Name is the source name given to Parse ("" for anonymous input).
	Name string
	// Pos is where the error was detected.
	Pos Position
	// Msg describes the error.
	Msg string
}

func (e *ParseError) Error() string {
	if e.Name == "" {
		return fmt.Sprintf("%s: %s", e.Pos, e.Msg)
	}
	return fmt.Sprintf("%s:%s: %s", e.Name, e.Pos, e.Msg)
}

// Reserved instruction keywords; they cannot name registers, locations,
// or threads.
var reserved = map[string]bool{
	"ST": true, "LD": true, "RMW": true,
	"FENCE": true, "ACQ": true, "REL": true,
}

// --- lexer ---

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokString
	tokLBrace
	tokRBrace
	tokEq
	tokPlus
	tokPlusEq
	tokAndAnd
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokInt:
		return "integer"
	case tokString:
		return "string"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokEq:
		return "'='"
	case tokPlus:
		return "'+'"
	case tokPlusEq:
		return "'+='"
	case tokAndAnd:
		return "'&&'"
	default:
		return "token"
	}
}

type token struct {
	kind tokKind
	text string // ident text, unquoted string value
	num  int    // integer value
	pos  Position
}

type lexer struct {
	name string
	src  string
	off  int
	pos  Position
}

func newLexer(name, src string) *lexer {
	return &lexer{name: name, src: src, pos: Position{Line: 1, Col: 1}}
}

func (l *lexer) errorf(pos Position, format string, args ...any) *ParseError {
	return &ParseError{Name: l.name, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// advance consumes one rune, tracking line/col.
func (l *lexer) advance() rune {
	r, size := utf8.DecodeRuneInString(l.src[l.off:])
	l.off += size
	if r == '\n' {
		l.pos.Line++
		l.pos.Col = 1
	} else {
		l.pos.Col++
	}
	return r
}

func (l *lexer) peek() rune {
	r, _ := utf8.DecodeRuneInString(l.src[l.off:])
	return r
}

func (l *lexer) eof() bool { return l.off >= len(l.src) }

func isIdentStart(r rune) bool { return r == '_' || unicode.IsLetter(r) }
func isIdentPart(r rune) bool  { return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r) }

// lex tokenizes the whole input.
func (l *lexer) lex() ([]token, *ParseError) {
	var toks []token
	for {
		// Skip whitespace and // comments.
		for !l.eof() {
			r := l.peek()
			if r == '/' && strings.HasPrefix(l.src[l.off:], "//") {
				for !l.eof() && l.peek() != '\n' {
					l.advance()
				}
				continue
			}
			if r == ' ' || r == '\t' || r == '\r' || r == '\n' {
				l.advance()
				continue
			}
			break
		}
		if l.eof() {
			toks = append(toks, token{kind: tokEOF, pos: l.pos})
			return toks, nil
		}
		pos := l.pos
		r := l.peek()
		switch {
		case r == '{':
			l.advance()
			toks = append(toks, token{kind: tokLBrace, pos: pos})
		case r == '}':
			l.advance()
			toks = append(toks, token{kind: tokRBrace, pos: pos})
		case r == '=':
			l.advance()
			toks = append(toks, token{kind: tokEq, pos: pos})
		case r == '+':
			l.advance()
			if !l.eof() && l.peek() == '=' {
				l.advance()
				toks = append(toks, token{kind: tokPlusEq, pos: pos})
			} else {
				toks = append(toks, token{kind: tokPlus, pos: pos})
			}
		case r == '&':
			l.advance()
			if l.eof() || l.peek() != '&' {
				return nil, l.errorf(pos, "expected '&&'")
			}
			l.advance()
			toks = append(toks, token{kind: tokAndAnd, pos: pos})
		case r == '"':
			tok, err := l.lexString(pos)
			if err != nil {
				return nil, err
			}
			toks = append(toks, tok)
		case r == '-' || unicode.IsDigit(r):
			tok, err := l.lexInt(pos)
			if err != nil {
				return nil, err
			}
			toks = append(toks, tok)
		case isIdentStart(r):
			toks = append(toks, l.lexIdent(pos))
		default:
			return nil, l.errorf(pos, "unexpected character %q", r)
		}
	}
}

func (l *lexer) lexString(pos Position) (token, *ParseError) {
	start := l.off
	l.advance() // opening quote
	for {
		if l.eof() || l.peek() == '\n' {
			return token{}, l.errorf(pos, "unterminated string")
		}
		r := l.advance()
		if r == '\\' {
			if l.eof() || l.peek() == '\n' {
				return token{}, l.errorf(pos, "unterminated string")
			}
			l.advance() // escaped rune; strconv.Unquote validates it
			continue
		}
		if r == '"' {
			break
		}
	}
	val, err := strconv.Unquote(l.src[start:l.off])
	if err != nil {
		return token{}, l.errorf(pos, "bad string literal: %v", err)
	}
	return token{kind: tokString, text: val, pos: pos}, nil
}

func (l *lexer) lexInt(pos Position) (token, *ParseError) {
	start := l.off
	if l.peek() == '-' {
		l.advance()
	}
	if l.eof() || !unicode.IsDigit(l.peek()) {
		return token{}, l.errorf(pos, "expected digits after '-'")
	}
	for !l.eof() && unicode.IsDigit(l.peek()) {
		l.advance()
	}
	n, err := strconv.Atoi(l.src[start:l.off])
	if err != nil {
		return token{}, l.errorf(pos, "bad integer %q: %v", l.src[start:l.off], err)
	}
	return token{kind: tokInt, num: n, pos: pos}, nil
}

// lexIdent scans an identifier, or a condition reference of the form
// "ident:ident" (e.g. "t0:r1").
func (l *lexer) lexIdent(pos Position) token {
	start := l.off
	for !l.eof() && isIdentPart(l.peek()) {
		l.advance()
	}
	if !l.eof() && l.peek() == ':' {
		// Lookahead: ':' followed by an ident continues the reference.
		if r, _ := utf8.DecodeRuneInString(l.src[l.off+1:]); isIdentPart(r) {
			l.advance() // ':'
			for !l.eof() && isIdentPart(l.peek()) {
				l.advance()
			}
		}
	}
	return token{kind: tokIdent, text: l.src[start:l.off], pos: pos}
}

// --- parser ---

type parser struct {
	name string
	toks []token
	i    int
}

// Parse parses one or more test blocks. The name labels error positions
// (usually a file name); it may be empty.
func Parse(name string, src []byte) ([]litmus.Test, error) {
	toks, lerr := newLexer(name, string(src)).lex()
	if lerr != nil {
		return nil, lerr
	}
	p := &parser{name: name, toks: toks}
	var tests []litmus.Test
	seen := map[string]bool{}
	for p.cur().kind != tokEOF {
		headerPos := p.cur().pos
		t, err := p.parseTest()
		if err != nil {
			return nil, err
		}
		if seen[t.Name] {
			return nil, p.errorf(headerPos, "duplicate test %q", t.Name)
		}
		seen[t.Name] = true
		tests = append(tests, t)
	}
	return tests, nil
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) errorf(pos Position, format string, args ...any) *ParseError {
	return &ParseError{Name: p.name, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// expect consumes a token of the given kind or fails with its position.
func (p *parser) expect(kind tokKind, ctx string) (token, error) {
	t := p.cur()
	if t.kind != kind {
		return token{}, p.errorf(t.pos, "expected %s in %s, got %s", kind, ctx, describe(t))
	}
	p.i++
	return t, nil
}

func describe(t token) string {
	switch t.kind {
	case tokIdent:
		return fmt.Sprintf("%q", t.text)
	case tokInt:
		return fmt.Sprintf("integer %d", t.num)
	case tokString:
		return fmt.Sprintf("string %q", t.text)
	default:
		return t.kind.String()
	}
}

// ident consumes a plain identifier (no ':' reference, not a reserved
// instruction keyword).
func (p *parser) ident(ctx string) (token, error) {
	t, err := p.expect(tokIdent, ctx)
	if err != nil {
		return token{}, err
	}
	if strings.Contains(t.text, ":") {
		return token{}, p.errorf(t.pos, "reference %q not allowed in %s", t.text, ctx)
	}
	if reserved[t.text] {
		return token{}, p.errorf(t.pos, "reserved word %q cannot name a %s", t.text, ctx)
	}
	return t, nil
}

func (p *parser) parseTest() (litmus.Test, error) {
	var t litmus.Test
	kw, err := p.expect(tokIdent, "file")
	if err != nil {
		return t, err
	}
	if kw.text != "test" {
		return t, p.errorf(kw.pos, "expected \"test\", got %q", kw.text)
	}
	nameTok, err := p.expect(tokString, "test header")
	if err != nil {
		return t, err
	}
	if nameTok.text == "" {
		return t, p.errorf(nameTok.pos, "empty test name")
	}
	t.Name = nameTok.text
	if _, err := p.expect(tokLBrace, "test header"); err != nil {
		return t, err
	}

	var haveDesc, haveInit, haveExists bool
	for {
		tok := p.cur()
		if tok.kind == tokRBrace {
			p.i++
			break
		}
		if tok.kind != tokIdent {
			return t, p.errorf(tok.pos, "expected a clause (description, init, thread, exists, model) or '}', got %s", describe(tok))
		}
		switch tok.text {
		case "description":
			if haveDesc {
				return t, p.errorf(tok.pos, "duplicate description clause")
			}
			haveDesc = true
			p.i++
			s, err := p.expect(tokString, "description")
			if err != nil {
				return t, err
			}
			t.Description = s.text
		case "init":
			if haveInit {
				return t, p.errorf(tok.pos, "duplicate init clause")
			}
			haveInit = true
			p.i++
			init, err := p.parseInit()
			if err != nil {
				return t, err
			}
			t.Prog.Init = init
		case "thread":
			p.i++
			th, err := p.parseThread()
			if err != nil {
				return t, err
			}
			t.Prog.Threads = append(t.Prog.Threads, th)
		case "exists":
			if haveExists {
				return t, p.errorf(tok.pos, "duplicate exists clause")
			}
			haveExists = true
			p.i++
			cond, err := p.parseExists()
			if err != nil {
				return t, err
			}
			t.Target = cond
		case "model":
			p.i++
			if err := p.parseExpect(&t); err != nil {
				return t, err
			}
		default:
			return t, p.errorf(tok.pos, "unknown clause %q (want description, init, thread, exists, or model)", tok.text)
		}
	}
	if !haveExists {
		return t, p.errorf(kw.pos, "test %q has no exists clause", t.Name)
	}
	if len(t.Prog.Threads) == 0 {
		return t, p.errorf(kw.pos, "test %q has no threads", t.Name)
	}
	return t, nil
}

func (p *parser) parseInit() (map[string]int, error) {
	if _, err := p.expect(tokLBrace, "init"); err != nil {
		return nil, err
	}
	init := map[string]int{}
	for p.cur().kind != tokRBrace {
		loc, err := p.ident("init location")
		if err != nil {
			return nil, err
		}
		if _, dup := init[loc.text]; dup {
			return nil, p.errorf(loc.pos, "duplicate init location %q", loc.text)
		}
		if _, err := p.expect(tokEq, "init"); err != nil {
			return nil, err
		}
		v, err := p.expect(tokInt, "init")
		if err != nil {
			return nil, err
		}
		init[loc.text] = v.num
	}
	p.i++ // '}'
	return init, nil
}

func (p *parser) parseThread() (machine.Thread, error) {
	var th machine.Thread
	if p.cur().kind == tokString {
		th.Name = p.next().text
	}
	if _, err := p.expect(tokLBrace, "thread"); err != nil {
		return th, err
	}
	for p.cur().kind != tokRBrace {
		op, err := p.parseInstr()
		if err != nil {
			return th, err
		}
		th.Ops = append(th.Ops, op)
	}
	p.i++ // '}'
	return th, nil
}

// parseInstr parses one instruction:
//
//	ST <loc> = <operand>
//	<reg> = LD <loc>
//	<reg> = RMW <loc> += <int>
//	<reg> = <operand> + <operand>
//	FENCE | ACQ | REL
func (p *parser) parseInstr() (machine.Op, error) {
	t, err := p.expect(tokIdent, "thread body")
	if err != nil {
		return nil, err
	}
	switch t.text {
	case "FENCE":
		return machine.FenceOp{Kind: memmodel.FenceFull}, nil
	case "ACQ":
		return machine.FenceOp{Kind: memmodel.FenceAcquire}, nil
	case "REL":
		return machine.FenceOp{Kind: memmodel.FenceRelease}, nil
	case "ST":
		loc, err := p.ident("store location")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokEq, "store"); err != nil {
			return nil, err
		}
		src, err := p.parseOperand("store source")
		if err != nil {
			return nil, err
		}
		return machine.StoreOp{Addr: loc.text, Src: src}, nil
	case "LD", "RMW":
		return nil, p.errorf(t.pos, "%s needs a destination register (\"r = %s x\")", t.text, t.text)
	}
	// Destination-register forms.
	if strings.Contains(t.text, ":") {
		return nil, p.errorf(t.pos, "reference %q not allowed in thread body", t.text)
	}
	dst := t
	if _, err := p.expect(tokEq, "instruction"); err != nil {
		return nil, err
	}
	switch p.cur().text {
	case "LD":
		if p.cur().kind == tokIdent {
			p.i++
			loc, err := p.ident("load location")
			if err != nil {
				return nil, err
			}
			return machine.LoadOp{Addr: loc.text, Dst: dst.text}, nil
		}
	case "RMW":
		if p.cur().kind == tokIdent {
			p.i++
			loc, err := p.ident("RMW location")
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPlusEq, "RMW"); err != nil {
				return nil, err
			}
			delta, err := p.expect(tokInt, "RMW")
			if err != nil {
				return nil, err
			}
			return machine.RMWAddOp{Addr: loc.text, Dst: dst.text, Delta: delta.num}, nil
		}
	}
	a, err := p.parseOperand("add operand")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPlus, "add"); err != nil {
		return nil, err
	}
	b, err := p.parseOperand("add operand")
	if err != nil {
		return nil, err
	}
	return machine.AddOp{Dst: dst.text, A: a, B: b}, nil
}

func (p *parser) parseOperand(ctx string) (machine.Operand, error) {
	t := p.cur()
	switch t.kind {
	case tokInt:
		p.i++
		return machine.Imm(t.num), nil
	case tokIdent:
		reg, err := p.ident(ctx)
		if err != nil {
			return machine.Operand{}, err
		}
		return machine.Reg(reg.text), nil
	default:
		return machine.Operand{}, p.errorf(t.pos, "expected register or integer as %s, got %s", ctx, describe(t))
	}
}

func (p *parser) parseExists() (litmus.Condition, error) {
	if _, err := p.expect(tokLBrace, "exists"); err != nil {
		return nil, err
	}
	cond := litmus.Condition{}
	for {
		ref, err := p.expect(tokIdent, "exists")
		if err != nil {
			return nil, err
		}
		// The printer's validation is the gate: anything parse accepts
		// here must round-trip, so a ref with a reserved or non-identifier
		// part (the lexer consumes e.g. "A00:0" as one token) errors now.
		if err := checkRef(ref.text); err != nil {
			return nil, p.errorf(ref.pos, "%s", err)
		}
		if _, dup := cond[ref.text]; dup {
			return nil, p.errorf(ref.pos, "duplicate condition reference %q", ref.text)
		}
		if _, err := p.expect(tokEq, "exists"); err != nil {
			return nil, err
		}
		v, err := p.expect(tokInt, "exists")
		if err != nil {
			return nil, err
		}
		cond[ref.text] = v.num
		if p.cur().kind == tokAndAnd {
			p.i++
			continue
		}
		break
	}
	if _, err := p.expect(tokRBrace, "exists"); err != nil {
		return nil, err
	}
	return cond, nil
}

// parseExpect parses one `model NAME allowed|forbidden` clause. The name
// must resolve in the memmodel registry: an expectation for an unknown
// model is a positioned parse error, so a typo can never masquerade as a
// silently-forbidden outcome.
func (p *parser) parseExpect(t *litmus.Test) error {
	nameTok, err := p.ident("model expectation")
	if err != nil {
		return err
	}
	m, merr := memmodel.ByName(nameTok.text)
	if merr != nil {
		return p.errorf(nameTok.pos, "unknown model %q in expectation (%v)", nameTok.text, merr)
	}
	verdict, err := p.expect(tokIdent, "model expectation")
	if err != nil {
		return err
	}
	var allowed bool
	switch verdict.text {
	case "allowed":
		allowed = true
	case "forbidden":
		allowed = false
	default:
		return p.errorf(verdict.pos, "expected \"allowed\" or \"forbidden\", got %q", verdict.text)
	}
	if t.AllowedUnder == nil {
		t.AllowedUnder = map[string]bool{}
	}
	if _, dup := t.AllowedUnder[m.Name()]; dup {
		return p.errorf(nameTok.pos, "duplicate expectation for model %s", m.Name())
	}
	t.AllowedUnder[m.Name()] = allowed
	return nil
}
