package litmus

import (
	"errors"
	"testing"

	"memreliability/internal/machine"
	"memreliability/internal/memmodel"
	"memreliability/internal/rng"
)

func TestRegistryWellFormed(t *testing.T) {
	tests := Registry()
	if len(tests) < 7 {
		t.Fatalf("registry has %d tests", len(tests))
	}
	seen := map[string]bool{}
	for _, tc := range tests {
		if tc.Name == "" || tc.Description == "" {
			t.Errorf("test %q missing name/description", tc.Name)
		}
		if seen[tc.Name] {
			t.Errorf("duplicate test %q", tc.Name)
		}
		seen[tc.Name] = true
		if err := tc.Prog.Validate(); err != nil {
			t.Errorf("%s: invalid program: %v", tc.Name, err)
		}
		if len(tc.Target) == 0 {
			t.Errorf("%s: empty target", tc.Name)
		}
		// Every registered model — canonical or variant — must have an
		// expectation: CheckAll covers all of them and errors loudly on
		// a missing one.
		for _, model := range memmodel.Registered() {
			if _, ok := tc.AllowedUnder[model.Name()]; !ok {
				t.Errorf("%s: no expectation for %s", tc.Name, model.Name())
			}
		}
	}
}

func TestByName(t *testing.T) {
	tc, err := ByName("SB")
	if err != nil || tc.Name != "SB" {
		t.Errorf("ByName(SB) = %v, %v", tc.Name, err)
	}
	if _, err := ByName("NOPE"); !errors.Is(err, ErrUnknownTest) {
		t.Errorf("ByName(NOPE) err = %v", err)
	}
}

func TestCheckAllConforms(t *testing.T) {
	// The E13 conformance matrix: every registered expectation must match
	// exhaustive exploration under every model. This pins the simulator's
	// relaxed behaviours to exactly what Table 1 permits.
	results, err := CheckAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(Registry())*len(memmodel.Registered()) {
		t.Fatalf("got %d results", len(results))
	}
	for _, r := range results {
		if !r.Conforms() {
			t.Errorf("%s under %s: reachable=%v but expected %v",
				r.Test, r.Model, r.Reachable, r.Expected)
		}
		if r.Outcomes < 1 {
			t.Errorf("%s under %s: %d outcomes", r.Test, r.Model, r.Outcomes)
		}
	}
}

func TestMonotoneOutcomeCounts(t *testing.T) {
	// Weaker models can only add reachable outcomes.
	for _, tc := range Registry() {
		prev := -1
		for _, model := range memmodel.All() { // strictness order
			r, err := Check(tc, model)
			if err != nil {
				t.Fatal(err)
			}
			if r.Outcomes < prev {
				t.Errorf("%s: outcomes shrank from %d to %d at %s",
					tc.Name, prev, r.Outcomes, model.Name())
			}
			prev = r.Outcomes
		}
	}
}

func TestCheckValidation(t *testing.T) {
	if _, err := Check(Test{}, memmodel.SC()); !errors.Is(err, ErrBadTest) {
		t.Error("empty test accepted")
	}
	tc, err := ByName("SB")
	if err != nil {
		t.Fatal(err)
	}
	custom, err := memmodel.New("custom", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Check(tc, custom); !errors.Is(err, ErrBadTest) {
		t.Error("model without expectation accepted")
	}
}

func TestConditionHoldsAndString(t *testing.T) {
	o := machine.Outcome{
		Mem:  map[string]int{"x": 1},
		Regs: []map[string]int{{"r1": 0}},
	}
	c := Condition{"x": 1, "t0:r1": 0}
	ok, err := c.Holds(o)
	if err != nil || !ok {
		t.Errorf("Holds = %v, %v", ok, err)
	}
	c2 := Condition{"x": 2}
	ok, err = c2.Holds(o)
	if err != nil || ok {
		t.Errorf("Holds = %v, %v, want false", ok, err)
	}
	if got := c.String(); got != "t0:r1=0 ∧ x=1" {
		t.Errorf("String = %q", got)
	}
}

func TestTargetFrequencyINC(t *testing.T) {
	// The increment race manifests with noticeable frequency under a
	// random scheduler in every model, and never produces x ∉ {1,2}.
	src := rng.New(1)
	tc, err := ByName("INC")
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range memmodel.All() {
		f, err := TargetFrequency(tc, model, 5000, src)
		if err != nil {
			t.Fatal(err)
		}
		if f <= 0.05 || f >= 0.95 {
			t.Errorf("%s: INC bug frequency %v implausible", model.Name(), f)
		}
	}
}

func TestTargetFrequencyForbiddenIsZero(t *testing.T) {
	// A forbidden outcome must never be observed, no matter how many runs.
	src := rng.New(2)
	tc, err := ByName("SB")
	if err != nil {
		t.Fatal(err)
	}
	f, err := TargetFrequency(tc, memmodel.SC(), 20000, src)
	if err != nil {
		t.Fatal(err)
	}
	if f != 0 {
		t.Errorf("SC SB relaxed frequency = %v, want 0", f)
	}
}

func TestTargetFrequencyValidation(t *testing.T) {
	tc, err := ByName("SB")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TargetFrequency(tc, memmodel.SC(), 0, rng.New(1)); !errors.Is(err, ErrBadTest) {
		t.Error("0 runs accepted")
	}
	if _, err := TargetFrequency(tc, memmodel.SC(), 10, nil); !errors.Is(err, ErrBadTest) {
		t.Error("nil source accepted")
	}
}
