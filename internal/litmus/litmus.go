// Package litmus is a herd/litmus7-style harness over the machine
// simulator: named litmus tests with a distinguished "relaxed" target
// outcome, per-model allowed/forbidden expectations, exhaustive outcome
// enumeration, and randomized frequency measurement.
//
// The registry covers the canonical shapes (SB, MP, LB, 2+2W, CoRR, IRIW)
// plus the paper's §2.2 increment race. Expectations are for a
// store-atomic machine — the paper explicitly sets store-atomicity aside
// (§2.1), so IRIW's relaxed outcome is reachable only via LD/LD reordering
// (WO), not via non-atomic store propagation.
package litmus

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"

	"memreliability/internal/machine"
	"memreliability/internal/memmodel"
	"memreliability/internal/rng"
)

// ErrUnknownTest reports a test name not in the registry.
var ErrUnknownTest = errors.New("litmus: unknown test")

// ErrBadTest reports an invalid test definition.
var ErrBadTest = errors.New("litmus: bad test")

// Condition is a conjunction of equalities over outcome references
// (machine.Outcome.Lookup syntax: "addr" or "t<i>:<reg>").
type Condition map[string]int

// Holds reports whether the outcome satisfies the condition.
func (c Condition) Holds(o machine.Outcome) (bool, error) {
	for ref, want := range c {
		got, err := o.Lookup(ref)
		if err != nil {
			return false, fmt.Errorf("litmus: %w", err)
		}
		if got != want {
			return false, nil
		}
	}
	return true, nil
}

// String renders the condition deterministically.
func (c Condition) String() string {
	refs := make([]string, 0, len(c))
	for ref := range c {
		refs = append(refs, ref)
	}
	sort.Strings(refs)
	s := ""
	for i, ref := range refs {
		if i > 0 {
			s += " ∧ "
		}
		s += fmt.Sprintf("%s=%d", ref, c[ref])
	}
	return s
}

// Test is one litmus test.
type Test struct {
	// Name is the conventional test mnemonic.
	Name string
	// Description says what relaxation the test witnesses.
	Description string
	// Prog is the machine program.
	Prog machine.Program
	// Target is the interesting (usually relaxed) outcome.
	Target Condition
	// AllowedUnder maps model names to whether Target is reachable.
	AllowedUnder map[string]bool
}

// Registry returns the built-in tests in a stable order.
func Registry() []Test {
	st := func(addr string, v int) machine.Op { return machine.StoreOp{Addr: addr, Src: machine.Imm(v)} }
	ld := func(addr, dst string) machine.Op { return machine.LoadOp{Addr: addr, Dst: dst} }
	init2 := map[string]int{"x": 0, "y": 0}

	incThread := machine.Thread{Ops: []machine.Op{
		machine.LoadOp{Addr: "x", Dst: "r"},
		machine.AddOp{Dst: "r", A: machine.Reg("r"), B: machine.Imm(1)},
		machine.StoreOp{Addr: "x", Src: machine.Reg("r")},
	}}

	return []Test{
		{
			Name:        "SB",
			Description: "store buffering: both loads read the initial value (ST→LD reordering)",
			Prog: machine.Program{
				Threads: []machine.Thread{
					{Ops: []machine.Op{st("x", 1), ld("y", "r1")}},
					{Ops: []machine.Op{st("y", 1), ld("x", "r2")}},
				},
				Init: init2,
			},
			Target: Condition{"t0:r1": 0, "t1:r2": 0},
			AllowedUnder: map[string]bool{
				"SC": false, "TSO": true, "PSO": true, "WO": true,
				"RMO": true, "LRO": false,
			},
		},
		{
			Name:        "MP",
			Description: "message passing: stale data after seeing the flag (ST→ST or LD→LD reordering)",
			Prog: machine.Program{
				Threads: []machine.Thread{
					{Ops: []machine.Op{st("x", 1), st("y", 1)}},
					{Ops: []machine.Op{ld("y", "r1"), ld("x", "r2")}},
				},
				Init: init2,
			},
			Target: Condition{"t1:r1": 1, "t1:r2": 0},
			AllowedUnder: map[string]bool{
				"SC": false, "TSO": false, "PSO": true, "WO": true,
				"RMO": true, "LRO": true,
			},
		},
		{
			Name:        "LB",
			Description: "load buffering: both loads see the other thread's later store (LD→ST reordering)",
			Prog: machine.Program{
				Threads: []machine.Thread{
					{Ops: []machine.Op{ld("x", "r1"), st("y", 1)}},
					{Ops: []machine.Op{ld("y", "r2"), st("x", 1)}},
				},
				Init: init2,
			},
			Target: Condition{"t0:r1": 1, "t1:r2": 1},
			AllowedUnder: map[string]bool{
				"SC": false, "TSO": false, "PSO": false, "WO": true,
				"RMO": false, "LRO": true,
			},
		},
		{
			Name:        "2+2W",
			Description: "two threads write both locations in opposite orders (ST→ST reordering)",
			Prog: machine.Program{
				Threads: []machine.Thread{
					{Ops: []machine.Op{st("x", 1), st("y", 2)}},
					{Ops: []machine.Op{st("y", 1), st("x", 2)}},
				},
				Init: init2,
			},
			Target: Condition{"x": 1, "y": 1},
			AllowedUnder: map[string]bool{
				"SC": false, "TSO": false, "PSO": true, "WO": true,
				"RMO": true, "LRO": false,
			},
		},
		{
			Name:        "CoRR",
			Description: "coherence of read-read: same-location loads must not reorder (forbidden everywhere)",
			Prog: machine.Program{
				Threads: []machine.Thread{
					{Ops: []machine.Op{st("x", 1)}},
					{Ops: []machine.Op{ld("x", "r1"), ld("x", "r2")}},
				},
				Init: map[string]int{"x": 0},
			},
			Target: Condition{"t1:r1": 1, "t1:r2": 0},
			AllowedUnder: map[string]bool{
				"SC": false, "TSO": false, "PSO": false, "WO": false,
				"RMO": false, "LRO": false,
			},
		},
		{
			Name: "IRIW",
			Description: "independent reads of independent writes; reachable here only via LD→LD " +
				"reordering (store-atomic machine, per the paper's §2.1 scope)",
			Prog: machine.Program{
				Threads: []machine.Thread{
					{Ops: []machine.Op{st("x", 1)}},
					{Ops: []machine.Op{st("y", 1)}},
					{Ops: []machine.Op{ld("x", "r1"), ld("y", "r2")}},
					{Ops: []machine.Op{ld("y", "r3"), ld("x", "r4")}},
				},
				Init: init2,
			},
			Target: Condition{"t2:r1": 1, "t2:r2": 0, "t3:r3": 1, "t3:r4": 0},
			AllowedUnder: map[string]bool{
				"SC": false, "TSO": false, "PSO": false, "WO": true,
				"RMO": true, "LRO": true,
			},
		},
		{
			Name:        "R",
			Description: "write-to-read causality: requires ST→ST or ST→LD reordering",
			Prog: machine.Program{
				Threads: []machine.Thread{
					{Ops: []machine.Op{st("x", 1), st("y", 1)}},
					{Ops: []machine.Op{st("y", 2), ld("x", "r1")}},
				},
				Init: init2,
			},
			Target: Condition{"y": 2, "t1:r1": 0},
			AllowedUnder: map[string]bool{
				"SC": false, "TSO": true, "PSO": true, "WO": true,
				"RMO": true, "LRO": false,
			},
		},
		{
			Name:        "S",
			Description: "write subsumption: requires ST→ST reordering (PSO's distinguishing shape)",
			Prog: machine.Program{
				Threads: []machine.Thread{
					{Ops: []machine.Op{st("x", 2), st("y", 1)}},
					{Ops: []machine.Op{ld("y", "r1"), st("x", 1)}},
				},
				Init: init2,
			},
			Target: Condition{"x": 2, "t1:r1": 1},
			AllowedUnder: map[string]bool{
				"SC": false, "TSO": false, "PSO": true, "WO": true,
				"RMO": true, "LRO": true,
			},
		},
		{
			Name: "LB+deps",
			Description: "load buffering with a data dependency (ST value comes from the LD): " +
				"forbidden everywhere — register dependencies survive even WO",
			Prog: machine.Program{
				Threads: []machine.Thread{
					{Ops: []machine.Op{ld("x", "r1"), machine.StoreOp{Addr: "y", Src: machine.Reg("r1")}}},
					{Ops: []machine.Op{ld("y", "r2"), machine.StoreOp{Addr: "x", Src: machine.Reg("r2")}}},
				},
				Init: map[string]int{"x": 0, "y": 0},
			},
			Target: Condition{"t0:r1": 1, "t1:r2": 1},
			AllowedUnder: map[string]bool{
				"SC": false, "TSO": false, "PSO": false, "WO": false,
				"RMO": false, "LRO": false,
			},
		},
		{
			Name:        "MP+fences",
			Description: "message passing with full fences: forbidden everywhere (§7 fence semantics)",
			Prog: machine.Program{
				Threads: []machine.Thread{
					{Ops: []machine.Op{st("x", 1), machine.FenceOp{Kind: memmodel.FenceFull}, st("y", 1)}},
					{Ops: []machine.Op{ld("y", "r1"), machine.FenceOp{Kind: memmodel.FenceFull}, ld("x", "r2")}},
				},
				Init: init2,
			},
			Target: Condition{"t1:r1": 1, "t1:r2": 0},
			AllowedUnder: map[string]bool{
				"SC": false, "TSO": false, "PSO": false, "WO": false,
				"RMO": false, "LRO": false,
			},
		},
		{
			Name: "CoWR",
			Description: "coherence of write-read: a thread's load after its own store must not " +
				"read the initial value (forbidden everywhere)",
			Prog: machine.Program{
				Threads: []machine.Thread{
					{Ops: []machine.Op{st("x", 2), ld("x", "r1")}},
					{Ops: []machine.Op{st("x", 1)}},
				},
				Init: map[string]int{"x": 0},
			},
			Target: Condition{"t0:r1": 0},
			AllowedUnder: map[string]bool{
				"SC": false, "TSO": false, "PSO": false, "WO": false,
				"RMO": false, "LRO": false,
			},
		},
		{
			Name:        "INC",
			Description: "the §2.2 canonical atomicity violation: a lost increment (allowed even under SC)",
			Prog: machine.Program{
				Threads: []machine.Thread{incThread, incThread},
				Init:    map[string]int{"x": 0},
			},
			Target: Condition{"x": 1},
			AllowedUnder: map[string]bool{
				"SC": true, "TSO": true, "PSO": true, "WO": true,
				"RMO": true, "LRO": true,
			},
		},
	}
}

// ByName returns the registered test with the given name.
func ByName(name string) (Test, error) {
	for _, t := range Registry() {
		if t.Name == name {
			return t, nil
		}
	}
	return Test{}, fmt.Errorf("%w: %q", ErrUnknownTest, name)
}

// Result is the outcome of checking one test under one model.
type Result struct {
	Test  string
	Model string
	// Target is the rendered target condition.
	Target string
	// Reachable reports whether the target outcome is reachable
	// (exhaustive exploration).
	Reachable bool
	// Expected is the registry's expectation.
	Expected bool
	// Outcomes is the number of distinct reachable final states.
	Outcomes int
}

// Conforms reports whether observation matched expectation.
func (r Result) Conforms() bool { return r.Reachable == r.Expected }

// MarshalJSON emits the machine-readable record, including the derived
// Conforms field. This is the single wire encoding of a conformance
// result; cmd/litmusrun -json and the serve API's GET /v1/litmus both
// emit it, so the two cannot drift apart.
func (r Result) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Test      string `json:"test"`
		Model     string `json:"model"`
		Target    string `json:"target"`
		Reachable bool   `json:"reachable"`
		Expected  bool   `json:"expected"`
		Conforms  bool   `json:"conforms"`
		Outcomes  int    `json:"outcomes"`
	}{r.Test, r.Model, r.Target, r.Reachable, r.Expected, r.Conforms(), r.Outcomes})
}

// EncodeResultsJSON writes results as indented JSON followed by a
// newline — the shared machine-readable encoding of litmus conformance.
// Encoding the same results always produces identical bytes.
func EncodeResultsJSON(w io.Writer, results []Result) error {
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return fmt.Errorf("litmus: encode results: %w", err)
	}
	data = append(data, '\n')
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("litmus: write results: %w", err)
	}
	return nil
}

// Check exhaustively explores the test under the model and compares the
// target's reachability against the expectation.
func Check(t Test, model memmodel.Model) (Result, error) {
	if t.Name == "" || len(t.Target) == 0 {
		return Result{}, fmt.Errorf("%w: unnamed test or empty target", ErrBadTest)
	}
	outcomes, err := machine.Explore(t.Prog, model, machine.ExploreConfig{})
	if err != nil {
		return Result{}, fmt.Errorf("litmus: explore %s under %s: %w", t.Name, model.Name(), err)
	}
	reachable := false
	for _, o := range outcomes {
		ok, err := t.Target.Holds(o)
		if err != nil {
			return Result{}, err
		}
		if ok {
			reachable = true
			break
		}
	}
	expected, known := t.AllowedUnder[model.Name()]
	if !known {
		return Result{}, fmt.Errorf("%w: test %s has no expectation for model %s",
			ErrBadTest, t.Name, model.Name())
	}
	return Result{
		Test:      t.Name,
		Model:     model.Name(),
		Target:    t.Target.String(),
		Reachable: reachable,
		Expected:  expected,
		Outcomes:  len(outcomes),
	}, nil
}

// CheckAll runs every registered test under every registered memory
// model — the canonical four plus every variant in the memmodel
// registry. A test with no expectation for some registered model is a
// loud error (from Check), never a silent allowed=false row.
func CheckAll() ([]Result, error) {
	var results []Result
	for _, t := range Registry() {
		for _, model := range memmodel.Registered() {
			r, err := Check(t, model)
			if err != nil {
				return nil, err
			}
			results = append(results, r)
		}
	}
	return results, nil
}

// TargetFrequency measures how often the target outcome occurs under a
// uniform random scheduler, over the given number of runs.
func TargetFrequency(t Test, model memmodel.Model, runs int, src *rng.Source) (float64, error) {
	if runs <= 0 {
		return 0, fmt.Errorf("%w: runs=%d", ErrBadTest, runs)
	}
	if src == nil {
		return 0, fmt.Errorf("%w: nil rng source", ErrBadTest)
	}
	sim, err := machine.NewSim(t.Prog, model)
	if err != nil {
		return 0, fmt.Errorf("litmus: %w", err)
	}
	hits := 0
	for i := 0; i < runs; i++ {
		o, _, err := sim.RunRandom(src)
		if err != nil {
			return 0, fmt.Errorf("litmus: %w", err)
		}
		ok, err := t.Target.Holds(o)
		if err != nil {
			return 0, err
		}
		if ok {
			hits++
		}
	}
	return float64(hits) / float64(runs), nil
}
