package core

import (
	"context"
	"fmt"

	"memreliability/internal/mc"
	"memreliability/internal/shift"
)

// EstimateNoBugProbAdaptive estimates Pr[A] by full Monte Carlo over the
// joined process to a requested precision: sampling stops as soon as the
// Wilson interval meets the adaptive config's targets, or its trial
// budget cap runs out (reported in the result's StopReason, never
// silently). Reproducibility matches mc.EstimateAdaptive: the result is
// a pure function of (config, seed, targets, cap), worker-count
// invariant, and bit-identical to the fixed-trials route when the budget
// is exhausted.
func EstimateNoBugProbAdaptive(ctx context.Context, cfg Config, acfg mc.AdaptiveConfig) (*mc.AdaptiveResult, error) {
	batch, err := cfg.NoBugBits()
	if err != nil {
		return nil, err
	}
	return mc.EstimateAdaptiveBits(ctx, acfg, batch)
}

// HybridAdaptiveResult is the outcome of an adaptive Theorem 6.1 hybrid
// estimation: the usual hybrid result plus the sampling cost and the
// stopping diagnosis.
type HybridAdaptiveResult struct {
	HybridResult
	// TrialsUsed is the number of product-expectation trials consumed.
	TrialsUsed int
	// Rounds is the number of chunk-aligned sampling rounds executed.
	Rounds int
	// StopReason is mc.StopConverged or mc.StopBudget.
	StopReason mc.StopReason
}

// HybridPrAAdaptive estimates Pr[A] via Theorem 6.1 to a requested
// precision on Pr[A] itself. The hybrid estimate is the analytic
// constant K(n) = Theorem61(n, 1) times the Monte Carlo product
// expectation, so a relative-error target transfers to the expectation
// unchanged, and an absolute half-width target rescales by 1/K(n)
// (division by an underflowed K yields +Inf — i.e. an absolute target
// astronomically looser than the quantity is trivially met, which is the
// mathematically correct reading). The stopping rule is the
// normal-approximation interval of the product expectation at the
// config's confidence level.
func HybridPrAAdaptive(ctx context.Context, cfg Config, acfg mc.AdaptiveConfig) (*HybridAdaptiveResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if acfg.TargetHalfWidth > 0 {
		k, err := shift.Theorem61(cfg.Threads, 1)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		acfg.TargetHalfWidth /= k
	}
	batch, err := cfg.ProductBatch()
	if err != nil {
		return nil, err
	}
	sum, err := mc.EstimateMeanAdaptiveBatch(ctx, acfg, batch)
	if err != nil {
		return nil, err
	}
	res, err := hybridResultFrom(cfg, sum.Summary.Mean(), sum.Summary.StdErr())
	if err != nil {
		return nil, err
	}
	return &HybridAdaptiveResult{
		HybridResult: *res,
		TrialsUsed:   sum.TrialsUsed(),
		Rounds:       sum.Rounds,
		StopReason:   sum.StopReason,
	}, nil
}
