package core

import (
	"math"
	"sync"
	"testing"

	"memreliability/internal/mc"
	"memreliability/internal/memmodel"
	"memreliability/internal/rng"
)

// TestPlanCacheCompileOnce hammers one key from many goroutines and
// checks they all get the same Program with exactly one compile — the
// per-entry once under -race is the concurrent compile-once contract.
func TestPlanCacheCompileOnce(t *testing.T) {
	pc := NewPlanCache(8)
	cfg := DefaultConfig(memmodel.TSO(), 2)
	progs := make([]*Program, 16)
	var wg sync.WaitGroup
	for g := range progs {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			prog, err := pc.Lookup(cfg)
			if err != nil {
				t.Error(err)
				return
			}
			progs[g] = prog
		}(g)
	}
	wg.Wait()
	for g, prog := range progs {
		if prog != progs[0] {
			t.Fatalf("goroutine %d got a different Program for the same key", g)
		}
	}
	if pc.Len() != 1 {
		t.Fatalf("cache holds %d entries for one key", pc.Len())
	}
}

// TestPlanCacheCanonicalKey checks that equivalent normalized queries
// collide on one cache entry: the same config twice, and the IEEE
// negative-zero probability spelling of the same query.
func TestPlanCacheCanonicalKey(t *testing.T) {
	pc := NewPlanCache(8)
	cfg := Config{Model: memmodel.PSO(), Threads: 3, PrefixLen: 12, StoreProb: 0.5, SwapProb: 0}
	a, err := pc.Lookup(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := pc.Lookup(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("identical configs compiled twice")
	}
	negZero := cfg
	negZero.SwapProb = math.Copysign(0, -1) // -0.0 validates and estimates as 0
	c, err := pc.Lookup(negZero)
	if err != nil {
		t.Fatal(err)
	}
	if c != a {
		t.Fatal("-0.0 probability did not collide with +0.0 on the canonical key")
	}
	if pc.Len() != 1 {
		t.Fatalf("cache holds %d entries for one canonical query", pc.Len())
	}
	// Distinct models with the same parameters must NOT collide.
	other := cfg
	other.Model = memmodel.WO()
	d, err := pc.Lookup(other)
	if err != nil {
		t.Fatal(err)
	}
	if d == a {
		t.Fatal("distinct models share a plan")
	}
}

// TestPlanCacheEviction checks LRU eviction at capacity and — the
// in-flight safety contract — that an evicted Program keeps producing
// bit-identical batches.
func TestPlanCacheEviction(t *testing.T) {
	pc := NewPlanCache(1)
	cfgA := DefaultConfig(memmodel.TSO(), 2)
	cfgA.PrefixLen = 8
	cfgB := DefaultConfig(memmodel.WO(), 3)
	cfgB.PrefixLen = 8
	progA, err := pc.Lookup(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pc.Lookup(cfgB); err != nil { // evicts A
		t.Fatal(err)
	}
	if pc.Len() != 1 {
		t.Fatalf("cap-1 cache holds %d entries", pc.Len())
	}
	// The evicted program stays fully usable: identical to a fresh
	// compile of the same config.
	fresh, err := cfgA.BuildIR()
	if err != nil {
		t.Fatal(err)
	}
	progA2, err := fresh.Compile()
	if err != nil {
		t.Fatal(err)
	}
	const trials = 300
	got := make([]uint64, mc.BitWords(trials))
	want := make([]uint64, mc.BitWords(trials))
	evictedSrc, freshSrc := rng.New(5), rng.New(5)
	if err := progA.FillBits(evictedSrc, got, trials); err != nil {
		t.Fatal(err)
	}
	if err := progA2.FillBits(freshSrc, want, trials); err != nil {
		t.Fatal(err)
	}
	for w := range got {
		if got[w] != want[w] {
			t.Fatalf("word %d: evicted program diverged from fresh compile", w)
		}
	}
	// Re-lookup of A compiles a new entry (B was the survivor).
	progA3, err := pc.Lookup(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	if progA3 == progA {
		t.Fatal("evicted entry resurrected instead of recompiled")
	}
}

// TestPlanCacheSetCap checks capacity shrink evicts down to the new cap
// in LRU order.
func TestPlanCacheSetCap(t *testing.T) {
	pc := NewPlanCache(8)
	models := []memmodel.Model{memmodel.SC(), memmodel.TSO(), memmodel.PSO(), memmodel.WO()}
	for _, model := range models {
		if _, err := pc.Lookup(DefaultConfig(model, 2)); err != nil {
			t.Fatal(err)
		}
	}
	if pc.Len() != 4 {
		t.Fatalf("cache holds %d entries, want 4", pc.Len())
	}
	pc.SetCap(2)
	if pc.Len() != 2 {
		t.Fatalf("after SetCap(2) cache holds %d entries", pc.Len())
	}
	// The two most recently used (PSO, WO) survive: their lookups hit.
	before := pc.Len()
	for _, model := range models[2:] {
		if _, err := pc.Lookup(DefaultConfig(model, 2)); err != nil {
			t.Fatal(err)
		}
	}
	if pc.Len() != before {
		t.Fatal("most-recently-used entries were evicted by SetCap")
	}
}

// TestPlanCacheBadConfig checks invalid configs error through the cache
// without occupying a usable slot's program.
func TestPlanCacheBadConfig(t *testing.T) {
	pc := NewPlanCache(4)
	bad := Config{Model: memmodel.TSO(), Threads: 1, PrefixLen: 8}
	if _, err := pc.Lookup(bad); err == nil {
		t.Fatal("Lookup accepted threads=1")
	}
	// The error is cached (deterministic), not recompiled into success.
	if _, err := pc.Lookup(bad); err == nil {
		t.Fatal("cached lookup accepted threads=1")
	}
}

// TestCompiledNoBugBitsSharesPlans checks the package-level compiled
// entry point routes through the default plan cache: two constructions
// of the same query reuse one Program (observable via the cache length
// not growing).
func TestCompiledNoBugBitsSharesPlans(t *testing.T) {
	cfg := DefaultConfig(memmodel.SC(), 4)
	cfg.PrefixLen = 9
	if _, err := cfg.CompiledNoBugBits(); err != nil {
		t.Fatal(err)
	}
	before := DefaultPlanCache().Len()
	if _, err := cfg.CompiledNoBugBits(); err != nil {
		t.Fatal(err)
	}
	if DefaultPlanCache().Len() != before {
		t.Fatal("repeated CompiledNoBugBits grew the default plan cache")
	}
}
