package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"memreliability/internal/analytic"
	"memreliability/internal/mc"
	"memreliability/internal/memmodel"
	"memreliability/internal/rng"
)

func TestConfigValidate(t *testing.T) {
	valid := DefaultConfig(memmodel.SC(), 2)
	if err := valid.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []Config{
		{},
		{Model: memmodel.SC(), Threads: 1, PrefixLen: 4, StoreProb: 0.5, SwapProb: 0.5},
		{Model: memmodel.SC(), Threads: 2, PrefixLen: -1, StoreProb: 0.5, SwapProb: 0.5},
		{Model: memmodel.SC(), Threads: 2, PrefixLen: 4, StoreProb: 1.5, SwapProb: 0.5},
		{Model: memmodel.SC(), Threads: 2, PrefixLen: 4, StoreProb: 0.5, SwapProb: -1},
	}
	for i, cfg := range cases {
		if err := cfg.Validate(); !errors.Is(err, ErrBadConfig) {
			t.Errorf("case %d: err = %v, want ErrBadConfig", i, err)
		}
	}
}

func TestSampleSegmentsSC(t *testing.T) {
	// Under SC every segment is exactly 2.
	src := rng.New(1)
	cfg := DefaultConfig(memmodel.SC(), 4)
	for trial := 0; trial < 50; trial++ {
		segs, err := cfg.SampleSegments(src)
		if err != nil {
			t.Fatal(err)
		}
		if len(segs) != 4 {
			t.Fatalf("got %d segments", len(segs))
		}
		for _, s := range segs {
			if s != 2 {
				t.Fatalf("SC segment = %d, want 2", s)
			}
		}
	}
}

func TestSampleSegmentsBounds(t *testing.T) {
	src := rng.New(2)
	for _, model := range memmodel.All() {
		cfg := DefaultConfig(model, 3)
		for trial := 0; trial < 100; trial++ {
			segs, err := cfg.SampleSegments(src)
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range segs {
				if s < 2 || s > cfg.PrefixLen+2 {
					t.Fatalf("%s: segment %d out of [2, m+2]", model.Name(), s)
				}
			}
		}
	}
}

func TestExactTwoThreadPrAMatchesTheorem62(t *testing.T) {
	// The central result: n=2 probabilities per model.
	cases := []struct {
		model memmodel.Model
		check func(t *testing.T, iv analytic.Interval)
	}{
		{memmodel.SC(), func(t *testing.T, iv analytic.Interval) {
			if math.Abs(iv.Midpoint()-analytic.Theorem62SC) > 1e-6 {
				t.Errorf("SC Pr[A] = %+v, want 1/6", iv)
			}
		}},
		{memmodel.WO(), func(t *testing.T, iv analytic.Interval) {
			if math.Abs(iv.Midpoint()-analytic.Theorem62WO) > 1e-4 {
				t.Errorf("WO Pr[A] = %+v, want 7/54", iv)
			}
		}},
		{memmodel.TSO(), func(t *testing.T, iv analytic.Interval) {
			paper := analytic.Theorem62TSO()
			// The DP value is (near-)exact, so it must land inside the
			// paper's rigorous bounds.
			if iv.Midpoint() < paper.Lo-1e-4 || iv.Midpoint() > paper.Hi+1e-4 {
				t.Errorf("TSO Pr[A] = %+v outside paper bounds %+v", iv, paper)
			}
		}},
	}
	for _, tc := range cases {
		cfg := Config{Model: tc.model, Threads: 2, PrefixLen: 16, StoreProb: 0.5, SwapProb: 0.5}
		iv, err := ExactTwoThreadPrA(cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.model.Name(), err)
		}
		tc.check(t, iv)
	}
}

func TestExactTwoThreadPrAOrdering(t *testing.T) {
	// SC > TSO > WO at n=2 (Theorem 6.2's qualitative content).
	get := func(model memmodel.Model) float64 {
		cfg := Config{Model: model, Threads: 2, PrefixLen: 16, StoreProb: 0.5, SwapProb: 0.5}
		iv, err := ExactTwoThreadPrA(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return iv.Midpoint()
	}
	sc, tso, wo := get(memmodel.SC()), get(memmodel.TSO()), get(memmodel.WO())
	if !(sc > tso && tso > wo) {
		t.Errorf("ordering violated: SC %v, TSO %v, WO %v", sc, tso, wo)
	}
	if ratio := sc / wo; math.Abs(ratio-9.0/7.0) > 1e-3 {
		t.Errorf("SC/WO = %v, want 9/7", ratio)
	}
}

func TestExactTwoThreadPrARejectsWrongN(t *testing.T) {
	cfg := Config{Model: memmodel.SC(), Threads: 3, PrefixLen: 8, StoreProb: 0.5, SwapProb: 0.5}
	if _, err := ExactTwoThreadPrA(cfg); !errors.Is(err, ErrBadConfig) {
		t.Error("n=3 accepted")
	}
}

func TestEndToEndMCAgreesWithExact(t *testing.T) {
	// Full joined-process simulation must reproduce the DP-exact n=2
	// values within Monte Carlo error, for every model.
	ctx := context.Background()
	for _, model := range memmodel.All() {
		exactCfg := Config{Model: model, Threads: 2, PrefixLen: 14, StoreProb: 0.5, SwapProb: 0.5}
		iv, err := ExactTwoThreadPrA(exactCfg)
		if err != nil {
			t.Fatal(err)
		}
		simCfg := Config{Model: model, Threads: 2, PrefixLen: 32, StoreProb: 0.5, SwapProb: 0.5}
		res, err := EstimateNoBugProb(ctx, simCfg, mc.Config{Trials: 150000, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		lo, hi, err := res.WilsonCI(0.999)
		if err != nil {
			t.Fatal(err)
		}
		if iv.Hi < lo || iv.Lo > hi {
			t.Errorf("%s: exact %+v outside MC CI [%v, %v]", model.Name(), iv, lo, hi)
		}
	}
}

func TestManifestTrialDeterministicSeed(t *testing.T) {
	cfg := DefaultConfig(memmodel.TSO(), 2)
	a, err := cfg.ManifestTrial(rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := cfg.ManifestTrial(rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same seed gave different outcomes")
	}
}

func TestProductTrialSCIsConstant(t *testing.T) {
	src := rng.New(3)
	cfg := DefaultConfig(memmodel.SC(), 3)
	want := math.Pow(2, -6) // Π_{i=1}^{2} 2^-2i = 2^-6
	for trial := 0; trial < 20; trial++ {
		v, err := cfg.ProductTrial(src)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(v-want) > 1e-15 {
			t.Fatalf("SC product = %v, want %v", v, want)
		}
	}
}

func TestHybridPrAMatchesAnalyticSC(t *testing.T) {
	// For SC the hybrid estimator has zero variance, so it must equal the
	// analytic SCPrA for every n.
	ctx := context.Background()
	for _, n := range []int{2, 3, 4, 6} {
		cfg := DefaultConfig(memmodel.SC(), n)
		res, err := HybridPrA(ctx, cfg, mc.Config{Trials: 200, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		want, err := analytic.SCPrA(n)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.PrA-want) > 1e-12*want {
			t.Errorf("n=%d: hybrid %v, analytic %v", n, res.PrA, want)
		}
		wantLog, err := analytic.SCLogPrA(n)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.LogPrA-wantLog) > 1e-9 {
			t.Errorf("n=%d: hybrid log %v, analytic %v", n, res.LogPrA, wantLog)
		}
	}
}

func TestHybridPrAMatchesExactTwoThread(t *testing.T) {
	// n=2 hybrid (MC expectation) must agree with the DP-exact value.
	ctx := context.Background()
	for _, model := range memmodel.All() {
		cfg := Config{Model: model, Threads: 2, PrefixLen: 32, StoreProb: 0.5, SwapProb: 0.5}
		res, err := HybridPrA(ctx, cfg, mc.Config{Trials: 300000, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		exactCfg := cfg
		exactCfg.PrefixLen = 14
		iv, err := ExactTwoThreadPrA(exactCfg)
		if err != nil {
			t.Fatal(err)
		}
		// Tolerance: MC standard error propagated through the (2/3)·E form
		// plus DP truncation.
		tol := 4*res.StdErr*2.0/3.0*4 + 1e-3
		if res.PrA < iv.Lo-tol || res.PrA > iv.Hi+tol {
			t.Errorf("%s: hybrid %v vs exact %+v (tol %v)", model.Name(), res.PrA, iv, tol)
		}
	}
}
