package core

import (
	"fmt"
	"math"

	"memreliability/internal/mc"
	"memreliability/internal/rng"
	"memreliability/internal/shift"
)

// This file ports the joined-model trials to the mc batch interface —
// the harness's zero-allocation hot path. A batch constructor validates
// the configuration and builds the settle options once, and each batch
// call reuses one segments buffer across its whole chunk, so the
// per-trial overhead of the closure route (validation, option
// construction, a fresh segments slice) is paid once per chunk instead
// of once per trial. RNG consumption is routed through the same
// sampleSegmentsInto routine the closures use, so batch and closure
// estimates are bit-identical for the same (seed, trials).

// productOf computes Π_{i=1}^{n-1} 2^-i·Γᵢ — the Theorem 6.1 expectation
// integrand — from one draw of segment lengths, in log space.
func productOf(segments []int) float64 {
	logProduct := 0.0
	for i := 1; i <= len(segments)-1; i++ {
		logProduct += -float64(i) * float64(segments[i-1]) * math.Ln2
	}
	return math.Exp(logProduct)
}

// NoBugBatch returns the batched form of the full joined-process trial:
// out[i] reports whether the bug did NOT manifest (the event A) on the
// i-th trial. The returned batch is safe for the harness's concurrent
// per-chunk calls — all captured state is immutable, and the reused
// segments buffer is local to each call.
func (c Config) NoBugBatch() (mc.BatchTrial, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	opts, err := c.settleOptions()
	if err != nil {
		return nil, err
	}
	cfg := c
	return func(src *rng.Source, out []bool) error {
		segments := make([]int, cfg.Threads)
		for i := range out {
			if err := cfg.sampleSegmentsInto(opts, segments, src); err != nil {
				return err
			}
			disjoint, err := shift.DisjointTrial(segments, src)
			if err != nil {
				return fmt.Errorf("core: %w", err)
			}
			out[i] = disjoint
		}
		return nil
	}, nil
}

// ProductBatch returns the batched form of the Theorem 6.1 product
// trial: out[i] is one sample of Π_{i=1}^{n-1} 2^-i·Γᵢ from a fresh
// joined-process draw. Concurrency contract as NoBugBatch.
func (c Config) ProductBatch() (mc.BatchMean, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	opts, err := c.settleOptions()
	if err != nil {
		return nil, err
	}
	cfg := c
	return func(src *rng.Source, out []float64) error {
		segments := make([]int, cfg.Threads)
		for i := range out {
			if err := cfg.sampleSegmentsInto(opts, segments, src); err != nil {
				return err
			}
			out[i] = productOf(segments)
		}
		return nil
	}, nil
}
