package core

import (
	"fmt"
	"math"

	"memreliability/internal/mc"
	"memreliability/internal/rng"
	"memreliability/internal/shift"
)

// This file holds the []bool reference implementation of the batched
// joined-model trial and the kernel-backed product batch. NoBugBatch
// routes RNG consumption through the same sampleSegmentsInto routine
// the closures use, so it is bit-identical to the closure route by
// construction; the bit-parallel hot path (NoBugBits, kernel.go) is in
// turn property-tested against NoBugBatch. Estimation entry points run
// on the kernel; NoBugBatch stays as the oracle those tests compare
// against.

// productOf computes Π_{i=1}^{n-1} 2^-i·Γᵢ — the Theorem 6.1 expectation
// integrand — from one draw of segment lengths, in log space.
func productOf(segments []int) float64 {
	logProduct := 0.0
	for i := 1; i <= len(segments)-1; i++ {
		logProduct += -float64(i) * float64(segments[i-1]) * math.Ln2
	}
	return math.Exp(logProduct)
}

// NoBugBatch returns the []bool-batched form of the full joined-process
// trial: out[i] reports whether the bug did NOT manifest (the event A)
// on the i-th trial. It is the reference implementation the bit-parallel
// NoBugBits is property-tested against — kept deliberately on the
// shared sampleSegmentsInto routine, not the kernel. The returned batch
// is safe for the harness's concurrent per-chunk calls — all captured
// state is immutable, and the reused segments buffer is local to each
// call.
func (c Config) NoBugBatch() (mc.BatchTrial, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	opts, err := c.settleOptions()
	if err != nil {
		return nil, err
	}
	cfg := c
	return func(src *rng.Source, out []bool) error {
		segments := make([]int, cfg.Threads)
		for i := range out {
			if err := cfg.sampleSegmentsInto(opts, segments, src); err != nil {
				return err
			}
			disjoint, err := shift.DisjointTrial(segments, src)
			if err != nil {
				return fmt.Errorf("core: %w", err)
			}
			out[i] = disjoint
		}
		return nil
	}, nil
}

// ProductBatch returns the batched form of the Theorem 6.1 product
// trial: out[i] is one sample of Π_{i=1}^{n-1} 2^-i·Γᵢ from a fresh
// joined-process draw. It runs on the table-driven kernel (one private
// kernel per call, as NoBugBits), bit-identical to the ProductTrial
// closure route.
func (c Config) ProductBatch() (mc.BatchMean, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	cfg := c
	return func(src *rng.Source, out []float64) error {
		k, err := cfg.NewKernel()
		if err != nil {
			return err
		}
		return k.FillProducts(src, out)
	}, nil
}
