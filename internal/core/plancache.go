package core

import (
	"container/list"
	"math"
	"sync"
)

// The plan cache memoizes compiled Programs by canonical query key, so
// repeated queries (sweep cells, serve traffic, cluster dispatches that
// vary only seed/trials) pay the compile exactly once. Entries compile
// under a per-entry once outside the cache lock — concurrent first
// lookups of one key block on a single compile, never duplicate it — and
// eviction only forgets the cache's reference: a Program is immutable
// and owns its scratch pool, so in-flight batch calls on an evicted
// program remain valid.

// DefaultPlanCacheCap is the default compiled-plan capacity. Plans are
// small (a few closures plus pooled scratch); the cap exists to bound a
// pathological churn of distinct queries, not memory pressure.
const DefaultPlanCacheCap = 128

// planKey is the canonical identity of a compiled plan. Probabilities
// are keyed by their IEEE bits with negative zero normalized (+0.0 and
// -0.0 validate and estimate identically), and the model contributes
// both its canonical name and its relaxation mask, so two models that
// happen to share a name cannot alias each other's plans.
type planKey struct {
	model     string
	relaxMask uint16
	threads   int
	prefixLen int
	storeBits uint64
	swapBits  uint64
}

// planKeyOf builds the canonical key for a config.
func planKeyOf(c Config) planKey {
	var mask uint16
	for p := 0; p < 4; p++ {
		for m := 0; m < 4; m++ {
			if c.Model.Relaxed(kindType[p], kindType[m]) {
				mask |= 1 << uint(p*4+m)
			}
		}
	}
	return planKey{
		model:     c.Model.Name(),
		relaxMask: mask,
		threads:   c.Threads,
		prefixLen: c.PrefixLen,
		storeBits: math.Float64bits(c.StoreProb + 0), // +0 folds -0.0 into +0.0
		swapBits:  math.Float64bits(c.SwapProb + 0),
	}
}

// planEntry is one cache slot. The once runs BuildIR+Compile exactly
// once per entry lifetime; both the program and the error are cached.
type planEntry struct {
	key  planKey
	once sync.Once
	prog *Program
	err  error
}

// PlanCache is a concurrency-safe LRU cache of compiled Programs.
type PlanCache struct {
	mu      sync.Mutex
	cap     int
	entries map[planKey]*list.Element
	order   *list.List // front = most recently used; values are *planEntry
}

// NewPlanCache returns a cache holding at most capacity compiled plans
// (minimum 1).
func NewPlanCache(capacity int) *PlanCache {
	if capacity < 1 {
		capacity = 1
	}
	return &PlanCache{
		cap:     capacity,
		entries: make(map[planKey]*list.Element),
		order:   list.New(),
	}
}

// Lookup returns the compiled program for the config, compiling it on
// first use. Concurrent lookups of the same key share one compile.
func (pc *PlanCache) Lookup(cfg Config) (*Program, error) {
	key := planKeyOf(cfg)
	pc.mu.Lock()
	el, ok := pc.entries[key]
	if ok {
		pc.order.MoveToFront(el)
	} else {
		el = pc.order.PushFront(&planEntry{key: key})
		pc.entries[key] = el
		for pc.order.Len() > pc.cap {
			oldest := pc.order.Back()
			pc.order.Remove(oldest)
			delete(pc.entries, oldest.Value.(*planEntry).key)
			corePlanCacheEvictions.Inc()
		}
	}
	e := el.Value.(*planEntry)
	pc.mu.Unlock()
	if ok {
		corePlanCacheHits.Inc()
	}
	e.once.Do(func() {
		ir, err := cfg.BuildIR()
		if err != nil {
			e.err = err
			return
		}
		e.prog, e.err = ir.Compile()
	})
	return e.prog, e.err
}

// Len reports the number of cached plans (compiled or compiling).
func (pc *PlanCache) Len() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.order.Len()
}

// SetCap adjusts the capacity (minimum 1), evicting least-recently-used
// plans as needed. Evicted programs stay valid for holders.
func (pc *PlanCache) SetCap(capacity int) {
	if capacity < 1 {
		capacity = 1
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	pc.cap = capacity
	for pc.order.Len() > pc.cap {
		oldest := pc.order.Back()
		pc.order.Remove(oldest)
		delete(pc.entries, oldest.Value.(*planEntry).key)
		corePlanCacheEvictions.Inc()
	}
}

// defaultPlanCache serves every compiled-path entry point in the package.
var defaultPlanCache = NewPlanCache(DefaultPlanCacheCap)

// DefaultPlanCache returns the process-wide plan cache used by the
// compiled estimation entry points (CompiledNoBugBits and friends).
func DefaultPlanCache() *PlanCache { return defaultPlanCache }
