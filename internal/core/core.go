// Package core joins the paper's two random processes (§6): segment
// lengths for the shift process are drawn as the critical-window sizes of n
// independently settled copies of one random program, and the bug manifests
// exactly when some pair of shifted windows overlaps.
//
// The package offers three estimation routes with different
// accuracy/coverage trade-offs:
//
//   - EstimateNoBugProb: full end-to-end Monte Carlo of the joined process
//     (any model, any n, but needs Pr[A] large enough to sample);
//   - ExactTwoThreadPrA: exact n=2 value from the settling DP, using
//     Pr[A] = (2/3)·E[2^-Γ] (Theorem 6.2's derivation, which needs only
//     the marginal window distribution);
//   - HybridPrA: Theorem 6.1 with the joint product expectation
//     E[Π_{i=1}^{n-1} 2^-i·Γᵢ] estimated by Monte Carlo — this reaches
//     the e^{-Θ(n²)} regime of Theorem 6.3 that direct simulation cannot.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"memreliability/internal/analytic"
	"memreliability/internal/mc"
	"memreliability/internal/memmodel"
	"memreliability/internal/prog"
	"memreliability/internal/rng"
	"memreliability/internal/settle"
	"memreliability/internal/shift"
	"memreliability/internal/stats"
)

// ErrBadConfig reports an invalid experiment configuration.
var ErrBadConfig = errors.New("core: bad config")

// Config describes one joined-model experiment.
type Config struct {
	// Model is the memory consistency model under test.
	Model memmodel.Model
	// Threads is n, the number of concurrent buggy threads (≥ 2).
	Threads int
	// PrefixLen is m, the random-program prefix length. The paper's
	// analysis takes m → ∞; the finite-m truncation error decays
	// geometrically, so moderate values (64+) suffice.
	PrefixLen int
	// StoreProb is p (default normal form 1/2).
	StoreProb float64
	// SwapProb is s (default normal form 1/2).
	SwapProb float64
}

// DefaultConfig returns the paper's normal form (p = s = 1/2, m = 64) for
// the given model and thread count.
func DefaultConfig(model memmodel.Model, threads int) Config {
	return Config{
		Model:     model,
		Threads:   threads,
		PrefixLen: 64,
		StoreProb: 0.5,
		SwapProb:  0.5,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Model.Name() == "" {
		return fmt.Errorf("%w: zero-value model", ErrBadConfig)
	}
	if c.Threads < 2 {
		return fmt.Errorf("%w: threads=%d (need ≥ 2)", ErrBadConfig, c.Threads)
	}
	if c.PrefixLen < 0 {
		return fmt.Errorf("%w: prefix length %d", ErrBadConfig, c.PrefixLen)
	}
	if c.StoreProb < 0 || c.StoreProb > 1 {
		return fmt.Errorf("%w: store probability %v", ErrBadConfig, c.StoreProb)
	}
	if c.SwapProb < 0 || c.SwapProb > 1 {
		return fmt.Errorf("%w: swap probability %v", ErrBadConfig, c.SwapProb)
	}
	return nil
}

// settleOptions builds the settle options for the config.
func (c Config) settleOptions() (settle.Options, error) {
	sp, err := memmodel.Uniform(c.SwapProb)
	if err != nil {
		return settle.Options{}, fmt.Errorf("core: %w", err)
	}
	return settle.Options{SwapProbs: sp}, nil
}

// sampleSegmentsInto runs one iteration of the §6 generative process
// into a caller-provided buffer of length Threads: draw one random
// program, settle len(segments) independent copies of it, and record the
// segment lengths Γ_k = γ_k + 2. It is the single sampling routine
// shared by the per-trial closures and the batched trials, so the two
// routes consume the RNG stream identically by construction.
func (c Config) sampleSegmentsInto(opts settle.Options, segments []int, src *rng.Source) error {
	p, err := prog.Generate(prog.Params{PrefixLen: c.PrefixLen, StoreProb: c.StoreProb}, src)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	for k := range segments {
		res, err := settle.Settle(p, c.Model, opts, src)
		if err != nil {
			return fmt.Errorf("core: %w", err)
		}
		segments[k] = res.SegmentLength()
	}
	return nil
}

// SampleSegments runs one iteration of the §6 generative process: draw one
// random program, settle Threads independent copies of it, and return the
// segment lengths Γ_k = γ_k + 2 of the reordered critical windows.
func (c Config) SampleSegments(src *rng.Source) ([]int, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, fmt.Errorf("%w: nil rng source", ErrBadConfig)
	}
	opts, err := c.settleOptions()
	if err != nil {
		return nil, err
	}
	segments := make([]int, c.Threads)
	if err := c.sampleSegmentsInto(opts, segments, src); err != nil {
		return nil, err
	}
	return segments, nil
}

// ManifestTrial runs one full joined-process trial and reports whether the
// canonical data race manifested (some pair of shifted critical windows
// overlapped).
func (c Config) ManifestTrial(src *rng.Source) (bool, error) {
	segments, err := c.SampleSegments(src)
	if err != nil {
		return false, err
	}
	disjoint, err := shift.DisjointTrial(segments, src)
	if err != nil {
		return false, fmt.Errorf("core: %w", err)
	}
	return !disjoint, nil
}

// EstimateNoBugProb estimates Pr[A] — the probability the bug does NOT
// manifest — by full Monte Carlo over the joined process, on the
// harness's bit-parallel hot path via the table-driven kernel
// (bit-identical to the per-trial and []bool routes).
func EstimateNoBugProb(ctx context.Context, cfg Config, mcCfg mc.Config) (*mc.Result, error) {
	batch, err := cfg.NoBugBits()
	if err != nil {
		return nil, err
	}
	return mc.EstimateProbabilityBits(ctx, mcCfg, batch)
}

// ExactTwoThreadPrA returns the exact (up to finite-m truncation, bracketed
// in the interval) value of Pr[A] for n = 2 under the configured model:
// Pr[A] = (2/3)·E[2^-Γ], with E[2^-Γ] computed from the settling DP's
// exact window distribution.
//
// The config's Threads field must be 2 and PrefixLen must be within the
// DP's exact range.
func ExactTwoThreadPrA(cfg Config) (analytic.Interval, error) {
	if err := cfg.Validate(); err != nil {
		return analytic.Interval{}, err
	}
	if cfg.Threads != 2 {
		return analytic.Interval{}, fmt.Errorf("%w: ExactTwoThreadPrA needs n=2, got %d",
			ErrBadConfig, cfg.Threads)
	}
	pmf, err := settle.ExactWindowDist(cfg.Model, cfg.PrefixLen, cfg.StoreProb, cfg.SwapProb, cfg.PrefixLen)
	if err != nil {
		return analytic.Interval{}, fmt.Errorf("core: %w", err)
	}
	mgf, err := analytic.SegmentMGF(pmf)
	if err != nil {
		return analytic.Interval{}, fmt.Errorf("core: %w", err)
	}
	return analytic.TwoThreadPrA(mgf), nil
}

// ProductTrial computes one sample of Π_{i=1}^{n-1} 2^-i·Γᵢ, the Theorem
// 6.1 expectation integrand, from a fresh joined-process draw.
func (c Config) ProductTrial(src *rng.Source) (float64, error) {
	segments, err := c.SampleSegments(src)
	if err != nil {
		return 0, err
	}
	return productOf(segments), nil
}

// EstimateProductExpectation estimates E[Π_{i=1}^{n-1} 2^-i·Γᵢ] by Monte
// Carlo, on the harness's batched hot path (bit-identical to the
// per-trial route).
func EstimateProductExpectation(ctx context.Context, cfg Config, mcCfg mc.Config) (*stats.Summary, error) {
	batch, err := cfg.ProductBatch()
	if err != nil {
		return nil, err
	}
	return mc.EstimateMeanBatch(ctx, mcCfg, batch)
}

// HybridResult is the outcome of a Theorem 6.1 hybrid estimation.
type HybridResult struct {
	// PrA is the estimated non-manifestation probability.
	PrA float64
	// LogPrA is ln(PrA), finite even when PrA underflows float64.
	LogPrA float64
	// ProductExpectation is the Monte Carlo estimate of
	// E[Π_{i=1}^{n-1} 2^-i·Γᵢ].
	ProductExpectation float64
	// StdErr is the standard error of ProductExpectation.
	StdErr float64
}

// hybridResultFrom assembles a HybridResult from an estimated product
// expectation — the single Theorem 6.1 plug-in point shared by the
// fixed-trials and adaptive routes, so the positivity guard and the
// log-space recomputation cannot drift apart.
func hybridResultFrom(cfg Config, expectation, stdErr float64) (*HybridResult, error) {
	if expectation <= 0 {
		return nil, fmt.Errorf("%w: product expectation estimate %v not positive "+
			"(increase the trial budget)", ErrBadConfig, expectation)
	}
	prA, err := shift.Theorem61(cfg.Threads, expectation)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	// Recompute in log space for the deep-tail regime.
	n := cfg.Threads
	c, err := shift.CorollaryC(n)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	logPrA := math.Log(c) -
		float64(n+1)*float64(n)/2*math.Ln2 +
		logFactorial(n) +
		math.Log(expectation)
	return &HybridResult{
		PrA:                prA,
		LogPrA:             logPrA,
		ProductExpectation: expectation,
		StdErr:             stdErr,
	}, nil
}

// HybridPrA estimates Pr[A] for any n by plugging a Monte Carlo estimate of
// the product expectation into the exact Theorem 6.1 formula. Unlike full
// simulation it remains accurate deep in the e^{-Θ(n²)} regime, because the
// n-dependent combinatorial factors are computed analytically.
func HybridPrA(ctx context.Context, cfg Config, mcCfg mc.Config) (*HybridResult, error) {
	sum, err := EstimateProductExpectation(ctx, cfg, mcCfg)
	if err != nil {
		return nil, err
	}
	return hybridResultFrom(cfg, sum.Mean(), sum.StdErr())
}

// logFactorial is a small local helper (ln n!).
func logFactorial(n int) float64 {
	sum := 0.0
	for i := 2; i <= n; i++ {
		sum += math.Log(float64(i))
	}
	return sum
}

// ScalingRow is one row of a Theorem 6.3 thread-scaling sweep. The sweep
// itself is orchestrated by internal/sweep (ThreadScaling), which shards
// one hybrid cell per model × n across its worker pool.
type ScalingRow struct {
	Model   string
	Threads int
	// LogPrA is ln Pr[A] from the hybrid estimator.
	LogPrA float64
	// Rate is −ln Pr[A] / n², the Theorem 6.3 normalized decay rate.
	Rate float64
	// RatioToSC is Rate divided by the same-n SC rate; Theorem 6.3 says it
	// tends to 1 for every model.
	RatioToSC float64
}
