// exact.go computes Pr[A] exactly for small instances of the joined model
// by enumerating every program, every per-thread window size, and the
// exact shift-disjointness probability — with no sampling anywhere. It is
// the strongest available validator for the Monte Carlo and hybrid
// estimators: unlike ExactTwoThreadPrA it handles n > 2, including the
// cross-thread window dependence that a shared program induces under TSO
// and PSO.
package core

import (
	"fmt"
	"math"
	"sort"

	"memreliability/internal/memmodel"
	"memreliability/internal/settle"
	"memreliability/internal/shift"
)

// maxExactEnumPrefix bounds the 2^m program enumeration.
const maxExactEnumPrefix = 12

// maxExactEnumThreads bounds the (m+1)^n window-tuple enumeration.
const maxExactEnumThreads = 4

// ExactSmallPrA returns the exact probability that the bug does not
// manifest, for the configured model, thread count (2..4) and prefix
// length (≤ 12), by full enumeration:
//
//	Pr[A] = Σ_prog Pr[prog] · Σ_{γ₁..γₙ} Π_k Pr[B_{γ_k} | prog] · Pr[A(Γ̄)],
//
// where Pr[B_γ | prog] comes from the conditional settling DP and
// Pr[A(Γ̄)] from the exact Theorem 5.1 evaluation. Both the program
// expectation and the window tuples are exhausted, so the only
// approximation anywhere is float64 rounding.
func ExactSmallPrA(cfg Config) (float64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	if cfg.PrefixLen > maxExactEnumPrefix {
		return 0, fmt.Errorf("%w: prefix length %d exceeds exact-enumeration limit %d",
			ErrBadConfig, cfg.PrefixLen, maxExactEnumPrefix)
	}
	if cfg.Threads > maxExactEnumThreads {
		return 0, fmt.Errorf("%w: %d threads exceeds exact-enumeration limit %d",
			ErrBadConfig, cfg.Threads, maxExactEnumThreads)
	}
	m := cfg.PrefixLen
	n := cfg.Threads

	// Pr[A(Γ̄)] depends only on the multiset of segment lengths; memoize.
	disjointCache := make(map[string]float64)
	disjointProb := func(gammas []int) (float64, error) {
		segments := make([]int, len(gammas))
		for i, g := range gammas {
			segments[i] = g + 2 // Γ = γ + 2
		}
		sort.Ints(segments)
		key := fmt.Sprint(segments)
		if v, ok := disjointCache[key]; ok {
			return v, nil
		}
		v, err := shift.ExactTheorem51(segments)
		if err != nil {
			return 0, fmt.Errorf("core: %w", err)
		}
		disjointCache[key] = v
		return v, nil
	}

	total := 0.0
	prefix := make([]memmodel.OpType, m)
	gammas := make([]int, n)
	for mask := uint64(0); mask < 1<<uint(m); mask++ {
		weight := 1.0
		for i := 0; i < m; i++ {
			if mask&(1<<uint(i)) != 0 {
				prefix[i] = memmodel.Store
				weight *= cfg.StoreProb
			} else {
				prefix[i] = memmodel.Load
				weight *= 1 - cfg.StoreProb
			}
		}
		if weight == 0 {
			continue
		}
		pmf, err := settle.ConditionalWindowDist(cfg.Model, prefix, cfg.SwapProb)
		if err != nil {
			return 0, fmt.Errorf("core: %w", err)
		}
		// Sum over all window tuples; threads are conditionally i.i.d.
		var sumTuples func(k int, tupleWeight float64) (float64, error)
		sumTuples = func(k int, tupleWeight float64) (float64, error) {
			if tupleWeight == 0 {
				return 0, nil
			}
			if k == n {
				pA, err := disjointProb(gammas)
				if err != nil {
					return 0, err
				}
				return tupleWeight * pA, nil
			}
			acc := 0.0
			for g := 0; g <= m; g++ {
				gammas[k] = g
				v, err := sumTuples(k+1, tupleWeight*pmf.At(g))
				if err != nil {
					return 0, err
				}
				acc += v
			}
			return acc, nil
		}
		progPrA, err := sumTuples(0, 1)
		if err != nil {
			return 0, err
		}
		total += weight * progPrA
	}
	return total, nil
}

// ExactProductExpectation returns the exact Theorem 6.1 expectation
// E[Π_{i=1}^{n-1} 2^-i·Γᵢ] by the same full enumeration, for validating
// the Monte Carlo product estimator including cross-thread dependence.
func ExactProductExpectation(cfg Config) (float64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	if cfg.PrefixLen > maxExactEnumPrefix {
		return 0, fmt.Errorf("%w: prefix length %d exceeds exact-enumeration limit %d",
			ErrBadConfig, cfg.PrefixLen, maxExactEnumPrefix)
	}
	if cfg.Threads > maxExactEnumThreads {
		return 0, fmt.Errorf("%w: %d threads exceeds exact-enumeration limit %d",
			ErrBadConfig, cfg.Threads, maxExactEnumThreads)
	}
	m := cfg.PrefixLen
	n := cfg.Threads

	total := 0.0
	prefix := make([]memmodel.OpType, m)
	for mask := uint64(0); mask < 1<<uint(m); mask++ {
		weight := 1.0
		for i := 0; i < m; i++ {
			if mask&(1<<uint(i)) != 0 {
				prefix[i] = memmodel.Store
				weight *= cfg.StoreProb
			} else {
				prefix[i] = memmodel.Load
				weight *= 1 - cfg.StoreProb
			}
		}
		if weight == 0 {
			continue
		}
		pmf, err := settle.ConditionalWindowDist(cfg.Model, prefix, cfg.SwapProb)
		if err != nil {
			return 0, fmt.Errorf("core: %w", err)
		}
		// Conditionally independent threads: the product expectation
		// factorizes given the program, E[Π 2^-iΓᵢ | prog] =
		// Π_i E[2^-i(γ+2) | prog].
		product := 1.0
		for i := 1; i <= n-1; i++ {
			e := 0.0
			for g := 0; g <= m; g++ {
				e += pmf.At(g) * math.Pow(2, -float64(i*(g+2)))
			}
			product *= e
		}
		total += weight * product
	}
	return total, nil
}

// ExactSmallPrAViaTheorem61 combines the exact product expectation with
// the exact shift combinatorics of Theorem 6.1. Agreement with
// ExactSmallPrA is a full numerical verification of Theorem 6.1 on
// dependent, identically distributed windows.
func ExactSmallPrAViaTheorem61(cfg Config) (float64, error) {
	expectation, err := ExactProductExpectation(cfg)
	if err != nil {
		return 0, err
	}
	// Theorem 6.1 averages over programs *outside* the n!·E[·] term; with
	// conditionally independent threads the program-level expectation of
	// the factorized product is exactly the joint expectation, so the
	// formula applies unchanged.
	v, err := shift.Theorem61(cfg.Threads, expectation)
	if err != nil {
		return 0, fmt.Errorf("core: %w", err)
	}
	return v, nil
}
