package core

import (
	"testing"

	"memreliability/internal/mc"
	"memreliability/internal/memmodel"
	"memreliability/internal/rng"
)

// kernelModels covers every canonical model — the full spread of
// relaxation matrices the swap table must tabulate, from all-forbidden
// (SC) to all-permitted (WO).
func kernelModels() []memmodel.Model {
	return []memmodel.Model{memmodel.SC(), memmodel.TSO(), memmodel.PSO(), memmodel.WO()}
}

// TestKernelBitsMatchReference sweeps models × thread counts × prefix
// lengths and checks NoBugBits against the []bool reference NoBugBatch
// and the per-trial closure on shared substreams: the three routes must
// produce identical booleans trial for trial, including on batch sizes
// that end mid-word. Edge probabilities (p, s ∈ {0, 1}) exercise the
// draw-free threshold sentinels.
func TestKernelBitsMatchReference(t *testing.T) {
	type probs struct{ store, swap float64 }
	cases := []probs{{0.5, 0.5}, {0.3, 0.7}, {0, 0.5}, {1, 0.5}, {0.5, 0}, {0.5, 1}}
	for _, model := range kernelModels() {
		for _, n := range []int{2, 4} {
			for _, m := range []int{0, 1, 7, 16} {
				for _, pr := range cases {
					cfg := Config{Model: model, Threads: n, PrefixLen: m,
						StoreProb: pr.store, SwapProb: pr.swap}
					bits, err := cfg.NoBugBits()
					if err != nil {
						t.Fatal(err)
					}
					ref, err := cfg.NoBugBatch()
					if err != nil {
						t.Fatal(err)
					}
					const trials = 131 // ends mid-word: 2 full words + 3 bits
					words := make([]uint64, mc.BitWords(trials))
					for w := range words {
						words[w] = ^uint64(0) // dirty buffer: contract says unused bits come back zero
					}
					bools := make([]bool, trials)
					bitsSrc, refSrc, closureSrc := rng.New(11), rng.New(11), rng.New(11)
					if err := bits(bitsSrc, words, trials); err != nil {
						t.Fatal(err)
					}
					if err := ref(refSrc, bools); err != nil {
						t.Fatal(err)
					}
					for i := 0; i < trials; i++ {
						got := words[i>>6]&(1<<uint(i&63)) != 0
						if got != bools[i] {
							t.Fatalf("%s n=%d m=%d p=%v s=%v trial %d: bits=%v reference=%v",
								model.Name(), n, m, pr.store, pr.swap, i, got, bools[i])
						}
						manifested, err := cfg.ManifestTrial(closureSrc)
						if err != nil {
							t.Fatal(err)
						}
						if got != !manifested {
							t.Fatalf("%s n=%d m=%d p=%v s=%v trial %d: bits=%v closure no-bug=%v",
								model.Name(), n, m, pr.store, pr.swap, i, got, !manifested)
						}
					}
					for i := trials; i < len(words)*mc.WordBits; i++ {
						if words[i>>6]&(1<<uint(i&63)) != 0 {
							t.Fatalf("%s n=%d m=%d: bit %d past n is set", model.Name(), n, m, i)
						}
					}
					if bitsSrc.State() != refSrc.State() {
						t.Fatalf("%s n=%d m=%d p=%v s=%v: bits and reference consumed different draws",
							model.Name(), n, m, pr.store, pr.swap)
					}
				}
			}
		}
	}
}

// TestKernelProductsMatchClosure checks the kernel-backed ProductBatch
// against the ProductTrial closure across every model: identical float64
// bits on identical substreams.
func TestKernelProductsMatchClosure(t *testing.T) {
	for _, model := range kernelModels() {
		cfg := Config{Model: model, Threads: 5, PrefixLen: 12, StoreProb: 0.4, SwapProb: 0.6}
		batch, err := cfg.ProductBatch()
		if err != nil {
			t.Fatal(err)
		}
		const trials = 200
		batchSrc, closureSrc := rng.New(17), rng.New(17)
		out := make([]float64, trials)
		if err := batch(batchSrc, out); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < trials; i++ {
			want, err := cfg.ProductTrial(closureSrc)
			if err != nil {
				t.Fatal(err)
			}
			if out[i] != want {
				t.Fatalf("%s trial %d: kernel=%v closure=%v", model.Name(), i, out[i], want)
			}
		}
	}
}

// TestKernelTrialMatchesManifest pins NoBugTrial itself (the exported
// single-trial kernel entry point) to the negated ManifestTrial.
func TestKernelTrialMatchesManifest(t *testing.T) {
	cfg := DefaultConfig(memmodel.PSO(), 3)
	cfg.PrefixLen = 10
	k, err := cfg.NewKernel()
	if err != nil {
		t.Fatal(err)
	}
	kernelSrc, closureSrc := rng.New(23), rng.New(23)
	for i := 0; i < 300; i++ {
		got := k.NoBugTrial(kernelSrc)
		manifested, err := cfg.ManifestTrial(closureSrc)
		if err != nil {
			t.Fatal(err)
		}
		if got != !manifested {
			t.Fatalf("trial %d: kernel no-bug=%v closure manifested=%v", i, got, manifested)
		}
	}
}

// TestKernelZeroAllocs asserts the prebuilt kernel's fill entry points
// allocate nothing per call — the guarantee the perf suite's strict
// zero-alloc gate rides on.
func TestKernelZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	cfg := DefaultConfig(memmodel.TSO(), 2)
	cfg.PrefixLen = 24
	k, err := cfg.NewKernel()
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(31)
	const trials = 700 // ends mid-word
	words := make([]uint64, mc.BitWords(trials))
	if avg := testing.AllocsPerRun(10, func() {
		if err := k.FillBits(src, words, trials); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("FillBits allocates %.1f per call, want 0", avg)
	}
	products := make([]float64, 128)
	if avg := testing.AllocsPerRun(10, func() {
		if err := k.FillProducts(src, products); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("FillProducts allocates %.1f per call, want 0", avg)
	}
}

// TestKernelValidates checks that invalid configs fail at construction,
// for both the kernel itself and the NoBugBits constructor.
func TestKernelValidates(t *testing.T) {
	bad := Config{Model: memmodel.TSO(), Threads: 1, PrefixLen: 16}
	if _, err := bad.NewKernel(); err == nil {
		t.Error("NewKernel accepted threads=1")
	}
	if _, err := bad.NoBugBits(); err == nil {
		t.Error("NoBugBits accepted threads=1")
	}
	var zero Config
	if _, err := zero.NewKernel(); err == nil {
		t.Error("NewKernel accepted the zero config")
	}
}
