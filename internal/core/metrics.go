package core

import (
	"memreliability/internal/obs"
)

// Kernel-construction metrics. NewKernel runs once per worker batch
// call on the bitset route, so these sit just off the chunk hot path:
// both updates are lock-free atomics with zero allocation, and the
// histogram observation derives from the wall clock only — never from
// experiment RNG.
var (
	coreKernelsBuilt = obs.Default().Counter("core_kernels_built_total",
		"Table-driven joined-process kernels constructed.")
	coreKernelBuildSeconds = obs.Default().Histogram("core_kernel_build_seconds",
		"Wall-clock time to validate a config and build its kernel.",
		obs.LogBuckets(1e-7, 4, 12))
)
