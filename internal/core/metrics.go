package core

import (
	"memreliability/internal/obs"
)

// Kernel-construction metrics. NewKernel runs once per worker batch
// call on the bitset route, so these sit just off the chunk hot path:
// both updates are lock-free atomics with zero allocation, and the
// histogram observation derives from the wall clock only — never from
// experiment RNG.
var (
	coreKernelsBuilt = obs.Default().Counter("core_kernels_built_total",
		"Table-driven joined-process kernels constructed.")
	coreKernelBuildSeconds = obs.Default().Histogram("core_kernel_build_seconds",
		"Wall-clock time to validate a config and build its kernel.",
		obs.LogBuckets(1e-7, 4, 12))
)

// Compiler-engine metrics. Compiles happen once per distinct query (the
// plan cache's once), hits on every repeat lookup, evictions only when
// the LRU exceeds its cap — all lock-free atomic counters.
var (
	corePlansCompiled = obs.Default().Counter("core_plans_compiled_total",
		"Trial kernels monomorphized by the compiler engine.")
	corePlanCacheHits = obs.Default().Counter("core_plan_cache_hits_total",
		"Plan-cache lookups served by an existing entry.")
	corePlanCacheEvictions = obs.Default().Counter("core_plan_cache_evictions_total",
		"Compiled plans evicted by the LRU capacity bound.")
)
