package core

import (
	"context"
	"testing"

	"memreliability/internal/mc"
	"memreliability/internal/memmodel"
	"memreliability/internal/rng"
)

// TestNoBugBatchMatchesClosure checks the batched joined-process trial
// against the per-trial route on one shared substream: trial for trial,
// the booleans must be identical.
func TestNoBugBatchMatchesClosure(t *testing.T) {
	cfg := Config{Model: memmodel.TSO(), Threads: 3, PrefixLen: 16, StoreProb: 0.5, SwapProb: 0.5}
	batch, err := cfg.NoBugBatch()
	if err != nil {
		t.Fatal(err)
	}
	const trials = 400
	batchSrc, closureSrc := rng.New(5), rng.New(5)
	out := make([]bool, trials)
	if err := batch(batchSrc, out); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < trials; i++ {
		manifested, err := cfg.ManifestTrial(closureSrc)
		if err != nil {
			t.Fatal(err)
		}
		if out[i] != !manifested {
			t.Fatalf("trial %d: batch=%v closure no-bug=%v", i, out[i], !manifested)
		}
	}
}

// TestProductBatchMatchesClosure is the same check for the Theorem 6.1
// product trial: identical float64 bits on identical substreams.
func TestProductBatchMatchesClosure(t *testing.T) {
	cfg := Config{Model: memmodel.WO(), Threads: 4, PrefixLen: 16, StoreProb: 0.5, SwapProb: 0.5}
	batch, err := cfg.ProductBatch()
	if err != nil {
		t.Fatal(err)
	}
	const trials = 400
	batchSrc, closureSrc := rng.New(9), rng.New(9)
	out := make([]float64, trials)
	if err := batch(batchSrc, out); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < trials; i++ {
		want, err := cfg.ProductTrial(closureSrc)
		if err != nil {
			t.Fatal(err)
		}
		if out[i] != want {
			t.Fatalf("trial %d: batch=%v closure=%v", i, out[i], want)
		}
	}
}

// TestEstimateNoBugProbStillDeterministic pins the end-to-end estimate:
// the batch rewiring must leave (seed, trials) → counts unchanged across
// worker counts.
func TestEstimateNoBugProbStillDeterministic(t *testing.T) {
	cfg := Config{Model: memmodel.TSO(), Threads: 2, PrefixLen: 16, StoreProb: 0.5, SwapProb: 0.5}
	var want int
	for i, workers := range []int{1, 4} {
		res, err := EstimateNoBugProb(context.Background(), cfg,
			mc.Config{Trials: 3000, Workers: workers, Seed: 62})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = res.Proportion.Successes()
		} else if res.Proportion.Successes() != want {
			t.Errorf("workers=%d: %d successes, want %d", workers, res.Proportion.Successes(), want)
		}
	}

	batch, err := cfg.NoBugBatch()
	if err != nil {
		t.Fatal(err)
	}
	viaBatch, err := mc.EstimateProbabilityBatch(context.Background(),
		mc.Config{Trials: 3000, Seed: 62}, batch)
	if err != nil {
		t.Fatal(err)
	}
	if viaBatch.Proportion.Successes() != want {
		t.Errorf("direct batch run: %d successes, want %d", viaBatch.Proportion.Successes(), want)
	}
}

// TestBatchConstructorsValidate checks that invalid configs fail at
// construction, before any sampling.
func TestBatchConstructorsValidate(t *testing.T) {
	bad := Config{Model: memmodel.TSO(), Threads: 1, PrefixLen: 16}
	if _, err := bad.NoBugBatch(); err == nil {
		t.Error("NoBugBatch accepted threads=1")
	}
	if _, err := bad.ProductBatch(); err == nil {
		t.Error("ProductBatch accepted threads=1")
	}
}
