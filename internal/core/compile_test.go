package core

import (
	"context"
	"errors"
	"sync"
	"testing"

	"memreliability/internal/mc"
	"memreliability/internal/memmodel"
	"memreliability/internal/rng"
)

// These are the compiler engine's promotion gate: the compiled Program
// must be bit-identical to the table-driven reference kernel — same
// bitsets, same products, same final generator state — across the full
// parameter lattice, including the draw-free p, s ∈ {0, 1} edges, batch
// sizes that end mid-word, and the harness's sub-batch call pattern.

// latticeCase is one point of the cross-engine test grid.
type latticeCase struct {
	cfg  Config
	name string
}

// compileLattice sweeps models × thread counts × prefix lengths ×
// edge-and-interior probabilities.
func compileLattice(t *testing.T) []latticeCase {
	t.Helper()
	type probs struct{ store, swap float64 }
	cases := []probs{{0.5, 0.5}, {0.3, 0.7}, {0, 0.5}, {1, 0.5}, {0.5, 0}, {0.5, 1}, {1, 1}, {0, 0}}
	var out []latticeCase
	for _, model := range kernelModels() {
		for _, n := range []int{2, 3, 4} {
			for _, m := range []int{0, 1, 7, 16} {
				for _, pr := range cases {
					cfg := Config{Model: model, Threads: n, PrefixLen: m,
						StoreProb: pr.store, SwapProb: pr.swap}
					out = append(out, latticeCase{cfg: cfg, name: model.Name()})
				}
			}
		}
	}
	return out
}

// compileFor builds the compiled program for a config, failing the test
// on any compile error (every Config must be compilable).
func compileFor(t *testing.T, cfg Config) *Program {
	t.Helper()
	ir, err := cfg.BuildIR()
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ir.Compile()
	if err != nil {
		t.Fatalf("%s n=%d m=%d p=%v s=%v: %v", cfg.Model.Name(), cfg.Threads,
			cfg.PrefixLen, cfg.StoreProb, cfg.SwapProb, err)
	}
	return prog
}

// TestCompiledBitsMatchReference is the main cross-engine equality
// property: compiled FillBits against the reference kernel's FillBits on
// shared substreams over the whole lattice — identical bitsets
// (including zeroed unused bits of a dirty partial final word) and
// identical final generator states.
func TestCompiledBitsMatchReference(t *testing.T) {
	for _, lc := range compileLattice(t) {
		cfg := lc.cfg
		prog := compileFor(t, cfg)
		k, err := cfg.NewKernel()
		if err != nil {
			t.Fatal(err)
		}
		const trials = 131 // ends mid-word: 2 full words + 3 bits
		got := make([]uint64, mc.BitWords(trials))
		want := make([]uint64, mc.BitWords(trials))
		for w := range got {
			got[w] = ^uint64(0) // contract: unused bits come back zero
		}
		compiledSrc, refSrc := rng.New(11), rng.New(11)
		if err := prog.FillBits(compiledSrc, got, trials); err != nil {
			t.Fatal(err)
		}
		if err := k.FillBits(refSrc, want, trials); err != nil {
			t.Fatal(err)
		}
		for w := range got {
			if got[w] != want[w] {
				t.Fatalf("%s n=%d m=%d p=%v s=%v word %d: compiled %064b != reference %064b",
					lc.name, cfg.Threads, cfg.PrefixLen, cfg.StoreProb, cfg.SwapProb,
					w, got[w], want[w])
			}
		}
		if compiledSrc.State() != refSrc.State() {
			t.Fatalf("%s n=%d m=%d p=%v s=%v: engines consumed different draws",
				lc.name, cfg.Threads, cfg.PrefixLen, cfg.StoreProb, cfg.SwapProb)
		}
	}
}

// TestCompiledSubBatchResync replays the mc harness's actual call
// pattern — repeated batch calls on one source with sub-chunk sizes,
// as runProbChunk's cancellation sub-batches and the adaptive engine's
// round barriers produce — and checks the compiled engine stays
// bit-identical and draw-synchronized with the reference after every
// call, not just at the end. This is what the drawCursor's
// snapshot-and-resync exists for.
func TestCompiledSubBatchResync(t *testing.T) {
	cfg := Config{Model: memmodel.TSO(), Threads: 2, PrefixLen: 24, StoreProb: 0.5, SwapProb: 0.5}
	prog := compileFor(t, cfg)
	k, err := cfg.NewKernel()
	if err != nil {
		t.Fatal(err)
	}
	compiledSrc, refSrc := rng.New(43), rng.New(43)
	for call, trials := range []int{1024, 1024, 137, 64, 1, 1024} {
		got := make([]uint64, mc.BitWords(trials))
		want := make([]uint64, mc.BitWords(trials))
		if err := prog.FillBits(compiledSrc, got, trials); err != nil {
			t.Fatal(err)
		}
		if err := k.FillBits(refSrc, want, trials); err != nil {
			t.Fatal(err)
		}
		for w := range got {
			if got[w] != want[w] {
				t.Fatalf("call %d (n=%d) word %d: compiled != reference", call, trials, w)
			}
		}
		if compiledSrc.State() != refSrc.State() {
			t.Fatalf("call %d (n=%d): sources desynchronized", call, trials)
		}
	}
}

// TestCompiledProductsMatchKernel checks compiled FillProducts against
// the reference kernel: identical float64 bits, identical final state.
func TestCompiledProductsMatchKernel(t *testing.T) {
	for _, model := range kernelModels() {
		cfg := Config{Model: model, Threads: 5, PrefixLen: 12, StoreProb: 0.4, SwapProb: 0.6}
		prog := compileFor(t, cfg)
		k, err := cfg.NewKernel()
		if err != nil {
			t.Fatal(err)
		}
		const trials = 200
		compiledSrc, refSrc := rng.New(17), rng.New(17)
		got := make([]float64, trials)
		want := make([]float64, trials)
		if err := prog.FillProducts(compiledSrc, got); err != nil {
			t.Fatal(err)
		}
		if err := k.FillProducts(refSrc, want); err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s trial %d: compiled=%v reference=%v", model.Name(), i, got[i], want[i])
			}
		}
		if compiledSrc.State() != refSrc.State() {
			t.Fatalf("%s: engines consumed different draws", model.Name())
		}
	}
}

// TestCompiledEstimateMatchesReference runs the full fixed-trials
// estimation pipeline on both engines: identical Results, at one worker
// and several (worker invariance already holds per engine; this pins the
// engines to each other).
func TestCompiledEstimateMatchesReference(t *testing.T) {
	cfg := DefaultConfig(memmodel.PSO(), 3)
	cfg.PrefixLen = 16
	for _, workers := range []int{1, 3} {
		mcCfg := mc.Config{Trials: 4000, Workers: workers, Seed: 7}
		got, err := EstimateNoBugProbCompiled(context.Background(), cfg, mcCfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := EstimateNoBugProb(context.Background(), cfg, mcCfg)
		if err != nil {
			t.Fatal(err)
		}
		if got.Proportion.Successes() != want.Proportion.Successes() || got.Estimate() != want.Estimate() {
			t.Fatalf("workers=%d: compiled %d/%v != reference %d/%v", workers,
				got.Proportion.Successes(), got.Estimate(), want.Proportion.Successes(), want.Estimate())
		}
	}
}

// TestCompiledAdaptiveMatchesReference pins the adaptive route across
// engines: same rounds, same trials consumed, same stop reason, same
// estimate — the round barriers land on identical chunk boundaries
// because the engines are draw-for-draw identical.
func TestCompiledAdaptiveMatchesReference(t *testing.T) {
	cfg := DefaultConfig(memmodel.TSO(), 2)
	cfg.PrefixLen = 16
	acfg := mc.AdaptiveConfig{
		MaxTrials:       1 << 16,
		Workers:         2,
		Seed:            19,
		TargetHalfWidth: 0.01,
		Confidence:      0.95,
	}
	got, err := EstimateNoBugProbCompiledAdaptive(context.Background(), cfg, acfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := EstimateNoBugProbAdaptive(context.Background(), cfg, acfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.TrialsUsed() != want.TrialsUsed() || got.Rounds != want.Rounds ||
		got.StopReason != want.StopReason || got.Estimate() != want.Estimate() {
		t.Fatalf("adaptive diverged: compiled trials=%d rounds=%d stop=%s est=%v, "+
			"reference trials=%d rounds=%d stop=%s est=%v",
			got.TrialsUsed(), got.Rounds, got.StopReason, got.Estimate(),
			want.TrialsUsed(), want.Rounds, want.StopReason, want.Estimate())
	}
}

// TestCompiledZeroAllocs asserts the compiled batch entry points
// allocate nothing in steady state (after the pool is warm) — the
// guarantee the compiled-kernel perf scenario gates.
func TestCompiledZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	cfg := DefaultConfig(memmodel.TSO(), 2)
	cfg.PrefixLen = 24
	prog := compileFor(t, cfg)
	src := rng.New(31)
	const trials = 700 // ends mid-word
	words := make([]uint64, mc.BitWords(trials))
	if err := prog.FillBits(src, words, trials); err != nil { // warm the pool
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(10, func() {
		if err := prog.FillBits(src, words, trials); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("FillBits allocates %.1f per call, want 0", avg)
	}
	products := make([]float64, 128)
	if avg := testing.AllocsPerRun(10, func() {
		if err := prog.FillProducts(src, products); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("FillProducts allocates %.1f per call, want 0", avg)
	}
}

// TestCompiledConcurrentBatchCalls runs many concurrent batch calls on
// one shared Program (the harness's worker pattern) and checks each
// stream against the reference engine — the pooled scratch states must
// not alias.
func TestCompiledConcurrentBatchCalls(t *testing.T) {
	cfg := DefaultConfig(memmodel.WO(), 3)
	cfg.PrefixLen = 12
	prog := compileFor(t, cfg)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			k, err := cfg.NewKernel()
			if err != nil {
				t.Error(err)
				return
			}
			const trials = 500
			got := make([]uint64, mc.BitWords(trials))
			want := make([]uint64, mc.BitWords(trials))
			compiledSrc, refSrc := rng.New(seed), rng.New(seed)
			for rep := 0; rep < 5; rep++ {
				if err := prog.FillBits(compiledSrc, got, trials); err != nil {
					t.Error(err)
					return
				}
				if err := k.FillBits(refSrc, want, trials); err != nil {
					t.Error(err)
					return
				}
				for w := range got {
					if got[w] != want[w] {
						t.Errorf("seed %d rep %d word %d: compiled != reference", seed, rep, w)
						return
					}
				}
			}
		}(uint64(100 + g))
	}
	wg.Wait()
}

// TestCompileRejectsNonUniformIR pins the fallback seam: an IR with
// per-pair swap thresholds (which Config.BuildIR never emits) must
// report ErrNotCompilable rather than compile something wrong.
func TestCompileRejectsNonUniformIR(t *testing.T) {
	cfg := DefaultConfig(memmodel.WO(), 2)
	ir, err := cfg.BuildIR()
	if err != nil {
		t.Fatal(err)
	}
	ir.SwapThr[0][1] = drawThreshold(0.25) // break uniformity
	if _, err := ir.Compile(); !errors.Is(err, ErrNotCompilable) {
		t.Fatalf("want ErrNotCompilable, got %v", err)
	}
}
