package core

import (
	"testing"

	"memreliability/internal/mc"
	"memreliability/internal/memmodel"
	"memreliability/internal/rng"
)

// BenchmarkCompiledFillBits measures the compiled engine's steady-state
// chunk loop on the canonical fixed-mc shape (TSO, n=2, m=24).
func BenchmarkCompiledFillBits(b *testing.B) {
	cfg := DefaultConfig(memmodel.TSO(), 2)
	cfg.PrefixLen = 24
	ir, err := cfg.BuildIR()
	if err != nil {
		b.Fatal(err)
	}
	prog, err := ir.Compile()
	if err != nil {
		b.Fatal(err)
	}
	src := rng.New(1)
	const trials = 8192
	words := make([]uint64, mc.BitWords(trials))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := prog.FillBits(src, words, trials); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelFillBits is the reference engine on the same shape.
func BenchmarkKernelFillBits(b *testing.B) {
	cfg := DefaultConfig(memmodel.TSO(), 2)
	cfg.PrefixLen = 24
	k, err := cfg.NewKernel()
	if err != nil {
		b.Fatal(err)
	}
	src := rng.New(1)
	const trials = 8192
	words := make([]uint64, mc.BitWords(trials))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := k.FillBits(src, words, trials); err != nil {
			b.Fatal(err)
		}
	}
}
