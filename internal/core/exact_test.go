package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"memreliability/internal/mc"
	"memreliability/internal/memmodel"
)

func TestExactSmallPrAMatchesTwoThreadDP(t *testing.T) {
	// Two fully independent exact routes must agree at n=2: the marginal
	// DP (ExactTwoThreadPrA) and the full joint enumeration.
	for _, model := range memmodel.All() {
		cfg := Config{Model: model, Threads: 2, PrefixLen: 10, StoreProb: 0.5, SwapProb: 0.5}
		enum, err := ExactSmallPrA(cfg)
		if err != nil {
			t.Fatal(err)
		}
		iv, err := ExactTwoThreadPrA(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if enum < iv.Lo-1e-9 || enum > iv.Hi+1e-9 {
			t.Errorf("%s: enumeration %v outside DP interval %+v", model.Name(), enum, iv)
		}
	}
}

func TestExactSmallPrAMatchesTheorem61(t *testing.T) {
	// Full numerical verification of Theorem 6.1 on dependent windows:
	// direct enumeration of the disjointness event vs the c(n)·n!·E[Π...]
	// formula, at n=3 where the permutation combinatorics are non-trivial.
	for _, model := range []memmodel.Model{memmodel.SC(), memmodel.TSO(), memmodel.WO()} {
		cfg := Config{Model: model, Threads: 3, PrefixLen: 8, StoreProb: 0.5, SwapProb: 0.5}
		direct, err := ExactSmallPrA(cfg)
		if err != nil {
			t.Fatal(err)
		}
		via61, err := ExactSmallPrAViaTheorem61(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(direct-via61) > 1e-9*math.Max(1, direct) {
			t.Errorf("%s: direct %v vs Theorem 6.1 %v", model.Name(), direct, via61)
		}
	}
}

func TestExactSmallPrASCKnownValue(t *testing.T) {
	// SC n=3: every Γ=2, so Pr[A] = Pr[A(2,2,2)] exactly; compare with the
	// shift closed form through the analytic route used elsewhere.
	cfg := Config{Model: memmodel.SC(), Threads: 3, PrefixLen: 6, StoreProb: 0.5, SwapProb: 0.5}
	enum, err := ExactSmallPrA(cfg)
	if err != nil {
		t.Fatal(err)
	}
	via61, err := ExactSmallPrAViaTheorem61(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(enum-via61) > 1e-12 {
		t.Errorf("SC n=3: %v vs %v", enum, via61)
	}
	// And n=2 must still be 1/6 (short prefix is fine: SC windows do not
	// depend on the prefix at all).
	cfg2 := Config{Model: memmodel.SC(), Threads: 2, PrefixLen: 4, StoreProb: 0.5, SwapProb: 0.5}
	enum2, err := ExactSmallPrA(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(enum2-1.0/6.0) > 1e-12 {
		t.Errorf("SC n=2 enumeration = %v, want 1/6", enum2)
	}
}

func TestExactSmallPrAMatchesMonteCarloN3(t *testing.T) {
	// The enumeration must sit inside a tight MC interval for n=3 — this
	// cross-validates the entire joined sampler beyond n=2.
	ctx := context.Background()
	for _, model := range []memmodel.Model{memmodel.TSO(), memmodel.WO()} {
		exactCfg := Config{Model: model, Threads: 3, PrefixLen: 10, StoreProb: 0.5, SwapProb: 0.5}
		exact, err := ExactSmallPrA(exactCfg)
		if err != nil {
			t.Fatal(err)
		}
		simCfg := Config{Model: model, Threads: 3, PrefixLen: 32, StoreProb: 0.5, SwapProb: 0.5}
		res, err := EstimateNoBugProb(ctx, simCfg, mc.Config{Trials: 200000, Seed: 33})
		if err != nil {
			t.Fatal(err)
		}
		lo, hi, err := res.WilsonCI(0.999)
		if err != nil {
			t.Fatal(err)
		}
		if exact < lo-5e-4 || exact > hi+5e-4 {
			t.Errorf("%s n=3: exact %v outside MC CI [%v, %v]", model.Name(), exact, lo, hi)
		}
	}
}

func TestExactProductExpectationMatchesMC(t *testing.T) {
	// The MC product estimator must agree with the exact enumeration,
	// including TSO's cross-thread dependence.
	ctx := context.Background()
	cfg := Config{Model: memmodel.TSO(), Threads: 3, PrefixLen: 10, StoreProb: 0.5, SwapProb: 0.5}
	exact, err := ExactProductExpectation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mcCfg := cfg
	mcCfg.PrefixLen = 32
	sum, err := EstimateProductExpectation(ctx, mcCfg, mc.Config{Trials: 300000, Seed: 44})
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(sum.Mean() - exact); diff > 5*sum.StdErr()+1e-4 {
		t.Errorf("product expectation: MC %v vs exact %v (diff %v, stderr %v)",
			sum.Mean(), exact, diff, sum.StdErr())
	}
}

func TestExactSmallPrAModelOrderingN3(t *testing.T) {
	// The Theorem 6.2 qualitative ordering persists at n=3 (with PSO above
	// TSO, per the E9 derived result).
	get := func(model memmodel.Model) float64 {
		cfg := Config{Model: model, Threads: 3, PrefixLen: 9, StoreProb: 0.5, SwapProb: 0.5}
		v, err := ExactSmallPrA(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	sc, tso, pso, wo := get(memmodel.SC()), get(memmodel.TSO()), get(memmodel.PSO()), get(memmodel.WO())
	if !(sc > pso && pso > tso && tso > wo) {
		t.Errorf("n=3 ordering: SC %v, PSO %v, TSO %v, WO %v", sc, pso, tso, wo)
	}
}

func TestExactSmallPrALimits(t *testing.T) {
	big := Config{Model: memmodel.SC(), Threads: 2, PrefixLen: 20, StoreProb: 0.5, SwapProb: 0.5}
	if _, err := ExactSmallPrA(big); !errors.Is(err, ErrBadConfig) {
		t.Error("huge m accepted")
	}
	wide := Config{Model: memmodel.SC(), Threads: 6, PrefixLen: 4, StoreProb: 0.5, SwapProb: 0.5}
	if _, err := ExactSmallPrA(wide); !errors.Is(err, ErrBadConfig) {
		t.Error("n=6 accepted")
	}
	if _, err := ExactProductExpectation(wide); !errors.Is(err, ErrBadConfig) {
		t.Error("ExactProductExpectation n=6 accepted")
	}
}
