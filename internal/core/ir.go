package core

import (
	"fmt"

	"memreliability/internal/dist"
	"memreliability/internal/memmodel"
)

// KernelIR is the intermediate representation both trial engines build
// from: the full decision surface of one (model, n, m, p, s) query,
// lowered to integer draw thresholds (see drawThreshold). Extracting it
// as an explicit compile step is what makes a two-engine architecture
// possible — the table-driven Kernel *interprets* the IR, while the
// compiler engine (compile.go) lowers it further into monomorphized
// closures — and guarantees both engines answer every swap/store/shift
// question from the same precomputed numbers.
//
// A KernelIR is immutable after BuildIR and safe to share.
type KernelIR struct {
	// Threads is n, the number of settled program copies per trial.
	Threads int
	// PrefixLen is m, the random-program prefix length.
	PrefixLen int
	// StoreThr is the draw threshold for generating a prefix ST.
	StoreThr uint64
	// ShiftThr is the draw threshold of the geometric shift's success
	// probability (dist.StandardShift).
	ShiftThr uint64
	// SwapThr[p][m] is the swap decision surface in threshold form: the
	// success threshold when kind m may settle past kind p, and neverThr
	// when the pair is forbidden — by the same-location rule (crit-crit,
	// footnote 2) or the model's relaxation matrix.
	SwapThr [4][4]uint64
}

// BuildIR validates the configuration and lowers it to the kernel IR.
// This is the single place the model's relaxation matrix and the paper's
// probabilities are consulted; everything downstream is integer compares.
func (c Config) BuildIR() (*KernelIR, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	sp, err := memmodel.Uniform(c.SwapProb)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	ir := &KernelIR{
		Threads:   c.Threads,
		PrefixLen: c.PrefixLen,
		StoreThr:  drawThreshold(c.StoreProb),
		ShiftThr:  drawThreshold(dist.StandardShift().P),
	}
	for p := 0; p < 4; p++ {
		for m := 0; m < 4; m++ {
			if p >= 2 && m >= 2 {
				// Both critical: same location, swap automatically fails
				// (footnote 2 — the critical ST never passes the critical LD).
				continue
			}
			if c.Model.Relaxed(kindType[p], kindType[m]) {
				ir.SwapThr[p][m] = drawThreshold(sp.For(kindType[p], kindType[m]))
			}
		}
	}
	return ir, nil
}

// uniformSwap reports whether every permitted swap pair shares a single
// draw threshold, and if so returns the permission masks and that
// threshold. mask[p] has bit m set iff kind m may settle past kind p.
// Config.BuildIR always produces a uniform surface (memmodel.Uniform),
// so for IRs built from a Config this always succeeds; a hand-built IR
// with per-pair thresholds is the documented fallback-to-interpreter
// case.
func (ir *KernelIR) uniformSwap() (mask [4]uint8, thr uint64, ok bool) {
	thr = neverThr
	for p := 0; p < 4; p++ {
		for m := 0; m < 4; m++ {
			t := ir.SwapThr[p][m]
			if t == neverThr {
				continue
			}
			if thr == neverThr {
				thr = t
			} else if t != thr {
				return [4]uint8{}, 0, false
			}
			mask[p] |= 1 << uint(m)
		}
	}
	return mask, thr, true
}

// NewKernel builds the table-driven (interpreter) engine for the IR.
func (ir *KernelIR) NewKernel() *Kernel {
	return &Kernel{
		threads:  ir.Threads,
		storeThr: ir.StoreThr,
		shiftThr: ir.ShiftThr,
		swapThr:  ir.SwapThr,
		typ:      make([]uint8, ir.PrefixLen),
		order:    make([]uint8, ir.PrefixLen),
		segments: make([]int, ir.Threads),
		shifts:   make([]int, ir.Threads),
	}
}
