package core

import (
	"math"
	"time"

	"memreliability/internal/mc"
	"memreliability/internal/memmodel"
	"memreliability/internal/rng"
)

// This file is the table-driven joined-process kernel behind the bitset
// batch constructors (NoBugBits, ProductBatch). The reference route —
// prog.Generate → settle.Settle → shift.DisjointTrial, as NoBugBatch and
// the closures run it — allocates a program, a settling order, a
// permutation, and a shift placement on every trial and consults the
// model's relaxation map on every swap attempt. The kernel precomputes
// the whole decision surface into two 4×4 tables and replays the exact
// same process on reusable buffers, drawing from the rng.Source through
// the identical Bool calls in the identical order — so its trials are
// bit-identical to the reference route by construction (property-tested
// against it across every canonical model), at a fraction of the cost.
//
// The table encoding exploits the program model's location structure
// (prog package doc): prefix instructions access pairwise-distinct
// locations and only the two critical instructions share one, so
// footnote 2's same-location blocking is a property of the instruction
// *kind* alone. Four kind codes therefore capture everything settling
// ever asks about an instruction.

// Instruction kind codes. Prefix LD/ST carry distinct locations (never
// same-location blocked against anything); the critical pair shares the
// critical location (blocked against each other, never against the
// prefix).
const (
	kindLoad      = 0 // prefix LD
	kindStore     = 1 // prefix ST
	kindCritLoad  = 2 // critical LD (round m+1)
	kindCritStore = 3 // critical ST (round m+2)
)

// kindType maps kind codes to their memory-operation types.
var kindType = [4]memmodel.OpType{memmodel.Load, memmodel.Store, memmodel.Load, memmodel.Store}

// Kernel is a single-goroutine scratch state for running joined-process
// trials without per-trial allocation. One kernel serves one RNG stream
// at a time: the mc harness's per-worker scratch discipline (each batch
// call gets a private kernel) is exactly the required usage. Build one
// with Config.NewKernel.
type Kernel struct {
	threads  int
	storeThr uint64
	shiftThr uint64
	// swapThr[p][m] is the full swap decision surface in threshold form
	// (see drawThreshold): the ρ(τ_p, τ_m) success threshold when kind m
	// may settle past kind p, and neverThr when the pair is forbidden —
	// by the same-location rule or the model's relaxation matrix
	// (settle.swapAllowed, fully tabulated). A forbidden pair and a
	// permitted pair with ρ = 0 both stop the round without drawing,
	// exactly as the reference settling process does, so one table
	// answers both questions.
	swapThr [4][4]uint64
	// typ holds one generated program prefix (kind codes, length m).
	typ []uint8
	// order is the settling scratch: order[pos] = kind at position pos.
	order []uint8
	// segments holds one draw of the n segment lengths Γ_k.
	segments []int
	// shifts holds one draw of the n geometric shifts.
	shifts []int
}

// Draw thresholds: rng.Source.Bool(p) with p ∈ (0,1) succeeds iff
// Float64() < p, i.e. iff float64(Uint64()>>11)·2⁻⁵³ < p. Both sides
// are exact dyadic rationals, so for the integer variate v = Uint64()>>11
// the test is exactly v < ⌈p·2⁵³⌉. The edge probabilities draw nothing:
// p ≤ 0 always fails (neverThr, which no v is below) and p ≥ 1 always
// succeeds (alwaysThr, a sentinel the loops test for before drawing —
// it cannot collide with a real threshold, which is at most 2⁵³). One
// precomputed threshold therefore encodes Bool(p)'s full semantics,
// and the hot loops replay them with a zero-call integer compare.
const (
	neverThr  uint64 = 0
	alwaysThr uint64 = ^uint64(0)
)

// drawThreshold converts a probability to its draw threshold.
func drawThreshold(p float64) uint64 {
	switch {
	case p <= 0:
		return neverThr
	case p >= 1:
		return alwaysThr
	default:
		return uint64(math.Ceil(p * (1 << 53)))
	}
}

// NewKernel validates the configuration and builds a kernel for it,
// lowering the config to the kernel IR (BuildIR) and instantiating the
// table-driven engine over it.
func (c Config) NewKernel() (*Kernel, error) {
	start := time.Now()
	ir, err := c.BuildIR()
	if err != nil {
		return nil, err
	}
	k := ir.NewKernel()
	coreKernelsBuilt.Inc()
	coreKernelBuildSeconds.Observe(time.Since(start).Seconds())
	return k, nil
}

// The kernel's hot loops spell out rng.Source.Bool by hand in threshold
// form (see drawThreshold) — rng.Uint64 fits the compiler's inlining
// budget, so a draw compiles to zero function calls and one integer
// compare. The draw sequence is exactly Bool's.

// sampleSegments runs one iteration of the §6 generative process into
// k.segments: generate one program prefix, settle k.threads independent
// copies, record Γ_k = γ_k + 2. RNG draws replicate
// Config.sampleSegmentsInto exactly: m store/load draws, then each
// settle call's swap draws in round order.
func (k *Kernel) sampleSegments(src *rng.Source) {
	thr := k.storeThr
	for i := range k.typ {
		if thr == alwaysThr || (thr != neverThr && src.Uint64()>>11 < thr) {
			k.typ[i] = kindStore
		} else {
			k.typ[i] = kindLoad
		}
	}
	for t := range k.segments {
		k.segments[t] = k.settleGamma(src) + 2
	}
}

// settleGamma runs one settling pass over the generated program and
// returns γ — the final critical-window growth — without materializing
// the permutation. Rounds 1..m settle the prefix in k.order; round m+1
// walks the critical LD up a positions; round m+2 walks the critical ST
// up b ≤ a of the instructions the LD passed (they keep their relative
// order below it) until a failed draw or the same-location block at the
// LD itself. γ = a − b, exactly settle.Settle's
// perm[store] − perm[load] − 1.
func (k *Kernel) settleGamma(src *rng.Source) int {
	order := k.order
	copy(order, k.typ)
	m := len(order)
	swapThr := &k.swapThr
	// Round 1 has nothing above it; start at round 2. In round r the
	// settling instruction is x_r, still at position r-1 (earlier rounds
	// permute only the instructions above it). Kind codes are masked to
	// their 2-bit range so table lookups need no bounds checks.
	for r := 2; r <= m; r++ {
		pos := r - 1
		moving := order[pos] & 3
		for pos > 0 {
			prev := order[pos-1] & 3
			thr := swapThr[prev][moving]
			if thr == neverThr {
				break
			}
			if thr != alwaysThr && src.Uint64()>>11 >= thr {
				break
			}
			order[pos], order[pos-1] = prev, moving
			pos--
		}
	}
	a := 0
	for a < m {
		thr := swapThr[order[m-1-a]&3][kindCritLoad]
		if thr == neverThr {
			break
		}
		if thr != alwaysThr && src.Uint64()>>11 >= thr {
			break
		}
		a++
	}
	b := 0
	for b < a { // b == a is the critical LD: same location, no draw
		thr := swapThr[order[m-1-b]&3][kindCritStore]
		if thr == neverThr {
			break
		}
		if thr != alwaysThr && src.Uint64()>>11 >= thr {
			break
		}
		b++
	}
	return a - b
}

// disjointTrial draws the geometric shifts for the current segments and
// reports whether the shifted closed segments are mutually disjoint —
// the event A. Draw-for-draw and check-for-check identical to
// shift.DisjointTrial on k.segments.
func (k *Kernel) disjointTrial(src *rng.Source) bool {
	thr := k.shiftThr // Geometric.P ∈ [0,1): never the draw-free alwaysThr case
	for i := range k.shifts {
		s := 0
		if thr != neverThr {
			for src.Uint64()>>11 < thr {
				s++
			}
		}
		k.shifts[i] = s
	}
	n := len(k.shifts)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			// Closed-interval overlap of [sᵢ, sᵢ+Γᵢ] and [sⱼ, sⱼ+Γⱼ],
			// as shift.Placement.Disjoint checks it.
			if k.shifts[i] <= k.shifts[j]+k.segments[j] && k.shifts[j] <= k.shifts[i]+k.segments[i] {
				return false
			}
		}
	}
	return true
}

// NoBugTrial runs one full joined-process trial and reports whether the
// bug did NOT manifest (the event A) — Config.ManifestTrial negated,
// bit-identical to it on the same source.
func (k *Kernel) NoBugTrial(src *rng.Source) bool {
	k.sampleSegments(src)
	return k.disjointTrial(src)
}

// FillBits evaluates n consecutive no-bug trials into out under the
// mc.BatchTrialBits contract (LSB-first, unused final-word bits zero).
// Zero allocations per call.
func (k *Kernel) FillBits(src *rng.Source, out []uint64, n int) error {
	words := out[:mc.BitWords(n)]
	for w := range words {
		words[w] = 0
	}
	for i := 0; i < n; i++ {
		if k.NoBugTrial(src) {
			words[i>>6] |= 1 << uint(i&63)
		}
	}
	return nil
}

// FillProducts evaluates len(out) consecutive Theorem 6.1 product
// trials into out under the mc.BatchMean contract. Zero allocations per
// call.
func (k *Kernel) FillProducts(src *rng.Source, out []float64) error {
	for i := range out {
		k.sampleSegments(src)
		out[i] = productOf(k.segments)
	}
	return nil
}

// NoBugBits returns the bitset-batched form of the full joined-process
// trial: bit i of the output reports whether the bug did NOT manifest
// (the event A) on the i-th trial. Each call builds a private kernel —
// a handful of allocations amortized over a whole chunk — so concurrent
// per-chunk calls share nothing mutable.
func (c Config) NoBugBits() (mc.BatchTrialBits, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	cfg := c
	return func(src *rng.Source, out []uint64, n int) error {
		k, err := cfg.NewKernel()
		if err != nil {
			return err
		}
		return k.FillBits(src, out, n)
	}, nil
}
