package core

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"sync"

	"memreliability/internal/mc"
	"memreliability/internal/rng"
)

// This file is the compiler engine of the two-engine architecture. The
// table-driven Kernel (kernel.go) *interprets* the KernelIR: its hot
// loops re-test the neverThr/alwaysThr sentinels on every draw and load
// the swap threshold from the 4×4 table on every attempt. Compile
// resolves all of that once, at query time, into monomorphized closures:
//
//   - the swap surface collapses to a per-row permission mask plus one
//     uniform threshold held in a register (memmodel.Uniform guarantees
//     every permitted pair shares a threshold);
//   - the p ∈ {0,1} draw-free edges — constant program prefix, s = 0
//     (settling never moves anything, γ ≡ 0) and s = 1 (a deterministic
//     settling walk) — are resolved at compile time into variants that
//     touch the RNG exactly as often as the reference does: never;
//   - loop bounds (m, n) and thresholds are captured constants;
//   - every draw comes from a bulk-filled word buffer (drawCursor over
//     rng.FillUint64s) instead of a per-draw generator step, amortizing
//     the xoshiro state round-trip across a whole buffer.
//
// The only correctness gate is bit-identity with the reference engine on
// the same source — same draws, same order, same final generator state —
// which the cross-engine property tests (compile_test.go) enforce across
// the full parameter lattice. An IR the compiler cannot specialize
// (per-pair swap thresholds, which Config.BuildIR never emits) reports
// ErrNotCompilable, and callers fall back to the reference kernel.

// ErrNotCompilable reports an IR outside the compiler's specialization
// lattice; the table-driven reference kernel handles every IR.
var ErrNotCompilable = errors.New("core: IR not compilable")

// cursorWords is the bulk-draw buffer size (8 KiB). A batch call wastes
// at most one buffer of generated-but-unconsumed words (resynchronized
// by drawCursor.sync), well under 1% of a chunk's draws.
const cursorWords = 1024

// drawCursor serves 53-bit draws from a bulk-filled word buffer while
// keeping the underlying source externally indistinguishable from
// sequential Uint64 consumption. The mc harness calls a batch function
// repeatedly on the same source (sub-batches between cancellation
// checks) and asserts the source's final state matches the per-draw
// route, so the cursor snapshots the generator state before each refill
// and, on sync, rewinds and re-advances by exactly the draws consumed.
type drawCursor struct {
	src *rng.Source
	// pos is the next unconsumed word; pos == cursorWords means the
	// buffer is spent (and doubles as the attach-time "never filled"
	// sentinel, keeping v53's empty test a compare against a constant —
	// that is what fits it under the inlining budget).
	pos  int
	snap [4]uint64
	buf  [cursorWords]uint64
}

// attach binds the cursor to a source at the start of a batch call.
func (c *drawCursor) attach(src *rng.Source) {
	c.src, c.pos = src, cursorWords
}

// next returns the next draw's raw word; callers shift by 11 for the
// 53-bit variate drawThreshold compares against. The body is tuned to
// sit just under the compiler's inlining budget (cost 79 of 80 — the
// refill call's fixed charge leaves no room for even the shift, which
// is why it lives at the call sites), so a buffered draw compiles to a
// compare, an array load, and an increment.
func (c *drawCursor) next() uint64 {
	pos := c.pos
	if pos == cursorWords {
		return c.refillWord()
	}
	c.pos++
	return c.buf[pos]
}

// refillWord snapshots the source, bulk-fills the buffer, and serves the
// buffer's first word.
func (c *drawCursor) refillWord() uint64 {
	c.snap = c.src.State()
	c.src.FillUint64s(c.buf[:])
	c.pos = 1
	return c.buf[0]
}

// refill is refillWord for the fused trial closure, which keeps the
// cursor position in a local and writes it back once per trial: it
// snapshots and fills but serves nothing, leaving the position at 0 for
// the caller's local to take over.
func (c *drawCursor) refill() {
	c.snap = c.src.State()
	c.src.FillUint64s(c.buf[:])
	c.pos = 0
}

// sync leaves the source exactly where sequential per-draw consumption
// would have: rewind to the last pre-refill snapshot, then re-advance by
// the draws actually consumed from that buffer.
func (c *drawCursor) sync() {
	if c.pos == cursorWords {
		// Buffer exactly spent (or never filled): the source already
		// sits at the sequential-consumption position.
		c.src = nil
		return
	}
	if err := c.src.Restore(c.snap); err != nil {
		// Unreachable: the snapshot was captured from a live source.
		panic(fmt.Sprintf("core: cursor resync: %v", err))
	}
	c.src.FillUint64s(c.buf[:c.pos])
	c.src = nil
}

// compiledState is the per-goroutine scratch a Program trial runs on.
// States are pooled inside the Program, so steady-state batch calls
// allocate nothing.
type compiledState struct {
	cur      drawCursor
	typ      []uint8
	order    []uint8
	segments []int
	shifts   []int
}

// Program is a compiled trial kernel: the monomorphized closures for one
// IR plus a pool of scratch states. A Program is immutable after Compile
// and safe for concurrent batch calls; it stays valid even after
// eviction from a plan cache.
type Program struct {
	ir KernelIR
	// prefix fills st.typ with one generated program prefix (a no-op
	// for the p ∈ {0,1} constant-prefix variants, prefilled in newState).
	prefix func(st *compiledState)
	// settle returns γ for one settled copy of st.typ.
	settle func(st *compiledState) int
	// disjoint draws the shifts for st.segments and reports the event A.
	disjoint func(st *compiledState) bool
	// trial, when non-nil, is the fused fast path for the all-interior
	// lattice point: prefix, settling, and disjointness in one closure
	// that holds the draw-cursor position in a register for the whole
	// trial (see compileFusedTrial). Draw-identical to the composed
	// closures above, which remain the engine for every edge variant.
	trial func(st *compiledState) bool
	// constTyp is the compile-time program prefix when p ∈ {0,1}.
	constTyp []uint8
	pool     sync.Pool
}

// IR returns the intermediate representation the program was compiled
// from.
func (p *Program) IR() KernelIR { return p.ir }

// Compile lowers the IR into a monomorphized Program, selecting one
// variant per lattice coordinate (prefix × settle × disjoint).
func (ir *KernelIR) Compile() (*Program, error) {
	mask, swapThr, ok := ir.uniformSwap()
	if !ok {
		return nil, fmt.Errorf("%w: per-pair swap thresholds", ErrNotCompilable)
	}
	if ir.ShiftThr == alwaysThr {
		// A certain geometric success never terminates; the reference
		// engine has the same behavior, but refuse to compile it.
		return nil, fmt.Errorf("%w: shift success probability 1", ErrNotCompilable)
	}
	p := &Program{ir: *ir}
	p.pool.New = func() any { return p.newState() }
	p.prefix = compilePrefix(ir, p)
	p.settle = compileSettle(ir, mask, swapThr)
	p.disjoint = compileDisjoint(ir)
	p.trial = compileFusedTrial(ir, mask, swapThr)
	corePlansCompiled.Inc()
	return p, nil
}

// compileFusedTrial lowers the all-interior lattice point — probabilistic
// prefix, general masked settling, geometric shifts — into one fused
// closure built on two register-residency tricks the composed closures
// cannot use:
//
//   - the draw-cursor position lives in a local from the first prefix
//     draw to the last shift draw, written back once per trial (the
//     composed closures round-trip it through memory on every draw), and
//     the buffer index is masked so the bounds check vanishes;
//   - the program prefix and the settling order are bit-packed into one
//     uint64 (prefix kinds are binary — LD or ST — and the critical pair
//     never enters the walked sequence), so the bubble walk reads,
//     tests, and swaps register bits instead of byte-array elements, and
//     "copy the prefix per thread" is a register move.
//
// The draw sequence is identical to the composed path (and hence to the
// reference kernel): every permission test short-circuits before its
// draw, exactly as the interpreter's sentinel guards do. Edge variants
// (p ∈ {0,1}, s ∈ {0,1}, shift probability 0) and prefixes wider than
// one word return nil and stay on the composed closures.
func compileFusedTrial(ir *KernelIR, mask [4]uint8, swapThr uint64) func(*compiledState) bool {
	storeThr, shiftThr, m := ir.StoreThr, ir.ShiftThr, ir.PrefixLen
	if storeThr == neverThr || storeThr == alwaysThr ||
		swapThr == neverThr || swapThr == alwaysThr || mask == [4]uint8{} ||
		shiftThr == neverThr || shiftThr == alwaysThr || m > 64 ||
		storeThr >= 1<<53 || swapThr >= 1<<53 || shiftThr >= 1<<53 {
		return nil
	}
	// Thresholds compare the 53-bit variate word>>11; pre-shifting them
	// instead compares the raw word and drops one shift per draw. Exact
	// because ⌊d/2¹¹⌋ < t ⟺ d < t·2¹¹, and the gate above keeps t·2¹¹
	// from wrapping (t = 2⁵³ would, and falls back to the composed path).
	rawStore, rawSwap, rawShift := storeThr<<11, swapThr<<11, shiftThr<<11
	// Lower the permission surfaces onto binary kinds (bit = kind, LD=0,
	// ST=1): rowAllow{0,1} bit p permits a moving LD/ST to swap past prev
	// kind p, ldAllow/stAllow bit k lets the critical LD/ST settle past
	// kind k.
	var rowAllow0, rowAllow1, ldAllow, stAllow uint8
	for prev := 0; prev < 2; prev++ {
		rowAllow0 |= (mask[prev] >> kindLoad & 1) << uint(prev)
		rowAllow1 |= (mask[prev] >> kindStore & 1) << uint(prev)
		ldAllow |= (mask[prev] >> kindCritLoad & 1) << uint(prev)
		stAllow |= (mask[prev] >> kindCritStore & 1) << uint(prev)
	}
	// Elements whose permission row is all-zero break before their first
	// draw, so the walk can skip them without visiting: sel0/sel1 select
	// which prefix kinds walk at all, and the closure combines them with
	// the drawn prefix into a bitmask it jumps across with TrailingZeros
	// instead of stepping element by element. Position 0 never walks.
	var sel0, sel1 uint64
	if rowAllow0 != 0 {
		sel0 = ^uint64(0)
	}
	if rowAllow1 != 0 {
		sel1 = ^uint64(0)
	}
	rangeMask := (uint64(1)<<uint(m) - 1) &^ 1
	two := ir.Threads == 2
	return func(st *compiledState) bool {
		cur := &st.cur
		pos := cur.pos
		segments := st.segments

		var typ uint64 // bit i = kind of prefix position i
		for i := 0; i < m; i++ {
			if pos == cursorWords {
				cur.refill()
				pos = 0
			}
			if cur.buf[pos&(cursorWords-1)] < rawStore {
				typ |= 1 << uint(i)
			}
			pos++
		}

		// Elements walk in position order, and each is visited at its
		// ORIGINAL position with its original kind — settling only
		// disturbs positions below the element being walked — so the
		// visit set is a pure function of the drawn prefix, computed once
		// and jumped across bit by bit. Skipped elements are exactly
		// those whose first permission test fails: no draw, no movement.
		elems := (typ&sel1 | ^typ&sel0) & rangeMask
		for t := range segments {
			o := typ
			for e := elems; e != 0; e &= e - 1 {
				// Walk the element at position `at` down. While it
				// settles, the bits it has yet to pass keep their
				// positions, so prev kinds come from an MSB-scan register
				// (one shift per step, no re-indexing into o); o itself
				// is patched once at the end — drop the moving bit, close
				// the gap, land the element s places down.
				at := bits.TrailingZeros64(e)
				moving := typ >> uint(at) & 1
				rA := rowAllow0
				if moving != 0 {
					rA = rowAllow1
				}
				v := o << uint(64-at)
				s := 0
				for s < at {
					prev := v >> 63
					v <<= 1
					if rA>>prev&1 == 0 {
						break
					}
					if pos == cursorWords {
						cur.refill()
						pos = 0
					}
					d := cur.buf[pos&(cursorWords-1)]
					pos++
					if d >= rawSwap {
						break
					}
					s++
				}
				if s > 0 {
					seg := o >> uint(at-s) & (1<<uint(s) - 1)
					o = o&^((1<<uint(s+1)-1)<<uint(at-s)) |
						seg<<uint(at-s+1) | moving<<uint(at-s)
				}
			}
			a := 0
			va := o << uint(64-m) // MSB-first scan from position m-1
			for a < m {
				if ldAllow>>(va>>63)&1 == 0 {
					break
				}
				if pos == cursorWords {
					cur.refill()
					pos = 0
				}
				d := cur.buf[pos&(cursorWords-1)]
				pos++
				if d >= rawSwap {
					break
				}
				va <<= 1
				a++
			}
			b := 0
			vb := o << uint(64-m)
			for b < a { // b == a is the critical LD: same location, no draw
				if stAllow>>(vb>>63)&1 == 0 {
					break
				}
				if pos == cursorWords {
					cur.refill()
					pos = 0
				}
				d := cur.buf[pos&(cursorWords-1)]
				pos++
				if d >= rawSwap {
					break
				}
				vb <<= 1
				b++
			}
			segments[t] = a - b + 2
		}

		ok := false
		if two {
			s0 := 0
			for {
				if pos == cursorWords {
					cur.refill()
					pos = 0
				}
				d := cur.buf[pos&(cursorWords-1)]
				pos++
				if d >= rawShift {
					break
				}
				s0++
			}
			s1 := 0
			for {
				if pos == cursorWords {
					cur.refill()
					pos = 0
				}
				d := cur.buf[pos&(cursorWords-1)]
				pos++
				if d >= rawShift {
					break
				}
				s1++
			}
			ok = s0 > s1+segments[1] || s1 > s0+segments[0]
		} else {
			shifts := st.shifts
			for i := range shifts {
				s := 0
				for {
					if pos == cursorWords {
						cur.refill()
						pos = 0
					}
					d := cur.buf[pos&(cursorWords-1)]
					pos++
					if d >= rawShift {
						break
					}
					s++
				}
				shifts[i] = s
			}
			ok = true
			n := len(shifts)
		scan:
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					if shifts[i] <= shifts[j]+segments[j] && shifts[j] <= shifts[i]+segments[i] {
						ok = false
						break scan
					}
				}
			}
		}
		cur.pos = pos
		return ok
	}
}

// compilePrefix selects the program-prefix generator variant.
func compilePrefix(ir *KernelIR, p *Program) func(*compiledState) {
	switch thr := ir.StoreThr; thr {
	case neverThr, alwaysThr:
		// Draw-free edge: the prefix is a compile-time constant, baked
		// into every pooled state by newState. The reference engine
		// draws nothing here either (sentinel short-circuit).
		kind := uint8(kindLoad)
		if thr == alwaysThr {
			kind = kindStore
		}
		p.constTyp = make([]uint8, ir.PrefixLen)
		for i := range p.constTyp {
			p.constTyp[i] = kind
		}
		return func(*compiledState) {}
	default:
		return func(st *compiledState) {
			typ, cur := st.typ, &st.cur
			for i := range typ {
				k := uint8(kindLoad)
				if cur.next()>>11 < thr {
					k = kindStore
				}
				typ[i] = k
			}
		}
	}
}

// compileSettle selects the settling variant for the uniform swap
// surface: γ ≡ 0 when no pair may ever swap, a deterministic draw-free
// walk when every permitted swap succeeds, and the general single-
// threshold masked loop otherwise.
func compileSettle(ir *KernelIR, mask [4]uint8, swapThr uint64) func(*compiledState) int {
	// Column masks for the critical rounds: bit prev set iff the
	// critical LD (resp. ST) may settle past kind prev.
	var ldMask, stMask uint8
	for prev := 0; prev < 4; prev++ {
		ldMask |= (mask[prev] >> kindCritLoad & 1) << uint(prev)
		stMask |= (mask[prev] >> kindCritStore & 1) << uint(prev)
	}
	m := ir.PrefixLen
	allZero := mask == [4]uint8{}
	switch {
	case allZero || swapThr == neverThr:
		// s = 0 (or SC's empty relaxation set): nothing ever settles
		// anywhere, γ ≡ 0, and the reference draws nothing either.
		return func(*compiledState) int { return 0 }
	case swapThr == alwaysThr:
		// s = 1: every permitted swap succeeds — settling is a
		// deterministic, draw-free walk over the permission masks.
		return func(st *compiledState) int {
			order := st.order
			copy(order, st.typ)
			for r := 2; r <= m; r++ {
				pos := r - 1
				moving := order[pos] & 3
				bit := uint8(1) << moving
				for pos > 0 {
					prev := order[pos-1] & 3
					if mask[prev]&bit == 0 {
						break
					}
					order[pos], order[pos-1] = prev, moving
					pos--
				}
			}
			a := 0
			for a < m && ldMask>>(order[m-1-a]&3)&1 == 1 {
				a++
			}
			b := 0
			for b < a && stMask>>(order[m-1-b]&3)&1 == 1 {
				b++
			}
			return a - b
		}
	default:
		// General uniform surface: one threshold in a register, one
		// mask test per attempt, one bulk-buffered draw per permitted
		// attempt — the same draws, in the same order, as the
		// interpreter's table walk.
		return func(st *compiledState) int {
			order := st.order
			copy(order, st.typ)
			cur := &st.cur
			for r := 2; r <= m; r++ {
				pos := r - 1
				moving := order[pos] & 3
				bit := uint8(1) << moving
				for pos > 0 {
					prev := order[pos-1] & 3
					if mask[prev]&bit == 0 || cur.next()>>11 >= swapThr {
						break
					}
					order[pos], order[pos-1] = prev, moving
					pos--
				}
			}
			a := 0
			for a < m {
				if ldMask>>(order[m-1-a]&3)&1 == 0 || cur.next()>>11 >= swapThr {
					break
				}
				a++
			}
			b := 0
			for b < a { // b == a is the critical LD: same location, no draw
				if stMask>>(order[m-1-b]&3)&1 == 0 || cur.next()>>11 >= swapThr {
					break
				}
				b++
			}
			return a - b
		}
	}
}

// compileDisjoint selects the shifted-disjointness variant: the n = 2
// single pair check, or the general nested scan.
func compileDisjoint(ir *KernelIR) func(*compiledState) bool {
	thr := ir.ShiftThr
	if ir.Threads == 2 {
		return func(st *compiledState) bool {
			cur := &st.cur
			s0 := geometricDraw(cur, thr)
			s1 := geometricDraw(cur, thr)
			seg := st.segments
			// Closed-interval disjointness of [s0, s0+Γ0] and [s1, s1+Γ1].
			return s0 > s1+seg[1] || s1 > s0+seg[0]
		}
	}
	return func(st *compiledState) bool {
		cur, shifts := &st.cur, st.shifts
		for i := range shifts {
			shifts[i] = geometricDraw(cur, thr)
		}
		seg := st.segments
		n := len(shifts)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if shifts[i] <= shifts[j]+seg[j] && shifts[j] <= shifts[i]+seg[i] {
					return false
				}
			}
		}
		return true
	}
}

// geometricDraw replays rng-draw-identical geometric sampling: count
// successes below thr until the first failure. thr == neverThr draws
// nothing, exactly as the reference's sentinel guard.
func geometricDraw(cur *drawCursor, thr uint64) int {
	if thr == neverThr {
		return 0
	}
	s := 0
	for cur.next()>>11 < thr {
		s++
	}
	return s
}

// newState builds one scratch state, prefilling the constant prefix and
// the constant segments of the draw-free settle variants.
func (p *Program) newState() *compiledState {
	st := &compiledState{
		typ:      make([]uint8, p.ir.PrefixLen),
		order:    make([]uint8, p.ir.PrefixLen),
		segments: make([]int, p.ir.Threads),
		shifts:   make([]int, p.ir.Threads),
	}
	copy(st.typ, p.constTyp)
	return st
}

// sample runs one iteration of the §6 generative process into
// st.segments — the compiled engine's analog of Kernel.sampleSegments.
func (p *Program) sample(st *compiledState) {
	p.prefix(st)
	for t := range st.segments {
		st.segments[t] = p.settle(st) + 2
	}
}

// FillBits evaluates n consecutive no-bug trials into out under the
// mc.BatchTrialBits contract (LSB-first, unused final-word bits zero),
// bit-identical to Kernel.FillBits on the same source, including the
// source's final state. Zero steady-state allocations.
func (p *Program) FillBits(src *rng.Source, out []uint64, n int) error {
	st := p.pool.Get().(*compiledState)
	defer p.pool.Put(st)
	st.cur.attach(src)
	words := out[:mc.BitWords(n)]
	for w := range words {
		words[w] = 0
	}
	if trial := p.trial; trial != nil {
		for i := 0; i < n; i++ {
			if trial(st) {
				words[i>>6] |= 1 << uint(i&63)
			}
		}
	} else {
		for i := 0; i < n; i++ {
			p.sample(st)
			if p.disjoint(st) {
				words[i>>6] |= 1 << uint(i&63)
			}
		}
	}
	st.cur.sync()
	return nil
}

// FillProducts evaluates len(out) consecutive Theorem 6.1 product trials
// into out under the mc.BatchMean contract, bit-identical to
// Kernel.FillProducts. Zero steady-state allocations.
func (p *Program) FillProducts(src *rng.Source, out []float64) error {
	st := p.pool.Get().(*compiledState)
	defer p.pool.Put(st)
	st.cur.attach(src)
	for i := range out {
		p.sample(st)
		out[i] = productOf(st.segments)
	}
	st.cur.sync()
	return nil
}

// BatchBits adapts the program to the mc harness's bitset batch
// interface. The program is shared across the harness's concurrent
// per-chunk calls; each call draws a private state from the pool.
func (p *Program) BatchBits() mc.BatchTrialBits { return p.FillBits }

// BatchProducts adapts the program to the mc harness's mean batch
// interface.
func (p *Program) BatchProducts() mc.BatchMean { return p.FillProducts }

// CompiledNoBugBits returns the bitset batch for the config on the
// compiler engine, compiling through the default plan cache (repeated
// queries share one Program). If the query falls outside the compiler's
// specialization lattice (ErrNotCompilable — impossible for configs,
// kept as a defensive seam), it falls back to the reference kernel,
// which is bit-identical by the promotion gate.
func (c Config) CompiledNoBugBits() (mc.BatchTrialBits, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	prog, err := DefaultPlanCache().Lookup(c)
	if errors.Is(err, ErrNotCompilable) {
		return c.NoBugBits()
	}
	if err != nil {
		return nil, err
	}
	return prog.BatchBits(), nil
}

// EstimateNoBugProbCompiled estimates Pr[A] by full Monte Carlo on the
// compiler engine — bit-identical to EstimateNoBugProb by the
// cross-engine gate, faster per trial.
func EstimateNoBugProbCompiled(ctx context.Context, cfg Config, mcCfg mc.Config) (*mc.Result, error) {
	batch, err := cfg.CompiledNoBugBits()
	if err != nil {
		return nil, err
	}
	return mc.EstimateProbabilityBits(ctx, mcCfg, batch)
}

// EstimateNoBugProbCompiledAdaptive is the adaptive-precision form of
// EstimateNoBugProbCompiled, with EstimateNoBugProbAdaptive's exact
// reproducibility contract (chunk-aligned rounds, worker-count
// invariant) on the compiler engine.
func EstimateNoBugProbCompiledAdaptive(ctx context.Context, cfg Config, acfg mc.AdaptiveConfig) (*mc.AdaptiveResult, error) {
	batch, err := cfg.CompiledNoBugBits()
	if err != nil {
		return nil, err
	}
	return mc.EstimateAdaptiveBits(ctx, acfg, batch)
}
