package scenariogen

import (
	"fmt"
	"reflect"
	"testing"

	"memreliability/internal/litmus/text"
	"memreliability/internal/memmodel"
)

// TestQueryDeterministic: same seed → identical query sequence;
// different seeds diverge.
func TestQueryDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 200; i++ {
		qa, qb := a.Query(QueryParams{}), b.Query(QueryParams{})
		if !reflect.DeepEqual(qa, qb) {
			t.Fatalf("draw %d: same seed diverged:\n%+v\n%+v", i, qa, qb)
		}
	}
	c := New(43)
	same := 0
	for i := 0; i < 50; i++ {
		if reflect.DeepEqual(New(42).Query(QueryParams{}), c.Query(QueryParams{})) {
			same++
		}
	}
	if same == 50 {
		t.Error("different seeds produced identical sequences")
	}
}

// TestQueryAlwaysValid: every generated query passes the estimator's
// canonical validation, across defaults and tight custom bounds.
func TestQueryAlwaysValid(t *testing.T) {
	params := []QueryParams{
		{},
		{MaxThreads: 2, MaxPrefix: 1, MaxTrials: 64},
		{Models: []string{"RMO", "LRO"}, MaxPrefix: 3},
	}
	for pi, p := range params {
		g := New(uint64(pi) + 7)
		for i := 0; i < 1000; i++ {
			q := g.Query(p)
			if err := q.Normalized().Validate(); err != nil {
				t.Fatalf("params %d draw %d: invalid query %+v: %v", pi, i, q, err)
			}
		}
	}
}

// TestQueryHitsLatticeEdges: the degenerate probability corners (0 and
// 1) must actually appear — they are the point of the lattice.
func TestQueryHitsLatticeEdges(t *testing.T) {
	g := New(11)
	seen := map[float64]bool{}
	models := map[string]bool{}
	for i := 0; i < 2000; i++ {
		q := g.Query(QueryParams{})
		seen[q.StoreProb] = true
		seen[q.SwapProb] = true
		models[q.Model] = true
	}
	if !seen[0] || !seen[1] {
		t.Errorf("edge probabilities not drawn: saw %v", seen)
	}
	// Every registered model — including the RMO/LRO variants — shows up.
	for _, m := range memmodel.Registered() {
		if !models[m.Name()] {
			t.Errorf("model %s never drawn in 2000 queries", m.Name())
		}
	}
}

// TestModelCoversLattice: random relax-matrix models are deterministic
// per seed and cover all 16 subsets of the Table 1 pairs.
func TestModelCoversLattice(t *testing.T) {
	a, b := New(3), New(3)
	rows := map[[4]bool]bool{}
	for i := 0; i < 300; i++ {
		ma, mb := a.Model(), b.Model()
		if ma.Name() != mb.Name() || ma.Table1Row() != mb.Table1Row() {
			t.Fatalf("draw %d: same seed diverged: %s vs %s", i, ma.Name(), mb.Name())
		}
		rows[ma.Table1Row()] = true
	}
	if len(rows) != 16 {
		t.Errorf("300 draws covered %d/16 relax matrices", len(rows))
	}
}

// TestLitmusTestValidAndRoundTrips: generated litmus tests are valid
// machine programs and survive the text DSL byte-identically.
func TestLitmusTestValidAndRoundTrips(t *testing.T) {
	g := New(99)
	for i := 0; i < 500; i++ {
		tc := g.LitmusTest(fmt.Sprintf("GEN%d", i), LitmusParams{})
		if err := tc.Prog.Validate(); err != nil {
			t.Fatalf("draw %d: invalid program: %v\n%+v", i, err, tc)
		}
		data, err := text.Print(tc)
		if err != nil {
			t.Fatalf("draw %d: print: %v\n%+v", i, err, tc)
		}
		parsed, err := text.Parse("gen.litmus", data)
		if err != nil {
			t.Fatalf("draw %d: parse: %v\n%s", i, err, data)
		}
		if len(parsed) != 1 || !reflect.DeepEqual(parsed[0], tc) {
			t.Fatalf("draw %d: round-trip mismatch:\ngot  %#v\nwant %#v\n%s", i, parsed[0], tc, data)
		}
	}
}

func TestLitmusTestDeterministic(t *testing.T) {
	a, b := New(5), New(5)
	for i := 0; i < 100; i++ {
		ta := a.LitmusTest("X", LitmusParams{})
		tb := b.LitmusTest("X", LitmusParams{})
		if !reflect.DeepEqual(ta, tb) {
			t.Fatalf("draw %d: same seed diverged", i)
		}
	}
}
