// Package scenariogen generates seed-deterministic random scenarios for
// differential testing and fuzzing: estimator queries over the full
// model registry, random relax-matrix memory models, and random litmus
// tests for the text-DSL round-trip property.
//
// Determinism is the contract: a Gen constructed from a seed emits
// exactly the same sequence of scenarios on every run and platform
// (it draws only from the repository's rng package), so any divergence
// found by the differential harness is reproducible from (seed, index)
// alone. Probabilities are drawn from an edge-heavy lattice that always
// includes 0 and 1, because the degenerate corners (never swap, always
// swap, all-stores, all-loads) are where estimation routes historically
// disagree.
package scenariogen

import (
	"fmt"
	"sort"

	"memreliability/internal/estimator"
	"memreliability/internal/litmus"
	"memreliability/internal/machine"
	"memreliability/internal/memmodel"
	"memreliability/internal/rng"
)

// ProbLattice is the probability lattice queries draw p and s from.
// It deliberately includes both endpoints.
var ProbLattice = []float64{0, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 1}

// Gen is a deterministic scenario generator. It is not safe for
// concurrent use; derive independent generators from distinct seeds.
type Gen struct {
	src *rng.Source
}

// New returns a generator whose whole output sequence is determined by
// seed.
func New(seed uint64) *Gen {
	return &Gen{src: rng.New(seed)}
}

// Prob draws one probability from ProbLattice.
func (g *Gen) Prob() float64 {
	return ProbLattice[g.src.Intn(len(ProbLattice))]
}

// QueryParams bounds Query's draws. The zero value selects the
// defaults: every registered model, the mc/mc-compiled/hybrid/exact
// kinds, n ≤ 4, m ≤ 10, trials ≤ 4096.
type QueryParams struct {
	// Kinds to draw from. Default: exact, mc, mc-compiled, hybrid.
	Kinds []estimator.Kind
	// Models (names) to draw from. Default: every registered model.
	Models []string
	// MaxThreads bounds n (≥ 2). Default 4.
	MaxThreads int
	// MaxPrefix bounds m (≥ 1). Default 10.
	MaxPrefix int
	// MaxTrials bounds the Monte Carlo budget. Default 4096.
	MaxTrials int
}

func (p QueryParams) withDefaults() QueryParams {
	if len(p.Kinds) == 0 {
		p.Kinds = []estimator.Kind{estimator.Exact, estimator.FullMC, estimator.CompiledMC, estimator.Hybrid}
	}
	if len(p.Models) == 0 {
		for _, m := range memmodel.Registered() {
			p.Models = append(p.Models, m.Name())
		}
	}
	if p.MaxThreads < 2 {
		p.MaxThreads = 4
	}
	if p.MaxPrefix < 1 {
		p.MaxPrefix = 10
	}
	if p.MaxTrials < 1 {
		p.MaxTrials = 4096
	}
	return p
}

// Query draws one valid estimator query within the given bounds. Every
// query it returns passes estimator validation:
// Query(p).Normalized().Validate() == nil for all seeds.
func (g *Gen) Query(p QueryParams) estimator.Query {
	p = p.withDefaults()
	q := estimator.Query{
		Kind:      p.Kinds[g.src.Intn(len(p.Kinds))],
		Model:     p.Models[g.src.Intn(len(p.Models))],
		Threads:   2 + g.src.Intn(p.MaxThreads-1),
		PrefixLen: 1 + g.src.Intn(p.MaxPrefix),
		StoreProb: g.Prob(),
		SwapProb:  g.Prob(),
		Seed:      g.src.Uint64(),
	}
	if q.Kind.NeedsTrials() {
		// Whole chunks plus a ragged tail exercise both kernel paths.
		q.Trials = 64*(1+g.src.Intn(p.MaxTrials/64)) + g.src.Intn(64)
		if q.Trials > p.MaxTrials {
			q.Trials = p.MaxTrials
		}
	}
	// Mostly the default confidence; occasionally an explicit level.
	if g.src.Intn(4) == 0 {
		q.Confidence = []float64{0.9, 0.95, 0.99}[g.src.Intn(3)]
	}
	q.MaxGamma = g.src.Intn(q.PrefixLen + 1)
	return q
}

// Model draws a random relax-matrix memory model: a uniform subset of
// the four Table 1 reordering pairs. The model is NOT registered — it
// exists for core-level differential checks that must cover the whole
// 16-point model lattice, not only the named points. The name encodes
// the matrix (e.g. "gen-1011") so failures identify the model exactly.
func (g *Gen) Model() memmodel.Model {
	types := []memmodel.OpType{memmodel.Store, memmodel.Load}
	var relaxed []memmodel.Pair
	mask := 0
	bit := 1
	for _, prev := range types {
		for _, moving := range types {
			if g.src.Bool(0.5) {
				relaxed = append(relaxed, memmodel.Pair{Prev: prev, Moving: moving})
				mask |= bit
			}
			bit <<= 1
		}
	}
	m, err := memmodel.New(fmt.Sprintf("gen-%04b", mask), relaxed)
	if err != nil {
		// Unreachable: the name is non-empty and the pairs are valid.
		panic(err)
	}
	return m
}

// LitmusParams bounds LitmusTest's draws. The zero value selects the
// defaults: ≤ 3 threads, ≤ 4 ops per thread.
type LitmusParams struct {
	MaxThreads int // default 3
	MaxOps     int // default 4
}

func (p LitmusParams) withDefaults() LitmusParams {
	if p.MaxThreads < 1 {
		p.MaxThreads = 3
	}
	if p.MaxOps < 1 {
		p.MaxOps = 4
	}
	return p
}

var (
	genLocs = []string{"x", "y", "z"}
	genRegs = []string{"r0", "r1", "r2", "r3"}
)

// LitmusTest draws one well-formed random litmus test: a valid machine
// program (Program.Validate passes), a satisfiable-shaped exists clause
// over locations and written registers, and expectations for a random
// subset of registered models. The AllowedUnder verdicts are random —
// the output feeds parser/printer round-trip properties, not Check.
func (g *Gen) LitmusTest(name string, p LitmusParams) litmus.Test {
	p = p.withDefaults()
	t := litmus.Test{Name: name}
	if g.src.Bool(0.5) {
		t.Description = fmt.Sprintf("generated scenario %s", name)
	}
	if g.src.Bool(0.75) {
		init := map[string]int{}
		for _, loc := range genLocs {
			if g.src.Bool(0.5) {
				init[loc] = g.src.Intn(5) - 1
			}
		}
		if len(init) > 0 {
			t.Prog.Init = init
		}
	}
	nThreads := 1 + g.src.Intn(p.MaxThreads)
	written := map[string]bool{} // "t<i>:<reg>" refs with a defined value
	for ti := 0; ti < nThreads; ti++ {
		th := machine.Thread{}
		if g.src.Bool(0.25) {
			th.Name = fmt.Sprintf("t%d", ti)
		}
		nOps := 1 + g.src.Intn(p.MaxOps)
		var local []string // registers written so far in this thread
		for oi := 0; oi < nOps; oi++ {
			op := g.op(local)
			if w := writtenReg(op); w != "" {
				local = append(local, w)
				written[fmt.Sprintf("t%d:%s", ti, w)] = true
			}
			th.Ops = append(th.Ops, op)
		}
		t.Prog.Threads = append(t.Prog.Threads, th)
	}
	t.Target = g.condition(written)
	if expect := g.expectations(); len(expect) > 0 {
		t.AllowedUnder = expect
	}
	return t
}

// op draws one instruction. Register operands are drawn only from regs
// already written in the thread (so the program never reads an
// undefined register); with no written registers, operands fall back to
// immediates.
func (g *Gen) op(local []string) machine.Op {
	loc := genLocs[g.src.Intn(len(genLocs))]
	dst := genRegs[g.src.Intn(len(genRegs))]
	operand := func() machine.Operand {
		if len(local) > 0 && g.src.Bool(0.5) {
			return machine.Reg(local[g.src.Intn(len(local))])
		}
		return machine.Imm(g.src.Intn(5) - 1)
	}
	switch g.src.Intn(6) {
	case 0:
		return machine.LoadOp{Addr: loc, Dst: dst}
	case 1:
		return machine.StoreOp{Addr: loc, Src: operand()}
	case 2:
		return machine.AddOp{Dst: dst, A: operand(), B: operand()}
	case 3:
		kinds := []memmodel.OpType{memmodel.FenceFull, memmodel.FenceAcquire, memmodel.FenceRelease}
		return machine.FenceOp{Kind: kinds[g.src.Intn(len(kinds))]}
	case 4:
		return machine.RMWAddOp{Addr: loc, Dst: dst, Delta: g.src.Intn(5) - 2}
	default:
		return machine.StoreOp{Addr: loc, Src: machine.Imm(1 + g.src.Intn(3))}
	}
}

func writtenReg(op machine.Op) string {
	switch o := op.(type) {
	case machine.LoadOp:
		return o.Dst
	case machine.AddOp:
		return o.Dst
	case machine.RMWAddOp:
		return o.Dst
	}
	return ""
}

// condition draws a non-empty exists clause over memory locations and
// written registers.
func (g *Gen) condition(written map[string]bool) litmus.Condition {
	refs := append([]string{}, genLocs...)
	for ref := range written {
		refs = append(refs, ref)
	}
	// Map iteration order is random; the draw order must not be.
	sort.Strings(refs[len(genLocs):])
	cond := litmus.Condition{}
	for len(cond) == 0 {
		for _, ref := range refs {
			if g.src.Bool(0.35) {
				cond[ref] = g.src.Intn(5) - 1
			}
		}
	}
	return cond
}

// expectations draws verdicts for a random subset of registered models.
// Verdicts are random booleans: grammar coverage, not ground truth.
func (g *Gen) expectations() map[string]bool {
	out := map[string]bool{}
	for _, m := range memmodel.Registered() {
		if g.src.Bool(0.5) {
			out[m.Name()] = g.src.Bool(0.5)
		}
	}
	return out
}
