package shift

import (
	"context"
	"errors"
	"math"
	"testing"
	"testing/quick"

	"memreliability/internal/mc"
	"memreliability/internal/rng"
)

func TestValidation(t *testing.T) {
	src := rng.New(1)
	if _, err := Sample([]int{2}, src); !errors.Is(err, ErrBadInput) {
		t.Error("single segment accepted")
	}
	if _, err := Sample([]int{2, -1}, src); !errors.Is(err, ErrBadInput) {
		t.Error("negative length accepted")
	}
	if _, err := Sample([]int{2, 2}, nil); !errors.Is(err, ErrBadInput) {
		t.Error("nil source accepted")
	}
	if _, err := ExactTheorem51([]int{2, 2, 2, 2, 2, 2, 2, 2, 2, 2}); !errors.Is(err, ErrBadInput) {
		t.Error("n=10 exact accepted")
	}
	if _, _, err := ExactBruteForce([]int{2, 2}, -1); !errors.Is(err, ErrBadInput) {
		t.Error("negative bound accepted")
	}
	if _, _, err := ExactBruteForce([]int{1, 1, 1, 1, 1, 1, 1, 1}, 100); !errors.Is(err, ErrBadInput) {
		t.Error("explosive brute force accepted")
	}
	if _, err := CorollaryC(1); !errors.Is(err, ErrBadInput) {
		t.Error("c(1) accepted")
	}
	if _, err := Theorem61(1, 0.5); !errors.Is(err, ErrBadInput) {
		t.Error("Theorem61 n=1 accepted")
	}
	if _, err := Theorem61(3, 1.5); !errors.Is(err, ErrBadInput) {
		t.Error("Theorem61 expectation 1.5 accepted")
	}
}

func TestDisjointLogic(t *testing.T) {
	cases := []struct {
		shifts, lengths []int
		want            bool
	}{
		{[]int{0, 5}, []int{2, 2}, true},  // [0,2] and [5,7]
		{[]int{0, 2}, []int{2, 2}, false}, // share point 2
		{[]int{0, 3}, []int{2, 2}, true},  // [0,2] and [3,5]
		{[]int{4, 0}, []int{1, 2}, true},  // order independent
		{[]int{0, 0}, []int{0, 0}, false}, // identical points
		{[]int{0, 1}, []int{0, 0}, true},  // distinct points
		{[]int{0, 10, 4}, []int{2, 2, 2}, true},
		{[]int{0, 10, 2}, []int{2, 2, 2}, false}, // third touches first
	}
	for _, tc := range cases {
		p := Placement{Shifts: tc.shifts, Lengths: tc.lengths}
		if got := p.Disjoint(); got != tc.want {
			t.Errorf("Disjoint(shifts=%v, lengths=%v) = %v, want %v",
				tc.shifts, tc.lengths, got, tc.want)
		}
	}
}

func TestDisjointOrderInvariance(t *testing.T) {
	src := rng.New(2)
	f := func(seed uint32) bool {
		n := src.Intn(4) + 2
		shifts := make([]int, n)
		lengths := make([]int, n)
		for i := range shifts {
			shifts[i] = src.Intn(8)
			lengths[i] = src.Intn(5)
		}
		p := Placement{Shifts: shifts, Lengths: lengths}
		want := p.Disjoint()
		// Apply a random relabeling; disjointness must be invariant.
		perm := src.Perm(n)
		ps, pl := make([]int, n), make([]int, n)
		for i, j := range perm {
			ps[i], pl[i] = shifts[j], lengths[j]
		}
		q := Placement{Shifts: ps, Lengths: pl}
		return q.Disjoint() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestExactTheorem51TwoSegments(t *testing.T) {
	// Hand-computable case γ=(2,2): Pr[A] = 1/6 (the SC value of
	// Theorem 6.2).
	got, err := ExactTheorem51([]int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1.0/6.0) > 1e-12 {
		t.Errorf("Pr[A(2,2)] = %v, want 1/6", got)
	}
}

func TestExactTheorem51AgainstBruteForce(t *testing.T) {
	cases := [][]int{
		{0, 0}, {1, 0}, {2, 2}, {3, 1}, {5, 2},
		{2, 2, 2}, {3, 2, 5}, {0, 0, 0}, {1, 2, 3},
		{2, 2, 2, 2}, {1, 0, 2, 3},
	}
	for _, lengths := range cases {
		exact, err := ExactTheorem51(lengths)
		if err != nil {
			t.Fatal(err)
		}
		brute, tail, err := ExactBruteForce(lengths, 40)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(exact-brute) > tail+1e-9 {
			t.Errorf("γ̄=%v: theorem %v vs brute force %v (tail %v)",
				lengths, exact, brute, tail)
		}
	}
}

func TestExactTheorem51AgainstMonteCarlo(t *testing.T) {
	for _, lengths := range [][]int{{2, 2}, {3, 2, 5}, {2, 4, 2, 3}} {
		lengths := lengths
		exact, err := ExactTheorem51(lengths)
		if err != nil {
			t.Fatal(err)
		}
		res, err := mc.EstimateProbability(context.Background(),
			mc.Config{Trials: 400000, Seed: 42},
			func(src *rng.Source) (bool, error) {
				return DisjointTrial(lengths, src)
			})
		if err != nil {
			t.Fatal(err)
		}
		ok, err := res.Proportion.Contains(exact, 0.999)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			lo, hi, _ := res.WilsonCI(0.999)
			t.Errorf("γ̄=%v: exact %v outside MC CI [%v, %v]", lengths, exact, lo, hi)
		}
	}
}

func TestCorollaryC(t *testing.T) {
	// c(2) = 8/3 exactly; c(n) ∈ [2, 4] for all n.
	c2, err := CorollaryC(2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c2-8.0/3.0) > 1e-12 {
		t.Errorf("c(2) = %v, want 8/3", c2)
	}
	for n := 2; n <= 20; n++ {
		c, err := CorollaryC(n)
		if err != nil {
			t.Fatal(err)
		}
		if c < 2 || c > 4 {
			t.Errorf("c(%d) = %v outside [2,4]", n, c)
		}
	}
}

func TestCorollaryCConsistentWithTheorem51(t *testing.T) {
	// The corollary's restatement Pr[A] = c(n)·2^-C(n+1,2)·Σ_σ(...) must
	// equal the theorem's full form.
	lengths := []int{3, 1, 4}
	n := len(lengths)
	exact, err := ExactTheorem51(lengths)
	if err != nil {
		t.Fatal(err)
	}
	c, err := CorollaryC(n)
	if err != nil {
		t.Fatal(err)
	}
	// Recompute the permutation sum.
	sum := 0.0
	perms := [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	for _, perm := range perms {
		term := 1.0
		for i := 1; i <= n-1; i++ {
			term *= math.Pow(2, -float64((n-i)*lengths[perm[i-1]]))
		}
		sum += term
	}
	viaCorollary := c * math.Pow(2, -float64(n*(n+1))/2) * sum
	if math.Abs(viaCorollary-exact) > 1e-12 {
		t.Errorf("corollary form %v != theorem form %v", viaCorollary, exact)
	}
}

func TestTheorem61SCTwoThreads(t *testing.T) {
	// Under SC every segment length is exactly 2, so
	// E[Π 2^-iΓᵢ] = 2^-n(n-1) and Theorem 6.1 must reproduce 1/6 at n=2.
	got, err := Theorem61(2, math.Pow(2, -2))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1.0/6.0) > 1e-12 {
		t.Errorf("Theorem61(2, 1/4) = %v, want 1/6", got)
	}
}

func TestTheorem61MatchesExactForConstantLengths(t *testing.T) {
	// With deterministic identical lengths the Theorem 6.1 expectation
	// factorizes, so it must agree with Theorem 5.1 evaluated directly.
	for _, tc := range []struct {
		n, gamma int
	}{{2, 2}, {3, 2}, {4, 2}, {3, 4}, {5, 3}} {
		lengths := make([]int, tc.n)
		for i := range lengths {
			lengths[i] = tc.gamma
		}
		direct, err := ExactTheorem51(lengths)
		if err != nil {
			t.Fatal(err)
		}
		expectation := math.Pow(2, -float64(tc.gamma)*float64(tc.n)*float64(tc.n-1)/2)
		via61, err := Theorem61(tc.n, expectation)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(direct-via61) > 1e-12*math.Max(1, direct) {
			t.Errorf("n=%d γ=%d: direct %v vs Theorem61 %v", tc.n, tc.gamma, direct, via61)
		}
	}
}

func TestSampleShiftsAreGeometric(t *testing.T) {
	src := rng.New(3)
	counts := make([]int, 12)
	const trials = 200000
	for i := 0; i < trials; i++ {
		p, err := Sample([]int{2, 2}, src)
		if err != nil {
			t.Fatal(err)
		}
		if p.Shifts[0] < len(counts) {
			counts[p.Shifts[0]]++
		}
	}
	for k := 0; k < 6; k++ {
		want := math.Pow(2, -float64(k+1))
		got := float64(counts[k]) / trials
		if math.Abs(got-want) > 0.005 {
			t.Errorf("shift freq(%d) = %v, want %v", k, got, want)
		}
	}
}

func TestSampleCopiesLengths(t *testing.T) {
	src := rng.New(4)
	lengths := []int{2, 3}
	p, err := Sample(lengths, src)
	if err != nil {
		t.Fatal(err)
	}
	lengths[0] = 99
	if p.Lengths[0] != 2 {
		t.Error("Placement aliases caller lengths")
	}
}

func TestNormalizationMonotoneDecreasing(t *testing.T) {
	// Pr[A(γ̄)] must not increase when any segment grows.
	base, err := ExactTheorem51([]int{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	grown, err := ExactTheorem51([]int{2, 5, 2})
	if err != nil {
		t.Fatal(err)
	}
	if grown > base {
		t.Errorf("growing a segment increased Pr[A]: %v > %v", grown, base)
	}
}

func BenchmarkExactTheorem51N6(b *testing.B) {
	lengths := []int{2, 3, 2, 4, 2, 3}
	for i := 0; i < b.N; i++ {
		if _, err := ExactTheorem51(lengths); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDisjointTrialN4(b *testing.B) {
	src := rng.New(1)
	lengths := []int{2, 3, 2, 4}
	for i := 0; i < b.N; i++ {
		if _, err := DisjointTrial(lengths, src); err != nil {
			b.Fatal(err)
		}
	}
}
