// Package shift implements the paper's shift process (Definition 1, §5,
// Appendix A.3): n integer line segments of lengths γ̄ = (γ1, ..., γn),
// each translated up from the origin by an i.i.d. geometric shift with
// Pr[s = k] = 2^-(k+1). The event of interest, A(γ̄), is that the shifted
// closed segments [sᵢ, sᵢ+γᵢ] are mutually disjoint.
//
// Three independent evaluations of Pr[A(γ̄)] are provided:
//
//   - Sample / DisjointTrial: direct simulation;
//   - ExactTheorem51: the closed form of Theorem 5.1 (a sum over the
//     symmetric group);
//   - ExactBruteForce: truncated summation over shift vectors with a
//     rigorous tail bound, used to validate the theorem's formula.
package shift

import (
	"errors"
	"fmt"
	"math"

	"memreliability/internal/combin"
	"memreliability/internal/dist"
	"memreliability/internal/rng"
)

// ErrBadInput reports invalid shift-process inputs.
var ErrBadInput = errors.New("shift: bad input")

// MaxExactN bounds the segment count for the exact Theorem 5.1 evaluation
// (the sum has n! terms).
const MaxExactN = 9

// validateLengths checks a segment-length vector.
func validateLengths(lengths []int) error {
	if len(lengths) < 2 {
		return fmt.Errorf("%w: need at least 2 segments, got %d", ErrBadInput, len(lengths))
	}
	for i, g := range lengths {
		if g < 0 {
			return fmt.Errorf("%w: segment %d has negative length %d", ErrBadInput, i, g)
		}
	}
	return nil
}

// Placement is one sampled outcome of the shift process.
type Placement struct {
	// Shifts[i] is the sampled translation of segment i.
	Shifts []int
	// Lengths[i] is the segment's length γᵢ (copied from the input).
	Lengths []int
}

// Disjoint reports whether all shifted closed segments are mutually
// disjoint — the event A(γ̄).
func (p *Placement) Disjoint() bool {
	n := len(p.Shifts)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if overlap(p.Shifts[i], p.Shifts[i]+p.Lengths[i], p.Shifts[j], p.Shifts[j]+p.Lengths[j]) {
				return false
			}
		}
	}
	return true
}

// overlap reports whether closed integer intervals [a1,a2] and [b1,b2]
// intersect.
func overlap(a1, a2, b1, b2 int) bool {
	return a1 <= b2 && b1 <= a2
}

// Sample draws one shift-process outcome for the given segment lengths.
func Sample(lengths []int, src *rng.Source) (*Placement, error) {
	if err := validateLengths(lengths); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, fmt.Errorf("%w: nil rng source", ErrBadInput)
	}
	g := dist.StandardShift()
	p := &Placement{
		Shifts:  make([]int, len(lengths)),
		Lengths: make([]int, len(lengths)),
	}
	copy(p.Lengths, lengths)
	for i := range lengths {
		p.Shifts[i] = g.Sample(src)
	}
	return p, nil
}

// DisjointTrial samples one outcome and reports whether A(γ̄) held.
func DisjointTrial(lengths []int, src *rng.Source) (bool, error) {
	p, err := Sample(lengths, src)
	if err != nil {
		return false, err
	}
	return p.Disjoint(), nil
}

// ExactTheorem51 evaluates the closed form of Theorem 5.1:
//
//	Pr[A(γ̄)] = 2^-(C(n+1,2)-1) / Π_{i=1}^{n-1}(1 − 2^-(n+1-i))
//	           · Σ_{σ∈Sym_n} Π_{i=1}^{n-1} 2^-(n-i)·γ_σ(i).
func ExactTheorem51(lengths []int) (float64, error) {
	if err := validateLengths(lengths); err != nil {
		return 0, err
	}
	n := len(lengths)
	if n > MaxExactN {
		return 0, fmt.Errorf("%w: n=%d exceeds exact limit %d", ErrBadInput, n, MaxExactN)
	}
	prefactor := normalizationConstant(n)
	sum := 0.0
	err := combin.Permutations(n, func(perm []int) bool {
		term := 1.0
		for i := 1; i <= n-1; i++ {
			// σ(i) is the segment with the i-th largest shift; perm is
			// 0-indexed.
			term *= math.Pow(2, -float64((n-i)*lengths[perm[i-1]]))
		}
		sum += term
		return true
	})
	if err != nil {
		return 0, fmt.Errorf("shift: %w", err)
	}
	return prefactor * sum, nil
}

// normalizationConstant returns 2^-(C(n+1,2)-1) / Π_{i=1}^{n-1}(1−2^-(n+1-i)).
func normalizationConstant(n int) float64 {
	num := math.Pow(2, -(float64(n+1)*float64(n)/2 - 1))
	den := 1.0
	for i := 1; i <= n-1; i++ {
		den *= 1 - math.Pow(2, -float64(n+1-i))
	}
	return num / den
}

// CorollaryC returns c(n) from Corollary 5.2, defined by
// Pr[A(γ̄)] = c(n)·2^-C(n+1,2)·Σ_σ Π 2^-(n-i)γ_σ(i); the corollary proves
// c(n) ∈ [2, 4] with c(2) = 8/3 exactly.
func CorollaryC(n int) (float64, error) {
	if n < 2 {
		return 0, fmt.Errorf("%w: n=%d", ErrBadInput, n)
	}
	// c(n) = 2 / Π_{i=1}^{n-1}(1 − 2^-(n+1-i)).
	den := 1.0
	for i := 1; i <= n-1; i++ {
		den *= 1 - math.Pow(2, -float64(n+1-i))
	}
	return 2 / den, nil
}

// ExactBruteForce computes Pr[A(γ̄)] by summing the joint shift PMF over
// all shift vectors with every sᵢ ≤ bound, and returns the estimate
// together with a rigorous upper bound on the truncation error
// (n · Pr[s > bound] = n · 2^-(bound+1)).
//
// It is an independent check of Theorem 5.1 (it never references the
// formula), so the two agreeing to within tailBound validates the theorem
// numerically.
func ExactBruteForce(lengths []int, bound int) (estimate, tailBound float64, err error) {
	if err := validateLengths(lengths); err != nil {
		return 0, 0, err
	}
	if bound < 0 {
		return 0, 0, fmt.Errorf("%w: bound=%d", ErrBadInput, bound)
	}
	n := len(lengths)
	if cost := math.Pow(float64(bound+1), float64(n)); cost > 5e8 {
		return 0, 0, fmt.Errorf("%w: (bound+1)^n = %.3g too large", ErrBadInput, cost)
	}
	shifts := make([]int, n)
	total := 0.0
	var recur func(i int, weight float64)
	recur = func(i int, weight float64) {
		if i == n {
			p := Placement{Shifts: shifts, Lengths: lengths}
			if p.Disjoint() {
				total += weight
			}
			return
		}
		for s := 0; s <= bound; s++ {
			shifts[i] = s
			recur(i+1, weight*math.Pow(2, -float64(s+1)))
		}
	}
	recur(0, 1)
	return total, float64(n) * math.Pow(2, -float64(bound+1)), nil
}

// Theorem61 evaluates the identically-distributed-lengths form of Theorem
// 6.1: Pr[A(Γ̄)] = c(n)·2^-C(n+1,2)·n!·E[Π_{i=1}^{n-1} 2^-i·Γᵢ], where the
// caller supplies the expectation term (exactly for independent windows, or
// estimated by Monte Carlo for dependent ones).
func Theorem61(n int, productExpectation float64) (float64, error) {
	if n < 2 {
		return 0, fmt.Errorf("%w: n=%d", ErrBadInput, n)
	}
	if productExpectation < 0 || productExpectation > 1 {
		return 0, fmt.Errorf("%w: expectation %v not in [0,1]", ErrBadInput, productExpectation)
	}
	c, err := CorollaryC(n)
	if err != nil {
		return 0, err
	}
	logTerm := -float64(n+1) * float64(n) / 2 * math.Ln2
	return c * math.Exp(logTerm) * combin.Factorial(n) * productExpectation, nil
}
