// registry.go is the model registry: the single place new memory-model
// variants are named. Every surface that accepts a model name — the
// estimator Query, sweep specs, the HTTP service, the CLIs, the litmus
// DSL's expectation clauses — resolves it through ByName, so a variant
// added with Register instantly appears everywhere with no per-surface
// code. The canonical Table 1 models and the built-in variants below
// self-register at init.
package memmodel

import (
	"fmt"
	"strings"
	"sync"
)

var registry = struct {
	sync.RWMutex
	models []Model
	byName map[string]Model // lower-cased name → model
}{byName: make(map[string]Model)}

func init() {
	for _, m := range All() {
		mustRegister(m)
	}
	mustRegister(RMO())
	mustRegister(LRO())
}

func mustRegister(m Model) {
	if err := Register(m); err != nil {
		panic(err) // unreachable: static definitions
	}
}

// Register adds a model variant to the registry, making it resolvable by
// name from every surface. Names are case-insensitive and must be unique;
// re-registering an identical definition is a no-op, while a conflicting
// one errors.
func Register(m Model) error {
	if m.name == "" {
		return fmt.Errorf("%w: register with empty name", ErrBadModel)
	}
	key := strings.ToLower(m.name)
	registry.Lock()
	defer registry.Unlock()
	if prev, ok := registry.byName[key]; ok {
		if prev.name == m.name && prev.Table1Row() == m.Table1Row() {
			return nil
		}
		return fmt.Errorf("%w: model %q already registered with a different definition",
			ErrBadModel, m.name)
	}
	registry.byName[key] = m
	registry.models = append(registry.models, m)
	return nil
}

// Registered returns every registered model in registration order: the
// canonical four in strictness order, then the built-in variants, then
// anything the caller registered. The slice is a copy.
func Registered() []Model {
	registry.RLock()
	defer registry.RUnlock()
	return append([]Model(nil), registry.models...)
}

// RMO returns the RMO-style variant: every Table 1 relaxation except
// LD/ST, so a store never settles above an earlier load. This is the
// dependency-conservative reading of Sparc RMO on the paper's matrix —
// distinct from WO, which also relaxes LD/ST.
func RMO() Model {
	m, err := New("RMO", []Pair{{Store, Store}, {Store, Load}, {Load, Load}})
	if err != nil {
		panic(err) // unreachable: static definition
	}
	return m
}

// LRO returns the load-reordering-only variant: LD/LD and LD/ST relaxed,
// stores stay ordered — the dual of PSO (which relaxes exactly the
// store-buffer pairs ST/ST and ST/LD).
func LRO() Model {
	m, err := New("LRO", []Pair{{Load, Store}, {Load, Load}})
	if err != nil {
		panic(err) // unreachable: static definition
	}
	return m
}
