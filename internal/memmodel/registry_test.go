package memmodel

import (
	"errors"
	"testing"
)

func TestRegisteredContainsCanonicalAndVariants(t *testing.T) {
	models := Registered()
	if len(models) < 6 {
		t.Fatalf("Registered() = %d models, want ≥ 6", len(models))
	}
	// Registration order: the canonical four in strictness order first.
	for i, m := range All() {
		if models[i].Name() != m.Name() {
			t.Errorf("Registered()[%d] = %s, want %s", i, models[i].Name(), m.Name())
		}
	}
	byName := map[string][4]bool{}
	for _, m := range models {
		byName[m.Name()] = m.Table1Row()
	}
	// The variants' matrices, in Table 1 column order (ST/ST, ST/LD,
	// LD/ST, LD/LD).
	if got, want := byName["RMO"], [4]bool{true, true, false, true}; got != want {
		t.Errorf("RMO row = %v, want %v", got, want)
	}
	if got, want := byName["LRO"], [4]bool{false, false, true, true}; got != want {
		t.Errorf("LRO row = %v, want %v", got, want)
	}
	// All() stays the paper's four-model comparison set.
	if len(All()) != 4 {
		t.Errorf("All() = %d models, want 4", len(All()))
	}
}

func TestByNameResolvesVariants(t *testing.T) {
	for _, name := range []string{"RMO", "rmo", "LRO", "Lro"} {
		m, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if m.Name() != "RMO" && m.Name() != "LRO" {
			t.Errorf("ByName(%q) = %s", name, m.Name())
		}
	}
	if _, err := ByName("NOPE"); !errors.Is(err, ErrUnknownModel) {
		t.Errorf("ByName(NOPE) err = %v", err)
	}
}

func TestRegisterConflicts(t *testing.T) {
	// Re-registering an identical definition is a no-op.
	if err := Register(RMO()); err != nil {
		t.Errorf("idempotent re-register: %v", err)
	}
	// A conflicting definition under an existing name errors.
	clash, err := New("RMO", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := Register(clash); !errors.Is(err, ErrBadModel) {
		t.Errorf("conflicting register err = %v", err)
	}
	// Case-insensitive collision.
	clash2, err := New("rmo", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := Register(clash2); !errors.Is(err, ErrBadModel) {
		t.Errorf("case-variant register err = %v", err)
	}
	if err := Register(Model{}); !errors.Is(err, ErrBadModel) {
		t.Errorf("zero-model register err = %v", err)
	}
}

func TestVariantStrictness(t *testing.T) {
	// Both variants sit strictly between the strongest and weakest
	// canonical models.
	for _, v := range []Model{RMO(), LRO()} {
		if !SC().StrongerThan(v) {
			t.Errorf("SC should be stronger than %s", v.Name())
		}
		if !v.StrongerThan(WO()) {
			t.Errorf("%s should be stronger than WO", v.Name())
		}
	}
	// RMO relaxes three pairs, LRO two.
	if RMO().RelaxedPairCount() != 3 {
		t.Errorf("RMO relaxes %d pairs", RMO().RelaxedPairCount())
	}
	if LRO().RelaxedPairCount() != 2 {
		t.Errorf("LRO relaxes %d pairs", LRO().RelaxedPairCount())
	}
}
