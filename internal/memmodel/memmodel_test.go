package memmodel

import (
	"errors"
	"testing"
)

func TestTable1Matrix(t *testing.T) {
	// Table 1 of the paper, verbatim: a true entry means the ordering
	// restriction is relaxed.
	want := map[string][4]bool{
		"SC":  {false, false, false, false},
		"TSO": {false, true, false, false},
		"PSO": {true, true, false, false},
		"WO":  {true, true, true, true},
	}
	for _, m := range All() {
		row := m.Table1Row()
		if row != want[m.Name()] {
			t.Errorf("%s row = %v, want %v", m.Name(), row, want[m.Name()])
		}
	}
	cols := Table1Columns()
	if cols != [4]string{"ST/ST", "ST/LD", "LD/ST", "LD/LD"} {
		t.Errorf("columns = %v", cols)
	}
}

func TestRelaxedSemantics(t *testing.T) {
	// TSO: a LD may settle past a preceding ST, nothing else.
	tso := TSO()
	if !tso.Relaxed(Store, Load) {
		t.Error("TSO must relax ST→LD")
	}
	for _, pair := range []Pair{{Store, Store}, {Load, Store}, {Load, Load}} {
		if tso.Relaxed(pair.Prev, pair.Moving) {
			t.Errorf("TSO must not relax %v→%v", pair.Prev, pair.Moving)
		}
	}
	// SC: nothing.
	sc := SC()
	for _, prev := range []OpType{Load, Store} {
		for _, moving := range []OpType{Load, Store} {
			if sc.Relaxed(prev, moving) {
				t.Errorf("SC must not relax %v→%v", prev, moving)
			}
		}
	}
	// WO: everything.
	wo := WO()
	for _, prev := range []OpType{Load, Store} {
		for _, moving := range []OpType{Load, Store} {
			if !wo.Relaxed(prev, moving) {
				t.Errorf("WO must relax %v→%v", prev, moving)
			}
		}
	}
}

func TestFenceSemantics(t *testing.T) {
	wo := WO()
	// Nothing settles past acquire or full fences, even under WO.
	if wo.Relaxed(FenceAcquire, Load) || wo.Relaxed(FenceAcquire, Store) {
		t.Error("acquire fence must block settling")
	}
	if wo.Relaxed(FenceFull, Load) || wo.Relaxed(FenceFull, Store) {
		t.Error("full fence must block settling")
	}
	// Anything settles past a release fence (into the critical section).
	if !wo.Relaxed(FenceRelease, Load) || !wo.Relaxed(FenceRelease, Store) {
		t.Error("release fence must allow settling into the section")
	}
	// Fences themselves never move.
	for _, f := range []OpType{FenceAcquire, FenceRelease, FenceFull} {
		if wo.Relaxed(Store, f) || wo.Relaxed(Load, f) {
			t.Errorf("%v must never settle", f)
		}
	}
	// Release-fence transparency holds even under SC (fences are modeled
	// orthogonally to the Table 1 matrix).
	if !SC().Relaxed(FenceRelease, Load) {
		t.Error("release fence transparency should not depend on the model matrix")
	}
}

func TestStrictnessOrder(t *testing.T) {
	models := All()
	if len(models) != 4 {
		t.Fatalf("All() returned %d models", len(models))
	}
	wantCounts := []int{0, 1, 2, 4}
	for i, m := range models {
		if got := m.RelaxedPairCount(); got != wantCounts[i] {
			t.Errorf("%s relaxed pair count = %d, want %d", m.Name(), got, wantCounts[i])
		}
	}
	// SC < TSO < PSO < WO in the reordering-subset partial order.
	for i := 0; i < len(models); i++ {
		for j := 0; j < len(models); j++ {
			got := models[i].StrongerThan(models[j])
			want := i < j
			if got != want {
				t.Errorf("%s.StrongerThan(%s) = %v, want %v",
					models[i].Name(), models[j].Name(), got, want)
			}
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"SC", "tso", "Pso", "wo"} {
		m, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
			continue
		}
		if m.Name() == "" {
			t.Errorf("ByName(%q) returned unnamed model", name)
		}
	}
	if _, err := ByName("RC"); !errors.Is(err, ErrUnknownModel) {
		t.Errorf("ByName(RC) err = %v", err)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New("", nil); !errors.Is(err, ErrBadModel) {
		t.Error("empty name accepted")
	}
	if _, err := New("x", []Pair{{FenceFull, Load}}); !errors.Is(err, ErrBadModel) {
		t.Error("fence pair accepted in matrix")
	}
	m, err := New("custom", []Pair{{Load, Load}})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Relaxed(Load, Load) || m.Relaxed(Store, Load) {
		t.Error("custom matrix wrong")
	}
}

func TestOpTypeString(t *testing.T) {
	cases := map[OpType]string{
		Load: "LD", Store: "ST", FenceAcquire: "ACQ",
		FenceRelease: "REL", FenceFull: "FENCE", OpType(99): "OpType(99)",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(op), got, want)
		}
	}
	if !Load.IsMemOp() || !Store.IsMemOp() || FenceFull.IsMemOp() {
		t.Error("IsMemOp wrong")
	}
	if !FenceAcquire.IsFence() || Load.IsFence() {
		t.Error("IsFence wrong")
	}
}

func TestUniformSwapProbabilities(t *testing.T) {
	if _, err := Uniform(-0.1); !errors.Is(err, ErrBadModel) {
		t.Error("negative s accepted")
	}
	if _, err := Uniform(1.1); !errors.Is(err, ErrBadModel) {
		t.Error("s > 1 accepted")
	}
	sp, err := Uniform(0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, prev := range []OpType{Load, Store} {
		for _, moving := range []OpType{Load, Store} {
			if sp.For(prev, moving) != 0.5 {
				t.Errorf("For(%v,%v) = %v", prev, moving, sp.For(prev, moving))
			}
		}
	}
}

func TestPerPairSwapProbabilities(t *testing.T) {
	sp, err := NewSwapProbabilities(0.5, map[Pair]float64{
		{Store, Load}: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sp.For(Store, Load) != 0.9 {
		t.Errorf("For(ST,LD) = %v", sp.For(Store, Load))
	}
	if sp.For(Load, Load) != 0.5 {
		t.Errorf("For(LD,LD) = %v", sp.For(Load, Load))
	}
	if _, err := NewSwapProbabilities(0.5, map[Pair]float64{{Store, Load}: 2}); !errors.Is(err, ErrBadModel) {
		t.Error("out-of-range per-pair probability accepted")
	}
	if _, err := NewSwapProbabilities(0.5, map[Pair]float64{{FenceFull, Load}: 0.5}); !errors.Is(err, ErrBadModel) {
		t.Error("fence pair accepted")
	}
	if _, err := NewSwapProbabilities(-1, nil); !errors.Is(err, ErrBadModel) {
		t.Error("bad default accepted")
	}
}
