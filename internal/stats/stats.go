// Package stats provides the summary statistics, confidence intervals, and
// goodness-of-fit tests used to validate the paper's analytic results
// against Monte Carlo estimates.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
)

// ErrBadInput reports statistically invalid input (empty samples, negative
// counts, malformed probability vectors).
var ErrBadInput = errors.New("stats: bad input")

// Summary accumulates count, mean, and variance online (Welford's method),
// so million-sample Monte Carlo runs need O(1) memory.
type Summary struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean (0 for an empty summary).
func (s *Summary) Mean() float64 { return s.mean }

// Variance returns the unbiased sample variance (0 for n < 2).
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation (0 for an empty summary).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 for an empty summary).
func (s *Summary) Max() float64 { return s.max }

// StdErr returns the standard error of the mean.
func (s *Summary) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// MeanCI returns a normal-approximation confidence interval for the mean at
// the given confidence level (e.g. 0.95).
func (s *Summary) MeanCI(level float64) (lo, hi float64, err error) {
	z, err := zScore(level)
	if err != nil {
		return 0, 0, err
	}
	half := z * s.StdErr()
	return s.mean - half, s.mean + half, nil
}

// MergeSummaries combines two summaries exactly, using Chan et al.'s
// parallel Welford update, so per-worker summaries can be folded into one.
func MergeSummaries(a, b Summary) Summary {
	if a.n == 0 {
		return b
	}
	if b.n == 0 {
		return a
	}
	var out Summary
	out.n = a.n + b.n
	delta := b.mean - a.mean
	out.mean = a.mean + delta*float64(b.n)/float64(out.n)
	out.m2 = a.m2 + b.m2 + delta*delta*float64(a.n)*float64(b.n)/float64(out.n)
	out.min = math.Min(a.min, b.min)
	out.max = math.Max(a.max, b.max)
	return out
}

// Proportion is a success/trial counter with Wilson confidence intervals —
// the estimator every Pr[A] and Pr[B_γ] experiment reports.
type Proportion struct {
	successes int
	trials    int
}

// Record adds one trial with the given outcome.
func (p *Proportion) Record(success bool) {
	p.trials++
	if success {
		p.successes++
	}
}

// AddCounts merges pre-aggregated counts (used when joining worker results).
// It returns ErrBadInput for negative counts or successes > trials.
func (p *Proportion) AddCounts(successes, trials int) error {
	if successes < 0 || trials < 0 || successes > trials {
		return fmt.Errorf("%w: AddCounts(%d, %d)", ErrBadInput, successes, trials)
	}
	p.successes += successes
	p.trials += trials
	return nil
}

// Successes returns the success count.
func (p *Proportion) Successes() int { return p.successes }

// Trials returns the trial count.
func (p *Proportion) Trials() int { return p.trials }

// Estimate returns the point estimate successes/trials (0 when empty).
func (p *Proportion) Estimate() float64 {
	if p.trials == 0 {
		return 0
	}
	return float64(p.successes) / float64(p.trials)
}

// WilsonCI returns the Wilson score interval at the given confidence level.
// Unlike the Wald interval it behaves sensibly for proportions near 0 or 1,
// which matters for the deep-tail Pr[B_γ] measurements.
func (p *Proportion) WilsonCI(level float64) (lo, hi float64, err error) {
	z, err := zScore(level)
	if err != nil {
		return 0, 0, err
	}
	if p.trials == 0 {
		return 0, 1, nil
	}
	n := float64(p.trials)
	phat := p.Estimate()
	z2 := z * z
	denom := 1 + z2/n
	center := (phat + z2/(2*n)) / denom
	half := z / denom * math.Sqrt(phat*(1-phat)/n+z2/(4*n*n))
	lo = center - half
	hi = center + half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi, nil
}

// Contains reports whether the Wilson interval at the given level contains
// the value v.
func (p *Proportion) Contains(v, level float64) (bool, error) {
	lo, hi, err := p.WilsonCI(level)
	if err != nil {
		return false, err
	}
	return v >= lo && v <= hi, nil
}

// zScoreMemo caches bisection results per confidence level, so
// non-tabulated levels pay the 200-iteration solve once per process
// instead of once per interval (adaptive stopping evaluates an interval
// every round). The memo is bounded: confidence levels reach services
// from client requests, and an unbounded map keyed by client-controlled
// floats would be a slow memory leak in a long-running daemon. Beyond
// the cap new levels simply recompute.
var (
	zScoreMu   sync.RWMutex
	zScoreMemo = make(map[float64]float64)
)

// zScoreMemoMax bounds the memo's entry count.
const zScoreMemoMax = 1024

// zScore returns the two-sided standard-normal quantile for a confidence
// level. Common levels are tabulated exactly; others are computed by
// bisection on the error function and memoized — the memoized value is
// bit-identical to a fresh bisection, since the solve is deterministic.
func zScore(level float64) (float64, error) {
	if !(level > 0 && level < 1) {
		return 0, fmt.Errorf("%w: confidence level %v not in (0,1)", ErrBadInput, level)
	}
	switch level {
	case 0.90:
		return 1.6448536269514722, nil
	case 0.95:
		return 1.959963984540054, nil
	case 0.99:
		return 2.5758293035489004, nil
	case 0.999:
		return 3.2905267314918945, nil
	}
	zScoreMu.RLock()
	z, ok := zScoreMemo[level]
	zScoreMu.RUnlock()
	if ok {
		return z, nil
	}
	z = zScoreBisect(level)
	zScoreMu.Lock()
	if len(zScoreMemo) < zScoreMemoMax {
		zScoreMemo[level] = z
	}
	zScoreMu.Unlock()
	return z, nil
}

// zScoreBisect solves Φ(z) = (1+level)/2 by bisection;
// Φ(z) = (1+erf(z/√2))/2. Deterministic, so memoizing its result is
// lossless.
func zScoreBisect(level float64) float64 {
	target := (1 + level) / 2
	lo, hi := 0.0, 40.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if (1+math.Erf(mid/math.Sqrt2))/2 < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// ChiSquare performs Pearson's chi-square goodness-of-fit test of observed
// counts against expected probabilities. It returns the test statistic and
// the degrees of freedom used. Bins with expected count below minExpected
// are pooled into the final bin, the standard validity adjustment.
func ChiSquare(observed []int, expected []float64, minExpected float64) (statistic float64, dof int, err error) {
	if len(observed) != len(expected) || len(observed) == 0 {
		return 0, 0, fmt.Errorf("%w: observed/expected length mismatch (%d vs %d)",
			ErrBadInput, len(observed), len(expected))
	}
	total := 0
	for _, o := range observed {
		if o < 0 {
			return 0, 0, fmt.Errorf("%w: negative observed count %d", ErrBadInput, o)
		}
		total += o
	}
	probSum := 0.0
	for _, e := range expected {
		if e < 0 || math.IsNaN(e) {
			return 0, 0, fmt.Errorf("%w: bad expected probability %v", ErrBadInput, e)
		}
		probSum += e
	}
	if total == 0 || probSum == 0 {
		return 0, 0, fmt.Errorf("%w: empty observation or probability mass", ErrBadInput)
	}

	// Pool small-expectation bins.
	type bin struct {
		obs int
		exp float64
	}
	var bins []bin
	var pooled bin
	for i := range observed {
		exp := expected[i] / probSum * float64(total)
		if exp < minExpected {
			pooled.obs += observed[i]
			pooled.exp += exp
		} else {
			bins = append(bins, bin{observed[i], exp})
		}
	}
	if pooled.exp > 0 {
		bins = append(bins, pooled)
	}
	if len(bins) < 2 {
		return 0, 0, fmt.Errorf("%w: fewer than 2 usable bins after pooling", ErrBadInput)
	}
	stat := 0.0
	for _, b := range bins {
		diff := float64(b.obs) - b.exp
		stat += diff * diff / b.exp
	}
	return stat, len(bins) - 1, nil
}

// ChiSquareCritical95 returns the 95th-percentile critical value of the
// chi-square distribution with the given degrees of freedom, via the
// Wilson-Hilferty approximation (accurate to ~1% for dof ≥ 3, tabulated for
// smaller dof).
func ChiSquareCritical95(dof int) (float64, error) {
	if dof < 1 {
		return 0, fmt.Errorf("%w: dof=%d", ErrBadInput, dof)
	}
	table := []float64{0, 3.841, 5.991, 7.815, 9.488, 11.070, 12.592, 14.067, 15.507, 16.919, 18.307}
	if dof < len(table) {
		return table[dof], nil
	}
	// Wilson-Hilferty: χ²_p ≈ dof · (1 − 2/(9·dof) + z_p·√(2/(9·dof)))³.
	const z95 = 1.6448536269514722
	d := float64(dof)
	t := 1 - 2/(9*d) + z95*math.Sqrt(2/(9*d))
	return d * t * t * t, nil
}

// Histogram counts integer-valued observations in [0, len)-indexed buckets
// with an overflow bucket.
type Histogram struct {
	counts   []int
	overflow int
	total    int
}

// NewHistogram returns a histogram with the given number of buckets.
func NewHistogram(buckets int) (*Histogram, error) {
	if buckets < 1 {
		return nil, fmt.Errorf("%w: buckets=%d", ErrBadInput, buckets)
	}
	return &Histogram{counts: make([]int, buckets)}, nil
}

// Observe records a non-negative integer observation; values beyond the
// bucket range land in the overflow bucket. Negative values are rejected.
func (h *Histogram) Observe(v int) error {
	if v < 0 {
		return fmt.Errorf("%w: negative observation %d", ErrBadInput, v)
	}
	if v < len(h.counts) {
		h.counts[v]++
	} else {
		h.overflow++
	}
	h.total++
	return nil
}

// Count returns the count in bucket v (0 if out of range).
func (h *Histogram) Count(v int) int {
	if v < 0 || v >= len(h.counts) {
		return 0
	}
	return h.counts[v]
}

// Overflow returns the overflow-bucket count.
func (h *Histogram) Overflow() int { return h.overflow }

// Total returns the total number of observations.
func (h *Histogram) Total() int { return h.total }

// Freq returns the empirical frequency of bucket v.
func (h *Histogram) Freq(v int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Count(v)) / float64(h.total)
}

// Buckets returns the number of regular buckets.
func (h *Histogram) Buckets() int { return len(h.counts) }

// Quantile returns the q-th sample quantile (0 ≤ q ≤ 1) of a data set using
// linear interpolation. The input is copied and sorted.
func Quantile(data []float64, q float64) (float64, error) {
	if len(data) == 0 {
		return 0, fmt.Errorf("%w: empty data", ErrBadInput)
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("%w: quantile %v", ErrBadInput, q)
	}
	sorted := make([]float64, len(data))
	copy(sorted, data)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	i := int(math.Floor(pos))
	frac := pos - float64(i)
	if i+1 >= len(sorted) {
		return sorted[len(sorted)-1], nil
	}
	return sorted[i]*(1-frac) + sorted[i+1]*frac, nil
}
