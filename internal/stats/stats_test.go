package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"memreliability/internal/rng"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.Mean() != 0 || s.Variance() != 0 || s.StdErr() != 0 {
		t.Fatal("zero-value Summary not empty")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", s.Mean())
	}
	// Unbiased variance of this classic data set is 32/7.
	if math.Abs(s.Variance()-32.0/7.0) > 1e-12 {
		t.Errorf("Variance = %v, want %v", s.Variance(), 32.0/7.0)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
}

func TestSummaryMatchesNaive(t *testing.T) {
	src := rng.New(77)
	f := func(n uint8) bool {
		count := int(n%50) + 2
		var s Summary
		data := make([]float64, count)
		for i := range data {
			data[i] = src.NormFloat64() * 10
			s.Add(data[i])
		}
		mean := 0.0
		for _, x := range data {
			mean += x
		}
		mean /= float64(count)
		variance := 0.0
		for _, x := range data {
			variance += (x - mean) * (x - mean)
		}
		variance /= float64(count - 1)
		return math.Abs(s.Mean()-mean) < 1e-9 && math.Abs(s.Variance()-variance) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanCI(t *testing.T) {
	var s Summary
	src := rng.New(78)
	for i := 0; i < 10000; i++ {
		s.Add(src.NormFloat64() + 3)
	}
	lo, hi, err := s.MeanCI(0.95)
	if err != nil {
		t.Fatal(err)
	}
	if lo > 3 || hi < 3 {
		t.Errorf("95%% CI [%v, %v] misses true mean 3", lo, hi)
	}
	if hi-lo > 0.1 {
		t.Errorf("CI too wide: %v", hi-lo)
	}
	if _, _, err := s.MeanCI(1.5); !errors.Is(err, ErrBadInput) {
		t.Error("level 1.5 accepted")
	}
}

func TestProportionBasics(t *testing.T) {
	var p Proportion
	if p.Estimate() != 0 {
		t.Error("empty estimate != 0")
	}
	lo, hi, err := p.WilsonCI(0.95)
	if err != nil || lo != 0 || hi != 1 {
		t.Errorf("empty Wilson CI = [%v,%v], %v", lo, hi, err)
	}
	for i := 0; i < 100; i++ {
		p.Record(i < 30)
	}
	if p.Successes() != 30 || p.Trials() != 100 {
		t.Errorf("counts %d/%d", p.Successes(), p.Trials())
	}
	if p.Estimate() != 0.3 {
		t.Errorf("Estimate = %v", p.Estimate())
	}
}

func TestAddCountsValidation(t *testing.T) {
	var p Proportion
	if err := p.AddCounts(5, 3); !errors.Is(err, ErrBadInput) {
		t.Error("successes > trials accepted")
	}
	if err := p.AddCounts(-1, 3); !errors.Is(err, ErrBadInput) {
		t.Error("negative successes accepted")
	}
	if err := p.AddCounts(3, 10); err != nil {
		t.Fatal(err)
	}
	if err := p.AddCounts(2, 10); err != nil {
		t.Fatal(err)
	}
	if p.Estimate() != 0.25 {
		t.Errorf("merged estimate %v", p.Estimate())
	}
}

func TestWilsonCoverage(t *testing.T) {
	// Across many simulated experiments with true p = 0.13 (≈ the paper's
	// n=2 probabilities), the 95% Wilson interval should cover p roughly
	// 95% of the time.
	src := rng.New(79)
	const experiments, trials = 800, 400
	covered := 0
	for e := 0; e < experiments; e++ {
		var p Proportion
		for i := 0; i < trials; i++ {
			p.Record(src.Bool(0.13))
		}
		ok, err := p.Contains(0.13, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			covered++
		}
	}
	rate := float64(covered) / experiments
	if rate < 0.91 || rate > 0.99 {
		t.Errorf("Wilson coverage = %v, want ≈0.95", rate)
	}
}

func TestWilsonCIBounds(t *testing.T) {
	var p Proportion
	for i := 0; i < 50; i++ {
		p.Record(true)
	}
	lo, hi, err := p.WilsonCI(0.95)
	if err != nil {
		t.Fatal(err)
	}
	if lo < 0 || hi > 1 || lo >= hi {
		t.Errorf("degenerate CI [%v, %v]", lo, hi)
	}
	if hi != 1 {
		t.Errorf("all-success upper bound %v, want 1", hi)
	}
}

func TestZScoreBisectionMatchesTable(t *testing.T) {
	// Non-tabulated level should agree with the erf identity.
	z, err := zScore(0.9544997361036416) // 2 sigma
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(z-2) > 1e-6 {
		t.Errorf("zScore(2σ level) = %v, want 2", z)
	}
}

// TestZScoreMemoBitIdentical pins the memoization contract: the value
// zScore returns for a non-tabulated level — first call (fresh
// bisection) and every call after (memo hit) — is bit-identical to a
// direct bisection. Adaptive stopping calls zScore once per round, so a
// drifting memo would silently change stopping decisions.
func TestZScoreMemoBitIdentical(t *testing.T) {
	for _, level := range []float64{0.97, 0.8, 0.9973002039367398} {
		fresh := zScoreBisect(level)
		first, err := zScore(level)
		if err != nil {
			t.Fatal(err)
		}
		memo, err := zScore(level)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(first) != math.Float64bits(fresh) ||
			math.Float64bits(memo) != math.Float64bits(fresh) {
			t.Errorf("level %v: fresh %x, first %x, memoized %x — not bit-identical",
				level, math.Float64bits(fresh), math.Float64bits(first), math.Float64bits(memo))
		}
	}
	// Tabulated levels bypass both the memo and the bisection.
	z, err := zScore(0.99)
	if err != nil {
		t.Fatal(err)
	}
	if z != 2.5758293035489004 {
		t.Errorf("tabulated zScore(0.99) = %v", z)
	}
}

func TestChiSquareUniformFit(t *testing.T) {
	src := rng.New(81)
	const n, buckets = 60000, 6
	observed := make([]int, buckets)
	expected := make([]float64, buckets)
	for i := range expected {
		expected[i] = 1.0 / buckets
	}
	for i := 0; i < n; i++ {
		observed[src.Intn(buckets)]++
	}
	stat, dof, err := ChiSquare(observed, expected, 5)
	if err != nil {
		t.Fatal(err)
	}
	crit, err := ChiSquareCritical95(dof)
	if err != nil {
		t.Fatal(err)
	}
	if stat > crit {
		t.Errorf("uniform data rejected: stat %v > crit %v (dof %d)", stat, crit, dof)
	}
}

func TestChiSquareDetectsBias(t *testing.T) {
	observed := []int{900, 100}
	expected := []float64{0.5, 0.5}
	stat, dof, err := ChiSquare(observed, expected, 5)
	if err != nil {
		t.Fatal(err)
	}
	crit, err := ChiSquareCritical95(dof)
	if err != nil {
		t.Fatal(err)
	}
	if stat <= crit {
		t.Errorf("biased data accepted: stat %v <= crit %v", stat, crit)
	}
}

func TestChiSquarePooling(t *testing.T) {
	// Last bins have tiny expectation; they must pool rather than blow up.
	observed := []int{500, 480, 15, 3, 2}
	expected := []float64{0.5, 0.48, 0.012, 0.005, 0.003}
	// minExpected=10 pools the last two bins (expected 5 and 3) into one.
	_, dof, err := ChiSquare(observed, expected, 10)
	if err != nil {
		t.Fatal(err)
	}
	if dof >= 4 {
		t.Errorf("dof = %d, expected pooling to reduce it", dof)
	}
}

func TestChiSquareValidation(t *testing.T) {
	if _, _, err := ChiSquare([]int{1}, []float64{0.5, 0.5}, 5); !errors.Is(err, ErrBadInput) {
		t.Error("length mismatch accepted")
	}
	if _, _, err := ChiSquare([]int{-1, 2}, []float64{0.5, 0.5}, 5); !errors.Is(err, ErrBadInput) {
		t.Error("negative count accepted")
	}
	if _, _, err := ChiSquare([]int{0, 0}, []float64{0.5, 0.5}, 5); !errors.Is(err, ErrBadInput) {
		t.Error("empty observations accepted")
	}
}

func TestChiSquareCritical95(t *testing.T) {
	if _, err := ChiSquareCritical95(0); !errors.Is(err, ErrBadInput) {
		t.Error("dof 0 accepted")
	}
	v, err := ChiSquareCritical95(1)
	if err != nil || math.Abs(v-3.841) > 0.001 {
		t.Errorf("crit(1) = %v, %v", v, err)
	}
	// Wilson-Hilferty for dof 30: true value 43.773.
	v, err = ChiSquareCritical95(30)
	if err != nil || math.Abs(v-43.773) > 0.5 {
		t.Errorf("crit(30) = %v, %v", v, err)
	}
}

func TestHistogram(t *testing.T) {
	if _, err := NewHistogram(0); !errors.Is(err, ErrBadInput) {
		t.Error("0 buckets accepted")
	}
	h, err := NewHistogram(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []int{0, 1, 1, 3, 9, 12} {
		if err := h.Observe(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Observe(-1); !errors.Is(err, ErrBadInput) {
		t.Error("negative observation accepted")
	}
	if h.Count(1) != 2 || h.Count(0) != 1 || h.Count(2) != 0 {
		t.Error("bucket counts wrong")
	}
	if h.Overflow() != 2 || h.Total() != 6 {
		t.Errorf("overflow %d total %d", h.Overflow(), h.Total())
	}
	if math.Abs(h.Freq(1)-2.0/6.0) > 1e-12 {
		t.Errorf("Freq(1) = %v", h.Freq(1))
	}
	if h.Buckets() != 4 {
		t.Errorf("Buckets = %d", h.Buckets())
	}
}

func TestQuantile(t *testing.T) {
	data := []float64{3, 1, 2}
	q, err := Quantile(data, 0.5)
	if err != nil || q != 2 {
		t.Errorf("median = %v, %v", q, err)
	}
	// Input must not be mutated.
	if data[0] != 3 {
		t.Error("Quantile sorted caller data")
	}
	if q, err := Quantile([]float64{5}, 0.99); err != nil || q != 5 {
		t.Errorf("single-element quantile = %v, %v", q, err)
	}
	if _, err := Quantile(nil, 0.5); !errors.Is(err, ErrBadInput) {
		t.Error("empty data accepted")
	}
	if _, err := Quantile(data, 1.5); !errors.Is(err, ErrBadInput) {
		t.Error("q=1.5 accepted")
	}
	q, err = Quantile([]float64{0, 10}, 0.25)
	if err != nil || math.Abs(q-2.5) > 1e-12 {
		t.Errorf("interpolated quantile = %v, %v", q, err)
	}
}
