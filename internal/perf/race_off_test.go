//go:build !race

package perf

// raceEnabled reports whether the race detector instruments this build;
// allocation-count assertions skip under it.
const raceEnabled = false
