// Package perf is the canonical performance record of the estimation
// stack: a fixed, versioned suite of benchmark scenarios (Suite), a
// schema-versioned JSON artifact capturing one machine's measurements
// (Record, conventionally written as BENCH_<rev>.json), and a
// tolerance-based comparator (Compare) that turns two records into a
// pass/fail regression report.
//
// The subsystem exists so performance is a first-class, machine-checked
// artifact instead of folklore: cmd/membench runs the suite and emits
// the JSON, the committed BENCH_baseline.json is the trajectory's
// anchor, and CI's bench-regression job (mirrored by `make
// bench-compare`) fails a change that slows a scenario beyond the
// configured tolerance or adds allocations to a zero-alloc scenario.
package perf

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
)

// SchemaVersion identifies the Record JSON schema. Compare refuses to
// diff records of different schema versions: a schema change requires a
// deliberate baseline refresh.
const SchemaVersion = 1

// ErrBadRecord reports an unreadable or schema-incompatible record.
var ErrBadRecord = errors.New("perf: bad record")

// ScenarioResult is one measured suite entry.
type ScenarioResult struct {
	// ID is the stable scenario identifier (see Suite). Comparisons key
	// on it, so renaming a scenario is a baseline-breaking change.
	ID string `json:"id"`
	// NsPerOp is wall-clock nanoseconds per benchmark operation.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp and BytesPerOp are the heap cost per operation.
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// TrialsPerSec is the Monte Carlo throughput (0 for deterministic
	// scenarios), derived from NsPerOp and the scenario's trial count.
	TrialsPerSec float64 `json:"trials_per_sec,omitempty"`
	// Ops is the number of operations the measurement averaged over.
	Ops int `json:"ops"`
	// ZeroAlloc marks scenarios whose allocs/op must never grow: the
	// regression gate fails on ANY increase, regardless of tolerances.
	ZeroAlloc bool `json:"zero_alloc,omitempty"`
}

// Record is one machine's measurement of the whole suite — the
// BENCH_<rev>.json artifact.
type Record struct {
	SchemaVersion int              `json:"schema_version"`
	Revision      string           `json:"revision,omitempty"`
	GoVersion     string           `json:"go_version"`
	GOOS          string           `json:"goos"`
	GOARCH        string           `json:"goarch"`
	GOMAXPROCS    int              `json:"gomaxprocs"`
	Scenarios     []ScenarioResult `json:"scenarios"`
}

// NewRecord returns a Record stamped with the current schema version and
// runtime environment, ready to receive scenario results.
func NewRecord(revision string) *Record {
	return &Record{
		SchemaVersion: SchemaVersion,
		Revision:      revision,
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
	}
}

// Scenario returns the named scenario result.
func (r *Record) Scenario(id string) (ScenarioResult, bool) {
	for _, s := range r.Scenarios {
		if s.ID == id {
			return s, true
		}
	}
	return ScenarioResult{}, false
}

// Write encodes the record as indented, field-order-stable JSON with a
// trailing newline, so committed baselines diff cleanly.
func Write(w io.Writer, rec *Record) error {
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return fmt.Errorf("perf: %w", err)
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteFile writes the record to path via Write.
func WriteFile(path string, rec *Record) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("perf: %w", err)
	}
	if err := Write(f, rec); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Read decodes a record and validates its schema version.
func Read(r io.Reader) (*Record, error) {
	var rec Record
	dec := json.NewDecoder(r)
	if err := dec.Decode(&rec); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRecord, err)
	}
	if rec.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("%w: schema version %d, this binary speaks %d (refresh the baseline deliberately)",
			ErrBadRecord, rec.SchemaVersion, SchemaVersion)
	}
	return &rec, nil
}

// ReadFile reads a record from path via Read.
func ReadFile(path string) (*Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRecord, err)
	}
	defer f.Close()
	rec, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%w (file %s)", err, path)
	}
	return rec, nil
}
