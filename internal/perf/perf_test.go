package perf

import (
	"bytes"
	"errors"
	"path/filepath"
	"strings"
	"testing"
)

func TestRecordRoundTrip(t *testing.T) {
	rec := NewRecord("test")
	rec.Scenarios = []ScenarioResult{
		{ID: "a", NsPerOp: 123.5, AllocsPerOp: 4, BytesPerOp: 256, Ops: 10},
		{ID: "b", NsPerOp: 7, ZeroAlloc: true, Ops: 1000, TrialsPerSec: 1e6},
	}
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := WriteFile(path, rec); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.SchemaVersion != SchemaVersion || got.Revision != "test" {
		t.Errorf("stamp lost: %+v", got)
	}
	if len(got.Scenarios) != 2 || got.Scenarios[0] != rec.Scenarios[0] || got.Scenarios[1] != rec.Scenarios[1] {
		t.Errorf("scenarios differ after round trip: %+v", got.Scenarios)
	}
	if _, ok := got.Scenario("b"); !ok {
		t.Error("Scenario lookup failed")
	}
}

func TestReadRejectsWrongSchema(t *testing.T) {
	_, err := Read(strings.NewReader(`{"schema_version": 999, "scenarios": []}`))
	if !errors.Is(err, ErrBadRecord) {
		t.Errorf("err = %v, want ErrBadRecord", err)
	}
	_, err = Read(strings.NewReader(`not json`))
	if !errors.Is(err, ErrBadRecord) {
		t.Errorf("err = %v, want ErrBadRecord", err)
	}
}

func TestSuiteIsWellFormed(t *testing.T) {
	suite := Suite()
	if len(suite) == 0 {
		t.Fatal("empty suite")
	}
	ids := make(map[string]bool)
	zeroAlloc := 0
	for _, s := range suite {
		if s.ID == "" || s.Bench == nil || s.Description == "" {
			t.Errorf("malformed scenario %+v", s.ID)
		}
		if ids[s.ID] {
			t.Errorf("duplicate scenario id %q", s.ID)
		}
		ids[s.ID] = true
		if s.ZeroAlloc {
			zeroAlloc++
		}
	}
	if zeroAlloc == 0 {
		t.Error("suite has no zero-alloc scenarios; the strict allocation gate is vacuous")
	}
}

func TestRunScenarioMeasures(t *testing.T) {
	work := 0
	res := RunScenario(Scenario{
		ID:     "synthetic/noop",
		Trials: 100,
		Bench: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				work++
			}
		},
	})
	if res.Ops <= 0 || res.NsPerOp < 0 {
		t.Errorf("implausible measurement: %+v", res)
	}
	if res.TrialsPerSec <= 0 {
		t.Errorf("trials/sec not derived: %+v", res)
	}
}

// TestSuiteChunkScenarioZeroAllocs runs the suite's strict-gate scenario
// once and asserts it measures as allocation-free, so the committed
// baseline's zero-alloc anchors are genuine.
func TestSuiteChunkScenarioZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark run in -short mode")
	}
	if raceEnabled {
		// sync.Pool deliberately drops puts under the race detector, so
		// pooled-scratch scenarios measure spurious allocations; the
		// race-free gate runs in CI via bench-bits and bench-compare.
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	for _, s := range Suite() {
		if !s.ZeroAlloc {
			continue
		}
		res := RunScenario(s)
		if res.AllocsPerOp != 0 {
			t.Errorf("%s: %v allocs/op, want 0", s.ID, res.AllocsPerOp)
		}
	}
}

func TestCompare(t *testing.T) {
	base := NewRecord("base")
	base.Scenarios = []ScenarioResult{
		{ID: "steady", NsPerOp: 100, AllocsPerOp: 10},
		{ID: "hot", NsPerOp: 100, AllocsPerOp: 0, ZeroAlloc: true},
		{ID: "gone", NsPerOp: 50},
	}
	fresh := NewRecord("fresh")
	fresh.GOMAXPROCS = base.GOMAXPROCS + 3 // environment drift → note, never a failure
	fresh.Scenarios = []ScenarioResult{
		{ID: "steady", NsPerOp: 180, AllocsPerOp: 25}, // 1.8x, allocs untracked: ok
		{ID: "hot", NsPerOp: 90, AllocsPerOp: 1, ZeroAlloc: true},
		{ID: "added", NsPerOp: 5},
	}
	rep, err := Compare(base, fresh, DefaultTolerances())
	if err != nil {
		t.Fatal(err)
	}
	status := make(map[string]Status)
	for _, d := range rep.Deltas {
		status[d.ID] = d.Status
	}
	if status["steady"] != StatusOK {
		t.Errorf("steady = %v, want ok (1.8x is inside the 2x tolerance)", status["steady"])
	}
	if status["hot"] != StatusRegressed {
		t.Errorf("hot = %v, want regressed (allocs grew on a zero-alloc scenario)", status["hot"])
	}
	if status["gone"] != StatusRegressed {
		t.Errorf("gone = %v, want regressed (missing from new record)", status["gone"])
	}
	if status["added"] != StatusNew {
		t.Errorf("added = %v, want new", status["added"])
	}
	if !rep.Regressed() || len(rep.Regressions()) != 2 {
		t.Errorf("regressions = %+v, want hot+gone", rep.Regressions())
	}
	if len(rep.Notes) != 1 || !strings.Contains(rep.Notes[0], "GOMAXPROCS differs") {
		t.Errorf("notes = %v, want one GOMAXPROCS-drift note", rep.Notes)
	}

	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "FAIL: 2 of 4 scenarios regressed") {
		t.Errorf("report text:\n%s", buf.String())
	}
}

func TestCompareNsRegression(t *testing.T) {
	base := NewRecord("")
	base.Scenarios = []ScenarioResult{{ID: "s", NsPerOp: 100}}
	fresh := NewRecord("")
	fresh.Scenarios = []ScenarioResult{{ID: "s", NsPerOp: 201}}
	rep, err := Compare(base, fresh, DefaultTolerances())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Regressed() {
		t.Error("2.01x slowdown passed the 2x gate")
	}
	// Identical records always pass.
	rep, err = Compare(base, base, Tolerances{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Regressed() {
		t.Errorf("self-comparison regressed: %+v", rep.Regressions())
	}
}

// TestCompareRequireZeroAlloc checks the day-one gate: a zero-alloc
// scenario that allocates fails under RequireZeroAlloc even when it is
// absent from the baseline (StatusNew) or its baseline already
// allocated (no growth).
func TestCompareRequireZeroAlloc(t *testing.T) {
	base := NewRecord("base")
	base.Scenarios = []ScenarioResult{
		{ID: "leaky", NsPerOp: 100, AllocsPerOp: 3, ZeroAlloc: true},
	}
	fresh := NewRecord("fresh")
	fresh.Scenarios = []ScenarioResult{
		{ID: "leaky", NsPerOp: 100, AllocsPerOp: 3, ZeroAlloc: true}, // no growth, but not zero
		{ID: "fresh-hot", NsPerOp: 10, AllocsPerOp: 1, ZeroAlloc: true},
		{ID: "fresh-ok", NsPerOp: 10, AllocsPerOp: 0, ZeroAlloc: true},
	}
	rep, err := Compare(base, fresh, Tolerances{RequireZeroAlloc: true})
	if err != nil {
		t.Fatal(err)
	}
	status := make(map[string]Status)
	for _, d := range rep.Deltas {
		status[d.ID] = d.Status
	}
	if status["leaky"] != StatusRegressed {
		t.Errorf("leaky = %v, want regressed (allocates on a zero-alloc scenario)", status["leaky"])
	}
	if status["fresh-hot"] != StatusRegressed {
		t.Errorf("fresh-hot = %v, want regressed (new zero-alloc scenario allocates)", status["fresh-hot"])
	}
	if status["fresh-ok"] != StatusNew {
		t.Errorf("fresh-ok = %v, want new", status["fresh-ok"])
	}

	// Without the flag, the same records pass as before: no growth, and
	// new scenarios are never gated.
	rep, err = Compare(base, fresh, Tolerances{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Regressed() {
		t.Errorf("regressed without RequireZeroAlloc: %+v", rep.Regressions())
	}

	if bad := ZeroAllocViolations(fresh); len(bad) != 2 ||
		bad[0].ID != "leaky" || bad[1].ID != "fresh-hot" {
		t.Errorf("ZeroAllocViolations = %+v, want leaky+fresh-hot", bad)
	}
}

func TestCompareSchemaMismatch(t *testing.T) {
	base := NewRecord("")
	fresh := NewRecord("")
	fresh.SchemaVersion = SchemaVersion + 1
	if _, err := Compare(base, fresh, DefaultTolerances()); !errors.Is(err, ErrIncomparable) {
		t.Errorf("err = %v, want ErrIncomparable", err)
	}
}
