package perf

import (
	"context"
	"testing"

	"memreliability/internal/core"
	"memreliability/internal/estimator"
	"memreliability/internal/mc"
	"memreliability/internal/memmodel"
	"memreliability/internal/obs"
	"memreliability/internal/rng"
	"memreliability/internal/stats"
)

// chunkTrials mirrors the mc harness's chunk size: the per-chunk
// scenarios below measure exactly one steady-state chunk of work.
const chunkTrials = 8192

// Scenario is one entry of the fixed benchmark suite.
type Scenario struct {
	// ID is the stable identifier recorded in the JSON artifact. IDs are
	// part of the baseline contract: removing or renaming one fails the
	// regression gate until the baseline is refreshed deliberately.
	ID string
	// Description says what the scenario exercises.
	Description string
	// Trials is the Monte Carlo trial count one operation consumes (0
	// for deterministic scenarios); it converts ns/op into trials/sec.
	Trials int
	// ZeroAlloc marks the scenario for the strict allocation gate: any
	// allocs/op growth over the baseline fails, regardless of time
	// tolerances. Only scenarios whose allocs/op is exactly stable
	// (independent of the benchmark iteration count) belong here.
	ZeroAlloc bool
	// Bench is the measured body, a standard testing benchmark.
	Bench func(b *testing.B)
}

// sink defeats dead-code elimination of benchmark bodies.
var sink int

// query builds the suite's estimator queries from one normal form.
func query(kind estimator.Kind, model string, threads, prefixLen, trials int, seed uint64) estimator.Query {
	q := estimator.DefaultQuery()
	q.Kind = kind
	q.Model = model
	q.Threads = threads
	q.PrefixLen = prefixLen
	q.Trials = trials
	q.Seed = seed
	return q
}

// benchEstimate measures the registry dispatch of a fixed query on a
// single Monte Carlo worker, so ns/op reflects per-trial cost rather
// than the measuring machine's core count — records stay comparable
// across runner classes (results are worker-count invariant anyway).
func benchEstimate(q estimator.Query) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := estimator.EstimateExec(context.Background(), q, estimator.Exec{Workers: 1})
			if err != nil {
				b.Fatal(err)
			}
			sink += res.TrialsUsed
		}
	}
}

// coinBatch is the suite's trivial allocation-free batch trial; with it,
// the harness's own dispatch overhead is everything being measured.
func coinBatch(src *rng.Source, out []bool) error {
	for i := range out {
		out[i] = src.Uint64()&1 == 0
	}
	return nil
}

// coinTrial is the per-trial closure equivalent of coinBatch.
func coinTrial(src *rng.Source) (bool, error) {
	return src.Uint64()&1 == 0, nil
}

// coinBits is the native-bitset trivial batch: one generator step per
// word, masked to the mc.BatchTrialBits partial-word contract. With it,
// the scenario measures the bit-parallel harness floor — 64 trials per
// RNG draw, zero per-trial work.
func coinBits(src *rng.Source, out []uint64, n int) error {
	words := out[:mc.BitWords(n)]
	for w := range words {
		words[w] = src.Uint64()
	}
	if rem := n & (mc.WordBits - 1); rem != 0 {
		words[len(words)-1] &= 1<<uint(rem) - 1
	}
	return nil
}

// Suite returns the fixed benchmark suite, in canonical order. The
// scenario set and parameters are versioned by SchemaVersion: changing
// either requires a deliberate baseline refresh.
func Suite() []Scenario {
	return []Scenario{
		{
			ID:          "exact-dp/tso-n2-m14",
			Description: "exact n=2 dynamic program (Theorem 6.2), TSO, m=14",
			Bench: func(b *testing.B) {
				b.ReportAllocs()
				cfg := core.Config{Model: memmodel.TSO(), Threads: 2, PrefixLen: 14,
					StoreProb: 0.5, SwapProb: 0.5}
				for i := 0; i < b.N; i++ {
					if _, err := core.ExactTwoThreadPrA(cfg); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
		{
			ID:          "windowdist/tso-m14",
			Description: "exact window distribution Pr[B_γ] through the estimator registry, TSO, m=14",
			Bench:       benchEstimate(query(estimator.WindowDist, "TSO", 2, 14, 0, 1)),
		},
		{
			ID:          "fixed-mc/tso-n2-m24-16k",
			Description: "fixed-trials full Monte Carlo through the registry (batched hot path), TSO, n=2, m=24, 16384 trials",
			Trials:      16384,
			Bench:       benchEstimate(query(estimator.FullMC, "TSO", 2, 24, 16384, 1)),
		},
		{
			ID:          "fixed-mc-compiled/tso-n2-m24-16k",
			Description: "fixed-trials full Monte Carlo through the registry on the compiled kernel engine, TSO, n=2, m=24, 16384 trials",
			Trials:      16384,
			Bench:       benchEstimate(query(estimator.CompiledMC, "TSO", 2, 24, 16384, 1)),
		},
		{
			ID:          "adaptive-mc/tso-n2-m24-hw0.01",
			Description: "adaptive-precision full Monte Carlo to a ±0.01 Wilson half-width, TSO, n=2, m=24, budget 65536",
			Bench: func() func(b *testing.B) {
				q := query(estimator.FullMC, "TSO", 2, 24, 65536, 1)
				q.Precision = &estimator.Precision{TargetHalfWidth: 0.01}
				return benchEstimate(q)
			}(),
		},
		{
			ID:          "hybrid/wo-n6-m32-8k",
			Description: "Theorem 6.1 hybrid estimate through the registry (batched product expectation), WO, n=6, m=32, 8192 trials",
			Trials:      8192,
			Bench:       benchEstimate(query(estimator.Hybrid, "WO", 6, 32, 8192, 1)),
		},
		{
			ID:          "mc-closure/coin-64k",
			Description: "harness overhead, per-trial closure route: 65536 trivial coin trials, one worker",
			Trials:      65536,
			Bench: func(b *testing.B) {
				b.ReportAllocs()
				cfg := mc.Config{Trials: 65536, Workers: 1, Seed: 1}
				for i := 0; i < b.N; i++ {
					res, err := mc.EstimateProbability(context.Background(), cfg, coinTrial)
					if err != nil {
						b.Fatal(err)
					}
					sink += res.Proportion.Successes()
				}
			},
		},
		{
			ID:          "mc-batch/coin-64k",
			Description: "harness overhead, batched route: 65536 trivial coin trials, one worker",
			Trials:      65536,
			Bench: func(b *testing.B) {
				b.ReportAllocs()
				cfg := mc.Config{Trials: 65536, Workers: 1, Seed: 1}
				for i := 0; i < b.N; i++ {
					res, err := mc.EstimateProbabilityBatch(context.Background(), cfg, coinBatch)
					if err != nil {
						b.Fatal(err)
					}
					sink += res.Proportion.Successes()
				}
			},
		},
		{
			ID:          "mc-batch/chunk-8k",
			Description: "steady-state batch chunk: fill one 8192-trial buffer and count successes (the fixed-MC inner loop)",
			Trials:      chunkTrials,
			ZeroAlloc:   true,
			Bench: func(b *testing.B) {
				b.ReportAllocs()
				src := rng.New(1)
				out := make([]bool, chunkTrials)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := coinBatch(src, out); err != nil {
						b.Fatal(err)
					}
					n := 0
					for _, ok := range out {
						if ok {
							n++
						}
					}
					sink += n
				}
			},
		},
		{
			ID:          "bits-kernel/chunk-8k",
			Description: "steady-state bitset chunk: fill one 8192-trial word buffer and popcount it (the bit-parallel fixed-MC inner loop)",
			Trials:      chunkTrials,
			ZeroAlloc:   true,
			Bench: func(b *testing.B) {
				b.ReportAllocs()
				src := rng.New(1)
				words := make([]uint64, mc.BitWords(chunkTrials))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := coinBits(src, words, chunkTrials); err != nil {
						b.Fatal(err)
					}
					sink += mc.OnesCount(words)
				}
			},
		},
		{
			ID:          "core-nobug-bits/chunk-8k",
			Description: "steady-state joined-process chunk: one prebuilt table-driven kernel fills one 8192-trial word buffer, TSO, n=2, m=24",
			Trials:      chunkTrials,
			ZeroAlloc:   true,
			Bench: func(b *testing.B) {
				b.ReportAllocs()
				cfg := core.DefaultConfig(memmodel.TSO(), 2)
				cfg.PrefixLen = 24
				k, err := cfg.NewKernel()
				if err != nil {
					b.Fatal(err)
				}
				src := rng.New(1)
				words := make([]uint64, mc.BitWords(chunkTrials))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := k.FillBits(src, words, chunkTrials); err != nil {
						b.Fatal(err)
					}
					sink += mc.OnesCount(words)
				}
			},
		},
		{
			ID:          "compiled-kernel/chunk-8k",
			Description: "steady-state compiled-engine chunk: one cached compiled Program fills one 8192-trial word buffer, TSO, n=2, m=24",
			Trials:      chunkTrials,
			ZeroAlloc:   true,
			Bench: func(b *testing.B) {
				b.ReportAllocs()
				cfg := core.DefaultConfig(memmodel.TSO(), 2)
				cfg.PrefixLen = 24
				prog, err := core.DefaultPlanCache().Lookup(cfg)
				if err != nil {
					b.Fatal(err)
				}
				src := rng.New(1)
				words := make([]uint64, mc.BitWords(chunkTrials))
				// Warm the Program's scratch pool so the measured loop is
				// pure steady state, as in the harness's chunk loop.
				if err := prog.FillBits(src, words, chunkTrials); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := prog.FillBits(src, words, chunkTrials); err != nil {
						b.Fatal(err)
					}
					sink += mc.OnesCount(words)
				}
			},
		},
		{
			ID:          "rng-bulkfill/8k",
			Description: "bulk xoshiro fill: one FillUint64s call over an 8192-word buffer (the compiled engine's draw source)",
			ZeroAlloc:   true,
			Bench: func(b *testing.B) {
				b.ReportAllocs()
				src := rng.New(1)
				buf := make([]uint64, chunkTrials)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					src.FillUint64s(buf)
					sink += int(buf[len(buf)-1] & 1)
				}
			},
		},
		{
			ID:          "mc-instrumented/chunk-8k",
			Description: "steady-state bitset chunk plus the chunk-path metric updates (counter inc + trials add), proving instrumentation stays allocation-free",
			Trials:      chunkTrials,
			ZeroAlloc:   true,
			Bench: func(b *testing.B) {
				b.ReportAllocs()
				reg := obs.NewRegistry()
				chunks := reg.Counter("bench_chunks_total", "bench")
				trials := reg.Counter("bench_trials_total", "bench")
				src := rng.New(1)
				words := make([]uint64, mc.BitWords(chunkTrials))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := coinBits(src, words, chunkTrials); err != nil {
						b.Fatal(err)
					}
					sink += mc.OnesCount(words)
					// The exact per-chunk observability cost the mc harness
					// pays: one counter increment and one counter add.
					chunks.Inc()
					trials.Add(chunkTrials)
				}
			},
		},
		{
			ID:          "obs-metrics/observe-8k",
			Description: "8192 metric updates (counter inc, gauge set, histogram observe) on pre-resolved handles",
			ZeroAlloc:   true,
			Bench: func(b *testing.B) {
				b.ReportAllocs()
				reg := obs.NewRegistry()
				c := reg.Counter("bench_events_total", "bench")
				g := reg.Gauge("bench_depth", "bench")
				h := reg.Histogram("bench_seconds", "bench", obs.LatencyBuckets())
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for j := 0; j < chunkTrials; j++ {
						c.Inc()
						g.Set(float64(j))
						h.Observe(float64(j) * 1e-6)
					}
				}
				sink += int(c.Value())
			},
		},
		{
			ID:          "mc-mean-batch/chunk-8k",
			Description: "steady-state mean batch chunk: fill one 8192-sample buffer and fold it into a Summary",
			Trials:      chunkTrials,
			ZeroAlloc:   true,
			Bench: func(b *testing.B) {
				b.ReportAllocs()
				src := rng.New(1)
				out := make([]float64, chunkTrials)
				var sum stats.Summary
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for j := range out {
						out[j] = src.Float64()
					}
					for _, v := range out {
						sum.Add(v)
					}
				}
				sink += sum.N()
			},
		},
	}
}

// RunScenario measures one scenario with the standard benchmark driver
// (respecting -test.benchtime when testing.Init has registered it).
func RunScenario(s Scenario) ScenarioResult {
	r := testing.Benchmark(s.Bench)
	res := ScenarioResult{
		ID:          s.ID,
		Ops:         r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: float64(r.AllocsPerOp()),
		BytesPerOp:  float64(r.AllocedBytesPerOp()),
		ZeroAlloc:   s.ZeroAlloc,
	}
	if s.Trials > 0 && res.NsPerOp > 0 {
		res.TrialsPerSec = float64(s.Trials) * 1e9 / res.NsPerOp
	}
	return res
}

// RunSuite measures every suite scenario in order and returns the
// stamped record. progress, when non-nil, receives each result as it
// completes.
func RunSuite(revision string, progress func(ScenarioResult)) *Record {
	return RunScenarios(revision, Suite(), progress)
}

// RunScenarios measures the given scenarios in order and returns the
// stamped record — RunSuite over a caller-selected subset (e.g.
// membench -only).
func RunScenarios(revision string, scenarios []Scenario, progress func(ScenarioResult)) *Record {
	rec := NewRecord(revision)
	for _, s := range scenarios {
		res := RunScenario(s)
		rec.Scenarios = append(rec.Scenarios, res)
		if progress != nil {
			progress(res)
		}
	}
	return rec
}
