package perf

import (
	"errors"
	"fmt"
	"io"
)

// ErrIncomparable reports records that cannot be diffed (schema version
// mismatch); the baseline must be refreshed deliberately.
var ErrIncomparable = errors.New("perf: records not comparable")

// DefaultMaxNsRatio is the default time-regression tolerance: generous
// enough to absorb shared-runner noise, tight enough to catch a real
// slowdown.
const DefaultMaxNsRatio = 2.0

// Tolerances bound the drift Compare accepts before calling a scenario
// regressed.
type Tolerances struct {
	// MaxNsRatio fails a scenario whose ns/op exceeds old × MaxNsRatio.
	// Zero or negative selects DefaultMaxNsRatio. Zero-alloc scenarios
	// additionally fail on ANY allocs/op growth, tolerance-free.
	MaxNsRatio float64
	// RequireZeroAlloc additionally fails any zero-alloc scenario whose
	// new allocs/op is not exactly zero — including scenarios absent from
	// the baseline. Without it a freshly added zero-alloc scenario is
	// StatusNew and unchecked until the next baseline refresh; with it,
	// zero-alloc promises are gated from day one.
	RequireZeroAlloc bool
}

// DefaultTolerances returns the CI regression gate's tolerances.
func DefaultTolerances() Tolerances {
	return Tolerances{MaxNsRatio: DefaultMaxNsRatio, RequireZeroAlloc: true}
}

func (t Tolerances) maxNsRatio() float64 {
	if t.MaxNsRatio > 0 {
		return t.MaxNsRatio
	}
	return DefaultMaxNsRatio
}

// Status classifies one scenario's drift.
type Status string

const (
	// StatusOK: within tolerance.
	StatusOK Status = "ok"
	// StatusRegressed: slower than tolerated, grew allocations on a
	// zero-alloc scenario, or vanished from the new record.
	StatusRegressed Status = "regressed"
	// StatusNew: present only in the new record (fine; the baseline
	// picks it up at the next deliberate refresh).
	StatusNew Status = "new"
)

// Delta is one scenario's comparison.
type Delta struct {
	ID        string
	Status    Status
	Reason    string
	OldNs     float64
	NewNs     float64
	NsRatio   float64
	OldAllocs float64
	NewAllocs float64
	ZeroAlloc bool
}

// Report is the outcome of comparing a new record against a baseline.
type Report struct {
	Tolerances Tolerances
	Deltas     []Delta
	// Notes are non-fatal caveats — e.g. the two records were measured
	// under different Go versions or environments, so ratios carry more
	// noise than usual. They never fail the gate by themselves.
	Notes []string
}

// Regressions returns the regressed deltas.
func (r *Report) Regressions() []Delta {
	var out []Delta
	for _, d := range r.Deltas {
		if d.Status == StatusRegressed {
			out = append(out, d)
		}
	}
	return out
}

// Regressed reports whether any scenario regressed.
func (r *Report) Regressed() bool { return len(r.Regressions()) > 0 }

// WriteText renders the report as an aligned text table plus a verdict
// line, preceded by any environment-mismatch notes.
func (r *Report) WriteText(w io.Writer) error {
	for _, note := range r.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", note); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%-34s %14s %14s %7s %16s  %s\n",
		"scenario", "old ns/op", "new ns/op", "ratio", "allocs old→new", "status"); err != nil {
		return err
	}
	for _, d := range r.Deltas {
		ratio := "-"
		if d.NsRatio > 0 {
			ratio = fmt.Sprintf("%.2fx", d.NsRatio)
		}
		status := string(d.Status)
		if d.Reason != "" {
			status += " (" + d.Reason + ")"
		}
		if _, err := fmt.Fprintf(w, "%-34s %14.0f %14.0f %7s %8.0f→%-7.0f %s\n",
			d.ID, d.OldNs, d.NewNs, ratio, d.OldAllocs, d.NewAllocs, status); err != nil {
			return err
		}
	}
	reg := r.Regressions()
	if len(reg) == 0 {
		_, err := fmt.Fprintf(w, "PASS: %d scenarios within tolerance (max ns/op ratio %.2gx, zero-alloc growth forbidden)\n",
			len(r.Deltas), r.Tolerances.maxNsRatio())
		return err
	}
	_, err := fmt.Fprintf(w, "FAIL: %d of %d scenarios regressed\n", len(reg), len(r.Deltas))
	return err
}

// ZeroAllocViolations returns the record's zero-alloc scenarios whose
// measured allocs/op is not exactly zero — the standalone form of the
// RequireZeroAlloc gate, usable without a baseline.
func ZeroAllocViolations(rec *Record) []ScenarioResult {
	var out []ScenarioResult
	for _, s := range rec.Scenarios {
		if s.ZeroAlloc && s.AllocsPerOp > 0 {
			out = append(out, s)
		}
	}
	return out
}

// Compare diffs a new record against a baseline under the given
// tolerances. A scenario regresses when its ns/op grows beyond the
// ratio tolerance, when it disappears from the new record, or — for
// zero-alloc scenarios — when its allocs/op grows at all. Scenarios
// only present in the new record are reported as StatusNew and never
// fail the gate.
func Compare(old, new *Record, tol Tolerances) (*Report, error) {
	if old == nil || new == nil {
		return nil, fmt.Errorf("%w: nil record", ErrIncomparable)
	}
	if old.SchemaVersion != new.SchemaVersion {
		return nil, fmt.Errorf("%w: schema versions %d vs %d (refresh the baseline deliberately)",
			ErrIncomparable, old.SchemaVersion, new.SchemaVersion)
	}
	report := &Report{Tolerances: tol}
	// Environment drift does not fail the gate (the generous tolerances
	// exist precisely to absorb machine variance), but it must never be
	// silent: a baseline recorded elsewhere makes ratios noisier.
	if old.GoVersion != new.GoVersion {
		report.Notes = append(report.Notes,
			fmt.Sprintf("go versions differ: baseline %s vs new %s", old.GoVersion, new.GoVersion))
	}
	if old.GOOS != new.GOOS || old.GOARCH != new.GOARCH {
		report.Notes = append(report.Notes,
			fmt.Sprintf("platforms differ: baseline %s/%s vs new %s/%s (ratios are noisy; consider refreshing the baseline)",
				old.GOOS, old.GOARCH, new.GOOS, new.GOARCH))
	}
	if old.GOMAXPROCS != new.GOMAXPROCS {
		report.Notes = append(report.Notes,
			fmt.Sprintf("GOMAXPROCS differs: baseline %d vs new %d (suite scenarios are single-worker, so impact is limited)",
				old.GOMAXPROCS, new.GOMAXPROCS))
	}
	maxRatio := tol.maxNsRatio()
	seen := make(map[string]bool, len(old.Scenarios))
	for _, o := range old.Scenarios {
		seen[o.ID] = true
		d := Delta{ID: o.ID, OldNs: o.NsPerOp, OldAllocs: o.AllocsPerOp, ZeroAlloc: o.ZeroAlloc}
		n, ok := new.Scenario(o.ID)
		if !ok {
			d.Status = StatusRegressed
			d.Reason = "scenario missing from new record"
			report.Deltas = append(report.Deltas, d)
			continue
		}
		d.NewNs = n.NsPerOp
		d.NewAllocs = n.AllocsPerOp
		d.ZeroAlloc = o.ZeroAlloc || n.ZeroAlloc
		if o.NsPerOp > 0 {
			d.NsRatio = n.NsPerOp / o.NsPerOp
		}
		d.Status = StatusOK
		switch {
		case d.NsRatio > maxRatio:
			d.Status = StatusRegressed
			d.Reason = fmt.Sprintf("ns/op grew %.2fx (tolerance %.2gx)", d.NsRatio, maxRatio)
		case d.ZeroAlloc && n.AllocsPerOp > o.AllocsPerOp:
			d.Status = StatusRegressed
			d.Reason = fmt.Sprintf("allocs/op grew %.0f→%.0f on a zero-alloc scenario",
				o.AllocsPerOp, n.AllocsPerOp)
		case tol.RequireZeroAlloc && d.ZeroAlloc && n.AllocsPerOp > 0:
			d.Status = StatusRegressed
			d.Reason = fmt.Sprintf("%.0f allocs/op on a zero-alloc scenario", n.AllocsPerOp)
		}
		report.Deltas = append(report.Deltas, d)
	}
	for _, n := range new.Scenarios {
		if seen[n.ID] {
			continue
		}
		d := Delta{
			ID: n.ID, Status: StatusNew, NewNs: n.NsPerOp, NewAllocs: n.AllocsPerOp,
			ZeroAlloc: n.ZeroAlloc, Reason: "not in baseline",
		}
		if tol.RequireZeroAlloc && n.ZeroAlloc && n.AllocsPerOp > 0 {
			d.Status = StatusRegressed
			d.Reason = fmt.Sprintf("%.0f allocs/op on a new zero-alloc scenario", n.AllocsPerOp)
		}
		report.Deltas = append(report.Deltas, d)
	}
	return report, nil
}
