package analytic

import (
	"errors"
	"math"
	"testing"

	"memreliability/internal/dist"
	"memreliability/internal/memmodel"
	"memreliability/internal/settle"
)

func TestIntervalBasics(t *testing.T) {
	iv := Interval{Lo: 0.1, Hi: 0.3}
	if !iv.Contains(0.2) || iv.Contains(0.31) || iv.Contains(0.09) {
		t.Error("Contains wrong")
	}
	if math.Abs(iv.Width()-0.2) > 1e-12 {
		t.Errorf("Width = %v", iv.Width())
	}
	if math.Abs(iv.Midpoint()-0.2) > 1e-12 {
		t.Errorf("Midpoint = %v", iv.Midpoint())
	}
	p := Point(0.5)
	if p.Lo != 0.5 || p.Hi != 0.5 {
		t.Error("Point wrong")
	}
}

func TestWindowClosedForms(t *testing.T) {
	// SC: all mass at 0.
	if v, err := SCWindow(0); err != nil || v != 1 {
		t.Errorf("SCWindow(0) = %v, %v", v, err)
	}
	if v, err := SCWindow(3); err != nil || v != 0 {
		t.Errorf("SCWindow(3) = %v, %v", v, err)
	}
	// WO: 2/3, then 2^-γ/3; must sum to 1.
	sum := 0.0
	for gamma := 0; gamma <= 60; gamma++ {
		v, err := WOWindow(gamma)
		if err != nil {
			t.Fatal(err)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("WO window mass = %v", sum)
	}
	// TSO: 2/3 at zero; interval widths shrink like 2^-γ.
	iv, err := TSOWindow(0)
	if err != nil || iv.Lo != 2.0/3.0 || iv.Hi != 2.0/3.0 {
		t.Errorf("TSOWindow(0) = %+v, %v", iv, err)
	}
	iv1, err := TSOWindow(1)
	if err != nil {
		t.Fatal(err)
	}
	if iv1.Lo != (6.0/7.0)/4 {
		t.Errorf("TSOWindow(1).Lo = %v", iv1.Lo)
	}
	if math.Abs(iv1.Width()-TSORemainderBound/2) > 1e-15 {
		t.Errorf("TSOWindow(1) width = %v", iv1.Width())
	}
	// Domain checks.
	if _, err := SCWindow(-1); !errors.Is(err, ErrOutOfDomain) {
		t.Error("SCWindow(-1) accepted")
	}
	if _, err := WOWindow(-1); !errors.Is(err, ErrOutOfDomain) {
		t.Error("WOWindow(-1) accepted")
	}
	if _, err := TSOWindow(-1); !errors.Is(err, ErrOutOfDomain) {
		t.Error("TSOWindow(-1) accepted")
	}
}

func TestWindowInterval(t *testing.T) {
	for _, name := range []string{"SC", "TSO", "WO"} {
		iv, err := WindowInterval(name, 2)
		if err != nil {
			t.Errorf("WindowInterval(%s): %v", name, err)
			continue
		}
		if iv.Lo < 0 || iv.Hi > 1 || iv.Lo > iv.Hi {
			t.Errorf("WindowInterval(%s) = %+v", name, iv)
		}
	}
	if _, err := WindowInterval("PSO", 1); !errors.Is(err, ErrOutOfDomain) {
		t.Error("PSO closed form claimed to exist")
	}
}

func TestTSOWindowAgainstExactDP(t *testing.T) {
	// The DP ground truth must fall inside the paper's TSO interval for
	// every γ (finite-m slack included).
	pmf, err := settle.ExactWindowDist(memmodel.TSO(), 16, 0.5, 0.5, 10)
	if err != nil {
		t.Fatal(err)
	}
	for gamma := 0; gamma <= 9; gamma++ {
		iv, err := TSOWindow(gamma)
		if err != nil {
			t.Fatal(err)
		}
		got := pmf.At(gamma)
		if got < iv.Lo-2e-4 || got > iv.Hi+2e-4 {
			t.Errorf("γ=%d: DP %v outside paper interval [%v, %v]",
				gamma, got, iv.Lo, iv.Hi)
		}
	}
}

func TestLemma42(t *testing.T) {
	if Lemma42L0 != 1.0/3.0 {
		t.Error("Lemma42L0 wrong")
	}
	if _, err := Lemma42Lower(0); !errors.Is(err, ErrOutOfDomain) {
		t.Error("µ=0 accepted")
	}
	// h(1) = 4/7 exactly; h is increasing; bound = h(1)·2^-µ ≤ h(µ)·2^-µ.
	h1, err := Lemma42H(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h1-4.0/7.0) > 1e-12 {
		t.Errorf("h(1) = %v, want 4/7", h1)
	}
	prev := h1
	for mu := 2; mu <= 12; mu++ {
		h, err := Lemma42H(mu)
		if err != nil {
			t.Fatal(err)
		}
		if h < prev {
			t.Errorf("h(%d) = %v < h(%d) = %v: not increasing", mu, h, mu-1, prev)
		}
		prev = h
		lower, err := Lemma42Lower(mu)
		if err != nil {
			t.Fatal(err)
		}
		if want := (4.0 / 7.0) * math.Pow(2, -float64(mu)); math.Abs(lower-want) > 1e-15 {
			t.Errorf("Lemma42Lower(%d) = %v, want %v", mu, lower, want)
		}
	}
}

func TestLemma42AgainstExactDP(t *testing.T) {
	pmf, err := settle.ExactContiguousStoreDist(memmodel.TSO(), 16, 0.5, 0.5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := pmf.At(0); math.Abs(got-Lemma42L0) > 1e-3 {
		t.Errorf("Pr[L_0] = %v, want %v", got, Lemma42L0)
	}
	for mu := 1; mu <= 9; mu++ {
		lower, err := Lemma42Lower(mu)
		if err != nil {
			t.Fatal(err)
		}
		if got := pmf.At(mu); got < lower-1e-4 {
			t.Errorf("Pr[L_%d] = %v below bound %v", mu, got, lower)
		}
	}
}

func TestClaim43(t *testing.T) {
	if _, err := Claim43Finite(0); !errors.Is(err, ErrOutOfDomain) {
		t.Error("round 0 accepted")
	}
	v1, err := Claim43Finite(1)
	if err != nil || math.Abs(v1-0.5) > 1e-15 {
		t.Errorf("Claim43Finite(1) = %v, want 1/2", v1)
	}
	v20, err := Claim43Finite(20)
	if err != nil || math.Abs(v20-Claim43Limit) > 1e-9 {
		t.Errorf("Claim43Finite(20) = %v, want →2/3", v20)
	}
	// Recurrence check: X_i = 1/2 + X_{i-1}/4.
	for i := 2; i <= 15; i++ {
		xi, err := Claim43Finite(i)
		if err != nil {
			t.Fatal(err)
		}
		prev, err := Claim43Finite(i - 1)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(xi-(0.5+prev/4)) > 1e-12 {
			t.Errorf("recurrence fails at i=%d", i)
		}
	}
}

func TestPsiPMFNormalizes(t *testing.T) {
	for mu := 1; mu <= 8; mu++ {
		sum := 0.0
		for q := 0; q <= 200; q++ {
			v, err := PsiPMF(mu, q)
			if err != nil {
				t.Fatal(err)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("Σ_q Pr[Ψ_%d = q] = %v, want 1", mu, sum)
		}
	}
	if _, err := PsiPMF(0, 1); !errors.Is(err, ErrOutOfDomain) {
		t.Error("µ=0 accepted")
	}
	if _, err := PsiPMF(1, -1); !errors.Is(err, ErrOutOfDomain) {
		t.Error("q=-1 accepted")
	}
}

func TestClaim44ExactDominatesLower(t *testing.T) {
	for mu := 1; mu <= 7; mu++ {
		for q := 0; q <= 7; q++ {
			exact, err := Claim44Exact(mu, q)
			if err != nil {
				t.Fatal(err)
			}
			lower, err := Claim44Lower(mu, q)
			if err != nil {
				t.Fatal(err)
			}
			if exact < lower-1e-12 {
				t.Errorf("Claim 4.4 violated at µ=%d q=%d: exact %v < lower %v",
					mu, q, exact, lower)
			}
			if exact > 1+1e-12 {
				t.Errorf("Claim44Exact(%d,%d) = %v > 1", mu, q, exact)
			}
		}
	}
}

func TestClaim44ExactIsProbability(t *testing.T) {
	// Direct semantic check for µ=1, q=1: one LD below one ST; F_1 needs
	// the LD to settle past the single ST: probability 1/2 (δ=1 is forced,
	// 2^-1).
	v, err := Claim44Exact(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-0.5) > 1e-12 {
		t.Errorf("Claim44Exact(1,1) = %v, want 1/2", v)
	}
}

func TestSegmentMGFClosedForms(t *testing.T) {
	// SC: E[2^-Γ] = 2^-2 = 1/4.
	if SegmentMGFSC != 0.25 {
		t.Error("SegmentMGFSC wrong")
	}
	// WO: 7/36 (from the Theorem 6.2 proof).
	if math.Abs(SegmentMGFWO-7.0/36.0) > 1e-15 {
		t.Error("SegmentMGFWO wrong")
	}
	// TSO interval: consistent with Theorem 6.2 via Pr[A] = (2/3)·E.
	tso := SegmentMGFTSO()
	prA := TwoThreadPrA(tso)
	want := Theorem62TSO()
	if math.Abs(prA.Lo-want.Lo) > 1e-12 || math.Abs(prA.Hi-want.Hi) > 1e-12 {
		t.Errorf("TwoThreadPrA(SegmentMGFTSO()) = %+v, want %+v", prA, want)
	}
}

func TestSegmentMGFFromPMF(t *testing.T) {
	// Degenerate SC PMF: all mass at γ=0 → E[2^-Γ] = 1/4 exactly.
	pmf, err := dist.NewPMF([]float64{1})
	if err != nil {
		t.Fatal(err)
	}
	iv, err := SegmentMGF(pmf)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Lo != 0.25 || iv.Hi != 0.25 {
		t.Errorf("SC MGF = %+v", iv)
	}
	if _, err := SegmentMGF(nil); !errors.Is(err, ErrOutOfDomain) {
		t.Error("nil PMF accepted")
	}
}

func TestSegmentMGFTailBracket(t *testing.T) {
	// PMF with half its mass untabulated: interval must bracket any
	// completion of the distribution.
	pmf, err := dist.NewPMF([]float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	iv, err := SegmentMGF(pmf)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Lo != 0.125 {
		t.Errorf("Lo = %v, want 0.125", iv.Lo)
	}
	// Max completion: all tail at γ=1 contributes 0.5·2^-3 = 0.0625.
	if iv.Hi < 0.125+0.0625-1e-12 {
		t.Errorf("Hi = %v too small to bracket tail at γ=1", iv.Hi)
	}
}

func TestTheorem62Constants(t *testing.T) {
	if math.Abs(Theorem62SC-1.0/6.0) > 1e-15 {
		t.Error("Theorem62SC wrong")
	}
	if math.Abs(Theorem62WO-7.0/54.0) > 1e-15 {
		t.Error("Theorem62WO wrong")
	}
	tso := Theorem62TSO()
	if !(tso.Lo > 0.1315 && tso.Lo < 0.1316) {
		t.Errorf("TSO lower %v, paper says > 0.1315", tso.Lo)
	}
	if !(tso.Hi < 0.1369 && tso.Hi > 0.1368) {
		t.Errorf("TSO upper %v, paper says < 0.1369", tso.Hi)
	}
	// Ordering: SC > TSO > WO, and SC/WO = 9/7.
	if !(Theorem62SC > tso.Hi && tso.Lo > Theorem62WO) {
		t.Error("Theorem 6.2 ordering violated")
	}
	if math.Abs(Theorem62SC/Theorem62WO-9.0/7.0) > 1e-12 {
		t.Errorf("SC/WO ratio = %v, want 9/7", Theorem62SC/Theorem62WO)
	}
}

func TestTheorem62ViaWindowPMFs(t *testing.T) {
	// Route the closed-form window PMFs through SegmentMGF → TwoThreadPrA
	// and confirm the paper's constants drop out.
	woMass := make([]float64, 40)
	for gamma := range woMass {
		v, err := WOWindow(gamma)
		if err != nil {
			t.Fatal(err)
		}
		woMass[gamma] = v
	}
	woPMF, err := dist.NewPMF(woMass)
	if err != nil {
		t.Fatal(err)
	}
	mgf, err := SegmentMGF(woPMF)
	if err != nil {
		t.Fatal(err)
	}
	prA := TwoThreadPrA(mgf)
	if math.Abs(prA.Lo-Theorem62WO) > 1e-9 || math.Abs(prA.Hi-Theorem62WO) > 1e-6 {
		t.Errorf("WO via PMF = %+v, want %v", prA, Theorem62WO)
	}
}

func TestSCPrA(t *testing.T) {
	if _, err := SCPrA(1); !errors.Is(err, ErrOutOfDomain) {
		t.Error("n=1 accepted")
	}
	// n=2 must give 1/6.
	v, err := SCPrA(2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-1.0/6.0) > 1e-12 {
		t.Errorf("SCPrA(2) = %v, want 1/6", v)
	}
	// Log form must agree where both are finite.
	for n := 2; n <= 12; n++ {
		p, err := SCPrA(n)
		if err != nil {
			t.Fatal(err)
		}
		lp, err := SCLogPrA(n)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(math.Log(p)-lp) > 1e-9 {
			t.Errorf("n=%d: log mismatch %v vs %v", n, math.Log(p), lp)
		}
	}
}

func TestTheorem63RateConvergence(t *testing.T) {
	// −ln Pr[A]/n² under SC must converge to (3/2)·ln2.
	var prevGap float64 = math.Inf(1)
	for _, n := range []int{4, 8, 16, 32, 64} {
		lp, err := SCLogPrA(n)
		if err != nil {
			t.Fatal(err)
		}
		rate, err := Theorem63Rate(lp, n)
		if err != nil {
			t.Fatal(err)
		}
		gap := math.Abs(rate - Theorem63AsymptoticRate)
		if gap > prevGap+1e-9 {
			t.Errorf("n=%d: rate gap %v not shrinking (prev %v)", n, gap, prevGap)
		}
		prevGap = gap
	}
	if prevGap > 0.2 {
		t.Errorf("rate gap at n=64 still %v", prevGap)
	}
}

func TestAnyModelLowerBound(t *testing.T) {
	// The any-model lower bound must sit below the SC value (SC maximizes
	// Pr[A]) and still decay like e^{-Θ(n²)}.
	for n := 2; n <= 20; n++ {
		lower, err := AnyModelLogPrALower(n)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := SCLogPrA(n)
		if err != nil {
			t.Fatal(err)
		}
		if lower > sc {
			t.Errorf("n=%d: lower bound %v above SC %v", n, lower, sc)
		}
		if diff := sc - lower; math.Abs(diff-float64(n-1)*math.Ln2) > 1e-9 {
			t.Errorf("n=%d: gap %v, want (n-1)ln2", n, diff)
		}
	}
	if _, err := AnyModelLogPrALower(1); !errors.Is(err, ErrOutOfDomain) {
		t.Error("n=1 accepted")
	}
}

func TestTheorem63RateValidation(t *testing.T) {
	if _, err := Theorem63Rate(-1, 1); !errors.Is(err, ErrOutOfDomain) {
		t.Error("n=1 accepted")
	}
	if _, err := Theorem63Rate(0.5, 3); !errors.Is(err, ErrOutOfDomain) {
		t.Error("positive logPrA accepted")
	}
}
