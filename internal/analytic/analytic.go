// Package analytic states the paper's closed-form results as executable
// formulas: Theorem 4.1 (critical-window growth per memory model), Lemma
// 4.2 and Claims 4.3/4.4 (the TSO machinery), Theorem 6.2 (two-thread bug
// probabilities), and Theorem 6.3 (the large-n asymptotics).
//
// Everything here is a statement of the paper's mathematics, independent of
// the simulation packages; the test suites and benchmark harness check the
// two against each other.
package analytic

import (
	"errors"
	"fmt"
	"math"

	"memreliability/internal/combin"
	"memreliability/internal/dist"
)

// ErrOutOfDomain reports arguments outside a formula's domain.
var ErrOutOfDomain = errors.New("analytic: argument out of domain")

// Interval is a closed interval of probabilities; the paper's TSO results
// are stated as rigorous two-sided bounds rather than exact values.
type Interval struct {
	Lo, Hi float64
}

// Contains reports whether v lies in the interval.
func (iv Interval) Contains(v float64) bool { return v >= iv.Lo && v <= iv.Hi }

// Width returns Hi − Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// Point returns a degenerate interval at v.
func Point(v float64) Interval { return Interval{Lo: v, Hi: v} }

// Midpoint returns (Lo+Hi)/2.
func (iv Interval) Midpoint() float64 { return (iv.Lo + iv.Hi) / 2 }

// --- Theorem 4.1: critical window growth Pr[B_γ] ---

// SCWindow returns Pr[B_γ] under Sequential Consistency: the window never
// grows.
func SCWindow(gamma int) (float64, error) {
	if gamma < 0 {
		return 0, fmt.Errorf("%w: γ=%d", ErrOutOfDomain, gamma)
	}
	if gamma == 0 {
		return 1, nil
	}
	return 0, nil
}

// WOWindow returns Pr[B_γ] under Weak Ordering: 2/3 at γ=0 and 2^-γ/3 for
// γ > 0.
func WOWindow(gamma int) (float64, error) {
	if gamma < 0 {
		return 0, fmt.Errorf("%w: γ=%d", ErrOutOfDomain, gamma)
	}
	if gamma == 0 {
		return 2.0 / 3.0, nil
	}
	return math.Pow(2, -float64(gamma)) / 3, nil
}

// TSORemainderBound is the paper's bound on the approximation term R(γ) in
// the TSO window growth: 0 ≤ R(γ) ≤ 2/21.
const TSORemainderBound = 2.0 / 21.0

// TSOWindow returns the rigorous interval for Pr[B_γ] under Total Store
// Order: exactly 2/3 at γ=0, and (6/7)·4^-γ + R(γ)·2^-γ with
// R(γ) ∈ [0, 2/21] for γ > 0.
func TSOWindow(gamma int) (Interval, error) {
	if gamma < 0 {
		return Interval{}, fmt.Errorf("%w: γ=%d", ErrOutOfDomain, gamma)
	}
	if gamma == 0 {
		return Point(2.0 / 3.0), nil
	}
	base := (6.0 / 7.0) * math.Pow(4, -float64(gamma))
	return Interval{
		Lo: base,
		Hi: base + TSORemainderBound*math.Pow(2, -float64(gamma)),
	}, nil
}

// WindowInterval returns Pr[B_γ] for a canonical model by name ("SC",
// "TSO", "WO"), as an interval (degenerate for SC and WO). PSO has no
// closed form in the paper (footnote 4); obtain its distribution from
// settle.ExactWindowDist.
func WindowInterval(modelName string, gamma int) (Interval, error) {
	switch modelName {
	case "SC":
		v, err := SCWindow(gamma)
		if err != nil {
			return Interval{}, err
		}
		return Point(v), nil
	case "WO":
		v, err := WOWindow(gamma)
		if err != nil {
			return Interval{}, err
		}
		return Point(v), nil
	case "TSO":
		return TSOWindow(gamma)
	default:
		return Interval{}, fmt.Errorf("%w: no closed-form window for model %q", ErrOutOfDomain, modelName)
	}
}

// --- Lemma 4.2 and the supporting claims ---

// Lemma42L0 is the exact value Pr[L_0] = 1/3 under TSO: the probability
// that no STs sit immediately above the critical LD in S_m.
const Lemma42L0 = 1.0 / 3.0

// Lemma42Lower returns the lemma's lower bound Pr[L_µ] ≥ (4/7)·2^-µ for
// µ ≥ 1.
func Lemma42Lower(mu int) (float64, error) {
	if mu < 1 {
		return 0, fmt.Errorf("%w: µ=%d (lemma requires µ ≥ 1)", ErrOutOfDomain, mu)
	}
	return (4.0 / 7.0) * math.Pow(2, -float64(mu)), nil
}

// Lemma42H returns h(µ), the parenthesized expression in the Lemma 4.2
// proof: h(µ) = 8/7 − (1−2^-(µ+1))^-1 + (2/3)·(1−2^-(µ+2))^-1, which is
// increasing with h(1) = 4/7.
func Lemma42H(mu int) (float64, error) {
	if mu < 1 {
		return 0, fmt.Errorf("%w: µ=%d", ErrOutOfDomain, mu)
	}
	return 8.0/7.0 -
		1/(1-math.Pow(2, -float64(mu+1))) +
		(2.0/3.0)/(1-math.Pow(2, -float64(mu+2))), nil
}

// Claim43Limit is the limiting bottom-of-program store density under TSO
// with p = s = 1/2 (Claim 4.3).
const Claim43Limit = 2.0 / 3.0

// Claim43Finite returns the exact finite-i value of Claim 4.3's recurrence:
// Pr[S_ST,i(i)] = 2/3 + (1/4)^(i-1)·(1/2 − 2/3), for round i ≥ 1.
func Claim43Finite(i int) (float64, error) {
	if i < 1 {
		return 0, fmt.Errorf("%w: round i=%d", ErrOutOfDomain, i)
	}
	return 2.0/3.0 + math.Pow(0.25, float64(i-1))*(0.5-2.0/3.0), nil
}

// PsiPMF returns Pr[Ψ_µ = q] = 2^-µ·2^-q·C(µ+q−1, q): the distribution of
// the number of LDs interspersed below the µ-th lowest non-critical ST
// (Step 2 of the Lemma 4.2 proof).
func PsiPMF(mu, q int) (float64, error) {
	if mu < 1 || q < 0 {
		return 0, fmt.Errorf("%w: PsiPMF(µ=%d, q=%d)", ErrOutOfDomain, mu, q)
	}
	return math.Pow(2, -float64(mu)) * math.Pow(2, -float64(q)) *
		combin.Binomial(mu+q-1, q), nil
}

// Claim44Lower returns the lower bound of Claim 4.4:
// Pr[F_µ|Ψ_µ=q] ≥ (2^-(q-1) − 2^-µq) / C(µ+q−1, q).
func Claim44Lower(mu, q int) (float64, error) {
	if mu < 1 || q < 0 {
		return 0, fmt.Errorf("%w: Claim44Lower(µ=%d, q=%d)", ErrOutOfDomain, mu, q)
	}
	if q == 0 {
		// With no interspersed LDs, F_µ holds with certainty.
		return 1, nil
	}
	return (math.Pow(2, -float64(q-1)) - math.Pow(2, -float64(mu*q))) /
		combin.Binomial(mu+q-1, q), nil
}

// Claim44Exact returns the exact value Pr[F_µ|Ψ_µ=q] =
// Σ_{δ=q}^{µq} φ(δ,q,µ)·2^-δ / C(µ+q−1, q), computable because the bounded
// partition numbers φ are exact integers (Step 4 of the proof).
func Claim44Exact(mu, q int) (float64, error) {
	if mu < 1 || q < 0 {
		return 0, fmt.Errorf("%w: Claim44Exact(µ=%d, q=%d)", ErrOutOfDomain, mu, q)
	}
	if q == 0 {
		return 1, nil
	}
	sum := 0.0
	for delta := q; delta <= mu*q; delta++ {
		phi, err := combin.BoundedPartitionsFloat(delta, q, mu)
		if err != nil {
			return 0, err
		}
		sum += phi * math.Pow(2, -float64(delta))
	}
	return sum / combin.Binomial(mu+q-1, q), nil
}

// --- Segment lengths and the §6 join ---

// SegmentMGF returns E[2^-Γ] = Σ_{γ≥0} 2^-(γ+2)·Pr[B_γ] computed from a
// tabulated window PMF, as an interval: the tabulated terms are summed
// exactly, and the untabulated tail mass (1 − pmf.Total(), supported on
// γ > L where L = pmf.Len()−1) contributes between 0 and 2^-(L+3) per unit
// of mass, giving rigorous two-sided bounds.
func SegmentMGF(pmf *dist.PMF) (Interval, error) {
	if pmf == nil {
		return Interval{}, fmt.Errorf("%w: nil PMF", ErrOutOfDomain)
	}
	sum := 0.0
	for gamma := 0; gamma < pmf.Len(); gamma++ {
		sum += math.Pow(2, -float64(gamma+2)) * pmf.At(gamma)
	}
	tail := 1 - pmf.Total()
	if tail < 0 {
		tail = 0
	}
	return Interval{
		Lo: sum,
		Hi: sum + tail*math.Pow(2, -float64(pmf.Len()+1)),
	}, nil
}

// SegmentMGFWO is the exact Weak Ordering value E[2^-Γ] = 7/36 (computed in
// the Theorem 6.2 proof).
const SegmentMGFWO = 7.0 / 36.0

// SegmentMGFSC is the exact Sequential Consistency value E[2^-Γ] = 1/4.
const SegmentMGFSC = 0.25

// SegmentMGFTSO returns the paper's interval for E[2^-Γ] under TSO:
// [1/6 + 3/98, 1/6 + 3/98 + (2/21)·(1/48)] — the lower end comes from
// R(γ) ≥ 0 and the upper end from R(γ) ≤ 2/21 via
// 4·Σ_{t≥3} R(t−2)·4^-t ≤ (2/21)·4·(4^-3)·(4/3).
func SegmentMGFTSO() Interval {
	lo := 1.0/6.0 + 3.0/98.0
	hi := lo + TSORemainderBound*4*math.Pow(4, -3)*(4.0/3.0)
	return Interval{Lo: lo, Hi: hi}
}

// --- Theorem 6.2: two threads ---

// Theorem62SC is Pr[A] under Sequential Consistency for n=2: exactly 1/6.
const Theorem62SC = 1.0 / 6.0

// Theorem62WO is Pr[A] under Weak Ordering for n=2: exactly 7/54.
const Theorem62WO = 7.0 / 54.0

// Theorem62TSO returns the paper's two-sided bound for Pr[A] under TSO at
// n=2: 58/441 < Pr[A] < 58/441 + 1/189 (i.e. 0.1315 < Pr[A] < 0.1369).
func Theorem62TSO() Interval {
	return Interval{Lo: 58.0 / 441.0, Hi: 58.0/441.0 + 1.0/189.0}
}

// TwoThreadPrA converts a segment-MGF interval into the n=2
// non-manifestation probability: Pr[A] = (2/3)·E[2^-Γ] (the Theorem 6.2
// derivation, using c(2) = 8/3 and symmetry of the two identically
// distributed windows).
func TwoThreadPrA(mgf Interval) Interval {
	return Interval{Lo: 2.0 / 3.0 * mgf.Lo, Hi: 2.0 / 3.0 * mgf.Hi}
}

// --- Theorem 6.3: many threads ---

// exactC returns the exact normalization c(n) = 2/Π_{i=1}^{n-1}(1−2^-(n+1-i)).
func exactC(n int) float64 {
	den := 1.0
	for i := 1; i <= n-1; i++ {
		den *= 1 - math.Pow(2, -float64(n+1-i))
	}
	return 2 / den
}

// SCPrA returns the exact Pr[A] under Sequential Consistency for n ≥ 2
// threads: c(n)·2^-C(n+1,2)·n!·2^-2C(n,2) (every window has Γ=2). Computed
// in log space to stay finite for large n.
func SCPrA(n int) (float64, error) {
	if n < 2 {
		return 0, fmt.Errorf("%w: n=%d", ErrOutOfDomain, n)
	}
	logP := math.Log(exactC(n)) -
		float64(n+1)*float64(n)/2*math.Ln2 +
		combin.LogFactorial(n) -
		float64(n)*float64(n-1)*math.Ln2
	return math.Exp(logP), nil
}

// SCLogPrA returns ln Pr[A] under SC directly, usable when Pr[A] itself
// underflows.
func SCLogPrA(n int) (float64, error) {
	if n < 2 {
		return 0, fmt.Errorf("%w: n=%d", ErrOutOfDomain, n)
	}
	return math.Log(exactC(n)) -
		float64(n+1)*float64(n)/2*math.Ln2 +
		combin.LogFactorial(n) -
		float64(n)*float64(n-1)*math.Ln2, nil
}

// AnyModelLogPrALower returns the Theorem 6.3 lower bound on ln Pr[A] valid
// in every memory model: by Claim B.2 every thread's window is minimal
// (Γ=2) with probability ≥ 1/2, so
// Pr[A] ≥ c(n)·2^-C(n+1,2)·n!·2^-2C(n,2)-(n-1).
func AnyModelLogPrALower(n int) (float64, error) {
	scLog, err := SCLogPrA(n)
	if err != nil {
		return 0, err
	}
	return scLog - float64(n-1)*math.Ln2, nil
}

// ClaimB2MinWindowLower is Claim B.2's per-thread bound: in every memory
// model Pr[B_0] ≥ 1/2 (the critical LD fails its first swap with
// probability at least 1/2).
const ClaimB2MinWindowLower = 0.5

// Theorem63Rate returns −ln Pr[A] / n², the normalized decay rate that
// Theorem 6.3 proves converges (to (3/2)·ln2·(1+o(1))) for every model.
func Theorem63Rate(logPrA float64, n int) (float64, error) {
	if n < 2 {
		return 0, fmt.Errorf("%w: n=%d", ErrOutOfDomain, n)
	}
	if logPrA > 0 {
		return 0, fmt.Errorf("%w: logPrA=%v > 0", ErrOutOfDomain, logPrA)
	}
	return -logPrA / float64(n*n), nil
}

// Theorem63AsymptoticRate is the limiting value of −ln Pr[A] / n² under SC
// as proved in Theorem 6.3: (3/2)·ln 2.
var Theorem63AsymptoticRate = 1.5 * math.Ln2
