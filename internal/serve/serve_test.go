package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"memreliability/internal/litmus"
	"memreliability/internal/sweep"
)

// newTestServer starts a Server behind httptest and tears both down with
// the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// post issues a JSON POST and returns the response with its body read.
func post(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// get issues a GET and returns the response with its body read.
func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// metric reads one counter from /metrics.
func metric(t *testing.T, baseURL, name string) float64 {
	t.Helper()
	resp, body := get(t, baseURL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	var m map[string]float64
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("parse metrics %q: %v", body, err)
	}
	v, ok := m[name]
	if !ok {
		t.Fatalf("metrics missing %q in %q", name, body)
	}
	return v
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("body %q", body)
	}
}

func TestEstimateCacheByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := `{"model":"TSO","threads":2,"estimator":"exact","seed":7}`

	resp1, body1 := post(t, ts.URL+"/v1/estimate", req)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first status %d: %s", resp1.StatusCode, body1)
	}
	if got := resp1.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("first X-Cache = %q, want miss", got)
	}

	resp2, body2 := post(t, ts.URL+"/v1/estimate", req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second status %d: %s", resp2.StatusCode, body2)
	}
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("second X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Errorf("bodies differ:\n%s\n%s", body1, body2)
	}

	var out EstimateResponse
	if err := json.Unmarshal(body1, &out); err != nil {
		t.Fatal(err)
	}
	if out.Result.Estimate <= 0 || out.Result.Estimate >= 1 {
		t.Errorf("estimate %v out of (0,1)", out.Result.Estimate)
	}
	// m=64 exceeds the exact-DP cap, so the engine's clamp must show.
	if out.Result.EffectiveM != sweep.ExactPrefixCap {
		t.Errorf("effective_m = %d, want %d", out.Result.EffectiveM, sweep.ExactPrefixCap)
	}
	if hits := metric(t, ts.URL, "cache_hits"); hits < 1 {
		t.Errorf("cache_hits = %v, want ≥ 1", hits)
	}
	if comps := metric(t, ts.URL, "computations"); comps != 1 {
		t.Errorf("computations = %v, want 1", comps)
	}
}

// TestEstimateSingleflight is the acceptance-criteria test: N concurrent
// identical requests must run the estimator exactly once and all receive
// byte-identical bodies.
func TestEstimateSingleflight(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := `{"model":"WO","threads":3,"estimator":"hybrid","trials":20000,"seed":11}`

	const n = 16
	var (
		start  sync.WaitGroup
		done   sync.WaitGroup
		mu     sync.Mutex
		bodies [][]byte
	)
	start.Add(1)
	for i := 0; i < n; i++ {
		done.Add(1)
		go func() {
			defer done.Done()
			start.Wait()
			resp, body := post(t, ts.URL+"/v1/estimate", req)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status %d: %s", resp.StatusCode, body)
				return
			}
			mu.Lock()
			bodies = append(bodies, body)
			mu.Unlock()
		}()
	}
	start.Done()
	done.Wait()

	if len(bodies) != n {
		t.Fatalf("got %d bodies, want %d", len(bodies), n)
	}
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("body %d differs:\n%s\n%s", i, bodies[0], bodies[i])
		}
	}
	if comps := metric(t, ts.URL, "computations"); comps != 1 {
		t.Errorf("computations = %v, want 1 (singleflight + cache)", comps)
	}
}

func TestEstimateCaseVariantRequestsShareCache(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp1, body1 := post(t, ts.URL+"/v1/estimate", `{"model":"TSO","threads":2,"estimator":"exact","seed":7}`)
	resp2, body2 := post(t, ts.URL+"/v1/estimate", `{"model":"tso","threads":2,"estimator":"EXACT","seed":7}`)
	if resp1.StatusCode != http.StatusOK || resp2.StatusCode != http.StatusOK {
		t.Fatalf("statuses %d, %d", resp1.StatusCode, resp2.StatusCode)
	}
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("case-variant request X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Errorf("case-variant bodies differ:\n%s\n%s", body1, body2)
	}
}

func TestSweepJobCaseVariantSpecsShareID(t *testing.T) {
	lower := smallSpec(4)
	lower.Models = []string{"sc", "tso"}
	upper := smallSpec(4)
	idLower, err := jobID(lower.Normalized())
	if err != nil {
		t.Fatal(err)
	}
	idUpper, err := jobID(upper.Normalized())
	if err != nil {
		t.Fatal(err)
	}
	if idLower != idUpper {
		t.Errorf("model-name casing changed job identity: %s vs %s", idLower, idUpper)
	}
}

func TestEstimateBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tc := range []struct {
		name, body string
	}{
		{"unknown model", `{"model":"ARM"}`},
		{"missing model", `{}`},
		{"unknown estimator", `{"model":"SC","estimator":"oracle"}`},
		{"windowdist routed here", `{"model":"SC","estimator":"windowdist"}`},
		{"unknown field", `{"model":"SC","bogus":1}`},
		{"threads too small", `{"model":"SC","threads":1}`},
		{"exact needs n=2", `{"model":"SC","threads":4,"estimator":"exact"}`},
		{"zero trials for mc", `{"model":"SC","estimator":"mc","trials":0}`},
		{"not json", `model=SC`},
	} {
		resp, body := post(t, ts.URL+"/v1/estimate", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, resp.StatusCode, body)
		}
		if !strings.Contains(string(body), `"error"`) {
			t.Errorf("%s: no error envelope: %s", tc.name, body)
		}
	}
}

func TestWindowDistClampMatchesEngine(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// An oversized prefix must clamp to the exact-DP cap, identically to
	// a direct request at the cap.
	resp, big := post(t, ts.URL+"/v1/windowdist", `{"model":"WO","prefix_len":64,"max_gamma":6}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, big)
	}
	var out WindowDistResponse
	if err := json.Unmarshal(big, &out); err != nil {
		t.Fatal(err)
	}
	if out.Result.EffectiveM != sweep.ExactPrefixCap {
		t.Errorf("effective_m = %d, want %d", out.Result.EffectiveM, sweep.ExactPrefixCap)
	}
	if !strings.Contains(out.Result.Note, "clamped") {
		t.Errorf("note %q does not record the clamp", out.Result.Note)
	}
	if len(out.Result.Dist) != 7 {
		t.Fatalf("dist has %d entries, want 7", len(out.Result.Dist))
	}

	resp, capped := post(t, ts.URL+"/v1/windowdist",
		fmt.Sprintf(`{"model":"WO","prefix_len":%d,"max_gamma":6}`, sweep.ExactPrefixCap))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, capped)
	}
	var ref WindowDistResponse
	if err := json.Unmarshal(capped, &ref); err != nil {
		t.Fatal(err)
	}
	for i := range ref.Result.Dist {
		if out.Result.Dist[i] != ref.Result.Dist[i] {
			t.Errorf("dist[%d] = %v, want %v", i, out.Result.Dist[i], ref.Result.Dist[i])
		}
	}
}

func TestLitmusEndpointSharedEncoding(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := get(t, ts.URL+"/v1/litmus")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	var results []struct {
		Test     string `json:"test"`
		Model    string `json:"model"`
		Conforms bool   `json:"conforms"`
	}
	if err := json.Unmarshal(body, &results); err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no results")
	}
	for _, r := range results {
		if !r.Conforms {
			t.Errorf("%s under %s does not conform", r.Test, r.Model)
		}
	}

	// The endpoint's bytes must equal the shared litmus encoding that
	// cmd/litmusrun -json also emits.
	all, err := litmus.CheckAll()
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := litmus.EncodeResultsJSON(&want, all); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want.Bytes()) {
		t.Error("endpoint bytes differ from litmus.EncodeResultsJSON")
	}
}

func TestSweepJobLifecycle(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	spec := `{"models":["SC","TSO"],"threads":[2],"estimators":["exact"],"seed":3}`

	resp, body := post(t, ts.URL+"/v1/sweeps", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, body)
	}
	var status JobStatus
	if err := json.Unmarshal(body, &status); err != nil {
		t.Fatal(err)
	}
	if status.ID == "" || status.ArtifactVersion != sweep.ArtifactVersion {
		t.Fatalf("bad submit status: %+v", status)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/sweeps/"+status.ID {
		t.Errorf("Location = %q", loc)
	}

	// Resubmitting the identical spec must dedup onto the same job.
	resp, body = post(t, ts.URL+"/v1/sweeps", spec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resubmit status %d: %s", resp.StatusCode, body)
	}
	var dup JobStatus
	if err := json.Unmarshal(body, &dup); err != nil {
		t.Fatal(err)
	}
	if dup.ID != status.ID {
		t.Fatalf("resubmit job %q, want %q", dup.ID, status.ID)
	}

	deadline := time.After(30 * time.Second)
	for status.State != StateDone {
		select {
		case <-deadline:
			t.Fatalf("job stuck in state %q", status.State)
		case <-time.After(10 * time.Millisecond):
		}
		resp, body = get(t, ts.URL+"/v1/sweeps/"+status.ID)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll status %d: %s", resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &status); err != nil {
			t.Fatal(err)
		}
		if status.State == StateFailed || status.State == StateCanceled {
			t.Fatalf("job failed: %+v", status)
		}
	}
	if status.CellsDone != status.CellsTotal || status.CellsTotal != 2 {
		t.Errorf("cells %d/%d, want 2/2", status.CellsDone, status.CellsTotal)
	}
	if status.ArtifactPath == "" {
		t.Fatal("done job has no artifact path")
	}

	resp, body = get(t, ts.URL+status.ArtifactPath)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("artifact status %d: %s", resp.StatusCode, body)
	}
	art, err := sweep.DecodeArtifact(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if len(art.Cells) != 2 {
		t.Fatalf("artifact has %d cells, want 2", len(art.Cells))
	}

	// The served artifact must be byte-identical to a direct engine run
	// of the same spec — the service adds caching, not new semantics.
	direct, err := sweep.Run(t.Context(), sweep.Spec{
		Models: []string{"SC", "TSO"}, Threads: []int{2},
		Estimators: []sweep.Kind{sweep.Exact}, Seed: 3,
		StoreProb: 0.5, SwapProb: 0.5, MaxGamma: 8,
	}, sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := direct.EncodeJSON(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want.Bytes()) {
		t.Error("served artifact differs from direct sweep.Run artifact")
	}
	_ = srv
}

func TestSweepJobErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, body := post(t, ts.URL+"/v1/sweeps", `{"models":["ARM"]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad spec status %d: %s", resp.StatusCode, body)
	}
	resp, body = get(t, ts.URL+"/v1/sweeps/deadbeef")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status %d: %s", resp.StatusCode, body)
	}
	resp, body = get(t, ts.URL+"/v1/sweeps/deadbeef/artifact")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown artifact status %d: %s", resp.StatusCode, body)
	}
}

func TestSweepArtifactBeforeDone(t *testing.T) {
	_, ts := newTestServer(t, Config{SweepWorkers: 1})
	// A heavy job keeps the single worker busy; the next job stays
	// queued, so its artifact cannot be ready.
	post(t, ts.URL+"/v1/sweeps", `{"models":["SC","TSO","PSO","WO"],"threads":[4,6],"estimators":["hybrid"],"trials":400000,"seed":1}`)
	resp, body := post(t, ts.URL+"/v1/sweeps", `{"models":["SC"],"estimators":["exact"],"seed":9}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, body)
	}
	var status JobStatus
	if err := json.Unmarshal(body, &status); err != nil {
		t.Fatal(err)
	}
	resp, body = get(t, ts.URL+"/v1/sweeps/"+status.ID+"/artifact")
	if resp.StatusCode != http.StatusConflict && resp.StatusCode != http.StatusOK {
		t.Fatalf("artifact status %d: %s", resp.StatusCode, body)
	}

	resp, body = get(t, ts.URL+"/v1/sweeps")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list status %d", resp.StatusCode)
	}
	var list struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 2 {
		t.Errorf("listed %d jobs, want 2", len(list.Jobs))
	}
}

// TestGracefulShutdownUnderLoad closes the server while estimate traffic
// and sweep jobs are in flight: Close must return, every outstanding
// request must complete with 200 or 503, and every job must reach a
// terminal state.
func TestGracefulShutdownUnderLoad(t *testing.T) {
	srv, err := New(Config{EstimateWorkers: 2, SweepWorkers: 1, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// A long-running sweep job plus queued followers.
	post(t, ts.URL+"/v1/sweeps", `{"models":["SC","TSO","PSO","WO"],"threads":[4,6,8],"estimators":["hybrid"],"trials":500000,"seed":2}`)
	post(t, ts.URL+"/v1/sweeps", `{"models":["SC"],"threads":[2],"estimators":["exact"],"seed":77}`)

	const loaders = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < loaders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for seq := 0; ; seq++ {
				select {
				case <-stop:
					return
				default:
				}
				// Distinct seeds bust the cache so real computations are
				// in flight at shutdown.
				body := fmt.Sprintf(`{"model":"WO","threads":3,"estimator":"hybrid","trials":100000,"seed":%d}`, i*100000+seq)
				resp, data := post(t, ts.URL+"/v1/estimate", body)
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
					t.Errorf("status %d under shutdown: %s", resp.StatusCode, data)
					return
				}
			}
		}(i)
	}

	time.Sleep(50 * time.Millisecond)
	closed := make(chan struct{})
	go func() {
		srv.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(30 * time.Second):
		t.Fatal("Close did not return under load")
	}
	close(stop)
	wg.Wait()

	// After shutdown: new computations are refused, cached bodies still
	// serve, and all jobs are terminal.
	resp, data := post(t, ts.URL+"/v1/estimate", `{"model":"SC","threads":2,"estimator":"exact","seed":424242}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-shutdown estimate status %d: %s", resp.StatusCode, data)
	}
	resp, data = get(t, ts.URL+"/v1/sweeps")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list status %d", resp.StatusCode)
	}
	var list struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if err := json.Unmarshal(data, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) == 0 {
		t.Fatal("no jobs listed")
	}
	for _, j := range list.Jobs {
		switch j.State {
		case StateDone, StateFailed, StateCanceled:
		default:
			t.Errorf("job %s left in state %q", j.ID, j.State)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{CacheSize: -1}); err == nil {
		t.Error("negative cache size accepted")
	}
	if _, err := New(Config{SweepWorkers: -2}); err == nil {
		t.Error("negative sweep workers accepted")
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, _ := get(t, ts.URL+"/v1/estimate")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/estimate status %d, want 405", resp.StatusCode)
	}
}
