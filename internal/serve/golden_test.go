package serve

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"memreliability/internal/estimator"
	"memreliability/internal/memmodel"
	"memreliability/internal/sweep"
)

// goldenCases pin the API's success bodies. The testdata files were
// captured from the pre-registry service (which routed every request
// through a single-cell sweep.Run), so these tests prove the estimator
// registry redesign left the wire contract byte-identical: same request,
// same bytes — estimates, intervals, clamp notes, request echo, field
// order, everything.
var goldenCases = []struct {
	file, path, body string
}{
	{"golden_estimate_exact.json", "/v1/estimate", `{"model":"TSO","threads":2,"estimator":"exact","seed":7}`},
	{"golden_estimate_mc.json", "/v1/estimate", `{"model":"SC","threads":2,"prefix_len":12,"estimator":"mc","trials":5000,"seed":3}`},
	{"golden_estimate_hybrid.json", "/v1/estimate", `{"model":"WO","threads":3,"prefix_len":24,"estimator":"hybrid","trials":4000,"seed":11}`},
	{"golden_estimate_defaults.json", "/v1/estimate", `{"model":"PSO","trials":2000}`},
	{"golden_windowdist.json", "/v1/windowdist", `{"model":"WO","prefix_len":12,"max_gamma":6}`},
	{"golden_windowdist_clamp.json", "/v1/windowdist", `{"model":"tso","prefix_len":64,"max_gamma":4,"store_prob":0.25}`},
}

func TestGoldenResponseBodies(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tc := range goldenCases {
		resp, data := post(t, ts.URL+tc.path, tc.body)
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status %d: %s", tc.file, resp.StatusCode, data)
		}
		want, err := os.ReadFile(filepath.Join("testdata", tc.file))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, want) {
			t.Errorf("%s: body diverged from pre-redesign golden\ngot:\n%s\nwant:\n%s", tc.file, data, want)
		}
	}
}

// TestEndpointsMatchDirectEstimate proves the HTTP surface is a pure
// adapter: every golden request's result equals a direct
// estimator.Estimate of the equivalent Query.
func TestEndpointsMatchDirectEstimate(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tc := range goldenCases {
		resp, data := post(t, ts.URL+tc.path, tc.body)
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status %d: %s", tc.file, resp.StatusCode, data)
		}
		var out struct {
			Result json.RawMessage `json:"result"`
		}
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatal(err)
		}

		var query estimator.Query
		switch tc.path {
		case "/v1/estimate":
			req := defaultEstimateRequest()
			if err := json.Unmarshal([]byte(tc.body), &req); err != nil {
				t.Fatal(err)
			}
			query = req.query()
		case "/v1/windowdist":
			req := defaultWindowDistRequest()
			if err := json.Unmarshal([]byte(tc.body), &req); err != nil {
				t.Fatal(err)
			}
			query = req.query()
		}
		direct, err := estimator.Estimate(t.Context(), query)
		if err != nil {
			t.Fatalf("%s: direct estimate: %v", tc.file, err)
		}

		var served struct {
			Estimate    float64   `json:"estimate"`
			LogEstimate float64   `json:"log_estimate"`
			Lo          float64   `json:"lo"`
			Hi          float64   `json:"hi"`
			StdErr      float64   `json:"std_err"`
			EffectiveM  int       `json:"effective_m"`
			Dist        []float64 `json:"dist"`
		}
		if err := json.Unmarshal(out.Result, &served); err != nil {
			t.Fatal(err)
		}
		if served.Estimate != direct.Estimate || served.LogEstimate != direct.LogEstimate ||
			served.Lo != direct.Lo || served.Hi != direct.Hi ||
			served.StdErr != direct.StdErr || served.EffectiveM != direct.EffectiveM {
			t.Errorf("%s: served result %+v differs from direct estimate %+v", tc.file, served, direct)
		}
		if len(served.Dist) != len(direct.Dist) {
			t.Fatalf("%s: dist length %d vs %d", tc.file, len(served.Dist), len(direct.Dist))
		}
		for i := range served.Dist {
			if served.Dist[i] != direct.Dist[i] {
				t.Errorf("%s: dist[%d] = %v, want %v", tc.file, i, served.Dist[i], direct.Dist[i])
			}
		}
	}
}

// TestEstimateConfidenceLevel covers the new optional confidence knob:
// an explicit level must change the Wilson interval, echo back in the
// request, and get its own cache entry.
func TestEstimateConfidenceLevel(t *testing.T) {
	srv, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	base := `{"model":"SC","threads":2,"prefix_len":12,"estimator":"mc","trials":5000,"seed":3}`
	narrow := `{"model":"SC","threads":2,"prefix_len":12,"estimator":"mc","trials":5000,"seed":3,"confidence":0.5}`

	resp, defBody := post(t, ts.URL+"/v1/estimate", base)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, defBody)
	}
	resp, narrowBody := post(t, ts.URL+"/v1/estimate", narrow)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, narrowBody)
	}
	if resp.Header.Get("X-Cache") != "miss" {
		t.Errorf("confidence-variant request X-Cache = %q, want miss (distinct cache entry)", resp.Header.Get("X-Cache"))
	}

	var def, nar EstimateResponse
	if err := json.Unmarshal(defBody, &def); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(narrowBody, &nar); err != nil {
		t.Fatal(err)
	}
	if nar.Request.Confidence != 0.5 {
		t.Errorf("confidence echo = %v, want 0.5", nar.Request.Confidence)
	}
	if def.Request.Confidence != 0 {
		t.Errorf("default confidence echo = %v, want omitted (0)", def.Request.Confidence)
	}
	// The result cell records the non-default level (and elides the
	// default), so its interval can never be mislabeled downstream.
	if nar.Result.Confidence != 0.5 {
		t.Errorf("result confidence = %v, want 0.5", nar.Result.Confidence)
	}
	if def.Result.Confidence != 0 {
		t.Errorf("default result confidence = %v, want omitted (0)", def.Result.Confidence)
	}
	if got := nar.Result.Notes(); !strings.Contains(got, "50% CI") {
		t.Errorf("notes %q do not label the 50%% interval", got)
	}
	if got := def.Result.Notes(); !strings.Contains(got, "99% CI") {
		t.Errorf("notes %q do not label the default 99%% interval", got)
	}
	if def.Result.Estimate != nar.Result.Estimate {
		t.Errorf("point estimate changed with confidence: %v vs %v", def.Result.Estimate, nar.Result.Estimate)
	}
	defWidth := def.Result.Hi - def.Result.Lo
	narWidth := nar.Result.Hi - nar.Result.Lo
	if narWidth >= defWidth {
		t.Errorf("50%% interval width %v not narrower than 99%% width %v", narWidth, defWidth)
	}

	resp, _ = post(t, ts.URL+"/v1/estimate", `{"model":"SC","estimator":"mc","trials":100,"confidence":1.5}`)
	if resp.StatusCode != 400 {
		t.Errorf("confidence 1.5 status %d, want 400", resp.StatusCode)
	}
}

// TestRegistryCompleteness pins the cross-surface contract: every
// registered estimator kind is a sweepable kind, every sweep kind
// resolves in the registry, and the HTTP surface accepts exactly the
// registered kinds (windowdist on its own endpoint).
func TestRegistryCompleteness(t *testing.T) {
	kinds := estimator.Kinds()
	if len(kinds) == 0 {
		t.Fatal("empty registry")
	}
	for _, k := range kinds {
		if _, ok := estimator.Lookup(k); !ok {
			t.Errorf("Kinds lists %q but Lookup cannot resolve it", k)
		}
	}

	// Sweep and registry expose the same kind set, and a spec naming any
	// registered kind passes sweep validation.
	sweepKinds := sweep.Kinds()
	if len(sweepKinds) != len(kinds) {
		t.Fatalf("sweep.Kinds() = %v, estimator.Kinds() = %v", sweepKinds, kinds)
	}
	for i, k := range kinds {
		if sweepKinds[i] != k {
			t.Errorf("sweep kind %d = %q, estimator kind %q", i, sweepKinds[i], k)
		}
		spec := sweep.DefaultSpec()
		spec.Models = []string{"SC"}
		spec.Estimators = []sweep.Kind{k}
		spec.Trials = 1
		if err := spec.Normalized().Validate(); err != nil {
			t.Errorf("registered kind %q fails sweep validation: %v", k, err)
		}
	}

	_, ts := newTestServer(t, Config{})
	for _, k := range kinds {
		var path, body string
		if k == estimator.WindowDist {
			path, body = "/v1/windowdist", `{"model":"SC","prefix_len":8,"max_gamma":4}`
		} else {
			path, body = "/v1/estimate",
				`{"model":"SC","threads":2,"prefix_len":8,"estimator":"`+string(k)+`","trials":50,"seed":1}`
		}
		resp, data := post(t, ts.URL+path, body)
		if resp.StatusCode != 200 {
			t.Errorf("registered kind %q rejected by %s: status %d: %s", k, path, resp.StatusCode, data)
		}
	}

	// The reverse direction: a kind the registry does not know must be
	// rejected, not silently skipped.
	resp, _ := post(t, ts.URL+"/v1/estimate", `{"model":"SC","estimator":"oracle"}`)
	if resp.StatusCode != 400 {
		t.Errorf("unregistered kind accepted: status %d", resp.StatusCode)
	}

	// The model registry mirrors the kind registry's contract: every
	// registered model — canonical four and variants alike — is
	// sweepable and accepted by every HTTP endpoint, with no
	// per-surface model lists anywhere.
	models := memmodel.Registered()
	if len(models) < 6 {
		t.Fatalf("model registry has %d models, want ≥ 6 (canonical four + RMO + LRO)", len(models))
	}
	for _, m := range models {
		spec := sweep.DefaultSpec()
		spec.Models = []string{m.Name()}
		spec.Trials = 1
		if err := spec.Normalized().Validate(); err != nil {
			t.Errorf("registered model %q fails sweep validation: %v", m.Name(), err)
		}
		resp, data := post(t, ts.URL+"/v1/estimate",
			`{"model":"`+m.Name()+`","threads":2,"prefix_len":8,"estimator":"mc","trials":50,"seed":1}`)
		if resp.StatusCode != 200 {
			t.Errorf("registered model %q rejected by /v1/estimate: status %d: %s", m.Name(), resp.StatusCode, data)
		}
		resp, data = post(t, ts.URL+"/v1/windowdist",
			`{"model":"`+m.Name()+`","prefix_len":8,"max_gamma":4}`)
		if resp.StatusCode != 200 {
			t.Errorf("registered model %q rejected by /v1/windowdist: status %d: %s", m.Name(), resp.StatusCode, data)
		}
	}
	resp, _ = post(t, ts.URL+"/v1/estimate", `{"model":"NOPE","threads":2,"prefix_len":8,"estimator":"mc","trials":50,"seed":1}`)
	if resp.StatusCode != 400 {
		t.Errorf("unregistered model accepted: status %d", resp.StatusCode)
	}
}
