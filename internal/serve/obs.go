package serve

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"

	"memreliability/internal/obs"
)

// routePatterns are the mux patterns the server registers, duplicated
// here as the label space of the per-endpoint metrics so every route's
// series exists (at zero) from the first scrape. A request that matches
// no pattern lands on the routeUnmatched series.
var routePatterns = []string{
	"GET /healthz",
	"GET /metrics",
	"GET /metrics/prom",
	"GET /v1/litmus",
	"POST /v1/estimate",
	"POST /v1/windowdist",
	"POST /v1/sweeps",
	"GET /v1/sweeps",
	"GET /v1/sweeps/{id}",
	"GET /v1/sweeps/{id}/artifact",
}

const routeUnmatched = "unmatched"

// routeMetrics is one route's instrumentation bundle.
type routeMetrics struct {
	requests *obs.Counter
	latency  *obs.Histogram
	cache    map[string]*obs.Counter // X-Cache state → events counter
}

// serveObs is the server's observability state: a per-server metrics
// registry (so independent servers — and tests — never collide, exactly
// like the expvar set), the pre-resolved per-route handles, and the
// request-ID generator.
type serveObs struct {
	reg        *obs.Registry
	routes     map[string]*routeMetrics
	queueDepth *obs.Gauge

	idPrefix  string
	idCounter atomic.Uint64
}

// newServeObs builds the registry and pre-registers every route's
// series. The ID prefix is fresh entropy per server start (crypto/rand,
// never the experiment RNG), so request IDs from restarts never collide
// in aggregated logs.
func newServeObs() *serveObs {
	o := &serveObs{
		reg:    obs.NewRegistry(),
		routes: make(map[string]*routeMetrics, len(routePatterns)+1),
	}
	var nonce [4]byte
	if _, err := rand.Read(nonce[:]); err == nil {
		o.idPrefix = hex.EncodeToString(nonce[:])
	} else {
		o.idPrefix = "00000000"
	}
	for _, pattern := range append(append([]string(nil), routePatterns...), routeUnmatched) {
		label := obs.L("route", pattern)
		rm := &routeMetrics{
			requests: o.reg.Counter("serve_requests_total",
				"HTTP requests served, by route pattern.", label),
			latency: o.reg.Histogram("serve_request_seconds",
				"HTTP request latency, by route pattern.", obs.LatencyBuckets(), label),
			cache: make(map[string]*obs.Counter, 4),
		}
		for _, state := range []string{"hit", "miss", "dedup", "disk"} {
			rm.cache[state] = o.reg.Counter("serve_cache_events_total",
				"Cache outcomes on successfully written responses, by route and state.",
				label, obs.L("state", state))
		}
		o.routes[pattern] = rm
	}
	o.queueDepth = o.reg.Gauge("serve_job_queue_depth",
		"Sweep jobs queued and not yet picked up by a worker.")
	return o
}

// route resolves a mux pattern to its metrics bundle ("" and unknown
// patterns map to the unmatched series).
func (o *serveObs) route(pattern string) *routeMetrics {
	if rm, ok := o.routes[pattern]; ok {
		return rm
	}
	return o.routes[routeUnmatched]
}

// cacheEvent counts one successfully written cache outcome.
func (rm *routeMetrics) cacheEvent(state string) {
	if c, ok := rm.cache[state]; ok {
		c.Inc()
	}
}

// requestID returns the sanitized client-provided ID, or a generated
// one. Propagated IDs are capped and restricted to a safe charset so a
// hostile header cannot smuggle log-breaking bytes.
func (o *serveObs) requestID(fromHeader string) string {
	if id := sanitizeRequestID(fromHeader); id != "" {
		return id
	}
	return fmt.Sprintf("%s-%06d", o.idPrefix, o.idCounter.Add(1))
}

// sanitizeRequestID keeps [A-Za-z0-9._-] up to 64 bytes; anything else
// voids the whole ID (a partial ID would be worse than a fresh one).
func sanitizeRequestID(id string) string {
	if id == "" || len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return ""
		}
	}
	return id
}

// statusRecorder passes writes through while capturing the status code
// and the first body-write error, so the middleware can log the status
// and the cache pipeline can refuse to count a response the client
// never received.
type statusRecorder struct {
	http.ResponseWriter
	status   int
	writeErr error
}

func (rw *statusRecorder) WriteHeader(code int) {
	if rw.status == 0 {
		rw.status = code
	}
	rw.ResponseWriter.WriteHeader(code)
}

func (rw *statusRecorder) Write(b []byte) (int, error) {
	if rw.status == 0 {
		rw.status = http.StatusOK
	}
	n, err := rw.ResponseWriter.Write(b)
	if err != nil && rw.writeErr == nil {
		rw.writeErr = err
	}
	return n, err
}

// traceRecorder buffers the handler's body instead of writing it, so an
// X-Trace request can be answered with a wrapper that carries the trace
// alongside the byte-for-byte original body. Headers pass through to
// the real response (the embedded writer's Header map), keeping X-Cache
// and Content-Type observable.
type traceRecorder struct {
	http.ResponseWriter
	status int
	buf    bytes.Buffer
}

func (tw *traceRecorder) WriteHeader(code int) {
	if tw.status == 0 {
		tw.status = code
	}
}

func (tw *traceRecorder) Write(b []byte) (int, error) {
	if tw.status == 0 {
		tw.status = http.StatusOK
	}
	return tw.buf.Write(b)
}

// traceEnvelope is the X-Trace response wrapper: the request's span
// tree plus the untouched original response. JSON bodies embed verbatim
// (the cached bytes are not re-encoded); non-JSON bodies (e.g.
// /metrics/prom text) ship as a JSON string.
type traceEnvelope struct {
	Trace    obs.SpanJSON    `json:"trace"`
	Response json.RawMessage `json:"response,omitempty"`
	Body     string          `json:"body,omitempty"`
}

// writeTraced flushes a buffered traced response: the recorded status,
// then the envelope.
func writeTraced(w http.ResponseWriter, tw *traceRecorder, root *obs.Span) {
	env := traceEnvelope{Trace: root.Export()}
	body := tw.buf.Bytes()
	if ct := w.Header().Get("Content-Type"); strings.HasPrefix(ct, "application/json") && json.Valid(body) {
		env.Response = json.RawMessage(body)
	} else {
		env.Body = string(body)
	}
	out, err := json.MarshalIndent(env, "", "  ")
	if err != nil {
		http.Error(w, `{"error":"encode trace envelope"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	status := tw.status
	if status == 0 {
		status = http.StatusOK
	}
	w.WriteHeader(status)
	w.Write(append(out, '\n'))
}
