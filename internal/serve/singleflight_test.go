package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestFlightGroupDedups(t *testing.T) {
	g := newFlightGroup()
	var calls atomic.Int64
	gate := make(chan struct{})
	started := make(chan struct{})

	const n = 10
	var wg sync.WaitGroup
	sharedCount := atomic.Int64{}
	do := func() {
		defer wg.Done()
		val, err, shared := g.Do("k", func() ([]byte, error) {
			calls.Add(1)
			close(started)
			<-gate
			return []byte("v"), nil
		})
		if err != nil || string(val) != "v" {
			t.Errorf("Do = %q, %v", val, err)
		}
		if shared {
			sharedCount.Add(1)
		}
	}

	// The leader registers the key and blocks on the gate; only then are
	// the followers spawned, so each one finds the in-flight call.
	wg.Add(1)
	go do()
	<-started
	for i := 1; i < n; i++ {
		wg.Add(1)
		go do()
	}
	time.Sleep(10 * time.Millisecond) // let the followers reach Do
	close(gate)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Errorf("fn ran %d times, want 1", got)
	}
	if sharedCount.Load() != n-1 {
		t.Errorf("shared = %d, want %d", sharedCount.Load(), n-1)
	}
}

func TestFlightGroupErrorNotRetained(t *testing.T) {
	g := newFlightGroup()
	wantErr := errors.New("boom")
	_, err, _ := g.Do("k", func() ([]byte, error) { return nil, wantErr })
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v", err)
	}
	// A failed call must not poison later ones.
	val, err, _ := g.Do("k", func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || string(val) != "ok" {
		t.Fatalf("retry = %q, %v", val, err)
	}
}

func TestFlightGroupLeaderPanicDoesNotWedgeKey(t *testing.T) {
	g := newFlightGroup()

	func() {
		defer func() { recover() }()
		g.Do("k", func() ([]byte, error) { panic("boom") })
	}()

	// The key must be free again: a follower from before the panic would
	// have gotten errFlightPanic, and a new call must run normally.
	done := make(chan struct{})
	go func() {
		defer close(done)
		val, err, _ := g.Do("k", func() ([]byte, error) { return []byte("ok"), nil })
		if err != nil || string(val) != "ok" {
			t.Errorf("post-panic Do = %q, %v", val, err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("key wedged after leader panic")
	}
}

func TestFlightGroupDistinctKeys(t *testing.T) {
	g := newFlightGroup()
	var calls atomic.Int64
	var wg sync.WaitGroup
	for _, key := range []string{"a", "b"} {
		wg.Add(1)
		go func(key string) {
			defer wg.Done()
			g.Do(key, func() ([]byte, error) {
				calls.Add(1)
				return []byte(key), nil
			})
		}(key)
	}
	wg.Wait()
	if calls.Load() != 2 {
		t.Errorf("fn ran %d times, want 2 (distinct keys must not share)", calls.Load())
	}
}
