package serve

import (
	"errors"
	"sync"
)

// errFlightPanic is what followers observe when the leader's fn panicked
// instead of returning: the panic itself propagates on the leader's
// goroutine (net/http recovers it), so followers need a distinct error.
var errFlightPanic = errors.New("serve: in-flight computation panicked")

// flightGroup deduplicates concurrent work by key: while one caller (the
// leader) computes the value for a key, every other caller arriving with
// the same key blocks and shares the leader's result instead of
// recomputing it. The standard library has no singleflight and the module
// vendors no dependencies, so this is a minimal local implementation.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

// flightCall is one in-flight computation.
type flightCall struct {
	done chan struct{}
	val  []byte
	err  error
}

// newFlightGroup returns an empty group.
func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// Do executes fn once per key among concurrent callers. The leader runs
// fn; followers block until it finishes and receive the same value and
// error, with shared=true. Results are not retained after the call
// completes — lasting memoization is the cache's job, not the group's.
func (g *flightGroup) Do(key string, fn func() ([]byte, error)) (val []byte, err error, shared bool) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.val, c.err, true
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	// Unregister and release followers even if fn panics (the HTTP layer
	// recovers handler panics, so a wedged key would otherwise outlive
	// the request that caused it).
	finished := false
	defer func() {
		if !finished {
			c.err = errFlightPanic
		}
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
		close(c.done)
	}()
	c.val, c.err = fn()
	finished = true
	return c.val, c.err, false
}
