package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"sync"

	"memreliability/internal/obs"
	"memreliability/internal/sweep"
)

// Job states. A job is terminal in StateDone, StateFailed, or
// StateCanceled.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// ErrBusy reports a full sweep-job queue.
var ErrBusy = errors.New("serve: sweep queue full")

// ErrShuttingDown reports a server that no longer accepts work.
var ErrShuttingDown = errors.New("serve: shutting down")

// ErrUnknownJob reports a job ID not in the store.
var ErrUnknownJob = errors.New("serve: unknown job")

// JobStatus is the client-visible state of one async sweep job. IDs are
// content-addressed (a hash of the normalized spec, minus the worker
// budget), so resubmitting an identical spec lands on the same retained
// job — the store deduplicates sweeps exactly as the cache deduplicates
// estimates, for as long as the record survives the store's MaxJobs
// eviction.
type JobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// CellsTotal and CellsDone report grid progress.
	CellsTotal int `json:"cells_total"`
	CellsDone  int `json:"cells_done"`
	// Error is the failure message of a failed job.
	Error string `json:"error,omitempty"`
	// ArtifactVersion is the schema version the finished artifact is
	// encoded with (the /v1/sweeps artifact contract).
	ArtifactVersion int `json:"artifact_version"`
	// ArtifactPath is the fetch path for the finished artifact; set only
	// once the job is done.
	ArtifactPath string `json:"artifact_path,omitempty"`
}

// jobRecord is one stored job. Mutable fields are guarded by the owning
// store's mutex.
type jobRecord struct {
	id         string
	spec       sweep.Spec // normalized, Workers zeroed
	state      string
	errMsg     string
	cellsTotal int
	cellsDone  int
	artifact   []byte // deterministic EncodeJSON bytes, set when done
}

// jobStore queues async sweep jobs behind a bounded worker pool, separate
// from the estimate path so long sweeps cannot starve cheap requests.
// The store holds at most maxJobs records: once full, each new
// submission evicts the oldest terminal job (with its retained artifact)
// — and is refused with ErrBusy when every record is still queued or
// running, so a long-running daemon's memory stays bounded.
// sweepRunner is the engine a job store executes sweeps on. The default
// is the in-process sweep.Run; coordinator mode substitutes the
// distributed cluster engine. Byte-identity is the contract either way.
type sweepRunner func(ctx context.Context, spec sweep.Spec, opts sweep.Options) (*sweep.Artifact, error)

type jobStore struct {
	workers     int
	cellWorkers int
	maxJobs     int
	runner      sweepRunner

	mu    sync.Mutex
	jobs  map[string]*jobRecord
	order []string // insertion order, oldest first, for eviction

	queue chan *jobRecord
	depth *obs.Gauge // queued-not-yet-running jobs
	wg    sync.WaitGroup
}

// newJobStore starts workers goroutines consuming the job queue. ctx
// bounds every job's compute; cancel it (and then drainAndWait) to shut
// the store down. depth is the queue-depth gauge, updated at every
// enqueue and pickup. A nil runner selects the in-process sweep engine.
func newJobStore(ctx context.Context, workers, cellWorkers, queueDepth, maxJobs int, depth *obs.Gauge, runner sweepRunner) *jobStore {
	if runner == nil {
		runner = sweep.Run
	}
	st := &jobStore{
		workers:     workers,
		cellWorkers: cellWorkers,
		maxJobs:     maxJobs,
		runner:      runner,
		jobs:        make(map[string]*jobRecord),
		queue:       make(chan *jobRecord, queueDepth),
		depth:       depth,
	}
	for i := 0; i < workers; i++ {
		st.wg.Add(1)
		go func() {
			defer st.wg.Done()
			for {
				select {
				case <-ctx.Done():
					return
				case j := <-st.queue:
					st.depth.Set(float64(len(st.queue)))
					st.run(ctx, j)
				}
			}
		}()
	}
	return st
}

// jobID derives the content address of a spec: the hash of its normalized
// JSON encoding with the worker budget zeroed, mirroring the artifact's
// spec echo — scheduling must not change a job's identity.
func jobID(norm sweep.Spec) (string, error) {
	canon := norm
	canon.Workers = 0
	data, err := json.Marshal(canon)
	if err != nil {
		return "", fmt.Errorf("serve: encode spec: %w", err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:8]), nil
}

// Submit normalizes and validates the spec, then either enqueues a new
// job or returns the existing one with the same content address.
func (st *jobStore) Submit(ctx context.Context, spec sweep.Spec) (JobStatus, bool, error) {
	norm := spec.Normalized()
	if err := norm.Validate(); err != nil {
		return JobStatus{}, false, err
	}
	norm.Workers = 0
	id, err := jobID(norm)
	if err != nil {
		return JobStatus{}, false, err
	}

	st.mu.Lock()
	defer st.mu.Unlock()
	if j, ok := st.jobs[id]; ok {
		// The ID is a truncated hash; dedup only on a genuine spec
		// match, so a 64-bit collision surfaces as an error instead of
		// silently serving another spec's artifact.
		if !reflect.DeepEqual(j.spec, norm) {
			return JobStatus{}, false, fmt.Errorf("serve: job id collision on %q", id)
		}
		return st.statusLocked(j), false, nil
	}
	if ctx.Err() != nil {
		return JobStatus{}, false, ErrShuttingDown
	}
	// Refuse a full queue before evicting: eviction destroys a finished
	// artifact, which must not happen on a submission that is going to
	// be rejected anyway. Workers only drain the queue, so a non-full
	// queue here cannot fill before the send below.
	if cap(st.queue) > 0 && len(st.queue) == cap(st.queue) {
		return JobStatus{}, false, ErrBusy
	}
	if len(st.jobs) >= st.maxJobs && !st.evictOldestTerminalLocked() {
		return JobStatus{}, false, ErrBusy
	}
	j := &jobRecord{
		id:         id,
		spec:       norm,
		state:      StateQueued,
		cellsTotal: len(norm.Expand()),
	}
	select {
	case st.queue <- j:
		st.depth.Set(float64(len(st.queue)))
	default:
		return JobStatus{}, false, ErrBusy
	}
	st.jobs[id] = j
	st.order = append(st.order, id)
	return st.statusLocked(j), true, nil
}

// evictOldestTerminalLocked drops the oldest done/failed/canceled job to
// make room, reporting whether one existed; the store mutex must be
// held. Active jobs are never evicted.
func (st *jobStore) evictOldestTerminalLocked() bool {
	for i, id := range st.order {
		j := st.jobs[id]
		switch j.state {
		case StateDone, StateFailed, StateCanceled:
			delete(st.jobs, id)
			st.order = append(st.order[:i], st.order[i+1:]...)
			return true
		}
	}
	return false
}

// run executes one job to a terminal state.
func (st *jobStore) run(ctx context.Context, j *jobRecord) {
	st.mu.Lock()
	if j.state != StateQueued {
		st.mu.Unlock()
		return
	}
	j.state = StateRunning
	spec := j.spec
	st.mu.Unlock()

	spec.Workers = st.cellWorkers
	opts := sweep.Options{Sink: func(sweep.CellResult) {
		st.mu.Lock()
		j.cellsDone++
		st.mu.Unlock()
	}}
	art, err := st.runner(ctx, spec, opts)

	st.mu.Lock()
	defer st.mu.Unlock()
	if err != nil {
		if errors.Is(err, context.Canceled) {
			j.state = StateCanceled
		} else {
			j.state = StateFailed
		}
		j.errMsg = err.Error()
		return
	}
	var buf bytes.Buffer
	if err := art.EncodeJSON(&buf); err != nil {
		j.state = StateFailed
		j.errMsg = err.Error()
		return
	}
	j.artifact = buf.Bytes()
	j.state = StateDone
}

// Status returns the current status of the job with the given ID.
func (st *jobStore) Status(id string) (JobStatus, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	if !ok {
		return JobStatus{}, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	return st.statusLocked(j), nil
}

// List returns every job's status in creation order, oldest first — the
// store's insertion log, so the listing is deterministic, stable across
// calls, and mirrors the eviction order. IDs are content hashes, so
// sorting by ID would interleave unrelated submissions arbitrarily.
func (st *jobStore) List() []JobStatus {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]JobStatus, 0, len(st.order))
	for _, id := range st.order {
		out = append(out, st.statusLocked(st.jobs[id]))
	}
	return out
}

// Artifact returns the finished artifact bytes for the job, or the job's
// status when it has not (or will never) come due.
func (st *jobStore) Artifact(id string) ([]byte, JobStatus, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	if !ok {
		return nil, JobStatus{}, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	return j.artifact, st.statusLocked(j), nil
}

// statusLocked snapshots a record; the store mutex must be held.
func (st *jobStore) statusLocked(j *jobRecord) JobStatus {
	status := JobStatus{
		ID:              j.id,
		State:           j.state,
		CellsTotal:      j.cellsTotal,
		CellsDone:       j.cellsDone,
		Error:           j.errMsg,
		ArtifactVersion: sweep.ArtifactVersion,
	}
	if j.state == StateDone {
		status.ArtifactPath = "/v1/sweeps/" + j.id + "/artifact"
	}
	return status
}

// drainAndWait finishes shutdown after the store's context is canceled:
// it waits for the workers to exit, then marks every job that never ran
// as canceled (still-queued records also sit in the jobs map, so no
// channel drain is needed).
func (st *jobStore) drainAndWait() {
	st.wg.Wait()
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, j := range st.jobs {
		if j.state == StateQueued {
			j.state = StateCanceled
			j.errMsg = ErrShuttingDown.Error()
		}
	}
}
