package serve

import (
	"container/list"
	"sync"
)

// lruCache is a bounded, thread-safe LRU map from canonical request keys
// to encoded response bodies. Values are the exact bytes written to
// clients, so a hit is byte-identical to the miss that populated it.
type lruCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List
	items map[string]*list.Element
}

// lruEntry is one cache slot.
type lruEntry struct {
	key string
	val []byte
}

// newLRUCache returns an empty cache holding at most max entries.
func newLRUCache(max int) *lruCache {
	return &lruCache{
		max:   max,
		ll:    list.New(),
		items: make(map[string]*list.Element, max),
	}
}

// Get returns the cached bytes for key and refreshes its recency.
func (c *lruCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// Add stores val under key, evicting the least recently used entry when
// the cache is full. Storing an existing key refreshes its value and
// recency.
func (c *lruCache) Add(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).val = val
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	if c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// Len returns the current entry count.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
