package serve

import (
	"container/list"
	"sync"
)

// lruCache is a bounded, thread-safe LRU map from canonical request keys
// to encoded response bodies. Values are the exact bytes written to
// clients, so a hit is byte-identical to the miss that populated it.
//
// A nonpositive max disables the cache explicitly: Add is a no-op and
// Get always misses. (The previous behavior — insert, then immediately
// evict the entry just inserted because Len() > 0 — turned every request
// into a miss AND churned the singleflight group on each one.)
type lruCache struct {
	mu       sync.Mutex
	max      int
	disabled bool
	ll       *list.List
	items    map[string]*list.Element
}

// lruEntry is one cache slot.
type lruEntry struct {
	key string
	val []byte
}

// newLRUCache returns an empty cache holding at most max entries. A
// nonpositive max returns a disabled cache that stores nothing.
func newLRUCache(max int) *lruCache {
	if max <= 0 {
		return &lruCache{disabled: true, ll: list.New()}
	}
	return &lruCache{
		max:   max,
		ll:    list.New(),
		items: make(map[string]*list.Element, max),
	}
}

// Get returns the cached bytes for key and refreshes its recency.
func (c *lruCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// Add stores val under key, evicting the least recently used entry when
// the cache is full. Storing an existing key refreshes its value and
// recency. On a disabled cache it stores nothing.
func (c *lruCache) Add(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.disabled {
		return
	}
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).val = val
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	if c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// Len returns the current entry count.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
