package serve

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestEstimatePrecisionBlock covers the optional adaptive-precision
// block on POST /v1/estimate: it must run adaptively (trials_used,
// rounds, stop_reason in the result cell), echo back in the request, get
// its own cache entry, and leave precision-free bodies byte-identical to
// the PR 3 goldens.
func TestEstimatePrecisionBlock(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// The golden mc request, before and after an adaptive variant of it:
	// precision-free bodies must stay pinned to the committed bytes.
	base := `{"model":"SC","threads":2,"prefix_len":12,"estimator":"mc","trials":5000,"seed":3}`
	adaptive := `{"model":"SC","threads":2,"prefix_len":12,"estimator":"mc","trials":5000,"seed":3,` +
		`"precision":{"target_half_width":0.05}}`
	golden, err := os.ReadFile(filepath.Join("testdata", "golden_estimate_mc.json"))
	if err != nil {
		t.Fatal(err)
	}

	resp, body := post(t, ts.URL+"/v1/estimate", base)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if !bytes.Equal(body, golden) {
		t.Fatalf("precision-free body diverged from golden\ngot:\n%s\nwant:\n%s", body, golden)
	}

	resp, adaptiveBody := post(t, ts.URL+"/v1/estimate", adaptive)
	if resp.StatusCode != 200 {
		t.Fatalf("adaptive status %d: %s", resp.StatusCode, adaptiveBody)
	}
	if resp.Header.Get("X-Cache") != "miss" {
		t.Errorf("adaptive variant X-Cache = %q, want miss (its own cache entry)", resp.Header.Get("X-Cache"))
	}
	var out EstimateResponse
	if err := json.Unmarshal(adaptiveBody, &out); err != nil {
		t.Fatal(err)
	}
	if out.Request.Precision == nil || out.Request.Precision.TargetHalfWidth != 0.05 {
		t.Errorf("precision block not echoed: %+v", out.Request.Precision)
	}
	if out.Request.Precision != nil && out.Request.Precision.MaxTrials != 5000 {
		t.Errorf("echoed MaxTrials = %d, want the normalized default 5000 (= trials)",
			out.Request.Precision.MaxTrials)
	}
	if out.Result.StopReason == "" || out.Result.TrialsUsed == 0 || out.Result.Rounds == 0 {
		t.Errorf("adaptive result cell carries no cost diagnostics: %+v", out.Result)
	}

	// Spelling the defaulted max_trials out must land on the same cache
	// entry and return the identical bytes — the echo is normalized, so
	// the body cannot depend on which variant computed first.
	spelled := `{"model":"SC","threads":2,"prefix_len":12,"estimator":"mc","trials":5000,"seed":3,` +
		`"precision":{"target_half_width":0.05,"max_trials":5000}}`
	resp, spelledBody := post(t, ts.URL+"/v1/estimate", spelled)
	if resp.StatusCode != 200 {
		t.Fatalf("spelled-out status %d: %s", resp.StatusCode, spelledBody)
	}
	if resp.Header.Get("X-Cache") != "hit" {
		t.Errorf("spelled-out variant X-Cache = %q, want hit (canonical key)", resp.Header.Get("X-Cache"))
	}
	if !bytes.Equal(spelledBody, adaptiveBody) {
		t.Error("spelled-out and defaulted max_trials bodies differ")
	}

	// The precision-free request again: byte-identical, and a cache hit —
	// the adaptive variant did not poison its entry.
	resp, again := post(t, ts.URL+"/v1/estimate", base)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, again)
	}
	if !bytes.Equal(again, golden) {
		t.Error("precision-free body changed after an adaptive request")
	}
	if resp.Header.Get("X-Cache") != "hit" {
		t.Errorf("precision-free rerun X-Cache = %q, want hit", resp.Header.Get("X-Cache"))
	}
}

// TestEstimatePrecisionRejections: malformed precision blocks are 400s,
// decided by the estimator's canonical validation — not by a serve-side
// re-implementation.
func TestEstimatePrecisionRejections(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []string{
		// No targets at all.
		`{"model":"SC","estimator":"mc","trials":100,"precision":{}}`,
		// Precision on a deterministic kind.
		`{"model":"SC","threads":2,"estimator":"exact","precision":{"target_half_width":0.01}}`,
		// Out-of-range target.
		`{"model":"SC","estimator":"mc","trials":100,"precision":{"target_half_width":2}}`,
		// Negative cap.
		`{"model":"SC","estimator":"mc","trials":100,"precision":{"target_rel_err":0.1,"max_trials":-5}}`,
		// Unknown field inside the block (strict decode).
		`{"model":"SC","estimator":"mc","trials":100,"precision":{"half_width":0.01}}`,
	}
	for _, body := range cases {
		resp, data := post(t, ts.URL+"/v1/estimate", body)
		if resp.StatusCode != 400 {
			t.Errorf("body %s: status %d (want 400): %s", body, resp.StatusCode, data)
		}
	}
}

// TestSweepPrecisionSpec: the async sweep endpoint accepts a precision
// block in its spec and the finished artifact records per-cell costs.
func TestSweepPrecisionSpec(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	spec := `{"models":["SC"],"threads":[2],"prefix_lens":[12],"estimators":["mc"],` +
		`"trials":100000,"seed":5,"precision":{"target_half_width":0.02}}`
	resp, body := post(t, ts.URL+"/v1/sweeps", spec)
	if resp.StatusCode != 202 && resp.StatusCode != 200 {
		t.Fatalf("submit status %d: %s", resp.StatusCode, body)
	}
	var status JobStatus
	if err := json.Unmarshal(body, &status); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := srv.jobs.Status(status.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == StateDone {
			break
		}
		if st.State == StateFailed || st.State == StateCanceled {
			t.Fatalf("job state %q: %s", st.State, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	artifact, jobStatus, err := srv.jobs.Artifact(status.ID)
	if err != nil {
		t.Fatal(err)
	}
	if jobStatus.State != StateDone {
		t.Fatalf("job state %q: %s", jobStatus.State, jobStatus.Error)
	}
	var art struct {
		Cells []struct {
			TrialsUsed int    `json:"trials_used"`
			StopReason string `json:"stop_reason"`
		} `json:"cells"`
	}
	if err := json.Unmarshal(artifact, &art); err != nil {
		t.Fatal(err)
	}
	if len(art.Cells) != 1 {
		t.Fatalf("cells = %d, want 1", len(art.Cells))
	}
	if art.Cells[0].StopReason == "" || art.Cells[0].TrialsUsed == 0 {
		t.Errorf("adaptive sweep cell carries no cost diagnostics: %+v", art.Cells[0])
	}
}
