package serve

import (
	"bytes"
	"io/fs"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"memreliability/internal/store"
)

// openStore opens a content-addressed store rooted at dir or fails the
// test.
func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestDiskTierSharedStore covers the persistent second cache tier: a
// fresh server sharing a warm store directory serves byte-identical
// bodies with X-Cache: disk, promotes them into its LRU, and counts the
// outcome on both the expvar counter and the obs cache series.
func TestDiskTierSharedStore(t *testing.T) {
	dir := t.TempDir()
	body := `{"model":"SC","estimator":"exact","threads":2,"prefix_len":12}`

	// Server 1 computes and writes through.
	_, ts1 := newTestServer(t, Config{Store: openStore(t, dir)})
	resp1, data1 := post(t, ts1.URL+"/v1/estimate", body)
	if resp1.StatusCode != http.StatusOK || resp1.Header.Get("X-Cache") != "miss" {
		t.Fatalf("first request: status %d X-Cache %q", resp1.StatusCode, resp1.Header.Get("X-Cache"))
	}

	// Server 2 shares only the store directory: first answer comes from
	// disk, byte-identical, and the promotion makes the second a memory
	// hit.
	_, ts2 := newTestServer(t, Config{Store: openStore(t, dir)})
	resp2, data2 := post(t, ts2.URL+"/v1/estimate", body)
	if resp2.Header.Get("X-Cache") != "disk" {
		t.Fatalf("warm-store request: X-Cache %q, want disk", resp2.Header.Get("X-Cache"))
	}
	if !bytes.Equal(data1, data2) {
		t.Fatalf("disk-tier body differs from computed body:\n%s\nvs\n%s", data1, data2)
	}
	resp3, data3 := post(t, ts2.URL+"/v1/estimate", body)
	if resp3.Header.Get("X-Cache") != "hit" {
		t.Fatalf("post-promotion request: X-Cache %q, want hit", resp3.Header.Get("X-Cache"))
	}
	if !bytes.Equal(data1, data3) {
		t.Fatal("post-promotion body differs")
	}
	if got := metric(t, ts2.URL, "cache_disk_hits"); got != 1 {
		t.Fatalf("cache_disk_hits = %v, want 1", got)
	}
	if got := metric(t, ts1.URL, "cache_disk_hits"); got != 0 {
		t.Fatalf("server 1 cache_disk_hits = %v, want 0", got)
	}

	// The obs cache series carries the new state alongside the existing
	// ones.
	resp4, prom := get(t, ts2.URL+"/metrics/prom")
	if resp4.StatusCode != http.StatusOK {
		t.Fatalf("/metrics/prom status %d", resp4.StatusCode)
	}
	want := `serve_cache_events_total{route="POST /v1/estimate",state="disk"} 1`
	if !strings.Contains(string(prom), want) {
		t.Fatalf("exposition missing %q", want)
	}
}

// TestDiskTierCorruptRecordRecomputes covers the robustness contract at
// the serve layer: a corrupted store record reads as a miss, the server
// recomputes, and the write-through replaces the bad record.
func TestDiskTierCorruptRecordRecomputes(t *testing.T) {
	dir := t.TempDir()
	body := `{"model":"TSO","estimator":"exact","threads":2,"prefix_len":12}`

	_, ts1 := newTestServer(t, Config{Store: openStore(t, dir)})
	_, data1 := post(t, ts1.URL+"/v1/estimate", body)

	// Corrupt every stored record in place.
	var corrupted int
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".json") {
			return err
		}
		corrupted++
		return os.WriteFile(path, []byte("{not json"), 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	if corrupted == 0 {
		t.Fatal("write-through left no records to corrupt")
	}

	_, ts2 := newTestServer(t, Config{Store: openStore(t, dir)})
	resp2, data2 := post(t, ts2.URL+"/v1/estimate", body)
	if resp2.StatusCode != http.StatusOK || resp2.Header.Get("X-Cache") != "miss" {
		t.Fatalf("corrupt-store request: status %d X-Cache %q, want 200 miss",
			resp2.StatusCode, resp2.Header.Get("X-Cache"))
	}
	if !bytes.Equal(data1, data2) {
		t.Fatal("recomputed body differs from original")
	}

	// The recompute's write-through healed the record: a third fresh
	// server reads it from disk again.
	_, ts3 := newTestServer(t, Config{Store: openStore(t, dir)})
	resp3, _ := post(t, ts3.URL+"/v1/estimate", body)
	if resp3.Header.Get("X-Cache") != "disk" {
		t.Fatalf("healed-store request: X-Cache %q, want disk", resp3.Header.Get("X-Cache"))
	}
}
