// Package serve is the HTTP estimation service: a long-running JSON API
// over the paper's estimators (Pr[A] exact/full-MC/hybrid, Theorem 4.1
// window distributions, litmus conformance) and the sweep engine.
//
// The hot path leans on the engine's reproducibility guarantee: every
// estimator is deterministic in its request, so responses are perfectly
// cacheable. Cached endpoints share one pipeline — a canonical request
// key, an LRU cache of encoded response bodies, and singleflight
// deduplication so N concurrent identical requests run the estimator
// once and all receive byte-identical bodies. Async sweep jobs run on a
// separate bounded worker pool (so a heavy sweep can never starve a
// cheap estimate) and are content-addressed by their normalized spec,
// which deduplicates resubmissions for free.
//
// Endpoints:
//
//	POST /v1/estimate              Pr[A] via exact | mc | hybrid
//	POST /v1/windowdist            exact Pr[B_γ] distribution (Thm 4.1)
//	GET  /v1/litmus                litmus conformance matrix
//	POST /v1/sweeps                submit an async sweep job
//	GET  /v1/sweeps                list jobs
//	GET  /v1/sweeps/{id}           poll one job
//	GET  /v1/sweeps/{id}/artifact  fetch the finished versioned artifact
//	GET  /healthz                  liveness
//	GET  /metrics                  expvar counters (hits, misses, …)
//
// Cache state travels in the X-Cache response header (miss | hit |
// dedup | disk), never in the body — bodies stay byte-identical across
// cache states. The disk state reports a hit in the optional persistent
// content-addressed store (Config.Store), the second cache tier behind
// the in-memory LRU, shared across restarts and fleet members.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strings"
	"time"

	"memreliability/internal/estimator"
	"memreliability/internal/litmus"
	"memreliability/internal/memmodel"
	"memreliability/internal/obs"
	"memreliability/internal/store"
	"memreliability/internal/sweep"
)

// ErrBadConfig reports an invalid server configuration.
var ErrBadConfig = errors.New("serve: bad config")

// ErrBadRequest reports a malformed or invalid API request.
var ErrBadRequest = errors.New("serve: bad request")

// Config configures a Server. The zero value gets sensible defaults.
type Config struct {
	// CacheSize bounds the LRU result cache, in entries. 0 means 1024.
	CacheSize int
	// EstimateWorkers bounds concurrent cached-endpoint computations
	// (estimate, windowdist, litmus). Each admitted computation is
	// single-streamed, so this is also the endpoint's total CPU
	// parallelism. 0 means GOMAXPROCS.
	EstimateWorkers int
	// SweepWorkers bounds concurrent async sweep jobs. 0 means 1.
	SweepWorkers int
	// SweepCellWorkers is the per-job sweep worker budget (pure
	// scheduling — artifacts never depend on it). 0 means GOMAXPROCS.
	SweepCellWorkers int
	// QueueDepth bounds queued-but-not-running sweep jobs; submissions
	// beyond it are rejected with 503. 0 means 16.
	QueueDepth int
	// MaxJobs bounds retained sweep jobs, finished artifacts included:
	// once full, a new submission evicts the oldest terminal job, or is
	// rejected with 503 while every retained job is still active. Keeps
	// a long-running daemon's memory bounded. 0 means 64.
	MaxJobs int
	// Logger, when non-nil, receives one structured record per request
	// (request_id, method, route, status, duration_ms, cache state).
	// Nil disables request logging.
	Logger *slog.Logger
	// Store, when non-nil, is the persistent content-addressed result
	// store: a second cache tier behind the LRU. Responses found there
	// serve with X-Cache: disk (and promote into the LRU); every leader
	// computation writes through. Because results are deterministic in
	// their canonical key, the store is safe to share across restarts
	// and between fleet members on shared storage.
	Store *store.Store
	// RunSweep, when non-nil, replaces the engine async sweep jobs run
	// on (sweep.Run) — coordinator mode plugs the distributed cluster
	// engine in here. The contract is byte-identity: for a given spec
	// the runner must produce the artifact sweep.Run would.
	RunSweep func(ctx context.Context, spec sweep.Spec, opts sweep.Options) (*sweep.Artifact, error)
}

// withDefaults returns the config with zero fields replaced by defaults.
func (c Config) withDefaults() Config {
	if c.CacheSize == 0 {
		c.CacheSize = 1024
	}
	if c.EstimateWorkers == 0 {
		c.EstimateWorkers = runtime.GOMAXPROCS(0)
	}
	if c.SweepWorkers == 0 {
		c.SweepWorkers = 1
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 16
	}
	if c.MaxJobs == 0 {
		c.MaxJobs = 64
	}
	return c
}

// validate rejects negative knobs.
func (c Config) validate() error {
	if c.CacheSize < 0 || c.EstimateWorkers < 0 || c.SweepWorkers < 0 ||
		c.SweepCellWorkers < 0 || c.QueueDepth < 0 || c.MaxJobs < 0 {
		return fmt.Errorf("%w: negative size or worker count", ErrBadConfig)
	}
	return nil
}

// serverMetrics are the service's expvar counters. They live on the
// server (not the process-global expvar registry) so independent servers
// — and tests — never collide.
type serverMetrics struct {
	vars *expvar.Map

	requests     *expvar.Int   // HTTP requests served
	hits         *expvar.Int   // cache hits
	misses       *expvar.Int   // cache misses (one per leader computation)
	dedup        *expvar.Int   // requests that shared an in-flight computation
	diskHits     *expvar.Int   // persistent-store hits (second tier, behind the LRU)
	computations *expvar.Int   // estimator executions (== misses; counted inside the leader)
	inflight     *expvar.Int   // computations currently running
	jobsAccepted *expvar.Int   // sweep jobs enqueued
	latencyMS    *expvar.Float // cumulative request latency, milliseconds
}

// newServerMetrics builds the counter set.
func newServerMetrics() *serverMetrics {
	m := &serverMetrics{
		vars:         new(expvar.Map).Init(),
		requests:     new(expvar.Int),
		hits:         new(expvar.Int),
		misses:       new(expvar.Int),
		dedup:        new(expvar.Int),
		diskHits:     new(expvar.Int),
		computations: new(expvar.Int),
		inflight:     new(expvar.Int),
		jobsAccepted: new(expvar.Int),
		latencyMS:    new(expvar.Float),
	}
	m.vars.Set("requests", m.requests)
	m.vars.Set("cache_hits", m.hits)
	m.vars.Set("cache_misses", m.misses)
	m.vars.Set("dedup_shared", m.dedup)
	m.vars.Set("cache_disk_hits", m.diskHits)
	m.vars.Set("computations", m.computations)
	m.vars.Set("inflight", m.inflight)
	m.vars.Set("jobs_accepted", m.jobsAccepted)
	m.vars.Set("latency_ms_total", m.latencyMS)
	return m
}

// Server is the estimation service. It implements http.Handler; pair it
// with an http.Server (see cmd/memserved) or httptest for tests. Close
// releases its background workers.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	cache   *lruCache
	flight  *flightGroup
	jobs    *jobStore
	metrics *serverMetrics
	obs     *serveObs
	sem     chan struct{} // estimate-worker slots

	baseCtx context.Context
	cancel  context.CancelFunc
}

// New returns a started server. Call Close when done with it.
func New(cfg Config) (*Server, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	so := newServeObs()
	s := &Server{
		cfg:     cfg,
		mux:     http.NewServeMux(),
		cache:   newLRUCache(cfg.CacheSize),
		flight:  newFlightGroup(),
		jobs:    newJobStore(ctx, cfg.SweepWorkers, cfg.SweepCellWorkers, cfg.QueueDepth, cfg.MaxJobs, so.queueDepth, cfg.RunSweep),
		metrics: newServerMetrics(),
		obs:     so,
		sem:     make(chan struct{}, cfg.EstimateWorkers),
		baseCtx: ctx,
		cancel:  cancel,
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /metrics/prom", s.handleMetricsProm)
	s.mux.HandleFunc("GET /v1/litmus", s.handleLitmus)
	s.mux.HandleFunc("POST /v1/estimate", s.handleEstimate)
	s.mux.HandleFunc("POST /v1/windowdist", s.handleWindowDist)
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSweepSubmit)
	s.mux.HandleFunc("GET /v1/sweeps", s.handleSweepList)
	s.mux.HandleFunc("GET /v1/sweeps/{id}", s.handleSweepStatus)
	s.mux.HandleFunc("GET /v1/sweeps/{id}/artifact", s.handleSweepArtifact)
	return s, nil
}

// Close stops accepting new computations, cancels running ones, and
// waits for the sweep workers to exit. In-flight HTTP handlers return
// 503 once their computation observes the cancellation; draining open
// connections is the enclosing http.Server's job (Shutdown).
func (s *Server) Close() {
	s.cancel()
	s.jobs.drainAndWait()
}

// ServeHTTP dispatches to the API routes through the observability
// middleware: every request gets an X-Request-ID (propagated from the
// client when well-formed, generated otherwise), a per-route latency
// observation, an optional structured log record, and — when the client
// sends "X-Trace: 1" — a response envelope carrying the request's span
// tree around the byte-for-byte original body. The legacy expvar
// counters (requests, latency_ms_total) keep their exact semantics.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.metrics.requests.Add(1)

	reqID := s.obs.requestID(r.Header.Get("X-Request-ID"))
	w.Header().Set("X-Request-ID", reqID)

	rec := &statusRecorder{ResponseWriter: w}
	var out http.ResponseWriter = rec
	var root *obs.Span
	var tw *traceRecorder
	if r.Header.Get("X-Trace") == "1" {
		root = obs.NewTrace("http.request",
			obs.L("method", r.Method),
			obs.L("request_id", reqID))
		r = r.WithContext(obs.WithSpan(r.Context(), root))
		tw = &traceRecorder{ResponseWriter: rec}
		out = tw
	}

	s.mux.ServeHTTP(out, r)

	elapsed := time.Since(start)
	s.metrics.latencyMS.Add(float64(elapsed) / float64(time.Millisecond))
	route := r.Pattern
	if route == "" {
		route = routeUnmatched
	}
	rm := s.obs.route(route)
	rm.requests.Inc()
	rm.latency.Observe(elapsed.Seconds())

	if root != nil {
		root.End()
		writeTraced(rec, tw, root)
	}
	if s.cfg.Logger != nil {
		status := rec.status
		if tw != nil && status == 0 {
			status = tw.status
		}
		if status == 0 {
			status = http.StatusOK
		}
		s.cfg.Logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
			slog.String("request_id", reqID),
			slog.String("method", r.Method),
			slog.String("route", route),
			slog.Int("status", status),
			slog.Float64("duration_ms", float64(elapsed)/float64(time.Millisecond)),
			slog.String("cache", w.Header().Get("X-Cache")))
	}
}

// writeJSON writes v as indented JSON with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, `{"error":"encode response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}

// writeError writes the uniform JSON error envelope.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, struct {
		Error string `json:"error"`
	}{err.Error()})
}

// errorStatus maps a computation or submission error to an HTTP status.
func errorStatus(err error) int {
	switch {
	case errors.Is(err, context.Canceled), errors.Is(err, ErrShuttingDown):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrBusy):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrUnknownJob):
		return http.StatusNotFound
	case errors.Is(err, ErrBadRequest), errors.Is(err, sweep.ErrBadSpec),
		errors.Is(err, estimator.ErrBadQuery):
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

// decodeStrict decodes the request body over the given defaults base,
// rejecting unknown fields and trailing garbage. Omitted fields keep the
// base's paper defaults; explicit zeros stick.
func decodeStrict(r *http.Request, base any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(base); err != nil {
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if dec.More() {
		return fmt.Errorf("%w: trailing data after JSON body", ErrBadRequest)
	}
	return nil
}

// cached serves one cacheable endpoint: look the canonical key up in the
// LRU, then (when configured) in the persistent store, and on a full
// miss run compute behind singleflight and the estimate worker
// semaphore, caching the encoded body in both tiers. Concurrent
// identical requests share one computation; every path returns the same
// bytes.
//
// Cache-outcome counters (hits, misses, dedup and the per-route obs
// series) are incremented only after the body write succeeds: a client
// that disconnects mid-stream received nothing, and counting it would
// overcount served traffic. The execution counters (computations,
// inflight) stay inside the leader — they measure estimator work, which
// happens whether or not the bytes land.
func (s *Server) cached(w http.ResponseWriter, r *http.Request, key string, compute func(ctx context.Context) (any, error)) {
	span := obs.SpanFrom(r.Context())
	lookup := span.Child("cache.lookup")
	body, ok := s.cache.Get(key)
	lookup.End()
	if ok {
		s.countServed(w, r, "hit", body)
		return
	}
	if body, ok := s.diskGet(span, key); ok {
		s.countServed(w, r, "disk", body)
		return
	}
	// leaderState is written only inside fn, which Do runs on this
	// goroutine when (and only when) shared comes back false.
	leaderState := "miss"
	body, err, shared := s.flight.Do(key, func() ([]byte, error) {
		// Double-check the cache as leader: a caller that missed, then
		// was descheduled past a previous leader's entire compute+cache,
		// becomes a new leader here — the recheck turns that duplicate
		// computation into a hit, keeping "identical concurrent requests
		// compute once" airtight.
		if body, ok := s.cache.Get(key); ok {
			leaderState = "hit"
			return body, nil
		}
		if body, ok := s.diskGet(span, key); ok {
			leaderState = "disk"
			return body, nil
		}
		s.metrics.inflight.Add(1)
		defer s.metrics.inflight.Add(-1)
		// Refuse before the select: with a free semaphore slot AND a
		// canceled context both ready, select picks randomly — this
		// check makes post-Close refusal deterministic.
		if s.baseCtx.Err() != nil {
			return nil, ErrShuttingDown
		}
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		case <-s.baseCtx.Done():
			return nil, ErrShuttingDown
		}
		// Compute against the server's context, not the request's: the
		// result is shared with concurrent duplicates and then cached,
		// so one impatient client must not poison it. The leader's trace
		// span rides along (scheduling metadata only — the computation
		// itself is deterministic in the query).
		s.metrics.computations.Add(1)
		cspan := span.Child("compute")
		v, err := compute(obs.WithSpan(s.baseCtx, cspan))
		cspan.End()
		if err != nil {
			if s.baseCtx.Err() != nil {
				return nil, ErrShuttingDown
			}
			return nil, err
		}
		// Computations that ignore ctx (litmus.CheckAll) can complete
		// across a Close; honor the shutdown rather than caching and
		// serving mid-drain.
		if s.baseCtx.Err() != nil {
			return nil, ErrShuttingDown
		}
		data, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			return nil, fmt.Errorf("serve: encode response: %w", err)
		}
		data = append(data, '\n')
		s.cache.Add(key, data)
		// Write-through to the persistent tier is best-effort (the
		// store counts its own put errors) and never gates the response.
		if s.cfg.Store != nil {
			s.cfg.Store.Put(key, data) //nolint:errcheck
		}
		return data, nil
	})
	if err != nil {
		writeError(w, errorStatus(err), err)
		return
	}
	state := leaderState
	if shared {
		state = "dedup"
	}
	s.countServed(w, r, state, body)
}

// countServed writes a cacheable body with its X-Cache state and, only
// if the write fully succeeds, counts the cache outcome on both the
// expvar counters and the per-route obs series. A failed write (client
// gone mid-stream) counts nothing — the satellite-6 overcounting fix.
func (s *Server) countServed(w http.ResponseWriter, r *http.Request, state string, body []byte) {
	if err := writeCached(w, state, body); err != nil {
		return
	}
	switch state {
	case "hit":
		s.metrics.hits.Add(1)
	case "miss":
		s.metrics.misses.Add(1)
	case "dedup":
		s.metrics.dedup.Add(1)
	case "disk":
		s.metrics.diskHits.Add(1)
	}
	s.obs.route(r.Pattern).cacheEvent(state)
}

// diskGet consults the persistent second-tier store and promotes a hit
// into the LRU, so repeated requests stop paying the disk read. The
// stored payload is exactly the bytes a leader computation cached, so
// promotion preserves byte-identity across cache states. A corrupt or
// missing record reads as a miss (the store's contract) and falls
// through to recompute.
func (s *Server) diskGet(span *obs.Span, key string) ([]byte, bool) {
	if s.cfg.Store == nil {
		return nil, false
	}
	read := span.Child("store.lookup")
	body, ok := s.cfg.Store.Get(key)
	read.End()
	if !ok {
		return nil, false
	}
	s.cache.Add(key, body)
	return body, true
}

// writeCached writes a cacheable body with its X-Cache state, reporting
// whether the full body reached the client.
func writeCached(w http.ResponseWriter, state string, body []byte) error {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", state)
	n, err := w.Write(body)
	if err != nil {
		return err
	}
	if n != len(body) {
		return fmt.Errorf("serve: short write: %d of %d bytes", n, len(body))
	}
	return nil
}

// handleHealthz reports liveness.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
	}{"ok"})
}

// handleMetrics serves the server's expvar counters as JSON. The key
// set — latency_ms_total included — is frozen for backward
// compatibility; the per-endpoint histograms live at /metrics/prom.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, s.metrics.vars.String())
}

// handleMetricsProm serves the Prometheus text exposition: the server's
// own registry (per-route request/latency/cache series, job-queue
// depth) followed by the process-global registry (estimator, mc, core,
// sweep engine metrics). The two registries use disjoint name prefixes,
// so the concatenation is a valid exposition.
func (s *Server) handleMetricsProm(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.obs.reg.WritePrometheus(w); err != nil {
		return
	}
	obs.Default().WritePrometheus(w)
}

// EstimateRequest asks for one Pr[A] estimate. Omitted fields take the
// paper's defaults (n=2, m=64, hybrid, 50000 trials, p=s=1/2, seed 1);
// explicit zeros stick, mirroring the sweep spec's decode-over-defaults
// convention. It is the wire form of an estimator.Query: the handler
// decodes it, converts it with query, and dispatches through the
// estimator registry.
type EstimateRequest struct {
	// Model is a memory model name resolvable by ModelByName.
	Model string `json:"model"`
	// Threads is n (≥ 2).
	Threads int `json:"threads"`
	// PrefixLen is m; the exact estimator clamps it to the engine's
	// ExactPrefixCap, recorded in the result's effective_m and note.
	PrefixLen int `json:"prefix_len"`
	// Estimator is exact, mc, or hybrid (windowdist has its own
	// endpoint).
	Estimator sweep.Kind `json:"estimator"`
	// Trials is the Monte Carlo budget (mc and hybrid only).
	Trials int `json:"trials"`
	// Seed fully determines the response body.
	Seed uint64 `json:"seed"`
	// StoreProb is p and SwapProb is s.
	StoreProb float64 `json:"store_prob"`
	SwapProb  float64 `json:"swap_prob"`
	// Confidence is the Wilson-interval level of mc results; omitted
	// (or zero) selects the default 0.99. Other estimators ignore it.
	Confidence float64 `json:"confidence,omitempty"`
	// Precision, when present, switches the mc/hybrid estimator to
	// adaptive-precision sampling: trials run in deterministic rounds
	// until the interval meets target_half_width and/or target_rel_err,
	// capped at max_trials (0 = the trials field). The result then
	// carries trials_used, rounds, and stop_reason. Requests without a
	// precision block keep their exact historical bytes (omitempty), and
	// precision participates in the canonical cache key.
	Precision *estimator.Precision `json:"precision,omitempty"`
}

// defaultEstimateRequest is the decode base with the paper's defaults
// (estimator.DefaultQuery's normal form). Confidence stays zero so the
// request echo is unchanged for callers that never set it.
func defaultEstimateRequest() EstimateRequest {
	q := estimator.DefaultQuery()
	return EstimateRequest{
		Threads:   q.Threads,
		PrefixLen: q.PrefixLen,
		Estimator: q.Kind,
		Trials:    q.Trials,
		Seed:      q.Seed,
		StoreProb: q.StoreProb,
		SwapProb:  q.SwapProb,
	}
}

// query converts the request into its canonical estimator query.
func (req EstimateRequest) query() estimator.Query {
	return estimator.Query{
		Kind:       req.Estimator,
		Model:      req.Model,
		Threads:    req.Threads,
		PrefixLen:  req.PrefixLen,
		StoreProb:  req.StoreProb,
		SwapProb:   req.SwapProb,
		Trials:     req.Trials,
		Seed:       req.Seed,
		Confidence: req.Confidence,
		Precision:  req.Precision,
	}
}

// EstimateResponse echoes the normalized request and carries the cell
// result, exactly as the corresponding single-cell sweep artifact would.
type EstimateResponse struct {
	Request EstimateRequest  `json:"request"`
	Result  sweep.CellResult `json:"result"`
}

// cellResult shapes an estimator result as the single-cell artifact cell
// the API has always served, with the request's grid coordinates. The
// conversion itself is the engine's shared CellResultOf.
func cellResult(res estimator.Result, model string, threads, prefixLen int) sweep.CellResult {
	return sweep.CellResultOf(sweep.Cell{
		Index:     0,
		Model:     model,
		Threads:   threads,
		PrefixLen: prefixLen,
		Estimator: res.Kind,
	}, res)
}

// handleEstimate serves POST /v1/estimate through the cached pipeline:
// decode over the defaults base, canonicalize, validate once via the
// estimator's canonical rules, and dispatch through the registry.
func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	req := defaultEstimateRequest()
	if err := decodeStrict(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	req.Estimator = sweep.Kind(strings.ToLower(string(req.Estimator)))
	req.Model = canonicalModelName(req.Model)
	// Canonicalize the precision echo like the model name: the cache is
	// keyed by the normalized query (MaxTrials defaulted from trials),
	// so requests spelling the default out and omitting it share one
	// entry — the echoed body must therefore be the normalized form, or
	// the bytes a given request receives would depend on which variant
	// populated the cache first.
	if req.Precision != nil && req.Precision.MaxTrials == 0 {
		req.Precision.MaxTrials = req.Trials
	}
	if req.Estimator == sweep.WindowDist {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("%w: estimator windowdist has its own endpoint, POST /v1/windowdist", ErrBadRequest))
		return
	}
	// Inside a grid sweep an unsatisfiable cell is skipped; for a
	// single-cell request a skip would read as Pr[A] = 0, so reject it.
	if req.Estimator == sweep.Exact && req.Threads != 2 {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("%w: exact estimator requires threads=2, got %d", ErrBadRequest, req.Threads))
		return
	}
	query := req.query()
	if err := query.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	key, err := queryKey("estimate", query)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.cached(w, r, key, func(ctx context.Context) (any, error) {
		// Workers: 1 keeps the semaphore, not per-request fan-out, as
		// the endpoint's parallelism bound — EstimateWorkers concurrent
		// single-streamed computations, not EstimateWorkers² goroutines.
		// Results never depend on it.
		res, err := estimator.EstimateExec(ctx, query, estimator.Exec{Workers: 1})
		if err != nil {
			return nil, err
		}
		return EstimateResponse{
			Request: req,
			Result:  cellResult(res, req.Model, req.Threads, req.PrefixLen),
		}, nil
	})
}

// WindowDistRequest asks for the exact window-growth distribution
// Pr[B_γ], γ ∈ [0, max_gamma] (Theorem 4.1 at finite m). Omitted fields
// take the paper's defaults (m=16, max_gamma=8, p=s=1/2).
type WindowDistRequest struct {
	Model     string  `json:"model"`
	PrefixLen int     `json:"prefix_len"`
	MaxGamma  int     `json:"max_gamma"`
	StoreProb float64 `json:"store_prob"`
	SwapProb  float64 `json:"swap_prob"`
}

// defaultWindowDistRequest is the decode base with the paper's defaults.
func defaultWindowDistRequest() WindowDistRequest {
	return WindowDistRequest{PrefixLen: 16, MaxGamma: 8, StoreProb: 0.5, SwapProb: 0.5}
}

// WindowDistResponse echoes the normalized request and carries the
// windowdist cell, its Dist field tabulating Pr[B_γ].
type WindowDistResponse struct {
	Request WindowDistRequest `json:"request"`
	Result  sweep.CellResult  `json:"result"`
}

// query converts the request into its canonical estimator query. The
// window distribution is thread-count independent, so Threads stays 0 —
// matching the windowdist cells a sweep grid emits.
func (req WindowDistRequest) query() estimator.Query {
	return estimator.Query{
		Kind:      sweep.WindowDist,
		Model:     req.Model,
		PrefixLen: req.PrefixLen,
		StoreProb: req.StoreProb,
		SwapProb:  req.SwapProb,
		MaxGamma:  req.MaxGamma,
	}
}

// handleWindowDist serves POST /v1/windowdist through the cached
// pipeline, dispatching through the estimator registry like every other
// surface.
func (s *Server) handleWindowDist(w http.ResponseWriter, r *http.Request) {
	req := defaultWindowDistRequest()
	if err := decodeStrict(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	req.Model = canonicalModelName(req.Model)
	query := req.query()
	if err := query.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	key, err := queryKey("windowdist", query)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.cached(w, r, key, func(ctx context.Context) (any, error) {
		res, err := estimator.EstimateExec(ctx, query, estimator.Exec{Workers: 1})
		if err != nil {
			return nil, err
		}
		return WindowDistResponse{
			Request: req,
			Result:  cellResult(res, req.Model, 0, req.PrefixLen),
		}, nil
	})
}

// handleLitmus serves GET /v1/litmus: the full conformance matrix in the
// encoding shared with cmd/litmusrun -json. The matrix is static, so it
// is cached like any other deterministic result.
func (s *Server) handleLitmus(w http.ResponseWriter, r *http.Request) {
	s.cached(w, r, "litmus", func(ctx context.Context) (any, error) {
		results, err := litmus.CheckAll()
		if err != nil {
			return nil, err
		}
		return results, nil
	})
}

// handleSweepSubmit serves POST /v1/sweeps: decode a sweep spec over the
// paper-defaults base and enqueue it as an async job. A resubmitted
// identical spec returns the existing job (200, not 202).
func (s *Server) handleSweepSubmit(w http.ResponseWriter, r *http.Request) {
	spec := sweep.DefaultSpec()
	if err := decodeStrict(r, &spec); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	status, created, err := s.jobs.Submit(s.baseCtx, spec)
	if err != nil {
		writeError(w, errorStatus(err), err)
		return
	}
	code := http.StatusOK
	if created {
		code = http.StatusAccepted
		s.metrics.jobsAccepted.Add(1)
	}
	w.Header().Set("Location", "/v1/sweeps/"+status.ID)
	writeJSON(w, code, status)
}

// handleSweepList serves GET /v1/sweeps.
func (s *Server) handleSweepList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Jobs []JobStatus `json:"jobs"`
	}{s.jobs.List()})
}

// handleSweepStatus serves GET /v1/sweeps/{id}.
func (s *Server) handleSweepStatus(w http.ResponseWriter, r *http.Request) {
	status, err := s.jobs.Status(r.PathValue("id"))
	if err != nil {
		writeError(w, errorStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, status)
}

// handleSweepArtifact serves GET /v1/sweeps/{id}/artifact: the finished
// job's versioned artifact, byte-identical to what cmd/memsweep -o would
// have written for the same spec. A job that is not done yet answers 409
// with its status.
func (s *Server) handleSweepArtifact(w http.ResponseWriter, r *http.Request) {
	body, status, err := s.jobs.Artifact(r.PathValue("id"))
	if err != nil {
		writeError(w, errorStatus(err), err)
		return
	}
	if status.State != StateDone {
		writeJSON(w, http.StatusConflict, status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// canonicalModelName rewrites a model name to its canonical casing
// ("tso" → "TSO") so case-variant identical requests share one cache
// entry and one in-flight computation. Unresolvable names pass through
// for validation to reject.
func canonicalModelName(name string) string {
	if m, err := memmodel.ByName(name); err == nil {
		return m.Name()
	}
	return name
}

// queryKey derives the cache key of a fully-defaulted request from its
// canonicalized estimator query: the endpoint name plus the query's
// deterministic JSON encoding (struct field order is fixed, so identical
// queries always collide — which is the point). The raw Confidence value
// (0 vs an explicit level) is part of the key because it is part of the
// request echo in the cached body.
func queryKey(endpoint string, q estimator.Query) (string, error) {
	data, err := json.Marshal(q.Normalized())
	if err != nil {
		return "", fmt.Errorf("serve: canonical key: %w", err)
	}
	return endpoint + ":" + string(data), nil
}
