package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"memreliability/internal/obs"
	"memreliability/internal/sweep"
)

// testQueueGauge returns a throwaway queue-depth gauge for direct
// jobStore construction in tests.
func testQueueGauge() *obs.Gauge {
	return obs.NewRegistry().Gauge("serve_job_queue_depth", "test gauge")
}

// smallSpec is a fast two-cell sweep for job tests.
func smallSpec(seed uint64) sweep.Spec {
	spec := sweep.DefaultSpec()
	spec.Models = []string{"SC", "TSO"}
	spec.Estimators = []sweep.Kind{sweep.Exact}
	spec.Seed = seed
	return spec
}

// waitTerminal polls the store until the job leaves queued/running.
func waitTerminal(t *testing.T, st *jobStore, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		status, err := st.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		switch status.State {
		case StateDone, StateFailed, StateCanceled:
			return status
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q", id, status.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestJobIDIgnoresWorkers(t *testing.T) {
	a := smallSpec(1).Normalized()
	b := a
	a.Workers = 1
	b.Workers = 32
	idA, err := jobID(a)
	if err != nil {
		t.Fatal(err)
	}
	idB, err := jobID(b)
	if err != nil {
		t.Fatal(err)
	}
	if idA != idB {
		t.Errorf("worker budget changed job identity: %s vs %s", idA, idB)
	}
	idC, err := jobID(smallSpec(2).Normalized())
	if err != nil {
		t.Fatal(err)
	}
	if idC == idA {
		t.Error("different seeds share a job identity")
	}
}

func TestJobStoreSubmitRunDedup(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	st := newJobStore(ctx, 1, 0, 4, 64, testQueueGauge(), nil)
	defer func() {
		cancel()
		st.drainAndWait()
	}()

	status, created, err := st.Submit(ctx, smallSpec(5))
	if err != nil || !created {
		t.Fatalf("submit: created=%v err=%v", created, err)
	}
	if status.CellsTotal != 2 {
		t.Fatalf("cells_total = %d, want 2", status.CellsTotal)
	}
	final := waitTerminal(t, st, status.ID)
	if final.State != StateDone || final.CellsDone != 2 {
		t.Fatalf("final = %+v", final)
	}

	// Resubmission after completion must return the finished job.
	again, created, err := st.Submit(ctx, smallSpec(5))
	if err != nil || created {
		t.Fatalf("resubmit: created=%v err=%v", created, err)
	}
	if again.ID != status.ID || again.State != StateDone {
		t.Fatalf("resubmit status = %+v", again)
	}

	body, _, err := st.Artifact(status.ID)
	if err != nil || len(body) == 0 {
		t.Fatalf("artifact: %d bytes, err=%v", len(body), err)
	}
}

func TestJobStoreValidatesSpec(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	st := newJobStore(ctx, 1, 0, 4, 64, testQueueGauge(), nil)
	defer func() {
		cancel()
		st.drainAndWait()
	}()
	spec := smallSpec(1)
	spec.Models = []string{"ARM"}
	if _, _, err := st.Submit(ctx, spec); !errors.Is(err, sweep.ErrBadSpec) {
		t.Fatalf("err = %v, want ErrBadSpec", err)
	}
}

func TestJobStoreQueueBound(t *testing.T) {
	// Zero workers: nothing drains the queue, so the bound must bite.
	ctx, cancel := context.WithCancel(context.Background())
	st := newJobStore(ctx, 0, 0, 2, 64, testQueueGauge(), nil)
	defer func() {
		cancel()
		st.drainAndWait()
	}()
	for seed := uint64(1); seed <= 2; seed++ {
		if _, _, err := st.Submit(ctx, smallSpec(seed)); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := st.Submit(ctx, smallSpec(3)); !errors.Is(err, ErrBusy) {
		t.Fatalf("err = %v, want ErrBusy", err)
	}
	// A duplicate of a queued job dedups instead of consuming capacity.
	if _, created, err := st.Submit(ctx, smallSpec(1)); err != nil || created {
		t.Fatalf("dedup on full queue: created=%v err=%v", created, err)
	}
}

func TestJobStoreEvictsOldestTerminal(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	st := newJobStore(ctx, 1, 0, 4, 2, testQueueGauge(), nil)
	defer func() {
		cancel()
		st.drainAndWait()
	}()

	first, _, err := st.Submit(ctx, smallSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, st, first.ID)
	second, _, err := st.Submit(ctx, smallSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, st, second.ID)

	// The store is at capacity with two terminal jobs; a third must
	// evict the oldest one.
	third, created, err := st.Submit(ctx, smallSpec(3))
	if err != nil || !created {
		t.Fatalf("submit at capacity: created=%v err=%v", created, err)
	}
	if _, err := st.Status(first.ID); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("oldest terminal job not evicted: %v", err)
	}
	if _, err := st.Status(second.ID); err != nil {
		t.Errorf("newer job evicted: %v", err)
	}
	if len(st.List()) != 2 {
		t.Errorf("store holds %d jobs, want 2", len(st.List()))
	}
	waitTerminal(t, st, third.ID)

	// An evicted spec is recomputable: resubmission creates a fresh job.
	again, created, err := st.Submit(ctx, smallSpec(1))
	if err != nil || !created {
		t.Fatalf("resubmit evicted: created=%v err=%v", created, err)
	}
	if again.ID != first.ID {
		t.Errorf("content address changed: %s vs %s", again.ID, first.ID)
	}
}

func TestJobStoreRefusesWhenAllActive(t *testing.T) {
	// Zero workers: submitted jobs stay queued (active) forever, so at
	// capacity there is nothing evictable.
	ctx, cancel := context.WithCancel(context.Background())
	st := newJobStore(ctx, 0, 0, 4, 2, testQueueGauge(), nil)
	defer func() {
		cancel()
		st.drainAndWait()
	}()
	for seed := uint64(1); seed <= 2; seed++ {
		if _, _, err := st.Submit(ctx, smallSpec(seed)); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := st.Submit(ctx, smallSpec(3)); !errors.Is(err, ErrBusy) {
		t.Fatalf("err = %v, want ErrBusy when every job is active", err)
	}
}

func TestJobStoreFullQueueDoesNotEvict(t *testing.T) {
	// A submission that will be refused for queue capacity must not
	// first destroy a retained artifact.
	ctx, cancel := context.WithCancel(context.Background())
	st := newJobStore(ctx, 0, 0, 1, 2, testQueueGauge(), nil)
	defer func() {
		cancel()
		st.drainAndWait()
	}()

	// Hand-insert a finished job (zero workers, so Submit alone can
	// never produce one).
	st.mu.Lock()
	st.jobs["old"] = &jobRecord{id: "old", state: StateDone, artifact: []byte("artifact")}
	st.order = append(st.order, "old")
	st.mu.Unlock()

	if _, _, err := st.Submit(ctx, smallSpec(1)); err != nil {
		t.Fatal(err)
	}
	// Store at MaxJobs and queue at capacity: the refusal must leave the
	// finished job and its artifact untouched.
	if _, _, err := st.Submit(ctx, smallSpec(2)); !errors.Is(err, ErrBusy) {
		t.Fatalf("err = %v, want ErrBusy", err)
	}
	body, status, err := st.Artifact("old")
	if err != nil || status.State != StateDone || string(body) != "artifact" {
		t.Fatalf("finished job damaged by refused submission: %q %+v %v", body, status, err)
	}
}

func TestJobStoreShutdownCancelsQueued(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	st := newJobStore(ctx, 0, 0, 4, 64, testQueueGauge(), nil)
	status, _, err := st.Submit(ctx, smallSpec(9))
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	st.drainAndWait()
	final, err := st.Status(status.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateCanceled {
		t.Fatalf("state = %q, want canceled", final.State)
	}
	if _, _, err := st.Submit(ctx, smallSpec(10)); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("post-shutdown submit err = %v, want ErrShuttingDown", err)
	}
}

// TestJobStoreListCreationOrder: List returns jobs oldest-first in
// submission order, not sorted by content-hash ID.
func TestJobStoreListCreationOrder(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	// No workers: jobs stay queued, so the listing is pure bookkeeping.
	st := newJobStore(ctx, 0, 0, 8, 64, testQueueGauge(), nil)
	defer func() {
		cancel()
		st.drainAndWait()
	}()

	var want []string
	for seed := uint64(1); seed <= 6; seed++ {
		status, created, err := st.Submit(ctx, smallSpec(seed))
		if err != nil || !created {
			t.Fatalf("submit seed %d: created=%v err=%v", seed, created, err)
		}
		want = append(want, status.ID)
	}

	// Guard the test's meaning: with hashed IDs the submission order
	// must differ from ID order, or this would pass under the old
	// sort-by-ID behavior too.
	sorted := true
	for i := 1; i < len(want); i++ {
		if want[i] < want[i-1] {
			sorted = false
			break
		}
	}
	if sorted {
		t.Fatal("test seeds produced ascending IDs; pick different seeds")
	}

	got := st.List()
	if len(got) != len(want) {
		t.Fatalf("List returned %d jobs, want %d", len(got), len(want))
	}
	for i, status := range got {
		if status.ID != want[i] {
			t.Fatalf("List[%d] = %s, want %s (creation order)", i, status.ID, want[i])
		}
	}
}

// TestJobStoreCustomRunner: a configured runner replaces sweep.Run for
// job execution and receives the normalized spec with the cell-worker
// budget applied.
func TestJobStoreCustomRunner(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var gotWorkers int
	runner := func(ctx context.Context, spec sweep.Spec, opts sweep.Options) (*sweep.Artifact, error) {
		gotWorkers = spec.Workers
		return sweep.Run(ctx, spec, opts)
	}
	st := newJobStore(ctx, 1, 3, 4, 64, testQueueGauge(), runner)
	defer func() {
		cancel()
		st.drainAndWait()
	}()

	status, _, err := st.Submit(ctx, smallSpec(9))
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, st, status.ID)
	if final.State != StateDone {
		t.Fatalf("final = %+v", final)
	}
	if gotWorkers != 3 {
		t.Fatalf("runner saw Workers = %d, want the cell-worker budget 3", gotWorkers)
	}
}
