package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"memreliability/internal/obs"
)

// TestMetricsPromExposition exercises the Prometheus endpoint: format
// headers, HELP/TYPE lines for the server families, per-route request
// counting, and the engine's per-kind estimator counter climbing after
// an estimate.
func TestMetricsPromExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	get(t, ts.URL+"/healthz")
	if resp, body := post(t, ts.URL+"/v1/estimate",
		`{"model":"SC","threads":2,"estimator":"exact","seed":3}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate status %d: %s", resp.StatusCode, body)
	}

	resp, body := get(t, ts.URL+"/metrics/prom")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics/prom status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		"# HELP serve_requests_total ",
		"# TYPE serve_requests_total counter",
		"# TYPE serve_request_seconds histogram",
		"# TYPE serve_job_queue_depth gauge",
		`serve_requests_total{route="GET /healthz"} 1`,
		`serve_requests_total{route="POST /v1/estimate"} 1`,
		`serve_cache_events_total{route="POST /v1/estimate",state="miss"} 1`,
		"# TYPE estimator_queries_total counter",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// The per-kind engine counter is process-global, so other tests may
	// have raised it — assert presence with a positive value, not ==.
	found := false
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, `estimator_queries_total{kind="exact"} `) {
			found = true
			v, err := strconv.Atoi(line[strings.LastIndexByte(line, ' ')+1:])
			if err != nil || v < 1 {
				t.Errorf("bad exact-kind count line %q", line)
			}
		}
	}
	if !found {
		t.Error(`exposition missing estimator_queries_total{kind="exact"}`)
	}
	assertMonotoneBuckets(t, text)
}

// assertMonotoneBuckets checks every histogram series in the exposition
// for non-decreasing cumulative bucket counts (the registry emits
// buckets in ascending-bound order).
func assertMonotoneBuckets(t *testing.T, text string) {
	t.Helper()
	last := make(map[string]int64)
	for _, line := range strings.Split(text, "\n") {
		i := strings.Index(line, `le="`)
		if !strings.Contains(line, "_bucket{") || i < 0 {
			continue
		}
		series := line[:strings.Index(line, "{")] + line[:i] // name + labels before le
		v, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if prev, ok := last[series]; ok && v < prev {
			t.Errorf("bucket counts decrease on %q: %d after %d", line, v, prev)
		}
		last[series] = v
	}
	if len(last) == 0 {
		t.Fatal("no histogram buckets in exposition")
	}
}

// TestRequestIDHeader pins the X-Request-ID contract: generated when
// absent, echoed when well-formed, replaced when hostile.
func TestRequestIDHeader(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, _ := get(t, ts.URL+"/healthz")
	gen := resp.Header.Get("X-Request-ID")
	if gen == "" {
		t.Fatal("no X-Request-ID generated")
	}

	for _, tc := range []struct {
		sent string
		echo bool
	}{
		{"client-abc.123", true},
		{"bad id!with junk", false},
		{strings.Repeat("x", 65), false},
	} {
		req, err := http.NewRequest("GET", ts.URL+"/healthz", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Request-ID", tc.sent)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		got := resp.Header.Get("X-Request-ID")
		if tc.echo && got != tc.sent {
			t.Errorf("well-formed ID %q not propagated, got %q", tc.sent, got)
		}
		if !tc.echo && (got == "" || strings.Contains(got, " ")) {
			t.Errorf("hostile ID %q: response ID %q not regenerated", tc.sent, got)
		}
	}
}

// TestTraceEnvelope checks the X-Trace opt-in: the response becomes an
// envelope carrying the span tree plus the byte-for-byte original JSON
// body, and the tree reaches down into the engine spans.
func TestTraceEnvelope(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	reqBody := `{"model":"TSO","threads":2,"estimator":"mc","trials":4096,"seed":11}`

	// Plain request first so the traced one is a cache hit of the same
	// bytes; then a traced miss on a different seed exercises the
	// compute spans.
	_, plain := post(t, ts.URL+"/v1/estimate", reqBody)

	req, err := http.NewRequest("POST", ts.URL+"/v1/estimate", strings.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Trace", "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	envBody := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced status %d: %s", resp.StatusCode, envBody)
	}

	var env struct {
		Trace    obs.SpanJSON    `json:"trace"`
		Response json.RawMessage `json:"response"`
	}
	if err := json.Unmarshal(envBody, &env); err != nil {
		t.Fatalf("parse envelope: %v\n%s", err, envBody)
	}
	if env.Trace.Name != "http.request" {
		t.Errorf("trace root = %q", env.Trace.Name)
	}
	if env.Trace.Attrs["request_id"] == "" {
		t.Error("trace root missing request_id attr")
	}
	var a, b any
	if err := json.Unmarshal(plain, &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(env.Response, &b); err != nil {
		t.Fatal(err)
	}
	ca, _ := json.Marshal(a)
	cb, _ := json.Marshal(b)
	if string(ca) != string(cb) {
		t.Errorf("embedded response differs from plain body:\n%s\n%s", ca, cb)
	}

	// A traced miss must show the engine spans under the request root.
	req2, err := http.NewRequest("POST", ts.URL+"/v1/estimate",
		strings.NewReader(`{"model":"TSO","threads":2,"estimator":"mc","trials":4096,"seed":12}`))
	if err != nil {
		t.Fatal(err)
	}
	req2.Header.Set("Content-Type", "application/json")
	req2.Header.Set("X-Trace", "1")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	envBody2 := readAll(t, resp2)
	for _, want := range []string{`"cache.lookup"`, `"compute"`, `"estimator.dispatch"`} {
		if !strings.Contains(string(envBody2), want) {
			t.Errorf("traced miss envelope missing span %s:\n%s", want, envBody2)
		}
	}
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// brokenWriter fails every body write, simulating a client that
// disconnected mid-stream.
type brokenWriter struct {
	h http.Header
}

func (b *brokenWriter) Header() http.Header {
	if b.h == nil {
		b.h = make(http.Header)
	}
	return b.h
}
func (b *brokenWriter) WriteHeader(int) {}
func (b *brokenWriter) Write([]byte) (int, error) {
	return 0, context.Canceled
}

// TestFailedWriteCountsNothing is the satellite-6 regression test: a
// response the client never received must not count as a cache outcome
// — but the computation itself still counts, and the cached bytes still
// serve the next client as a hit.
func TestFailedWriteCountsNothing(t *testing.T) {
	srv, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	compute := func(ctx context.Context) (any, error) {
		return map[string]string{"v": "1"}, nil
	}
	req := httptest.NewRequest("GET", "/v1/litmus", nil)

	srv.cached(&brokenWriter{}, req, "k", compute)
	if got := srv.metrics.misses.Value(); got != 0 {
		t.Errorf("misses = %d after failed write, want 0", got)
	}
	if got := srv.metrics.hits.Value(); got != 0 {
		t.Errorf("hits = %d after failed write, want 0", got)
	}
	if got := srv.metrics.computations.Value(); got != 1 {
		t.Errorf("computations = %d, want 1 (work happened)", got)
	}

	rec := httptest.NewRecorder()
	srv.cached(rec, req, "k", compute)
	if got := rec.Header().Get("X-Cache"); got != "hit" {
		t.Errorf("second serve X-Cache = %q, want hit (bytes were cached)", got)
	}
	if got := srv.metrics.hits.Value(); got != 1 {
		t.Errorf("hits = %d after successful write, want 1", got)
	}
	if got := srv.metrics.computations.Value(); got != 1 {
		t.Errorf("computations = %d, want still 1", got)
	}
}

// TestJobQueueDepthGauge pins the queue-depth gauge transitions: one
// queued job with no workers raises it to 1.
func TestJobQueueDepthGauge(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := testQueueGauge()
	st := newJobStore(ctx, 0, 0, 4, 64, g, nil)
	defer func() {
		cancel()
		st.drainAndWait()
	}()
	if _, _, err := st.Submit(context.Background(), smallSpec(41)); err != nil {
		t.Fatal(err)
	}
	if got := g.Value(); got != 1 {
		t.Errorf("queue depth = %v after enqueue, want 1", got)
	}
}
