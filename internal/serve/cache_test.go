package serve

import (
	"bytes"
	"testing"
)

func TestLRUBasic(t *testing.T) {
	c := newLRUCache(2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache hit")
	}
	c.Add("a", []byte("1"))
	c.Add("b", []byte("2"))
	if v, ok := c.Get("a"); !ok || !bytes.Equal(v, []byte("1")) {
		t.Fatalf("a = %q, %v", v, ok)
	}
	// "b" is now least recently used and must be the one evicted.
	c.Add("c", []byte("3"))
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a evicted despite recent use")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("c missing")
	}
	if c.Len() != 2 {
		t.Errorf("len = %d, want 2", c.Len())
	}
}

func TestLRUUpdateExisting(t *testing.T) {
	c := newLRUCache(2)
	c.Add("a", []byte("1"))
	c.Add("a", []byte("2"))
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
	if v, _ := c.Get("a"); !bytes.Equal(v, []byte("2")) {
		t.Errorf("a = %q, want 2", v)
	}
}

// TestLRUDisabled is the regression test for the nonpositive-max bug:
// newLRUCache(0) used to insert each entry and then immediately evict it
// (Len() > max holds for any insertion), so every request missed and
// churned the singleflight group. A nonpositive max must mean
// "explicitly disabled": store nothing, never panic.
func TestLRUDisabled(t *testing.T) {
	for _, max := range []int{0, -1} {
		c := newLRUCache(max)
		c.Add("a", []byte("1"))
		if _, ok := c.Get("a"); ok {
			t.Errorf("max=%d: disabled cache returned a hit", max)
		}
		if c.Len() != 0 {
			t.Errorf("max=%d: disabled cache holds %d entries", max, c.Len())
		}
		// Repeated adds must stay no-ops, not accumulate or evict-churn.
		c.Add("a", []byte("2"))
		c.Add("b", []byte("3"))
		if c.Len() != 0 {
			t.Errorf("max=%d: disabled cache grew to %d entries", max, c.Len())
		}
	}
}

func TestLRUConcurrent(t *testing.T) {
	c := newLRUCache(8)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			key := string(rune('a' + g))
			for i := 0; i < 1000; i++ {
				c.Add(key, []byte{byte(i)})
				c.Get(key)
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
}
