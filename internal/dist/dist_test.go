package dist

import (
	"errors"
	"math"
	"testing"

	"memreliability/internal/rng"
)

func TestNewPMFValidation(t *testing.T) {
	if _, err := NewPMF(nil); !errors.Is(err, ErrBadMass) {
		t.Error("empty mass accepted")
	}
	if _, err := NewPMF([]float64{0.5, -0.2}); !errors.Is(err, ErrBadMass) {
		t.Error("negative mass accepted")
	}
	if _, err := NewPMF([]float64{0.8, 0.8}); !errors.Is(err, ErrBadMass) {
		t.Error("total mass > 1 accepted")
	}
	if _, err := NewPMF([]float64{math.NaN()}); !errors.Is(err, ErrBadMass) {
		t.Error("NaN mass accepted")
	}
}

func TestPMFAccessors(t *testing.T) {
	pmf, err := NewPMF([]float64{0.5, 0.25, 0.125})
	if err != nil {
		t.Fatal(err)
	}
	if pmf.Len() != 3 {
		t.Errorf("Len = %d", pmf.Len())
	}
	if pmf.At(1) != 0.25 {
		t.Errorf("At(1) = %v", pmf.At(1))
	}
	if pmf.At(-1) != 0 || pmf.At(3) != 0 {
		t.Error("out-of-support mass not zero")
	}
	if math.Abs(pmf.Total()-0.875) > 1e-15 {
		t.Errorf("Total = %v", pmf.Total())
	}
}

func TestPMFDoesNotAliasInput(t *testing.T) {
	mass := []float64{0.5, 0.5}
	pmf, err := NewPMF(mass)
	if err != nil {
		t.Fatal(err)
	}
	mass[0] = 0
	if pmf.At(0) != 0.5 {
		t.Error("PMF aliases caller mass")
	}
}

func TestPMFClampsTinyNegatives(t *testing.T) {
	pmf, err := NewPMF([]float64{1e-12 * -1, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if pmf.At(0) != 0 {
		t.Errorf("tiny negative not clamped: %v", pmf.At(0))
	}
}

func TestStandardShiftMatchesDefinition1(t *testing.T) {
	src := rng.New(5)
	const trials = 200000
	counts := make([]int, 16)
	for i := 0; i < trials; i++ {
		k := StandardShift().Sample(src)
		if k < len(counts) {
			counts[k]++
		}
	}
	for k := 0; k < 6; k++ {
		want := math.Pow(2, -float64(k+1))
		got := float64(counts[k]) / trials
		if math.Abs(got-want) > 0.005 {
			t.Errorf("Pr[s=%d] = %v, want %v", k, got, want)
		}
	}
}

func TestGeometricZeroContinuation(t *testing.T) {
	src := rng.New(1)
	for i := 0; i < 100; i++ {
		if k := (Geometric{P: 0}).Sample(src); k != 0 {
			t.Fatalf("P=0 sampled %d", k)
		}
	}
}
