// Package dist provides the small discrete distributions shared by the
// settling and shift processes: tabulated probability mass functions
// (possibly sub-probability, with untabulated tail mass beyond the
// tabulated support) and the geometric shift distribution of §5.
package dist

import (
	"errors"
	"fmt"
	"math"

	"memreliability/internal/rng"
)

// ErrBadMass reports an invalid probability mass vector.
var ErrBadMass = errors.New("dist: bad probability mass")

// massTol absorbs floating-point drift when validating mass vectors.
const massTol = 1e-9

// PMF is a probability mass function tabulated on {0, 1, ..., Len()-1}.
// The tabulated mass may sum to less than one; the remainder is tail mass
// supported beyond the tabulated range (callers such as analytic.SegmentMGF
// bound the tail's contribution rigorously).
type PMF struct {
	mass  []float64
	total float64
}

// NewPMF builds a PMF from the given mass vector. Entries must be
// non-negative (up to floating-point tolerance, with tiny negatives
// clamped to zero) and must not sum to more than one.
func NewPMF(mass []float64) (*PMF, error) {
	if len(mass) == 0 {
		return nil, fmt.Errorf("%w: empty mass vector", ErrBadMass)
	}
	m := make([]float64, len(mass))
	total := 0.0
	for i, v := range mass {
		if math.IsNaN(v) || v < -massTol {
			return nil, fmt.Errorf("%w: mass[%d] = %v", ErrBadMass, i, v)
		}
		if v < 0 {
			v = 0
		}
		m[i] = v
		total += v
	}
	if total > 1+massTol {
		return nil, fmt.Errorf("%w: total mass %v exceeds 1", ErrBadMass, total)
	}
	return &PMF{mass: m, total: total}, nil
}

// Len returns the size of the tabulated support.
func (p *PMF) Len() int { return len(p.mass) }

// At returns the mass at value i; values outside the tabulated support
// have mass zero (the untabulated tail is reported only via Total).
func (p *PMF) At(i int) float64 {
	if i < 0 || i >= len(p.mass) {
		return 0
	}
	return p.mass[i]
}

// Total returns the total tabulated mass; 1 − Total() is tail mass.
func (p *PMF) Total() float64 { return p.total }

// Geometric is the geometric distribution Pr[X = k] = (1−P)·P^k on
// k ∈ {0, 1, 2, ...}, parameterized by the continuation probability P.
type Geometric struct {
	// P is the continuation probability, in [0, 1).
	P float64
}

// StandardShift returns the shift process's shift distribution
// (Definition 1): Pr[s = k] = 2^-(k+1), i.e. Geometric with P = 1/2.
func StandardShift() Geometric { return Geometric{P: 0.5} }

// Sample draws one variate using the given source.
func (g Geometric) Sample(src *rng.Source) int {
	k := 0
	for src.Bool(g.P) {
		k++
	}
	return k
}
