package estimator

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"

	"memreliability/internal/obs"
)

// SplitWorkerBudget partitions a total CPU budget across the pool
// workers sharing `tasks` jobs: min(budget, tasks) workers, each with an
// inner Monte Carlo budget, the remainder distributed one slot at a time
// so the slices always sum to the full budget. Without the remainder, a
// budget that doesn't divide the worker count leaves cores idle (e.g.
// budget=8 over 3 queries truncated to 3×2 workers, idling 2 cores).
// The split is pure scheduling — results never depend on it.
func SplitWorkerBudget(budget, tasks int) []int {
	workers := budget
	if workers > tasks {
		workers = tasks
	}
	if workers < 1 {
		workers = 1
	}
	inner := make([]int, workers)
	base, rem := budget/workers, budget%workers
	for w := range inner {
		inner[w] = base
		if w < rem {
			inner[w]++
		}
		if inner[w] < 1 {
			inner[w] = 1
		}
	}
	return inner
}

// BatchOptions tunes an EstimateBatch run without affecting its results.
type BatchOptions struct {
	// Workers bounds the total CPU budget: at most min(Workers, len)
	// queries run concurrently, and the leftover budget becomes each
	// query's inner Monte Carlo parallelism. 0 means GOMAXPROCS.
	Workers int
	// Timing records per-result wall-clock time (breaks byte-level
	// reproducibility of encoded results).
	Timing bool
	// Progress, when non-nil, receives each result as it completes
	// (completion order, not index order). Calls are serialized.
	Progress func(index int, r Result)
}

// EstimateBatch evaluates the queries concurrently under the options'
// worker budget and returns the results in query order. Each query's
// substream seed is derived from its own Seed with the canonical
// DeriveSeeds derivation, so every result is identical to what a lone
// Estimate of that query returns — regardless of batch size, worker
// budget, or completion order. The first failure cancels the remaining
// queries.
func EstimateBatch(ctx context.Context, queries []Query, opts BatchOptions) ([]Result, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("%w: empty batch", ErrBadQuery)
	}
	if opts.Workers < 0 {
		return nil, fmt.Errorf("%w: workers=%d", ErrBadQuery, opts.Workers)
	}

	// Normalize and validate every query up front: a batch with one bad
	// query fails before any compute is spent.
	norm := make([]Query, len(queries))
	for i, q := range queries {
		norm[i] = q.Normalized()
		if err := norm[i].Validate(); err != nil {
			return nil, fmt.Errorf("estimator: batch query %d: %w", i, err)
		}
	}

	// Split the budget across the two parallelism layers instead of
	// multiplying it, mirroring the sweep engine: queries share the
	// pool, and each query's inner Monte Carlo gets the leftover slice.
	budget := opts.Workers
	if budget == 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	inner := SplitWorkerBudget(budget, len(norm))
	workers := len(inner)

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]Result, len(norm))
	errs := make([]error, workers)
	jobs := make(chan int)
	var progressMu sync.Mutex

	// Per-query child spans are created in the sequential feed loop below
	// — never inside the workers — so span order is index order and the
	// exported trace tree is deterministic at any worker count.
	parent := obs.SpanFrom(ctx)
	spans := make([]*obs.Span, len(norm))

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for idx := range jobs {
				q := norm[idx]
				res, err := Run(obs.WithSpan(runCtx, spans[idx]), q, DeriveSeeds(q.Seed, 1)[0],
					Exec{Workers: inner[w], Timing: opts.Timing})
				spans[idx].End()
				if err != nil {
					errs[w] = fmt.Errorf("estimator: batch query %d: %w", idx, err)
					cancel()
					return
				}
				results[idx] = res
				if opts.Progress != nil {
					progressMu.Lock()
					opts.Progress(idx, res)
					progressMu.Unlock()
				}
			}
		}(w)
	}

feed:
	for idx := range norm {
		spans[idx] = parent.Child("estimate",
			obs.L("index", strconv.Itoa(idx)),
			obs.L("kind", string(norm[idx].Kind)))
		select {
		case jobs <- idx:
		case <-runCtx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	// Prefer a root-cause failure over the cancellations it induced in
	// sibling workers.
	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if firstErr == nil || errors.Is(firstErr, context.Canceled) {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("estimator: %w", err)
	}
	return results, nil
}
