package estimator

import (
	"context"
	"fmt"

	"memreliability/internal/core"
	"memreliability/internal/mc"
	"memreliability/internal/memmodel"
	"memreliability/internal/settle"
)

// The four built-in routes register at init, so every surface that can
// name a Kind can dispatch it.
func init() {
	Register(exactEstimator{})
	Register(fullMCEstimator{})
	Register(hybridEstimator{})
	Register(windowDistEstimator{})
	Register(compiledMCEstimator{})
}

// coreConfig translates the query into the joined-model configuration.
func coreConfig(q Query) (core.Config, error) {
	model, err := memmodel.ByName(q.Model)
	if err != nil {
		return core.Config{}, fmt.Errorf("estimator: %w", err)
	}
	return core.Config{
		Model:     model,
		Threads:   q.Threads,
		PrefixLen: q.PrefixLen,
		StoreProb: q.StoreProb,
		SwapProb:  q.SwapProb,
	}, nil
}

// mcConfig translates the query and execution budget into the Monte
// Carlo harness configuration on the derived substream seed.
func mcConfig(q Query, seed uint64, ex Exec) mc.Config {
	return mc.Config{Trials: q.Trials, Workers: ex.Workers, Seed: seed}
}

// adaptiveConfig translates a precision-carrying query into the adaptive
// harness configuration. The query must be normalized (Precision cloned,
// MaxTrials defaulted), which Estimate/EstimateBatch/sweep dispatch all
// guarantee; the MaxTrials fallback repeats the default defensively for
// direct Run callers.
func adaptiveConfig(q Query, seed uint64, ex Exec) mc.AdaptiveConfig {
	p := *q.Precision
	max := p.MaxTrials
	if max == 0 {
		max = q.Trials
	}
	return mc.AdaptiveConfig{
		MaxTrials:       max,
		Workers:         ex.Workers,
		Seed:            seed,
		TargetHalfWidth: p.TargetHalfWidth,
		TargetRelErr:    p.TargetRelErr,
		Confidence:      q.confidence(),
	}
}

// exactEstimator is the n=2 exact dynamic program (Theorem 6.2).
type exactEstimator struct{}

func (exactEstimator) Kind() Kind          { return Exact }
func (exactEstimator) DisplayName() string { return "exact DP (n=2)" }
func (exactEstimator) NeedsTrials() bool   { return false }

func (exactEstimator) Estimate(ctx context.Context, q Query, seed uint64, ex Exec) (Result, error) {
	res := Result{Kind: Exact, EffectiveM: q.PrefixLen}
	if q.Threads != 2 {
		res.Skipped = true
		res.Note = "exact DP requires n = 2"
		return res, nil
	}
	cfg, err := coreConfig(q)
	if err != nil {
		return res, err
	}
	if cfg.PrefixLen > ExactPrefixCap {
		cfg.PrefixLen = ExactPrefixCap
		res.EffectiveM = ExactPrefixCap
		res.Note = fmt.Sprintf("m clamped to %d for exact DP", ExactPrefixCap)
	}
	iv, err := core.ExactTwoThreadPrA(cfg)
	if err != nil {
		return res, fmt.Errorf("estimator: %w", err)
	}
	res.Estimate = iv.Midpoint()
	res.Lo, res.Hi = iv.Lo, iv.Hi
	res.LogEstimate = safeLog(res.Estimate)
	return res, nil
}

// fullMCEstimator is full end-to-end Monte Carlo of the joined process.
// It runs on the mc harness's bit-parallel hot path (core.Config.NoBugBits,
// the table-driven kernel): 64 trials per word, whole chunks per call,
// zero steady-state allocations, bit-identical to the historical
// per-trial and []bool routes.
type fullMCEstimator struct{}

func (fullMCEstimator) Kind() Kind          { return FullMC }
func (fullMCEstimator) DisplayName() string { return "full Monte Carlo" }
func (fullMCEstimator) NeedsTrials() bool   { return true }

func (fullMCEstimator) Estimate(ctx context.Context, q Query, seed uint64, ex Exec) (Result, error) {
	res := Result{Kind: FullMC, EffectiveM: q.PrefixLen}
	cfg, err := coreConfig(q)
	if err != nil {
		return res, err
	}
	var out *mc.Result
	if q.Precision != nil {
		adaptive, err := core.EstimateNoBugProbAdaptive(ctx, cfg, adaptiveConfig(q, seed, ex))
		if err != nil {
			return res, fmt.Errorf("estimator: %w", err)
		}
		out = &adaptive.Result
		res.TrialsUsed = adaptive.TrialsUsed()
		res.Rounds = adaptive.Rounds
		res.StopReason = string(adaptive.StopReason)
	} else {
		out, err = core.EstimateNoBugProb(ctx, cfg, mcConfig(q, seed, ex))
		if err != nil {
			return res, fmt.Errorf("estimator: %w", err)
		}
		res.TrialsUsed = q.Trials
	}
	level := q.confidence()
	lo, hi, err := out.WilsonCI(level)
	if err != nil {
		return res, fmt.Errorf("estimator: %w", err)
	}
	res.Estimate = out.Estimate()
	res.Lo, res.Hi = lo, hi
	res.Confidence = level
	res.LogEstimate = safeLog(res.Estimate)
	return res, nil
}

// compiledMCEstimator is full Monte Carlo on the compiler engine: the
// query is lowered through core's plan cache into a monomorphized,
// bulk-RNG trial kernel. Seed derivation is kind-independent, so an
// mc-compiled query is bit-identical to the same query under mc — the
// cross-engine property tests and the differential smoke job gate on
// exactly that.
type compiledMCEstimator struct{}

func (compiledMCEstimator) Kind() Kind          { return CompiledMC }
func (compiledMCEstimator) DisplayName() string { return "full Monte Carlo (compiled kernel)" }
func (compiledMCEstimator) NeedsTrials() bool   { return true }

func (compiledMCEstimator) Estimate(ctx context.Context, q Query, seed uint64, ex Exec) (Result, error) {
	res := Result{Kind: CompiledMC, EffectiveM: q.PrefixLen}
	cfg, err := coreConfig(q)
	if err != nil {
		return res, err
	}
	var out *mc.Result
	if q.Precision != nil {
		adaptive, err := core.EstimateNoBugProbCompiledAdaptive(ctx, cfg, adaptiveConfig(q, seed, ex))
		if err != nil {
			return res, fmt.Errorf("estimator: %w", err)
		}
		out = &adaptive.Result
		res.TrialsUsed = adaptive.TrialsUsed()
		res.Rounds = adaptive.Rounds
		res.StopReason = string(adaptive.StopReason)
	} else {
		out, err = core.EstimateNoBugProbCompiled(ctx, cfg, mcConfig(q, seed, ex))
		if err != nil {
			return res, fmt.Errorf("estimator: %w", err)
		}
		res.TrialsUsed = q.Trials
	}
	level := q.confidence()
	lo, hi, err := out.WilsonCI(level)
	if err != nil {
		return res, fmt.Errorf("estimator: %w", err)
	}
	res.Estimate = out.Estimate()
	res.Lo, res.Hi = lo, hi
	res.Confidence = level
	res.LogEstimate = safeLog(res.Estimate)
	return res, nil
}

// hybridEstimator is the Theorem 6.1 hybrid route. Its product
// expectation runs on the mc harness's batched hot path via the
// table-driven kernel (core.Config.ProductBatch), bit-identical to the
// per-trial route.
type hybridEstimator struct{}

func (hybridEstimator) Kind() Kind          { return Hybrid }
func (hybridEstimator) DisplayName() string { return "hybrid (Thm 6.1)" }
func (hybridEstimator) NeedsTrials() bool   { return true }

func (hybridEstimator) Estimate(ctx context.Context, q Query, seed uint64, ex Exec) (Result, error) {
	res := Result{Kind: Hybrid, EffectiveM: q.PrefixLen}
	cfg, err := coreConfig(q)
	if err != nil {
		return res, err
	}
	var out *core.HybridResult
	if q.Precision != nil {
		adaptive, err := core.HybridPrAAdaptive(ctx, cfg, adaptiveConfig(q, seed, ex))
		if err != nil {
			return res, fmt.Errorf("estimator: %w", err)
		}
		out = &adaptive.HybridResult
		res.TrialsUsed = adaptive.TrialsUsed
		res.Rounds = adaptive.Rounds
		res.StopReason = string(adaptive.StopReason)
	} else {
		out, err = core.HybridPrA(ctx, cfg, mcConfig(q, seed, ex))
		if err != nil {
			return res, fmt.Errorf("estimator: %w", err)
		}
		res.TrialsUsed = q.Trials
	}
	res.Estimate = out.PrA
	res.LogEstimate = out.LogPrA
	res.StdErr = out.StdErr
	res.ProductExpectation = out.ProductExpectation
	return res, nil
}

// windowDistEstimator tabulates the exact Pr[B_γ] distribution.
type windowDistEstimator struct{}

func (windowDistEstimator) Kind() Kind          { return WindowDist }
func (windowDistEstimator) DisplayName() string { return "window distribution" }
func (windowDistEstimator) NeedsTrials() bool   { return false }

func (windowDistEstimator) Estimate(ctx context.Context, q Query, seed uint64, ex Exec) (Result, error) {
	res := Result{Kind: WindowDist, EffectiveM: q.PrefixLen}
	model, err := memmodel.ByName(q.Model)
	if err != nil {
		return res, fmt.Errorf("estimator: %w", err)
	}
	m := q.PrefixLen
	if m > ExactPrefixCap {
		m = ExactPrefixCap
		res.EffectiveM = m
		res.Note = fmt.Sprintf("m clamped to %d for exact DP", ExactPrefixCap)
	}
	maxGamma := q.MaxGamma
	if maxGamma > m {
		maxGamma = m
	}
	pmf, err := settle.ExactWindowDist(model, m, q.StoreProb, q.SwapProb, maxGamma)
	if err != nil {
		return res, fmt.Errorf("estimator: %w", err)
	}
	res.Dist = make([]float64, maxGamma+1)
	mean := 0.0
	for gamma := range res.Dist {
		res.Dist[gamma] = pmf.At(gamma)
		mean += float64(gamma) * pmf.At(gamma)
	}
	res.Estimate = mean
	return res, nil
}
