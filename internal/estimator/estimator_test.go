package estimator_test

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"memreliability/internal/estimator"
	"memreliability/internal/sweep"
)

func TestDefaultQueryIsValidNormalForm(t *testing.T) {
	q := estimator.DefaultQuery()
	q.Model = "TSO"
	if err := q.Normalized().Validate(); err != nil {
		t.Fatalf("DefaultQuery invalid: %v", err)
	}
	if q.Kind != estimator.Hybrid || q.Threads != 2 || q.PrefixLen != 64 ||
		q.StoreProb != 0.5 || q.SwapProb != 0.5 || q.Trials != 50000 ||
		q.Seed != 1 || q.Confidence != estimator.DefaultConfidence || q.MaxGamma != 8 {
		t.Errorf("DefaultQuery = %+v is not the paper's normal form", q)
	}
}

func TestNormalizedCanonicalizesCaseVariants(t *testing.T) {
	q := estimator.Query{Kind: "EXACT", Model: "tso"}
	n := q.Normalized()
	if n.Kind != estimator.Exact || n.Model != "TSO" {
		t.Errorf("Normalized = %+v", n)
	}
	// Unresolvable names pass through for Validate to reject.
	bad := estimator.Query{Kind: "exact", Model: "ARM"}.Normalized()
	if bad.Model != "ARM" {
		t.Errorf("unresolvable model rewritten to %q", bad.Model)
	}
}

func TestValidateRejectsBadQueries(t *testing.T) {
	base := estimator.DefaultQuery()
	base.Model = "SC"
	cases := []struct {
		name   string
		mutate func(*estimator.Query)
	}{
		{"unknown kind", func(q *estimator.Query) { q.Kind = "oracle" }},
		{"unknown model", func(q *estimator.Query) { q.Model = "ARM" }},
		{"threads too small", func(q *estimator.Query) { q.Threads = 1 }},
		{"zero prefix", func(q *estimator.Query) { q.PrefixLen = 0 }},
		{"zero trials for mc", func(q *estimator.Query) { q.Kind = estimator.FullMC; q.Trials = 0 }},
		{"zero trials for hybrid", func(q *estimator.Query) { q.Kind = estimator.Hybrid; q.Trials = 0 }},
		{"store prob out of range", func(q *estimator.Query) { q.StoreProb = 1.5 }},
		{"store prob NaN", func(q *estimator.Query) { q.StoreProb = math.NaN() }},
		{"swap prob negative", func(q *estimator.Query) { q.SwapProb = -0.1 }},
		{"swap prob NaN", func(q *estimator.Query) { q.SwapProb = math.NaN() }},
		{"confidence at 1", func(q *estimator.Query) { q.Confidence = 1 }},
		{"confidence negative", func(q *estimator.Query) { q.Confidence = -0.5 }},
		{"confidence NaN", func(q *estimator.Query) { q.Confidence = math.NaN() }},
		{"negative max gamma", func(q *estimator.Query) { q.MaxGamma = -1 }},
	}
	for _, tc := range cases {
		q := base
		tc.mutate(&q)
		if err := q.Validate(); !errors.Is(err, estimator.ErrBadQuery) {
			t.Errorf("%s: err = %v, want ErrBadQuery", tc.name, err)
		}
	}
	// Windowdist ignores threads and trials entirely.
	wd := estimator.Query{Kind: estimator.WindowDist, Model: "SC", PrefixLen: 8}
	if err := wd.Validate(); err != nil {
		t.Errorf("windowdist with zero threads/trials rejected: %v", err)
	}
}

func TestExactMatchesTheorem62(t *testing.T) {
	q := estimator.DefaultQuery()
	q.Kind = estimator.Exact
	q.Model = "SC"
	q.PrefixLen = 16
	res, err := estimator.Estimate(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Estimate-1.0/6.0) > 1e-6 {
		t.Errorf("SC exact = %v, want 1/6", res.Estimate)
	}
	if res.Lo > res.Estimate || res.Estimate > res.Hi {
		t.Errorf("estimate %v outside [%v, %v]", res.Estimate, res.Lo, res.Hi)
	}
}

func TestExactSkipsWrongThreadCount(t *testing.T) {
	q := estimator.DefaultQuery()
	q.Kind = estimator.Exact
	q.Model = "SC"
	q.Threads = 4
	res, err := estimator.Estimate(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Skipped || res.Note == "" {
		t.Errorf("exact at n=4 not skipped: %+v", res)
	}
}

func TestExactClampsPrefix(t *testing.T) {
	q := estimator.DefaultQuery()
	q.Kind = estimator.Exact
	q.Model = "TSO"
	q.PrefixLen = 64
	res, err := estimator.Estimate(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.EffectiveM != estimator.ExactPrefixCap {
		t.Errorf("EffectiveM = %d, want %d", res.EffectiveM, estimator.ExactPrefixCap)
	}
	if res.Note == "" {
		t.Error("clamp not recorded in Note")
	}
}

func TestWindowDistClampsSupportAndPrefix(t *testing.T) {
	q := estimator.DefaultQuery()
	q.Kind = estimator.WindowDist
	q.Model = "WO"
	q.PrefixLen = 64
	q.MaxGamma = 40
	res, err := estimator.Estimate(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.EffectiveM != estimator.ExactPrefixCap {
		t.Errorf("EffectiveM = %d, want %d", res.EffectiveM, estimator.ExactPrefixCap)
	}
	if len(res.Dist) != estimator.ExactPrefixCap+1 {
		t.Errorf("dist length %d, want %d (max gamma clamped to effective m)",
			len(res.Dist), estimator.ExactPrefixCap+1)
	}
	if math.Abs(res.Dist[0]-2.0/3.0) > 1e-3 {
		t.Errorf("WO Pr[B_0] = %v, want ≈ 2/3", res.Dist[0])
	}
}

func TestEstimateDeterministicAcrossWorkers(t *testing.T) {
	q := estimator.DefaultQuery()
	q.Model = "WO"
	q.Threads = 3
	q.PrefixLen = 24
	q.Trials = 3000
	q.Seed = 9
	ctx := context.Background()
	serial, err := estimator.EstimateExec(ctx, q, estimator.Exec{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := estimator.EstimateExec(ctx, q, estimator.Exec{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("results differ across worker budgets:\n%+v\n%+v", serial, parallel)
	}
}

func TestEstimateHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := estimator.DefaultQuery()
	q.Model = "SC"
	q.Trials = 5_000_000
	if _, err := estimator.Estimate(ctx, q); err == nil {
		t.Error("canceled estimate succeeded")
	}
}

// TestBatchMatchesSingleEstimates is the batch-equivalence contract:
// every result of a mixed-kind batch is identical to a lone Estimate of
// the same query, at any worker budget, with progress observing every
// completion exactly once.
func TestBatchMatchesSingleEstimates(t *testing.T) {
	ctx := context.Background()
	var queries []estimator.Query
	for _, kind := range estimator.Kinds() {
		for _, model := range []string{"SC", "TSO", "WO"} {
			q := estimator.DefaultQuery()
			q.Kind = kind
			q.Model = model
			q.PrefixLen = 12
			q.Trials = 500
			q.Seed = uint64(len(queries)) + 1
			queries = append(queries, q)
		}
	}

	seen := make(map[int]int)
	batch, err := estimator.EstimateBatch(ctx, queries, estimator.BatchOptions{
		Workers:  4,
		Progress: func(i int, r estimator.Result) { seen[i]++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(queries) {
		t.Fatalf("got %d results, want %d", len(batch), len(queries))
	}
	if len(seen) != len(queries) {
		t.Errorf("progress saw %d distinct queries, want %d", len(seen), len(queries))
	}
	for i, n := range seen {
		if n != 1 {
			t.Errorf("progress called %d times for query %d", n, i)
		}
	}

	serial, err := estimator.EstimateBatch(ctx, queries, estimator.BatchOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range queries {
		single, err := estimator.Estimate(ctx, queries[i])
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if !reflect.DeepEqual(batch[i], single) {
			t.Errorf("query %d: batch result %+v differs from single %+v", i, batch[i], single)
		}
		if !reflect.DeepEqual(serial[i], single) {
			t.Errorf("query %d: serial batch result differs from single", i)
		}
	}
}

func TestBatchRejectsBadInput(t *testing.T) {
	ctx := context.Background()
	if _, err := estimator.EstimateBatch(ctx, nil, estimator.BatchOptions{}); !errors.Is(err, estimator.ErrBadQuery) {
		t.Errorf("empty batch err = %v", err)
	}
	bad := estimator.DefaultQuery()
	bad.Model = "ARM"
	if _, err := estimator.EstimateBatch(ctx, []estimator.Query{bad}, estimator.BatchOptions{}); !errors.Is(err, estimator.ErrBadQuery) {
		t.Errorf("bad query err = %v", err)
	}
}

// TestSweepCellsMatchRegistryDispatch proves the sweep engine is a pure
// orchestrator: every artifact cell equals a direct registry dispatch of
// the cell's query on the cell's derived seed.
func TestSweepCellsMatchRegistryDispatch(t *testing.T) {
	ctx := context.Background()
	spec := sweep.DefaultSpec()
	spec.Models = []string{"SC", "WO"}
	spec.Threads = []int{2, 4}
	spec.PrefixLens = []int{12}
	spec.Estimators = []sweep.Kind{sweep.Exact, sweep.FullMC, sweep.Hybrid, sweep.WindowDist}
	spec.Trials = 400
	spec.Seed = 7

	art, err := sweep.Run(ctx, spec, sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	norm := spec.Normalized()
	cells := norm.Expand()
	seeds := estimator.DeriveSeeds(norm.Seed, len(cells))
	if len(art.Cells) != len(cells) {
		t.Fatalf("artifact has %d cells, grid has %d", len(art.Cells), len(cells))
	}
	for i, cell := range cells {
		direct, err := estimator.Run(ctx, norm.Query(cell), seeds[i], estimator.Exec{})
		if err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
		got := art.Cells[i]
		if got.Skipped != direct.Skipped || got.Note != direct.Note ||
			got.EffectiveM != direct.EffectiveM || got.Estimate != direct.Estimate ||
			got.LogEstimate != direct.LogEstimate || got.Lo != direct.Lo ||
			got.Hi != direct.Hi || got.StdErr != direct.StdErr ||
			!reflect.DeepEqual(got.Dist, direct.Dist) {
			t.Errorf("cell %d: artifact %+v differs from registry dispatch %+v", i, got, direct)
		}
	}
}

func TestKindsCanonicalOrder(t *testing.T) {
	kinds := estimator.Kinds()
	want := []estimator.Kind{estimator.Exact, estimator.FullMC, estimator.Hybrid, estimator.WindowDist}
	if len(kinds) < len(want) {
		t.Fatalf("Kinds = %v, missing builtins", kinds)
	}
	for i, k := range want {
		if kinds[i] != k {
			t.Errorf("Kinds[%d] = %q, want %q", i, kinds[i], k)
		}
	}
	for _, k := range kinds {
		if !k.Valid() {
			t.Errorf("listed kind %q not Valid", k)
		}
		if k.DisplayName() == "" {
			t.Errorf("kind %q has empty display name", k)
		}
	}
	if estimator.Kind("oracle").Valid() {
		t.Error("unregistered kind reported Valid")
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	e, _ := estimator.Lookup(estimator.Exact)
	estimator.Register(e)
}

func TestDeriveSeedsIsStable(t *testing.T) {
	a := estimator.DeriveSeeds(42, 4)
	b := estimator.DeriveSeeds(42, 4)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("derivation not deterministic: %v vs %v", a, b)
	}
	if a[0] == a[1] && a[1] == a[2] {
		t.Errorf("suspiciously constant seeds: %v", a)
	}
	// Prefix property: deriving fewer seeds yields a prefix, so cell
	// seeds do not depend on grid size beyond their own index.
	p := estimator.DeriveSeeds(42, 2)
	if p[0] != a[0] || p[1] != a[1] {
		t.Errorf("DeriveSeeds(42, 2) = %v is not a prefix of %v", p, a)
	}
}

// TestCompiledMCMatchesFullMC is the query-level differential gate: the
// same query under mc and mc-compiled must produce bit-identical results
// (seed derivation is kind-independent and the engines are draw-for-draw
// identical), for both fixed-trials and adaptive-precision modes.
func TestCompiledMCMatchesFullMC(t *testing.T) {
	base := estimator.DefaultQuery()
	base.Model = "tso"
	base.PrefixLen = 16
	base.Trials = 4096
	adaptive := base
	adaptive.Precision = &estimator.Precision{TargetHalfWidth: 0.02, MaxTrials: 1 << 15}
	for name, q := range map[string]estimator.Query{"fixed": base, "adaptive": adaptive} {
		mcQ, compiledQ := q, q
		mcQ.Kind = estimator.FullMC
		compiledQ.Kind = estimator.CompiledMC
		ref, err := estimator.Estimate(context.Background(), mcQ)
		if err != nil {
			t.Fatal(err)
		}
		got, err := estimator.Estimate(context.Background(), compiledQ)
		if err != nil {
			t.Fatal(err)
		}
		// Everything but the kind label must match exactly.
		ref.Kind = estimator.CompiledMC
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("%s: mc-compiled diverged from mc:\n got %+v\nwant %+v", name, got, ref)
		}
	}
}
