package estimator

import (
	"sync"

	"memreliability/internal/obs"
)

// validationFailures counts queries rejected by Validate — the single
// canonical rejection point every surface funnels through.
var validationFailures = obs.Default().Counter("estimator_validation_failures_total",
	"Queries rejected by canonical validation.")

// kindMetrics is the per-kind instrumentation bundle of the dispatch
// path: one counter and two histograms per estimator kind.
type kindMetrics struct {
	queries *obs.Counter
	latency *obs.Histogram
	trials  *obs.Histogram
}

var (
	kindMetricsMu sync.RWMutex
	kindMetricsBy = make(map[Kind]*kindMetrics)
)

// metricsFor resolves the per-kind bundle, registering its series on
// first use (the registry is open — Register can add kinds at runtime,
// so labels cannot be enumerated at init). Resolution is once per kind,
// then a read-locked map hit per query — far off the chunk hot path.
func metricsFor(k Kind) *kindMetrics {
	kindMetricsMu.RLock()
	m := kindMetricsBy[k]
	kindMetricsMu.RUnlock()
	if m != nil {
		return m
	}
	kindMetricsMu.Lock()
	defer kindMetricsMu.Unlock()
	if m = kindMetricsBy[k]; m != nil {
		return m
	}
	label := obs.L("kind", string(k))
	m = &kindMetrics{
		queries: obs.Default().Counter("estimator_queries_total",
			"Queries dispatched through the estimator registry.", label),
		latency: obs.Default().Histogram("estimator_query_seconds",
			"Wall-clock dispatch latency per query.", obs.LatencyBuckets(), label),
		trials: obs.Default().Histogram("estimator_trials_used",
			"Monte Carlo trials consumed per query.", obs.TrialBuckets(), label),
	}
	kindMetricsBy[k] = m
	return m
}
