// Package estimator is the unified query surface over the paper's
// estimation routes. Every frontend — the memreliability facade, the
// sweep engine's grid cells, the HTTP service's /v1/estimate and
// /v1/windowdist endpoints, and the cmd/ tools — expresses its work as a
// Query and dispatches it through one registry keyed by estimator Kind,
// so validation, clamping (ExactPrefixCap), defaulting (DefaultQuery),
// and seed derivation live in exactly one place.
//
// The registry maps a Kind (exact, mc, hybrid, windowdist) to an
// Estimator implementation; new backends (distributed workers,
// alternative samplers) plug in with Register and immediately become
// reachable from every surface. Reproducibility is inherited from the mc
// harness: a Result depends only on the Query — never on Exec's worker
// budget or goroutine scheduling.
package estimator

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"memreliability/internal/memmodel"
	"memreliability/internal/report"
)

// ErrBadQuery reports an invalid estimation query.
var ErrBadQuery = errors.New("estimator: bad query")

// ExactPrefixCap bounds the prefix length fed to the exact dynamic
// programs (the DP state space is 2^m type strings). Exact and
// window-distribution queries clamp their prefix to this cap and record
// the clamp in the result's Note.
const ExactPrefixCap = 16

// DefaultConfidence is the confidence level of the Wilson intervals
// attached to full-Monte-Carlo results when the query leaves Confidence
// at zero.
const DefaultConfidence = 0.99

// Kind names an estimation route for Pr[A] (or, for WindowDist, for the
// Theorem 4.1 window distribution Pr[B_γ]). The canonical kinds are the
// registry's built-ins; Register adds more.
type Kind string

const (
	// Exact is the n=2 exact dynamic program (Theorem 6.2's quantity).
	Exact Kind = "exact"
	// FullMC is full end-to-end Monte Carlo of the joined process.
	FullMC Kind = "mc"
	// Hybrid is the Theorem 6.1 hybrid estimator (analytic shift
	// combinatorics × Monte Carlo product expectation).
	Hybrid Kind = "hybrid"
	// WindowDist tabulates the exact critical-window distribution
	// Pr[B_γ] (Theorem 4.1 at finite m); it is thread-count independent.
	WindowDist Kind = "windowdist"
	// CompiledMC is full Monte Carlo on the query-compiled kernel
	// engine (core's plan cache of monomorphized trial kernels) —
	// bit-identical to FullMC by the cross-engine promotion gate,
	// faster per trial.
	CompiledMC Kind = "mc-compiled"
)

// Valid reports whether k resolves in the estimator registry.
func (k Kind) Valid() bool {
	_, ok := Lookup(k)
	return ok
}

// NeedsTrials reports whether the kind consumes Monte Carlo trials.
func (k Kind) NeedsTrials() bool {
	e, ok := Lookup(k)
	return ok && e.NeedsTrials()
}

// DisplayName returns the human-readable estimator label used in tables.
func (k Kind) DisplayName() string {
	if e, ok := Lookup(k); ok {
		return e.DisplayName()
	}
	return string(k)
}

// Query is the canonical request for one estimate: the full
// (model, threads, prefix, p, s, trials, seed, confidence, max gamma,
// kind) tuple that every surface previously re-encoded privately.
//
// The JSON tags are the wire encoding shared by the HTTP service's cache
// keys; field order is fixed, so a canonicalized Query always marshals
// to the same bytes.
type Query struct {
	// Kind selects the estimation route in the registry.
	Kind Kind `json:"kind"`
	// Model is a memory model name resolvable by memmodel.ByName.
	Model string `json:"model"`
	// Threads is n, the number of concurrent buggy threads (≥ 2).
	// WindowDist queries ignore it (the distribution is thread-count
	// independent).
	Threads int `json:"threads"`
	// PrefixLen is m, the random-program prefix length (≥ 1). Exact and
	// windowdist routes clamp it to ExactPrefixCap.
	PrefixLen int `json:"prefix_len"`
	// StoreProb is p and SwapProb is s; zeros are honored as genuine
	// probabilities (DefaultQuery gives the paper's normal form 1/2).
	StoreProb float64 `json:"store_prob"`
	SwapProb  float64 `json:"swap_prob"`
	// Trials is the Monte Carlo budget (mc and hybrid kinds only).
	Trials int `json:"trials"`
	// Seed fully determines the result: the estimator derives its RNG
	// substream from it exactly as a single-cell sweep would.
	Seed uint64 `json:"seed"`
	// Confidence is the Wilson-interval level of mc results. Zero
	// selects DefaultConfidence (0.99).
	Confidence float64 `json:"confidence"`
	// MaxGamma bounds the tabulated support of windowdist results
	// (clamped to the effective prefix length).
	MaxGamma int `json:"max_gamma"`
	// Precision, when non-nil, switches the trial-consuming kinds (mc,
	// hybrid) to adaptive-precision sampling: deterministic chunk-aligned
	// rounds until the confidence interval meets the targets or the trial
	// budget cap runs out. Nil keeps the fixed-Trials mode, and keeps the
	// query's JSON encoding — and thus every canonical cache key — byte-
	// identical to the pre-adaptive wire form.
	Precision *Precision `json:"precision,omitempty"`
}

// Precision is an adaptive-precision request: run Monte Carlo until the
// confidence interval (at the query's Confidence level) meets every
// configured target, or MaxTrials is exhausted. At least one target must
// be positive. It is validated and normalized here, in exactly one place,
// for every surface — sweeps, the HTTP service, the CLIs, and direct
// queries.
type Precision struct {
	// TargetHalfWidth, when positive, is the requested absolute interval
	// half-width on the estimate (for hybrid queries, on Pr[A] itself —
	// the engine rescales it onto the product expectation analytically).
	TargetHalfWidth float64 `json:"target_half_width,omitempty"`
	// TargetRelErr, when positive, requires half-width ≤ TargetRelErr ×
	// estimate. This is the deep-tail mode: an estimate of zero never
	// satisfies it, so rare-event cells report budget exhaustion instead
	// of a vacuous empty interval.
	TargetRelErr float64 `json:"target_rel_err,omitempty"`
	// MaxTrials caps the trial budget. Zero defaults to the query's
	// Trials (normalization fills it in, so cache keys are canonical).
	MaxTrials int `json:"max_trials,omitempty"`
}

// Validate checks the precision block's fields. Positive-form checks
// reject NaN up front, mirroring the query's probability fields.
func (p Precision) Validate() error {
	if !(p.TargetHalfWidth >= 0 && p.TargetHalfWidth <= 1) {
		return fmt.Errorf("%w: target half-width %v (need 0 ≤ w ≤ 1)", ErrBadQuery, p.TargetHalfWidth)
	}
	if !(p.TargetRelErr >= 0) || math.IsInf(p.TargetRelErr, 1) {
		return fmt.Errorf("%w: target relative error %v", ErrBadQuery, p.TargetRelErr)
	}
	if p.TargetHalfWidth == 0 && p.TargetRelErr == 0 {
		return fmt.Errorf("%w: precision block needs a positive target_half_width or target_rel_err", ErrBadQuery)
	}
	if p.MaxTrials < 0 {
		return fmt.Errorf("%w: max trials %d", ErrBadQuery, p.MaxTrials)
	}
	return nil
}

// normalized returns a copy with MaxTrials defaulted from the query's
// fixed trial budget, so a query that spells the default out and one
// that omits it are identical — and collide wherever canonicalized
// queries are hashed or cached.
func (p Precision) normalized(trials int) Precision {
	if p.MaxTrials == 0 {
		p.MaxTrials = trials
	}
	return p
}

// DefaultQuery returns the paper's normal form — hybrid estimation of
// Pr[A] at n = 2, m = 64, p = s = 1/2, 50000 trials, seed 1, 99%
// confidence, max gamma 8. Every surface's defaults derive from it.
func DefaultQuery() Query {
	return Query{
		Kind:       Hybrid,
		Threads:    2,
		PrefixLen:  64,
		StoreProb:  0.5,
		SwapProb:   0.5,
		Trials:     50000,
		Seed:       1,
		Confidence: DefaultConfidence,
		MaxGamma:   8,
	}
}

// Normalized returns a copy of the query with its model name rewritten
// to canonical casing ("tso" → "TSO") and its kind lowercased, so that
// queries differing only in case are identical — and collide wherever
// canonicalized queries are hashed or cached. Unresolvable names pass
// through for Validate to reject.
func (q Query) Normalized() Query {
	out := q
	out.Kind = Kind(strings.ToLower(string(q.Kind)))
	if m, err := memmodel.ByName(q.Model); err == nil {
		out.Model = m.Name()
	}
	if q.Precision != nil {
		// Clone before defaulting: queries are passed by value, and the
		// caller's block must not be mutated through the shared pointer.
		p := q.Precision.normalized(q.Trials)
		out.Precision = &p
	}
	return out
}

// Validate checks the query against the canonical rules shared by every
// surface. Call Normalized first; Estimate does both. Every rejection
// increments the estimator_validation_failures_total metric — this is
// the single counting point, so surfaces that pre-validate (batch,
// sweep, serve) and the dispatch path never double-count.
func (q Query) Validate() error {
	err := q.validate()
	if err != nil {
		validationFailures.Inc()
	}
	return err
}

func (q Query) validate() error {
	if !q.Kind.Valid() {
		return fmt.Errorf("%w: unknown estimator %q", ErrBadQuery, q.Kind)
	}
	if _, err := memmodel.ByName(q.Model); err != nil {
		return fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	if q.Kind != WindowDist && q.Threads < 2 {
		return fmt.Errorf("%w: threads=%d (need ≥ 2)", ErrBadQuery, q.Threads)
	}
	if q.PrefixLen < 1 {
		return fmt.Errorf("%w: prefix length %d", ErrBadQuery, q.PrefixLen)
	}
	if q.Kind.NeedsTrials() && q.Trials < 1 {
		return fmt.Errorf("%w: trials=%d (mc/hybrid queries need ≥ 1)", ErrBadQuery, q.Trials)
	}
	// Positive-form range checks so NaN fails validation up front
	// instead of surfacing as a downstream stats error (or an
	// unencodable NaN result) after the trial budget is spent.
	if !(q.StoreProb >= 0 && q.StoreProb <= 1) {
		return fmt.Errorf("%w: store probability %v", ErrBadQuery, q.StoreProb)
	}
	if !(q.SwapProb >= 0 && q.SwapProb <= 1) {
		return fmt.Errorf("%w: swap probability %v", ErrBadQuery, q.SwapProb)
	}
	if q.Confidence != 0 && !(q.Confidence > 0 && q.Confidence < 1) {
		return fmt.Errorf("%w: confidence %v (need 0 < c < 1, or 0 for the default)", ErrBadQuery, q.Confidence)
	}
	if q.MaxGamma < 0 {
		return fmt.Errorf("%w: max gamma %d", ErrBadQuery, q.MaxGamma)
	}
	if q.Precision != nil {
		if !q.Kind.NeedsTrials() {
			return fmt.Errorf("%w: precision requires a Monte Carlo kind, not %q", ErrBadQuery, q.Kind)
		}
		if err := q.Precision.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// confidence returns the effective Wilson level.
func (q Query) confidence() float64 {
	if q.Confidence == 0 {
		return DefaultConfidence
	}
	return q.Confidence
}

// Result is the unified estimator result: the point estimate with its
// interval and log-domain value, per-kind diagnostics, and cost/timing
// metadata.
type Result struct {
	// Kind echoes the estimation route that produced the result.
	Kind Kind `json:"kind"`

	// Skipped marks a query the route cannot satisfy inside a batch
	// (e.g. the exact DP at n ≠ 2); Note records why.
	Skipped bool   `json:"skipped,omitempty"`
	Note    string `json:"note,omitempty"`

	// EffectiveM is the prefix length the estimator actually used:
	// equal to the query's PrefixLen unless the exact DP clamped it to
	// ExactPrefixCap.
	EffectiveM int `json:"effective_m"`

	// Estimate is the Pr[A] point estimate — or, for windowdist, the
	// mean window growth E[γ] over the tabulated support. LogEstimate
	// is ln Pr[A] (0 when the estimate is 0 or the query was skipped),
	// finite even when Estimate underflows float64.
	Estimate    float64 `json:"estimate"`
	LogEstimate float64 `json:"log_estimate"`
	// Lo and Hi bracket the estimate: exact-DP truncation bounds, or
	// the Wilson interval at Confidence for full Monte Carlo.
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
	// Confidence is the Wilson level of Lo/Hi (mc results only).
	Confidence float64 `json:"confidence,omitempty"`

	// StdErr is the standard error of the hybrid product expectation,
	// and ProductExpectation its point estimate (hybrid diagnostics).
	StdErr             float64 `json:"std_err,omitempty"`
	ProductExpectation float64 `json:"product_expectation,omitempty"`

	// Dist tabulates Pr[B_γ], γ ∈ [0, min(MaxGamma, EffectiveM)]
	// (windowdist results).
	Dist []float64 `json:"dist,omitempty"`

	// TrialsUsed is the Monte Carlo cost of the result (0 for the
	// deterministic routes); for adaptive queries it is the trials
	// actually consumed, which is itself deterministic in the query.
	// ElapsedMS is wall-clock time, populated only when Exec.Timing is
	// set because timing breaks byte-level reproducibility of encoded
	// results.
	TrialsUsed int     `json:"trials_used,omitempty"`
	ElapsedMS  float64 `json:"elapsed_ms,omitempty"`

	// Rounds and StopReason are the adaptive-precision diagnostics:
	// Rounds counts the chunk-aligned sampling rounds, and StopReason is
	// StopConverged when every target was met or StopBudget when
	// MaxTrials ran out first — budget exhaustion is always reported,
	// never silently folded into a converged-looking result. Both are
	// empty for fixed-trials queries.
	Rounds     int    `json:"rounds,omitempty"`
	StopReason string `json:"stop_reason,omitempty"`
}

// Result.StopReason values, matching the mc harness's stop reasons.
const (
	// StopConverged: every requested precision target was met.
	StopConverged = "converged"
	// StopBudget: the trial budget cap ran out before the targets held.
	StopBudget = "budget"
)

// Notes summarizes the result's secondary outputs (CI bracket, log
// estimate, tabulated distribution, skip reason) as a display string.
// Every renderer of estimator rows — sweep artifact tables, cmd/memrisk
// — shares this so per-kind annotations cannot drift apart.
func (r Result) Notes() string {
	var notes []string
	switch {
	case r.Skipped:
		notes = append(notes, "skipped: "+r.Note)
	default:
		switch r.Kind {
		case Exact:
			notes = append(notes, report.FormatInterval(r.Lo, r.Hi))
		case FullMC, CompiledMC:
			level := r.Confidence
			if level == 0 {
				level = DefaultConfidence
			}
			notes = append(notes, fmt.Sprintf("%.0f%% CI %s",
				level*100, report.FormatInterval(r.Lo, r.Hi)))
		case Hybrid:
			notes = append(notes, "ln Pr[A] = "+report.FormatRatio(r.LogEstimate))
		case WindowDist:
			cells := make([]string, len(r.Dist))
			for gamma, p := range r.Dist {
				cells[gamma] = fmt.Sprintf("P(%d)=%s", gamma, report.FormatRatio(p))
			}
			notes = append(notes, "estimate = E[γ]; "+strings.Join(cells, " "))
		}
		if r.StopReason != "" {
			notes = append(notes, fmt.Sprintf("adaptive: %d trials in %d rounds (%s)",
				r.TrialsUsed, r.Rounds, r.StopReason))
		}
		if r.Note != "" {
			notes = append(notes, r.Note)
		}
		if r.ElapsedMS > 0 {
			notes = append(notes, fmt.Sprintf("%.1fms", r.ElapsedMS))
		}
	}
	return strings.Join(notes, "; ")
}

// Exec tunes how a query executes without affecting its result.
type Exec struct {
	// Workers bounds the estimator's internal Monte Carlo parallelism;
	// 0 means GOMAXPROCS. Pure scheduling — results never depend on it.
	Workers int
	// Timing records wall-clock time in the result. Off by default:
	// timing breaks byte-identical reproducibility of encoded results.
	Timing bool
}

// safeLog returns ln(x) for positive x and 0 otherwise, keeping results
// JSON-encodable (encoding/json rejects ±Inf).
func safeLog(x float64) float64 {
	if x > 0 {
		return math.Log(x)
	}
	return 0
}
