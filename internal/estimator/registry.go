package estimator

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"memreliability/internal/obs"
	"memreliability/internal/rng"
)

// Estimator is one estimation route. Implementations receive a
// normalized, validated Query plus the RNG substream seed already
// derived from it, and must be deterministic in (Query, seed) — Exec is
// pure scheduling.
type Estimator interface {
	// Kind is the registry key.
	Kind() Kind
	// DisplayName is the human-readable label used in tables.
	DisplayName() string
	// NeedsTrials reports whether the route consumes Monte Carlo
	// trials (drives the canonical Trials validation).
	NeedsTrials() bool
	// Estimate evaluates the query on the given substream seed.
	Estimate(ctx context.Context, q Query, seed uint64, ex Exec) (Result, error)
}

var (
	registryMu sync.RWMutex
	registry   = make(map[Kind]Estimator)
)

// Register adds an estimator to the registry, making its kind reachable
// from every surface (facade, sweep, serve, CLIs). It panics on a
// duplicate kind: two backends silently shadowing each other would break
// the "one kind, one meaning" contract.
func Register(e Estimator) {
	registryMu.Lock()
	defer registryMu.Unlock()
	k := e.Kind()
	if _, dup := registry[k]; dup {
		panic(fmt.Sprintf("estimator: duplicate registration of kind %q", k))
	}
	registry[k] = e
}

// Lookup resolves a kind in the registry.
func Lookup(k Kind) (Estimator, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	e, ok := registry[k]
	return e, ok
}

// Kinds lists every registered kind in canonical order: the paper's
// built-ins first (exact, mc, hybrid, windowdist), then any extra
// registrations sorted by name.
func Kinds() []Kind {
	registryMu.RLock()
	defer registryMu.RUnlock()
	builtin := []Kind{Exact, FullMC, Hybrid, WindowDist}
	out := make([]Kind, 0, len(registry))
	seen := make(map[Kind]bool, len(registry))
	for _, k := range builtin {
		if _, ok := registry[k]; ok {
			out = append(out, k)
			seen[k] = true
		}
	}
	var extra []Kind
	for k := range registry {
		if !seen[k] {
			extra = append(extra, k)
		}
	}
	sort.Slice(extra, func(i, j int) bool { return extra[i] < extra[j] })
	return append(out, extra...)
}

// DeriveSeeds expands one experiment seed into n deterministic RNG
// substream seeds. This is the canonical derivation shared by Estimate
// (n = 1) and the sweep engine (one seed per grid cell, in cell-index
// order); it is part of the reproducibility contract — changing it
// changes every Monte Carlo result.
func DeriveSeeds(seed uint64, n int) []uint64 {
	root := rng.New(seed)
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = root.Uint64()
	}
	return seeds
}

// Run dispatches a normalized, validated query with an explicitly
// derived substream seed through the registry. Estimate and the sweep
// engine both funnel through it; sweep derives per-cell seeds from its
// spec seed to keep artifacts byte-identical across the grid.
func Run(ctx context.Context, q Query, seed uint64, ex Exec) (Result, error) {
	e, ok := Lookup(q.Kind)
	if !ok {
		return Result{Kind: q.Kind}, fmt.Errorf("%w: unknown estimator %q", ErrBadQuery, q.Kind)
	}
	km := metricsFor(q.Kind)
	km.queries.Inc()
	span := obs.SpanFrom(ctx).Child("estimator.dispatch", obs.L("kind", string(q.Kind)))
	start := time.Now()
	res, err := e.Estimate(obs.WithSpan(ctx, span), q, seed, ex)
	span.End()
	km.latency.Observe(time.Since(start).Seconds())
	if err != nil {
		return res, err
	}
	res.Kind = q.Kind
	if res.TrialsUsed > 0 {
		km.trials.Observe(float64(res.TrialsUsed))
	}
	if ex.Timing {
		res.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	}
	return res, nil
}

// EstimateExec evaluates one query: normalize, validate, derive the
// substream seed from the query's Seed (exactly as a single-cell sweep
// would), and dispatch through the registry with the given execution
// budget.
func EstimateExec(ctx context.Context, q Query, ex Exec) (Result, error) {
	norm := q.Normalized()
	v := obs.SpanFrom(ctx).Child("estimator.validate")
	err := norm.Validate()
	v.End()
	if err != nil {
		return Result{Kind: norm.Kind}, err
	}
	return Run(ctx, norm, DeriveSeeds(norm.Seed, 1)[0], ex)
}

// Estimate evaluates one query with the default execution budget
// (GOMAXPROCS Monte Carlo workers, no timing). The result depends only
// on the query.
func Estimate(ctx context.Context, q Query) (Result, error) {
	return EstimateExec(ctx, q, Exec{})
}
