package estimator

import (
	"context"
	"math"
	"reflect"
	"strings"
	"testing"
)

// adaptiveQuery is an mc-kind query with a precision block over a cheap
// grid point.
func adaptiveQuery() Query {
	q := DefaultQuery()
	q.Kind = FullMC
	q.Model = "SC"
	q.PrefixLen = 12
	q.Trials = 100000
	q.Seed = 3
	q.Precision = &Precision{TargetHalfWidth: 0.02}
	return q
}

func TestPrecisionValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Query)
	}{
		{"precision on exact kind", func(q *Query) { q.Kind = Exact; q.Threads = 2 }},
		{"precision on windowdist kind", func(q *Query) { q.Kind = WindowDist }},
		{"no targets", func(q *Query) { q.Precision = &Precision{} }},
		{"negative half-width", func(q *Query) { q.Precision = &Precision{TargetHalfWidth: -0.1} }},
		{"half-width above 1", func(q *Query) { q.Precision = &Precision{TargetHalfWidth: 1.5} }},
		{"NaN half-width", func(q *Query) { q.Precision = &Precision{TargetHalfWidth: math.NaN()} }},
		{"NaN rel err", func(q *Query) { q.Precision = &Precision{TargetRelErr: math.NaN()} }},
		{"Inf rel err", func(q *Query) { q.Precision = &Precision{TargetRelErr: math.Inf(1)} }},
		{"negative max trials", func(q *Query) { q.Precision = &Precision{TargetRelErr: 0.1, MaxTrials: -1} }},
	}
	for _, tc := range cases {
		q := adaptiveQuery()
		tc.mutate(&q)
		if err := q.Normalized().Validate(); err == nil {
			t.Errorf("%s: validation passed", tc.name)
		}
	}
	if err := adaptiveQuery().Normalized().Validate(); err != nil {
		t.Fatalf("valid adaptive query rejected: %v", err)
	}
}

// TestPrecisionNormalization: MaxTrials defaults from Trials in exactly
// one place, the block is cloned (the caller's pointer is never
// mutated), and the canonical encodings of the spelled-out and omitted
// forms collide — which is what keys caches and content addresses.
func TestPrecisionNormalization(t *testing.T) {
	q := adaptiveQuery()
	norm := q.Normalized()
	if norm.Precision.MaxTrials != q.Trials {
		t.Errorf("normalized MaxTrials = %d, want %d", norm.Precision.MaxTrials, q.Trials)
	}
	if q.Precision.MaxTrials != 0 {
		t.Error("Normalized mutated the caller's precision block")
	}

	spelled := adaptiveQuery()
	spelled.Precision.MaxTrials = spelled.Trials
	if *spelled.Normalized().Precision != *norm.Precision {
		t.Error("spelled-out and defaulted MaxTrials normalize differently")
	}
}

// TestAdaptiveQueryWorkerInvariance: the full registry path at 1, 2, and
// 7 inner workers returns identical results — estimate, interval,
// trials-consumed, rounds, and stop reason.
func TestAdaptiveQueryWorkerInvariance(t *testing.T) {
	for _, kind := range []Kind{FullMC, Hybrid} {
		q := adaptiveQuery()
		q.Kind = kind
		if kind == Hybrid {
			// An absolute Pr[A] target, rescaled analytically onto the
			// product expectation by the hybrid route.
			q.Precision = &Precision{TargetHalfWidth: 0.02}
		}
		var ref Result
		for i, workers := range []int{1, 2, 7} {
			res, err := EstimateExec(context.Background(), q, Exec{Workers: workers})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", kind, workers, err)
			}
			if res.StopReason == "" {
				t.Fatalf("%s: adaptive result carries no stop reason", kind)
			}
			if i == 0 {
				ref = res
				continue
			}
			if !reflect.DeepEqual(res, ref) {
				t.Errorf("%s workers=%d diverged:\n got %+v\nwant %+v", kind, workers, res, ref)
			}
		}
	}
}

// TestAdaptiveBudgetEquivalence: when the budget is exhausted, the
// adaptive result equals the fixed-trials result of the same query at
// Trials = MaxTrials — same derived substream, same samples, same bits.
func TestAdaptiveBudgetEquivalence(t *testing.T) {
	const budgetCap = 3 * 8192 // three whole chunks: a round boundary
	q := adaptiveQuery()
	q.Precision = &Precision{TargetRelErr: 1e-6, MaxTrials: budgetCap}
	adaptive, err := Estimate(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.StopReason != StopBudget {
		t.Fatalf("stop reason %q, want budget (not silently converged)", adaptive.StopReason)
	}
	if adaptive.TrialsUsed != budgetCap {
		t.Fatalf("trials used %d, want %d", adaptive.TrialsUsed, budgetCap)
	}

	fixed := q
	fixed.Precision = nil
	fixed.Trials = budgetCap
	want, err := Estimate(context.Background(), fixed)
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.Estimate != want.Estimate || adaptive.Lo != want.Lo || adaptive.Hi != want.Hi ||
		adaptive.LogEstimate != want.LogEstimate {
		t.Errorf("budget-capped adaptive result %+v differs from fixed result %+v", adaptive, want)
	}
}

// TestAdaptiveEasyCellSavings: the estimator-level restatement of the
// acceptance demo — an easy cell under an absolute target consumes ≥10×
// fewer trials than its fixed budget while meeting the target.
func TestAdaptiveEasyCellSavings(t *testing.T) {
	q := adaptiveQuery()
	q.Trials = 200000
	res, err := Estimate(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.StopReason != StopConverged {
		t.Fatalf("stop reason %q, want converged", res.StopReason)
	}
	if res.TrialsUsed*10 > q.Trials {
		t.Errorf("adaptive used %d trials, want ≥10× fewer than the fixed %d", res.TrialsUsed, q.Trials)
	}
	if half := (res.Hi - res.Lo) / 2; half > q.Precision.TargetHalfWidth {
		t.Errorf("half-width %v exceeds target %v", half, q.Precision.TargetHalfWidth)
	}
	if !strings.Contains(res.Notes(), "adaptive:") {
		t.Errorf("notes %q do not surface the adaptive cost", res.Notes())
	}
}

// TestSplitWorkerBudget pins the remainder distribution: the slices
// always sum to the whole budget (no idle cores), stay within one slot
// of each other, and the worker count is min(budget, tasks).
func TestSplitWorkerBudget(t *testing.T) {
	cases := []struct {
		budget, tasks int
		want          []int
	}{
		{8, 3, []int{3, 3, 2}}, // the truncation bug's shape: was 3×2, idling 2 cores
		{8, 16, []int{1, 1, 1, 1, 1, 1, 1, 1}},
		{5, 3, []int{2, 2, 1}},
		{4, 4, []int{1, 1, 1, 1}},
		{1, 10, []int{1}},
		{7, 2, []int{4, 3}},
	}
	for _, tc := range cases {
		got := SplitWorkerBudget(tc.budget, tc.tasks)
		if len(got) != len(tc.want) {
			t.Errorf("SplitWorkerBudget(%d, %d) = %v, want %v", tc.budget, tc.tasks, got, tc.want)
			continue
		}
		sum := 0
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("SplitWorkerBudget(%d, %d) = %v, want %v", tc.budget, tc.tasks, got, tc.want)
				break
			}
			sum += got[i]
		}
		if sum != tc.budget {
			t.Errorf("SplitWorkerBudget(%d, %d) sums to %d: %d budget slots idle",
				tc.budget, tc.tasks, sum, tc.budget-sum)
		}
	}
}
