package estimator_test

import (
	"context"
	"strings"
	"testing"

	"memreliability/internal/estimator"
	"memreliability/internal/obs"
)

// traceQuery is a small adaptive full-MC query: adaptive rounds are the
// span-richest path (per-round children under the dispatch span).
func traceQuery() estimator.Query {
	q := estimator.DefaultQuery()
	q.Model = "TSO"
	q.Kind = estimator.FullMC
	q.Trials = 40000
	q.Seed = 7
	q.Precision = &estimator.Precision{TargetHalfWidth: 1e-3}
	return q
}

func runTraced(t *testing.T, workers int) string {
	t.Helper()
	root := obs.NewTrace("estimate")
	ctx := obs.WithSpan(context.Background(), root)
	if _, err := estimator.EstimateExec(ctx, traceQuery(), estimator.Exec{Workers: workers}); err != nil {
		t.Fatal(err)
	}
	root.End()
	return root.Structure()
}

// TestSpanTreeDeterministic is the tentpole's span-determinism
// guarantee: the same (query, seed) yields the identical span structure
// — names, nesting, attributes — run to run and at any worker count,
// because spans are created only at sequential barriers.
func TestSpanTreeDeterministic(t *testing.T) {
	first := runTraced(t, 1)
	if !strings.Contains(first, "estimator.dispatch[kind=mc]") {
		t.Fatalf("trace missing dispatch span:\n%s", first)
	}
	if !strings.Contains(first, "mc.round[") {
		t.Fatalf("trace missing adaptive round spans:\n%s", first)
	}
	for _, workers := range []int{1, 2, 4} {
		if got := runTraced(t, workers); got != first {
			t.Errorf("span structure differs at workers=%d:\n%s\nwant:\n%s", workers, got, first)
		}
	}
}

// TestUntracedContextUnchanged pins the zero-cost disabled path: with no
// span attached, estimation runs and the context carries no span.
func TestUntracedContextUnchanged(t *testing.T) {
	ctx := context.Background()
	q := estimator.DefaultQuery()
	q.Model = "TSO"
	q.Trials = 2000
	if _, err := estimator.Estimate(ctx, q); err != nil {
		t.Fatal(err)
	}
	if obs.SpanFrom(ctx) != nil {
		t.Fatal("untraced context acquired a span")
	}
}

// TestBatchSpanOrderDeterministic asserts the batch feed loop creates
// per-query spans in index order regardless of worker count.
func TestBatchSpanOrderDeterministic(t *testing.T) {
	queries := make([]estimator.Query, 4)
	for i := range queries {
		q := estimator.DefaultQuery()
		q.Model = "TSO"
		q.Trials = 2000
		q.Seed = uint64(i + 1)
		queries[i] = q
	}
	run := func(workers int) string {
		root := obs.NewTrace("batch")
		ctx := obs.WithSpan(context.Background(), root)
		if _, err := estimator.EstimateBatch(ctx, queries, estimator.BatchOptions{Workers: workers}); err != nil {
			t.Fatal(err)
		}
		root.End()
		return root.Structure()
	}
	first := run(1)
	if !strings.Contains(first, "estimate[index=0 kind=hybrid]") {
		t.Fatalf("missing indexed estimate span:\n%s", first)
	}
	for _, workers := range []int{2, 4} {
		if got := run(workers); got != first {
			t.Errorf("batch span structure differs at workers=%d:\n%s\nwant:\n%s", workers, got, first)
		}
	}
}
