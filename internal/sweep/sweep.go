// Package sweep is the declarative experiment-orchestration subsystem.
//
// The paper's headline results (Theorems 4.1, 6.1, 6.3) are all sweeps:
// Pr[A] or Pr[B_γ] evaluated across a grid of memory models × thread
// counts × prefix lengths × estimator kinds. A Spec describes such a grid
// declaratively; the engine expands it into cells, shards the cells across
// a worker pool, and collects the results into a versioned Artifact that
// renders as tables/CSV via internal/report.
//
// Reproducibility is the engine's core guarantee: every cell derives one
// deterministic RNG seed from (spec seed, cell index), and the mc harness
// underneath is itself scheduling-independent (chunked substreams merged
// in chunk order), so an Artifact depends only on the Spec — never on the
// worker budget or goroutine scheduling. Identical (spec, seed) produce
// byte-identical JSON artifacts at any worker count.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"memreliability/internal/core"
	"memreliability/internal/mc"
	"memreliability/internal/memmodel"
	"memreliability/internal/rng"
	"memreliability/internal/settle"
)

// ErrBadSpec reports an invalid sweep specification.
var ErrBadSpec = errors.New("sweep: bad spec")

// ExactPrefixCap bounds the prefix length fed to the exact dynamic
// programs (the DP state space is 2^m type strings). Exact and
// window-distribution cells clamp their prefix to this cap and record the
// clamp in the cell's note.
const ExactPrefixCap = 16

// ciLevel is the confidence level of the Wilson intervals attached to
// full-Monte-Carlo cells.
const ciLevel = 0.99

// Kind names an estimation route for Pr[A] (or, for WindowDist, for the
// Theorem 4.1 window distribution Pr[B_γ]).
type Kind string

const (
	// Exact is the n=2 exact dynamic program (Theorem 6.2's quantity).
	Exact Kind = "exact"
	// FullMC is full end-to-end Monte Carlo of the joined process.
	FullMC Kind = "mc"
	// Hybrid is the Theorem 6.1 hybrid estimator (analytic shift
	// combinatorics × Monte Carlo product expectation).
	Hybrid Kind = "hybrid"
	// WindowDist tabulates the exact critical-window distribution
	// Pr[B_γ] (Theorem 4.1 at finite m); it is thread-count independent.
	WindowDist Kind = "windowdist"
)

// Kinds lists every estimator kind, in canonical order.
func Kinds() []Kind { return []Kind{Exact, FullMC, Hybrid, WindowDist} }

// Valid reports whether k names a known estimator kind.
func (k Kind) Valid() bool {
	switch k {
	case Exact, FullMC, Hybrid, WindowDist:
		return true
	}
	return false
}

// needsTrials reports whether the kind consumes Monte Carlo trials.
func (k Kind) needsTrials() bool { return k == FullMC || k == Hybrid }

// DisplayName returns the human-readable estimator label used in tables.
func (k Kind) DisplayName() string {
	switch k {
	case Exact:
		return "exact DP (n=2)"
	case FullMC:
		return "full Monte Carlo"
	case Hybrid:
		return "hybrid (Thm 6.1)"
	case WindowDist:
		return "window distribution"
	}
	return string(k)
}

// Spec declaratively describes one experiment sweep: the grid
// models × threads × prefix lengths × estimators, plus the trial budget,
// the experiment seed, and the worker budget.
//
// The zero value of a field selects the paper's default where one exists
// (see Normalized). Workers is pure scheduling: it never affects results
// and is therefore omitted from the artifact's spec echo.
type Spec struct {
	// Models are memory model names resolvable by memmodel.ByName.
	Models []string `json:"models"`
	// Threads are the thread counts n (each ≥ 2). Empty means {2}.
	Threads []int `json:"threads,omitempty"`
	// PrefixLens are the prefix lengths m. Empty means {64}.
	PrefixLens []int `json:"prefix_lens,omitempty"`
	// Estimators are the estimation routes to run per grid point.
	// Empty means {hybrid}.
	Estimators []Kind `json:"estimators,omitempty"`
	// Trials is the Monte Carlo trial budget per cell (mc and hybrid
	// cells only).
	Trials int `json:"trials,omitempty"`
	// Seed is the experiment seed; it fully determines the artifact.
	Seed uint64 `json:"seed"`
	// Workers bounds the worker pool sharding cells; 0 means
	// GOMAXPROCS. Scheduling only — results never depend on it.
	Workers int `json:"workers,omitempty"`
	// StoreProb is p. Zero is honored as a genuine probability (an
	// all-load program); start from DefaultSpec for the paper's normal
	// form 1/2.
	StoreProb float64 `json:"store_prob"`
	// SwapProb is s. Zero is honored (swaps never succeed, so every
	// model degenerates to SC); DefaultSpec gives the normal form 1/2.
	SwapProb float64 `json:"swap_prob"`
	// MaxGamma bounds the tabulated support of windowdist cells. Zero
	// tabulates only γ=0; DefaultSpec gives 8.
	MaxGamma int `json:"max_gamma"`
}

// DefaultSpec returns a Spec pre-filled with the paper's normal-form
// scalar parameters (p = s = 1/2, max gamma 8). Grid fields are left
// empty and take their documented defaults at Run time; decode a JSON
// spec over this base so omitted scalar fields keep the paper defaults
// while explicit zeros stick.
func DefaultSpec() Spec {
	return Spec{StoreProb: 0.5, SwapProb: 0.5, MaxGamma: 8}
}

// Normalized returns a copy of the spec with every empty grid field
// replaced by its documented default, and model names rewritten to their
// canonical casing ("tso" → "TSO") so that specs differing only in case
// produce identical artifacts — and identical content addresses wherever
// specs are hashed. Unresolvable names are left as-is for Validate to
// reject. Scalar fields are never touched: zero probabilities are
// legitimate experiments, so their defaults live in DefaultSpec, not
// here.
func (s Spec) Normalized() Spec {
	out := s
	if len(out.Models) != 0 {
		out.Models = append([]string(nil), s.Models...)
		for i, name := range out.Models {
			if m, err := memmodel.ByName(name); err == nil {
				out.Models[i] = m.Name()
			}
		}
	}
	if len(out.Threads) == 0 {
		out.Threads = []int{2}
	}
	if len(out.PrefixLens) == 0 {
		out.PrefixLens = []int{64}
	}
	if len(out.Estimators) == 0 {
		out.Estimators = []Kind{Hybrid}
	}
	return out
}

// Validate checks a normalized spec. Call Normalized first; Run does both.
func (s Spec) Validate() error {
	if len(s.Models) == 0 {
		return fmt.Errorf("%w: no models", ErrBadSpec)
	}
	for _, name := range s.Models {
		if _, err := memmodel.ByName(name); err != nil {
			return fmt.Errorf("%w: %v", ErrBadSpec, err)
		}
	}
	for _, n := range s.Threads {
		if n < 2 {
			return fmt.Errorf("%w: threads=%d (need ≥ 2)", ErrBadSpec, n)
		}
	}
	for _, m := range s.PrefixLens {
		if m < 1 {
			return fmt.Errorf("%w: prefix length %d", ErrBadSpec, m)
		}
	}
	needTrials := false
	for _, k := range s.Estimators {
		if !k.Valid() {
			return fmt.Errorf("%w: unknown estimator %q", ErrBadSpec, k)
		}
		needTrials = needTrials || k.needsTrials()
	}
	if needTrials && s.Trials < 1 {
		return fmt.Errorf("%w: trials=%d (mc/hybrid cells need ≥ 1)", ErrBadSpec, s.Trials)
	}
	if s.Workers < 0 {
		return fmt.Errorf("%w: workers=%d", ErrBadSpec, s.Workers)
	}
	if s.StoreProb < 0 || s.StoreProb > 1 {
		return fmt.Errorf("%w: store probability %v", ErrBadSpec, s.StoreProb)
	}
	if s.SwapProb < 0 || s.SwapProb > 1 {
		return fmt.Errorf("%w: swap probability %v", ErrBadSpec, s.SwapProb)
	}
	if s.MaxGamma < 0 {
		return fmt.Errorf("%w: max gamma %d", ErrBadSpec, s.MaxGamma)
	}
	return nil
}

// Cell is one grid point of an expanded sweep. Threads is 0 for
// windowdist cells, which are thread-count independent.
type Cell struct {
	Index     int    `json:"index"`
	Model     string `json:"model"`
	Threads   int    `json:"threads"`
	PrefixLen int    `json:"prefix_len"`
	Estimator Kind   `json:"estimator"`
}

// Expand enumerates the grid cells of a normalized spec in deterministic
// order: models (outer) × threads × prefix lengths × estimators (inner).
// Windowdist cells are emitted once per model × prefix length, not once
// per thread count.
func (s Spec) Expand() []Cell {
	var cells []Cell
	for _, model := range s.Models {
		for ti, n := range s.Threads {
			for _, m := range s.PrefixLens {
				for _, k := range s.Estimators {
					threads := n
					if k == WindowDist {
						if ti != 0 {
							continue
						}
						threads = 0
					}
					cells = append(cells, Cell{
						Index:     len(cells),
						Model:     model,
						Threads:   threads,
						PrefixLen: m,
						Estimator: k,
					})
				}
			}
		}
	}
	return cells
}

// CellResult is one completed (or skipped) cell. For probability
// estimators, Estimate is the Pr[A] point estimate and LogEstimate its
// natural log (0 when the estimate is 0 or the cell is skipped); Lo/Hi
// bracket it (exact-DP truncation bounds, or the 99% Wilson interval for
// full Monte Carlo). For windowdist cells, Dist tabulates Pr[B_γ] for
// γ ∈ [0, MaxGamma] and Estimate is the mean window growth E[γ] over the
// tabulated support.
type CellResult struct {
	Cell

	Skipped bool   `json:"skipped,omitempty"`
	Note    string `json:"note,omitempty"`

	// EffectiveM is the prefix length the estimator actually used:
	// equal to PrefixLen unless the exact DP clamped it to
	// ExactPrefixCap.
	EffectiveM int `json:"effective_m"`

	Estimate    float64 `json:"estimate"`
	LogEstimate float64 `json:"log_estimate"`
	Lo          float64 `json:"lo"`
	Hi          float64 `json:"hi"`
	// StdErr is the standard error of the hybrid product expectation.
	StdErr float64 `json:"std_err,omitempty"`
	// Dist is the tabulated window distribution (windowdist cells).
	Dist []float64 `json:"dist,omitempty"`
	// ElapsedMS is wall-clock cell time; populated only when timing is
	// requested, because it breaks byte-level artifact reproducibility.
	ElapsedMS float64 `json:"elapsed_ms,omitempty"`
}

// Options tunes a Run without affecting its results.
type Options struct {
	// Timing records per-cell wall-clock time in the artifact. Off by
	// default: timing breaks byte-identical reproducibility.
	Timing bool
	// Sink, when non-nil, receives each cell result as it completes
	// (completion order, not index order). Calls are serialized.
	Sink func(CellResult)
}

// Run expands the spec, shards its cells across the worker pool, and
// returns the collected artifact with cells in index order.
func Run(ctx context.Context, spec Spec, opts Options) (*Artifact, error) {
	norm := spec.Normalized()
	if err := norm.Validate(); err != nil {
		return nil, err
	}
	cells := norm.Expand()

	// One deterministic RNG substream seed per cell, fixed by the spec
	// seed and the cell index alone.
	seeds := make([]uint64, len(cells))
	root := rng.New(norm.Seed)
	for i := range seeds {
		seeds[i] = root.Uint64()
	}

	budget := norm.Workers
	if budget == 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	workers := budget
	if workers > len(cells) {
		workers = len(cells)
	}
	// Split the budget across the two parallelism layers instead of
	// multiplying it: cells share the pool, and each cell's inner Monte
	// Carlo gets the leftover slice. A single-cell grid (the memrisk
	// case) gets the whole budget inside the cell; a wide grid runs its
	// cells single-streamed. Results are unaffected either way — the mc
	// harness is deterministic in (seed, trials).
	innerWorkers := budget / workers
	if innerWorkers < 1 {
		innerWorkers = 1
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]CellResult, len(cells))
	errs := make([]error, workers)
	jobs := make(chan int)
	var sinkMu sync.Mutex

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for idx := range jobs {
				res, err := runCell(runCtx, norm, cells[idx], seeds[idx], innerWorkers, opts.Timing)
				if err != nil {
					errs[w] = err
					cancel()
					return
				}
				results[idx] = res
				if opts.Sink != nil {
					sinkMu.Lock()
					opts.Sink(res)
					sinkMu.Unlock()
				}
			}
		}(w)
	}

feed:
	for idx := range cells {
		select {
		case jobs <- idx:
		case <-runCtx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	// Prefer a root-cause cell failure over the cancellations it induced
	// in sibling workers.
	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if firstErr == nil || errors.Is(firstErr, context.Canceled) {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}

	// The echo omits the worker budget: it is pure scheduling, and
	// including it would break byte-identical artifacts across -workers.
	echo := norm
	echo.Workers = 0
	return &Artifact{
		SchemaVersion: ArtifactVersion,
		Spec:          echo,
		Cells:         results,
	}, nil
}

// runCell evaluates one cell on its private RNG substream. innerWorkers
// bounds the cell's Monte Carlo parallelism (scheduling only).
func runCell(ctx context.Context, spec Spec, cell Cell, seed uint64, innerWorkers int, timing bool) (CellResult, error) {
	res := CellResult{Cell: cell, EffectiveM: cell.PrefixLen}
	start := time.Now()

	model, err := memmodel.ByName(cell.Model)
	if err != nil {
		return res, fmt.Errorf("sweep: cell %d: %w", cell.Index, err)
	}
	cfg := core.Config{
		Model:     model,
		Threads:   cell.Threads,
		PrefixLen: cell.PrefixLen,
		StoreProb: spec.StoreProb,
		SwapProb:  spec.SwapProb,
	}
	mcCfg := mc.Config{Trials: spec.Trials, Workers: innerWorkers, Seed: seed}

	switch cell.Estimator {
	case Exact:
		if cell.Threads != 2 {
			res.Skipped = true
			res.Note = "exact DP requires n = 2"
			break
		}
		if cfg.PrefixLen > ExactPrefixCap {
			cfg.PrefixLen = ExactPrefixCap
			res.EffectiveM = ExactPrefixCap
			res.Note = fmt.Sprintf("m clamped to %d for exact DP", ExactPrefixCap)
		}
		iv, err := core.ExactTwoThreadPrA(cfg)
		if err != nil {
			return res, fmt.Errorf("sweep: cell %d: %w", cell.Index, err)
		}
		res.Estimate = iv.Midpoint()
		res.Lo, res.Hi = iv.Lo, iv.Hi
		res.LogEstimate = safeLog(res.Estimate)

	case FullMC:
		out, err := core.EstimateNoBugProb(ctx, cfg, mcCfg)
		if err != nil {
			return res, fmt.Errorf("sweep: cell %d: %w", cell.Index, err)
		}
		lo, hi, err := out.WilsonCI(ciLevel)
		if err != nil {
			return res, fmt.Errorf("sweep: cell %d: %w", cell.Index, err)
		}
		res.Estimate = out.Estimate()
		res.Lo, res.Hi = lo, hi
		res.LogEstimate = safeLog(res.Estimate)

	case Hybrid:
		out, err := core.HybridPrA(ctx, cfg, mcCfg)
		if err != nil {
			return res, fmt.Errorf("sweep: cell %d: %w", cell.Index, err)
		}
		res.Estimate = out.PrA
		res.LogEstimate = out.LogPrA
		res.StdErr = out.StdErr

	case WindowDist:
		m := cell.PrefixLen
		if m > ExactPrefixCap {
			m = ExactPrefixCap
			res.EffectiveM = m
			res.Note = fmt.Sprintf("m clamped to %d for exact DP", ExactPrefixCap)
		}
		maxGamma := spec.MaxGamma
		if maxGamma > m {
			maxGamma = m
		}
		pmf, err := settle.ExactWindowDist(model, m, spec.StoreProb, spec.SwapProb, maxGamma)
		if err != nil {
			return res, fmt.Errorf("sweep: cell %d: %w", cell.Index, err)
		}
		res.Dist = make([]float64, maxGamma+1)
		mean := 0.0
		for gamma := range res.Dist {
			res.Dist[gamma] = pmf.At(gamma)
			mean += float64(gamma) * pmf.At(gamma)
		}
		res.Estimate = mean

	default:
		return res, fmt.Errorf("%w: unknown estimator %q", ErrBadSpec, cell.Estimator)
	}

	if timing {
		res.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	}
	return res, nil
}

// safeLog returns ln(x) for positive x and 0 otherwise, keeping cell
// results JSON-encodable (encoding/json rejects ±Inf).
func safeLog(x float64) float64 {
	if x > 0 {
		return math.Log(x)
	}
	return 0
}
