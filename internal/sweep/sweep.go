// Package sweep is the declarative experiment-orchestration subsystem.
//
// The paper's headline results (Theorems 4.1, 6.1, 6.3) are all sweeps:
// Pr[A] or Pr[B_γ] evaluated across a grid of memory models × thread
// counts × prefix lengths × estimator kinds. A Spec describes such a grid
// declaratively; the engine expands it into cells, shards the cells across
// a worker pool, and collects the results into a versioned Artifact that
// renders as tables/CSV via internal/report.
//
// Estimation itself lives in internal/estimator: every cell becomes one
// estimator.Query dispatched through the kind registry, so the engine
// adds orchestration (grid expansion, sharding, artifact collection) on
// top of the one canonical validation/clamping/dispatch path shared with
// the facade, the HTTP service, and the CLIs.
//
// Reproducibility is the engine's core guarantee: every cell derives one
// deterministic RNG seed from (spec seed, cell index), and the mc harness
// underneath is itself scheduling-independent (chunked substreams merged
// in chunk order), so an Artifact depends only on the Spec — never on the
// worker budget or goroutine scheduling. Identical (spec, seed) produce
// byte-identical JSON artifacts at any worker count.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"time"

	"memreliability/internal/estimator"
	"memreliability/internal/memmodel"
	"memreliability/internal/obs"
)

// ErrBadSpec reports an invalid sweep specification.
var ErrBadSpec = errors.New("sweep: bad spec")

// ExactPrefixCap re-exports the estimator registry's exact-DP prefix
// bound: exact and window-distribution cells clamp their prefix to it
// and record the clamp in the cell's note.
const ExactPrefixCap = estimator.ExactPrefixCap

// Kind names an estimation route. It is the estimator registry's key
// type: a sweep cell's kind and a direct estimator.Query kind are the
// same value, so anything registered there is immediately sweepable.
type Kind = estimator.Kind

const (
	// Exact is the n=2 exact dynamic program (Theorem 6.2's quantity).
	Exact = estimator.Exact
	// FullMC is full end-to-end Monte Carlo of the joined process.
	FullMC = estimator.FullMC
	// Hybrid is the Theorem 6.1 hybrid estimator (analytic shift
	// combinatorics × Monte Carlo product expectation).
	Hybrid = estimator.Hybrid
	// WindowDist tabulates the exact critical-window distribution
	// Pr[B_γ] (Theorem 4.1 at finite m); it is thread-count independent.
	WindowDist = estimator.WindowDist
	// CompiledMC is full Monte Carlo on the query-compiled kernel
	// engine, bit-identical to FullMC.
	CompiledMC = estimator.CompiledMC
)

// Kinds lists every registered estimator kind, in canonical order.
func Kinds() []Kind { return estimator.Kinds() }

// Spec declaratively describes one experiment sweep: the grid
// models × threads × prefix lengths × estimators, plus the trial budget,
// the experiment seed, and the worker budget.
//
// The zero value of a field selects the paper's default where one exists
// (see Normalized). Workers is pure scheduling: it never affects results
// and is therefore omitted from the artifact's spec echo.
type Spec struct {
	// Models are memory model names resolvable by memmodel.ByName.
	Models []string `json:"models"`
	// Threads are the thread counts n (each ≥ 2). Empty means {2}.
	Threads []int `json:"threads,omitempty"`
	// PrefixLens are the prefix lengths m. Empty means {64}.
	PrefixLens []int `json:"prefix_lens,omitempty"`
	// Estimators are the estimation routes to run per grid point.
	// Empty means {hybrid}.
	Estimators []Kind `json:"estimators,omitempty"`
	// Trials is the Monte Carlo trial budget per cell (mc and hybrid
	// cells only).
	Trials int `json:"trials,omitempty"`
	// Seed is the experiment seed; it fully determines the artifact.
	Seed uint64 `json:"seed"`
	// Workers bounds the worker pool sharding cells; 0 means
	// GOMAXPROCS. Scheduling only — results never depend on it.
	Workers int `json:"workers,omitempty"`
	// StoreProb is p. Zero is honored as a genuine probability (an
	// all-load program); start from DefaultSpec for the paper's normal
	// form 1/2.
	StoreProb float64 `json:"store_prob"`
	// SwapProb is s. Zero is honored (swaps never succeed, so every
	// model degenerates to SC); DefaultSpec gives the normal form 1/2.
	SwapProb float64 `json:"swap_prob"`
	// MaxGamma bounds the tabulated support of windowdist cells. Zero
	// tabulates only γ=0; DefaultSpec gives 8.
	MaxGamma int `json:"max_gamma"`
	// Precision, when set, switches every trial-consuming cell (mc,
	// hybrid) to adaptive-precision sampling: each cell stops as soon as
	// its confidence interval meets the targets, or at the trial budget
	// cap (MaxTrials; 0 defaults to Trials). Deterministic cells ignore
	// it. Adaptive artifacts record per-cell trials_used, rounds, and
	// stop_reason; fixed-trials artifacts (nil Precision) keep their
	// exact historical bytes.
	Precision *estimator.Precision `json:"precision,omitempty"`
}

// DefaultSpec returns a Spec pre-filled with the paper's normal-form
// scalar parameters (p = s = 1/2, max gamma 8). Grid fields are left
// empty and take their documented defaults at Run time; decode a JSON
// spec over this base so omitted scalar fields keep the paper defaults
// while explicit zeros stick.
func DefaultSpec() Spec {
	return Spec{StoreProb: 0.5, SwapProb: 0.5, MaxGamma: 8}
}

// Normalized returns a copy of the spec with every empty grid field
// replaced by its documented default, and model names rewritten to their
// canonical casing ("tso" → "TSO") so that specs differing only in case
// produce identical artifacts — and identical content addresses wherever
// specs are hashed. Unresolvable names are left as-is for Validate to
// reject. Scalar fields are never touched: zero probabilities are
// legitimate experiments, so their defaults live in DefaultSpec, not
// here.
func (s Spec) Normalized() Spec {
	out := s
	if len(out.Models) != 0 {
		out.Models = append([]string(nil), s.Models...)
		for i, name := range out.Models {
			if m, err := memmodel.ByName(name); err == nil {
				out.Models[i] = m.Name()
			}
		}
	}
	if len(out.Threads) == 0 {
		out.Threads = []int{2}
	}
	if len(out.PrefixLens) == 0 {
		out.PrefixLens = []int{64}
	}
	if len(out.Estimators) == 0 {
		out.Estimators = []Kind{Hybrid}
	}
	if s.Precision != nil {
		// Clone and fill the MaxTrials default, exactly as the estimator
		// normalizes a query's precision block — so specs differing only
		// in spelling the default out hash to the same content address.
		p := *s.Precision
		if p.MaxTrials == 0 {
			p.MaxTrials = s.Trials
		}
		out.Precision = &p
	}
	return out
}

// Validate checks a normalized spec. Call Normalized first; Run does both.
func (s Spec) Validate() error {
	if len(s.Models) == 0 {
		return fmt.Errorf("%w: no models", ErrBadSpec)
	}
	for _, name := range s.Models {
		if _, err := memmodel.ByName(name); err != nil {
			return fmt.Errorf("%w: %v", ErrBadSpec, err)
		}
	}
	for _, n := range s.Threads {
		if n < 2 {
			return fmt.Errorf("%w: threads=%d (need ≥ 2)", ErrBadSpec, n)
		}
	}
	for _, m := range s.PrefixLens {
		if m < 1 {
			return fmt.Errorf("%w: prefix length %d", ErrBadSpec, m)
		}
	}
	needTrials := false
	for _, k := range s.Estimators {
		if !k.Valid() {
			return fmt.Errorf("%w: unknown estimator %q", ErrBadSpec, k)
		}
		needTrials = needTrials || k.NeedsTrials()
	}
	if needTrials && s.Trials < 1 {
		return fmt.Errorf("%w: trials=%d (mc/hybrid cells need ≥ 1)", ErrBadSpec, s.Trials)
	}
	if s.Workers < 0 {
		return fmt.Errorf("%w: workers=%d", ErrBadSpec, s.Workers)
	}
	if !(s.StoreProb >= 0 && s.StoreProb <= 1) {
		return fmt.Errorf("%w: store probability %v", ErrBadSpec, s.StoreProb)
	}
	if !(s.SwapProb >= 0 && s.SwapProb <= 1) {
		return fmt.Errorf("%w: swap probability %v", ErrBadSpec, s.SwapProb)
	}
	if s.MaxGamma < 0 {
		return fmt.Errorf("%w: max gamma %d", ErrBadSpec, s.MaxGamma)
	}
	if s.Precision != nil {
		if err := s.Precision.Validate(); err != nil {
			return fmt.Errorf("%w: %v", ErrBadSpec, err)
		}
	}
	return nil
}

// Cell is one grid point of an expanded sweep. Threads is 0 for
// windowdist cells, which are thread-count independent.
type Cell struct {
	Index     int    `json:"index"`
	Model     string `json:"model"`
	Threads   int    `json:"threads"`
	PrefixLen int    `json:"prefix_len"`
	Estimator Kind   `json:"estimator"`
}

// Expand enumerates the grid cells of a normalized spec in deterministic
// order: models (outer) × threads × prefix lengths × estimators (inner).
// Windowdist cells are emitted once per model × prefix length, not once
// per thread count.
func (s Spec) Expand() []Cell {
	var cells []Cell
	for _, model := range s.Models {
		for ti, n := range s.Threads {
			for _, m := range s.PrefixLens {
				for _, k := range s.Estimators {
					threads := n
					if k == WindowDist {
						if ti != 0 {
							continue
						}
						threads = 0
					}
					cells = append(cells, Cell{
						Index:     len(cells),
						Model:     model,
						Threads:   threads,
						PrefixLen: m,
						Estimator: k,
					})
				}
			}
		}
	}
	return cells
}

// CellResult is one completed (or skipped) cell. For probability
// estimators, Estimate is the Pr[A] point estimate and LogEstimate its
// natural log (0 when the estimate is 0 or the cell is skipped); Lo/Hi
// bracket it (exact-DP truncation bounds, or the 99% Wilson interval for
// full Monte Carlo). For windowdist cells, Dist tabulates Pr[B_γ] for
// γ ∈ [0, MaxGamma] and Estimate is the mean window growth E[γ] over the
// tabulated support.
type CellResult struct {
	Cell

	Skipped bool   `json:"skipped,omitempty"`
	Note    string `json:"note,omitempty"`

	// EffectiveM is the prefix length the estimator actually used:
	// equal to PrefixLen unless the exact DP clamped it to
	// ExactPrefixCap.
	EffectiveM int `json:"effective_m"`

	Estimate    float64 `json:"estimate"`
	LogEstimate float64 `json:"log_estimate"`
	Lo          float64 `json:"lo"`
	Hi          float64 `json:"hi"`
	// Confidence is the Wilson level of Lo/Hi when it differs from the
	// default (possible only for single-cell serve requests with an
	// explicit level); 0 means estimator.DefaultConfidence. Grid cells
	// always compute at the default, so artifacts never carry it.
	Confidence float64 `json:"confidence,omitempty"`
	// StdErr is the standard error of the hybrid product expectation.
	StdErr float64 `json:"std_err,omitempty"`
	// Dist is the tabulated window distribution (windowdist cells).
	Dist []float64 `json:"dist,omitempty"`
	// ElapsedMS is wall-clock cell time; populated only when timing is
	// requested, because it breaks byte-level artifact reproducibility.
	ElapsedMS float64 `json:"elapsed_ms,omitempty"`

	// TrialsUsed, Rounds, and StopReason are recorded only for cells
	// estimated adaptively (a spec with a Precision block): the trials
	// the cell actually consumed, the sampling rounds it took, and
	// whether it converged or exhausted the budget cap. Fixed-trials
	// cells leave them zero, keeping historical artifacts byte-identical.
	TrialsUsed int    `json:"trials_used,omitempty"`
	Rounds     int    `json:"rounds,omitempty"`
	StopReason string `json:"stop_reason,omitempty"`
}

// Options tunes a Run without affecting its results.
type Options struct {
	// Timing records per-cell wall-clock time in the artifact. Off by
	// default: timing breaks byte-identical reproducibility.
	Timing bool
	// Sink, when non-nil, receives each cell result as it completes
	// (completion order, not index order). Calls are serialized.
	Sink func(CellResult)
}

// Run expands the spec, shards its cells across the worker pool, and
// returns the collected artifact with cells in index order.
func Run(ctx context.Context, spec Spec, opts Options) (*Artifact, error) {
	norm := spec.Normalized()
	if err := norm.Validate(); err != nil {
		return nil, err
	}
	sweepRuns.Inc()
	buildStart := time.Now()
	cells := norm.Expand()

	// One deterministic RNG substream seed per cell, fixed by the spec
	// seed and the cell index alone (the canonical estimator
	// derivation).
	seeds := estimator.DeriveSeeds(norm.Seed, len(cells))

	budget := norm.Workers
	if budget == 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	// Split the budget across the two parallelism layers instead of
	// multiplying it: cells share the pool, and each cell's inner Monte
	// Carlo gets the leftover slice — remainder included, so the slices
	// always sum to the full budget. A single-cell grid (the memrisk
	// case) gets the whole budget inside the cell; a wide grid runs its
	// cells single-streamed. Results are unaffected either way — the mc
	// harness is deterministic in (seed, trials).
	inner := estimator.SplitWorkerBudget(budget, len(cells))
	workers := len(inner)

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]CellResult, len(cells))
	errs := make([]error, workers)
	jobs := make(chan int)
	var sinkMu sync.Mutex

	// Per-cell child spans are created here in the sequential feed loop —
	// never inside the workers — so span order is cell-index order and
	// the exported trace tree is deterministic at any worker count.
	parent := obs.SpanFrom(ctx)
	spans := make([]*obs.Span, len(cells))

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for idx := range jobs {
				res, err := runCell(obs.WithSpan(runCtx, spans[idx]), norm, cells[idx], seeds[idx], inner[w], opts.Timing)
				spans[idx].End()
				if err != nil {
					sweepCellsFailed.Inc()
					errs[w] = err
					cancel()
					return
				}
				sweepCellsCompleted.Inc()
				results[idx] = res
				if opts.Sink != nil {
					sinkMu.Lock()
					opts.Sink(res)
					sinkMu.Unlock()
				}
			}
		}(w)
	}

feed:
	for idx := range cells {
		spans[idx] = parent.Child("sweep.cell",
			obs.L("index", strconv.Itoa(idx)),
			obs.L("model", cells[idx].Model),
			obs.L("kind", string(cells[idx].Estimator)))
		select {
		case jobs <- idx:
		case <-runCtx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	// Prefer a root-cause cell failure over the cancellations it induced
	// in sibling workers.
	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if firstErr == nil || errors.Is(firstErr, context.Canceled) {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}

	// The echo omits the worker budget: it is pure scheduling, and
	// including it would break byte-identical artifacts across -workers.
	echo := norm
	echo.Workers = 0
	sweepArtifactBuildSeconds.Observe(time.Since(buildStart).Seconds())
	return &Artifact{
		SchemaVersion: ArtifactVersion,
		Spec:          echo,
		Cells:         results,
	}, nil
}

// Query translates one grid cell of the spec into the canonical
// estimator query it dispatches. The spec's scalar fields and the cell's
// grid coordinates meet here — the only place a sweep encodes estimator
// parameters.
//
// Seed is the spec's experiment seed; the engine does NOT feed it
// through estimator.Estimate's single-query derivation. Instead each
// cell runs on its own substream, estimator.DeriveSeeds(spec.Seed,
// len(cells))[cell.Index], passed to estimator.Run directly — so
// reproducing cell i outside the engine requires that same derivation,
// not a bare Estimate of this query.
func (s Spec) Query(cell Cell) estimator.Query {
	q := estimator.Query{
		Kind:       cell.Estimator,
		Model:      cell.Model,
		Threads:    cell.Threads,
		PrefixLen:  cell.PrefixLen,
		StoreProb:  s.StoreProb,
		SwapProb:   s.SwapProb,
		Trials:     s.Trials,
		Seed:       s.Seed,
		Confidence: estimator.DefaultConfidence,
		MaxGamma:   s.MaxGamma,
	}
	// The precision block applies only to cells that consume trials;
	// attaching it to a deterministic cell would (correctly) fail the
	// query's canonical validation inside a mixed-kind grid.
	if s.Precision != nil && cell.Estimator.NeedsTrials() {
		p := *s.Precision
		q.Precision = &p
	}
	return q
}

// CellResultOf shapes a dispatched estimator result as the artifact
// cell for the given grid coordinates. It is the single conversion
// point shared with the serve API. The fixed-trials artifact schema's
// field set is frozen for byte compatibility: unified-result diagnostics
// that postdate it (Confidence, ProductExpectation, TrialsUsed) are
// persisted only when they carry information a fixed run cannot — a
// non-default Wilson level, or the per-cell cost of an adaptive run.
func CellResultOf(cell Cell, res estimator.Result) CellResult {
	// Only a non-default Wilson level is worth recording; the default is
	// elided to keep artifact bytes identical to the pre-Confidence
	// schema.
	confidence := res.Confidence
	if confidence == estimator.DefaultConfidence {
		confidence = 0
	}
	out := CellResult{
		Cell:        cell,
		Skipped:     res.Skipped,
		Note:        res.Note,
		EffectiveM:  res.EffectiveM,
		Estimate:    res.Estimate,
		LogEstimate: res.LogEstimate,
		Lo:          res.Lo,
		Hi:          res.Hi,
		Confidence:  confidence,
		StdErr:      res.StdErr,
		Dist:        res.Dist,
		ElapsedMS:   res.ElapsedMS,
	}
	// Adaptive cells persist their cost: for a fixed-trials cell the
	// count is just the spec's Trials, and writing it would break the
	// historical golden bytes.
	if res.StopReason != "" {
		out.TrialsUsed = res.TrialsUsed
		out.Rounds = res.Rounds
		out.StopReason = res.StopReason
	}
	return out
}

// runCell evaluates one cell on its private RNG substream by dispatching
// its query through the estimator registry. Trial-consuming cells (mc,
// hybrid) execute on the mc harness's batched hot path — whole chunks
// per batch call, zero steady-state allocations — which the registry
// routes give every cell for free; artifacts stay bit-identical to the
// per-trial era. innerWorkers bounds the cell's Monte Carlo parallelism
// (scheduling only).
func runCell(ctx context.Context, spec Spec, cell Cell, seed uint64, innerWorkers int, timing bool) (CellResult, error) {
	res, err := estimator.Run(ctx, spec.Query(cell), seed,
		estimator.Exec{Workers: innerWorkers, Timing: timing})
	if err != nil {
		return CellResult{Cell: cell, EffectiveM: cell.PrefixLen},
			fmt.Errorf("sweep: cell %d: %w", cell.Index, err)
	}
	return CellResultOf(cell, res), nil
}
