package sweep

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"

	"memreliability/internal/report"
)

// ArtifactVersion is the schema version stamped on every artifact.
const ArtifactVersion = 1

// ErrBadArtifact reports a structurally invalid artifact.
var ErrBadArtifact = errors.New("sweep: bad artifact")

// Artifact is the versioned result of one sweep run: the normalized spec
// echo (minus the worker budget, which never affects results) plus every
// cell result in index order. Encoding the same artifact always produces
// identical bytes.
type Artifact struct {
	SchemaVersion int          `json:"schema_version"`
	Spec          Spec         `json:"spec"`
	Cells         []CellResult `json:"cells"`
}

// EncodeJSON writes the artifact as deterministic, indented JSON.
func (a *Artifact) EncodeJSON(w io.Writer) error {
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return fmt.Errorf("sweep: encode artifact: %w", err)
	}
	data = append(data, '\n')
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("sweep: write artifact: %w", err)
	}
	return nil
}

// DecodeArtifact reads a JSON artifact and checks its schema version.
func DecodeArtifact(r io.Reader) (*Artifact, error) {
	var a Artifact
	dec := json.NewDecoder(r)
	if err := dec.Decode(&a); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadArtifact, err)
	}
	if a.SchemaVersion != ArtifactVersion {
		return nil, fmt.Errorf("%w: schema version %d, want %d",
			ErrBadArtifact, a.SchemaVersion, ArtifactVersion)
	}
	return &a, nil
}

// Table renders the artifact as a report table, one row per cell.
func (a *Artifact) Table() (*report.Table, error) {
	title := fmt.Sprintf("sweep: %d cells, seed=%d, trials=%d, p=%g, s=%g",
		len(a.Cells), a.Spec.Seed, a.Spec.Trials, a.Spec.StoreProb, a.Spec.SwapProb)
	tbl, err := report.NewTable(title, "model", "n", "m", "estimator", "estimate", "notes")
	if err != nil {
		return nil, err
	}
	for _, c := range a.Cells {
		n := fmt.Sprintf("%d", c.Threads)
		if c.Threads == 0 {
			n = "-"
		}
		if err := tbl.AddRowValues(c.Model, n, c.PrefixLen,
			c.Estimator.DisplayName(), cellEstimate(c), c.Notes()); err != nil {
			return nil, err
		}
	}
	return tbl, nil
}

// cellEstimate formats the cell's headline number.
func cellEstimate(c CellResult) string {
	if c.Skipped {
		return "-"
	}
	return report.FormatProb(c.Estimate)
}

// Notes summarizes the cell's secondary outputs (CI bracket, log
// estimate, tabulated distribution, skip reason) as a display string.
// Every renderer of cell rows — the artifact table, cmd/memrisk — shares
// this so per-estimator annotations cannot drift apart.
func (c CellResult) Notes() string {
	var notes []string
	switch {
	case c.Skipped:
		notes = append(notes, "skipped: "+c.Note)
	default:
		switch c.Estimator {
		case Exact:
			notes = append(notes, report.FormatInterval(c.Lo, c.Hi))
		case FullMC:
			notes = append(notes, fmt.Sprintf("%.0f%% CI %s",
				ciLevel*100, report.FormatInterval(c.Lo, c.Hi)))
		case Hybrid:
			notes = append(notes, "ln Pr[A] = "+report.FormatRatio(c.LogEstimate))
		case WindowDist:
			cells := make([]string, len(c.Dist))
			for gamma, p := range c.Dist {
				cells[gamma] = fmt.Sprintf("P(%d)=%s", gamma, report.FormatRatio(p))
			}
			notes = append(notes, "estimate = E[γ]; "+strings.Join(cells, " "))
		}
		if c.Note != "" {
			notes = append(notes, c.Note)
		}
		if c.ElapsedMS > 0 {
			notes = append(notes, fmt.Sprintf("%.1fms", c.ElapsedMS))
		}
	}
	return strings.Join(notes, "; ")
}
