package sweep

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"memreliability/internal/estimator"
	"memreliability/internal/report"
)

// ArtifactVersion is the schema version stamped on every artifact.
const ArtifactVersion = 1

// ErrBadArtifact reports a structurally invalid artifact.
var ErrBadArtifact = errors.New("sweep: bad artifact")

// Artifact is the versioned result of one sweep run: the normalized spec
// echo (minus the worker budget, which never affects results) plus every
// cell result in index order. Encoding the same artifact always produces
// identical bytes.
type Artifact struct {
	SchemaVersion int          `json:"schema_version"`
	Spec          Spec         `json:"spec"`
	Cells         []CellResult `json:"cells"`
}

// EncodeJSON writes the artifact as deterministic, indented JSON.
func (a *Artifact) EncodeJSON(w io.Writer) error {
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return fmt.Errorf("sweep: encode artifact: %w", err)
	}
	data = append(data, '\n')
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("sweep: write artifact: %w", err)
	}
	return nil
}

// DecodeArtifact reads a JSON artifact and checks its schema version.
func DecodeArtifact(r io.Reader) (*Artifact, error) {
	var a Artifact
	dec := json.NewDecoder(r)
	if err := dec.Decode(&a); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadArtifact, err)
	}
	if a.SchemaVersion != ArtifactVersion {
		return nil, fmt.Errorf("%w: schema version %d, want %d",
			ErrBadArtifact, a.SchemaVersion, ArtifactVersion)
	}
	return &a, nil
}

// Table renders the artifact as a report table, one row per cell.
func (a *Artifact) Table() (*report.Table, error) {
	title := fmt.Sprintf("sweep: %d cells, seed=%d, trials=%d, p=%g, s=%g",
		len(a.Cells), a.Spec.Seed, a.Spec.Trials, a.Spec.StoreProb, a.Spec.SwapProb)
	tbl, err := report.NewTable(title, "model", "n", "m", "estimator", "estimate", "notes")
	if err != nil {
		return nil, err
	}
	for _, c := range a.Cells {
		n := fmt.Sprintf("%d", c.Threads)
		if c.Threads == 0 {
			n = "-"
		}
		if err := tbl.AddRowValues(c.Model, n, c.PrefixLen,
			c.Estimator.DisplayName(), cellEstimate(c), c.Notes()); err != nil {
			return nil, err
		}
	}
	return tbl, nil
}

// cellEstimate formats the cell's headline number.
func cellEstimate(c CellResult) string {
	if c.Skipped {
		return "-"
	}
	return report.FormatProb(c.Estimate)
}

// EstimatorResult converts the cell back to the unified result form —
// the inverse of CellResultOf, up to the diagnostics the artifact
// schema does not persist. Confidence passes through as stored: 0 means
// the default level, which is how Result's renderer reads it too.
func (c CellResult) EstimatorResult() estimator.Result {
	return estimator.Result{
		Kind:        c.Estimator,
		Skipped:     c.Skipped,
		Note:        c.Note,
		EffectiveM:  c.EffectiveM,
		Estimate:    c.Estimate,
		LogEstimate: c.LogEstimate,
		Lo:          c.Lo,
		Hi:          c.Hi,
		Confidence:  c.Confidence,
		StdErr:      c.StdErr,
		Dist:        c.Dist,
		ElapsedMS:   c.ElapsedMS,
		TrialsUsed:  c.TrialsUsed,
		Rounds:      c.Rounds,
		StopReason:  c.StopReason,
	}
}

// Notes summarizes the cell's secondary outputs (CI bracket, log
// estimate, tabulated distribution, skip reason) as a display string.
// It delegates to the shared estimator.Result renderer, so every
// surface's per-estimator annotations stay in lockstep.
func (c CellResult) Notes() string {
	return c.EstimatorResult().Notes()
}
