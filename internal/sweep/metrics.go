package sweep

import (
	"memreliability/internal/obs"
)

// Sweep-engine metrics on the process-global registry. Cells count at
// completion inside the workers (atomic, allocation-free); the artifact
// build histogram observes the whole expand→run→collect wall time at
// the run's sequential tail.
var (
	sweepRuns = obs.Default().Counter("sweep_runs_total",
		"Sweep runs started.")
	sweepCellsCompleted = obs.Default().Counter("sweep_cells_completed_total",
		"Grid cells estimated successfully.")
	sweepCellsFailed = obs.Default().Counter("sweep_cells_failed_total",
		"Grid cells that returned an error.")
	sweepArtifactBuildSeconds = obs.Default().Histogram("sweep_artifact_build_seconds",
		"Wall-clock time from spec expansion to collected artifact.",
		obs.LatencyBuckets())
)
