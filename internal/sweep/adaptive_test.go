package sweep

import (
	"bytes"
	"context"
	"testing"

	"memreliability/internal/estimator"
)

// adaptiveSpec is a mixed-kind grid (deterministic exact cells next to
// adaptive mc/hybrid cells) with a loose absolute target that converges
// fast on easy cells.
func adaptiveSpec() Spec {
	spec := DefaultSpec()
	spec.Models = []string{"SC", "TSO"}
	spec.Threads = []int{2}
	spec.PrefixLens = []int{12}
	spec.Estimators = []Kind{Exact, FullMC, Hybrid}
	spec.Trials = 100000
	spec.Seed = 17
	spec.Precision = &estimator.Precision{TargetHalfWidth: 0.02}
	return spec
}

// TestAdaptiveSweepArtifact: adaptive mc/hybrid cells record their
// per-cell cost (trials_used, rounds, stop_reason); deterministic cells
// in the same grid stay untouched; easy cells spend far less than the
// fixed budget.
func TestAdaptiveSweepArtifact(t *testing.T) {
	spec := adaptiveSpec()
	art, err := Run(context.Background(), spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range art.Cells {
		adaptive := c.Estimator.NeedsTrials()
		if adaptive {
			if c.StopReason == "" || c.TrialsUsed == 0 || c.Rounds == 0 {
				t.Errorf("cell %d (%s): adaptive cost not recorded: %+v", c.Index, c.Estimator, c)
			}
			if c.StopReason == string(estimator.StopConverged) && c.TrialsUsed >= spec.Trials {
				t.Errorf("cell %d (%s): converged yet spent the whole fixed budget (%d trials)",
					c.Index, c.Estimator, c.TrialsUsed)
			}
		} else if c.StopReason != "" || c.TrialsUsed != 0 || c.Rounds != 0 {
			t.Errorf("cell %d (%s): deterministic cell carries adaptive fields: %+v",
				c.Index, c.Estimator, c)
		}
	}
}

// TestAdaptiveSweepWorkerInvariance: adaptive artifacts inherit the
// engine's byte-reproducibility — identical bytes at 1, 2, and 7
// workers, trials-consumed included.
func TestAdaptiveSweepWorkerInvariance(t *testing.T) {
	var ref []byte
	for _, workers := range []int{1, 2, 7} {
		spec := adaptiveSpec()
		spec.Workers = workers
		art, err := Run(context.Background(), spec, Options{})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := art.EncodeJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = buf.Bytes()
			continue
		}
		if !bytes.Equal(buf.Bytes(), ref) {
			t.Errorf("workers=%d: adaptive artifact bytes diverged", workers)
		}
	}
}

// TestAdaptiveSpecNormalization: the spec-level precision block clones
// and fills MaxTrials exactly like a query's, so spelled-out and
// defaulted specs share a content address.
func TestAdaptiveSpecNormalization(t *testing.T) {
	spec := adaptiveSpec()
	norm := spec.Normalized()
	if norm.Precision.MaxTrials != spec.Trials {
		t.Errorf("normalized MaxTrials = %d, want %d", norm.Precision.MaxTrials, spec.Trials)
	}
	if spec.Precision.MaxTrials != 0 {
		t.Error("Normalized mutated the caller's precision block")
	}

	bad := adaptiveSpec()
	bad.Precision = &estimator.Precision{}
	if err := bad.Normalized().Validate(); err == nil {
		t.Error("target-less precision block passed spec validation")
	}
}
