package sweep

import (
	"context"
	"fmt"

	"memreliability/internal/analytic"
	"memreliability/internal/core"
	"memreliability/internal/mc"
	"memreliability/internal/memmodel"
)

// ThreadScaling runs the Theorem 6.3 thread-scaling sweep through the
// engine: one hybrid cell per model × n, normalized decay rates
// −ln Pr[A]/n² compared against the analytic SC rate. Rows are ordered by
// n (outer) then model, matching the paper's presentation.
//
// This subsumes the hand-rolled model/thread loops that previously lived
// in cmd/memrisk, the facade, and the benchmark harness.
func ThreadScaling(ctx context.Context, models []memmodel.Model, ns []int, prefixLen int, mcCfg mc.Config) ([]core.ScalingRow, error) {
	if len(models) == 0 || len(ns) == 0 {
		return nil, fmt.Errorf("%w: empty sweep", ErrBadSpec)
	}
	names := make([]string, len(models))
	for i, m := range models {
		names[i] = m.Name()
	}
	spec := DefaultSpec()
	spec.Models = names
	spec.Threads = ns
	spec.PrefixLens = []int{prefixLen}
	spec.Estimators = []Kind{Hybrid}
	spec.Trials = mcCfg.Trials
	spec.Seed = mcCfg.Seed
	spec.Workers = mcCfg.Workers
	art, err := Run(ctx, spec, Options{})
	if err != nil {
		return nil, err
	}

	type key struct {
		model string
		n     int
	}
	byCell := make(map[key]CellResult, len(art.Cells))
	for _, c := range art.Cells {
		byCell[key{c.Model, c.Threads}] = c
	}

	rows := make([]core.ScalingRow, 0, len(models)*len(ns))
	for _, n := range ns {
		scLog, err := analytic.SCLogPrA(n)
		if err != nil {
			return nil, fmt.Errorf("sweep: %w", err)
		}
		scRate, err := analytic.Theorem63Rate(scLog, n)
		if err != nil {
			return nil, fmt.Errorf("sweep: %w", err)
		}
		for _, name := range names {
			c, ok := byCell[key{name, n}]
			if !ok {
				return nil, fmt.Errorf("%w: missing cell model=%s n=%d", ErrBadArtifact, name, n)
			}
			rate, err := analytic.Theorem63Rate(c.LogEstimate, n)
			if err != nil {
				return nil, fmt.Errorf("sweep: %w", err)
			}
			rows = append(rows, core.ScalingRow{
				Model:     name,
				Threads:   n,
				LogPrA:    c.LogEstimate,
				Rate:      rate,
				RatioToSC: rate / scRate,
			})
		}
	}
	return rows, nil
}
