package sweep

import (
	"bytes"
	"context"
	"errors"
	"math"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"memreliability/internal/mc"
	"memreliability/internal/memmodel"
	"memreliability/internal/settle"
)

// smallSpec is the shared fast test grid. m=16 deliberately exercises
// non-dyadic exact-DP accumulation, where a nondeterministic summation
// order (e.g. map iteration) would show up as last-ulp jitter in the
// byte-identity test below.
func smallSpec() Spec {
	spec := DefaultSpec()
	spec.Models = []string{"SC", "TSO"}
	spec.Threads = []int{2, 4}
	spec.PrefixLens = []int{16}
	spec.Estimators = []Kind{Exact, FullMC, Hybrid}
	spec.Trials = 400
	spec.Seed = 7
	return spec
}

func TestNormalizedDefaults(t *testing.T) {
	n := Spec{Models: []string{"SC"}}.Normalized()
	if len(n.Threads) != 1 || n.Threads[0] != 2 {
		t.Errorf("Threads = %v", n.Threads)
	}
	if len(n.PrefixLens) != 1 || n.PrefixLens[0] != 64 {
		t.Errorf("PrefixLens = %v", n.PrefixLens)
	}
	if len(n.Estimators) != 1 || n.Estimators[0] != Hybrid {
		t.Errorf("Estimators = %v", n.Estimators)
	}
	// Scalar fields are never defaulted by Normalized: an explicit zero
	// is a legitimate experiment, and paper defaults come from
	// DefaultSpec instead.
	if n.StoreProb != 0 || n.SwapProb != 0 || n.MaxGamma != 0 {
		t.Errorf("Normalized touched scalar fields: %+v", n)
	}
	d := DefaultSpec()
	if d.StoreProb != 0.5 || d.SwapProb != 0.5 || d.MaxGamma != 8 {
		t.Errorf("DefaultSpec = %+v", d)
	}
}

func TestZeroProbabilitiesHonored(t *testing.T) {
	// s = 0 means swaps never succeed: every model degenerates to SC and
	// the exact n=2 Pr[A] is the SC value 1/6. A spec layer that treated
	// zero as "unset" would silently compute the s=1/2 value instead
	// (≈0.134 for TSO).
	spec := DefaultSpec()
	spec.Models = []string{"TSO"}
	spec.Threads = []int{2}
	spec.PrefixLens = []int{12}
	spec.Estimators = []Kind{Exact}
	spec.SwapProb = 0
	art, err := Run(context.Background(), spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := art.Cells[0].Estimate; math.Abs(got-1.0/6.0) > 1e-9 {
		t.Errorf("TSO s=0 exact = %v, want 1/6", got)
	}
	if art.Spec.SwapProb != 0 {
		t.Errorf("artifact echo rewrote swap_prob to %v", art.Spec.SwapProb)
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	bad := []Spec{
		{},
		{Models: []string{"RC"}},
		{Models: []string{"SC"}, Threads: []int{1}},
		{Models: []string{"SC"}, PrefixLens: []int{0}},
		{Models: []string{"SC"}, Estimators: []Kind{"bogus"}},
		{Models: []string{"SC"}, Estimators: []Kind{FullMC}, Trials: 0},
		{Models: []string{"SC"}, Workers: -1},
		{Models: []string{"SC"}, StoreProb: 1.5},
		{Models: []string{"SC"}, SwapProb: -0.5},
		{Models: []string{"SC"}, MaxGamma: -1},
	}
	for i, s := range bad {
		if err := s.Normalized().Validate(); !errors.Is(err, ErrBadSpec) {
			t.Errorf("spec %d accepted: %+v", i, s)
		}
	}
	if _, err := Run(context.Background(), Spec{}, Options{}); !errors.Is(err, ErrBadSpec) {
		t.Error("Run accepted empty spec")
	}
}

func TestExpandGridOrderAndWindowDistCollapse(t *testing.T) {
	s := Spec{
		Models:     []string{"SC", "WO"},
		Threads:    []int{2, 4},
		PrefixLens: []int{8},
		Estimators: []Kind{Hybrid, WindowDist},
		Trials:     10,
	}.Normalized()
	cells := s.Expand()
	// Per model: (n=2, hybrid), (windowdist, once), (n=4, hybrid).
	if len(cells) != 6 {
		t.Fatalf("expanded %d cells, want 6", len(cells))
	}
	for i, c := range cells {
		if c.Index != i {
			t.Errorf("cell %d has index %d", i, c.Index)
		}
	}
	wd := 0
	for _, c := range cells {
		if c.Estimator == WindowDist {
			wd++
			if c.Threads != 0 {
				t.Errorf("windowdist cell has threads=%d", c.Threads)
			}
		}
	}
	if wd != 2 {
		t.Errorf("%d windowdist cells, want one per model", wd)
	}
	if cells[0].Model != "SC" || cells[len(cells)-1].Model != "WO" {
		t.Errorf("model order wrong: %+v", cells)
	}
}

func TestRunArtifactShape(t *testing.T) {
	art, err := Run(context.Background(), smallSpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if art.SchemaVersion != ArtifactVersion {
		t.Errorf("schema version %d", art.SchemaVersion)
	}
	if art.Spec.Workers != 0 {
		t.Error("worker budget leaked into the artifact echo")
	}
	// 2 models × 2 threads × 3 estimators.
	if len(art.Cells) != 12 {
		t.Fatalf("%d cells, want 12", len(art.Cells))
	}
	for i, c := range art.Cells {
		if c.Index != i {
			t.Errorf("cell %d out of order (index %d)", i, c.Index)
		}
		switch {
		case c.Estimator == Exact && c.Threads == 4:
			if !c.Skipped {
				t.Errorf("exact n=4 cell not skipped: %+v", c)
			}
		case c.Skipped:
			t.Errorf("cell %d skipped unexpectedly: %+v", i, c)
		case c.Estimate < 0 || c.Estimate >= 1:
			// Full MC may legitimately estimate 0 deep in the
			// e^{-Θ(n²)} regime; exact and hybrid never do.
			t.Errorf("cell %d estimate %v out of [0,1)", i, c.Estimate)
		case c.Estimator != FullMC && c.Estimate == 0:
			t.Errorf("cell %d (%s) estimate is 0", i, c.Estimator)
		}
	}
	// SC n=2 exact must be the paper's 1/6.
	sc := art.Cells[0]
	if sc.Estimator != Exact || math.Abs(sc.Estimate-1.0/6.0) > 1e-3 {
		t.Errorf("SC exact cell = %+v", sc)
	}
}

func TestRunByteIdenticalAcrossWorkers(t *testing.T) {
	ctx := context.Background()
	var bufs [3]bytes.Buffer
	for i, workers := range []int{1, 3, 7} {
		spec := smallSpec()
		spec.Workers = workers
		art, err := Run(ctx, spec, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := art.EncodeJSON(&bufs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) || !bytes.Equal(bufs[0].Bytes(), bufs[2].Bytes()) {
		t.Error("artifact bytes differ across worker budgets")
	}
}

func TestRunSinkStreamsEveryCell(t *testing.T) {
	var calls atomic.Int64
	spec := smallSpec()
	spec.Workers = 4
	_, err := Run(context.Background(), spec, Options{Sink: func(CellResult) {
		calls.Add(1)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 12 {
		t.Errorf("sink saw %d cells, want 12", calls.Load())
	}
}

func TestRunHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	spec := DefaultSpec()
	spec.Models = []string{"SC", "TSO", "PSO", "WO"}
	spec.Threads = []int{2, 4, 8}
	spec.Estimators = []Kind{Hybrid}
	spec.Trials = 200000
	spec.Seed = 1
	if _, err := Run(ctx, spec, Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled run returned %v", err)
	}
}

func TestWindowDistMatchesSettleDP(t *testing.T) {
	spec := DefaultSpec()
	spec.Models = []string{"WO"}
	spec.PrefixLens = []int{12}
	spec.Estimators = []Kind{WindowDist}
	spec.MaxGamma = 6
	spec.Seed = 3
	art, err := Run(context.Background(), spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(art.Cells) != 1 {
		t.Fatalf("%d cells", len(art.Cells))
	}
	c := art.Cells[0]
	if len(c.Dist) != 7 {
		t.Fatalf("dist len %d", len(c.Dist))
	}
	pmf, err := settle.ExactWindowDist(memmodel.WO(), 12, 0.5, 0.5, 6)
	if err != nil {
		t.Fatal(err)
	}
	for gamma := 0; gamma <= 6; gamma++ {
		if math.Abs(c.Dist[gamma]-pmf.At(gamma)) > 1e-15 {
			t.Errorf("γ=%d: %v vs DP %v", gamma, c.Dist[gamma], pmf.At(gamma))
		}
	}
}

func TestExactPrefixClampNoted(t *testing.T) {
	spec := DefaultSpec()
	spec.Models = []string{"TSO"}
	spec.Threads = []int{2}
	spec.PrefixLens = []int{64}
	spec.Estimators = []Kind{Exact}
	spec.Seed = 1
	art, err := Run(context.Background(), spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := art.Cells[0]
	if !strings.Contains(c.Note, "clamped") {
		t.Errorf("clamp not noted: %+v", c)
	}
	// Clamped exact must agree with the direct m=16 DP value.
	if math.Abs(c.Estimate-0.134) > 0.01 {
		t.Errorf("TSO exact estimate %v implausible", c.Estimate)
	}
}

func TestArtifactJSONRoundTrip(t *testing.T) {
	art, err := Run(context.Background(), smallSpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := art.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeArtifact(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Cells) != len(art.Cells) {
		t.Fatalf("round trip lost cells: %d vs %d", len(back.Cells), len(art.Cells))
	}
	for i := range art.Cells {
		if !reflect.DeepEqual(back.Cells[i], art.Cells[i]) {
			t.Errorf("cell %d changed in round trip: %+v vs %+v", i, back.Cells[i], art.Cells[i])
		}
	}
	if _, err := DecodeArtifact(strings.NewReader(`{"schema_version": 99}`)); !errors.Is(err, ErrBadArtifact) {
		t.Error("wrong schema version accepted")
	}
	if _, err := DecodeArtifact(strings.NewReader(`not json`)); !errors.Is(err, ErrBadArtifact) {
		t.Error("garbage accepted")
	}
}

func TestArtifactTable(t *testing.T) {
	spec := smallSpec()
	spec.Estimators = append(spec.Estimators, WindowDist)
	art, err := Run(context.Background(), spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := art.Table()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tbl.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"exact DP (n=2)", "full Monte Carlo", "hybrid (Thm 6.1)",
		"window distribution", "skipped: exact DP requires n = 2", "ln Pr[A]"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestTimingOptionPopulatesElapsed(t *testing.T) {
	spec := DefaultSpec()
	spec.Models = []string{"SC"}
	spec.Estimators = []Kind{Exact}
	spec.PrefixLens = []int{12}
	spec.Seed = 1
	art, err := Run(context.Background(), spec, Options{Timing: true})
	if err != nil {
		t.Fatal(err)
	}
	if art.Cells[0].ElapsedMS <= 0 {
		t.Error("timing requested but elapsed not recorded")
	}
}

func TestThreadScalingGapVanishes(t *testing.T) {
	ctx := context.Background()
	models := []memmodel.Model{memmodel.SC(), memmodel.WO()}
	rows, err := ThreadScaling(ctx, models, []int{2, 4, 8}, 32,
		mc.Config{Trials: 20000, Seed: 63})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows", len(rows))
	}
	// Rows come n-outer: SC n=2, WO n=2, SC n=4, ...
	ratioAt := func(n int) float64 {
		for _, r := range rows {
			if r.Model == "WO" && r.Threads == n {
				return r.RatioToSC
			}
		}
		t.Fatalf("missing WO row for n=%d", n)
		return 0
	}
	// Theorem 6.3: the WO/SC rate ratio tends to 1 as n grows.
	if math.Abs(ratioAt(8)-1) > math.Abs(ratioAt(2)-1) {
		t.Errorf("gap did not shrink: n=2 ratio %v, n=8 ratio %v", ratioAt(2), ratioAt(8))
	}
	if math.Abs(ratioAt(8)-1) > 0.25 {
		t.Errorf("n=8 ratio %v too far from 1", ratioAt(8))
	}
	// SC's ratio to itself is identically 1 up to float noise: the SC
	// product expectation has zero variance, so the hybrid estimate is
	// exact regardless of seed.
	for _, r := range rows {
		if r.Model == "SC" && math.Abs(r.RatioToSC-1) > 1e-9 {
			t.Errorf("SC ratio at n=%d = %v", r.Threads, r.RatioToSC)
		}
	}
}

func TestThreadScalingValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := ThreadScaling(ctx, nil, []int{2}, 8, mc.Config{Trials: 10, Seed: 1}); !errors.Is(err, ErrBadSpec) {
		t.Error("empty models accepted")
	}
	if _, err := ThreadScaling(ctx, []memmodel.Model{memmodel.SC()}, nil, 8, mc.Config{Trials: 10, Seed: 1}); !errors.Is(err, ErrBadSpec) {
		t.Error("empty ns accepted")
	}
}
